// Distributed BFS on a cluster of simulated GPUs (the paper's §V-E
// application): generates a graph500-style RMAT graph, traverses it with
// the level-synchronous multi-GPU algorithm over both interconnects, and
// validates the parent trees.
//
//   $ ./examples/bfs_cluster [scale]
#include <cstdio>
#include <cstdlib>

#include "apps/bfs/bfs.hpp"

using namespace apn;
using apps::bfs::BfsNet;

int main(int argc, char** argv) {
  const int scale = argc > 1 ? std::atoi(argv[1]) : 14;
  std::printf("RMAT scale %d (|V| = %d, ~%d edges), 4 GPUs\n", scale,
              1 << scale, 16 << scale);
  std::printf("%-12s %10s %8s %10s %12s %10s\n", "network", "TEPS", "levels",
              "comm (ms)", "compute (ms)", "valid");

  for (BfsNet net : {BfsNet::kApenet, BfsNet::kIb}) {
    sim::Simulator sim;
    std::unique_ptr<cluster::Cluster> cluster =
        net == BfsNet::kIb
            ? cluster::Cluster::make_cluster_ii(sim, 4)
            : cluster::Cluster::make_cluster_i(sim, 4, core::ApenetParams{},
                                               false);
    apps::bfs::BfsConfig cfg;
    cfg.scale = scale;
    cfg.edge_factor = 16;
    cfg.net = net;
    apps::bfs::BfsRun run(*cluster, cfg);
    apps::bfs::BfsMetrics m = run.run();
    std::printf("%-12s %10.3g %8d %10.3f %12.3f %10s\n",
                net == BfsNet::kApenet ? "APEnet+" : "InfiniBand", m.teps,
                m.levels, units::to_ms(m.comm_time),
                units::to_ms(m.compute_time),
                m.validated ? "yes" : "NO");
  }
  std::printf(
      "\nThe irregular all-to-all frontier exchange favors APEnet+'s lower\n"
      "small-message GPU-to-GPU latency at modest node counts — the\n"
      "paper's Table IV / Fig. 12 result.\n");
  return 0;
}
