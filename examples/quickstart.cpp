// Quickstart: bring up a two-node APEnet+ cluster, register a GPU buffer
// on the remote node, and PUT GPU memory to it peer-to-peer — the minimal
// end-to-end use of the library's public API.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "cluster/cluster.hpp"

using namespace apn;

int main() {
  // A deterministic simulation clock drives everything.
  sim::Simulator sim;

  // Two nodes of the paper's Cluster I: Xeon host + Fermi C2050 + APEnet+
  // card on a PLX switch, wired as a 2x1x1 torus.
  auto cluster =
      cluster::Cluster::make_cluster_i(sim, /*nodes=*/2,
                                       core::ApenetParams{},
                                       /*with_ib=*/false);

  // Allocate GPU memory on both nodes through the simulated CUDA runtime.
  const std::uint64_t kSize = 1 << 20;
  cuda::DevPtr src = cluster->node(0).cuda().malloc_device(0, kSize);
  cuda::DevPtr dst = cluster->node(1).cuda().malloc_device(0, kSize);

  // Fill the source buffer (functionally; think cudaMemcpy H2D).
  std::vector<std::uint8_t> pattern(kSize);
  for (std::size_t i = 0; i < pattern.size(); ++i)
    pattern[i] = static_cast<std::uint8_t>(i * 131);
  cluster->node(0).cuda().move_bytes(
      src, reinterpret_cast<std::uint64_t>(pattern.data()), kSize);

  // Host program, written as a simulation process.
  [](cluster::Cluster* c, cuda::DevPtr src, cuda::DevPtr dst,
     std::uint64_t n) -> sim::Coro {
    sim::Simulator& sim = c->simulator();

    // 1. The receiver registers its GPU buffer: the RDMA library fetches
    //    the P2P tokens and programs the card's BUF_LIST / GPU_V2P.
    co_await c->rdma(1).register_buffer(dst, n, core::MemType::kGpu);
    std::printf("[%8.2f us] node 1: GPU buffer registered (%zu bytes)\n",
                units::to_us(sim.now()), static_cast<std::size_t>(n));

    // 2. The sender PUTs its GPU buffer to the remote virtual address.
    //    MemType::kAuto demonstrates UVA-based type detection.
    Time t0 = sim.now();
    auto put = c->rdma(0).put(c->coord(1), src, n, dst, core::MemType::kAuto);
    co_await put.tx_done->wait();
    std::printf("[%8.2f us] node 0: message left the card (TX done)\n",
                units::to_us(sim.now()));

    // 3. The receiver gets a completion event when all packets landed in
    //    GPU memory through the P2P write window.
    core::RdmaEvent ev = co_await c->rdma(1).events().pop();
    std::printf("[%8.2f us] node 1: RX complete, %u bytes from %s — "
                "%.0f MB/s end to end\n",
                units::to_us(sim.now()), ev.bytes,
                core::coord_str(ev.peer).c_str(),
                units::bandwidth_MBps(Bytes(ev.bytes), sim.now() - t0));
  }(cluster.get(), src, dst, kSize);

  sim.run();

  // Verify the bytes really moved GPU-to-GPU through the whole stack.
  std::vector<std::uint8_t> out(kSize);
  cluster->node(1).cuda().move_bytes(
      reinterpret_cast<std::uint64_t>(out.data()), dst, kSize);
  std::printf("data integrity: %s\n",
              out == pattern ? "OK (remote GPU buffer matches source)"
                             : "FAILED");
  return out == pattern ? 0 : 1;
}
