// Watching the GPUDirect peer-to-peer protocol on the (simulated) PCIe bus
// — the methodology behind the paper's Fig. 3. Attaches interposers to the
// APEnet+ and GPU slots, transmits one GPU buffer, and prints the raw
// transaction trace.
//
//   $ ./examples/bus_analyzer
#include <cstdio>

#include "cluster/cluster.hpp"

using namespace apn;

int main() {
  sim::Simulator sim;
  core::ApenetParams params;
  params.flush_at_switch = true;
  params.p2p_tx_version = core::P2pTxVersion::kV2;
  params.p2p_prefetch_window = 32 * 1024;
  auto cluster = cluster::Cluster::make_cluster_i(sim, 1, params, false);
  cluster::Node& node = cluster->node(0);

  pcie::BusAnalyzer card_slot, gpu_slot;
  node.fabric().attach_analyzer(node.card_pcie_node(), card_slot);
  node.fabric().attach_analyzer(node.gpu_pcie_node(0), gpu_slot);

  const std::uint64_t kMsg = 64 * 1024;
  [](cluster::Cluster* c, std::uint64_t n) -> sim::Coro {
    core::RdmaDevice& rdma = c->rdma(0);
    cuda::DevPtr src = c->node(0).cuda().malloc_device(0, n);
    co_await rdma.register_buffer(src, n, core::MemType::kGpu);
    auto put = rdma.put(c->coord(0), src, n, 0x8000, core::MemType::kGpu,
                        false);
    co_await put.tx_done->wait();
  }(cluster.get(), kMsg);
  sim.run();

  std::printf("GPU-slot trace (first 10 transactions):\n");
  std::printf("%12s %-6s %6s %5s\n", "time (us)", "kind", "bytes", "dir");
  int shown = 0;
  for (const auto& ev : gpu_slot.events()) {
    if (shown++ >= 10) break;
    std::printf("%12.3f %-6s %6u %5s\n", units::to_us(ev.time),
                ev.kind == pcie::BusEvent::Kind::kWrite ? "MWr" : "other",
                ev.bytes, ev.downstream ? "down" : "up");
  }
  std::printf("  ... (%zu transactions total: 32 B read-request descriptors "
              "into the P2P mailbox)\n",
              gpu_slot.events().size());

  std::printf("\nAPEnet+-slot trace (first 10 transactions):\n");
  std::printf("%12s %-6s %6s %5s\n", "time (us)", "kind", "bytes", "dir");
  shown = 0;
  std::uint64_t data = 0;
  Time first = -1, last = 0;
  for (const auto& ev : card_slot.events()) {
    if (ev.downstream) {
      if (first < 0) first = ev.time;
      last = ev.time;
      data += ev.bytes;
    }
    if (shown++ < 10)
      std::printf("%12.3f %-6s %6u %5s\n", units::to_us(ev.time),
                  ev.kind == pcie::BusEvent::Kind::kWrite ? "MWr" : "other",
                  ev.bytes, ev.downstream ? "down" : "up");
  }
  std::printf("  ... (%zu transactions total)\n", card_slot.events().size());
  std::printf(
      "\n%llu bytes of GPU data streamed into the card's landing zone in "
      "%.1f us -> %.0f MB/s P2P read bandwidth (Fermi ceiling ~1.5 GB/s).\n",
      static_cast<unsigned long long>(data), units::to_us(last - first),
      units::bandwidth_MBps(data, last - first));
  return 0;
}
