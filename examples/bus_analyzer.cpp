// Watching the GPUDirect peer-to-peer protocol on the (simulated) PCIe bus
// — the methodology behind the paper's Fig. 3. Attaches interposers to the
// APEnet+ and GPU slots, transmits one GPU buffer, and prints the raw
// transaction trace.
//
//   $ ./examples/bus_analyzer
//   $ ./examples/bus_analyzer --trace-out=fig3.json   # Perfetto timeline
//   $ ./examples/bus_analyzer --check                 # race detector on
//   $ ./examples/bus_analyzer --state-hash-out=a.hash # per-event hashes
//
// --check arms the same-tick race detector (same as APN_CHECK=1);
// --coro-check arms the coroutine frame-lifetime oracle (same as
// APN_CORO_CHECK=1), which reports — and fails on — any coroutine frame
// still suspended at exit; --state-hash-out= additionally writes one
// rolling-state-hash line per event, so diffing the files of two runs
// pinpoints the first divergent event (see docs/CORRECTNESS.md).
//
// With --trace-out (or APN_TRACE=1) the run also produces a Chrome
// trace-event JSON: load it in https://ui.perfetto.dev to see the protocol
// phases as distinct spans — the card's TX setup ("tx_setup"), the GPU's
// head latency ("p2p_head") and response streaming ("p2p_stream"), and the
// raw bus transactions mirrored from both analyzer slots.
#include <cstdio>
#include <cstring>
#include <string>

#include "check/check.hpp"
#include "check/coro_check.hpp"
#include "cluster/cluster.hpp"
#include "trace/metrics.hpp"
#include "trace/trace.hpp"

using namespace apn;

int main(int argc, char** argv) {
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--trace-out") == 0) {
      trace_path = "bus_analyzer_trace.json";
    } else if (std::strncmp(a, "--trace-out=", 12) == 0) {
      trace_path = a + 12;
      if (trace_path.empty()) trace_path = "bus_analyzer_trace.json";
    } else if (std::strcmp(a, "--check") == 0) {
      check::Session::force_enable(true);
    } else if (std::strcmp(a, "--coro-check") == 0) {
      check::coro::force_enable(true);
      check::coro::install_exit_report();
    } else if (std::strncmp(a, "--state-hash-out=", 17) == 0) {
      if (a[17] == '\0') {
        std::fprintf(stderr, "error: --state-hash-out= requires a path\n");
        return 2;
      }
      check::Session::force_enable(true);
      check::HashSink::global().open(a + 17);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--trace-out[=path]] [--check] [--coro-check] "
                   "[--state-hash-out=path]\n",
                   argv[0]);
      return 2;
    }
  }

  // The sink must be live before the cluster is built: components open
  // their trace tracks at construction time.
  trace::TraceSink local_sink;
  if (!trace_path.empty()) trace::set_sink(&local_sink);

  sim::Simulator sim;
  core::ApenetParams params;
  params.flush_at_switch = true;
  params.p2p_tx_version = core::P2pTxVersion::kV2;
  params.p2p_prefetch_window = 32 * 1024;
  auto cluster = cluster::Cluster::make_cluster_i(sim, 1, params, false);
  cluster::Node& node = cluster->node(0);

  pcie::BusAnalyzer card_slot, gpu_slot;
  node.fabric().attach_analyzer(node.card_pcie_node(), card_slot);
  node.fabric().attach_analyzer(node.gpu_pcie_node(0), gpu_slot);
  card_slot.bind_trace(
      trace::Track::open(node.fabric().name(), "analyzer.apenet_slot"));
  gpu_slot.bind_trace(
      trace::Track::open(node.fabric().name(), "analyzer.gpu_slot"));

  const std::uint64_t kMsg = 64 * 1024;
  [](cluster::Cluster* c, std::uint64_t n) -> sim::Coro {
    core::RdmaDevice& rdma = c->rdma(0);
    cuda::DevPtr src = c->node(0).cuda().malloc_device(0, n);
    co_await rdma.register_buffer(src, n, core::MemType::kGpu);
    auto put = rdma.put(c->coord(0), src, n, 0x8000, core::MemType::kGpu,
                        false);
    co_await put.tx_done->wait();
  }(cluster.get(), kMsg);
  sim.run();

  std::printf("GPU-slot trace (first 10 transactions):\n");
  std::printf("%12s %-6s %6s %5s\n", "time (us)", "kind", "bytes", "dir");
  int shown = 0;
  for (const auto& ev : gpu_slot.events()) {
    if (shown++ >= 10) break;
    std::printf("%12.3f %-6s %6u %5s\n", units::to_us(ev.time),
                pcie::bus_kind_name(ev.kind), ev.bytes,
                ev.downstream ? "down" : "up");
  }
  std::printf("  ... (%zu transactions total: 32 B read-request descriptors "
              "into the P2P mailbox)\n",
              gpu_slot.events().size());

  std::printf("\nAPEnet+-slot trace (first 10 transactions):\n");
  std::printf("%12s %-6s %6s %5s\n", "time (us)", "kind", "bytes", "dir");
  shown = 0;
  std::uint64_t data = 0;
  Time first = -1, last = 0;
  for (const auto& ev : card_slot.events()) {
    if (ev.downstream) {
      if (first < 0) first = ev.time;
      last = ev.time;
      data += ev.bytes;
    }
    if (shown++ < 10)
      std::printf("%12.3f %-6s %6u %5s\n", units::to_us(ev.time),
                  pcie::bus_kind_name(ev.kind), ev.bytes,
                  ev.downstream ? "down" : "up");
  }
  std::printf("  ... (%zu transactions total)\n", card_slot.events().size());
  std::printf(
      "\n%llu bytes of GPU data streamed into the card's landing zone in "
      "%.1f us -> %.0f MB/s P2P read bandwidth (Fermi ceiling ~1.5 GB/s).\n",
      static_cast<unsigned long long>(data), units::to_us(last - first),
      units::bandwidth_MBps(Bytes(data), last - first));

  if (!trace_path.empty()) {
    if (local_sink.write_chrome_json(trace_path))
      std::printf("\nwrote %zu trace events to %s "
                  "(load in https://ui.perfetto.dev)\n",
                  local_sink.size(), trace_path.c_str());
    else
      std::fprintf(stderr, "\nfailed to write %s\n", trace_path.c_str());
    std::printf("\nmetrics:\n%s",
                trace::MetricsRegistry::global().text().c_str());
    trace::set_sink(nullptr);
  }
  return 0;
}
