// Heisenberg-spin-glass halo exchange: the paper's lattice application
// (§V-D) at a small, fully functional scale. Runs the same physics on four
// nodes in the three communication modes and shows that (a) the energy is
// exactly conserved by over-relaxation through the full network stack, and
// (b) how the modes rank on communication time.
//
//   $ ./examples/halo_exchange
#include <cstdio>

#include "apps/hsg/runner.hpp"

using namespace apn;
using apps::hsg::CommMode;

int main() {
  std::printf("HSG over-relaxation, L=16, NP=4, 3 steps, functional halos\n");
  std::printf("%-10s %12s %12s %16s %14s\n", "mode", "Ttot ps/spin",
              "Tnet ps/spin", "energy drift", "wall (ms)");

  for (CommMode mode :
       {CommMode::kP2pOn, CommMode::kP2pRx, CommMode::kP2pOff}) {
    sim::Simulator sim;
    auto cluster = cluster::Cluster::make_cluster_i(
        sim, 4, core::ApenetParams{}, /*with_ib=*/false);
    apps::hsg::HsgConfig cfg;
    cfg.L = 16;
    cfg.steps = 3;
    cfg.mode = mode;
    cfg.functional = true;  // real spins, real halo bytes on the wire
    apps::hsg::HsgRun run(*cluster, cfg);
    apps::hsg::HsgMetrics m = run.run();
    std::printf("%-10s %12.0f %12.0f %16.3g %14.3f\n",
                apps::hsg::comm_mode_name(mode), m.ttot_ps, m.tnet_ps,
                (m.energy_final - m.energy_initial) /
                    std::abs(m.energy_initial),
                units::to_ms(m.wall));
  }
  std::printf(
      "\nOver-relaxation reflects each spin about its local field, so the\n"
      "energy drift must be at floating-point level no matter which\n"
      "network path carried the halos.\n");
  return 0;
}
