// RDMA-native collectives on the 8-node torus: a dissemination barrier and
// an allreduce built from nothing but APEnet+ PUTs — the style the paper's
// applications synchronize with (there is no MPI on APEnet+).
//
//   $ ./examples/collectives_demo
#include <cstdio>

#include "cluster/collectives.hpp"

using namespace apn;

int main() {
  sim::Simulator sim;
  auto cluster = cluster::Cluster::make_cluster_i(sim, 8,
                                                  core::ApenetParams{},
                                                  /*with_ib=*/false);
  cluster::Collectives coll(*cluster);
  auto ready = coll.setup();
  sim.run();
  if (!ready.ready()) return 1;

  std::printf("8 ranks on the 4x2 torus; slots registered.\n\n");

  // Every rank: compute for a rank-dependent time, hit a barrier, then
  // allreduce its partial value.
  auto sums = std::make_shared<std::vector<std::uint64_t>>(8, 0);
  for (int r = 0; r < 8; ++r) {
    [](cluster::Cluster* c, cluster::Collectives* coll, int r,
       std::shared_ptr<std::vector<std::uint64_t>> sums) -> sim::Coro {
      sim::Simulator& sim = c->simulator();
      // Uneven "compute": rank r works for 10*(r+1) us.
      co_await sim::delay(sim, units::us(10.0 * (r + 1)));
      Time t0 = sim.now();
      co_await coll->barrier(r);
      std::printf("rank %d: entered at %5.1f us, barrier released at "
                  "%5.1f us (waited %5.1f us)\n",
                  r, units::to_us(t0), units::to_us(sim.now()),
                  units::to_us(sim.now() - t0));
      std::uint64_t partial = static_cast<std::uint64_t>(r + 1) * 100;
      (*sums)[static_cast<std::size_t>(r)] =
          co_await coll->allreduce_sum(r, partial);
    }(cluster.get(), &coll, r, sums);
  }
  sim.run();

  std::printf("\nallreduce: every rank sees the global sum = %llu "
              "(expected %d)\n",
              static_cast<unsigned long long>((*sums)[0]), 3600);
  bool ok = true;
  for (auto v : *sums) ok = ok && v == 3600;
  std::printf("all ranks agree: %s\n", ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
