# Empty dependencies file for bench_ablation_granule.
# This may be replaced when dependencies are built.
