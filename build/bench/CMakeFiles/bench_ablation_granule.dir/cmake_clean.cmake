file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_granule.dir/bench_ablation_granule.cpp.o"
  "CMakeFiles/bench_ablation_granule.dir/bench_ablation_granule.cpp.o.d"
  "bench_ablation_granule"
  "bench_ablation_granule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_granule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
