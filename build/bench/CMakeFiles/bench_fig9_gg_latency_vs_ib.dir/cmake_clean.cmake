file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_gg_latency_vs_ib.dir/bench_fig9_gg_latency_vs_ib.cpp.o"
  "CMakeFiles/bench_fig9_gg_latency_vs_ib.dir/bench_fig9_gg_latency_vs_ib.cpp.o.d"
  "bench_fig9_gg_latency_vs_ib"
  "bench_fig9_gg_latency_vs_ib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_gg_latency_vs_ib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
