# Empty dependencies file for bench_fig9_gg_latency_vs_ib.
# This may be replaced when dependencies are built.
