file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_hsg2d.dir/bench_ext_hsg2d.cpp.o"
  "CMakeFiles/bench_ext_hsg2d.dir/bench_ext_hsg2d.cpp.o.d"
  "bench_ext_hsg2d"
  "bench_ext_hsg2d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_hsg2d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
