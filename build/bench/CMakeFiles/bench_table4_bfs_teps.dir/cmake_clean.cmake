file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_bfs_teps.dir/bench_table4_bfs_teps.cpp.o"
  "CMakeFiles/bench_table4_bfs_teps.dir/bench_table4_bfs_teps.cpp.o.d"
  "bench_table4_bfs_teps"
  "bench_table4_bfs_teps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_bfs_teps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
