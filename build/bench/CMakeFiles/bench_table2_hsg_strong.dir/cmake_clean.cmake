file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_hsg_strong.dir/bench_table2_hsg_strong.cpp.o"
  "CMakeFiles/bench_table2_hsg_strong.dir/bench_table2_hsg_strong.cpp.o.d"
  "bench_table2_hsg_strong"
  "bench_table2_hsg_strong.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_hsg_strong.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
