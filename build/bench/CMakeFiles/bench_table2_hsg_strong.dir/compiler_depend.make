# Empty compiler generated dependencies file for bench_table2_hsg_strong.
# This may be replaced when dependencies are built.
