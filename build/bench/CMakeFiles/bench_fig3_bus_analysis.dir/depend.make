# Empty dependencies file for bench_fig3_bus_analysis.
# This may be replaced when dependencies are built.
