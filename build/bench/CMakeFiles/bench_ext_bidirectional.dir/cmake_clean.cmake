file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_bidirectional.dir/bench_ext_bidirectional.cpp.o"
  "CMakeFiles/bench_ext_bidirectional.dir/bench_ext_bidirectional.cpp.o.d"
  "bench_ext_bidirectional"
  "bench_ext_bidirectional.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_bidirectional.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
