# Empty dependencies file for bench_ext_bidirectional.
# This may be replaced when dependencies are built.
