# Empty dependencies file for bench_table3_hsg_breakdown.
# This may be replaced when dependencies are built.
