# Empty dependencies file for bench_fig4_read_prefetch.
# This may be replaced when dependencies are built.
