file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_loopback_prefetch.dir/bench_fig5_loopback_prefetch.cpp.o"
  "CMakeFiles/bench_fig5_loopback_prefetch.dir/bench_fig5_loopback_prefetch.cpp.o.d"
  "bench_fig5_loopback_prefetch"
  "bench_fig5_loopback_prefetch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_loopback_prefetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
