# Empty dependencies file for bench_fig5_loopback_prefetch.
# This may be replaced when dependencies are built.
