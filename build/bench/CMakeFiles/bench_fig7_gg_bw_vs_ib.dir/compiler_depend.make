# Empty compiler generated dependencies file for bench_fig7_gg_bw_vs_ib.
# This may be replaced when dependencies are built.
