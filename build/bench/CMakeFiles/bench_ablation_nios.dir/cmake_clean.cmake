file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_nios.dir/bench_ablation_nios.cpp.o"
  "CMakeFiles/bench_ablation_nios.dir/bench_ablation_nios.cpp.o.d"
  "bench_ablation_nios"
  "bench_ablation_nios.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_nios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
