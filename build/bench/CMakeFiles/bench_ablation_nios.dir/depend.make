# Empty dependencies file for bench_ablation_nios.
# This may be replaced when dependencies are built.
