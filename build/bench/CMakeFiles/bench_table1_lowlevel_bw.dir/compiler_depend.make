# Empty compiler generated dependencies file for bench_table1_lowlevel_bw.
# This may be replaced when dependencies are built.
