file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_lowlevel_bw.dir/bench_table1_lowlevel_bw.cpp.o"
  "CMakeFiles/bench_table1_lowlevel_bw.dir/bench_table1_lowlevel_bw.cpp.o.d"
  "bench_table1_lowlevel_bw"
  "bench_table1_lowlevel_bw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_lowlevel_bw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
