# Empty dependencies file for bench_ext_scaleout.
# This may be replaced when dependencies are built.
