file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_latency_combos.dir/bench_fig8_latency_combos.cpp.o"
  "CMakeFiles/bench_fig8_latency_combos.dir/bench_fig8_latency_combos.cpp.o.d"
  "bench_fig8_latency_combos"
  "bench_fig8_latency_combos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_latency_combos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
