# Empty dependencies file for bench_fig6_twonode_bw.
# This may be replaced when dependencies are built.
