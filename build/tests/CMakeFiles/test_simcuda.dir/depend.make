# Empty dependencies file for test_simcuda.
# This may be replaced when dependencies are built.
