file(REMOVE_RECURSE
  "CMakeFiles/test_simcuda.dir/test_runtime.cpp.o"
  "CMakeFiles/test_simcuda.dir/test_runtime.cpp.o.d"
  "CMakeFiles/test_simcuda.dir/test_stream.cpp.o"
  "CMakeFiles/test_simcuda.dir/test_stream.cpp.o.d"
  "test_simcuda"
  "test_simcuda.pdb"
  "test_simcuda[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simcuda.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
