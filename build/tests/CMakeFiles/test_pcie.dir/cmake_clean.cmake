file(REMOVE_RECURSE
  "CMakeFiles/test_pcie.dir/test_fabric.cpp.o"
  "CMakeFiles/test_pcie.dir/test_fabric.cpp.o.d"
  "CMakeFiles/test_pcie.dir/test_link.cpp.o"
  "CMakeFiles/test_pcie.dir/test_link.cpp.o.d"
  "CMakeFiles/test_pcie.dir/test_memory.cpp.o"
  "CMakeFiles/test_pcie.dir/test_memory.cpp.o.d"
  "test_pcie"
  "test_pcie.pdb"
  "test_pcie[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pcie.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
