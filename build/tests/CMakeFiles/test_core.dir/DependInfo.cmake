
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_bar1_put.cpp" "tests/CMakeFiles/test_core.dir/test_bar1_put.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/test_bar1_put.cpp.o.d"
  "/root/repo/tests/test_card_rx.cpp" "tests/CMakeFiles/test_core.dir/test_card_rx.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/test_card_rx.cpp.o.d"
  "/root/repo/tests/test_card_tx.cpp" "tests/CMakeFiles/test_core.dir/test_card_tx.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/test_card_tx.cpp.o.d"
  "/root/repo/tests/test_gpu_p2p_tx.cpp" "tests/CMakeFiles/test_core.dir/test_gpu_p2p_tx.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/test_gpu_p2p_tx.cpp.o.d"
  "/root/repo/tests/test_network.cpp" "tests/CMakeFiles/test_core.dir/test_network.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/test_network.cpp.o.d"
  "/root/repo/tests/test_rdma_api.cpp" "tests/CMakeFiles/test_core.dir/test_rdma_api.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/test_rdma_api.cpp.o.d"
  "/root/repo/tests/test_torus.cpp" "tests/CMakeFiles/test_core.dir/test_torus.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/test_torus.cpp.o.d"
  "/root/repo/tests/test_v2p.cpp" "tests/CMakeFiles/test_core.dir/test_v2p.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/test_v2p.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pcie/CMakeFiles/apn_pcie.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/apn_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/simcuda/CMakeFiles/apn_simcuda.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/apn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ib/CMakeFiles/apn_ib.dir/DependInfo.cmake"
  "/root/repo/build/src/minimpi/CMakeFiles/apn_minimpi.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/apn_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/apn_apps.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
