file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/test_bar1_put.cpp.o"
  "CMakeFiles/test_core.dir/test_bar1_put.cpp.o.d"
  "CMakeFiles/test_core.dir/test_card_rx.cpp.o"
  "CMakeFiles/test_core.dir/test_card_rx.cpp.o.d"
  "CMakeFiles/test_core.dir/test_card_tx.cpp.o"
  "CMakeFiles/test_core.dir/test_card_tx.cpp.o.d"
  "CMakeFiles/test_core.dir/test_gpu_p2p_tx.cpp.o"
  "CMakeFiles/test_core.dir/test_gpu_p2p_tx.cpp.o.d"
  "CMakeFiles/test_core.dir/test_network.cpp.o"
  "CMakeFiles/test_core.dir/test_network.cpp.o.d"
  "CMakeFiles/test_core.dir/test_rdma_api.cpp.o"
  "CMakeFiles/test_core.dir/test_rdma_api.cpp.o.d"
  "CMakeFiles/test_core.dir/test_torus.cpp.o"
  "CMakeFiles/test_core.dir/test_torus.cpp.o.d"
  "CMakeFiles/test_core.dir/test_v2p.cpp.o"
  "CMakeFiles/test_core.dir/test_v2p.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
