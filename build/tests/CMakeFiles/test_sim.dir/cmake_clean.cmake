file(REMOVE_RECURSE
  "CMakeFiles/test_sim.dir/test_channel.cpp.o"
  "CMakeFiles/test_sim.dir/test_channel.cpp.o.d"
  "CMakeFiles/test_sim.dir/test_coro.cpp.o"
  "CMakeFiles/test_sim.dir/test_coro.cpp.o.d"
  "CMakeFiles/test_sim.dir/test_resource.cpp.o"
  "CMakeFiles/test_sim.dir/test_resource.cpp.o.d"
  "CMakeFiles/test_sim.dir/test_sim_stress.cpp.o"
  "CMakeFiles/test_sim.dir/test_sim_stress.cpp.o.d"
  "CMakeFiles/test_sim.dir/test_simulator.cpp.o"
  "CMakeFiles/test_sim.dir/test_simulator.cpp.o.d"
  "CMakeFiles/test_sim.dir/test_sync.cpp.o"
  "CMakeFiles/test_sim.dir/test_sync.cpp.o.d"
  "test_sim"
  "test_sim.pdb"
  "test_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
