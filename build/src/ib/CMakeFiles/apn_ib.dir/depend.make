# Empty dependencies file for apn_ib.
# This may be replaced when dependencies are built.
