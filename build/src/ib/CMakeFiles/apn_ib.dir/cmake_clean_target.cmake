file(REMOVE_RECURSE
  "libapn_ib.a"
)
