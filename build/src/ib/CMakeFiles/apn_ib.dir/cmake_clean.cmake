file(REMOVE_RECURSE
  "CMakeFiles/apn_ib.dir/hca.cpp.o"
  "CMakeFiles/apn_ib.dir/hca.cpp.o.d"
  "libapn_ib.a"
  "libapn_ib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apn_ib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
