# Empty dependencies file for apn_minimpi.
# This may be replaced when dependencies are built.
