file(REMOVE_RECURSE
  "CMakeFiles/apn_minimpi.dir/comm.cpp.o"
  "CMakeFiles/apn_minimpi.dir/comm.cpp.o.d"
  "libapn_minimpi.a"
  "libapn_minimpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apn_minimpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
