file(REMOVE_RECURSE
  "libapn_minimpi.a"
)
