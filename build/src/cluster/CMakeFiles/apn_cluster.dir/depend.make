# Empty dependencies file for apn_cluster.
# This may be replaced when dependencies are built.
