file(REMOVE_RECURSE
  "libapn_cluster.a"
)
