file(REMOVE_RECURSE
  "CMakeFiles/apn_cluster.dir/cluster.cpp.o"
  "CMakeFiles/apn_cluster.dir/cluster.cpp.o.d"
  "CMakeFiles/apn_cluster.dir/collectives.cpp.o"
  "CMakeFiles/apn_cluster.dir/collectives.cpp.o.d"
  "CMakeFiles/apn_cluster.dir/harness.cpp.o"
  "CMakeFiles/apn_cluster.dir/harness.cpp.o.d"
  "libapn_cluster.a"
  "libapn_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apn_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
