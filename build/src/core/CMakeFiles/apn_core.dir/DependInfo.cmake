
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/card.cpp" "src/core/CMakeFiles/apn_core.dir/card.cpp.o" "gcc" "src/core/CMakeFiles/apn_core.dir/card.cpp.o.d"
  "/root/repo/src/core/gpu_p2p_tx.cpp" "src/core/CMakeFiles/apn_core.dir/gpu_p2p_tx.cpp.o" "gcc" "src/core/CMakeFiles/apn_core.dir/gpu_p2p_tx.cpp.o.d"
  "/root/repo/src/core/network.cpp" "src/core/CMakeFiles/apn_core.dir/network.cpp.o" "gcc" "src/core/CMakeFiles/apn_core.dir/network.cpp.o.d"
  "/root/repo/src/core/rdma.cpp" "src/core/CMakeFiles/apn_core.dir/rdma.cpp.o" "gcc" "src/core/CMakeFiles/apn_core.dir/rdma.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gpu/CMakeFiles/apn_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/simcuda/CMakeFiles/apn_simcuda.dir/DependInfo.cmake"
  "/root/repo/build/src/pcie/CMakeFiles/apn_pcie.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
