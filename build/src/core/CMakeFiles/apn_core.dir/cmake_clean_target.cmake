file(REMOVE_RECURSE
  "libapn_core.a"
)
