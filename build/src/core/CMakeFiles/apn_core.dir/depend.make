# Empty dependencies file for apn_core.
# This may be replaced when dependencies are built.
