file(REMOVE_RECURSE
  "CMakeFiles/apn_core.dir/card.cpp.o"
  "CMakeFiles/apn_core.dir/card.cpp.o.d"
  "CMakeFiles/apn_core.dir/gpu_p2p_tx.cpp.o"
  "CMakeFiles/apn_core.dir/gpu_p2p_tx.cpp.o.d"
  "CMakeFiles/apn_core.dir/network.cpp.o"
  "CMakeFiles/apn_core.dir/network.cpp.o.d"
  "CMakeFiles/apn_core.dir/rdma.cpp.o"
  "CMakeFiles/apn_core.dir/rdma.cpp.o.d"
  "libapn_core.a"
  "libapn_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apn_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
