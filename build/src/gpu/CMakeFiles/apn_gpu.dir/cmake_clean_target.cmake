file(REMOVE_RECURSE
  "libapn_gpu.a"
)
