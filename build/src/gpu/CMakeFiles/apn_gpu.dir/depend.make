# Empty dependencies file for apn_gpu.
# This may be replaced when dependencies are built.
