file(REMOVE_RECURSE
  "CMakeFiles/apn_gpu.dir/gpu.cpp.o"
  "CMakeFiles/apn_gpu.dir/gpu.cpp.o.d"
  "libapn_gpu.a"
  "libapn_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apn_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
