file(REMOVE_RECURSE
  "CMakeFiles/apn_simcuda.dir/runtime.cpp.o"
  "CMakeFiles/apn_simcuda.dir/runtime.cpp.o.d"
  "libapn_simcuda.a"
  "libapn_simcuda.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apn_simcuda.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
