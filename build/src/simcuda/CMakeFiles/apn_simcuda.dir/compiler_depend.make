# Empty compiler generated dependencies file for apn_simcuda.
# This may be replaced when dependencies are built.
