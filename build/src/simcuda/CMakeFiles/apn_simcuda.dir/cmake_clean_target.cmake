file(REMOVE_RECURSE
  "libapn_simcuda.a"
)
