# Empty compiler generated dependencies file for apn_apps.
# This may be replaced when dependencies are built.
