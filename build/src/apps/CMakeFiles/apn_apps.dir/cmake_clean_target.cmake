file(REMOVE_RECURSE
  "libapn_apps.a"
)
