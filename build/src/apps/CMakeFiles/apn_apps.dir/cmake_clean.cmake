file(REMOVE_RECURSE
  "CMakeFiles/apn_apps.dir/bfs/bfs.cpp.o"
  "CMakeFiles/apn_apps.dir/bfs/bfs.cpp.o.d"
  "CMakeFiles/apn_apps.dir/bfs/graph.cpp.o"
  "CMakeFiles/apn_apps.dir/bfs/graph.cpp.o.d"
  "CMakeFiles/apn_apps.dir/hsg/lattice.cpp.o"
  "CMakeFiles/apn_apps.dir/hsg/lattice.cpp.o.d"
  "CMakeFiles/apn_apps.dir/hsg/lattice2d.cpp.o"
  "CMakeFiles/apn_apps.dir/hsg/lattice2d.cpp.o.d"
  "CMakeFiles/apn_apps.dir/hsg/runner.cpp.o"
  "CMakeFiles/apn_apps.dir/hsg/runner.cpp.o.d"
  "CMakeFiles/apn_apps.dir/hsg/runner2d.cpp.o"
  "CMakeFiles/apn_apps.dir/hsg/runner2d.cpp.o.d"
  "libapn_apps.a"
  "libapn_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apn_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
