file(REMOVE_RECURSE
  "libapn_pcie.a"
)
