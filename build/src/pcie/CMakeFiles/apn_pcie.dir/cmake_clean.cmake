file(REMOVE_RECURSE
  "CMakeFiles/apn_pcie.dir/fabric.cpp.o"
  "CMakeFiles/apn_pcie.dir/fabric.cpp.o.d"
  "libapn_pcie.a"
  "libapn_pcie.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apn_pcie.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
