# Empty compiler generated dependencies file for apn_pcie.
# This may be replaced when dependencies are built.
