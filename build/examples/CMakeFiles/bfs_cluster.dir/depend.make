# Empty dependencies file for bfs_cluster.
# This may be replaced when dependencies are built.
