file(REMOVE_RECURSE
  "CMakeFiles/bfs_cluster.dir/bfs_cluster.cpp.o"
  "CMakeFiles/bfs_cluster.dir/bfs_cluster.cpp.o.d"
  "bfs_cluster"
  "bfs_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bfs_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
