file(REMOVE_RECURSE
  "CMakeFiles/collectives_demo.dir/collectives_demo.cpp.o"
  "CMakeFiles/collectives_demo.dir/collectives_demo.cpp.o.d"
  "collectives_demo"
  "collectives_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collectives_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
