# Empty dependencies file for bus_analyzer.
# This may be replaced when dependencies are built.
