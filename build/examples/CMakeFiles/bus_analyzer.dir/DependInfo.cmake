
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/bus_analyzer.cpp" "examples/CMakeFiles/bus_analyzer.dir/bus_analyzer.cpp.o" "gcc" "examples/CMakeFiles/bus_analyzer.dir/bus_analyzer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cluster/CMakeFiles/apn_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/apn_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/minimpi/CMakeFiles/apn_minimpi.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/apn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ib/CMakeFiles/apn_ib.dir/DependInfo.cmake"
  "/root/repo/build/src/simcuda/CMakeFiles/apn_simcuda.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/apn_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/pcie/CMakeFiles/apn_pcie.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
