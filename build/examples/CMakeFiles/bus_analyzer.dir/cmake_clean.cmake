file(REMOVE_RECURSE
  "CMakeFiles/bus_analyzer.dir/bus_analyzer.cpp.o"
  "CMakeFiles/bus_analyzer.dir/bus_analyzer.cpp.o.d"
  "bus_analyzer"
  "bus_analyzer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bus_analyzer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
