// Parameterized sweeps over model knobs: monotonicity and sanity
// properties that must hold for ANY configuration, not just the paper's.
#include <gtest/gtest.h>

#include "apps/hsg/runner.hpp"
#include "cluster/cluster.hpp"
#include "cluster/harness.hpp"

namespace apn {
namespace {

using cluster::Cluster;
using core::ApenetParams;
using core::MemType;

// ---- PCIe link parameter space -------------------------------------------

class LinkSweep : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(LinkSweep, EffectiveRateScalesWithWidthAndGen) {
  auto [gen, lanes] = GetParam();
  pcie::LinkParams l;
  l.gen = gen;
  l.lanes = lanes;
  EXPECT_GT(l.raw_rate().bytes_per_sec(), 0.0);
  EXPECT_LT(l.effective_rate(), l.raw_rate());
  // Doubling lanes doubles the rate exactly.
  pcie::LinkParams wide = l;
  wide.lanes = lanes * 2;
  EXPECT_DOUBLE_EQ(wide.raw_rate().bytes_per_sec(),
                   (l.raw_rate() * 2.0).bytes_per_sec());
  // Serialization is monotone in size.
  EXPECT_LT(l.serialize_time(Bytes(4096)), l.serialize_time(Bytes(8192)));
}

INSTANTIATE_TEST_SUITE_P(
    GenLanes, LinkSweep,
    ::testing::Values(std::make_pair(1, 4), std::make_pair(1, 8),
                      std::make_pair(2, 4), std::make_pair(2, 8),
                      std::make_pair(2, 16), std::make_pair(3, 8)),
    [](const auto& info) {
      return "gen" + std::to_string(info.param.first) + "x" +
             std::to_string(info.param.second);
    });

// ---- torus shapes ------------------------------------------------------------

class TorusSweep : public ::testing::TestWithParam<core::TorusShape> {};

TEST_P(TorusSweep, RoutingReachesEveryPairMinimally) {
  core::TorusShape s = GetParam();
  for (int from = 0; from < s.size(); ++from) {
    for (int to = 0; to < s.size(); ++to) {
      core::TorusCoord here = s.coord(from);
      core::TorusCoord dst = s.coord(to);
      int hops = 0;
      while (!(here == dst)) {
        here = s.neighbor(here, s.route_next(here, dst));
        ASSERT_LE(++hops, s.nx + s.ny + s.nz);
      }
      ASSERT_EQ(hops, s.hop_count(s.coord(from), dst));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TorusSweep,
    ::testing::Values(core::TorusShape{2, 1, 1}, core::TorusShape{4, 1, 1},
                      core::TorusShape{4, 2, 1}, core::TorusShape{2, 2, 2},
                      core::TorusShape{4, 2, 2}, core::TorusShape{4, 2, 3},
                      core::TorusShape{3, 3, 3}),
    [](const auto& info) {
      return "t" + std::to_string(info.param.nx) +
             std::to_string(info.param.ny) + std::to_string(info.param.nz);
    });

// ---- prefetch window monotonicity across versions -----------------------------

class WindowSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(WindowSweep, V2BandwidthNonDecreasingInWindow) {
  auto bw = [](std::uint32_t window) {
    sim::Simulator sim;
    ApenetParams p;
    p.flush_at_switch = true;
    p.p2p_tx_version = core::P2pTxVersion::kV2;
    p.p2p_prefetch_window = window;
    auto c = Cluster::make_cluster_i(sim, 1, p, false);
    return cluster::loopback_bandwidth(*c, 0, MemType::kGpu, 512 * 1024, 8)
        .mbps;
  };
  std::uint32_t w = GetParam();
  EXPECT_LE(bw(w), bw(w * 2) * 1.02) << "window " << w;
}

INSTANTIATE_TEST_SUITE_P(Windows, WindowSweep,
                         ::testing::Values(4096u, 8192u, 16384u, 32768u),
                         [](const auto& info) {
                           return "w" + std::to_string(info.param / 1024) +
                                  "K";
                         });

// ---- torus link speed affects only the wire -----------------------------------

TEST(ParamSweep, SlowerTorusLinksLowerTwoNodeBandwidth) {
  auto bw = [](double gbps) {
    sim::Simulator sim;
    ApenetParams p;
    p.torus_link_gbps = gbps;
    auto c = Cluster::make_cluster_i(sim, 2, p, false);
    return cluster::twonode_bandwidth(*c, 1 << 20, 24,
                                      cluster::TwoNodeOptions{})
        .mbps;
  };
  double fast = bw(28.0);
  double slow = bw(8.0);  // below the RX bound: the wire becomes binding
  EXPECT_LT(slow, fast);
  EXPECT_LT(slow, 1000.0);  // 8 Gbps = 1 GB/s raw minus packet overhead
}

TEST(ParamSweep, RxCostsControlTheLoopbackCap) {
  auto bw = [](double scale) {
    sim::Simulator sim;
    ApenetParams p;
    p.nios.rx_buflist_base =
        static_cast<Time>(static_cast<double>(p.nios.rx_buflist_base) * scale);
    p.nios.rx_v2p =
        static_cast<Time>(static_cast<double>(p.nios.rx_v2p) * scale);
    p.nios.rx_dma_kick =
        static_cast<Time>(static_cast<double>(p.nios.rx_dma_kick) * scale);
    auto c = Cluster::make_cluster_i(sim, 1, p, false);
    return cluster::loopback_bandwidth(*c, 0, MemType::kHost, 1 << 20, 16)
        .mbps;
  };
  double baseline = bw(1.0);
  double doubled = bw(2.0);
  EXPECT_NEAR(doubled, baseline / 2, baseline * 0.1);
}

// ---- HSG occupancy model -----------------------------------------------------

TEST(ParamSweep, HsgOccupancyPenalizesTinyKernels) {
  auto ttot = [](std::uint64_t knee) {
    sim::Simulator sim;
    auto c = Cluster::make_cluster_i(sim, 1, ApenetParams{}, false);
    apps::hsg::HsgConfig cfg;
    cfg.L = 32;  // 16K-site kernels: far below the default knee
    cfg.steps = 2;
    cfg.functional = false;
    cfg.occupancy_knee_sites = knee;
    apps::hsg::HsgRun run(*c, cfg);
    return run.run().ttot_ps;
  };
  double with_model = ttot(150000);
  double without = ttot(0);
  EXPECT_GT(with_model, without * 2.0);
}

}  // namespace
}  // namespace apn
