#include <gtest/gtest.h>

#include "apps/bfs/bfs.hpp"

namespace apn::apps::bfs {
namespace {

using cluster::Cluster;

// ---------------------------------------------------------------------------
// Graph machinery
// ---------------------------------------------------------------------------

TEST(Rmat, SizesMatchParameters) {
  EdgeList el = rmat(10, 16, 1);
  EXPECT_EQ(el.n_vertices, 1024u);
  EXPECT_EQ(el.edges.size(), 16384u);
  for (auto [u, v] : el.edges) {
    EXPECT_LT(u, 1024u);
    EXPECT_LT(v, 1024u);
  }
}

TEST(Rmat, DeterministicForSeed) {
  EdgeList a = rmat(8, 8, 3), b = rmat(8, 8, 3);
  EXPECT_EQ(a.edges, b.edges);
  EdgeList c = rmat(8, 8, 4);
  EXPECT_NE(a.edges, c.edges);
}

TEST(Rmat, SkewedDegreeDistribution) {
  EdgeList el = rmat(12, 16, 1);
  Csr g(el);
  std::uint32_t max_deg = 0;
  for (Vertex v = 0; v < g.num_vertices(); ++v)
    max_deg = std::max(max_deg, g.degree(v));
  // Power-law-ish: the hottest vertex is far above the mean degree (32).
  EXPECT_GT(max_deg, 200u);
}

TEST(Csr, UndirectedAndSymmetric) {
  EdgeList el;
  el.n_vertices = 4;
  el.edges = {{0, 1}, {1, 2}, {2, 2}, {0, 3}};  // one self-loop dropped
  Csr g(el);
  EXPECT_EQ(g.num_input_edges(), 3u);
  EXPECT_EQ(g.num_directed_edges(), 6u);
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(2), 1u);
  // Symmetry: w in adj(v) <=> v in adj(w).
  for (Vertex v = 0; v < 4; ++v)
    for (Vertex w : g.neighbors(v)) {
      bool found = false;
      for (Vertex x : g.neighbors(w))
        if (x == v) found = true;
      EXPECT_TRUE(found);
    }
}

TEST(SequentialBfs, LevelsOnKnownGraph) {
  EdgeList el;
  el.n_vertices = 6;
  el.edges = {{0, 1}, {1, 2}, {2, 3}, {0, 4}};  // 5 is isolated
  Csr g(el);
  auto lv = bfs_levels(g, 0);
  EXPECT_EQ(lv[0], 0);
  EXPECT_EQ(lv[1], 1);
  EXPECT_EQ(lv[2], 2);
  EXPECT_EQ(lv[3], 3);
  EXPECT_EQ(lv[4], 1);
  EXPECT_EQ(lv[5], kUnreached);
}

TEST(ValidateParents, AcceptsCorrectTree) {
  EdgeList el = rmat(8, 8, 2);
  Csr g(el);
  Vertex root = pick_root(g, 1);
  auto lv = bfs_levels(g, root);
  // Build a parent tree from levels.
  std::vector<std::int64_t> parents(g.num_vertices(), kUnreached);
  parents[root] = root;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    if (lv[v] <= 0) continue;
    for (Vertex w : g.neighbors(v))
      if (lv[w] == lv[v] - 1) {
        parents[v] = w;
        break;
      }
  }
  std::string err;
  EXPECT_TRUE(validate_parents(g, root, parents, &err)) << err;
}

TEST(ValidateParents, RejectsBrokenTrees) {
  EdgeList el;
  el.n_vertices = 4;
  el.edges = {{0, 1}, {1, 2}, {2, 3}};
  Csr g(el);
  std::vector<std::int64_t> parents = {0, 0, 1, 2};
  EXPECT_TRUE(validate_parents(g, 0, parents));
  // Parent edge not in graph.
  std::vector<std::int64_t> bad1 = {0, 0, 0, 2};  // 2's parent 0: no edge
  EXPECT_FALSE(validate_parents(g, 0, bad1));
  // Root not its own parent.
  std::vector<std::int64_t> bad2 = {1, 0, 1, 2};
  EXPECT_FALSE(validate_parents(g, 0, bad2));
  // Unreached vertex that the reference reaches.
  std::vector<std::int64_t> bad3 = {0, 0, 1, kUnreached};
  EXPECT_FALSE(validate_parents(g, 0, bad3));
}

TEST(TraversedEdges, CountsComponentEdgesOnce) {
  EdgeList el;
  el.n_vertices = 5;
  el.edges = {{0, 1}, {1, 2}, {3, 4}};  // two components
  Csr g(el);
  auto lv = bfs_levels(g, 0);
  EXPECT_EQ(traversed_edges(g, lv), 2u);
}

// ---------------------------------------------------------------------------
// Distributed BFS through the full stack
// ---------------------------------------------------------------------------

class BfsNetTest : public ::testing::TestWithParam<std::pair<BfsNet, int>> {};

TEST_P(BfsNetTest, ParentTreeValidatesEndToEnd) {
  auto [net, np] = GetParam();
  sim::Simulator sim;
  std::unique_ptr<Cluster> c =
      net == BfsNet::kIb
          ? Cluster::make_cluster_ii(sim, np)
          : Cluster::make_cluster_i(sim, np, core::ApenetParams{}, false);
  BfsConfig cfg;
  cfg.scale = 9;
  cfg.edge_factor = 8;
  cfg.net = net;
  BfsRun run(*c, cfg);
  BfsMetrics m = run.run();
  EXPECT_TRUE(m.validated);
  EXPECT_GT(m.teps, 0.0);
  EXPECT_GT(m.levels, 1);
}

INSTANTIATE_TEST_SUITE_P(
    NetsAndSizes, BfsNetTest,
    ::testing::Values(std::make_pair(BfsNet::kApenet, 1),
                      std::make_pair(BfsNet::kApenet, 2),
                      std::make_pair(BfsNet::kApenet, 4),
                      std::make_pair(BfsNet::kApenet, 8),
                      std::make_pair(BfsNet::kIb, 2),
                      std::make_pair(BfsNet::kIb, 4)),
    [](const auto& info) {
      return std::string(info.param.first == BfsNet::kApenet ? "Apenet"
                                                             : "Ib") +
             std::to_string(info.param.second);
    });

TEST(BfsRun, EdgesTraversedMatchesSequentialReference) {
  sim::Simulator sim;
  auto c = Cluster::make_cluster_i(sim, 2, core::ApenetParams{}, false);
  BfsConfig cfg;
  cfg.scale = 8;
  cfg.edge_factor = 8;
  BfsRun run(*c, cfg);
  BfsMetrics m = run.run();
  auto lv = bfs_levels(run.graph(), run.root());
  EXPECT_EQ(m.edges_traversed, traversed_edges(run.graph(), lv));
  std::int64_t max_level = 0;
  for (auto l : lv) max_level = std::max(max_level, l);
  EXPECT_EQ(m.levels, max_level + 1);
}

TEST(BfsRun, MultiRootHarmonicMean) {
  sim::Simulator sim;
  auto c = Cluster::make_cluster_i(sim, 2, core::ApenetParams{}, false);
  BfsConfig cfg;
  cfg.scale = 9;
  cfg.edge_factor = 8;
  BfsRun run(*c, cfg);
  BfsSummary s = run.run_roots(4);
  EXPECT_EQ(s.roots, 4);
  EXPECT_TRUE(s.all_validated);
  EXPECT_GT(s.min_teps, 0.0);
  EXPECT_LE(s.min_teps, s.harmonic_mean_teps);
  EXPECT_LE(s.harmonic_mean_teps, s.max_teps);
  // Harmonic mean never exceeds the arithmetic mean.
  EXPECT_LE(s.harmonic_mean_teps, (s.min_teps + s.max_teps));
}

TEST(BfsRun, DifferentRootsGiveDifferentTraversals) {
  sim::Simulator sim;
  auto c = Cluster::make_cluster_i(sim, 2, core::ApenetParams{}, false);
  BfsConfig cfg;
  cfg.scale = 9;
  cfg.edge_factor = 8;
  cfg.root_seed = 1;
  BfsRun run(*c, cfg);
  BfsMetrics a = run.run();
  BfsSummary s = run.run_roots(3);
  EXPECT_TRUE(s.all_validated);
  (void)a;
}

TEST(BfsRun, CommTimeGrowsWithRanks) {
  auto comm = [](int np) {
    sim::Simulator sim;
    auto c = Cluster::make_cluster_i(sim, np, core::ApenetParams{}, false);
    BfsConfig cfg;
    cfg.scale = 10;
    cfg.edge_factor = 8;
    BfsRun run(*c, cfg);
    return run.run().comm_time;
  };
  EXPECT_GT(comm(4), 0);
}

}  // namespace
}  // namespace apn::apps::bfs
