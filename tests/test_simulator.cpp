#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.hpp"

namespace apn::sim {
namespace {

using units::us;

TEST(Simulator, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0);
  EXPECT_TRUE(sim.empty());
}

TEST(Simulator, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.after(us(3), [&] { order.push_back(3); });
  sim.after(us(1), [&] { order.push_back(1); });
  sim.after(us(2), [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), us(3));
}

TEST(Simulator, SameTimeFiresInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    sim.after(us(5), [&order, i] { order.push_back(i); });
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Simulator, NestedScheduling) {
  Simulator sim;
  Time inner_fired = -1;
  sim.after(us(1), [&] {
    sim.after(us(2), [&] { inner_fired = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(inner_fired, us(3));
}

TEST(Simulator, ZeroDelayRunsAtCurrentTime) {
  Simulator sim;
  Time t = -1;
  sim.after(us(7), [&] {
    sim.after(0, [&] { t = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(t, us(7));
}

TEST(Simulator, PastTimeClampsToNow) {
  Simulator sim;
  Time fired = -1;
  sim.after(us(10), [&] {
    sim.at(us(5), [&] { fired = sim.now(); });  // in the past
  });
  sim.run();
  EXPECT_EQ(fired, us(10));
}

TEST(Simulator, RunUntilAdvancesClockAndStops) {
  Simulator sim;
  int fired = 0;
  sim.after(us(1), [&] { ++fired; });
  sim.after(us(10), [&] { ++fired; });
  sim.run_until(us(5));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), us(5));
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, StepProcessesOne) {
  Simulator sim;
  int fired = 0;
  sim.after(1, [&] { ++fired; });
  sim.after(2, [&] { ++fired; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
  EXPECT_EQ(sim.events_processed(), 2u);
}

TEST(Simulator, NegativeDelayTreatedAsZero) {
  Simulator sim;
  Time t = -1;
  sim.after(-100, [&] { t = sim.now(); });
  sim.run();
  EXPECT_EQ(t, 0);
}

TEST(Simulator, ManyEventsStressOrdering) {
  Simulator sim;
  Time last = -1;
  bool monotone = true;
  for (int i = 0; i < 10000; ++i) {
    sim.after((i * 7919) % 1000, [&, i] {
      if (sim.now() < last) monotone = false;
      last = sim.now();
    });
  }
  sim.run();
  EXPECT_TRUE(monotone);
  EXPECT_EQ(sim.events_processed(), 10000u);
}

}  // namespace
}  // namespace apn::sim
