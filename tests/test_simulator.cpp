#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/simulator.hpp"

namespace apn::sim {
namespace {

using units::us;

TEST(Simulator, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0);
  EXPECT_TRUE(sim.empty());
}

TEST(Simulator, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.after(us(3), [&] { order.push_back(3); });
  sim.after(us(1), [&] { order.push_back(1); });
  sim.after(us(2), [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), us(3));
}

TEST(Simulator, SameTimeFiresInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    sim.after(us(5), [&order, i] { order.push_back(i); });
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Simulator, NestedScheduling) {
  Simulator sim;
  Time inner_fired = -1;
  sim.after(us(1), [&] {
    sim.after(us(2), [&] { inner_fired = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(inner_fired, us(3));
}

TEST(Simulator, ZeroDelayRunsAtCurrentTime) {
  Simulator sim;
  Time t = -1;
  sim.after(us(7), [&] {
    sim.after(0, [&] { t = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(t, us(7));
}

TEST(Simulator, PastTimeClampsToNow) {
  Simulator sim;
  Time fired = -1;
  sim.after(us(10), [&] {
    sim.at(us(5), [&] { fired = sim.now(); });  // in the past
  });
  sim.run();
  EXPECT_EQ(fired, us(10));
}

TEST(Simulator, RunUntilAdvancesClockAndStops) {
  Simulator sim;
  int fired = 0;
  sim.after(us(1), [&] { ++fired; });
  sim.after(us(10), [&] { ++fired; });
  sim.run_until(us(5));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), us(5));
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, StepProcessesOne) {
  Simulator sim;
  int fired = 0;
  sim.after(1, [&] { ++fired; });
  sim.after(2, [&] { ++fired; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
  EXPECT_EQ(sim.events_processed(), 2u);
}

TEST(Simulator, NegativeDelayTreatedAsZero) {
  Simulator sim;
  Time t = -1;
  sim.after(-100, [&] { t = sim.now(); });
  sim.run();
  EXPECT_EQ(t, 0);
}

TEST(Simulator, ManyEventsStressOrdering) {
  Simulator sim;
  Time last = -1;
  bool monotone = true;
  for (int i = 0; i < 10000; ++i) {
    sim.after((i * 7919) % 1000, [&, i] {
      if (sim.now() < last) monotone = false;
      last = sim.now();
    });
  }
  sim.run();
  EXPECT_TRUE(monotone);
  EXPECT_EQ(sim.events_processed(), 10000u);
}

TEST(Simulator, ReadyRingRunsAfterPendingSlotEvents) {
  // Events scheduled *before* the current tick began (they sit in the
  // timing-wheel slot for `now`) run before events created at delay 0
  // *during* the tick (they go to the same-tick ready ring). Both precede
  // anything at a later time. This is exactly the old (time, seq) order.
  Simulator sim;
  std::vector<int> order;
  sim.after(us(1), [&] {
    order.push_back(1);
    sim.after(0, [&] { order.push_back(3); });  // ready ring
    sim.after(us(1), [&] { order.push_back(4); });
  });
  sim.after(us(1), [&] { order.push_back(2); });  // same slot, later seq
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

TEST(Simulator, ReadyRingIsFifoUnderNesting) {
  // Zero-delay events spawned from zero-delay events keep FIFO order and
  // never advance the clock.
  Simulator sim;
  std::vector<int> order;
  sim.after(0, [&] {
    order.push_back(1);
    sim.after(0, [&] { order.push_back(3); });
  });
  sim.after(0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 0);
}

TEST(Simulator, WheelToHeapBoundarySpansKeepOrder) {
  // Exercise delays straddling the 1024-tick wheel window: in-window
  // (wheel), exactly at the boundary, and far beyond (overflow heap),
  // including events scheduled for the same far tick from different
  // wheel epochs. Order must be strictly (time, seq).
  Simulator sim;
  std::vector<Time> fired;
  const Time far = 100000;
  sim.after(far, [&] { fired.push_back(sim.now()); });   // heap
  sim.after(1024, [&] { fired.push_back(sim.now()); });  // first out-of-window
  sim.after(1023, [&] { fired.push_back(sim.now()); });  // last in-window
  sim.after(3, [&] {
    fired.push_back(sim.now());
    // Raw engine ticks on purpose.  apn-lint: allow(unit-mix)
    sim.after(far - 3, [&] { fired.push_back(sim.now()); });  // same far tick
  });
  sim.run();
  EXPECT_EQ(fired, (std::vector<Time>{3, 1023, 1024, far, far}));
  EXPECT_EQ(sim.events_processed(), 5u);
}

TEST(Simulator, PendingAndEmptyTrackAllThreeStores) {
  Simulator sim;
  EXPECT_TRUE(sim.empty());
  sim.after(0, [] {});        // ready ring
  sim.after(10, [] {});       // wheel
  sim.after(1 << 20, [] {});  // heap
  EXPECT_EQ(sim.pending(), 3u);
  EXPECT_FALSE(sim.empty());
  sim.run();
  EXPECT_TRUE(sim.empty());
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Simulator, RunUntilDoesNotRunFutureRingOrWheelEvents) {
  Simulator sim;
  int ran = 0;
  sim.after(us(2), [&] {
    ++ran;
    sim.after(0, [&] { ++ran; });  // same tick: must run within run_until
  });
  sim.after(us(5), [&] { ++ran; });
  sim.run_until(us(3));
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(sim.now(), us(3));
  sim.run();
  EXPECT_EQ(ran, 3);
}

TEST(Simulator, MoveOnlyAndOversizedCallablesFire) {
  // Move-only payloads ride the inline path; payloads larger than the
  // node's inline storage take the boxed path. Both must fire exactly
  // once and destroy cleanly.
  Simulator sim;
  auto big = std::make_unique<int>(7);
  int got = 0;
  sim.after(1, [p = std::move(big), &got] { got = *p; });
  struct Fat {
    long long pad[14] = {};  // > inline storage
    int* out;
  };
  Fat fat;
  int fat_got = 0;
  fat.out = &fat_got;
  sim.after(2, [fat] { *fat.out = 42; });
  sim.run();
  EXPECT_EQ(got, 7);
  EXPECT_EQ(fat_got, 42);
}

TEST(Simulator, DestructorReclaimsUnfiredEvents) {
  // Unfired events in ring, wheel, and heap are dropped (payload dtors
  // run) when the Simulator dies — ASan/LSan guards this.
  auto token = std::make_shared<int>(1);
  {
    Simulator sim;
    sim.after(0, [token] {});
    sim.after(100, [token] {});
    sim.after(1 << 20, [token] {});
    EXPECT_EQ(token.use_count(), 4);
  }
  EXPECT_EQ(token.use_count(), 1);
}

}  // namespace
}  // namespace apn::sim
