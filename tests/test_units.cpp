#include <gtest/gtest.h>

#include "common/units.hpp"

namespace apn::units {
namespace {

TEST(Units, TimeConversionsRoundTrip) {
  EXPECT_EQ(ns(1), 1000);
  EXPECT_EQ(us(1), 1000000);
  EXPECT_EQ(ms(1), 1000000000);
  EXPECT_EQ(sec(1), 1000000000000);
  EXPECT_DOUBLE_EQ(to_us(us(12.5)), 12.5);
  EXPECT_DOUBLE_EQ(to_ns(ns(3)), 3.0);
  EXPECT_DOUBLE_EQ(to_sec(sec(2)), 2.0);
}

TEST(Units, Sizes) {
  EXPECT_EQ(KiB(4).count(), 4096u);
  EXPECT_EQ(MiB(1).count(), 1048576u);
  EXPECT_EQ(GiB(3).count(), 3ull * 1024 * 1024 * 1024);
}

TEST(Units, Rates) {
  EXPECT_DOUBLE_EQ(MBps(1).bytes_per_sec(), 1e6);
  EXPECT_DOUBLE_EQ(GBps(2.5).bytes_per_sec(), 2.5e9);
  // 28 Gbps (the APEnet+ torus link) = 3.5 GB/s.
  EXPECT_DOUBLE_EQ(Gbps(28).bytes_per_sec(), 3.5e9);
}

TEST(Units, BytesArithmetic) {
  Bytes a(4096), b(1024);
  EXPECT_EQ((a + b).count(), 5120u);
  EXPECT_EQ((a - b).count(), 3072u);
  EXPECT_EQ((a * 2).count(), 8192u);
  EXPECT_EQ((2 * b).count(), 2048u);
  EXPECT_EQ((a / 4).count(), 1024u);
  EXPECT_EQ(a / b, 4u);            // ratio: dimensionless
  EXPECT_EQ((a % b).count(), 0u);  // remainder: still bytes
  EXPECT_LT(b, a);
  a += b;
  EXPECT_EQ(a.count(), 5120u);
  a -= b;
  EXPECT_EQ(a.count(), 4096u);
}

TEST(Units, RateArithmetic) {
  Rate r = GBps(2);
  EXPECT_DOUBLE_EQ((r * 0.5).bytes_per_sec(), 1e9);
  EXPECT_DOUBLE_EQ((0.5 * r).bytes_per_sec(), 1e9);
  EXPECT_DOUBLE_EQ((r / 2.0).bytes_per_sec(), 1e9);
  EXPECT_DOUBLE_EQ(r / GBps(1), 2.0);  // ratio: dimensionless
  EXPECT_DOUBLE_EQ((r + GBps(1)).bytes_per_sec(), 3e9);
  EXPECT_LT(GBps(1), r);
}

TEST(Units, TransferTime) {
  // 1 GB/s => 1 byte takes 1 ns.
  EXPECT_EQ(transfer_time(Bytes(1), Rate(1e9)), 1000);
  // 4 KB at 4 GB/s = 1 us.
  EXPECT_EQ(transfer_time(Bytes(4096), Rate(4e9)), 1024000);
  EXPECT_EQ(transfer_time(Bytes(0), Rate(1e9)), 0);
  // Sub-picosecond transfers round up to 1 ps, never 0.
  EXPECT_GE(transfer_time(Bytes(1), Rate(1e15)), 1);
}

TEST(Units, BandwidthOfElapsed) {
  // 1 MiB in 1 ms => ~1049 MB/s.
  double mbps = bandwidth_MBps(MiB(1), ms(1));
  EXPECT_NEAR(mbps, 1048.576, 1e-6);
  EXPECT_EQ(bandwidth_MBps(Bytes(100), 0), 0.0);
}

TEST(Units, TransferTimeInverseOfBandwidth) {
  for (double rate : {1e6, 1e8, 1.55e9, 3.5e9}) {
    for (std::uint64_t bytes : {4096ull, 1ull << 20, 32768ull}) {
      Time t = transfer_time(Bytes(bytes), Rate(rate));
      double back = bandwidth_MBps(Bytes(bytes), t);
      EXPECT_NEAR(back, rate / 1e6, rate / 1e6 * 1e-3);
    }
  }
}

}  // namespace
}  // namespace apn::units
