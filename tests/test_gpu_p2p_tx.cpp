// The three GPU_P2P_TX generations: read-bandwidth ceilings and prefetch
// window scaling (the mechanics behind the paper's Figs. 4-5).
#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "cluster/harness.hpp"
#include "core/gpu_p2p_tx.hpp"

namespace apn::core {
namespace {

using cluster::Cluster;

double gpu_read_bw(P2pTxVersion ver, std::uint32_t window,
                   std::uint64_t msg, int count) {
  sim::Simulator sim;
  ApenetParams p;
  p.flush_at_switch = true;
  p.p2p_tx_version = ver;
  p.p2p_prefetch_window = window;
  auto c = Cluster::make_cluster_i(sim, 1, p, false);
  auto r = cluster::loopback_bandwidth(*c, 0, MemType::kGpu, msg, count);
  return r.mbps;
}

TEST(GpuP2pTx, V1SoftwarePathIsAround600MBs) {
  // Paper: "the peak GPU reading bandwidth was throttled to 600 MB/s".
  double bw = gpu_read_bw(P2pTxVersion::kV1, 4096, 1 << 20, 16);
  EXPECT_GT(bw, 450.0);
  EXPECT_LT(bw, 750.0);
}

TEST(GpuP2pTx, V2WindowScalingImprovesBandwidth) {
  double w4 = gpu_read_bw(P2pTxVersion::kV2, 4 * 1024, 1 << 20, 16);
  double w8 = gpu_read_bw(P2pTxVersion::kV2, 8 * 1024, 1 << 20, 16);
  double w16 = gpu_read_bw(P2pTxVersion::kV2, 16 * 1024, 1 << 20, 16);
  double w32 = gpu_read_bw(P2pTxVersion::kV2, 32 * 1024, 1 << 20, 16);
  EXPECT_LT(w4, w8);
  EXPECT_LT(w8, w16);
  EXPECT_LT(w16, w32);
  // Paper: ~20% improvement from 4 KB to 8 KB.
  EXPECT_GT(w8 / w4, 1.10);
  EXPECT_LT(w8 / w4, 1.45);
}

TEST(GpuP2pTx, V2At32KReachesNearArchitecturalCeiling) {
  // Paper: 32 KB prefetch window reaches the 1.5 GB/s Fermi peak.
  double bw = gpu_read_bw(P2pTxVersion::kV2, 32 * 1024, 2 << 20, 16);
  EXPECT_GT(bw, 1350.0);
  EXPECT_LT(bw, 1600.0);
}

TEST(GpuP2pTx, V3MatchesOrBeatsV2) {
  double v2 = gpu_read_bw(P2pTxVersion::kV2, 32 * 1024, 2 << 20, 12);
  double v3 = gpu_read_bw(P2pTxVersion::kV3, 128 * 1024, 2 << 20, 12);
  EXPECT_GE(v3, v2 * 0.98);
}

TEST(GpuP2pTx, KeplerReadsSlightlyFasterThanFermi) {
  // Paper Table I: 1.6 GB/s (Kepler) vs 1.5 GB/s (Fermi), ~10%.
  sim::Simulator sim;
  ApenetParams p;
  p.flush_at_switch = true;
  cluster::NodeConfig cfg;
  cfg.gpus = {gpu::kepler_k20()};
  cfg.has_apenet = true;
  cfg.has_ib = false;
  auto c = std::make_unique<Cluster>(sim, TorusShape{1, 1, 1}, cfg, p);
  auto r = cluster::loopback_bandwidth(*c, 0, MemType::kGpu, 2 << 20, 12);
  EXPECT_GT(r.mbps, 1500.0);
  EXPECT_LT(r.mbps, 1750.0);
}

TEST(GpuP2pTx, LoopbackSlowerThanFlushBecauseNiosShared) {
  // Fig. 4 vs Fig. 5: full loop-back adds RX processing on the same
  // Nios II and drops below the pure read bandwidth.
  double flush = gpu_read_bw(P2pTxVersion::kV3, 128 * 1024, 1 << 20, 16);

  sim::Simulator sim;
  ApenetParams p;
  p.p2p_tx_version = P2pTxVersion::kV3;
  p.p2p_prefetch_window = 128 * 1024;
  auto c = Cluster::make_cluster_i(sim, 1, p, false);
  auto loop = cluster::loopback_bandwidth(*c, 0, MemType::kGpu, 1 << 20, 16);

  EXPECT_LT(loop.mbps, flush);
  // Paper Table I: G-G loop-back ~1.1 GB/s.
  EXPECT_GT(loop.mbps, 950.0);
  EXPECT_LT(loop.mbps, 1300.0);
}

TEST(GpuP2pTx, V1LoadsNiosHarderThanV3) {
  auto nios_busy = [](P2pTxVersion ver) {
    sim::Simulator sim;
    ApenetParams p;
    p.flush_at_switch = true;
    p.p2p_tx_version = ver;
    p.p2p_prefetch_window = 32 * 1024;
    auto c = Cluster::make_cluster_i(sim, 1, p, false);
    cluster::loopback_bandwidth(*c, 0, MemType::kGpu, 1 << 20, 8);
    return c->node(0).card().nios().busy_time();
  };
  Time v1 = nios_busy(P2pTxVersion::kV1);
  Time v3 = nios_busy(P2pTxVersion::kV3);
  EXPECT_GT(v1, v3 * 10);
}

TEST(GpuP2pTx, RequestGranularityMatchesProtocolTraffic) {
  // 512 B read granule with 32 B descriptors -> protocol traffic is
  // 1/16th of the data rate (the paper's 96 MB/s at 1.5 GB/s).
  sim::Simulator sim;
  ApenetParams p;
  p.flush_at_switch = true;
  auto c = Cluster::make_cluster_i(sim, 1, p, false);
  cluster::loopback_bandwidth(*c, 0, MemType::kGpu, 1 << 20, 4);
  const auto& tx = c->node(0).card().gpu_tx();
  EXPECT_EQ(tx.bytes_read(), 4ull << 20);
  EXPECT_EQ(tx.requests_issued(), (4ull << 20) / 512);
}

}  // namespace
}  // namespace apn::core
