#include <gtest/gtest.h>

#include "core/torus.hpp"

namespace apn::core {
namespace {

TEST(TorusShape, IndexCoordRoundTrip) {
  TorusShape s{4, 2, 3};
  for (int i = 0; i < s.size(); ++i) {
    EXPECT_EQ(s.index(s.coord(i)), i);
  }
  EXPECT_EQ(s.size(), 24);
  EXPECT_THROW(s.coord(24), std::out_of_range);
}

TEST(TorusShape, RingDeltaMinimal) {
  EXPECT_EQ(TorusShape::ring_delta(0, 1, 4), 1);
  EXPECT_EQ(TorusShape::ring_delta(0, 3, 4), -1);  // wrap backwards
  EXPECT_EQ(TorusShape::ring_delta(0, 2, 4), 2);   // tie -> positive
  EXPECT_EQ(TorusShape::ring_delta(3, 0, 4), 1);   // wrap forwards
  EXPECT_EQ(TorusShape::ring_delta(2, 2, 4), 0);
  EXPECT_EQ(TorusShape::ring_delta(1, 0, 2), 1);   // size-2 ring: tie -> +
}

TEST(TorusShape, DimensionOrderXFirst) {
  TorusShape s{4, 2, 1};
  // From (0,0,0) to (2,1,0): X resolved first.
  EXPECT_EQ(s.route_next({0, 0, 0}, {2, 1, 0}), TorusPort::kXplus);
  // X resolved: next Y.
  EXPECT_EQ(s.route_next({2, 0, 0}, {2, 1, 0}), TorusPort::kYplus);
  EXPECT_EQ(s.route_next({2, 1, 0}, {2, 1, 0}), TorusPort::kLocal);
}

TEST(TorusShape, WrapAroundChoosesShorterPath) {
  TorusShape s{4, 1, 1};
  EXPECT_EQ(s.route_next({0, 0, 0}, {3, 0, 0}), TorusPort::kXminus);
  EXPECT_EQ(s.route_next({3, 0, 0}, {0, 0, 0}), TorusPort::kXplus);
}

TEST(TorusShape, NeighborWraps) {
  TorusShape s{4, 2, 1};
  EXPECT_EQ(s.neighbor({3, 0, 0}, TorusPort::kXplus), (TorusCoord{0, 0, 0}));
  EXPECT_EQ(s.neighbor({0, 0, 0}, TorusPort::kXminus), (TorusCoord{3, 0, 0}));
  EXPECT_EQ(s.neighbor({0, 1, 0}, TorusPort::kYplus), (TorusCoord{0, 0, 0}));
  // Z dimension of size 1 wraps to itself.
  EXPECT_EQ(s.neighbor({1, 1, 0}, TorusPort::kZplus), (TorusCoord{1, 1, 0}));
}

TEST(TorusShape, HopCount) {
  TorusShape s{4, 2, 1};
  EXPECT_EQ(s.hop_count({0, 0, 0}, {0, 0, 0}), 0);
  EXPECT_EQ(s.hop_count({0, 0, 0}, {1, 0, 0}), 1);
  EXPECT_EQ(s.hop_count({0, 0, 0}, {3, 0, 0}), 1);  // wrap
  EXPECT_EQ(s.hop_count({0, 0, 0}, {2, 1, 0}), 3);
}

TEST(TorusShape, RoutingAlwaysConverges) {
  // Property: following route_next from any source reaches any
  // destination in exactly hop_count steps.
  TorusShape s{4, 2, 2};
  for (int from = 0; from < s.size(); ++from) {
    for (int to = 0; to < s.size(); ++to) {
      TorusCoord here = s.coord(from);
      TorusCoord dst = s.coord(to);
      int hops = 0;
      while (!(here == dst)) {
        TorusPort p = s.route_next(here, dst);
        ASSERT_NE(p, TorusPort::kLocal);
        here = s.neighbor(here, p);
        ASSERT_LE(++hops, 16) << "routing loop";
      }
      EXPECT_EQ(hops, s.hop_count(s.coord(from), dst));
    }
  }
}

TEST(TorusShape, PortNames) {
  EXPECT_STREQ(port_name(TorusPort::kXplus), "X+");
  EXPECT_STREQ(port_name(TorusPort::kZminus), "Z-");
  EXPECT_STREQ(port_name(TorusPort::kLocal), "local");
}

}  // namespace
}  // namespace apn::core
