// The 4-level V2P page table (HOST_V2P / GPU_V2P firmware structures).
#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "common/rng.hpp"
#include "core/v2p.hpp"

namespace apn::core {
namespace {

TEST(PageTable, MapLookupRoundTrip) {
  PageTable t(12);
  t.map(0x7f0000001000, 0x100000, 4096);
  auto phys = t.lookup(0x7f0000001000);
  ASSERT_TRUE(phys.has_value());
  EXPECT_EQ(*phys, 0x100000u);
  // In-page offset preserved.
  EXPECT_EQ(*t.lookup(0x7f0000001234), 0x100234u);
}

TEST(PageTable, UnmappedReturnsNullopt) {
  PageTable t(12);
  EXPECT_FALSE(t.lookup(0x1000).has_value());
  t.map(0x2000, 0x9000, 4096);
  EXPECT_FALSE(t.lookup(0x1000).has_value());
  EXPECT_FALSE(t.lookup(0x3000).has_value());
}

TEST(PageTable, MultiPageRangeContiguousPhysical) {
  PageTable t(12);
  t.map(0x10000, 0x800000, 5 * 4096);
  for (int p = 0; p < 5; ++p) {
    auto phys = t.lookup(0x10000 + static_cast<std::uint64_t>(p) * 4096 + 7);
    ASSERT_TRUE(phys.has_value());
    EXPECT_EQ(*phys, 0x800000u + static_cast<std::uint64_t>(p) * 4096 + 7);
  }
  EXPECT_EQ(t.mapped_pages(), 5u);
}

TEST(PageTable, PartialLengthCoversLastPage) {
  PageTable t(12);
  t.map(0x10000, 0x0, 4097);  // 1 byte into the second page
  EXPECT_TRUE(t.is_mapped(0x10000));
  EXPECT_TRUE(t.is_mapped(0x11000));
  EXPECT_FALSE(t.is_mapped(0x12000));
}

TEST(PageTable, UnmapRemovesOnlyTargetRange) {
  PageTable t(12);
  t.map(0x10000, 0x0, 4 * 4096);
  t.unmap(0x11000, 2 * 4096);
  EXPECT_TRUE(t.is_mapped(0x10000));
  EXPECT_FALSE(t.is_mapped(0x11000));
  EXPECT_FALSE(t.is_mapped(0x12000));
  EXPECT_TRUE(t.is_mapped(0x13000));
  EXPECT_EQ(t.mapped_pages(), 2u);
}

TEST(PageTable, RemapOverwrites) {
  PageTable t(16);
  t.map(0xC00000000000ull, 0x0, 65536);
  t.map(0xC00000000000ull, 0xA0000, 65536);
  EXPECT_EQ(*t.lookup(0xC00000000000ull), 0xA0000u);
  EXPECT_EQ(t.mapped_pages(), 1u);
}

TEST(PageTable, GpuPageGranularity64K) {
  PageTable t(16);
  EXPECT_EQ(t.page_bytes(), 65536u);
  t.map(0xC00000000000ull, 0x0, 200000);  // 4 x 64 KB pages
  EXPECT_EQ(t.mapped_pages(), 4u);
  EXPECT_EQ(*t.lookup(0xC00000000000ull + 70000), 70000u);
}

TEST(PageTable, SparseAddressesShareNodesWhenClose) {
  PageTable t(12);
  t.map(0x1000, 0x0, 4096);
  std::size_t nodes_one = t.resident_nodes();
  t.map(0x2000, 0x1000, 4096);  // same leaf node
  EXPECT_EQ(t.resident_nodes(), nodes_one);
  t.map(0x7f0000000000, 0x2000, 4096);  // far away: new interior path
  EXPECT_GT(t.resident_nodes(), nodes_one);
}

TEST(PageTable, RandomizedMapLookupConsistency) {
  Rng rng(2026);
  PageTable t(12);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> mapped;
  for (int i = 0; i < 300; ++i) {
    std::uint64_t v = (rng.next_u64() & 0xFFFFFFFFF000ull);
    std::uint64_t p = (rng.next_u64() & 0xFFFFFFF000ull);
    t.map(v, p, 4096);
    mapped.emplace_back(v, p);
  }
  // Later mappings may overwrite earlier ones at the same vaddr; check in
  // reverse insertion order with a seen-set.
  std::set<std::uint64_t> seen;
  for (auto it = mapped.rbegin(); it != mapped.rend(); ++it) {
    if (!seen.insert(it->first).second) continue;
    auto phys = t.lookup(it->first + 123);
    ASSERT_TRUE(phys.has_value());
    EXPECT_EQ(*phys, it->second + 123);
  }
}

TEST(CardV2p, RegistrationPopulatesTables) {
  sim::Simulator sim;
  auto c = cluster::Cluster::make_cluster_i(sim, 1, ApenetParams{}, false);
  std::vector<std::uint8_t> host_buf(3 * 4096);
  cuda::DevPtr gpu_buf = c->node(0).cuda().malloc_device(0, 256 * 1024);
  [](cluster::Cluster* c, std::vector<std::uint8_t>* hb,
     cuda::DevPtr gb) -> sim::Coro {
    co_await c->rdma(0).register_buffer(
        reinterpret_cast<std::uint64_t>(hb->data()), hb->size(),
        MemType::kHost);
    co_await c->rdma(0).register_buffer(gb, 256 * 1024, MemType::kGpu);
  }(c.get(), &host_buf, gpu_buf);
  sim.run();

  ApenetCard& card = c->node(0).card();
  // Host table: identity translation, 4 KB pages.
  std::uint64_t haddr = reinterpret_cast<std::uint64_t>(host_buf.data());
  EXPECT_TRUE(card.host_v2p().is_mapped(haddr));
  EXPECT_EQ(*card.host_v2p().lookup(haddr + 100), haddr + 100);
  // GPU table: UVA -> device offset, 64 KB pages, 4 pages for 256 KB.
  const PageTable* gt = card.gpu_v2p(&c->node(0).gpu(0));
  ASSERT_NE(gt, nullptr);
  EXPECT_GE(gt->mapped_pages(), 4u);
  cuda::P2pTokens tok = c->node(0).cuda().get_p2p_tokens(gpu_buf, 1);
  EXPECT_EQ(*gt->lookup(gpu_buf), tok.dev_offset);

  c->rdma(0).deregister_buffer(haddr);
  EXPECT_FALSE(card.host_v2p().is_mapped(haddr));
}

TEST(CardV2p, HostScatterSplitsWritesAtPageBoundaries) {
  // A 4 KB packet landing at a non-page-aligned host address must still
  // deliver every byte (two scatter entries on the real card).
  sim::Simulator sim;
  auto c = cluster::Cluster::make_cluster_i(sim, 2, ApenetParams{}, false);
  std::vector<std::uint8_t> dst(3 * 4096, 0);
  std::vector<std::uint8_t> src(4096);
  for (std::size_t i = 0; i < src.size(); ++i)
    src[i] = static_cast<std::uint8_t>(i * 13 + 1);
  // Target straddles page boundaries inside the registered region.
  std::uint64_t base = reinterpret_cast<std::uint64_t>(dst.data());
  std::uint64_t target = ((base + 4095) & ~4095ull) + 4096 - 1000;
  [](cluster::Cluster* c, std::uint64_t base, std::uint64_t target,
     std::vector<std::uint8_t>* src, std::vector<std::uint8_t>* dst)
      -> sim::Coro {
    co_await c->rdma(1).register_buffer(base, dst->size(), MemType::kHost);
    c->rdma(0).put(c->coord(1), reinterpret_cast<std::uint64_t>(src->data()),
                   src->size(), target, MemType::kHost);
    co_await c->rdma(1).events().pop();
  }(c.get(), base, target, &src, &dst);
  sim.run();
  const std::uint8_t* p = reinterpret_cast<const std::uint8_t*>(target);
  for (std::size_t i = 0; i < src.size(); ++i)
    ASSERT_EQ(p[i], src[i]) << "byte " << i;
}

}  // namespace
}  // namespace apn::core
