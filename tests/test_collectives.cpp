// RDMA-native collectives over APEnet+ (barrier / allreduce built on PUTs).
#include <gtest/gtest.h>

#include "cluster/collectives.hpp"

namespace apn::cluster {
namespace {

using core::ApenetParams;
using core::MemType;
using units::us;

struct CollFixture : ::testing::Test {
  sim::Simulator sim;
  std::unique_ptr<Cluster> c;
  std::unique_ptr<Collectives> coll;

  void init(int np) {
    c = Cluster::make_cluster_i(sim, np, ApenetParams{}, false);
    coll = std::make_unique<Collectives>(*c);
    auto done = coll->setup();
    sim.run();
    ASSERT_TRUE(done.ready());
  }
};

TEST_F(CollFixture, BarrierHoldsUntilAllEnter) {
  init(4);
  auto order = std::make_shared<std::vector<int>>();
  for (int r = 0; r < 4; ++r) {
    [](Collectives* coll, sim::Simulator* sim, int r,
       std::shared_ptr<std::vector<int>> order) -> sim::Coro {
      co_await sim::delay(*sim, us(15) * (r + 1));
      co_await coll->barrier(r);
      order->push_back(r);
      // Nobody may pass before the last rank arrived at 60 us.
      EXPECT_GE(sim->now(), us(60));
    }(coll.get(), &sim, r, order);
  }
  sim.run();
  EXPECT_EQ(order->size(), 4u);
}

TEST_F(CollFixture, BarrierRepeatsAcrossEpochs) {
  init(4);
  auto counter = std::make_shared<int>(0);
  for (int r = 0; r < 4; ++r) {
    [](Collectives* coll, int r, std::shared_ptr<int> counter,
       sim::Simulator* sim) -> sim::Coro {
      for (int e = 0; e < 5; ++e) {
        co_await sim::delay(*sim, us(static_cast<double>((r * 7 + e) % 5)));
        co_await coll->barrier(r);
        // All ranks must be in the same epoch when anyone passes.
        ++*counter;
      }
    }(coll.get(), r, counter, &sim);
  }
  sim.run();
  EXPECT_EQ(*counter, 20);
}

TEST_F(CollFixture, AllreduceSumsAcrossEightRanks) {
  init(8);
  auto results = std::make_shared<std::vector<std::uint64_t>>(8, 0);
  for (int r = 0; r < 8; ++r) {
    [](Collectives* coll, int r,
       std::shared_ptr<std::vector<std::uint64_t>> out) -> sim::Coro {
      std::uint64_t v = static_cast<std::uint64_t>(r + 1);
      (*out)[static_cast<std::size_t>(r)] =
          co_await coll->allreduce_sum(r, v);
    }(coll.get(), r, results);
  }
  sim.run();
  for (int r = 0; r < 8; ++r)
    EXPECT_EQ((*results)[static_cast<std::size_t>(r)], 36u);  // 1+..+8
}

TEST_F(CollFixture, AllreduceSequencesKeepEpochsSeparate) {
  init(2);
  auto sums = std::make_shared<std::vector<std::uint64_t>>();
  for (int r = 0; r < 2; ++r) {
    [](Collectives* coll, int r,
       std::shared_ptr<std::vector<std::uint64_t>> sums) -> sim::Coro {
      for (std::uint64_t e = 1; e <= 3; ++e) {
        std::uint64_t s = co_await coll->allreduce_sum(
            r, e * 10 + static_cast<std::uint64_t>(r));
        if (r == 0) sums->push_back(s);
      }
    }(coll.get(), r, sums);
  }
  sim.run();
  ASSERT_EQ(sums->size(), 3u);
  EXPECT_EQ((*sums)[0], 21u);  // 10 + 11
  EXPECT_EQ((*sums)[1], 41u);  // 20 + 21
  EXPECT_EQ((*sums)[2], 61u);
}

TEST_F(CollFixture, NonCollectiveTrafficIsForwarded) {
  init(2);
  std::vector<std::uint8_t> src(256, 0x5E), dst(256, 0);
  core::RdmaEvent got{};
  [](Cluster* c, Collectives* coll, std::vector<std::uint8_t>* src,
     std::vector<std::uint8_t>* dst, core::RdmaEvent* got) -> sim::Coro {
    co_await c->rdma(1).register_buffer(
        reinterpret_cast<std::uint64_t>(dst->data()), 256, MemType::kHost);
    // Interleave with a barrier to prove routing separates the streams.
    c->rdma(0).put(c->coord(1), reinterpret_cast<std::uint64_t>(src->data()),
                   256, reinterpret_cast<std::uint64_t>(dst->data()),
                   MemType::kHost);
    *got = co_await coll->events(1).pop();
  }(c.get(), coll.get(), &src, &dst, &got);
  [](Collectives* coll) -> sim::Coro {
    co_await coll->barrier(0);
  }(coll.get());
  [](Collectives* coll) -> sim::Coro {
    co_await coll->barrier(1);
  }(coll.get());
  sim.run();
  EXPECT_EQ(got.bytes, 256u);
  EXPECT_EQ(dst, src);
}

TEST_F(CollFixture, BarrierCostMicroseconds) {
  init(8);
  Time t0 = -1, t1 = -1;
  [](Collectives* coll, sim::Simulator* sim, Time* t0, Time* t1) -> sim::Coro {
    *t0 = sim->now();
    co_await coll->barrier(0);
    *t1 = sim->now();
  }(coll.get(), &sim, &t0, &t1);
  for (int r = 1; r < 8; ++r) {
    [](Collectives* coll, int r) -> sim::Coro {
      co_await coll->barrier(r);
    }(coll.get(), r);
  }
  sim.run();
  // log2(8) = 3 rounds of one-way PUT latency: tens of microseconds.
  EXPECT_GT(t1 - t0, us(10));
  EXPECT_LT(t1 - t0, us(80));
}

}  // namespace
}  // namespace apn::cluster
