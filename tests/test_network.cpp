// Torus wiring and multi-hop routing through the ApenetNetwork.
#include <gtest/gtest.h>

#include "cluster/cluster.hpp"

namespace apn::core {
namespace {

using cluster::Cluster;
using units::us;

TEST(Network, EightNodeTorusShape) {
  sim::Simulator sim;
  auto c = Cluster::make_cluster_i(sim, 8, ApenetParams{}, false);
  EXPECT_EQ(c->size(), 8);
  EXPECT_EQ(c->shape().nx, 4);
  EXPECT_EQ(c->shape().ny, 2);
  EXPECT_EQ(c->shape().nz, 1);
}

TEST(Network, MultiHopDelivery) {
  sim::Simulator sim;
  auto c = Cluster::make_cluster_i(sim, 8, ApenetParams{}, false);
  // (0,0,0) -> (2,1,0): 3 hops through intermediate cards.
  std::vector<std::uint8_t> src(2048), dst(2048, 0);
  for (std::size_t i = 0; i < src.size(); ++i)
    src[i] = static_cast<std::uint8_t>(i ^ 0x5Au);
  int dst_node = c->shape().index({2, 1, 0});
  [](Cluster* c, int dst_node, std::vector<std::uint8_t>* src,
     std::vector<std::uint8_t>* dst) -> sim::Coro {
    co_await c->rdma(dst_node).register_buffer(
        reinterpret_cast<std::uint64_t>(dst->data()), 2048, MemType::kHost);
    c->rdma(0).put(c->coord(dst_node),
                   reinterpret_cast<std::uint64_t>(src->data()), 2048,
                   reinterpret_cast<std::uint64_t>(dst->data()),
                   MemType::kHost);
    co_await c->rdma(dst_node).events().pop();
  }(c.get(), dst_node, &src, &dst);
  sim.run();
  EXPECT_EQ(dst, src);
  // Transit cards must not have consumed the packet.
  int mid = c->shape().index({1, 0, 0});
  EXPECT_EQ(c->node(mid).card().packets_received(), 0u);
}

TEST(Network, FartherNodesHaveHigherLatency) {
  auto one_way = [](TorusCoord target) {
    sim::Simulator sim;
    auto c = Cluster::make_cluster_i(sim, 8, ApenetParams{}, false);
    int dst_node = c->shape().index(target);
    auto t = std::make_shared<Time>(0);
    std::vector<std::uint8_t> dst(64);
    auto dstp = std::make_shared<std::vector<std::uint8_t>>(64);
    [](Cluster* c, int dst_node, std::shared_ptr<std::vector<std::uint8_t>> d,
       std::shared_ptr<Time> t) -> sim::Coro {
      co_await c->rdma(dst_node).register_buffer(
          reinterpret_cast<std::uint64_t>(d->data()), 64, MemType::kHost);
      Time t0 = c->simulator().now();
      std::vector<std::uint8_t> src(64);
      c->rdma(0).put(c->coord(dst_node),
                     reinterpret_cast<std::uint64_t>(src.data()), 64,
                     reinterpret_cast<std::uint64_t>(d->data()),
                     MemType::kHost, false);
      co_await c->rdma(dst_node).events().pop();
      *t = c->simulator().now() - t0;
    }(c.get(), dst_node, dstp, t);
    sim.run();
    return *t;
  };
  Time near = one_way({1, 0, 0});   // 1 hop
  Time far = one_way({2, 1, 0});    // 3 hops
  EXPECT_GT(far, near);
  EXPECT_LT(far, near + us(2));  // each hop is sub-microsecond
}

TEST(Network, AllToAllTrafficCompletes) {
  sim::Simulator sim;
  auto c = Cluster::make_cluster_i(sim, 8, ApenetParams{}, false);
  const int n = c->size();
  auto buffers =
      std::make_shared<std::vector<std::vector<std::uint8_t>>>();
  for (int i = 0; i < n; ++i)
    buffers->emplace_back(static_cast<std::size_t>(n) * 256);
  auto done = std::make_shared<int>(0);

  for (int me = 0; me < n; ++me) {
    [](Cluster* c, int me, int n,
       std::shared_ptr<std::vector<std::vector<std::uint8_t>>> buffers,
       std::shared_ptr<int> done) -> sim::Coro {
      auto& mine = (*buffers)[static_cast<std::size_t>(me)];
      co_await c->rdma(me).register_buffer(
          reinterpret_cast<std::uint64_t>(mine.data()), mine.size(),
          MemType::kHost);
      // Everyone sends 256 bytes to everyone else, tagged by sender.
      std::vector<std::uint8_t> src(256, static_cast<std::uint8_t>(me + 1));
      for (int p = 0; p < n; ++p) {
        if (p == me) continue;
        auto& theirs = (*buffers)[static_cast<std::size_t>(p)];
        c->rdma(me).put(c->coord(p),
                        reinterpret_cast<std::uint64_t>(src.data()), 256,
                        reinterpret_cast<std::uint64_t>(theirs.data()) +
                            static_cast<std::uint64_t>(me) * 256,
                        MemType::kHost);
      }
      for (int p = 0; p < n - 1; ++p) co_await c->rdma(me).events().pop();
      ++*done;
    }(c.get(), me, n, buffers, done);
  }
  sim.run();
  EXPECT_EQ(*done, 8);
  // Spot-check contents: node 3's slot from node 5.
  EXPECT_EQ((*buffers)[3][5 * 256 + 17], 6);
}

TEST(Network, WrongCardCountThrows) {
  sim::Simulator sim;
  ApenetNetwork net(sim, TorusShape{2, 1, 1});
  EXPECT_THROW(net.wire(), std::logic_error);
}

}  // namespace
}  // namespace apn::core
