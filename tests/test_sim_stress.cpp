// Randomized stress / property tests of the simulation primitives: the
// invariants every higher layer depends on, under adversarial interleaving.
#include <gtest/gtest.h>

#include <numeric>

#include "common/rng.hpp"
#include "sim/channel.hpp"
#include "sim/coro.hpp"
#include "sim/resource.hpp"
#include "sim/sync.hpp"

namespace apn::sim {
namespace {

TEST(SimStress, QueueNeverLosesOrDuplicatesItems) {
  Rng rng(404);
  Simulator sim;
  Queue<int> q(sim);
  std::vector<int> got;
  const int kItems = 2000;
  // Producers at random times.
  for (int i = 0; i < kItems; ++i) {
    sim.after(static_cast<Time>(rng.next_below(100000)),
              [&q, i] { q.push(i); });
  }
  // Consumers started at random times, each popping a random batch.
  int remaining = kItems;
  while (remaining > 0) {
    int batch = static_cast<int>(rng.next_below(7)) + 1;
    batch = std::min(batch, remaining);
    remaining -= batch;
    sim.after(static_cast<Time>(rng.next_below(100000)),
              [&q, &got, batch, &sim] {
                (void)sim;
                [](Queue<int>& q, std::vector<int>& got, int n) -> Coro {
                  for (int i = 0; i < n; ++i) got.push_back(co_await q.pop());
                }(q, got, batch);
              });
  }
  sim.run();
  ASSERT_EQ(got.size(), static_cast<std::size_t>(kItems));
  std::sort(got.begin(), got.end());
  for (int i = 0; i < kItems; ++i) EXPECT_EQ(got[static_cast<size_t>(i)], i);
}

TEST(SimStress, CreditPoolConservesCredits) {
  Rng rng(77);
  Simulator sim;
  CreditPool pool(sim, 1000);
  auto outstanding = std::make_shared<std::int64_t>(0);
  auto peak = std::make_shared<std::int64_t>(0);
  for (int i = 0; i < 500; ++i) {
    std::int64_t need = static_cast<std::int64_t>(rng.next_below(300)) + 1;
    Time hold = static_cast<Time>(rng.next_below(5000)) + 1;
    sim.after(static_cast<Time>(rng.next_below(50000)),
              [&pool, &sim, need, hold, outstanding, peak] {
                [](Simulator& sim, CreditPool& pool, std::int64_t need,
                   Time hold, std::shared_ptr<std::int64_t> outstanding,
                   std::shared_ptr<std::int64_t> peak) -> Coro {
                  co_await pool.acquire(need);
                  *outstanding += need;
                  *peak = std::max(*peak, *outstanding);
                  EXPECT_LE(*outstanding, 1000);
                  co_await delay(sim, hold);
                  *outstanding -= need;
                  pool.release(need);
                }(sim, pool, need, hold, outstanding, peak);
              });
  }
  sim.run();
  EXPECT_EQ(*outstanding, 0);
  EXPECT_EQ(pool.available(), 1000);
  EXPECT_GT(*peak, 500);  // the pool actually saturated at some point
}

TEST(SimStress, SemaphoreNeverOversubscribes) {
  Rng rng(99);
  Simulator sim;
  Semaphore sem(sim, 3);
  auto active = std::make_shared<int>(0);
  auto completed = std::make_shared<int>(0);
  for (int i = 0; i < 300; ++i) {
    sim.after(static_cast<Time>(rng.next_below(30000)), [&, active,
                                                         completed] {
      [](Simulator& sim, Semaphore& sem, std::shared_ptr<int> active,
         std::shared_ptr<int> completed, Time hold) -> Coro {
        co_await sem.acquire();
        ++*active;
        EXPECT_LE(*active, 3);
        co_await delay(sim, hold);
        --*active;
        ++*completed;
        sem.release();
      }(sim, sem, active, completed,
        static_cast<Time>(rng.next_below(900)) + 1);
    });
  }
  sim.run();
  EXPECT_EQ(*completed, 300);
}

TEST(SimStress, ResourceBusyTimeEqualsSumOfJobs) {
  Rng rng(3);
  Simulator sim;
  Resource res(sim);
  Time total = 0;
  for (int i = 0; i < 400; ++i) {
    Time dur = static_cast<Time>(rng.next_below(2000));
    total += dur;
    sim.after(static_cast<Time>(rng.next_below(10000)),
              [&res, dur] { res.post(dur); });
  }
  sim.run();
  EXPECT_EQ(res.busy_time(), total);
  EXPECT_EQ(res.jobs_completed(), 400u);
}

TEST(SimStress, ChannelDeliversInOrderUnderRandomSizes) {
  Rng rng(12);
  Simulator sim;
  Channel ch(sim, ChannelParams{Rate(1e9), units::ns(30), units::us(2)});
  std::vector<int> order;
  for (int i = 0; i < 500; ++i) {
    ch.send(Bytes(rng.next_below(9000) + 1),
            [&order, i] { order.push_back(i); });
  }
  sim.run();
  ASSERT_EQ(order.size(), 500u);
  EXPECT_TRUE(std::is_sorted(order.begin(), order.end()));
}

TEST(SimStress, GatesWithManyWaitersAllResume) {
  Simulator sim;
  Gate gate(sim);
  auto count = std::make_shared<int>(0);
  for (int i = 0; i < 1000; ++i) {
    [](Gate& g, std::shared_ptr<int> count) -> Coro {
      co_await g.wait();
      ++*count;
    }(gate, count);
  }
  sim.after(units::us(5), [&] { gate.open(); });
  sim.run();
  EXPECT_EQ(*count, 1000);
}

TEST(SimStress, DeterministicUnderIdenticalSeeds) {
  auto run = [](std::uint64_t seed) {
    Rng rng(seed);
    Simulator sim;
    Resource res(sim);
    CreditPool pool(sim, 256);
    std::uint64_t checksum = 0;
    for (int i = 0; i < 300; ++i) {
      Time at = static_cast<Time>(rng.next_below(40000));
      std::int64_t need = static_cast<std::int64_t>(rng.next_below(64)) + 1;
      sim.after(at, [&, need] {
        [](Simulator& sim, Resource& res, CreditPool& pool, std::int64_t n,
           std::uint64_t* sum) -> Coro {
          co_await pool.acquire(n);
          co_await res.use(static_cast<Time>(n * 10));
          *sum = *sum * 31 + static_cast<std::uint64_t>(sim.now());
          pool.release(n);
        }(sim, res, pool, need, &checksum);
      });
    }
    sim.run();
    return std::make_pair(checksum, sim.events_processed());
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(run(42).first, run(43).first);
}

}  // namespace
}  // namespace apn::sim
