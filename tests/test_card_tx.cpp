// Transmit-path behaviour of the APEnet+ card model: host memory read
// bandwidth, descriptor ordering, FIFO back-pressure.
#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "cluster/harness.hpp"

namespace apn::core {
namespace {

using cluster::Cluster;
using units::us;

std::unique_ptr<Cluster> flush_cluster(sim::Simulator& sim) {
  ApenetParams p;
  p.flush_at_switch = true;
  return Cluster::make_cluster_i(sim, 1, p, /*with_ib=*/false);
}

TEST(CardTx, HostMemoryReadBandwidthMatchesPaper) {
  // Paper Table I: APEnet+ host memory read = 2.4 GB/s.
  sim::Simulator sim;
  auto c = flush_cluster(sim);
  auto r = cluster::loopback_bandwidth(*c, 0, MemType::kHost, 1 << 20, 64);
  EXPECT_GT(r.mbps, 2100.0);
  EXPECT_LT(r.mbps, 2700.0);
}

TEST(CardTx, SmallMessagesCostPerMessageOverhead) {
  sim::Simulator sim;
  auto c = flush_cluster(sim);
  auto small =
      cluster::loopback_bandwidth(*c, 0, MemType::kHost, 4096, 256);
  sim::Simulator sim2;
  auto c2 = flush_cluster(sim2);
  auto large =
      cluster::loopback_bandwidth(*c2, 0, MemType::kHost, 1 << 20, 32);
  EXPECT_LT(small.mbps, large.mbps);
  EXPECT_GT(small.mbps, 500.0);  // but still pipelined, not one-at-a-time
}

TEST(CardTx, TxDoneGateOpensAfterInjection) {
  sim::Simulator sim;
  auto c = Cluster::make_cluster_i(sim, 2, ApenetParams{}, false);
  std::vector<std::uint8_t> src(4096), dst(4096);
  Time tx_done_at = -1, rx_at = -1;
  [](Cluster* c, std::vector<std::uint8_t>* src,
     std::vector<std::uint8_t>* dst, Time* tx_done_at,
     Time* rx_at) -> sim::Coro {
    co_await c->rdma(1).register_buffer(
        reinterpret_cast<std::uint64_t>(dst->data()), 4096, MemType::kHost);
    auto p = c->rdma(0).put(c->coord(1),
                            reinterpret_cast<std::uint64_t>(src->data()),
                            4096,
                            reinterpret_cast<std::uint64_t>(dst->data()),
                            MemType::kHost);
    co_await p.tx_done->wait();
    *tx_done_at = c->simulator().now();
    co_await c->rdma(1).events().pop();
    *rx_at = c->simulator().now();
  }(c.get(), &src, &dst, &tx_done_at, &rx_at);
  sim.run();
  EXPECT_GT(tx_done_at, 0);
  // Local completion strictly precedes remote delivery.
  EXPECT_LT(tx_done_at, rx_at);
}

TEST(CardTx, PacketsInjectedCountMatchesFragmentation) {
  sim::Simulator sim;
  auto c = flush_cluster(sim);
  [](Cluster* c) -> sim::Coro {
    std::vector<std::uint8_t> src(9000);
    auto p = c->rdma(0).put(c->coord(0),
                            reinterpret_cast<std::uint64_t>(src.data()),
                            9000, 0x1000, MemType::kHost, false);
    co_await p.tx_done->wait();
  }(c.get());
  sim.run();
  // 9000 B -> 2x 4096 + 1x 808 = 3 packets.
  EXPECT_EQ(c->node(0).card().packets_injected(), 3u);
}

TEST(CardTx, ZeroAndTinyMessages) {
  sim::Simulator sim;
  auto c = Cluster::make_cluster_i(sim, 2, ApenetParams{}, false);
  std::vector<std::uint8_t> src(32, 0xEE), dst(32, 0);
  [](Cluster* c, std::vector<std::uint8_t>* src,
     std::vector<std::uint8_t>* dst) -> sim::Coro {
    co_await c->rdma(1).register_buffer(
        reinterpret_cast<std::uint64_t>(dst->data()), 32, MemType::kHost);
    c->rdma(0).put(c->coord(1), reinterpret_cast<std::uint64_t>(src->data()),
                   32, reinterpret_cast<std::uint64_t>(dst->data()),
                   MemType::kHost);
    co_await c->rdma(1).events().pop();
  }(c.get(), &src, &dst);
  sim.run();
  EXPECT_EQ(dst, src);
}

TEST(CardTx, ExplicitFlagSkipsPointerQuery) {
  // The MemType::kHost flag path must not consult the CUDA runtime; a put
  // with the explicit flag is (slightly) faster than kAuto.
  sim::Simulator sim;
  auto c = Cluster::make_cluster_i(sim, 2, ApenetParams{}, false);
  std::vector<std::uint8_t> src(64), dst(64);
  Time t_flag = 0, t_auto = 0;
  [](Cluster* c, std::vector<std::uint8_t>* src,
     std::vector<std::uint8_t>* dst, Time* t_flag, Time* t_auto)
      -> sim::Coro {
    co_await c->rdma(1).register_buffer(
        reinterpret_cast<std::uint64_t>(dst->data()), 64, MemType::kHost);
    sim::Simulator& sim = c->simulator();
    Time t0 = sim.now();
    c->rdma(0).put(c->coord(1), reinterpret_cast<std::uint64_t>(src->data()),
                   64, reinterpret_cast<std::uint64_t>(dst->data()),
                   MemType::kHost);
    co_await c->rdma(1).events().pop();
    *t_flag = sim.now() - t0;
    t0 = sim.now();
    c->rdma(0).put(c->coord(1), reinterpret_cast<std::uint64_t>(src->data()),
                   64, reinterpret_cast<std::uint64_t>(dst->data()),
                   MemType::kAuto);
    co_await c->rdma(1).events().pop();
    *t_auto = sim.now() - t0;
  }(c.get(), &src, &dst, &t_flag, &t_auto);
  sim.run();
  EXPECT_EQ(t_auto - t_flag, c->rdma(0).params().pointer_query_cost);
}

}  // namespace
}  // namespace apn::core
