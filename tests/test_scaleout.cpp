// 16/24-node torus configurations (the paper's announced expansion) and
// larger-shape routing/application sanity.
#include <gtest/gtest.h>

#include "apps/bfs/bfs.hpp"
#include "apps/hsg/runner.hpp"
#include "cluster/cluster.hpp"

namespace apn {
namespace {

using cluster::Cluster;
using core::ApenetParams;
using core::MemType;

TEST(ScaleOut, SixteenNodeShape) {
  sim::Simulator sim;
  auto c = Cluster::make_cluster_i(sim, 16, ApenetParams{}, false);
  EXPECT_EQ(c->size(), 16);
  EXPECT_EQ(c->shape().nz, 2);
}

TEST(ScaleOut, TwentyFourNodeShape) {
  sim::Simulator sim;
  auto c = Cluster::make_cluster_i(sim, 24, ApenetParams{}, false);
  EXPECT_EQ(c->size(), 24);
  EXPECT_EQ(c->shape().nz, 3);
}

TEST(ScaleOut, ZRoutingWorksInThreeDimensions) {
  sim::Simulator sim;
  auto c = Cluster::make_cluster_i(sim, 16, ApenetParams{}, false);
  // Farthest node from (0,0,0) in the 4x2x2 torus: (2,1,1), 4 hops.
  int far = c->shape().index({2, 1, 1});
  EXPECT_EQ(c->shape().hop_count({0, 0, 0}, {2, 1, 1}), 4);
  std::vector<std::uint8_t> src(5000), dst(5000, 0);
  for (std::size_t i = 0; i < src.size(); ++i)
    src[i] = static_cast<std::uint8_t>(i * 3 + 1);
  [](Cluster* c, int far, std::vector<std::uint8_t>* src,
     std::vector<std::uint8_t>* dst) -> sim::Coro {
    co_await c->rdma(far).register_buffer(
        reinterpret_cast<std::uint64_t>(dst->data()), dst->size(),
        MemType::kHost);
    c->rdma(0).put(c->coord(far), reinterpret_cast<std::uint64_t>(src->data()),
                   src->size(), reinterpret_cast<std::uint64_t>(dst->data()),
                   MemType::kHost);
    co_await c->rdma(far).events().pop();
  }(c.get(), far, &src, &dst);
  sim.run();
  EXPECT_EQ(dst, src);
}

TEST(ScaleOut, HsgSixteenNodesFunctionalEnergyConserved) {
  sim::Simulator sim;
  auto c = Cluster::make_cluster_i(sim, 16, ApenetParams{}, false);
  apps::hsg::HsgConfig cfg;
  cfg.L = 16;  // local_z = 1: boundary-only slabs, the extreme case
  cfg.steps = 2;
  cfg.mode = apps::hsg::CommMode::kP2pOn;
  cfg.functional = true;
  apps::hsg::HsgRun run(*c, cfg);
  auto m = run.run();
  EXPECT_NEAR(m.energy_final, m.energy_initial,
              std::abs(m.energy_initial) * 1e-4 + 1e-3);
}

TEST(ScaleOut, BfsSixteenNodesValidates) {
  sim::Simulator sim;
  auto c = Cluster::make_cluster_i(sim, 16, ApenetParams{}, false);
  apps::bfs::BfsConfig cfg;
  cfg.scale = 10;
  cfg.edge_factor = 8;
  apps::bfs::BfsRun run(*c, cfg);
  auto m = run.run();
  EXPECT_TRUE(m.validated);
}

TEST(ScaleOut, BfsCommShareGrowsWithNodes) {
  auto comm_share = [](int np) {
    sim::Simulator sim;
    auto c = Cluster::make_cluster_i(sim, np, ApenetParams{}, false);
    apps::bfs::BfsConfig cfg;
    cfg.scale = 12;
    cfg.edge_factor = 8;
    apps::bfs::BfsRun run(*c, cfg);
    auto m = run.run();
    return static_cast<double>(m.comm_time) / static_cast<double>(m.wall);
  };
  // The all-to-all pattern loads the torus more per node added.
  EXPECT_GT(comm_share(16), comm_share(4));
}

TEST(ScaleOut, HsgStrongScalingContinuesTo16) {
  auto ttot = [](int np) {
    sim::Simulator sim;
    auto c = Cluster::make_cluster_i(sim, np, ApenetParams{}, false);
    apps::hsg::HsgConfig cfg;
    cfg.L = 64;
    cfg.steps = 2;
    cfg.functional = false;
    apps::hsg::HsgRun run(*c, cfg);
    return run.run().ttot_ps;
  };
  double t2 = ttot(2);
  double t16 = ttot(16);
  // L=64 is small; 16 nodes won't scale linearly but must still beat 2.
  EXPECT_LT(t16, t2);
}

}  // namespace
}  // namespace apn
