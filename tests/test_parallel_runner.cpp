// Pins the parallel experiment runner's contract: byte-identical output at
// any job count, declaration-order commits, per-point observability
// isolation, and the shared bench flag parsing.
#include "exp/runner.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "cluster/cluster.hpp"
#include "cluster/harness.hpp"
#include "trace/metrics.hpp"

namespace {

using namespace apn;

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(RunnerOptions, ParsesFlagsAndEnv) {
  unsetenv("APN_JOBS");
  {
    const char* argv[] = {"prog", "--jobs=3", "--filter=abc", "--list"};
    auto o = exp::RunnerOptions::from_args(4, const_cast<char**>(argv));
    EXPECT_EQ(o.jobs, 3);
    EXPECT_EQ(o.filter, "abc");
    EXPECT_TRUE(o.list);
  }
  setenv("APN_JOBS", "2", 1);
  {
    const char* argv[] = {"prog"};
    auto o = exp::RunnerOptions::from_args(1, const_cast<char**>(argv));
    EXPECT_EQ(o.jobs, 2);
  }
  {
    // An explicit flag beats the environment.
    const char* argv[] = {"prog", "--jobs=5"};
    auto o = exp::RunnerOptions::from_args(2, const_cast<char**>(argv));
    EXPECT_EQ(o.jobs, 5);
  }
  unsetenv("APN_JOBS");
}

TEST(ParallelRunner, CommitsRunInDeclarationOrder) {
  exp::RunnerOptions opt;
  opt.jobs = 4;
  exp::ParallelRunner runner(opt);
  std::vector<int> order;
  for (int i = 0; i < 16; ++i) {
    runner.add("p" + std::to_string(i), [i, &order]() {
      // Uneven work so completion order differs from declaration order.
      volatile double x = 0;
      for (int k = 0; k < (16 - i) * 20000; ++k) x += k;
      return [i, &order] { order.push_back(i); };
    });
  }
  EXPECT_EQ(runner.run(), 16u);
  ASSERT_EQ(order.size(), 16u);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(ParallelRunner, FilterSelectsBySubstring) {
  exp::RunnerOptions opt;
  opt.jobs = 2;
  opt.filter = "beta";
  exp::ParallelRunner runner(opt);
  std::atomic<int> ran{0};
  for (const char* name : {"alpha/32B", "beta/32B", "gamma/beta-ish"}) {
    runner.add(name, [&ran]() {
      ran.fetch_add(1);
      return exp::ParallelRunner::Commit{};
    });
  }
  EXPECT_EQ(runner.run(), 2u);  // "beta/32B" and "gamma/beta-ish"
  EXPECT_EQ(ran.load(), 2);
}

TEST(ParallelRunner, ListRunsNothing) {
  exp::RunnerOptions opt;
  opt.list = true;
  exp::ParallelRunner runner(opt);
  bool ran = false;
  runner.add("only", [&ran]() {
    ran = true;
    return exp::ParallelRunner::Commit{};
  });
  EXPECT_EQ(runner.run(), 0u);
  EXPECT_FALSE(ran);
}

TEST(ParallelRunner, ExceptionsRethrownInDeclarationOrder) {
  exp::RunnerOptions opt;
  opt.jobs = 4;
  exp::ParallelRunner runner(opt);
  for (int i = 0; i < 8; ++i) {
    runner.add("p" + std::to_string(i), [i]() -> exp::ParallelRunner::Commit {
      if (i == 2) throw std::runtime_error("boom2");
      if (i == 5) throw std::runtime_error("boom5");
      return {};
    });
  }
  try {
    runner.run();
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    // The first failing point in declaration order wins, at any job count.
    EXPECT_STREQ(e.what(), "boom2");
  }
}

TEST(ParallelRunner, MetricsScopePerPoint) {
  // Each point gets a fresh thread-local MetricsRegistry: counts from
  // other points sharing the worker thread must not leak in.
  exp::RunnerOptions opt;
  opt.jobs = 4;
  exp::ParallelRunner runner(opt);
  std::vector<std::uint64_t> observed(32, 0);
  for (std::size_t i = 0; i < observed.size(); ++i) {
    runner.add("m" + std::to_string(i), [i, &observed]() {
      trace::MetricsRegistry::current().counter("test.events").add(i + 1);
      observed[i] = trace::MetricsRegistry::current()
                        .counter("test.events")
                        .value();
      return exp::ParallelRunner::Commit{};
    });
  }
  EXPECT_EQ(runner.run(), observed.size());
  for (std::size_t i = 0; i < observed.size(); ++i)
    EXPECT_EQ(observed[i], i + 1) << "point " << i;
}

// One small real sweep, executed through bench::Runner (the JsonSink
// integration) at a given job count. Returns {table text, ndjson bytes,
// raw measured values}.
struct SweepOutput {
  std::string table;
  std::string ndjson;
  std::vector<double> values;
  bool operator==(const SweepOutput& o) const {
    return table == o.table && ndjson == o.ndjson && values == o.values;
  }
};

SweepOutput run_sweep(int jobs, const std::string& json_path) {
  std::string jobs_flag = "--jobs=" + std::to_string(jobs);
  std::string json_flag = "--json=" + json_path;
  const char* argv[] = {"prog", jobs_flag.c_str(), json_flag.c_str()};
  bench::Runner runner(3, const_cast<char**>(argv));

  const std::uint64_t sizes[] = {4096, 16384, 65536};
  const core::MemType types[] = {core::MemType::kHost, core::MemType::kGpu};
  bench::Cell cells[3][2];
  for (std::size_t si = 0; si < 3; ++si) {
    for (std::size_t ti = 0; ti < 2; ++ti) {
      const std::uint64_t size = sizes[si];
      const core::MemType type = types[ti];
      runner.add(strf("sweep/t%zu/%s", ti, size_label(size).c_str()),
                 [&cells, si, ti, size, type] {
                   sim::Simulator sim;
                   auto c = cluster::Cluster::make_cluster_i(
                       sim, 1, core::ApenetParams{}, false);
                   double v =
                       cluster::loopback_bandwidth(*c, 0, type, size, 4).mbps;
                   cells[si][ti] = v;
                   bench::JsonSink::global().record(
                       "runner_test", strf("t%zu/%s", ti,
                                           size_label(size).c_str()),
                       v);
                 });
    }
  }
  EXPECT_EQ(runner.run(), 6u);
  bench::JsonSink::global().close();

  SweepOutput out;
  TextTable t({"Msg size", "H-H", "G-G"});
  for (std::size_t si = 0; si < 3; ++si) {
    t.add_row({size_label(sizes[si]), cells[si][0].str("%.3f"),
               cells[si][1].str("%.3f")});
    out.values.push_back(cells[si][0].v);
    out.values.push_back(cells[si][1].v);
  }
  char* buf = nullptr;
  std::size_t len = 0;
  std::FILE* mem = open_memstream(&buf, &len);
  t.print(mem);
  std::fclose(mem);
  out.table.assign(buf, len);
  std::free(buf);
  out.ndjson = read_file(json_path);
  return out;
}

TEST(ParallelRunner, ByteIdenticalOutputAcrossJobCounts) {
  const std::string dir = testing::TempDir();
  SweepOutput j1 = run_sweep(1, dir + "runner_j1.ndjson");
  SweepOutput j4 = run_sweep(4, dir + "runner_j4.ndjson");
  EXPECT_FALSE(j1.ndjson.empty());
  EXPECT_EQ(j1.ndjson, j4.ndjson);
  EXPECT_EQ(j1.table, j4.table);
  EXPECT_EQ(j1.values, j4.values);  // exact simulated-timing equality
  EXPECT_EQ(j1, j4);
}

}  // namespace
