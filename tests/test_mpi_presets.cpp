// MPI stack flavor presets: MVAPICH2-style (pipelined) vs 2012-OpenMPI
// (fragmented blocking staging) — the paper's two reference middlewares.
#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "cluster/harness.hpp"

namespace apn::mpi {
namespace {

using cluster::Cluster;

TEST(MpiPresets, PresetValues) {
  MpiParams mv = mvapich2_params();
  EXPECT_EQ(mv.staged_fragment_bytes, 0u);
  EXPECT_LT(mv.gpu_pipeline_threshold, 1u << 20);
  MpiParams om = openmpi2012_params();
  EXPECT_GT(om.staged_fragment_bytes, 0u);
  EXPECT_GT(om.gpu_pipeline_threshold, 1u << 30);  // pipeline disabled
}

TEST(MpiPresets, FragmentedStagingPreservesData) {
  sim::Simulator sim;
  auto c = Cluster::make_cluster_ii(sim, 2, true, openmpi2012_params());
  const std::uint64_t n = 100000;  // not a multiple of the fragment size
  cuda::DevPtr src = c->node(0).cuda().malloc_device(0, n);
  cuda::DevPtr dst = c->node(1).cuda().malloc_device(0, n);
  std::vector<std::uint8_t> data(n);
  for (std::size_t i = 0; i < n; ++i)
    data[i] = static_cast<std::uint8_t>((i * 37) % 251);
  c->node(0).cuda().move_bytes(src,
                               reinterpret_cast<std::uint64_t>(data.data()),
                               n);
  [](Cluster* c, cuda::DevPtr src, cuda::DevPtr dst,
     std::uint64_t n) -> sim::Coro {
    Signal r = c->mpi_rank(1).recv(0, dst, n, 1);
    Signal s = c->mpi_rank(0).send(1, src, n, 1);
    co_await s;
    co_await r;
  }(c.get(), src, dst, n);
  sim.run();
  std::vector<std::uint8_t> out(n);
  c->node(1).cuda().move_bytes(reinterpret_cast<std::uint64_t>(out.data()),
                               dst, n);
  EXPECT_EQ(out, data);
}

TEST(MpiPresets, OpenMpiStagingSlowerThanMvapichPipeline) {
  auto gg = [](MpiParams params, std::uint64_t size) {
    sim::Simulator sim;
    auto c = Cluster::make_cluster_ii(sim, 2, true, params);
    return cluster::ib_gg_bandwidth(*c, size, 6).mbps;
  };
  double mv = gg(mvapich2_params(), 2 << 20);
  double om = gg(openmpi2012_params(), 2 << 20);
  EXPECT_GT(mv, om * 1.8);  // pipeline vs fragmented blocking copies
  // Era-reported OpenMPI D2D over IB: around 1 GB/s.
  EXPECT_GT(om, 600.0);
  EXPECT_LT(om, 1600.0);
}

TEST(MpiPresets, HostTrafficUnaffectedByGpuPreset) {
  auto hh = [](MpiParams params) {
    sim::Simulator sim;
    auto c = Cluster::make_cluster_ii(sim, 2, true, params);
    return cluster::ib_hh_bandwidth(*c, 1 << 20, 8).mbps;
  };
  double mv = hh(mvapich2_params());
  double om = hh(openmpi2012_params());
  EXPECT_NEAR(mv, om, mv * 0.02);  // host path identical in both stacks
}

TEST(MpiPresets, SerializedCopiesThrottleConcurrentDeviceSends) {
  // Many simultaneous small device-buffer sends from one rank serialize on
  // the library's host thread (one cudaMemcpy at a time).
  auto elapsed = [](int messages) {
    sim::Simulator sim;
    auto c = Cluster::make_cluster_ii(sim, 2, true, mvapich2_params());
    cuda::DevPtr src = c->node(0).cuda().malloc_device(0, 4096);
    cuda::DevPtr dst = c->node(1).cuda().malloc_device(0, 4096);
    auto t = std::make_shared<Time>(0);
    [](Cluster* c, cuda::DevPtr src, cuda::DevPtr dst, int messages,
       std::shared_ptr<Time> t) -> sim::Coro {
      std::vector<Signal> rs, ss;
      for (int i = 0; i < messages; ++i)
        rs.push_back(c->mpi_rank(1).recv(0, dst, 4096, i));
      Time t0 = c->simulator().now();
      for (int i = 0; i < messages; ++i)
        ss.push_back(c->mpi_rank(0).send(1, src, 4096, i));
      for (auto& s : ss) co_await s;
      for (auto& r : rs) co_await r;
      *t = c->simulator().now() - t0;
    }(c.get(), src, dst, messages, t);
    sim.run();
    return *t;
  };
  Time one = elapsed(1);
  Time eight = elapsed(8);
  // Eight messages cost nearly eight serialized D2H copies, not one.
  EXPECT_GT(eight, one + 6 * units::us(8));
}

}  // namespace
}  // namespace apn::mpi
