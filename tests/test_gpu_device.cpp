#include <gtest/gtest.h>

#include <cstring>

#include "gpu/gpu.hpp"
#include "pcie/memory.hpp"

namespace apn::gpu {
namespace {

using units::us;

/// Requester device standing in for the NIC: collects P2P response writes.
class Collector : public pcie::Device {
 public:
  explicit Collector(sim::Simulator& sim) : sim_(&sim) {}
  void handle_write(std::uint64_t, pcie::Payload payload) override {
    bytes += payload.bytes;
    if (!payload.data.empty())
      data.insert(data.end(), payload.data.begin(), payload.data.end());
    last_at = sim_->now();
    if (first_at < 0) first_at = sim_->now();
  }
  void handle_read(std::uint64_t, std::uint32_t len,
                   UniqueFn<void(pcie::Payload)> reply) override {
    reply(pcie::Payload::timing(len));
  }
  std::uint64_t bytes = 0;
  std::vector<std::uint8_t> data;
  Time first_at = -1;
  Time last_at = -1;

 private:
  sim::Simulator* sim_;
};

constexpr std::uint64_t kGpuBase = 0xE00000000000ull;
constexpr std::uint64_t kNicBase = 0xD00000000000ull;

struct GpuFixture : ::testing::Test {
  sim::Simulator sim;
  pcie::Fabric fabric{sim};
  Collector nic{sim};
  std::unique_ptr<Gpu> gpu;

  void SetUp() override { build(fermi_c2050()); }

  void build(GpuArch arch) {
    gpu = std::make_unique<Gpu>(sim, fabric, arch, kGpuBase);
    // Fresh fabric topology per build is overkill; the fixture builds once.
    static thread_local bool dummy = false;
    (void)dummy;
  }

  void wire() {
    int root = fabric.add_root();
    int sw = fabric.add_switch(root, pcie::gen2_x16(), "plx");
    fabric.attach(*gpu, sw, pcie::gen2_x16());
    fabric.attach(nic, sw, pcie::gen2_x8());
    fabric.claim_range(*gpu, gpu->mmio_base(), gpu->mmio_size());
    fabric.claim_range(nic, kNicBase, 1 << 20);
  }

  void send_read_request(std::uint64_t dev_off, std::uint32_t len) {
    P2pReadDescriptor d{};
    d.dev_offset = dev_off;
    d.len = len;
    d.reply_addr = kNicBase;
    pcie::Payload p;
    p.bytes = 32;
    p.data.resize(sizeof(d));
    std::memcpy(p.data.data(), &d, sizeof(d));
    fabric.post_write(nic, gpu->mailbox_addr(), std::move(p));
  }
};

TEST_F(GpuFixture, P2pReadReturnsData) {
  wire();
  std::vector<std::uint8_t> src(512);
  for (std::size_t i = 0; i < src.size(); ++i)
    src[i] = static_cast<std::uint8_t>(i);
  gpu->memory().write(0x10000, src);
  send_read_request(0x10000, 512);
  sim.run();
  EXPECT_EQ(nic.bytes, 512u);
  EXPECT_EQ(nic.data, src);
  EXPECT_EQ(gpu->p2p_requests_served(), 1u);
}

TEST_F(GpuFixture, P2pHeadLatencyVisibleOnSingleRequest) {
  wire();
  send_read_request(0, 512);
  sim.run();
  // Head latency (1.8 us) dominates a single small read; bus transit and
  // response streaming add under 1.5 us on top.
  EXPECT_GT(nic.first_at, us(1.8));
  EXPECT_LT(nic.first_at, us(3.5));
}

TEST_F(GpuFixture, P2pStreamingRateCapsAt1_5GBs) {
  wire();
  const std::uint32_t req = 512;
  const std::uint64_t total = 4ull << 20;
  for (std::uint64_t off = 0; off < total; off += req)
    send_read_request(off, req);
  sim.run();
  EXPECT_EQ(nic.bytes, total);
  double mbps = units::bandwidth_MBps(Bytes(total), nic.last_at);
  // Architectural Fermi ceiling: ~1.55 GB/s (not the 3.6 GB/s the link
  // could carry).
  EXPECT_GT(mbps, 1450.0);
  EXPECT_LT(mbps, 1600.0);
}

TEST_F(GpuFixture, WindowWriteTargetsCurrentPage) {
  wire();
  // Point the window at page 3, then write through the aperture.
  std::uint64_t page = 3 * GpuMmio::kWindowBytes;
  pcie::Payload ctl;
  ctl.bytes = 8;
  ctl.data.resize(8);
  std::memcpy(ctl.data.data(), &page, 8);
  fabric.post_write(nic, gpu->window_ctl_addr(), std::move(ctl));

  std::vector<std::uint8_t> data(256, 0x77);
  fabric.post_write(nic, gpu->window_aperture_addr() + 128,
                    pcie::Payload::of(data));
  sim.run();
  std::vector<std::uint8_t> out(256);
  gpu->memory().read(page + 128, out);
  EXPECT_EQ(out, data);
  EXPECT_EQ(gpu->window_switches(), 1u);
}

TEST_F(GpuFixture, Bar1MapAndWrite) {
  wire();
  std::uint64_t bar_addr = gpu->bar1_map(0x40000, 128 * 1024);
  EXPECT_GE(bar_addr, gpu->mmio_base() + GpuMmio::kBar1Aperture);
  std::vector<std::uint8_t> data(4096, 0x3C);
  fabric.post_write(nic, bar_addr + 64, pcie::Payload::of(data));
  sim.run();
  std::vector<std::uint8_t> out(4096);
  gpu->memory().read(0x40000 + 64, out);
  EXPECT_EQ(out, data);
}

TEST_F(GpuFixture, Bar1FermiReadIsSlow) {
  wire();
  std::uint64_t bar_addr = gpu->bar1_map(0, 1 << 20);
  const std::uint32_t chunk = 4096;
  const std::uint64_t total = 1 << 20;
  std::uint64_t done_bytes = 0;
  Time last = 0;
  for (std::uint64_t off = 0; off < total; off += chunk) {
    fabric.read(nic, bar_addr + off, chunk, [&](pcie::Payload p) {
      done_bytes += p.bytes;
      last = sim.now();
    });
  }
  sim.run();
  EXPECT_EQ(done_bytes, total);
  double mbps = units::bandwidth_MBps(Bytes(total), last);
  // Fermi BAR1 read-completion rate: ~150 MB/s.
  EXPECT_GT(mbps, 130.0);
  EXPECT_LT(mbps, 170.0);
}

TEST_F(GpuFixture, Bar1ApertureExhaustion) {
  wire();
  EXPECT_NO_THROW(gpu->bar1_map(0, 200ull << 20));
  EXPECT_THROW(gpu->bar1_map(0, 100ull << 20), std::runtime_error);
  gpu->bar1_reset();
  EXPECT_NO_THROW(gpu->bar1_map(0, 100ull << 20));
}

TEST_F(GpuFixture, QueueDepthLimitThrottlesRequests) {
  // A tiny mailbox queue caps how much prefetching can help: with depth 2
  // the response engine can never pipeline more than 1 KB of requests.
  gpu::GpuArch arch = fermi_c2050();
  arch.p2p_max_outstanding = 2;
  build(arch);
  wire();
  const std::uint64_t total = 256 * 1024;
  for (std::uint64_t off = 0; off < total; off += 512)
    send_read_request(off, 512);
  sim.run();
  EXPECT_EQ(nic.bytes, total);
  double mbps = units::bandwidth_MBps(Bytes(total), nic.last_at);
  // Depth 2 x 512 B over a ~2.6 us pipeline: far below the 1.5 GB/s cap.
  EXPECT_LT(mbps, 900.0);
  EXPECT_EQ(gpu->p2p_queue_depth(), 0);  // fully drained
  EXPECT_EQ(gpu->p2p_requests_served(), total / 512);
}

TEST(GpuArchPresets, PaperValues) {
  EXPECT_EQ(fermi_c2050().mem_bytes, 3ull << 30);
  EXPECT_EQ(fermi_c2070().mem_bytes, 6ull << 30);
  EXPECT_FALSE(fermi_c2050().ecc_enabled);
  // Kepler K20 was measured with ECC on and still hit 1.6 GB/s.
  GpuArch k20 = kepler_k20();
  EXPECT_TRUE(k20.ecc_enabled);
  EXPECT_NEAR(k20.effective_p2p_rate().bytes_per_sec(), 1.6e9, 0.1e9);
  EXPECT_NEAR(k20.effective_bar1_read_rate().bytes_per_sec(), 1.6e9, 0.1e9);
  // Fermi BAR1 is an order of magnitude slower than Kepler's.
  EXPECT_LT(fermi_c2050().bar1_read_rate * 5.0, k20.bar1_read_rate);
}

}  // namespace
}  // namespace apn::gpu
