// Pins the hardware-profile registry (src/hw/profile.hpp):
//  * apenet_2013 matches today's calibration literals field by field — the
//    golden guard against silent recalibration of the paper's Cluster I.
//    (tests/test_determinism.cpp pins the timings those values produce.)
//  * Registry lookup, the unknown-name error listing every registered
//    profile, select()/active() and the ScopedProfile thread-local
//    override.
//  * Per-profile determinism: the same workload run twice under each
//    profile yields identical rolling state hashes and simulated timings.
//  * The shared bench flag parsing of --hw-profile / APN_HW_PROFILE and
//    the bench::Runner exit on an unknown profile.
#include "hw/profile.hpp"

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <stdexcept>
#include <vector>

#include "bench_common.hpp"
#include "check/check.hpp"
#include "cluster/cluster.hpp"
#include "cluster/harness.hpp"
#include "exp/runner.hpp"

namespace {

using namespace apn;
using check::Context;

TEST(HwProfile, Apenet2013MatchesTodaysLiterals) {
  const hw::HwProfile& p = hw::profile("apenet_2013");
  const core::ApenetParams& a = p.apenet;

  // PCIe link of the card (Gen2 x8).
  EXPECT_EQ(a.pcie.gen, 2);
  EXPECT_EQ(a.pcie.lanes, 8);
  EXPECT_EQ(a.pcie.max_payload, 256u);
  EXPECT_EQ(a.pcie.tlp_overhead, 28u);
  EXPECT_EQ(a.pcie.hop_latency, units::ns(200));

  // Torus and router.
  EXPECT_DOUBLE_EQ(a.torus_link_gbps, 28.0);
  EXPECT_EQ(a.torus_link_latency, units::ns(150));
  EXPECT_EQ(a.router_latency, units::ns(120));

  // Host-buffer transmission.
  EXPECT_EQ(a.descriptor_fetch, units::us(0.35));
  EXPECT_EQ(a.host_read_request_bytes, 512u);
  EXPECT_EQ(a.host_read_window, 3840u);
  EXPECT_EQ(a.tx_packet_overhead, units::ns(300));

  // GPU_P2P_TX.
  EXPECT_EQ(a.p2p_tx_version, core::P2pTxVersion::kV3);
  EXPECT_EQ(a.p2p_request_bytes, 512u);
  EXPECT_EQ(a.p2p_request_interval, units::ns(80));
  EXPECT_EQ(a.p2p_prefetch_window, 128u * 1024u);
  EXPECT_EQ(a.p2p_descriptor_bytes, 32u);
  EXPECT_EQ(a.p2p_refill_interval_bytes, 64u * 1024u);

  // FIFOs and receive path.
  EXPECT_EQ(a.tx_fifo_bytes, 32u * 1024u);
  EXPECT_EQ(a.gpu_tx_fifo_bytes, 32u * 1024u);
  EXPECT_EQ(a.rx_event_delivery, units::us(0.25));
  EXPECT_FALSE(a.rx_hw_v2p);
  EXPECT_EQ(a.mmio_read_latency, units::ns(400));
  EXPECT_FALSE(a.flush_at_switch);

  // Nios firmware task costs.
  EXPECT_EQ(a.nios.rx_buflist_base, units::us(1.05));
  EXPECT_EQ(a.nios.rx_buflist_per_entry, units::ns(55));
  EXPECT_EQ(a.nios.rx_v2p, units::us(1.45));
  EXPECT_EQ(a.nios.rx_dma_kick, units::us(0.70));
  EXPECT_EQ(a.nios.rx_gpu_window_extra, units::ns(350));
  EXPECT_EQ(a.nios.tx_gpu_setup, units::us(1.1));
  EXPECT_EQ(a.nios.tx_gpu_v1_per_request, units::us(1.9));
  EXPECT_EQ(a.nios.tx_gpu_v2_per_packet, units::ns(350));
  EXPECT_EQ(a.nios.tx_gpu_v3_per_refill, units::ns(300));

  // GPU: Fermi C2050 as shipped on Cluster I.
  EXPECT_EQ(p.gpu.name, "Fermi C2050");
  EXPECT_EQ(p.gpu.mem_bytes, 3ull << 30);
  EXPECT_EQ(p.gpu.p2p_stream_rate, Rate(1.55e9));
  EXPECT_EQ(p.gpu.bar1_read_rate, Rate(150e6));
  EXPECT_EQ(p.gpu.p2p_head_latency, units::us(1.8));
  EXPECT_EQ(p.gpu.unmapped_read_latency, units::ns(400));
  EXPECT_FALSE(p.gpu.ecc_enabled);

  // Slot wiring: card Gen2 x8, HCA x4 (motherboard constraint), GPU x16.
  EXPECT_EQ(p.apenet_slot.gen, 2);
  EXPECT_EQ(p.apenet_slot.lanes, 8);
  EXPECT_EQ(p.ib_slot.gen, 2);
  EXPECT_EQ(p.ib_slot.lanes, 4);
  EXPECT_EQ(p.gpu_slot.gen, 2);
  EXPECT_EQ(p.gpu_slot.lanes, 16);

  // The profile is exactly the default-constructed parameter set: a
  // default ApenetParams{} (what every pre-profile test builds) must stay
  // indistinguishable from apenet_2013.
  const core::ApenetParams d{};
  EXPECT_EQ(a.torus_link_gbps, d.torus_link_gbps);
  EXPECT_EQ(a.host_read_window, d.host_read_window);
  EXPECT_EQ(a.nios.rx_v2p, d.nios.rx_v2p);
  EXPECT_EQ(a.rx_hw_v2p, d.rx_hw_v2p);
  EXPECT_EQ(a.mmio_read_latency, d.mmio_read_latency);
}

TEST(HwProfile, RegistryNamesAndLookup) {
  auto names = hw::names();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "apenet_2013");
  EXPECT_EQ(names[1], "apenet_28nm");
  EXPECT_EQ(names[2], "gen3");
  for (const auto& n : names) EXPECT_EQ(hw::profile(n).name, n);
}

TEST(HwProfile, UnknownNameErrorListsRegisteredProfiles) {
  try {
    hw::profile("gen4_wishful");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("gen4_wishful"), std::string::npos) << msg;
    for (const auto& n : hw::names())
      EXPECT_NE(msg.find(n), std::string::npos) << msg;
  }
}

TEST(HwProfile, ProfilesDifferWhereTheyShould) {
  const hw::HwProfile& p13 = hw::profile("apenet_2013");
  const hw::HwProfile& p28 = hw::profile("apenet_28nm");
  const hw::HwProfile& g3 = hw::profile("gen3");

  // 28 nm: hardware V2P, cheaper BUF_LIST, faster torus, K20; still Gen2.
  EXPECT_TRUE(p28.apenet.rx_hw_v2p);
  EXPECT_LT(p28.apenet.nios.rx_hw_v2p_lookup, p13.apenet.nios.rx_v2p);
  EXPECT_LT(p28.apenet.nios.rx_buflist_base, p13.apenet.nios.rx_buflist_base);
  EXPECT_GT(p28.apenet.torus_link_gbps, p13.apenet.torus_link_gbps);
  EXPECT_EQ(p28.apenet_slot.gen, 2);
  EXPECT_EQ(p28.gpu.name, "Kepler K20");

  // gen3: PCIe Gen3 slots, wider host-read window, faster torus, K40.
  EXPECT_EQ(g3.apenet.pcie.gen, 3);
  EXPECT_EQ(g3.apenet_slot.gen, 3);
  EXPECT_EQ(g3.gpu_slot.gen, 3);
  EXPECT_GT(g3.apenet.host_read_window, p28.apenet.host_read_window);
  EXPECT_GT(g3.apenet.torus_link_gbps, p28.apenet.torus_link_gbps);
  EXPECT_EQ(g3.gpu.name, "Kepler K40");
  EXPECT_GT(g3.apenet_slot.raw_rate().bytes_per_sec(),
            p28.apenet_slot.raw_rate().bytes_per_sec());
}

TEST(HwProfile, SelectActiveAndScopedOverride) {
  EXPECT_EQ(hw::active().name, "apenet_2013");  // the process default
  {
    hw::ScopedProfile sp("apenet_28nm");
    EXPECT_EQ(hw::active().name, "apenet_28nm");
    EXPECT_TRUE(hw::params().rx_hw_v2p);
    {
      hw::ScopedProfile inner("gen3");
      EXPECT_EQ(hw::active().name, "gen3");
    }
    EXPECT_EQ(hw::active().name, "apenet_28nm");
  }
  EXPECT_EQ(hw::active().name, "apenet_2013");

  hw::select("gen3");
  EXPECT_EQ(hw::active().name, "gen3");
  {
    // A thread-local override beats the process selection.
    hw::ScopedProfile sp("apenet_2013");
    EXPECT_EQ(hw::active().name, "apenet_2013");
  }
  hw::select("apenet_2013");
  EXPECT_THROW(hw::select("bogus"), std::invalid_argument);
  EXPECT_EQ(hw::active().name, "apenet_2013");  // failed select is a no-op
}

// The same two-node workload run twice under one profile must produce the
// same rolling state hash and the same simulated timing — each profile is
// a deterministic machine, not a noise source.
struct ProfileRun {
  std::uint64_t hash;
  double mbps;
  Time elapsed;
};

ProfileRun run_profile_once(const std::string& name) {
  hw::ScopedProfile sp(name);
  sim::Simulator sim;
  check::Session session(sim, Context::Mode::kRecord);
  auto c = cluster::Cluster::make_cluster_i(sim, 2, hw::params(), false);
  auto r = cluster::twonode_bandwidth(*c, 64 * 1024, 8,
                                      cluster::TwoNodeOptions{
                                          core::MemType::kGpu,
                                          core::MemType::kGpu});
  return {session.context().rolling_hash(), r.mbps, r.elapsed};
}

// Cell identity in the race detector is the cell's address, so the rolling
// hash is only comparable between runs that start from the same heap state
// — in practice, between fresh processes (how CI diffs --state-hash-out
// files). Reproduce that here by forking: both children inherit an
// identical heap, run the workload once, and report over a pipe.
ProfileRun run_profile_in_child(const std::string& name) {
  int fds[2];
  EXPECT_EQ(pipe(fds), 0);
  pid_t pid = fork();
  EXPECT_GE(pid, 0);
  if (pid == 0) {
    ProfileRun r = run_profile_once(name);
    ssize_t n = write(fds[1], &r, sizeof r);
    _exit(n == sizeof r ? 0 : 1);
  }
  close(fds[1]);
  ProfileRun r{};
  EXPECT_EQ(read(fds[0], &r, sizeof r), static_cast<ssize_t>(sizeof r));
  close(fds[0]);
  int status = 0;
  EXPECT_EQ(waitpid(pid, &status, 0), pid);
  EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
  return r;
}

TEST(HwProfile, StateHashDeterministicPerProfile) {
  std::vector<ProfileRun> runs;
  for (const auto& name : hw::names()) {
    ProfileRun a = run_profile_in_child(name);
    ProfileRun b = run_profile_in_child(name);
    EXPECT_EQ(a.hash, b.hash) << name;
    EXPECT_EQ(a.elapsed, b.elapsed) << name;
    EXPECT_DOUBLE_EQ(a.mbps, b.mbps) << name;
    runs.push_back(a);
  }
  // And the generations actually behave differently: G-G bandwidth grows
  // monotonically across apenet_2013 -> apenet_28nm -> gen3, and the hash
  // streams diverge.
  ASSERT_EQ(runs.size(), 3u);
  EXPECT_LT(runs[0].mbps, runs[1].mbps);
  EXPECT_LT(runs[1].mbps, runs[2].mbps);
  EXPECT_NE(runs[0].hash, runs[1].hash);
  EXPECT_NE(runs[1].hash, runs[2].hash);
}

TEST(HwProfile, RunnerOptionsParseFlagAndEnv) {
  unsetenv("APN_HW_PROFILE");
  {
    const char* argv[] = {"prog", "--hw-profile=apenet_28nm"};
    auto o = exp::RunnerOptions::from_args(2, const_cast<char**>(argv));
    EXPECT_EQ(o.hw_profile, "apenet_28nm");
  }
  {
    const char* argv[] = {"prog"};
    auto o = exp::RunnerOptions::from_args(1, const_cast<char**>(argv));
    EXPECT_TRUE(o.hw_profile.empty());
  }
  setenv("APN_HW_PROFILE", "gen3", 1);
  {
    const char* argv[] = {"prog"};
    auto o = exp::RunnerOptions::from_args(1, const_cast<char**>(argv));
    EXPECT_EQ(o.hw_profile, "gen3");
  }
  {
    // An explicit flag beats the environment.
    const char* argv[] = {"prog", "--hw-profile=apenet_2013"};
    auto o = exp::RunnerOptions::from_args(2, const_cast<char**>(argv));
    EXPECT_EQ(o.hw_profile, "apenet_2013");
  }
  unsetenv("APN_HW_PROFILE");
}

TEST(HwProfileDeathTest, BenchRunnerRejectsUnknownProfile) {
  // bench::Runner must exit 2 and name every registered profile, so a
  // typo'd --hw-profile= fails loudly instead of silently measuring the
  // default machine.
  const char* argv[] = {"prog", "--hw-profile=no_such_machine"};
  EXPECT_EXIT(bench::Runner(2, const_cast<char**>(argv)),
              testing::ExitedWithCode(2),
              "no_such_machine.*apenet_2013.*apenet_28nm.*gen3");
}

}  // namespace
