// Receive-path behaviour: Nios II processing cap, BUF_LIST scaling, GPU
// P2P write-window management.
#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "cluster/harness.hpp"

namespace apn::core {
namespace {

using cluster::Cluster;
using units::us;

TEST(CardRx, HostLoopbackBandwidthIsRxBound) {
  // Paper Table I: host-to-host loop-back 1.2 GB/s (RX processing cap),
  // versus 2.4 GB/s for the pure memory read.
  sim::Simulator sim;
  auto c = Cluster::make_cluster_i(sim, 1, ApenetParams{}, false);
  auto r = cluster::loopback_bandwidth(*c, 0, MemType::kHost, 1 << 20, 48);
  EXPECT_GT(r.mbps, 1050.0);
  EXPECT_LT(r.mbps, 1350.0);
}

TEST(CardRx, BufListTraversalScalesWithRegisteredBuffers) {
  // The paper: BUF_LIST traversal "linearly scales with the number of
  // registered buffers". More registrations => lower RX throughput.
  auto run = [](int extra_buffers) {
    sim::Simulator sim;
    auto c = Cluster::make_cluster_i(sim, 1, ApenetParams{}, false);
    // Park a pile of extra registrations in the BUF_LIST.
    static std::vector<std::unique_ptr<std::vector<std::uint8_t>>> keep;
    [](Cluster* c, int n) -> sim::Coro {
      for (int i = 0; i < n; ++i) {
        keep.push_back(std::make_unique<std::vector<std::uint8_t>>(64));
        co_await c->rdma(0).register_buffer(
            reinterpret_cast<std::uint64_t>(keep.back()->data()), 64,
            MemType::kHost);
      }
    }(c.get(), extra_buffers);
    sim.run();
    auto r =
        cluster::loopback_bandwidth(*c, 0, MemType::kHost, 1 << 20, 24);
    return r.mbps;
  };
  double few = run(0);
  double many = run(200);
  EXPECT_LT(many, few * 0.9);
}

TEST(CardRx, GpuDestinationPaysWindowSwitches) {
  sim::Simulator sim;
  auto c = Cluster::make_cluster_i(sim, 2, ApenetParams{}, false);
  cuda::DevPtr dst = c->node(1).cuda().malloc_device(0, 1 << 20);
  std::vector<std::uint8_t> src(1 << 20);
  [](Cluster* c, cuda::DevPtr dst, std::vector<std::uint8_t>* src)
      -> sim::Coro {
    co_await c->rdma(1).register_buffer(dst, 1 << 20, MemType::kGpu);
    c->rdma(0).put(c->coord(1), reinterpret_cast<std::uint64_t>(src->data()),
                   1 << 20, dst, MemType::kHost);
    co_await c->rdma(1).events().pop();
  }(c.get(), dst, &src);
  sim.run();
  // 1 MiB spans 16 64-KB pages: at least 16 window switches.
  EXPECT_GE(c->node(1).gpu(0).window_switches(), 16u);
}

TEST(CardRx, PacketsSpanningWindowBoundaryAreSplit) {
  sim::Simulator sim;
  auto c = Cluster::make_cluster_i(sim, 2, ApenetParams{}, false);
  cuda::Runtime& cu1 = c->node(1).cuda();
  // Offset the destination so a 4 KB packet straddles a 64 KB page.
  cuda::DevPtr base = cu1.malloc_device(0, 3 * 64 * 1024);
  cuda::DevPtr dst = base + 64 * 1024 - 2048;
  std::vector<std::uint8_t> src(4096);
  for (std::size_t i = 0; i < src.size(); ++i)
    src[i] = static_cast<std::uint8_t>(i);
  [](Cluster* c, cuda::DevPtr dst, std::vector<std::uint8_t>* src)
      -> sim::Coro {
    co_await c->rdma(1).register_buffer(dst, 4096, MemType::kGpu);
    c->rdma(0).put(c->coord(1), reinterpret_cast<std::uint64_t>(src->data()),
                   4096, dst, MemType::kHost);
    co_await c->rdma(1).events().pop();
  }(c.get(), dst, &src);
  sim.run();
  std::vector<std::uint8_t> out(4096);
  cu1.move_bytes(reinterpret_cast<std::uint64_t>(out.data()), dst, 4096);
  EXPECT_EQ(out, src);
  EXPECT_GE(c->node(1).gpu(0).window_switches(), 2u);
}

TEST(CardRx, HostToGpuSlightlySlowerThanHostToHost) {
  // Paper Fig. 6: ~10% penalty when receive buffers are on the GPU.
  sim::Simulator sim;
  auto c1 = Cluster::make_cluster_i(sim, 2, ApenetParams{}, false);
  cluster::TwoNodeOptions hh;
  auto hh_bw = cluster::twonode_bandwidth(*c1, 1 << 20, 48, hh);

  sim::Simulator sim2;
  auto c2 = Cluster::make_cluster_i(sim2, 2, ApenetParams{}, false);
  cluster::TwoNodeOptions hg;
  hg.dst_type = MemType::kGpu;
  auto hg_bw = cluster::twonode_bandwidth(*c2, 1 << 20, 48, hg);

  EXPECT_LT(hg_bw.mbps, hh_bw.mbps);
  EXPECT_GT(hg_bw.mbps, hh_bw.mbps * 0.8);
}

TEST(CardRx, NiosUtilizationIsTheBottleneckInLoopback) {
  sim::Simulator sim;
  auto c = Cluster::make_cluster_i(sim, 1, ApenetParams{}, false);
  cluster::loopback_bandwidth(*c, 0, MemType::kHost, 1 << 20, 32);
  // During a saturating loop-back run the Nios II is near 100% busy.
  EXPECT_GT(c->node(0).card().nios().utilization(), 0.85);
}

}  // namespace
}  // namespace apn::core
