// The BAR1 transmission path (MemType::kGpuBar1): plain PCIe memory reads
// through a mapped aperture instead of the P2P protocol — slow on Fermi,
// competitive on Kepler (paper §III / Table I).
#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "cluster/harness.hpp"

namespace apn::core {
namespace {

using cluster::Cluster;

std::unique_ptr<Cluster> gpu_cluster(sim::Simulator& sim,
                                     const gpu::GpuArch& arch, int nodes,
                                     bool flush) {
  cluster::NodeConfig cfg;
  cfg.gpus = {arch};
  cfg.has_apenet = true;
  cfg.has_ib = false;
  ApenetParams p;
  p.flush_at_switch = flush;
  return std::make_unique<Cluster>(
      sim, nodes == 1 ? TorusShape{1, 1, 1} : TorusShape{2, 1, 1}, cfg, p);
}

TEST(Bar1Put, DataIntegrityEndToEnd) {
  sim::Simulator sim;
  auto c = gpu_cluster(sim, gpu::kepler_k20(), 2, false);
  const std::uint64_t n = 256 * 1024;
  cuda::DevPtr src = c->node(0).cuda().malloc_device(0, n);
  cuda::DevPtr dst = c->node(1).cuda().malloc_device(0, n);
  std::vector<std::uint8_t> data(n);
  for (std::size_t i = 0; i < n; ++i)
    data[i] = static_cast<std::uint8_t>(i * 7 + 3);
  c->node(0).cuda().move_bytes(src,
                               reinterpret_cast<std::uint64_t>(data.data()),
                               n);
  [](Cluster* c, cuda::DevPtr src, cuda::DevPtr dst,
     std::uint64_t n) -> sim::Coro {
    co_await c->rdma(1).register_buffer(dst, n, MemType::kGpu);
    c->rdma(0).put(c->coord(1), src, n, dst, MemType::kGpuBar1);
    co_await c->rdma(1).events().pop();
  }(c.get(), src, dst, n);
  sim.run();
  std::vector<std::uint8_t> out(n);
  c->node(1).cuda().move_bytes(reinterpret_cast<std::uint64_t>(out.data()),
                               dst, n);
  EXPECT_EQ(out, data);
}

TEST(Bar1Put, FermiBar1IsFarSlowerThanP2p) {
  auto bw = [](MemType type) {
    sim::Simulator sim;
    auto c = gpu_cluster(sim, gpu::fermi_c2050(), 1, true);
    return cluster::loopback_bandwidth(*c, 0, type, 1 << 20, 4).mbps;
  };
  double p2p = bw(MemType::kGpu);
  double bar1 = bw(MemType::kGpuBar1);
  EXPECT_GT(p2p, bar1 * 8);  // paper: 1.5 GB/s vs 150 MB/s
  EXPECT_GT(bar1, 120.0);
  EXPECT_LT(bar1, 180.0);
}

TEST(Bar1Put, KeplerBar1ApproachesP2p) {
  auto bw = [](MemType type) {
    sim::Simulator sim;
    auto c = gpu_cluster(sim, gpu::kepler_k20(), 1, true);
    return cluster::loopback_bandwidth(*c, 0, type, 1 << 20, 12).mbps;
  };
  double p2p = bw(MemType::kGpu);
  double bar1 = bw(MemType::kGpuBar1);
  EXPECT_GT(bar1, p2p * 0.8);  // paper Table I: both ~1.6 GB/s
}

TEST(Bar1Put, MappingIsCachedAcrossPuts) {
  sim::Simulator sim;
  auto c = gpu_cluster(sim, gpu::kepler_k20(), 2, false);
  cuda::DevPtr src = c->node(0).cuda().malloc_device(0, 4096);
  cuda::DevPtr dst = c->node(1).cuda().malloc_device(0, 4096);
  Time first = 0, second = 0;
  [](Cluster* c, cuda::DevPtr src, cuda::DevPtr dst, Time* first,
     Time* second) -> sim::Coro {
    sim::Simulator& sim = c->simulator();
    co_await c->rdma(1).register_buffer(dst, 4096, MemType::kGpu);
    Time t0 = sim.now();
    c->rdma(0).put(c->coord(1), src, 4096, dst, MemType::kGpuBar1, false);
    co_await c->rdma(1).events().pop();
    *first = sim.now() - t0;
    t0 = sim.now();
    c->rdma(0).put(c->coord(1), src, 4096, dst, MemType::kGpuBar1, false);
    co_await c->rdma(1).events().pop();
    *second = sim.now() - t0;
  }(c.get(), src, dst, &first, &second);
  sim.run();
  // First put pays registration + the ~1 ms BAR1 reconfiguration.
  EXPECT_GT(first, units::ms(1));
  EXPECT_LT(second, units::us(30));
  EXPECT_EQ(c->node(0).gpu(0).bar1_mapped_bytes(), units::KiB(64));
}

TEST(Bar1Put, OffsetWithinMappedBufferWorks) {
  sim::Simulator sim;
  auto c = gpu_cluster(sim, gpu::kepler_k20(), 2, false);
  const std::uint64_t n = 128 * 1024;
  cuda::DevPtr src = c->node(0).cuda().malloc_device(0, n);
  cuda::DevPtr dst = c->node(1).cuda().malloc_device(0, n);
  std::vector<std::uint8_t> data(n);
  for (std::size_t i = 0; i < n; ++i)
    data[i] = static_cast<std::uint8_t>(i % 211);
  c->node(0).cuda().move_bytes(src,
                               reinterpret_cast<std::uint64_t>(data.data()),
                               n);
  [](Cluster* c, cuda::DevPtr src, cuda::DevPtr dst,
     std::uint64_t n) -> sim::Coro {
    co_await c->rdma(1).register_buffer(dst, n, MemType::kGpu);
    // Register the whole source once, then put an interior slice: the
    // second put must reuse the existing BAR1 mapping at an offset.
    co_await c->rdma(0).register_buffer(src, n, MemType::kGpu);
    c->rdma(0).put(c->coord(1), src + 4096, 8192, dst + 4096,
                   MemType::kGpuBar1);
    co_await c->rdma(1).events().pop();
  }(c.get(), src, dst, n);
  sim.run();
  std::vector<std::uint8_t> out(8192);
  c->node(1).cuda().move_bytes(reinterpret_cast<std::uint64_t>(out.data()),
                               dst + 4096, 8192);
  EXPECT_TRUE(std::equal(out.begin(), out.end(), data.begin() + 4096));
}

TEST(RdmaWaitEvent, ChargesPollCostAndDeliversEvent) {
  sim::Simulator sim;
  auto c = cluster::Cluster::make_cluster_i(sim, 2, ApenetParams{}, false);
  std::vector<std::uint8_t> src(64, 0xAD), dst(64, 0);
  Time got_at = -1;
  RdmaEvent ev{};
  [](cluster::Cluster* c, std::vector<std::uint8_t>* src,
     std::vector<std::uint8_t>* dst, Time* got_at,
     RdmaEvent* out) -> sim::Coro {
    co_await c->rdma(1).register_buffer(
        reinterpret_cast<std::uint64_t>(dst->data()), 64, MemType::kHost);
    c->rdma(0).put(c->coord(1), reinterpret_cast<std::uint64_t>(src->data()),
                   64, reinterpret_cast<std::uint64_t>(dst->data()),
                   MemType::kHost);
    *out = co_await c->rdma(1).wait_event();
    *got_at = c->simulator().now();
  }(c.get(), &src, &dst, &got_at, &ev);
  sim.run();
  EXPECT_EQ(ev.bytes, 64u);
  EXPECT_GT(got_at, 0);
  EXPECT_EQ(dst, src);
}

}  // namespace
}  // namespace apn::core
