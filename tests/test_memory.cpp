#include <gtest/gtest.h>

#include "pcie/memory.hpp"

namespace apn::pcie {
namespace {

TEST(HostMemory, PinUnpinTracking) {
  sim::Simulator sim;
  HostMemory host(sim);
  std::vector<std::uint8_t> buf(4096);
  EXPECT_FALSE(host.is_pinned(reinterpret_cast<std::uint64_t>(buf.data()), 1));
  host.pin(buf.data(), buf.size());
  EXPECT_TRUE(
      host.is_pinned(reinterpret_cast<std::uint64_t>(buf.data()), 4096));
  // Interior range.
  EXPECT_TRUE(
      host.is_pinned(reinterpret_cast<std::uint64_t>(buf.data()) + 100, 1000));
  // Overrun past the end.
  EXPECT_FALSE(
      host.is_pinned(reinterpret_cast<std::uint64_t>(buf.data()) + 100, 4096));
  host.unpin(buf.data());
  EXPECT_FALSE(host.is_pinned(reinterpret_cast<std::uint64_t>(buf.data()), 1));
}

TEST(HostMemory, MultipleRegionsIndependent) {
  sim::Simulator sim;
  HostMemory host(sim);
  std::vector<std::uint8_t> a(128), b(128);
  host.pin(a.data(), a.size());
  host.pin(b.data(), b.size());
  EXPECT_TRUE(host.is_pinned(reinterpret_cast<std::uint64_t>(a.data()), 128));
  EXPECT_TRUE(host.is_pinned(reinterpret_cast<std::uint64_t>(b.data()), 128));
  host.unpin(a.data());
  EXPECT_FALSE(host.is_pinned(reinterpret_cast<std::uint64_t>(a.data()), 1));
  EXPECT_TRUE(host.is_pinned(reinterpret_cast<std::uint64_t>(b.data()), 128));
}

TEST(HostMemory, WriteOutsidePinnedIsDropped) {
  sim::Simulator sim;
  HostMemory host(sim);
  std::vector<std::uint8_t> buf(64, 7);
  // Not pinned: a functional write must NOT touch the bytes.
  Payload p;
  p.bytes = 64;
  p.data.assign(64, 9);
  host.handle_write(reinterpret_cast<std::uint64_t>(buf.data()),
                    std::move(p));
  for (auto v : buf) EXPECT_EQ(v, 7);
}

TEST(HostMemory, ReadCompletionsSerializeAtMemoryRate) {
  sim::Simulator sim;
  HostMemoryParams params;
  params.read_rate = Rate(1e9);
  params.read_latency = units::us(1);
  HostMemory host(sim, params);
  std::vector<Time> done;
  for (int i = 0; i < 3; ++i) {
    host.handle_read(0x5000, 1000,
                     [&](Payload) { done.push_back(sim.now()); });
  }
  sim.run();
  ASSERT_EQ(done.size(), 3u);
  // Latency pipelines; the 1 us streaming serializes on the port.
  EXPECT_EQ(done[0], units::us(2));
  EXPECT_EQ(done[1], units::us(3));
  EXPECT_EQ(done[2], units::us(4));
}

}  // namespace
}  // namespace apn::pcie
