#include <gtest/gtest.h>

#include "sim/coro.hpp"
#include "sim/sync.hpp"

namespace apn::sim {
namespace {

using units::us;

TEST(Gate, WaitersResumeOnOpen) {
  Simulator sim;
  Gate gate(sim);
  std::vector<Time> woke;
  auto waiter = [](Simulator& sim, Gate& g, std::vector<Time>& woke) -> Coro {
    co_await g.wait();
    woke.push_back(sim.now());
  };
  waiter(sim, gate, woke);
  waiter(sim, gate, woke);
  sim.after(us(4), [&] { gate.open(); });
  sim.run();
  ASSERT_EQ(woke.size(), 2u);
  EXPECT_EQ(woke[0], us(4));
  EXPECT_EQ(woke[1], us(4));
}

TEST(Gate, WaitOnOpenGateDoesNotSuspend) {
  Simulator sim;
  Gate gate(sim);
  gate.open();
  bool done = false;
  [](Gate& g, bool& done) -> Coro {
    co_await g.wait();
    done = true;
  }(gate, done);
  EXPECT_TRUE(done);  // completed synchronously
}

TEST(Gate, OpenIsIdempotent) {
  Simulator sim;
  Gate gate(sim);
  gate.open();
  gate.open();
  EXPECT_TRUE(gate.is_open());
}

TEST(Future, DeliversValueToAllWaiters) {
  Simulator sim;
  Future<int> f(sim);
  std::vector<int> got;
  auto waiter = [](Future<int> f, std::vector<int>& got) -> Coro {
    int v = co_await f;
    got.push_back(v);
  };
  waiter(f, got);
  waiter(f, got);
  sim.after(us(1), [f]() mutable { f.set(42); });
  sim.run();
  EXPECT_EQ(got, (std::vector<int>{42, 42}));
}

TEST(Future, SetIsOneShot) {
  Simulator sim;
  Future<int> f(sim);
  f.set(1);
  f.set(2);
  EXPECT_EQ(f.get(), 1);
}

TEST(Future, AwaitAfterReadyReturnsImmediately) {
  Simulator sim;
  Future<int> f(sim);
  f.set(7);
  int got = 0;
  [](Future<int> f, int& got) -> Coro { got = co_await f; }(f, got);
  EXPECT_EQ(got, 7);
}

TEST(Semaphore, LimitsConcurrency) {
  Simulator sim;
  Semaphore sem(sim, 2);
  int concurrent = 0, peak = 0, completed = 0;
  auto worker = [](Simulator& sim, Semaphore& sem, int& concurrent,
                   int& peak, int& completed) -> Coro {
    co_await sem.acquire();
    ++concurrent;
    peak = std::max(peak, concurrent);
    co_await delay(sim, us(10));
    --concurrent;
    ++completed;
    sem.release();
  };
  for (int i = 0; i < 6; ++i) worker(sim, sem, concurrent, peak, completed);
  sim.run();
  EXPECT_EQ(peak, 2);
  EXPECT_EQ(completed, 6);
  EXPECT_EQ(sim.now(), us(30));  // 6 jobs / 2 wide / 10 us each
}

TEST(Semaphore, TryAcquire) {
  Simulator sim;
  Semaphore sem(sim, 1);
  EXPECT_TRUE(sem.try_acquire());
  EXPECT_FALSE(sem.try_acquire());
  sem.release();
  EXPECT_TRUE(sem.try_acquire());
}

TEST(CreditPool, BlocksUntilEnoughCredits) {
  Simulator sim;
  CreditPool pool(sim, 100);
  std::vector<int> order;
  auto taker = [](Simulator&, CreditPool& p, std::vector<int>& order, int id,
                  std::int64_t n) -> Coro {
    co_await p.acquire(n);
    order.push_back(id);
  };
  taker(sim, pool, order, 1, 60);
  taker(sim, pool, order, 2, 60);  // must wait
  taker(sim, pool, order, 3, 50);  // FIFO: must wait behind #2
  EXPECT_EQ(pool.in_use(), 60);
  sim.after(us(1), [&] { pool.release(60); });
  sim.run();
  // #2 got its 60 (40 left); #3 needs 50, still blocked.
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  pool.release(60);
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(CreditPool, HeadOfLineBlockingIsFifo) {
  Simulator sim;
  CreditPool pool(sim, 10);
  std::vector<int> order;
  auto taker = [](CreditPool& p, std::vector<int>& order, int id,
                  std::int64_t n) -> Coro {
    co_await p.acquire(n);
    order.push_back(id);
  };
  taker(pool, order, 1, 10);
  taker(pool, order, 2, 10);  // blocks
  taker(pool, order, 3, 1);   // would fit after partial release, but FIFO
  pool.release(5);
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1}));  // 2 needs 10, only 5 free; 3 waits
  pool.release(5);
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  pool.release(10);
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(CreditPool, OverCapacityRequestThrows) {
  // A request that can never be satisfied used to park the caller forever
  // and (being head-of-line) deadlock every later acquirer. It must fail
  // loudly instead — at acquire() time, before anything suspends.
  Simulator sim;
  CreditPool pool(sim, 1024);
  EXPECT_THROW(pool.acquire(1025), std::invalid_argument);
  EXPECT_THROW(pool.acquire(-1), std::invalid_argument);
  // The pool is still usable after a rejected request.
  EXPECT_EQ(pool.available(), 1024);
  bool ran = false;
  auto ok = [](CreditPool& p, bool& ran) -> Coro {
    co_await p.acquire(1024);
    ran = true;
  };
  ok(pool, ran);
  sim.run();
  EXPECT_TRUE(ran);
}

TEST(CreditPool, ZeroCapacityIsCountingPool) {
  // capacity == 0 means "pure counting pool" (e.g. an arrived-bytes
  // counter that is only ever fed by release()): any non-negative request
  // is legal and waits for producers.
  Simulator sim;
  CreditPool pool(sim, 0);
  std::vector<int> order;
  auto consumer = [](CreditPool& p, std::vector<int>& order) -> Coro {
    co_await p.acquire(4096);
    order.push_back(1);
  };
  consumer(pool, order);
  EXPECT_THROW(pool.acquire(-1), std::invalid_argument);
  sim.after(us(1), [&] { pool.release(4096); });
  sim.run();
  ASSERT_EQ(order.size(), 1u);
}

TEST(Queue, FifoDelivery) {
  Simulator sim;
  Queue<int> q(sim);
  std::vector<int> got;
  [](Queue<int>& q, std::vector<int>& got) -> Coro {
    for (int i = 0; i < 3; ++i) got.push_back(co_await q.pop());
  }(q, got);
  q.push(1);
  q.push(2);
  q.push(3);
  sim.run();
  EXPECT_EQ(got, (std::vector<int>{1, 2, 3}));
}

TEST(Queue, PopBeforePushSuspends) {
  Simulator sim;
  Queue<int> q(sim);
  Time got_at = -1;
  int got = 0;
  [](Simulator& sim, Queue<int>& q, Time& got_at, int& got) -> Coro {
    got = co_await q.pop();
    got_at = sim.now();
  }(sim, q, got_at, got);
  sim.after(us(9), [&] { q.push(5); });
  sim.run();
  EXPECT_EQ(got, 5);
  EXPECT_EQ(got_at, us(9));
}

TEST(Queue, ConcurrentPoppersEachGetOneItem) {
  Simulator sim;
  Queue<int> q(sim);
  std::vector<int> got;
  auto popper = [](Queue<int>& q, std::vector<int>& got) -> Coro {
    got.push_back(co_await q.pop());
  };
  popper(q, got);
  popper(q, got);
  q.push(10);
  q.push(20);
  sim.run();
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0] + got[1], 30);
  EXPECT_NE(got[0], got[1]);
}

TEST(Queue, SameTickStealDoesNotLoseItems) {
  // A waiter is woken by a push while another popper arrives at the same
  // tick: both items must be delivered exactly once.
  Simulator sim;
  Queue<int> q(sim);
  std::vector<int> got;
  auto popper = [](Queue<int>& q, std::vector<int>& got) -> Coro {
    got.push_back(co_await q.pop());
  };
  popper(q, got);  // suspends
  sim.after(us(1), [&] {
    q.push(1);       // wakes the suspended popper (delivery at same tick)
    popper(q, got);  // new popper at the same tick
    q.push(2);
  });
  sim.run();
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0] + got[1], 3);
}

}  // namespace
}  // namespace apn::sim
