#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "pcie/fabric.hpp"
#include "pcie/memory.hpp"
#include "sim/simulator.hpp"
#include "trace/metrics.hpp"
#include "trace/trace.hpp"

namespace apn::trace {
namespace {

using units::us;

/// RAII: install a sink for the duration of a test, restore on exit.
struct ScopedSink {
  TraceSink sink;
  TraceSink* prev;
  explicit ScopedSink(std::size_t capacity = 1 << 18)
      : sink(capacity), prev(trace::sink()) {
    set_sink(&sink);
  }
  ~ScopedSink() { set_sink(prev); }
};

/// Minimal structural JSON check: balanced braces/brackets outside of
/// strings, properly terminated strings. Enough to catch escaping or
/// separator bugs without a JSON parser dependency.
bool json_well_formed(const std::string& s) {
  int depth = 0;
  bool in_string = false, escaped = false;
  for (char c : s) {
    if (in_string) {
      if (escaped)
        escaped = false;
      else if (c == '\\')
        escaped = true;
      else if (c == '"')
        in_string = false;
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': case '[': ++depth; break;
      case '}': case ']':
        if (--depth < 0) return false;
        break;
      default: break;
    }
  }
  return depth == 0 && !in_string;
}

TEST(TraceSink, RecordsSpansInstantsCounters) {
  TraceSink sink;
  std::uint32_t t = sink.track("proc", "lane");
  sink.span(t, "cat", "work", us(1), us(3), {{"bytes", std::uint64_t{64}}});
  sink.instant(t, "cat", "tick", us(2));
  sink.counter(t, "cat", "occupancy", us(2), 0.5);
  ASSERT_EQ(sink.size(), 3u);
  auto evs = sink.events();
  EXPECT_EQ(evs[0].phase, TraceEvent::Phase::kSpan);
  EXPECT_EQ(evs[0].ts, us(1));
  EXPECT_EQ(evs[0].dur, us(2));
  ASSERT_EQ(evs[0].args.size(), 1u);
  EXPECT_STREQ(evs[0].args[0].key, "bytes");
  EXPECT_EQ(evs[1].phase, TraceEvent::Phase::kInstant);
  EXPECT_EQ(evs[2].phase, TraceEvent::Phase::kCounter);
}

TEST(TraceSink, TrackDedupAndProcessGrouping) {
  TraceSink sink;
  std::uint32_t a = sink.track("node0", "gpu");
  std::uint32_t b = sink.track("node0", "card");
  std::uint32_t c = sink.track("node1", "gpu");
  EXPECT_EQ(sink.track("node0", "gpu"), a);  // same (process, name) => same id
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(sink.track_count(), 3u);
}

TEST(TraceSink, RingBufferDropsOldest) {
  TraceSink sink(4);
  std::uint32_t t = sink.track("p", "lane");
  for (int i = 0; i < 10; ++i) sink.instant(t, "c", "ev", us(i));
  EXPECT_EQ(sink.size(), 4u);
  EXPECT_EQ(sink.dropped(), 6u);
  auto evs = sink.events();  // oldest-first despite wraparound
  ASSERT_EQ(evs.size(), 4u);
  EXPECT_EQ(evs.front().ts, us(6));
  EXPECT_EQ(evs.back().ts, us(9));
}

TEST(TraceSink, ChromeJsonSortedBySimTime) {
  TraceSink sink;
  std::uint32_t t = sink.track("p", "lane");
  // Recorded out of order: spans are pushed at their *end* time in real
  // instrumentation, so the exporter must sort by ts.
  sink.span(t, "c", "late", us(10), us(11));
  sink.span(t, "c", "early", us(2), us(3));
  sink.instant(t, "c", "mid", us(5));
  std::string json = sink.chrome_json();
  auto pos = [&](const char* name) {
    return json.find("\"name\":\"" + std::string(name) + "\"");
  };
  ASSERT_NE(pos("early"), std::string::npos);
  ASSERT_NE(pos("mid"), std::string::npos);
  ASSERT_NE(pos("late"), std::string::npos);
  EXPECT_LT(pos("early"), pos("mid"));
  EXPECT_LT(pos("mid"), pos("late"));
}

TEST(TraceSink, ChromeJsonWellFormed) {
  TraceSink sink;
  std::uint32_t t = sink.track("node0.pcie", "gpu\"quoted\\lane");
  sink.span(t, "gpu", "p2p_stream", us(1), us(4),
            {{"dev_offset", std::uint64_t{0xdeadbeef}}, {"ratio", 0.75}});
  sink.instant(t, "gpu", "window_switch", us(2), {{"page", 3}});
  sink.counter(t, "gpu", "occupancy", us(3), 1.5);
  std::string json = sink.chrome_json();
  EXPECT_TRUE(json_well_formed(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);  // metadata
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);  // span
  // Integral args export without a decimal point.
  EXPECT_NE(json.find("\"dev_offset\":3735928559"), std::string::npos);
}

TEST(Track, InertWithoutSink) {
  ASSERT_EQ(trace::sink(), nullptr);
  Track t = Track::open("p", "lane");
  EXPECT_FALSE(static_cast<bool>(t));
  // All no-ops; nothing to crash into.
  t.span("c", "n", us(1), us(2));
  t.instant("c", "n", us(1));
  t.counter("c", "n", us(1), 1.0);
}

TEST(Track, RecordsWhenSinkInstalled) {
  ScopedSink scoped;
  Track t = Track::open("p", "lane");
  EXPECT_TRUE(static_cast<bool>(t));
  t.span("c", "n", us(1), us(2));
  EXPECT_EQ(scoped.sink.size(), 1u);
}

TEST(Track, OpenedBeforeSinkStaysInert) {
  // The documented contract: tracks bind to the sink at open() time.
  Track t = Track::open("p", "lane");
  ScopedSink scoped;
  t.span("c", "n", us(1), us(2));
  EXPECT_EQ(scoped.sink.size(), 0u);
}

// The BusAnalyzer and the trace sink must see the *same* transactions for
// the same transfer — the analyzer is a producer into the sink, not a
// parallel implementation that could drift.
TEST(BusAnalyzerTrace, AnalyzerEventsMatchSinkEvents) {
  ScopedSink scoped;

  sim::Simulator sim;
  pcie::Fabric fabric(sim, 4096, "testbus");
  int root = fabric.add_root();
  pcie::HostMemory host(sim);
  fabric.attach(host, root, pcie::gen2_x16());
  pcie::HostMemory dev(sim);
  fabric.attach(dev, root, pcie::gen2_x8());
  fabric.claim_range(dev, 0x2000000, 0x100000);

  pcie::BusAnalyzer analyzer;
  analyzer.bind_trace(Track::open("testbus", "analyzer"));
  fabric.attach_analyzer(dev.pcie_node(), analyzer);

  // 10000 B in 4 KB chunks => 3 MWr transactions.
  fabric.post_write(host, 0x2000000, pcie::Payload::timing(10000));
  sim.run();

  ASSERT_EQ(analyzer.events().size(), 3u);
  // The sink holds the analyzer's instants plus the fabric's own per-edge
  // spans; compare against the analyzer's lane only.
  std::vector<TraceEvent> mirrored;
  std::uint32_t lane = scoped.sink.track("testbus", "analyzer");
  for (const auto& ev : scoped.sink.events())
    if (ev.track == lane) mirrored.push_back(ev);
  ASSERT_EQ(mirrored.size(), analyzer.events().size());
  for (std::size_t i = 0; i < mirrored.size(); ++i) {
    const pcie::BusEvent& a = analyzer.events()[i];
    EXPECT_EQ(mirrored[i].ts, a.time);
    EXPECT_STREQ(mirrored[i].name, pcie::bus_kind_name(a.kind));
    ASSERT_EQ(mirrored[i].args.size(), 3u);
    EXPECT_EQ(static_cast<std::uint64_t>(mirrored[i].args[0].value), a.addr);
    EXPECT_EQ(static_cast<std::uint32_t>(mirrored[i].args[1].value), a.bytes);
  }
}

TEST(BusAnalyzerTrace, FabricEdgeSpansCoverTransferTime) {
  ScopedSink scoped;

  sim::Simulator sim;
  pcie::Fabric fabric(sim, 4096, "testbus");
  int root = fabric.add_root();
  pcie::HostMemory host(sim);
  fabric.attach(host, root, pcie::gen2_x16());
  pcie::HostMemory dev(sim);
  fabric.attach(dev, root, pcie::gen2_x8());
  fabric.claim_range(dev, 0x2000000, 0x100000);

  fabric.post_write(host, 0x2000000, pcie::Payload::timing(4096));
  sim.run();

  bool found = false;
  for (const auto& ev : scoped.sink.events()) {
    if (ev.phase != TraceEvent::Phase::kSpan) continue;
    EXPECT_STREQ(ev.name, "MWr");
    EXPECT_GT(ev.dur, 0);
    found = true;
  }
  EXPECT_TRUE(found);
}

TEST(Metrics, CountersGaugesHistograms) {
  MetricsRegistry m;
  m.counter("pkts").add(3);
  m.counter("pkts").inc();
  EXPECT_EQ(m.counter("pkts").value(), 4u);
  m.gauge("depth").set(2.5);
  EXPECT_DOUBLE_EQ(m.gauge("depth").value(), 2.5);
  auto& h = m.histogram("lat_us");
  h.observe(1.0);
  h.observe(3.0);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_DOUBLE_EQ(h.stats().mean(), 2.0);

  std::string text = m.text();
  EXPECT_NE(text.find("pkts"), std::string::npos);
  std::string json = m.json();
  EXPECT_TRUE(json_well_formed(json)) << json;
  EXPECT_NE(json.find("\"lat_us\""), std::string::npos);

  m.clear();
  EXPECT_EQ(m.counter("pkts").value(), 0u);
}

TEST(Metrics, ReferencesAreStableAcrossInsertions) {
  MetricsRegistry m;
  Counter& a = m.counter("a");
  for (int i = 0; i < 100; ++i)
    m.counter("c" + std::to_string(i)).inc();
  a.inc();
  EXPECT_EQ(m.counter("a").value(), 1u);
}

}  // namespace
}  // namespace apn::trace
