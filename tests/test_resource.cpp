#include <gtest/gtest.h>

#include "sim/coro.hpp"
#include "sim/resource.hpp"

namespace apn::sim {
namespace {

using units::us;

TEST(Resource, SerializesJobs) {
  Simulator sim;
  Resource res(sim);
  std::vector<Time> done_at;
  for (int i = 0; i < 3; ++i)
    res.post(us(10), [&] { done_at.push_back(sim.now()); });
  sim.run();
  ASSERT_EQ(done_at.size(), 3u);
  EXPECT_EQ(done_at[0], us(10));
  EXPECT_EQ(done_at[1], us(20));
  EXPECT_EQ(done_at[2], us(30));
}

TEST(Resource, AwaitableUse) {
  Simulator sim;
  Resource res(sim);
  Time a = -1, b = -1;
  [](Simulator& sim, Resource& r, Time& t) -> Coro {
    co_await r.use(us(5));
    t = sim.now();
  }(sim, res, a);
  [](Simulator& sim, Resource& r, Time& t) -> Coro {
    co_await r.use(us(5));
    t = sim.now();
  }(sim, res, b);
  sim.run();
  EXPECT_EQ(a, us(5));
  EXPECT_EQ(b, us(10));
}

TEST(Resource, IdleGapsDoNotAccumulate) {
  Simulator sim;
  Resource res(sim);
  Time done = -1;
  sim.after(us(100), [&] {
    res.post(us(5), [&] { done = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(done, us(105));
}

TEST(Resource, UtilizationAccounting) {
  Simulator sim;
  Resource res(sim);
  res.post(us(30));
  sim.after(us(100), [] {});  // extend sim time to 100 us
  sim.run();
  EXPECT_EQ(res.busy_time(), us(30));
  EXPECT_NEAR(res.utilization(), 0.3, 1e-9);
  EXPECT_EQ(res.jobs_completed(), 1u);
}

TEST(Resource, QueueLengthVisible) {
  Simulator sim;
  Resource res(sim);
  res.post(us(10));
  res.post(us(10));
  res.post(us(10));
  EXPECT_TRUE(res.busy());
  EXPECT_EQ(res.queue_length(), 2u);  // one in service, two queued
  sim.run();
  EXPECT_FALSE(res.busy());
  EXPECT_EQ(res.queue_length(), 0u);
}

TEST(Resource, ZeroDurationJobsComplete) {
  Simulator sim;
  Resource res(sim);
  int n = 0;
  for (int i = 0; i < 5; ++i) res.post(0, [&] { ++n; });
  sim.run();
  EXPECT_EQ(n, 5);
}

}  // namespace
}  // namespace apn::sim
