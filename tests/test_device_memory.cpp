#include <gtest/gtest.h>

#include "gpu/device_memory.hpp"

namespace apn::gpu {
namespace {

TEST(DeviceMemory, ReadbackMatchesWrite) {
  DeviceMemory mem(1ull << 30);
  std::vector<std::uint8_t> data(100000);
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = static_cast<std::uint8_t>(i * 7);
  mem.write(12345, data);
  std::vector<std::uint8_t> out(data.size());
  mem.read(12345, out);
  EXPECT_EQ(out, data);
}

TEST(DeviceMemory, UntouchedReadsZero) {
  DeviceMemory mem(1ull << 20);
  std::vector<std::uint8_t> out(256, 0xFF);
  mem.read(0, out);
  for (auto v : out) EXPECT_EQ(v, 0);
}

TEST(DeviceMemory, CrossPageWrites) {
  DeviceMemory mem(1ull << 21);
  // Straddle the 64 KB page boundary.
  std::vector<std::uint8_t> data(1000, 0x5A);
  std::uint64_t addr = DeviceMemory::kPageBytes - 500;
  mem.write(addr, data);
  std::vector<std::uint8_t> out(1000);
  mem.read(addr, out);
  EXPECT_EQ(out, data);
}

TEST(DeviceMemory, SparseResidency) {
  DeviceMemory mem(6ull << 30);  // a "6 GB" board costs nothing up front
  EXPECT_EQ(mem.resident_bytes(), 0u);
  std::vector<std::uint8_t> b(1, 1);
  mem.write(5ull << 30, b);
  EXPECT_EQ(mem.resident_bytes(), DeviceMemory::kPageBytes);
}

TEST(DeviceMemory, OutOfRangeThrows) {
  DeviceMemory mem(1 << 20);
  std::vector<std::uint8_t> b(100);
  EXPECT_THROW(mem.write((1 << 20) - 50, b), std::out_of_range);
  EXPECT_THROW(mem.read(1 << 20, b), std::out_of_range);
}

TEST(DeviceAllocator, AllocateAligned) {
  DeviceAllocator alloc(1 << 20);
  std::uint64_t a = alloc.allocate(100);
  std::uint64_t b = alloc.allocate(100);
  EXPECT_EQ(a % DeviceAllocator::kAlign, 0u);
  EXPECT_EQ(b % DeviceAllocator::kAlign, 0u);
  EXPECT_GE(b, a + 100);
}

TEST(DeviceAllocator, ReuseAfterFree) {
  DeviceAllocator alloc(1 << 20);
  std::uint64_t a = alloc.allocate(4096);
  alloc.allocate(4096);
  alloc.deallocate(a);
  std::uint64_t c = alloc.allocate(4096);
  EXPECT_EQ(c, a);  // first-fit reuses the hole
}

TEST(DeviceAllocator, CoalescesNeighbors) {
  DeviceAllocator alloc(1 << 20);
  std::uint64_t a = alloc.allocate(512);
  std::uint64_t b = alloc.allocate(512);
  std::uint64_t c = alloc.allocate(512);
  alloc.allocate(512);  // keep the tail busy
  alloc.deallocate(a);
  alloc.deallocate(c);
  alloc.deallocate(b);  // merges a+b+c into one block
  std::uint64_t big = alloc.allocate(1536);
  EXPECT_EQ(big, a);
}

TEST(DeviceAllocator, ExhaustionThrows) {
  DeviceAllocator alloc(1024);
  alloc.allocate(512);
  alloc.allocate(512);
  EXPECT_THROW(alloc.allocate(1), std::bad_alloc);
}

TEST(DeviceAllocator, DoubleFreeesAreRejected) {
  DeviceAllocator alloc(1 << 16);
  std::uint64_t a = alloc.allocate(256);
  alloc.deallocate(a);
  EXPECT_THROW(alloc.deallocate(a), std::invalid_argument);
}

TEST(DeviceAllocator, UsageAccounting) {
  DeviceAllocator alloc(1 << 20);
  EXPECT_EQ(alloc.used_bytes(), 0u);
  std::uint64_t a = alloc.allocate(1000);  // rounds to 1024
  EXPECT_EQ(alloc.used_bytes(), 1024u);
  EXPECT_EQ(alloc.live_blocks(), 1u);
  alloc.deallocate(a);
  EXPECT_EQ(alloc.used_bytes(), 0u);
}

}  // namespace
}  // namespace apn::gpu
