#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "common/stats.hpp"

namespace apn {
namespace {

TEST(OnlineStats, Empty) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_TRUE(std::isnan(s.min()));
}

TEST(OnlineStats, KnownValues) {
  OnlineStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
  // Sample variance of this classic data set is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
}

TEST(OnlineStats, MatchesDirectComputation) {
  Rng rng(5);
  OnlineStats s;
  std::vector<double> vals;
  for (int i = 0; i < 1000; ++i) {
    double v = rng.uniform(-10, 10);
    vals.push_back(v);
    s.add(v);
  }
  double mean = 0;
  for (double v : vals) mean += v;
  mean /= static_cast<double>(vals.size());
  double var = 0;
  for (double v : vals) var += (v - mean) * (v - mean);
  var /= static_cast<double>(vals.size() - 1);
  EXPECT_NEAR(s.mean(), mean, 1e-9);
  EXPECT_NEAR(s.variance(), var, 1e-9);
}

TEST(OnlineStats, Reset) {
  OnlineStats s;
  s.add(5);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
}

TEST(Samples, Percentiles) {
  Samples s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  EXPECT_NEAR(s.median(), 50.5, 1e-9);
  EXPECT_NEAR(s.percentile(0), 1.0, 1e-9);
  EXPECT_NEAR(s.percentile(100), 100.0, 1e-9);
  EXPECT_NEAR(s.percentile(99), 99.01, 1e-9);
}

TEST(Samples, SingleValue) {
  Samples s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.median(), 42.0);
  EXPECT_DOUBLE_EQ(s.percentile(10), 42.0);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
}

TEST(Samples, EmptySafe) {
  Samples s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.percentile(50), 0.0);
  EXPECT_EQ(s.mean(), 0.0);
  // Extrema of an empty set are NaN (matching OnlineStats), not a value
  // that could be mistaken for a measurement.
  EXPECT_TRUE(std::isnan(s.min()));
  EXPECT_TRUE(std::isnan(s.max()));
}

TEST(Samples, SortCacheInvalidatedByAdd) {
  Samples s;
  s.add(10.0);
  s.add(30.0);
  EXPECT_DOUBLE_EQ(s.min(), 10.0);   // builds the sorted cache
  EXPECT_DOUBLE_EQ(s.median(), 20.0);
  s.add(1.0);                        // must invalidate it
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.median(), 10.0);
  s.reset();
  s.add(7.0);
  EXPECT_DOUBLE_EQ(s.max(), 7.0);
}

}  // namespace
}  // namespace apn
