#include <gtest/gtest.h>

#include "common/log.hpp"

namespace apn {
namespace {

TEST(Logger, LevelsFilter) {
  Logger log("test", LogLevel::kWarn);
  EXPECT_EQ(log.level(), LogLevel::kWarn);
  // Below/at/above threshold: must not crash; output goes to stderr.
  log.error(0, "error %d", 1);
  log.warn(units::us(5), "warn %s", "x");
  log.info(0, "suppressed");
  log.trace(0, "suppressed");
  log.set_level(LogLevel::kTrace);
  log.trace(units::ms(1), "now visible");
  SUCCEED();
}

TEST(Logger, GlobalDefaultAppliesToNewLoggers) {
  LogLevel saved = Logger::global_level();
  Logger::global_level() = LogLevel::kError;
  Logger log("test2");
  EXPECT_EQ(log.level(), LogLevel::kError);
  Logger::global_level() = saved;
}

}  // namespace
}  // namespace apn
