// Tests for apn-lint (tools/apn-lint): every rule, the suppression
// syntax, and the ratcheting baseline machinery. Sources are fed as
// strings via lint_source, with the path choosing the directory-scoped
// behavior.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include "lint.hpp"

namespace {

using apn::lint::Baseline;
using apn::lint::Finding;
using apn::lint::lint_source;

std::vector<std::string> rules_of(const std::vector<Finding>& fs) {
  std::vector<std::string> out;
  for (const Finding& f : fs) out.push_back(f.rule);
  return out;
}

// ---- wall-clock ------------------------------------------------------------

TEST(LintWallClock, FlagsChronoClocksAndCApis) {
  auto f = lint_source("src/core/x.cpp",
                       "auto t = std::chrono::steady_clock::now();\n"
                       "struct timeval tv; gettimeofday(&tv, nullptr);\n");
  ASSERT_EQ(f.size(), 2u);
  EXPECT_EQ(f[0].rule, "wall-clock");
  EXPECT_EQ(f[0].line, 1);
  EXPECT_EQ(f[1].line, 2);
}

TEST(LintWallClock, FlagsBareAndQualifiedTimeCalls) {
  EXPECT_EQ(lint_source("a.cpp", "time_t t = time(nullptr);\n").size(), 1u);
  EXPECT_EQ(lint_source("a.cpp", "auto t = std::time(nullptr);\n").size(),
            1u);
  EXPECT_EQ(lint_source("a.cpp", "auto t = ::time(nullptr);\n").size(), 1u);
}

TEST(LintWallClock, IgnoresMembersAndOtherNamespaces) {
  // Member calls and non-std qualifiers are someone else's time().
  EXPECT_TRUE(lint_source("a.cpp", "auto t = sim.time();\n").empty());
  EXPECT_TRUE(lint_source("a.cpp", "auto t = obj->time();\n").empty());
  EXPECT_TRUE(lint_source("a.cpp", "auto t = mysim::time(x);\n").empty());
  // The word in other contexts (declarations, members) is fine too.
  EXPECT_TRUE(lint_source("a.cpp", "Time rx_task_time = 0;\n").empty());
}

TEST(LintWallClock, CommentsAndStringsAreNotCode) {
  EXPECT_TRUE(lint_source("a.cpp",
                          "// calls gettimeofday() on real hardware\n"
                          "const char* s = \"gettimeofday\";\n")
                  .empty());
}

// ---- raw-rand --------------------------------------------------------------

TEST(LintRawRand, FlagsCAndStdEngines) {
  auto f = lint_source("src/apps/x.cpp",
                       "int a = rand();\n"
                       "std::mt19937 gen(std::random_device{}());\n");
  auto rules = rules_of(f);
  ASSERT_EQ(f.size(), 3u);  // rand, mt19937, random_device
  for (const auto& r : rules) EXPECT_EQ(r, "raw-rand");
}

TEST(LintRawRand, RngModuleIsExempt) {
  EXPECT_TRUE(
      lint_source("src/common/rng.hpp", "int a = rand();\n").empty());
  EXPECT_TRUE(
      lint_source("src/common/rng_test_helper.cpp", "std::mt19937 g;\n")
          .empty());
}

// ---- std-function ----------------------------------------------------------

TEST(LintStdFunction, FlaggedOnlyInHotPaths) {
  const std::string src = "std::function<void()> cb;\n";
  EXPECT_EQ(lint_source("src/sim/x.hpp", src).size(), 1u);
  EXPECT_EQ(lint_source("src/core/x.cpp", src).size(), 1u);
  EXPECT_EQ(lint_source("src/pcie/x.hpp", src).size(), 1u);
  // Cold layers may still use it.
  EXPECT_TRUE(lint_source("src/apps/x.cpp", src).empty());
  EXPECT_TRUE(lint_source("src/ib/hca.cpp", src).empty());
}

TEST(LintStdFunction, QualifiedSpellingOnly) {
  // A type merely named "function" is not std::function.
  EXPECT_TRUE(lint_source("src/sim/x.hpp", "my::function<void()> cb;\n")
                  .empty());
}

// ---- ptr-key-iter ----------------------------------------------------------

TEST(LintPtrKeyIter, FlagsRangeForOverPointerKeyedMap) {
  auto f = lint_source("src/x.cpp",
                       "std::map<Node*, int> weights;\n"
                       "for (auto& [n, w] : weights) total += w;\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "ptr-key-iter");
  EXPECT_EQ(f[0].line, 2);
}

TEST(LintPtrKeyIter, FlagsExplicitBeginIteration) {
  auto f = lint_source("src/x.cpp",
                       "std::unordered_set<const void*> seen;\n"
                       "auto it = seen.begin();\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "ptr-key-iter");
}

TEST(LintPtrKeyIter, LookupOnlyUseIsClean) {
  EXPECT_TRUE(lint_source("src/x.cpp",
                          "std::unordered_map<const void*, CellState> cells;\n"
                          "auto it = cells.find(p);\n"
                          "cells.erase(p);\n")
                  .empty());
}

TEST(LintPtrKeyIter, ValueOnlyPointersAreClean) {
  // Pointer *values* are fine; only pointer *keys* order the iteration.
  EXPECT_TRUE(lint_source("src/x.cpp",
                          "std::map<std::uint64_t, Node*> nodes;\n"
                          "for (auto& [k, n] : nodes) n->tick();\n")
                  .empty());
}

// ---- detached-coro ---------------------------------------------------------

TEST(LintDetachedCoro, FlagsCapturingCoroutineLambda) {
  auto f = lint_source("src/x.cpp",
                       "[this, n]() -> sim::Coro { co_await g(n); }();\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "detached-coro");
}

TEST(LintDetachedCoro, FlagsDefaultCaptures) {
  EXPECT_EQ(
      lint_source("src/x.cpp", "[&](int n) -> Coro { co_return; }(4);\n")
          .size(),
      1u);
  EXPECT_EQ(
      lint_source("src/x.cpp", "[=]() -> Coro { co_return; }();\n").size(),
      1u);
}

TEST(LintDetachedCoro, EmptyCaptureWithParametersIsTheIdiom) {
  // The repo's safe pattern: state enters the frame as parameters.
  EXPECT_TRUE(lint_source("src/x.cpp",
                          "[](Card* self, int n) -> sim::Coro {\n"
                          "  co_await self->g(n);\n"
                          "}(this, 4);\n")
                  .empty());
}

TEST(LintDetachedCoro, NonCoroCapturingLambdaIsClean) {
  EXPECT_TRUE(
      lint_source("src/x.cpp", "auto f = [this]() -> int { return 1; };\n")
          .empty());
}

// ---- dropped-awaitable -----------------------------------------------------

TEST(LintDroppedAwaitable, BareAwaiterCallIsFlagged) {
  auto f = lint_source("src/core/x.cpp",
                       "sim::Coro run(Gate& g) {\n"
                       "  g.wait();\n"
                       "  co_return;\n"
                       "}\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "dropped-awaitable");
  EXPECT_EQ(f[0].line, 2);
}

TEST(LintDroppedAwaitable, ConsumedOrBoundResultsAreClean) {
  // Pointer parameters: references read after the first co_await would
  // (correctly) fire coro-ref-param, which is not under test here.
  EXPECT_TRUE(lint_source("src/core/x.cpp",
                          "sim::Coro run(Gate* g, Semaphore* s) {\n"
                          "  co_await g->wait();\n"
                          "  auto tok = s->acquire();\n"
                          "  co_await tok;\n"
                          "}\n")
                  .empty());
}

TEST(LintDroppedAwaitable, CoroCallsAreFireAndForget) {
  // sim::Coro starts eagerly and owns its frame: a bare call is the
  // repo's spawn idiom, not a dropped wait.
  EXPECT_TRUE(lint_source("src/core/x.cpp",
                          "sim::Coro pump() { co_return; }\n"
                          "void kick() { pump(); }\n")
                  .empty());
}

TEST(LintDroppedAwaitable, HarvestsDeclaredAwaiterReturnTypes) {
  auto f = lint_source("src/core/x.cpp",
                       "TickAwaiter next_tick() { return TickAwaiter{}; }\n"
                       "sim::Coro run() {\n"
                       "  next_tick();\n"
                       "  co_return;\n"
                       "}\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "dropped-awaitable");
  EXPECT_EQ(f[0].line, 3);
}

// ---- coroutine suspension safety -------------------------------------------

TEST(LintCoroRefParam, RefReadAfterSuspensionFlagged) {
  auto f = lint_source("src/cluster/x.cpp",
                       "sim::Coro run(Gate& g, Queue<int>& q) {\n"
                       "  co_await g.wait();\n"
                       "  q.push(1);\n"
                       "  co_return;\n"
                       "}\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "coro-ref-param");
  EXPECT_EQ(f[0].line, 3);
  EXPECT_NE(f[0].detail.find("'q'"), std::string::npos);
}

TEST(LintCoroRefParam, UseWithinFirstSuspensionStatementIsClean) {
  // The caller's arguments are still alive at the moment of first suspend:
  // a reference consumed entirely within that statement is fine.
  EXPECT_TRUE(lint_source("src/cluster/x.cpp",
                          "sim::Coro run(Gate& g) {\n"
                          "  co_await g.wait();\n"
                          "  co_return;\n"
                          "}\n")
                  .empty());
}

TEST(LintCoroRefParam, TestsTreeIsExempt) {
  // Test code routinely keeps coroutine arguments alive on the test stack
  // for the whole run; the suspension rules skip tests/ by design.
  EXPECT_TRUE(lint_source("tests/x.cpp",
                          "sim::Coro run(Gate& g, Queue<int>& q) {\n"
                          "  co_await g.wait();\n"
                          "  q.push(1);\n"
                          "  co_return;\n"
                          "}\n")
                  .empty());
}

TEST(LintCoroLocalEscape, AddressIntoSinkFlagged) {
  auto f = lint_source("src/cluster/x.cpp",
                       "sim::Coro run(sim::Simulator* sim, Gate* g) {\n"
                       "  int count = 0;\n"
                       "  sim->schedule_resume(h_, &count);\n"
                       "  co_await g->wait();\n"
                       "}\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "coro-local-escape");
  EXPECT_EQ(f[0].line, 3);
  EXPECT_NE(f[0].detail.find("'count'"), std::string::npos);
}

TEST(LintCoroLocalEscape, BinaryAndIsNotAddressOf) {
  EXPECT_TRUE(lint_source("src/cluster/x.cpp",
                          "sim::Coro run(sim::Simulator* sim, Gate* g) {\n"
                          "  int b = 2;\n"
                          "  sim->after(delay_, cb_, flag_ && b);\n"
                          "  co_await g->wait();\n"
                          "}\n")
                  .empty());
}

TEST(LintCoroStaleTime, CachedNowReusedAfterResumeFlagged) {
  auto f = lint_source("src/cluster/x.cpp",
                       "sim::Coro run(sim::Simulator* sim, Gate* g) {\n"
                       "  Time start = sim->now();\n"
                       "  co_await g->wait();\n"
                       "  stamp(start);\n"
                       "  co_return;\n"
                       "}\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "coro-stale-time");
  EXPECT_EQ(f[0].line, 4);
  EXPECT_NE(f[0].detail.find("'start'"), std::string::npos);
}

TEST(LintCoroStaleTime, ElapsedTimeMathIsExempt) {
  // `sim->now() - start` visibly re-reads the clock: the old timestamp is
  // the point, not a stale notion of "current time".
  EXPECT_TRUE(lint_source("src/cluster/x.cpp",
                          "sim::Coro run(sim::Simulator* sim, Gate* g) {\n"
                          "  Time start = sim->now();\n"
                          "  co_await g->wait();\n"
                          "  Time dt = sim->now() - start;\n"
                          "  co_return;\n"
                          "}\n")
                  .empty());
}

// ---- unit-mix --------------------------------------------------------------

TEST(LintUnitMix, TimePlusRawLiteralFlagged) {
  auto f = lint_source("src/core/x.cpp",
                       "Time deadline(Time start) { return start + 512; }\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "unit-mix");
}

TEST(LintUnitMix, TimePlusByteVariableFlagged) {
  auto f = lint_source("src/core/x.cpp",
                       "Time f(Time start) {\n"
                       "  long long hdr_bytes = 64;\n"
                       "  return start + hdr_bytes;\n"
                       "}\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "unit-mix");
  EXPECT_EQ(f[0].line, 3);
}

// src/sim path: the units helpers with literal args here are deliberate
// (testing unit-mix, not calibration-literal, which is core/pcie/gpu-scoped).
TEST(LintUnitMix, ScaledLiteralsAndHelpersAreClean) {
  EXPECT_TRUE(lint_source("src/sim/x.cpp",
                          "Time f(Time start) {\n"
                          "  Time t = start + units::us(8);\n"
                          "  t += 6 * units::ns(250);\n"
                          "  return t + 0;\n"
                          "}\n")
                  .empty());
}

TEST(LintUnitMix, TimePlusTimeIsClean) {
  EXPECT_TRUE(lint_source("src/core/x.cpp",
                          "Time f(Time a, Time b) { return a + b - a; }\n")
                  .empty());
}

// ---- check-coverage --------------------------------------------------------

TEST(LintCheckCoverage, UninstrumentedStateMemberFlagged) {
  auto f = lint_source("src/core/x.hpp",
                       "class Dev {\n"
                       "  APN_OWNER(torus_node)\n"
                       "  check::StateCell<int> credits_;\n"
                       "  std::uint64_t tail_ = 0;\n"
                       "};\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "check-coverage");
  EXPECT_EQ(f[0].line, 4);
}

TEST(LintCheckCoverage, InstrumentedMemberIsCovered) {
  EXPECT_TRUE(lint_source("src/core/x.hpp",
                          "class Dev {\n"
                          "  APN_OWNER(torus_node)\n"
                          "  void bump() { APN_CHECK_ACCESS(tail_, w); "
                          "tail_ += 1; }\n"
                          "  check::StateCell<int> credits_;\n"
                          "  std::uint64_t tail_ = 0;\n"
                          "};\n")
                  .empty());
}

TEST(LintCheckCoverage, OnlyHeadersUnderSrcAreScanned) {
  const std::string src =
      "class Dev {\n"
      "  check::StateCell<int> c_;\n"
      "  int tail_ = 0;\n"
      "};\n";
  EXPECT_TRUE(lint_source("src/core/x.cpp", src).empty());  // not a header
  EXPECT_TRUE(lint_source("tests/x.hpp", src).empty());     // not model code
}

TEST(LintCheckCoverage, UninstrumentedClassesAreOutOfScope) {
  // A class with no race-detector participation owes no coverage.
  EXPECT_TRUE(lint_source("src/core/x.hpp",
                          "class Plain {\n"
                          "  int count_ = 0;\n"
                          "};\n")
                  .empty());
}

TEST(LintCheckCoverage, AllowCommentSuppresses) {
  EXPECT_TRUE(lint_source("src/core/x.hpp",
                          "class Dev {\n"
                          "  APN_OWNER(torus_node)\n"
                          "  check::StateCell<int> c_;\n"
                          "  // set once.  apn-lint: allow(check-coverage)\n"
                          "  int tail_ = 0;\n"
                          "};\n")
                  .empty());
}

// ---- partition-ownership ---------------------------------------------------

TEST(LintOwnership, UnannotatedRaceCheckedClassFlagged) {
  auto f = lint_source("src/core/x.hpp",
                       "class Dev {\n"
                       "  void bump() { APN_CHECK_ACCESS(tail_, w); }\n"
                       "  std::uint64_t tail_ = 0;\n"
                       "};\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "partition-ownership");
  EXPECT_EQ(f[0].line, 3);
  EXPECT_NE(f[0].detail.find("declares no owner partition"),
            std::string::npos);
}

TEST(LintOwnership, AnnotationDoesNotHideTheMemberDeclaration) {
  // The macro span is blanked before member extraction: the declaration
  // following a no-semicolon APN_OWNER line must still be seen (else
  // check-coverage would silently lose it).
  auto f = lint_source("src/core/x.hpp",
                       "class Dev {\n"
                       "  APN_OWNER(torus_node)\n"
                       "  std::uint64_t tail_ = 0;\n"
                       "  check::StateCell<int> c_;\n"
                       "};\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "check-coverage");
  EXPECT_EQ(f[0].line, 3);
}

TEST(LintOwnership, CrossDomainReachFlagged) {
  auto f = lint_source(
      "src/core/x.hpp",
      "class Gpu {\n"
      "  APN_OWNER(pcie_island)\n"
      " public:\n"
      "  std::uint64_t window_ = 0;\n"
      "};\n"
      "class Card {\n"
      "  APN_OWNER(torus_node)\n"
      "  void poke(Gpu* g) { g->window_ = 1; }\n"
      "};\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "partition-ownership");
  EXPECT_EQ(f[0].line, 8);
  EXPECT_NE(f[0].detail.find("torus_node"), std::string::npos);
  EXPECT_NE(f[0].detail.find("pcie_island"), std::string::npos);
}

TEST(LintOwnership, MemberVariableReachResolvedCrossFile) {
  // `gpu_`'s type comes from the class member catalogue, and out-of-line
  // `Card::method` definitions resolve their enclosing class by qualifier.
  auto f = lint_source(
      "src/core/x.hpp",
      "class Gpu {\n"
      "  APN_OWNER(pcie_island)\n"
      " public:\n"
      "  std::uint64_t window_ = 0;\n"
      "};\n"
      "class Card {\n"
      "  APN_OWNER(torus_node)\n"
      "  void poke();\n"
      "  Gpu* gpu_ = nullptr;\n"
      "};\n"
      "void Card::poke() { gpu_->window_ = 1; }\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "partition-ownership");
  EXPECT_EQ(f[0].line, 11);
}

TEST(LintOwnership, ChannelStatementIsTheSanctionedCrossing) {
  EXPECT_TRUE(lint_source("src/core/x.hpp",
                          "class Gpu {\n"
                          "  APN_OWNER(pcie_island)\n"
                          " public:\n"
                          "  std::uint64_t window_ = 0;\n"
                          "};\n"
                          "class Card {\n"
                          "  APN_OWNER(torus_node)\n"
                          "  void poke(Gpu* g) { ch_.send(g->window_); }\n"
                          "  Channel ch_;\n"
                          "};\n")
                  .empty());
}

TEST(LintOwnership, MethodCallsAndSameDomainAreClean) {
  EXPECT_TRUE(lint_source("src/core/x.hpp",
                          "class Gpu {\n"
                          "  APN_OWNER(pcie_island)\n"
                          " public:\n"
                          "  std::uint64_t window() const;\n"
                          "};\n"
                          "class Card {\n"
                          "  APN_OWNER(torus_node)\n"
                          "  void a(Gpu* g) { auto w = g->window(); }\n"
                          "  void b(Card* c) { c->seq_ += 1; }\n"
                          "  std::uint64_t seq_ = 0;\n"
                          "};\n")
                  .empty());
}

TEST(LintOwnership, SharedMemberEscapesWithReason) {
  EXPECT_TRUE(lint_source("src/core/x.hpp",
                          "class Gpu {\n"
                          "  APN_OWNER(pcie_island)\n"
                          " public:\n"
                          "  APN_SHARED(\"mirrored on handoff\")\n"
                          "  std::uint64_t window_ = 0;\n"
                          "};\n"
                          "class Card {\n"
                          "  APN_OWNER(torus_node)\n"
                          "  void poke(Gpu* g) { g->window_ = 1; }\n"
                          "};\n")
                  .empty());
}

TEST(LintOwnership, EmptySharedReasonFlagged) {
  auto f = lint_source("src/core/x.hpp",
                       "class Gpu {\n"
                       "  APN_OWNER(pcie_island)\n"
                       "  APN_SHARED(\"\")\n"
                       "  std::uint64_t window_ = 0;\n"
                       "};\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "partition-ownership");
  EXPECT_EQ(f[0].line, 3);
  EXPECT_NE(f[0].detail.find("window_"), std::string::npos);
  EXPECT_NE(f[0].detail.find("empty reason"), std::string::npos);
}

TEST(LintOwnership, GlobalReadonlyTargetIsReadable) {
  EXPECT_TRUE(lint_source("src/core/x.hpp",
                          "class Topo {\n"
                          "  APN_OWNER(global_readonly)\n"
                          " public:\n"
                          "  int fanout_ = 0;\n"
                          "};\n"
                          "class Card {\n"
                          "  APN_OWNER(torus_node)\n"
                          "  int f(Topo* t) { return t->fanout_; }\n"
                          "};\n")
                  .empty());
}

// ---- hot-path-alloc --------------------------------------------------------

TEST(LintHotPathAlloc, AllocationInHotFunctionFlagged) {
  auto f = lint_source("src/sim/x.hpp",
                       "APN_HOT void push() {\n"
                       "  Node* m = new Node();\n"
                       "  void* p = malloc(16);\n"
                       "}\n");
  ASSERT_EQ(f.size(), 2u);
  EXPECT_EQ(f[0].rule, "hot-path-alloc");
  EXPECT_EQ(f[0].line, 2);
  EXPECT_EQ(f[1].rule, "hot-path-alloc");
  EXPECT_EQ(f[1].line, 3);
}

TEST(LintHotPathAlloc, PlacementNewAndColdFunctionsAreClean) {
  EXPECT_TRUE(
      lint_source("src/sim/x.hpp",
                  "APN_HOT void push(void* slab) { new (slab) Node(); }\n"
                  "Node* grow() { return new Node(); }\n")
          .empty());
}

// ---- suppressions ----------------------------------------------------------

TEST(LintSuppress, SameLineAndLineAbove) {
  EXPECT_TRUE(lint_source("src/sim/x.hpp",
                          "std::function<void()> cb;  "
                          "// apn-lint: allow(std-function)\n")
                  .empty());
  EXPECT_TRUE(lint_source("src/sim/x.hpp",
                          "// apn-lint: allow(std-function)\n"
                          "std::function<void()> cb;\n")
                  .empty());
}

TEST(LintSuppress, MultipleRulesInOneComment) {
  EXPECT_TRUE(lint_source("src/sim/x.hpp",
                          "// apn-lint: allow(std-function, wall-clock)\n"
                          "std::function<Time()> cb = [] { return "
                          "std::time(nullptr); };\n")
                  .empty());
}

TEST(LintSuppress, WrongRuleDoesNotSuppress) {
  EXPECT_EQ(lint_source("src/sim/x.hpp",
                        "// apn-lint: allow(wall-clock)\n"
                        "std::function<void()> cb;\n")
                .size(),
            1u);
}

TEST(LintSuppress, DoesNotLeakPastTheNextLine) {
  EXPECT_EQ(lint_source("src/sim/x.hpp",
                        "// apn-lint: allow(std-function)\n"
                        "int unrelated;\n"
                        "std::function<void()> cb;\n")
                .size(),
            1u);
}

TEST(LintSuppress, RulesSeparatedBySpacesOnly) {
  // The contract allows commas AND/OR spaces between rule names.
  EXPECT_TRUE(lint_source("src/sim/x.hpp",
                          "// apn-lint: allow(std-function wall-clock)\n"
                          "std::function<Time()> cb = [] { return "
                          "std::time(nullptr); };\n")
                  .empty());
}

TEST(LintSuppress, MixedCommaAndSpaceSeparators) {
  EXPECT_TRUE(lint_source("src/sim/x.hpp",
                          "// apn-lint: allow(std-function,  wall-clock "
                          "raw-rand)\n"
                          "std::function<int()> cb = [] { return rand(); };\n")
                  .empty());
}

TEST(LintSuppress, AboveMultiLineStatement) {
  // The finding sits on line 4, but its statement starts on line 2; an
  // allow above the statement's first line covers the whole statement.
  EXPECT_TRUE(lint_source("src/core/x.cpp",
                          "// apn-lint: allow(wall-clock)\n"
                          "auto t =\n"
                          "    wrap(\n"
                          "        std::time(nullptr));\n")
                  .empty());
}

TEST(LintSuppress, OnFirstLineOfMultiLineStatement) {
  EXPECT_TRUE(lint_source("src/core/x.cpp",
                          "auto t =  // apn-lint: allow(wall-clock)\n"
                          "    wrap(\n"
                          "        std::time(nullptr));\n")
                  .empty());
}

// ---- fixture corpus --------------------------------------------------------

#ifndef APN_LINT_FIXTURE_DIR
#define APN_LINT_FIXTURE_DIR "tests/lint_fixtures"
#endif

struct FixtureCase {
  const char* rule;      // expected rule slug
  const char* stem;      // fixture file stem: <stem>_{pos,neg}.fixture
  const char* as_path;   // synthetic path for directory-scoped rules
};

class LintFixtures : public ::testing::TestWithParam<FixtureCase> {
 protected:
  static std::vector<Finding> lint_fixture(const std::string& file,
                                           const std::string& as_path) {
    const std::string full =
        std::string(APN_LINT_FIXTURE_DIR) + "/" + file;
    std::string src;
    EXPECT_TRUE(apn::lint::read_file(full, src))
        << "cannot read fixture " << full;
    return lint_source(as_path, src);
  }
};

TEST_P(LintFixtures, PositiveFires) {
  const FixtureCase& c = GetParam();
  auto f = lint_fixture(std::string(c.stem) + "_pos.fixture", c.as_path);
  ASSERT_FALSE(f.empty()) << c.stem << "_pos.fixture produced no findings";
  for (const Finding& hit : f)
    EXPECT_EQ(hit.rule, c.rule) << "unexpected cross-rule finding at line "
                                << hit.line << ": " << hit.detail;
}

TEST_P(LintFixtures, NegativeIsClean) {
  const FixtureCase& c = GetParam();
  auto f = lint_fixture(std::string(c.stem) + "_neg.fixture", c.as_path);
  for (const Finding& hit : f)
    ADD_FAILURE() << c.stem << "_neg.fixture line " << hit.line << " ["
                  << hit.rule << "] " << hit.detail;
}

INSTANTIATE_TEST_SUITE_P(
    AllRules, LintFixtures,
    ::testing::Values(
        FixtureCase{"wall-clock", "wall_clock", "src/core/fixture.cpp"},
        FixtureCase{"raw-rand", "raw_rand", "src/core/fixture.cpp"},
        FixtureCase{"std-function", "std_function", "src/sim/fixture.hpp"},
        FixtureCase{"ptr-key-iter", "ptr_key_iter", "src/core/fixture.cpp"},
        FixtureCase{"detached-coro", "detached_coro", "src/core/fixture.cpp"},
        // src/sim paths below keep calibration-literal (core/pcie/gpu-
        // scoped) from cross-firing on these fixtures' units::us(1) calls.
        FixtureCase{"dropped-awaitable", "dropped_awaitable",
                    "src/sim/fixture.cpp"},
        FixtureCase{"unit-mix", "unit_mix", "src/sim/fixture.cpp"},
        FixtureCase{"check-coverage", "check_coverage",
                    "src/core/fixture.hpp"},
        FixtureCase{"hot-path-alloc", "hot_path_alloc",
                    "src/sim/fixture.cpp"},
        FixtureCase{"calibration-literal", "calibration_literal",
                    "src/core/fixture.cpp"},
        FixtureCase{"partition-ownership", "partition_ownership",
                    "src/core/fixture.hpp"},
        // src/cluster paths: in scope for the suspension-safety rules
        // (which skip only tests/) but outside the std-function and
        // calibration-literal directory scopes.
        FixtureCase{"coro-ref-param", "coro_ref_param",
                    "src/cluster/fixture.cpp"},
        FixtureCase{"coro-local-escape", "coro_local_escape",
                    "src/cluster/fixture.cpp"},
        FixtureCase{"coro-stale-time", "coro_stale_time",
                    "src/cluster/fixture.cpp"}),
    [](const ::testing::TestParamInfo<FixtureCase>& info) {
      std::string name;
      bool up = true;  // CamelCase the stem for readable test names
      for (char ch : std::string(info.param.stem)) {
        if (ch == '_') {
          up = true;
          continue;
        }
        name += up ? static_cast<char>(ch - 'a' + 'A') : ch;
        up = false;
      }
      return name;
    });

// ---- rule registry ---------------------------------------------------------

TEST(LintRules, EveryRuleHasDocAndFiringExample) {
  // The --explain contract: every registered rule carries a documentation
  // paragraph and a minimal example that actually fires that rule.
  const std::vector<apn::lint::RuleInfo>& rs = apn::lint::rules();
  ASSERT_FALSE(rs.empty());
  std::set<std::string> ids;
  for (const apn::lint::RuleInfo& r : rs) {
    SCOPED_TRACE(r.id);
    EXPECT_TRUE(ids.insert(r.id).second) << "duplicate rule id";
    EXPECT_GE(std::string(r.summary).size(), 10u);
    EXPECT_GE(std::string(r.doc).size(), 80u) << "doc is not a paragraph";
    ASSERT_NE(r.example_path, nullptr);
    ASSERT_NE(r.example, nullptr);
    bool fired = false;
    for (const Finding& hit : lint_source(r.example_path, r.example))
      fired |= hit.rule == r.id;
    EXPECT_TRUE(fired) << "registered example does not fire its own rule";
  }
}

// ---- parallel project driver -----------------------------------------------

TEST(LintRunProject, JobCountDoesNotChangeOutput) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  for (const auto& e : fs::directory_iterator(APN_LINT_FIXTURE_DIR)) {
    if (e.path().extension() == ".fixture")
      files.push_back(e.path().generic_string());
  }
  ASSERT_FALSE(files.empty());
  std::sort(files.begin(), files.end());
  std::vector<Finding> one, four;
  std::string bad;
  ASSERT_TRUE(apn::lint::run_project(files, 1, one, &bad)) << bad;
  ASSERT_TRUE(apn::lint::run_project(files, 4, four, &bad)) << bad;
  ASSERT_EQ(one.size(), four.size());
  for (std::size_t i = 0; i < one.size(); ++i) {
    EXPECT_EQ(one[i].path, four[i].path);
    EXPECT_EQ(one[i].line, four[i].line);
    EXPECT_EQ(one[i].col, four[i].col);
    EXPECT_EQ(one[i].rule, four[i].rule);
    EXPECT_EQ(one[i].detail, four[i].detail);
  }
  // Byte-identical all the way to the serialized report.
  EXPECT_EQ(apn::lint::format_sarif(one), apn::lint::format_sarif(four));
}

TEST(LintRunProject, MissingFileReportsPath) {
  std::vector<Finding> out;
  std::string bad;
  EXPECT_FALSE(apn::lint::run_project({"/nonexistent/x.cpp"}, 2, out, &bad));
  EXPECT_EQ(bad, "/nonexistent/x.cpp");
}

// ---- SARIF output ----------------------------------------------------------

TEST(LintSarif, WellFormedWithFindings) {
  std::vector<Finding> fs = {
      {"src/a.cpp", 3, 0, 0, "wall-clock", "say \"hi\""},
  };
  const std::string s = apn::lint::format_sarif(fs);
  EXPECT_NE(s.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(s.find("\"apn-lint\""), std::string::npos);
  EXPECT_NE(s.find("\"ruleId\": \"wall-clock\""), std::string::npos);
  EXPECT_NE(s.find("\"startLine\": 3"), std::string::npos);
  EXPECT_NE(s.find("say \\\"hi\\\""), std::string::npos);  // escaping
}

TEST(LintSarif, EmptyRunStillHasToolMetadata) {
  const std::string s = apn::lint::format_sarif({});
  EXPECT_NE(s.find("\"results\": ["), std::string::npos);
  EXPECT_EQ(s.find("ruleId"), std::string::npos);          // no results
  EXPECT_NE(s.find("check-coverage"), std::string::npos);  // rule catalogue
  EXPECT_NE(s.find("partition-ownership"), std::string::npos);
}

TEST(LintSarif, ColumnsAreOneBasedUtf16) {
  // Two-byte 'π' in a comment before the flagged token: a byte count would
  // say column 18, but SARIF 2.1.0 wants UTF-16 code units, where the
  // whole character is one unit.
  auto f = lint_source("src/core/x.cpp", "/* \xcf\x80 */ int a = rand();\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "raw-rand");
  EXPECT_EQ(f[0].col, 17);
  EXPECT_EQ(f[0].end_col, 21);  // one past "rand"
  const std::string s = apn::lint::format_sarif(f);
  EXPECT_NE(s.find("\"startColumn\": 17"), std::string::npos);
  EXPECT_NE(s.find("\"endColumn\": 21"), std::string::npos);
}

TEST(LintSarif, AstralPlaneCharactersCountTwoUnits) {
  // U+1F600 (4-byte UTF-8) is a surrogate pair: two UTF-16 code units.
  auto f = lint_source("src/core/x.cpp",
                       "/* \xf0\x9f\x98\x80 */ int a = rand();\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].col, 18);  // 16 ASCII chars + 2 units for the emoji
}

TEST(LintSarif, LineOnlyFindingsOmitColumns) {
  std::vector<Finding> fs = {{"src/a.hpp", 4, 0, 0, "check-coverage", "x"}};
  const std::string s = apn::lint::format_sarif(fs);
  EXPECT_NE(s.find("\"startLine\": 4"), std::string::npos);
  EXPECT_EQ(s.find("startColumn"), std::string::npos);
}

// ---- baseline --------------------------------------------------------------

TEST(LintBaseline, ParseIgnoresCommentsAndBlanks) {
  Baseline b = apn::lint::parse_baseline(
      "# header\n\nsrc/a.cpp|wall-clock|2\nsrc/b.cpp|raw-rand|1\n");
  ASSERT_EQ(b.size(), 2u);
  EXPECT_EQ((b[{"src/a.cpp", "wall-clock"}]), 2);
}

TEST(LintBaseline, CoversUpToCountAndFlagsExcess) {
  std::vector<Finding> fs = {
      {"src/a.cpp", 1, 0, 0, "wall-clock", ""},
      {"src/a.cpp", 5, 0, 0, "wall-clock", ""},
      {"src/a.cpp", 9, 0, 0, "wall-clock", ""},
  };
  Baseline b = apn::lint::parse_baseline("src/a.cpp|wall-clock|2\n");
  std::vector<std::string> stale;
  auto fresh = apn::lint::apply_baseline(fs, b, &stale);
  ASSERT_EQ(fresh.size(), 1u);  // third hit exceeds the grandfathered 2
  EXPECT_EQ(fresh[0].line, 9);
  EXPECT_TRUE(stale.empty());
}

TEST(LintBaseline, RatchetReportsStaleEntries) {
  std::vector<Finding> fs;  // the tree got clean
  Baseline b = apn::lint::parse_baseline("src/a.cpp|wall-clock|2\n");
  std::vector<std::string> stale;
  auto fresh = apn::lint::apply_baseline(fs, b, &stale);
  EXPECT_TRUE(fresh.empty());
  ASSERT_EQ(stale.size(), 1u);
  EXPECT_NE(stale[0].find("src/a.cpp|wall-clock"), std::string::npos);
}

TEST(LintBaseline, FormatRoundTrips) {
  std::vector<Finding> fs = {
      {"src/a.cpp", 1, 0, 0, "wall-clock", ""},
      {"src/a.cpp", 5, 0, 0, "wall-clock", ""},
      {"src/b.cpp", 2, 0, 0, "raw-rand", ""},
  };
  Baseline b = apn::lint::parse_baseline(apn::lint::format_baseline(fs));
  EXPECT_EQ((b[{"src/a.cpp", "wall-clock"}]), 2);
  EXPECT_EQ((b[{"src/b.cpp", "raw-rand"}]), 1);
}

}  // namespace
