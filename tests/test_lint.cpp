// Tests for apn-lint (tools/apn-lint): every rule, the suppression
// syntax, and the ratcheting baseline machinery. Sources are fed as
// strings via lint_source, with the path choosing the directory-scoped
// behavior.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "lint.hpp"

namespace {

using apn::lint::Baseline;
using apn::lint::Finding;
using apn::lint::lint_source;

std::vector<std::string> rules_of(const std::vector<Finding>& fs) {
  std::vector<std::string> out;
  for (const Finding& f : fs) out.push_back(f.rule);
  return out;
}

// ---- wall-clock ------------------------------------------------------------

TEST(LintWallClock, FlagsChronoClocksAndCApis) {
  auto f = lint_source("src/core/x.cpp",
                       "auto t = std::chrono::steady_clock::now();\n"
                       "struct timeval tv; gettimeofday(&tv, nullptr);\n");
  ASSERT_EQ(f.size(), 2u);
  EXPECT_EQ(f[0].rule, "wall-clock");
  EXPECT_EQ(f[0].line, 1);
  EXPECT_EQ(f[1].line, 2);
}

TEST(LintWallClock, FlagsBareAndQualifiedTimeCalls) {
  EXPECT_EQ(lint_source("a.cpp", "time_t t = time(nullptr);\n").size(), 1u);
  EXPECT_EQ(lint_source("a.cpp", "auto t = std::time(nullptr);\n").size(),
            1u);
  EXPECT_EQ(lint_source("a.cpp", "auto t = ::time(nullptr);\n").size(), 1u);
}

TEST(LintWallClock, IgnoresMembersAndOtherNamespaces) {
  // Member calls and non-std qualifiers are someone else's time().
  EXPECT_TRUE(lint_source("a.cpp", "auto t = sim.time();\n").empty());
  EXPECT_TRUE(lint_source("a.cpp", "auto t = obj->time();\n").empty());
  EXPECT_TRUE(lint_source("a.cpp", "auto t = mysim::time(x);\n").empty());
  // The word in other contexts (declarations, members) is fine too.
  EXPECT_TRUE(lint_source("a.cpp", "Time rx_task_time = 0;\n").empty());
}

TEST(LintWallClock, CommentsAndStringsAreNotCode) {
  EXPECT_TRUE(lint_source("a.cpp",
                          "// calls gettimeofday() on real hardware\n"
                          "const char* s = \"gettimeofday\";\n")
                  .empty());
}

// ---- raw-rand --------------------------------------------------------------

TEST(LintRawRand, FlagsCAndStdEngines) {
  auto f = lint_source("src/apps/x.cpp",
                       "int a = rand();\n"
                       "std::mt19937 gen(std::random_device{}());\n");
  auto rules = rules_of(f);
  ASSERT_EQ(f.size(), 3u);  // rand, mt19937, random_device
  for (const auto& r : rules) EXPECT_EQ(r, "raw-rand");
}

TEST(LintRawRand, RngModuleIsExempt) {
  EXPECT_TRUE(
      lint_source("src/common/rng.hpp", "int a = rand();\n").empty());
  EXPECT_TRUE(
      lint_source("src/common/rng_test_helper.cpp", "std::mt19937 g;\n")
          .empty());
}

// ---- std-function ----------------------------------------------------------

TEST(LintStdFunction, FlaggedOnlyInHotPaths) {
  const std::string src = "std::function<void()> cb;\n";
  EXPECT_EQ(lint_source("src/sim/x.hpp", src).size(), 1u);
  EXPECT_EQ(lint_source("src/core/x.cpp", src).size(), 1u);
  EXPECT_EQ(lint_source("src/pcie/x.hpp", src).size(), 1u);
  // Cold layers may still use it.
  EXPECT_TRUE(lint_source("src/apps/x.cpp", src).empty());
  EXPECT_TRUE(lint_source("src/ib/hca.cpp", src).empty());
}

TEST(LintStdFunction, QualifiedSpellingOnly) {
  // A type merely named "function" is not std::function.
  EXPECT_TRUE(lint_source("src/sim/x.hpp", "my::function<void()> cb;\n")
                  .empty());
}

// ---- ptr-key-iter ----------------------------------------------------------

TEST(LintPtrKeyIter, FlagsRangeForOverPointerKeyedMap) {
  auto f = lint_source("src/x.cpp",
                       "std::map<Node*, int> weights;\n"
                       "for (auto& [n, w] : weights) total += w;\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "ptr-key-iter");
  EXPECT_EQ(f[0].line, 2);
}

TEST(LintPtrKeyIter, FlagsExplicitBeginIteration) {
  auto f = lint_source("src/x.cpp",
                       "std::unordered_set<const void*> seen;\n"
                       "auto it = seen.begin();\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "ptr-key-iter");
}

TEST(LintPtrKeyIter, LookupOnlyUseIsClean) {
  EXPECT_TRUE(lint_source("src/x.cpp",
                          "std::unordered_map<const void*, CellState> cells;\n"
                          "auto it = cells.find(p);\n"
                          "cells.erase(p);\n")
                  .empty());
}

TEST(LintPtrKeyIter, ValueOnlyPointersAreClean) {
  // Pointer *values* are fine; only pointer *keys* order the iteration.
  EXPECT_TRUE(lint_source("src/x.cpp",
                          "std::map<std::uint64_t, Node*> nodes;\n"
                          "for (auto& [k, n] : nodes) n->tick();\n")
                  .empty());
}

// ---- detached-coro ---------------------------------------------------------

TEST(LintDetachedCoro, FlagsCapturingCoroutineLambda) {
  auto f = lint_source("src/x.cpp",
                       "[this, n]() -> sim::Coro { co_await g(n); }();\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "detached-coro");
}

TEST(LintDetachedCoro, FlagsDefaultCaptures) {
  EXPECT_EQ(
      lint_source("src/x.cpp", "[&](int n) -> Coro { co_return; }(4);\n")
          .size(),
      1u);
  EXPECT_EQ(
      lint_source("src/x.cpp", "[=]() -> Coro { co_return; }();\n").size(),
      1u);
}

TEST(LintDetachedCoro, EmptyCaptureWithParametersIsTheIdiom) {
  // The repo's safe pattern: state enters the frame as parameters.
  EXPECT_TRUE(lint_source("src/x.cpp",
                          "[](Card* self, int n) -> sim::Coro {\n"
                          "  co_await self->g(n);\n"
                          "}(this, 4);\n")
                  .empty());
}

TEST(LintDetachedCoro, NonCoroCapturingLambdaIsClean) {
  EXPECT_TRUE(
      lint_source("src/x.cpp", "auto f = [this]() -> int { return 1; };\n")
          .empty());
}

// ---- suppressions ----------------------------------------------------------

TEST(LintSuppress, SameLineAndLineAbove) {
  EXPECT_TRUE(lint_source("src/sim/x.hpp",
                          "std::function<void()> cb;  "
                          "// apn-lint: allow(std-function)\n")
                  .empty());
  EXPECT_TRUE(lint_source("src/sim/x.hpp",
                          "// apn-lint: allow(std-function)\n"
                          "std::function<void()> cb;\n")
                  .empty());
}

TEST(LintSuppress, MultipleRulesInOneComment) {
  EXPECT_TRUE(lint_source("src/sim/x.hpp",
                          "// apn-lint: allow(std-function, wall-clock)\n"
                          "std::function<Time()> cb = [] { return "
                          "std::time(nullptr); };\n")
                  .empty());
}

TEST(LintSuppress, WrongRuleDoesNotSuppress) {
  EXPECT_EQ(lint_source("src/sim/x.hpp",
                        "// apn-lint: allow(wall-clock)\n"
                        "std::function<void()> cb;\n")
                .size(),
            1u);
}

TEST(LintSuppress, DoesNotLeakPastTheNextLine) {
  EXPECT_EQ(lint_source("src/sim/x.hpp",
                        "// apn-lint: allow(std-function)\n"
                        "int unrelated;\n"
                        "std::function<void()> cb;\n")
                .size(),
            1u);
}

// ---- baseline --------------------------------------------------------------

TEST(LintBaseline, ParseIgnoresCommentsAndBlanks) {
  Baseline b = apn::lint::parse_baseline(
      "# header\n\nsrc/a.cpp|wall-clock|2\nsrc/b.cpp|raw-rand|1\n");
  ASSERT_EQ(b.size(), 2u);
  EXPECT_EQ((b[{"src/a.cpp", "wall-clock"}]), 2);
}

TEST(LintBaseline, CoversUpToCountAndFlagsExcess) {
  std::vector<Finding> fs = {
      {"src/a.cpp", 1, "wall-clock", ""},
      {"src/a.cpp", 5, "wall-clock", ""},
      {"src/a.cpp", 9, "wall-clock", ""},
  };
  Baseline b = apn::lint::parse_baseline("src/a.cpp|wall-clock|2\n");
  std::vector<std::string> stale;
  auto fresh = apn::lint::apply_baseline(fs, b, &stale);
  ASSERT_EQ(fresh.size(), 1u);  // third hit exceeds the grandfathered 2
  EXPECT_EQ(fresh[0].line, 9);
  EXPECT_TRUE(stale.empty());
}

TEST(LintBaseline, RatchetReportsStaleEntries) {
  std::vector<Finding> fs;  // the tree got clean
  Baseline b = apn::lint::parse_baseline("src/a.cpp|wall-clock|2\n");
  std::vector<std::string> stale;
  auto fresh = apn::lint::apply_baseline(fs, b, &stale);
  EXPECT_TRUE(fresh.empty());
  ASSERT_EQ(stale.size(), 1u);
  EXPECT_NE(stale[0].find("src/a.cpp|wall-clock"), std::string::npos);
}

TEST(LintBaseline, FormatRoundTrips) {
  std::vector<Finding> fs = {
      {"src/a.cpp", 1, "wall-clock", ""},
      {"src/a.cpp", 5, "wall-clock", ""},
      {"src/b.cpp", 2, "raw-rand", ""},
  };
  Baseline b = apn::lint::parse_baseline(apn::lint::format_baseline(fs));
  EXPECT_EQ((b[{"src/a.cpp", "wall-clock"}]), 2);
  EXPECT_EQ((b[{"src/b.cpp", "raw-rand"}]), 1);
}

}  // namespace
