#include <gtest/gtest.h>

#include "sim/channel.hpp"
#include "sim/coro.hpp"

namespace apn::sim {
namespace {

using units::us;

TEST(Channel, SerializationPlusLatency) {
  Simulator sim;
  // 1 GB/s, 1 us overhead, 2 us latency: 1000 B => 1 + 1 + 2 = 4 us.
  Channel ch(sim, ChannelParams{Rate(1e9), us(1), us(2)});
  Time delivered = -1;
  ch.send(Bytes(1000), [&] { delivered = sim.now(); });
  sim.run();
  EXPECT_EQ(delivered, us(4));
}

TEST(Channel, BackToBackSendsPipeline) {
  Simulator sim;
  Channel ch(sim, ChannelParams{Rate(1e9), 0, us(10)});
  std::vector<Time> arrivals;
  // Three 1000-byte sends: serialization 1 us each, so the wire frees at
  // 1, 2, 3 us; arrivals at 11, 12, 13 us (latency pipelines).
  for (int i = 0; i < 3; ++i)
    ch.send(Bytes(1000), [&] { arrivals.push_back(sim.now()); });
  sim.run();
  ASSERT_EQ(arrivals.size(), 3u);
  EXPECT_EQ(arrivals[0], us(11));
  EXPECT_EQ(arrivals[1], us(12));
  EXPECT_EQ(arrivals[2], us(13));
}

TEST(Channel, SerializedCallbackFiresBeforeDelivery) {
  Simulator sim;
  Channel ch(sim, ChannelParams{Rate(1e9), 0, us(5)});
  Time serialized = -1, delivered = -1;
  ch.send(
      Bytes(1000), [&] { delivered = sim.now(); }, [&] { serialized = sim.now(); });
  sim.run();
  EXPECT_EQ(serialized, us(1));
  EXPECT_EQ(delivered, us(6));
}

TEST(Channel, AwaitableTransfer) {
  Simulator sim;
  Channel ch(sim, ChannelParams{Rate(2e9), 0, 0});
  Time done = -1;
  [](Simulator& sim, Channel& ch, Time& done) -> Coro {
    co_await ch.transfer(Bytes(4000));  // 2 us at 2 GB/s
    done = sim.now();
  }(sim, ch, done);
  sim.run();
  EXPECT_EQ(done, us(2));
}

TEST(Channel, ThroughputMatchesRate) {
  Simulator sim;
  Channel ch(sim, ChannelParams{units::GBps(2), 0, us(1)});
  const int n = 100;
  const Bytes bytes{65536};
  Time last = 0;
  for (int i = 0; i < n; ++i) ch.send(bytes, [&] { last = sim.now(); });
  sim.run();
  double achieved = units::bandwidth_MBps(bytes * n, last);
  EXPECT_NEAR(achieved, 2000.0, 20.0);  // latency amortizes over the burst
  EXPECT_EQ(ch.bytes_sent(), bytes * n);
}

TEST(Channel, ZeroByteSendCostsOverheadOnly) {
  Simulator sim;
  Channel ch(sim, ChannelParams{Rate(1e9), us(3), us(2)});
  Time delivered = -1;
  ch.send(Bytes(0), [&] { delivered = sim.now(); });
  sim.run();
  EXPECT_EQ(delivered, us(5));
}

}  // namespace
}  // namespace apn::sim
