#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"

namespace apn {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, ReseedRestartsSequence) {
  Rng a(99);
  std::uint64_t first = a.next_u64();
  a.next_u64();
  a.reseed(99);
  EXPECT_EQ(a.next_u64(), first);
}

TEST(Rng, NextBelowInRange) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    std::uint64_t v = r.next_below(17);
    EXPECT_LT(v, 17u);
  }
  EXPECT_EQ(r.next_below(0), 0u);
  EXPECT_EQ(r.next_below(1), 0u);
}

TEST(Rng, NextBelowCoversAllResidues) {
  Rng r(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.next_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(5);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) {
    double v = r.next_double();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 20000, 0.5, 0.02);
}

TEST(Rng, UniformRange) {
  Rng r(31);
  for (int i = 0; i < 1000; ++i) {
    double v = r.uniform(-3.0, 5.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng r(17);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i)
    if (r.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, GaussianMoments) {
  Rng r(23);
  double sum = 0, sum2 = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    double g = r.gaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(SplitMix, KnownProgressionIsDeterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.next(), b.next());
}

}  // namespace
}  // namespace apn
