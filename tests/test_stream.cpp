#include <gtest/gtest.h>

#include "simcuda/runtime.hpp"

namespace apn::cuda {
namespace {

using units::us;

struct StreamFixture : ::testing::Test {
  sim::Simulator sim;
  pcie::Fabric fabric{sim};
  std::unique_ptr<gpu::Gpu> g;
  std::unique_ptr<Runtime> rt;

  void SetUp() override {
    fabric.add_root();
    g = std::make_unique<gpu::Gpu>(sim, fabric, gpu::fermi_c2050(),
                                   0xE00000000000ull);
    fabric.attach(*g, 0, pcie::gen2_x16());
    rt = std::make_unique<Runtime>(sim, std::vector<gpu::Gpu*>{g.get()});
  }
};

TEST_F(StreamFixture, KernelsOnOneStreamSerialize) {
  Stream s(*rt, 0);
  Time first = -1, second = -1;
  Done d1 = s.launch_kernel(us(10));
  Done d2 = s.launch_kernel(us(10));
  [](Done d, sim::Simulator& sim, Time& out) -> sim::Coro {
    co_await d;
    out = sim.now();
  }(d1, sim, first);
  [](Done d, sim::Simulator& sim, Time& out) -> sim::Coro {
    co_await d;
    out = sim.now();
  }(d2, sim, second);
  sim.run();
  EXPECT_NEAR(units::to_us(first), 10.0, 1.0);
  EXPECT_NEAR(units::to_us(second), 20.0, 1.0);
}

TEST_F(StreamFixture, IndependentStreamsShareTheComputeEngine) {
  // One compute engine: kernels from two streams still serialize on it,
  // but neither stream blocks the other's *enqueue*.
  Stream a(*rt, 0), b(*rt, 0);
  Done da = a.launch_kernel(us(10));
  Done db = b.launch_kernel(us(10));
  Time ta = -1, tb = -1;
  [](Done d, sim::Simulator& sim, Time& out) -> sim::Coro {
    co_await d;
    out = sim.now();
  }(da, sim, ta);
  [](Done d, sim::Simulator& sim, Time& out) -> sim::Coro {
    co_await d;
    out = sim.now();
  }(db, sim, tb);
  sim.run();
  EXPECT_NEAR(units::to_us(std::max(ta, tb)), 20.0, 1.0);
}

TEST_F(StreamFixture, CopyAndComputeOverlapAcrossStreams) {
  // Kernel on one stream, async memcpy on another: the copy engine and
  // the compute engine are distinct units, so total time ~ max, not sum.
  DevPtr d = rt->malloc_device(0, 1 << 20);
  std::vector<std::uint8_t> host(1 << 20);
  Stream compute(*rt, 0), copy(*rt, 0);
  Done k = compute.launch_kernel(us(200));
  Done c = copy.memcpy_async(reinterpret_cast<std::uint64_t>(host.data()), d,
                             1 << 20);
  Time t_k = -1, t_c = -1;
  [](Done d, sim::Simulator& sim, Time& out) -> sim::Coro {
    co_await d;
    out = sim.now();
  }(k, sim, t_k);
  [](Done d, sim::Simulator& sim, Time& out) -> sim::Coro {
    co_await d;
    out = sim.now();
  }(c, sim, t_c);
  sim.run();
  EXPECT_LT(std::max(t_k, t_c), us(230));  // overlapped, not 200+191
}

TEST_F(StreamFixture, MemcpyAsyncMovesData) {
  DevPtr d = rt->malloc_device(0, 4096);
  std::vector<std::uint8_t> src(4096, 0x5C), dst(4096, 0);
  Stream s(*rt, 0);
  s.memcpy_async(d, reinterpret_cast<std::uint64_t>(src.data()), 4096);
  Done done =
      s.memcpy_async(reinterpret_cast<std::uint64_t>(dst.data()), d, 4096);
  sim.run();
  EXPECT_TRUE(done.ready());
  EXPECT_EQ(dst, src);
}

TEST_F(StreamFixture, RecordEventCompletesAfterPriorWork) {
  Stream s(*rt, 0);
  s.launch_kernel(us(15));
  Done ev = s.record_event();
  Time t = -1;
  [](Done d, sim::Simulator& sim, Time& out) -> sim::Coro {
    co_await d;
    out = sim.now();
  }(ev, sim, t);
  sim.run();
  EXPECT_NEAR(units::to_us(t), 15.0, 1.0);
}

TEST_F(StreamFixture, EmptyStreamEventIsImmediatelyReady) {
  Stream s(*rt, 0);
  EXPECT_TRUE(s.record_event().ready());
}

}  // namespace
}  // namespace apn::cuda
