// The measurement harness itself (shared by tests and benches): sanity
// invariants that keep every bench number trustworthy.
#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "cluster/harness.hpp"

namespace apn::cluster {
namespace {

using core::ApenetParams;
using core::MemType;

TEST(Harness, BandwidthAccountsAllBytes) {
  sim::Simulator sim;
  auto c = Cluster::make_cluster_i(sim, 2, ApenetParams{}, false);
  auto r = twonode_bandwidth(*c, 65536, 10, TwoNodeOptions{});
  EXPECT_EQ(r.bytes, 655360u);
  EXPECT_GT(r.elapsed, 0);
  EXPECT_NEAR(r.mbps, units::bandwidth_MBps(Bytes(r.bytes), r.elapsed), 1e-9);
}

TEST(Harness, MoreTrafficSameBandwidth) {
  // Throughput is a property of the pipe, not the repetition count.
  auto bw = [](int count) {
    sim::Simulator sim;
    auto c = Cluster::make_cluster_i(sim, 2, ApenetParams{}, false);
    return twonode_bandwidth(*c, 1 << 20, count, TwoNodeOptions{}).mbps;
  };
  EXPECT_NEAR(bw(16), bw(64), bw(16) * 0.05);
}

TEST(Harness, LatencyIndependentOfRepetitions) {
  auto lat = [](int reps) {
    sim::Simulator sim;
    auto c = Cluster::make_cluster_i(sim, 2, ApenetParams{}, false);
    return pingpong_latency(*c, 32, reps, TwoNodeOptions{});
  };
  Time a = lat(20);
  Time b = lat(200);
  EXPECT_NEAR(static_cast<double>(a), static_cast<double>(b),
              static_cast<double>(a) * 0.02);
}

TEST(Harness, BandwidthMonotoneInMessageSize) {
  // Bigger messages amortize per-message overheads: bandwidth must be
  // non-decreasing across the sweep (within tolerance).
  double prev = 0;
  for (std::uint64_t size : {512ull, 4096ull, 32768ull, 262144ull}) {
    sim::Simulator sim;
    auto c = Cluster::make_cluster_i(sim, 2, ApenetParams{}, false);
    double bw = twonode_bandwidth(*c, size, 32, TwoNodeOptions{}).mbps;
    EXPECT_GE(bw, prev * 0.98) << "size " << size;
    prev = bw;
  }
}

TEST(Harness, LatencyMonotoneInMessageSize) {
  Time prev = 0;
  for (std::uint64_t size : {32ull, 512ull, 4096ull, 32768ull}) {
    sim::Simulator sim;
    auto c = Cluster::make_cluster_i(sim, 2, ApenetParams{}, false);
    Time lat = pingpong_latency(*c, size, 40, TwoNodeOptions{});
    EXPECT_GE(lat, prev) << "size " << size;
    prev = lat;
  }
}

TEST(Harness, HostOverheadBelowLatency) {
  // The LogP overhead o is the non-overlapped fraction: it must be well
  // below the full one-way latency.
  sim::Simulator s1, s2;
  auto c1 = Cluster::make_cluster_i(s1, 2, ApenetParams{}, false);
  auto c2 = Cluster::make_cluster_i(s2, 2, ApenetParams{}, false);
  Time o = host_overhead(*c1, 512, 64, TwoNodeOptions{});
  Time lat = pingpong_latency(*c2, 512, 64, TwoNodeOptions{});
  EXPECT_LT(o, lat);
  EXPECT_GT(o, 0);
}

TEST(Harness, LoopbackFlushFasterThanFullPath) {
  auto bw = [](bool flush) {
    sim::Simulator sim;
    ApenetParams p;
    p.flush_at_switch = flush;
    auto c = Cluster::make_cluster_i(sim, 1, p, false);
    return loopback_bandwidth(*c, 0, MemType::kHost, 1 << 20, 16).mbps;
  };
  EXPECT_GT(bw(true), bw(false) * 1.5);
}

TEST(Harness, IbBandwidthSaneAndOrdered) {
  sim::Simulator s1, s2;
  auto c1 = Cluster::make_cluster_ii(s1, 2);
  auto c2 = Cluster::make_cluster_ii(s2, 2);
  auto hh = ib_hh_bandwidth(*c1, 1 << 20, 8);
  auto gg = ib_gg_bandwidth(*c2, 1 << 20, 8);
  EXPECT_GT(hh.mbps, gg.mbps);  // GPU path pays the staging pipeline
  EXPECT_GT(gg.mbps, 500.0);
}

}  // namespace
}  // namespace apn::cluster
