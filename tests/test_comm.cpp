#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "cluster/harness.hpp"

namespace apn::mpi {
namespace {

using cluster::Cluster;
using units::us;

struct MpiFixture : ::testing::Test {
  sim::Simulator sim;
  std::unique_ptr<Cluster> c;
  void SetUp() override { c = Cluster::make_cluster_ii(sim, 4); }
};

TEST_F(MpiFixture, EagerHostSendRecv) {
  std::vector<std::uint8_t> src(1000), dst(1000, 0);
  for (std::size_t i = 0; i < src.size(); ++i)
    src[i] = static_cast<std::uint8_t>(i);
  [](Cluster* c, std::vector<std::uint8_t>* src,
     std::vector<std::uint8_t>* dst) -> sim::Coro {
    Signal s = c->mpi_rank(0).send(
        1, reinterpret_cast<std::uint64_t>(src->data()), 1000, 9);
    Signal r = c->mpi_rank(1).recv(
        0, reinterpret_cast<std::uint64_t>(dst->data()), 1000, 9);
    co_await s;
    co_await r;
  }(c.get(), &src, &dst);
  sim.run();
  EXPECT_EQ(dst, src);
}

TEST_F(MpiFixture, RendezvousLargeHostTransfer) {
  const std::uint64_t n = 1 << 20;
  std::vector<std::uint8_t> src(n), dst(n, 0);
  for (std::size_t i = 0; i < n; ++i)
    src[i] = static_cast<std::uint8_t>(i * 31);
  [](Cluster* c, std::vector<std::uint8_t>* src,
     std::vector<std::uint8_t>* dst, std::uint64_t n) -> sim::Coro {
    Signal r = c->mpi_rank(1).recv(
        0, reinterpret_cast<std::uint64_t>(dst->data()), n, 3);
    Signal s = c->mpi_rank(0).send(
        1, reinterpret_cast<std::uint64_t>(src->data()), n, 3);
    co_await s;
    co_await r;
  }(c.get(), &src, &dst, n);
  sim.run();
  EXPECT_EQ(dst, src);
}

TEST_F(MpiFixture, UnexpectedMessageMatchesLatePost) {
  std::vector<std::uint8_t> src(128, 0x3D), dst(128, 0);
  [](Cluster* c, std::vector<std::uint8_t>* src,
     std::vector<std::uint8_t>* dst) -> sim::Coro {
    co_await c->mpi_rank(0).send(
        1, reinterpret_cast<std::uint64_t>(src->data()), 128, 4);
    // recv posted long after the eager message arrived.
    co_await sim::delay(c->simulator(), us(100));
    co_await c->mpi_rank(1).recv(
        0, reinterpret_cast<std::uint64_t>(dst->data()), 128, 4);
  }(c.get(), &src, &dst);
  sim.run();
  EXPECT_EQ(dst, src);
}

TEST_F(MpiFixture, TagsAndSourcesMatchIndependently) {
  std::vector<std::uint8_t> a(64, 1), b(64, 2), out_a(64, 0), out_b(64, 0);
  [](Cluster* c, std::vector<std::uint8_t>* a, std::vector<std::uint8_t>* b,
     std::vector<std::uint8_t>* oa, std::vector<std::uint8_t>* ob)
      -> sim::Coro {
    // Two sends with different tags, received in the opposite order.
    co_await c->mpi_rank(0).send(1, reinterpret_cast<std::uint64_t>(a->data()),
                                 64, 10);
    co_await c->mpi_rank(0).send(1, reinterpret_cast<std::uint64_t>(b->data()),
                                 64, 20);
    co_await c->mpi_rank(1).recv(0, reinterpret_cast<std::uint64_t>(ob->data()),
                                 64, 20);
    co_await c->mpi_rank(1).recv(0, reinterpret_cast<std::uint64_t>(oa->data()),
                                 64, 10);
  }(c.get(), &a, &b, &out_a, &out_b);
  sim.run();
  EXPECT_EQ(out_a[0], 1);
  EXPECT_EQ(out_b[0], 2);
}

TEST_F(MpiFixture, DeviceToDeviceStagedTransfer) {
  cuda::Runtime& cu0 = c->node(0).cuda();
  cuda::Runtime& cu1 = c->node(1).cuda();
  cuda::DevPtr src = cu0.malloc_device(0, 4096);
  cuda::DevPtr dst = cu1.malloc_device(0, 4096);
  std::vector<std::uint8_t> data(4096);
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = static_cast<std::uint8_t>(i % 127);
  cu0.move_bytes(src, reinterpret_cast<std::uint64_t>(data.data()), 4096);

  [](Cluster* c, cuda::DevPtr src, cuda::DevPtr dst) -> sim::Coro {
    Signal r = c->mpi_rank(1).recv(0, dst, 4096, 8);
    Signal s = c->mpi_rank(0).send(1, src, 4096, 8);
    co_await s;
    co_await r;
  }(c.get(), src, dst);
  sim.run();

  std::vector<std::uint8_t> out(4096);
  cu1.move_bytes(reinterpret_cast<std::uint64_t>(out.data()), dst, 4096);
  EXPECT_EQ(out, data);
}

TEST_F(MpiFixture, DeviceLargePipelinedTransfer) {
  const std::uint64_t n = 2 << 20;
  cuda::Runtime& cu0 = c->node(0).cuda();
  cuda::Runtime& cu1 = c->node(1).cuda();
  cuda::DevPtr src = cu0.malloc_device(0, n);
  cuda::DevPtr dst = cu1.malloc_device(0, n);
  std::vector<std::uint8_t> data(n);
  for (std::size_t i = 0; i < n; ++i)
    data[i] = static_cast<std::uint8_t>((i * 7) % 255);
  cu0.move_bytes(src, reinterpret_cast<std::uint64_t>(data.data()), n);

  [](Cluster* c, cuda::DevPtr src, cuda::DevPtr dst,
     std::uint64_t n) -> sim::Coro {
    Signal r = c->mpi_rank(1).recv(0, dst, n, 2);
    Signal s = c->mpi_rank(0).send(1, src, n, 2);
    co_await s;
    co_await r;
  }(c.get(), src, dst, n);
  sim.run();

  std::vector<std::uint8_t> out(n);
  cu1.move_bytes(reinterpret_cast<std::uint64_t>(out.data()), dst, n);
  EXPECT_EQ(out, data);
}

TEST_F(MpiFixture, GgLatencyIncludesTwoStagingCopies) {
  // The staged G-G ping-pong latency must exceed H-H by roughly two
  // synchronous cudaMemcpy costs (paper: 17.4 vs a few us).
  sim::Simulator s1;
  auto c1 = Cluster::make_cluster_ii(s1, 2);
  Time hh = cluster::ib_hh_latency(*c1, 32, 50);
  sim::Simulator s2;
  auto c2 = Cluster::make_cluster_ii(s2, 2);
  Time gg = cluster::ib_gg_latency(*c2, 32, 50);
  EXPECT_GT(gg, hh + us(9));
  EXPECT_LT(gg, hh + us(20));
}

TEST_F(MpiFixture, Barrier) {
  auto order = std::make_shared<std::vector<int>>();
  for (int r = 0; r < 4; ++r) {
    [](Cluster* c, int r, std::shared_ptr<std::vector<int>> order)
        -> sim::Coro {
      // Stagger arrival; nobody may pass before the last one arrives.
      co_await sim::delay(c->simulator(), us(10) * (r + 1));
      co_await c->mpi_rank(r).barrier();
      order->push_back(r);
      EXPECT_GE(c->simulator().now(), us(40));
    }(c.get(), r, order);
  }
  sim.run();
  EXPECT_EQ(order->size(), 4u);
}

TEST_F(MpiFixture, AllreduceSum) {
  auto results = std::make_shared<std::vector<std::uint64_t>>(4, 0);
  for (int r = 0; r < 4; ++r) {
    [](Cluster* c, int r, std::shared_ptr<std::vector<std::uint64_t>> out)
        -> sim::Coro {
      std::uint64_t v = static_cast<std::uint64_t>(r + 1) * 10;
      co_await c->mpi_rank(r).allreduce_sum(&v);
      (*out)[static_cast<std::size_t>(r)] = v;
    }(c.get(), r, results);
  }
  sim.run();
  for (int r = 0; r < 4; ++r)
    EXPECT_EQ((*results)[static_cast<std::size_t>(r)], 100u);
}

}  // namespace
}  // namespace apn::mpi
