// Calibration acceptance tests: the headline numbers the paper reports,
// with tolerances. These pin the model against Table I and the latency
// figures so refactors can't silently drift the reproduction.
#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "cluster/harness.hpp"

namespace apn {
namespace {

using cluster::Cluster;
using cluster::TwoNodeOptions;
using core::ApenetParams;
using core::MemType;
using units::us;

TEST(Calibration, TwoNodeHostBandwidth_1200MBs) {
  sim::Simulator sim;
  auto c = Cluster::make_cluster_i(sim, 2, ApenetParams{}, false);
  auto r = cluster::twonode_bandwidth(*c, 1 << 20, 48, TwoNodeOptions{});
  EXPECT_GT(r.mbps, 1050.0);
  EXPECT_LT(r.mbps, 1400.0);
}

TEST(Calibration, TwoNodeGGBandwidthPlateau_1100MBs) {
  sim::Simulator sim;
  auto c = Cluster::make_cluster_i(sim, 2, ApenetParams{}, false);
  TwoNodeOptions gg;
  gg.src_type = MemType::kGpu;
  gg.dst_type = MemType::kGpu;
  auto r = cluster::twonode_bandwidth(*c, 1 << 20, 32, gg);
  EXPECT_GT(r.mbps, 900.0);
  EXPECT_LT(r.mbps, 1300.0);
}

TEST(Calibration, LatencyHH_6_3us) {
  sim::Simulator sim;
  auto c = Cluster::make_cluster_i(sim, 2, ApenetParams{}, false);
  Time lat = cluster::pingpong_latency(*c, 32, 100, TwoNodeOptions{});
  EXPECT_GT(lat, us(5.0));
  EXPECT_LT(lat, us(8.0));
}

TEST(Calibration, LatencyGGP2p_8_2us) {
  sim::Simulator sim;
  auto c = Cluster::make_cluster_i(sim, 2, ApenetParams{}, false);
  TwoNodeOptions gg;
  gg.src_type = MemType::kGpu;
  gg.dst_type = MemType::kGpu;
  Time lat = cluster::pingpong_latency(*c, 32, 100, gg);
  EXPECT_GT(lat, us(6.8));
  EXPECT_LT(lat, us(10.0));
}

TEST(Calibration, LatencyGGStaged_16_8us) {
  sim::Simulator sim;
  auto c = Cluster::make_cluster_i(sim, 2, ApenetParams{}, false);
  TwoNodeOptions staged;
  staged.src_type = MemType::kGpu;
  staged.dst_type = MemType::kGpu;
  staged.staged_tx = true;
  staged.staged_rx = true;
  Time lat = cluster::pingpong_latency(*c, 32, 100, staged);
  EXPECT_GT(lat, us(14.0));
  EXPECT_LT(lat, us(20.0));
}

TEST(Calibration, LatencyOrdering_P2pBeatsStagingBeatsNothing) {
  // Fig. 9's qualitative statement: P2P ~ 50% lower latency than staging.
  sim::Simulator s1, s2;
  auto c1 = Cluster::make_cluster_i(s1, 2, ApenetParams{}, false);
  auto c2 = Cluster::make_cluster_i(s2, 2, ApenetParams{}, false);
  TwoNodeOptions gg;
  gg.src_type = MemType::kGpu;
  gg.dst_type = MemType::kGpu;
  Time p2p = cluster::pingpong_latency(*c1, 1024, 60, gg);
  TwoNodeOptions staged = gg;
  staged.staged_tx = staged.staged_rx = true;
  Time stg = cluster::pingpong_latency(*c2, 1024, 60, staged);
  EXPECT_LT(static_cast<double>(p2p), 0.62 * static_cast<double>(stg));
}

TEST(Calibration, IbGGLatency_17us) {
  sim::Simulator sim;
  auto c = Cluster::make_cluster_ii(sim, 2);
  Time lat = cluster::ib_gg_latency(*c, 32, 60);
  EXPECT_GT(lat, us(13.0));
  EXPECT_LT(lat, us(21.0));
}

TEST(Calibration, CrossoverP2pVsStagingNear32K) {
  // Fig. 7: P2P wins below ~32 KB, staging wins above.
  auto gg_bw = [](std::uint64_t size, bool staged) {
    sim::Simulator sim;
    auto c = Cluster::make_cluster_i(sim, 2, ApenetParams{}, false);
    TwoNodeOptions o;
    o.src_type = MemType::kGpu;
    o.dst_type = MemType::kGpu;
    o.staged_tx = o.staged_rx = staged;
    return cluster::twonode_bandwidth(*c, size, 48, o).mbps;
  };
  // Well below the crossover: P2P wins.
  EXPECT_GT(gg_bw(8192, false), gg_bw(8192, true));
  // Well above: staging wins (pipelined copies hide the GPU read limit).
  EXPECT_GT(gg_bw(2 << 20, true), gg_bw(2 << 20, false));
}

TEST(Calibration, HostOverheadOrdering) {
  // Fig. 10: o(H-H) < o(G-G P2P) < o(G-G staged).
  auto overhead = [](MemType t, bool staged) {
    sim::Simulator sim;
    auto c = Cluster::make_cluster_i(sim, 2, ApenetParams{}, false);
    TwoNodeOptions o;
    o.src_type = t;
    o.dst_type = t;
    o.staged_tx = staged && t == MemType::kGpu;
    return cluster::host_overhead(*c, 512, 64, o);
  };
  Time hh = overhead(MemType::kHost, false);
  Time gg = overhead(MemType::kGpu, false);
  Time st = overhead(MemType::kGpu, true);
  EXPECT_LT(hh, gg);
  EXPECT_LT(gg, st);
  // Staged overhead includes the synchronous cudaMemcpy (~5 us).
  EXPECT_GT(st - hh, us(4.0));
}

TEST(Calibration, IbHHBandwidthX8_3GBs) {
  sim::Simulator sim;
  auto c = Cluster::make_cluster_ii(sim, 2);
  auto r = cluster::ib_hh_bandwidth(*c, 1 << 20, 32);
  EXPECT_GT(r.mbps, 2400.0);
  EXPECT_LT(r.mbps, 3700.0);
}

TEST(Calibration, IbGGBandwidthRecoversAtLargeSizes) {
  // MVAPICH pipelining: G-G approaches H-H at multi-MB sizes (Fig. 7).
  sim::Simulator s1, s2;
  auto c1 = Cluster::make_cluster_ii(s1, 2);
  auto c2 = Cluster::make_cluster_ii(s2, 2);
  auto gg = cluster::ib_gg_bandwidth(*c1, 2 << 20, 6);
  auto hh = cluster::ib_hh_bandwidth(*c2, 2 << 20, 6);
  EXPECT_GT(gg.mbps, hh.mbps * 0.55);
}

TEST(Calibration, ApenetBeatsIbAtSmallGGMessages) {
  // The paper's headline: P2P wins for small-to-medium G-G messages.
  sim::Simulator s1, s2;
  auto apenet = Cluster::make_cluster_i(s1, 2, ApenetParams{}, false);
  auto ib = Cluster::make_cluster_ii(s2, 2);
  TwoNodeOptions gg;
  gg.src_type = MemType::kGpu;
  gg.dst_type = MemType::kGpu;
  Time apn_lat = cluster::pingpong_latency(*apenet, 1024, 60, gg);
  Time ib_lat = cluster::ib_gg_latency(*ib, 1024, 60);
  EXPECT_LT(apn_lat, ib_lat);
}

}  // namespace
}  // namespace apn
