#include <gtest/gtest.h>

#include "sim/coro.hpp"

namespace apn::sim {
namespace {

using units::us;

TEST(Coro, DelaySuspendsForDuration) {
  Simulator sim;
  Time done_at = -1;
  [](Simulator& sim, Time& done_at) -> Coro {
    co_await delay(sim, us(5));
    done_at = sim.now();
  }(sim, done_at);
  sim.run();
  EXPECT_EQ(done_at, us(5));
}

TEST(Coro, SequentialDelaysAccumulate) {
  Simulator sim;
  std::vector<Time> marks;
  [](Simulator& sim, std::vector<Time>& marks) -> Coro {
    for (int i = 0; i < 3; ++i) {
      co_await delay(sim, us(2));
      marks.push_back(sim.now());
    }
  }(sim, marks);
  sim.run();
  ASSERT_EQ(marks.size(), 3u);
  EXPECT_EQ(marks[0], us(2));
  EXPECT_EQ(marks[1], us(4));
  EXPECT_EQ(marks[2], us(6));
}

TEST(Coro, RunsEagerlyUntilFirstSuspension) {
  Simulator sim;
  bool started = false;
  [](Simulator& sim, bool& started) -> Coro {
    started = true;
    co_await delay(sim, us(1));
  }(sim, started);
  EXPECT_TRUE(started);  // before sim.run()
}

TEST(Coro, MultipleProcessesInterleave) {
  Simulator sim;
  std::vector<int> order;
  auto proc = [](Simulator& sim, std::vector<int>& order, int id,
                 Time period) -> Coro {
    for (int i = 0; i < 2; ++i) {
      co_await delay(sim, period);
      order.push_back(id);
    }
  };
  proc(sim, order, 1, us(3));  // fires at 3, 6
  proc(sim, order, 2, us(4));  // fires at 4, 8
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 1, 2}));
}

TEST(Coro, YieldLetsPreviouslyScheduledSameTimeEventsRun) {
  Simulator sim;
  std::vector<int> order;
  sim.after(0, [&] { order.push_back(2); });
  [](Simulator& sim, std::vector<int>& order) -> Coro {
    order.push_back(1);  // eager: runs before any event
    co_await yield(sim);
    order.push_back(3);  // resumes after the already-queued event
  }(sim, order);
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

}  // namespace
}  // namespace apn::sim
