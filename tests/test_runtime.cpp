#include <gtest/gtest.h>

#include "pcie/memory.hpp"
#include "simcuda/runtime.hpp"

namespace apn::cuda {
namespace {

using units::us;

struct CudaFixture : ::testing::Test {
  sim::Simulator sim;
  pcie::Fabric fabric{sim};
  std::unique_ptr<gpu::Gpu> gpu0, gpu1;
  std::unique_ptr<Runtime> rt;

  void SetUp() override {
    int root = fabric.add_root();
    gpu0 = std::make_unique<gpu::Gpu>(sim, fabric, gpu::fermi_c2050(),
                                      0xE00000000000ull);
    gpu1 = std::make_unique<gpu::Gpu>(sim, fabric, gpu::fermi_c2070(),
                                      0xE00100000000ull);
    fabric.attach(*gpu0, root, pcie::gen2_x16());
    fabric.attach(*gpu1, root, pcie::gen2_x16());
    rt = std::make_unique<Runtime>(sim,
                                   std::vector<gpu::Gpu*>{gpu0.get(),
                                                          gpu1.get()});
  }
};

TEST_F(CudaFixture, UvaAddressesAreDisjointPerDevice) {
  DevPtr a = rt->malloc_device(0, 4096);
  DevPtr b = rt->malloc_device(1, 4096);
  EXPECT_GE(a, Runtime::kUvaBase);
  EXPECT_GE(b, Runtime::kUvaBase + Runtime::kUvaStride);
  PointerInfo ia = rt->pointer_info(a);
  PointerInfo ib = rt->pointer_info(b);
  EXPECT_TRUE(ia.is_device);
  EXPECT_EQ(ia.device, 0);
  EXPECT_TRUE(ib.is_device);
  EXPECT_EQ(ib.device, 1);
}

TEST_F(CudaFixture, HostPointersClassifiedAsHost) {
  int on_stack = 0;
  PointerInfo info =
      rt->pointer_info(reinterpret_cast<std::uint64_t>(&on_stack));
  EXPECT_FALSE(info.is_device);
}

TEST_F(CudaFixture, P2pTokensMatchAllocation) {
  DevPtr a = rt->malloc_device(1, 128 * 1024);
  P2pTokens t = rt->get_p2p_tokens(a, 128 * 1024);
  EXPECT_EQ(t.device, 1);
  EXPECT_EQ(t.size, 128u * 1024u);
  EXPECT_EQ(t.page_count(), 2u);
  int host_var = 0;
  EXPECT_THROW(rt->get_p2p_tokens(
                   reinterpret_cast<std::uint64_t>(&host_var), 4),
               std::invalid_argument);
}

TEST_F(CudaFixture, FreeReturnsMemory) {
  DevPtr a = rt->malloc_device(0, 1 << 20);
  std::uint64_t used = rt->device(0).allocator().used_bytes();
  EXPECT_GE(used, 1u << 20);
  rt->free_device(a);
  EXPECT_EQ(rt->device(0).allocator().used_bytes(), 0u);
}

TEST_F(CudaFixture, MemcpySyncMovesBytesH2DAndBack) {
  DevPtr d = rt->malloc_device(0, 1024);
  std::vector<std::uint8_t> src(1024);
  for (std::size_t i = 0; i < src.size(); ++i)
    src[i] = static_cast<std::uint8_t>(i * 11);
  std::vector<std::uint8_t> dst(1024, 0);

  [](Runtime& rt, DevPtr d, std::vector<std::uint8_t>& src,
     std::vector<std::uint8_t>& dst) -> sim::Coro {
    co_await rt.memcpy_sync(d, reinterpret_cast<std::uint64_t>(src.data()),
                            src.size());
    co_await rt.memcpy_sync(reinterpret_cast<std::uint64_t>(dst.data()), d,
                            dst.size());
  }(*rt, d, src, dst);
  sim.run();
  EXPECT_EQ(dst, src);
}

TEST_F(CudaFixture, MemcpySyncCostsOverheadPlusTransfer) {
  DevPtr d = rt->malloc_device(0, 1 << 20);
  std::vector<std::uint8_t> host(1 << 20);
  Time small_done = -1, large_done = -1;

  [](Runtime& rt, sim::Simulator& sim, DevPtr d,
     std::vector<std::uint8_t>& host, Time& small_done,
     Time& large_done) -> sim::Coro {
    Time t0 = sim.now();
    co_await rt.memcpy_sync(reinterpret_cast<std::uint64_t>(host.data()), d,
                            32);
    small_done = sim.now() - t0;
    t0 = sim.now();
    co_await rt.memcpy_sync(reinterpret_cast<std::uint64_t>(host.data()), d,
                            1 << 20);
    large_done = sim.now() - t0;
  }(*rt, sim, d, host, small_done, large_done);
  sim.run();

  // Small D2H copy: dominated by the ~9 us sync overhead (the paper's
  // "single cudaMemcpy overhead ... around 10 us").
  EXPECT_GT(small_done, us(8.0));
  EXPECT_LT(small_done, us(11.0));
  // Large copy: overhead + 1 MiB / 5.5 GB/s ~ 200 us.
  EXPECT_GT(large_done, us(190));
  EXPECT_LT(large_done, us(215));
}

TEST_F(CudaFixture, DeviceToDeviceCopy) {
  DevPtr a = rt->malloc_device(0, 4096);
  DevPtr b = rt->malloc_device(0, 4096);
  std::vector<std::uint8_t> src(4096, 0x42);
  rt->move_bytes(a, reinterpret_cast<std::uint64_t>(src.data()), 4096);
  [](Runtime& rt, DevPtr a, DevPtr b) -> sim::Coro {
    co_await rt.memcpy_sync(b, a, 4096);
  }(*rt, a, b);
  sim.run();
  std::vector<std::uint8_t> out(4096);
  rt->move_bytes(reinterpret_cast<std::uint64_t>(out.data()), b, 4096);
  EXPECT_EQ(out, src);
}

TEST_F(CudaFixture, HostToHostThroughCudaIsRejected) {
  int a = 0, b = 0;
  EXPECT_THROW(rt->classify(reinterpret_cast<std::uint64_t>(&a),
                            reinterpret_cast<std::uint64_t>(&b)),
               std::invalid_argument);
}

TEST_F(CudaFixture, Bar1MapChargesReconfigurationTime) {
  DevPtr d = rt->malloc_device(0, 1 << 20);
  auto fut = rt->bar1_map_async(d, 1 << 20);
  sim.run();
  ASSERT_TRUE(fut.ready());
  EXPECT_GE(sim.now(), units::ms(1));  // full GPU reconfiguration
  EXPECT_GE(fut.get().pcie_addr,
            gpu0->mmio_base() + gpu::GpuMmio::kBar1Aperture);
}

}  // namespace
}  // namespace apn::cuda
