#include <gtest/gtest.h>

#include <cstring>

#include "pcie/fabric.hpp"
#include "pcie/memory.hpp"

namespace apn::pcie {
namespace {

using units::us;

/// Endpoint that records writes and answers reads with a pattern.
class ScratchDevice : public Device {
 public:
  explicit ScratchDevice(sim::Simulator& sim) : sim_(&sim) {}

  void handle_write(std::uint64_t addr, Payload payload) override {
    writes.push_back({addr, payload.bytes, sim_->now()});
    if (!payload.data.empty())
      last_data.assign(payload.data.begin(), payload.data.end());
  }
  void handle_read(std::uint64_t, std::uint32_t len,
                   UniqueFn<void(Payload)> reply) override {
    Payload p;
    p.bytes = len;
    p.data.assign(len, 0xAB);
    sim_->after(us(1), [reply = std::move(reply), p = std::move(p)]() mutable {
      reply(std::move(p));
    });
  }

  struct Write {
    std::uint64_t addr;
    std::uint64_t bytes;
    Time at;
  };
  std::vector<Write> writes;
  std::vector<std::uint8_t> last_data;

 private:
  sim::Simulator* sim_;
};

struct FabricFixture : ::testing::Test {
  sim::Simulator sim;
  Fabric fabric{sim};
  ScratchDevice a{sim}, b{sim};
  int root = -1, sw = -1;

  void SetUp() override {
    root = fabric.add_root();
    sw = fabric.add_switch(root, gen2_x16(), "plx");
    fabric.attach(a, sw, gen2_x8());
    fabric.attach(b, sw, gen2_x8());
    fabric.claim_range(a, 0x1000000, 0x100000);
    fabric.claim_range(b, 0x2000000, 0x100000);
  }
};

TEST_F(FabricFixture, RouteByAddress) {
  EXPECT_EQ(fabric.route(0x1000000), &a);
  EXPECT_EQ(fabric.route(0x10FFFFF), &a);
  EXPECT_EQ(fabric.route(0x2000000), &b);
  EXPECT_EQ(fabric.route(0x9999999), nullptr);  // no default target set
}

TEST_F(FabricFixture, WriteDeliversDataToTarget) {
  std::vector<std::uint8_t> data(1000);
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = static_cast<std::uint8_t>(i);
  bool done = false;
  fabric.post_write(a, 0x2000040, Payload::of(data), [&] { done = true; });
  sim.run();
  EXPECT_TRUE(done);
  ASSERT_EQ(b.writes.size(), 1u);
  EXPECT_EQ(b.writes[0].addr, 0x2000040u);
  EXPECT_EQ(b.writes[0].bytes, 1000u);
  EXPECT_EQ(b.last_data, data);
}

TEST_F(FabricFixture, LargeWriteIsChunkedButContiguous) {
  bool done = false;
  fabric.post_write(a, 0x2000000, Payload::timing(20000), [&] { done = true; });
  sim.run();
  EXPECT_TRUE(done);
  // 20000 bytes in 4 KB chunks = 5 chunks (4 full + remainder).
  ASSERT_EQ(b.writes.size(), 5u);
  std::uint64_t total = 0, expect_addr = 0x2000000;
  for (const auto& w : b.writes) {
    EXPECT_EQ(w.addr, expect_addr);
    expect_addr += w.bytes;
    total += w.bytes;
  }
  EXPECT_EQ(total, 20000u);
}

TEST_F(FabricFixture, ReadReturnsTargetData) {
  std::vector<std::uint8_t> got;
  fabric.read(a, 0x2000000, 512, [&](Payload p) { got = std::move(p.data); });
  sim.run();
  ASSERT_EQ(got.size(), 512u);
  EXPECT_EQ(got[0], 0xAB);
  EXPECT_EQ(got[511], 0xAB);
}

TEST_F(FabricFixture, TransferTimeReflectsLinkSpeed) {
  Time done_at = -1;
  fabric.post_write(a, 0x2000000, Payload::timing(1 << 20),
                    [&] { done_at = sim.now(); });
  sim.run();
  // 1 MiB over x8 Gen2 (4 GB/s raw, ~3.6 GB/s effective): ~290 us plus
  // small hop latencies.
  EXPECT_GT(done_at, us(280));
  EXPECT_LT(done_at, us(320));
}

TEST_F(FabricFixture, PathLatencySums) {
  // a -> switch -> b: two hops of 200 ns each.
  EXPECT_EQ(fabric.path_latency(a, b), units::ns(400));
}

TEST_F(FabricFixture, ConcurrentWritesShareTheUplink) {
  // Both endpoints write to each other simultaneously; each direction of
  // each link is independent, so they should NOT contend.
  Time a_done = -1, b_done = -1;
  fabric.post_write(a, 0x2000000, Payload::timing(1 << 20),
                    [&] { a_done = sim.now(); });
  fabric.post_write(b, 0x1000000, Payload::timing(1 << 20),
                    [&] { b_done = sim.now(); });
  sim.run();
  EXPECT_NEAR(units::to_us(a_done), units::to_us(b_done), 1.0);
  EXPECT_LT(a_done, us(320));
}

TEST_F(FabricFixture, BusAnalyzerRecordsChunks) {
  BusAnalyzer bus;
  fabric.attach_analyzer(b.pcie_node(), bus);
  fabric.post_write(a, 0x2000000, Payload::timing(8192));
  sim.run();
  ASSERT_EQ(bus.events().size(), 2u);  // two 4 KB chunks
  EXPECT_EQ(bus.events()[0].kind, BusEvent::Kind::kWrite);
  EXPECT_TRUE(bus.events()[0].downstream);
  EXPECT_LT(bus.events()[0].time, bus.events()[1].time);
}

TEST(HostMemoryFabric, DefaultTargetReceivesUnclaimedWrites) {
  sim::Simulator sim;
  Fabric fabric(sim);
  int root = fabric.add_root();
  HostMemory host(sim);
  fabric.attach(host, root, gen2_x16());
  fabric.set_default_target(host);
  ScratchDevice dev(sim);
  fabric.attach(dev, root, gen2_x8());
  fabric.claim_range(dev, 0xF0000000, 0x1000);

  std::vector<std::uint8_t> buffer(256, 0);
  host.pin(buffer.data(), buffer.size());

  std::vector<std::uint8_t> payload(256);
  for (std::size_t i = 0; i < payload.size(); ++i)
    payload[i] = static_cast<std::uint8_t>(255 - i);
  fabric.post_write(dev, reinterpret_cast<std::uint64_t>(buffer.data()),
                    Payload::of(payload));
  sim.run();
  EXPECT_EQ(buffer, payload);
}

TEST(HostMemoryFabric, ReadFromPinnedMemoryReturnsBytes) {
  sim::Simulator sim;
  Fabric fabric(sim);
  int root = fabric.add_root();
  HostMemory host(sim);
  fabric.attach(host, root, gen2_x16());
  fabric.set_default_target(host);
  ScratchDevice dev(sim);
  fabric.attach(dev, root, gen2_x8());
  fabric.claim_range(dev, 0xF0000000, 0x1000);

  std::vector<std::uint8_t> buffer(512);
  for (std::size_t i = 0; i < buffer.size(); ++i)
    buffer[i] = static_cast<std::uint8_t>(i * 3);
  host.pin(buffer.data(), buffer.size());

  std::vector<std::uint8_t> got;
  fabric.read(dev, reinterpret_cast<std::uint64_t>(buffer.data()), 512,
              [&](Payload p) { got = std::move(p.data); });
  sim.run();
  EXPECT_EQ(got, buffer);
}

TEST(HostMemoryFabric, UnpinnedReadsAreTimingOnly) {
  sim::Simulator sim;
  Fabric fabric(sim);
  int root = fabric.add_root();
  HostMemory host(sim);
  fabric.attach(host, root, gen2_x16());
  fabric.set_default_target(host);
  ScratchDevice dev(sim);
  fabric.attach(dev, root, gen2_x8());
  fabric.claim_range(dev, 0xF0000000, 0x1000);

  bool completed = false;
  fabric.read(dev, 0x12345000, 256, [&](Payload p) {
    completed = true;
    EXPECT_TRUE(p.data.empty());
    EXPECT_EQ(p.bytes, 256u);
  });
  sim.run();
  EXPECT_TRUE(completed);
}

}  // namespace
}  // namespace apn::pcie
