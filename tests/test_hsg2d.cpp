// 2-D decomposed Heisenberg spin glass: face-halo correctness against the
// reference lattice and the paper's multi-dimensional conjecture.
#include <gtest/gtest.h>

#include "apps/hsg/runner2d.hpp"

namespace apn::apps::hsg {
namespace {

using cluster::Cluster;

TEST(Slab2d, OwnedEnergySumsToReferenceEnergy) {
  const int L = 8;
  ReferenceLattice ref(L);
  ref.randomize(9);
  // 2x2 grid of bricks covering the lattice; fill halos from the full
  // lattice, then compare the summed owned energy.
  double total = 0;
  for (int iz = 0; iz < 2; ++iz)
    for (int iy = 0; iy < 2; ++iy) {
      Slab2d s(L, L / 2, L / 2, iz * L / 2, iy * L / 2);
      s.randomize(9);
      for (int z = 0; z <= L / 2 + 1; ++z)
        for (int y = 0; y <= L / 2 + 1; ++y)
          for (int x = 0; x < L; ++x) {
            int gz = ((z + iz * L / 2 - 1) % L + L) % L;
            int gy = ((y + iy * L / 2 - 1) % L + L) % L;
            s.at(z, y, x) = ref.at(gz, gy, x);
          }
      total += s.owned_energy();
    }
  EXPECT_NEAR(total, ref.energy(), std::abs(ref.energy()) * 1e-5 + 1e-6);
}

TEST(Slab2d, PackUnpackFaceRoundTrip) {
  Slab2d a(8, 4, 4, 0, 0), b(8, 4, 4, 0, 0);
  a.randomize(3);
  std::vector<std::uint8_t> buf;
  for (int f = 0; f < kFaces; ++f) {
    for (int parity = 0; parity < 2; ++parity) {
      a.pack_face(static_cast<Face>(f), parity, buf);
      EXPECT_EQ(buf.size(), a.face_parity_bytes(static_cast<Face>(f)));
    }
  }
  // Round trip through the matching halo of a y-neighbor-like slab.
  Slab2d c(8, 4, 4, 0, 4);
  a.pack_face(Face::kYhigh, 0, buf);  // a's y=4 row, global y 3
  c.unpack_face(Face::kYlow, 0, buf);  // c's halo y=0, global y 3
  for (int z = 1; z <= 4; ++z)
    for (int x = 0; x < 8; ++x) {
      // parity-0 sites only
      const Spin& sa = a.at(z, 4, x);
      const Spin& sc = c.at(z, 0, x);
      if (((z - 1) % 2 + (3 % 2) + x) % 2 == 0) {
        EXPECT_EQ(sa.x, sc.x);
        EXPECT_EQ(sa.z, sc.z);
      }
    }
}

TEST(Slab2d, BoundaryPlusBulkEqualsInterior) {
  // update_boundary + update_bulk must update exactly the same set of
  // sites as update_interior (no overlap, no gap).
  Slab2d a(8, 4, 4, 0, 0), b(8, 4, 4, 0, 0);
  a.randomize(5);
  b.randomize(5);
  // Fill halos identically (self-wrap of a standalone brick).
  std::vector<std::uint8_t> buf;
  for (auto* s : {&a, &b}) {
    for (int parity = 0; parity < 2; ++parity) {
      s->pack_face(Face::kZhigh, parity, buf);
      s->unpack_face(Face::kZlow, parity, buf);
      s->pack_face(Face::kZlow, parity, buf);
      s->unpack_face(Face::kZhigh, parity, buf);
      s->pack_face(Face::kYhigh, parity, buf);
      s->unpack_face(Face::kYlow, parity, buf);
      s->pack_face(Face::kYlow, parity, buf);
      s->unpack_face(Face::kYhigh, parity, buf);
    }
  }
  a.update_interior(0);
  b.update_boundary(0);
  b.update_bulk(0);
  for (int z = 1; z <= 4; ++z)
    for (int y = 1; y <= 4; ++y)
      for (int x = 0; x < 8; ++x) {
        ASSERT_EQ(a.at(z, y, x).x, b.at(z, y, x).x)
            << z << "," << y << "," << x;
      }
}

TEST(Hsg2dRun, FourRankFunctionalMatchesReference) {
  sim::Simulator sim;
  auto c = Cluster::make_cluster_i(sim, 4, core::ApenetParams{}, false);
  Hsg2dConfig cfg;
  cfg.L = 8;
  cfg.steps = 2;
  cfg.pz = 2;
  cfg.py = 2;
  cfg.functional = true;
  Hsg2dRun run(*c, cfg);
  HsgMetrics m = run.run();
  EXPECT_NEAR(m.energy_final, m.energy_initial,
              std::abs(m.energy_initial) * 1e-4 + 1e-3);

  ReferenceLattice ref(cfg.L);
  ref.randomize(cfg.seed);
  for (int i = 0; i < cfg.steps; ++i) ref.sweep();
  for (int r = 0; r < 4; ++r) {
    const Slab2d& s = run.slab(r);
    for (int z = 1; z <= s.lz(); ++z)
      for (int y = 1; y <= s.ly(); ++y)
        for (int x = 0; x < cfg.L; ++x)
          ASSERT_EQ(s.at(z, y, x).x,
                    ref.at(s.z_offset() + z - 1, s.y_offset() + y - 1, x).x)
              << "rank " << r << " @ " << z << "," << y << "," << x;
  }
}

TEST(Hsg2dRun, EightRankGridFunctional) {
  sim::Simulator sim;
  auto c = Cluster::make_cluster_i(sim, 8, core::ApenetParams{}, false);
  Hsg2dConfig cfg;
  cfg.L = 8;
  cfg.steps = 2;
  cfg.pz = 4;
  cfg.py = 2;
  cfg.functional = true;
  Hsg2dRun run(*c, cfg);
  HsgMetrics m = run.run();
  EXPECT_NEAR(m.energy_final, m.energy_initial,
              std::abs(m.energy_initial) * 1e-4 + 1e-3);
}

TEST(Hsg2dRun, StagedModeFunctional) {
  sim::Simulator sim;
  auto c = Cluster::make_cluster_i(sim, 4, core::ApenetParams{}, false);
  Hsg2dConfig cfg;
  cfg.L = 8;
  cfg.steps = 2;
  cfg.pz = 2;
  cfg.py = 2;
  cfg.mode = CommMode::kP2pOff;
  cfg.functional = true;
  Hsg2dRun run(*c, cfg);
  HsgMetrics m = run.run();
  EXPECT_NEAR(m.energy_final, m.energy_initial,
              std::abs(m.energy_initial) * 1e-4 + 1e-3);
}

TEST(Hsg2dRun, HaloVolumeSmallerThan1d) {
  // The conjecture's premise: at NP=8, the 2-D decomposition exchanges
  // less halo data per rank than the 1-D one.
  sim::Simulator sim;
  auto c = Cluster::make_cluster_i(sim, 8, core::ApenetParams{}, false);
  Hsg2dConfig cfg;
  cfg.L = 64;
  cfg.pz = 4;
  cfg.py = 2;
  cfg.functional = false;
  Hsg2dRun run(*c, cfg);
  // 1-D at NP=8 sends 2 * L^2/2 spins per phase regardless of NP.
  std::uint64_t halo_1d = 2ull * 64 * 64 / 2 * sizeof(Spin);
  EXPECT_LT(run.halo_bytes_per_phase(), halo_1d);
}

TEST(Hsg2dRun, RejectsBadGrid) {
  sim::Simulator sim;
  auto c = Cluster::make_cluster_i(sim, 4, core::ApenetParams{}, false);
  Hsg2dConfig cfg;
  cfg.pz = 3;
  cfg.py = 1;  // 3 != 4
  EXPECT_THROW(Hsg2dRun(*c, cfg), std::invalid_argument);
}

}  // namespace
}  // namespace apn::apps::hsg
