#include <gtest/gtest.h>

#include "pcie/link.hpp"

namespace apn::pcie {
namespace {

TEST(LinkParams, RawRates) {
  EXPECT_DOUBLE_EQ(gen2_x8().raw_rate().bytes_per_sec(), 4e9);
  EXPECT_DOUBLE_EQ(gen2_x4().raw_rate().bytes_per_sec(), 2e9);
  EXPECT_DOUBLE_EQ(gen2_x16().raw_rate().bytes_per_sec(), 8e9);
  LinkParams g1{1, 8, 256, 28, 0};
  EXPECT_DOUBLE_EQ(g1.raw_rate().bytes_per_sec(), 2e9);
}

TEST(LinkParams, WireBytesAccountsTlpOverhead) {
  LinkParams l = gen2_x8();
  // 256 B payload => exactly 1 TLP.
  EXPECT_EQ(l.wire_bytes(Bytes(256)), Bytes(256 + 28));
  // 257 B => 2 TLPs.
  EXPECT_EQ(l.wire_bytes(Bytes(257)), Bytes(257 + 2 * 28));
  // 4 KB => 16 TLPs.
  EXPECT_EQ(l.wire_bytes(Bytes(4096)), Bytes(4096 + 16 * 28));
  // Header-only transaction.
  EXPECT_EQ(l.wire_bytes(Bytes(0)), Bytes(28));
}

TEST(LinkParams, EffectiveRateBelowRaw) {
  LinkParams l = gen2_x8();
  EXPECT_LT(l.effective_rate(), l.raw_rate());
  // 256/(256+28) of 4 GB/s ~ 3.6 GB/s.
  EXPECT_NEAR(l.effective_rate().bytes_per_sec(), 3.6e9, 0.05e9);
}

TEST(LinkParams, SerializeTimeScalesWithSize) {
  LinkParams l = gen2_x8();
  Time t4k = l.serialize_time(Bytes(4096));
  Time t8k = l.serialize_time(Bytes(8192));
  EXPECT_NEAR(static_cast<double>(t8k) / static_cast<double>(t4k), 2.0, 0.01);
  // 4 KB + overhead at 4 GB/s ~ 1.14 us.
  EXPECT_NEAR(units::to_us(t4k), 1.136, 0.01);
}

TEST(LinkParams, X4HalvesThroughput) {
  Time x8 = gen2_x8().serialize_time(units::MiB(1));
  Time x4 = gen2_x4().serialize_time(units::MiB(1));
  EXPECT_NEAR(static_cast<double>(x4) / static_cast<double>(x8), 2.0, 0.01);
}

}  // namespace
}  // namespace apn::pcie
