// Tests for the simulation race detector (src/check): same-tick conflict
// detection with provenance, causal-order and access-kind exemptions, and
// the rolling state hash's ability to pinpoint an injected divergence.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "check/check.hpp"
#include "common/owner.hpp"
#include "sim/simulator.hpp"

namespace {

using apn::Time;
using apn::check::Access;
using apn::check::Context;
using apn::check::Finding;
using apn::check::Session;
using apn::check::StateCell;
using apn::sim::Simulator;
using apn::units::us;

TEST(Check, SameTickWriteWriteConflictFlaggedWithProvenance) {
  Simulator sim;
  Session session(sim, Context::Mode::kRecord);
  StateCell<int> cell{"test.cell"};

  // Two events at the same timestamp, both scheduled from the top level:
  // neither is the causal parent of the other, so their write order is an
  // accident of seq assignment — exactly what the detector must flag.
  sim.at(us(10), [&] { cell = 1; });
  sim.at(us(10), [&] { cell = 2; });
  sim.run();

  const std::vector<Finding>& f = session.context().findings();
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].cell, "test.cell");
  EXPECT_EQ(f[0].time, us(10));
  EXPECT_LT(f[0].seq_first, f[0].seq_second);
  EXPECT_EQ(f[0].kind_first, Access::kWrite);
  EXPECT_EQ(f[0].kind_second, Access::kWrite);
  // The human-readable provenance names the cell and both events.
  std::string msg = f[0].message();
  EXPECT_NE(msg.find("test.cell"), std::string::npos);
  EXPECT_NE(msg.find(std::to_string(f[0].seq_first)), std::string::npos);
  EXPECT_NE(msg.find(std::to_string(f[0].seq_second)), std::string::npos);
}

TEST(Check, SameTickWriteReadConflictFlagged) {
  Simulator sim;
  Session session(sim, Context::Mode::kRecord);
  StateCell<int> cell{"test.cell"};

  sim.at(us(10), [&] { cell = 1; });
  sim.at(us(10), [&] { (void)cell.get(); });
  sim.run();

  ASSERT_EQ(session.context().findings().size(), 1u);
  EXPECT_EQ(session.context().findings()[0].kind_second, Access::kRead);
}

TEST(Check, CausallyOrderedSameTickAccessesAreClean) {
  Simulator sim;
  Session session(sim, Context::Mode::kRecord);
  StateCell<int> cell{"test.cell"};

  // A writes, then schedules B (zero delay: same tick). B's order w.r.t. A
  // is fixed by the scheduling structure — no finding.
  sim.at(us(10), [&] {
    cell = 1;
    sim.after(0, [&] { cell = 2; });
  });
  sim.run();

  EXPECT_TRUE(session.context().findings().empty());
  EXPECT_EQ(cell.peek(), 2);
}

TEST(Check, DifferentTickAccessesAreClean) {
  Simulator sim;
  Session session(sim, Context::Mode::kRecord);
  StateCell<int> cell{"test.cell"};

  sim.at(us(10), [&] { cell = 1; });
  sim.at(us(11), [&] { cell = 2; });
  sim.run();

  EXPECT_TRUE(session.context().findings().empty());
}

TEST(Check, AccumAccumCommutesButAccumReadConflicts) {
  Simulator sim;
  Session session(sim, Context::Mode::kRecord);
  StateCell<std::uint64_t> counter{"test.counter"};

  // Two same-tick += commute: clean.
  sim.at(us(10), [&] { counter += 1; });
  sim.at(us(10), [&] { counter += 2; });
  // A sibling read at a later tick shared with another accum: conflict.
  sim.at(us(20), [&] { counter += 1; });
  sim.at(us(20), [&] { (void)counter.get(); });
  sim.run();

  ASSERT_EQ(session.context().findings().size(), 1u);
  EXPECT_EQ(session.context().findings()[0].time, us(20));
  EXPECT_EQ(counter.peek(), 4u);
}

TEST(Check, SampleConflictsWithNothing) {
  Simulator sim;
  Session session(sim, Context::Mode::kRecord);
  StateCell<int> cell{"test.cell"};

  sim.at(us(10), [&] { cell = 1; });
  sim.at(us(10), [&] { (void)cell.sample(); });
  sim.run();

  EXPECT_TRUE(session.context().findings().empty());
}

TEST(Check, MacroOnPlainMemberRecordsAccesses) {
  Simulator sim;
  Session session(sim, Context::Mode::kRecord);
  struct Model {
    std::uint64_t next_seq = 0;
  } model;

  sim.at(us(10), [&] {
    ++model.next_seq;
    APN_CHECK_ACCESS(model.next_seq, kWrite);
  });
  sim.at(us(10), [&] {
    ++model.next_seq;
    APN_CHECK_ACCESS(model.next_seq, kWrite);
  });
  sim.run();

  ASSERT_EQ(session.context().findings().size(), 1u);
  EXPECT_EQ(session.context().findings()[0].cell, "model.next_seq");
  EXPECT_GE(session.context().accesses_recorded(), 2u);
}

// One simulated run for the divergence test: writes a deterministic
// sequence of values, with one value optionally perturbed, and records the
// per-event hash lines the sink would receive.
struct HashTrace {
  std::vector<std::uint64_t> seqs;
  std::vector<std::uint64_t> hashes;
};

HashTrace run_hashed(int perturb_step) {
  Simulator sim;
  Session session(sim, Context::Mode::kRecord);
  HashTrace trace;
  session.context().set_hash_line_fn(
      [](void* user, std::uint64_t seq, Time, std::uint64_t hash) {
        auto* t = static_cast<HashTrace*>(user);
        t->seqs.push_back(seq);
        t->hashes.push_back(hash);
      },
      &trace);

  auto cell = std::make_shared<StateCell<int>>("test.cell");
  for (int step = 0; step < 8; ++step) {
    int value = step == perturb_step ? 999 : step;
    sim.at(us(10) * (step + 1), [cell, value] { *cell = value; });
  }
  sim.run();
  return trace;
}

TEST(Check, StateHashDiffPinpointsInjectedDivergence) {
  HashTrace base = run_hashed(-1);
  HashTrace same = run_hashed(-1);
  HashTrace diverged = run_hashed(5);

  // Bit-identical runs produce bit-identical hash streams.
  ASSERT_EQ(base.hashes.size(), 8u);
  EXPECT_EQ(base.seqs, same.seqs);
  EXPECT_EQ(base.hashes, same.hashes);

  // The perturbed run agrees up to the injected step and diverges exactly
  // there — the property that makes two hash files diffable to the first
  // bad event.
  ASSERT_EQ(diverged.hashes.size(), 8u);
  std::size_t first_diff = 0;
  while (first_diff < 8 && base.hashes[first_diff] == diverged.hashes[first_diff])
    ++first_diff;
  EXPECT_EQ(first_diff, 5u);
  // Divergence persists (the hash is rolling, not per-event-local).
  for (std::size_t i = first_diff; i < 8; ++i)
    EXPECT_NE(base.hashes[i], diverged.hashes[i]);
}

// ---- --owner-check: the runtime partition-ownership oracle -------------

TEST(Check, OwnerCheckSameInstanceIsClean) {
  Simulator sim;
  Session session(sim, Context::Mode::kRecord);
  session.context().set_owner_check(true);

  // Everything below is built while "node 0" assembles itself: torus_node
  // and pcie_island state share the instance (they land on the same
  // shard), so one event may touch both freely.
  apn::owner::ScopedOwner scope(apn::owner::Domain::torus_node, 0);
  StateCell<int> card{"node0.card.head"};
  StateCell<int> card2{"node0.card.tail"};
  apn::owner::ScopedOwner pcie(apn::owner::Domain::pcie_island, 0);
  StateCell<int> fabric{"node0.fabric.inflight"};

  sim.at(us(10), [&] {
    card = 1;
    card2 = 2;
    fabric = 3;
  });
  sim.run();

  EXPECT_TRUE(session.context().owner_findings().empty());
  EXPECT_TRUE(session.context().findings().empty());
}

TEST(Check, OwnerCheckCrossInstanceFlaggedWithProvenance) {
  Simulator sim;
  Session session(sim, Context::Mode::kRecord);
  session.context().set_owner_check(true);

  auto make = [](const char* name, int node) {
    apn::owner::ScopedOwner scope(apn::owner::Domain::torus_node, node);
    return StateCell<int>{name};
  };
  StateCell<int> a = make("node0.card.head", 0);
  StateCell<int> b = make("node1.card.head", 1);

  // One event reaches into two different nodes' card state with no
  // channel delivery in between: exactly the pattern that breaks under
  // sharded execution.
  sim.at(us(10), [&] {
    a = 1;
    b = 2;
  });
  sim.run();

  const auto& of = session.context().owner_findings();
  ASSERT_EQ(of.size(), 1u);
  EXPECT_EQ(of[0].time, us(10));
  EXPECT_EQ(of[0].cell_first, "node0.card.head");
  EXPECT_EQ(of[0].cell_second, "node1.card.head");
  EXPECT_EQ(of[0].owner_first.instance, 0);
  EXPECT_EQ(of[0].owner_second.instance, 1);
  // The provenance message names both cells and both partition stamps.
  std::string msg = of[0].message();
  EXPECT_NE(msg.find("node0.card.head"), std::string::npos);
  EXPECT_NE(msg.find("node1.card.head"), std::string::npos);
  EXPECT_NE(msg.find("torus_node#0"), std::string::npos);
  EXPECT_NE(msg.find("torus_node#1"), std::string::npos);
}

TEST(Check, OwnerCheckChannelHandoffSanctionsTheCrossing) {
  Simulator sim;
  Session session(sim, Context::Mode::kRecord);
  session.context().set_owner_check(true);

  auto make = [](const char* name, int node) {
    apn::owner::ScopedOwner scope(apn::owner::Domain::torus_node, node);
    return StateCell<int>{name};
  };
  StateCell<int> a = make("node0.card.head", 0);
  StateCell<int> b = make("node1.card.head", 1);

  // The same cross-node touch, but with the channel-delivery handoff in
  // between (sim::Channel calls this hook when a message lands): the
  // crossing is sanctioned and the oracle stays quiet.
  sim.at(us(10), [&] {
    a = 1;
    session.context().owner_handoff();
    b = 2;
  });
  sim.run();

  EXPECT_TRUE(session.context().owner_findings().empty());
}

TEST(Check, OwnerCheckDisabledAndUnownedCellsStayQuiet) {
  Simulator sim;
  Session session(sim, Context::Mode::kRecord);
  // Oracle off: cross-instance touches record nothing.
  auto make = [](const char* name, int node) {
    apn::owner::ScopedOwner scope(apn::owner::Domain::torus_node, node);
    return StateCell<int>{name};
  };
  StateCell<int> a = make("node0.cell", 0);
  StateCell<int> b = make("node1.cell", 1);
  sim.at(us(10), [&] {
    a = 1;
    b = 2;
  });
  sim.run();
  EXPECT_TRUE(session.context().owner_findings().empty());

  // Oracle on, but unowned cells (no construction scope) never
  // participate: tests and free-standing state don't trip it.
  Simulator sim2;
  Session session2(sim2, Context::Mode::kRecord);
  session2.context().set_owner_check(true);
  StateCell<int> x{"test.x"};
  StateCell<int> y{"test.y"};
  sim2.at(us(10), [&] {
    x = 1;
    y = 2;
  });
  sim2.run();
  EXPECT_TRUE(session2.context().owner_findings().empty());
}

TEST(Check, NoSessionMeansNoRecordingAndNoCrash) {
  Simulator sim;
  StateCell<int> cell{"test.cell"};
  sim.at(us(10), [&] { cell = 1; });
  sim.at(us(10), [&] { cell = 2; });
  sim.run();
  EXPECT_EQ(cell.peek(), 2);
  EXPECT_EQ(apn::check::current(), nullptr);
}

}  // namespace
