// Tests for the coroutine frame-lifetime oracle (src/check/coro_check.hpp)
// and the teardown-reclamation contract it depends on: every structure a
// frame can be suspended on (WaiterList-based sync primitives, Resource
// queues, pending Simulator resume nodes) destroys the frame when it is
// itself destroyed, so "still registered" at the end of a run means
// "genuinely leaked".
//
// The registry is process-global, so every assertion works on deltas of
// the counters, and each test that enables tracking disables it again.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "check/coro_check.hpp"
#include "sim/coro.hpp"
#include "sim/resource.hpp"
#include "sim/simulator.hpp"
#include "sim/sync.hpp"

namespace apn {
namespace {

namespace coro = check::coro;

/// RAII enable/disable around a test body.
struct TrackingGuard {
  TrackingGuard() { coro::force_enable(true); }
  ~TrackingGuard() { coro::force_enable(false); }
};

struct Counters {
  std::uint64_t created;
  std::uint64_t destroyed;
  std::uint64_t poisoned;
  std::size_t live;

  static Counters now() {
    return Counters{coro::created_count(), coro::destroyed_count(),
                    coro::poisoned_count(), coro::live_count()};
  }
};

sim::Coro finish_immediately(int* ran) {
  *ran += 1;
  co_return;
}

sim::Coro wait_on_gate(sim::Gate* gate, int* resumed) {
  co_await gate->wait();
  *resumed += 1;
}

TEST(CoroCheck, CompletedFramesAreUnregistered) {
  TrackingGuard on;
  const Counters before = Counters::now();
  int ran = 0;
  finish_immediately(&ran);
  EXPECT_EQ(ran, 1);
  const Counters after = Counters::now();
  EXPECT_EQ(after.created - before.created, 1u);
  EXPECT_EQ(after.destroyed - before.destroyed, 1u);
  EXPECT_EQ(after.live, before.live);
}

TEST(CoroCheck, SuspendedForeverFrameIsReportedWithProvenance) {
  TrackingGuard on;
  const Counters before = Counters::now();
  sim::Simulator sim;
  auto gate = std::make_unique<sim::Gate>(sim);
  int resumed = 0;
  wait_on_gate(gate.get(), &resumed);
  EXPECT_EQ(resumed, 0);

  const Counters live = Counters::now();
  EXPECT_EQ(live.created - before.created, 1u);
  EXPECT_EQ(live.live - before.live, 1u);

  // The snapshot names the coroutine function and this file.
  const std::vector<coro::FrameInfo> frames = coro::snapshot();
  ASSERT_FALSE(frames.empty());
  const coro::FrameInfo& f = frames.back();
  ASSERT_NE(f.function, nullptr);
  EXPECT_NE(std::string(f.function).find("wait_on_gate"), std::string::npos);
  ASSERT_NE(f.file, nullptr);
  EXPECT_NE(std::string(f.file).find("test_coro_check.cpp"),
            std::string::npos);
  EXPECT_GT(f.bytes, 0u);

  // The textual report carries the same provenance.
  std::FILE* tmp = std::tmpfile();
  ASSERT_NE(tmp, nullptr);
  coro::report(tmp);
  std::rewind(tmp);
  std::string text;
  char buf[256];
  while (std::fgets(buf, sizeof buf, tmp) != nullptr) text += buf;
  std::fclose(tmp);
  EXPECT_NE(text.find("wait_on_gate"), std::string::npos);
  EXPECT_NE(text.find("live coroutine frame"), std::string::npos);

  // Destroying the gate reclaims the parked frame (WaiterList teardown):
  // nothing resumes, the frame just dies.
  gate.reset();
  EXPECT_EQ(resumed, 0);
  const Counters after = Counters::now();
  EXPECT_EQ(after.live, before.live);
  EXPECT_EQ(after.destroyed - before.destroyed, 1u);
}

TEST(CoroCheck, BirthTickRecordsSimulatedTime) {
  TrackingGuard on;
  sim::Simulator sim;
  sim::Gate gate(sim);
  int resumed = 0;
  // Spawn the waiter from inside an event at t=500: its frame's birth tick
  // must be the simulated time, not wall clock or zero.
  sim.at(500, [&] { wait_on_gate(&gate, &resumed); });
  sim.run();
  const std::vector<coro::FrameInfo> frames = coro::snapshot();
  ASSERT_FALSE(frames.empty());
  EXPECT_EQ(frames.back().birth_tick, 500);
  gate.open();  // nothing left to resume it deterministically; reclaim:
  sim.run();
  EXPECT_EQ(resumed, 1);
}

TEST(CoroCheck, QueueTeardownReclaimsParkedConsumer) {
  TrackingGuard on;
  const Counters before = Counters::now();
  {
    sim::Simulator sim;
    sim::Queue<int> q(sim);
    [](sim::Queue<int>* q) -> sim::Coro { co_await q->pop(); }(&q);
    EXPECT_EQ(Counters::now().live - before.live, 1u);
  }
  EXPECT_EQ(Counters::now().live, before.live);
}

TEST(CoroCheck, SemaphoreTeardownReclaimsParkedWaiter) {
  TrackingGuard on;
  const Counters before = Counters::now();
  {
    sim::Simulator sim;
    sim::Semaphore sema(sim, 0);
    [](sim::Semaphore* s) -> sim::Coro { co_await s->acquire(); }(&sema);
    EXPECT_EQ(Counters::now().live - before.live, 1u);
  }
  EXPECT_EQ(Counters::now().live, before.live);
}

TEST(CoroCheck, ResourceTeardownReclaimsQueuedAndInflightJobs) {
  TrackingGuard on;
  const Counters before = Counters::now();
  {
    sim::Simulator sim;
    sim::Resource server(sim);
    // First job is in flight (handle captured in the pending completion
    // event), second is queued behind it. Neither completion ever fires.
    [](sim::Resource* r) -> sim::Coro { co_await r->use(100); }(&server);
    [](sim::Resource* r) -> sim::Coro { co_await r->use(100); }(&server);
    EXPECT_EQ(Counters::now().live - before.live, 2u);
  }
  EXPECT_EQ(Counters::now().live, before.live);
}

TEST(CoroCheck, SimulatorTeardownReclaimsPendingResumes) {
  TrackingGuard on;
  const Counters before = Counters::now();
  {
    sim::Simulator sim;
    // One near-future resume (timing wheel), one far-future (heap), one
    // same-tick (ready ring): all three pending-node paths reclaim.
    [](sim::Simulator* s) -> sim::Coro { co_await sim::delay(*s, 10); }(&sim);
    [](sim::Simulator* s) -> sim::Coro {
      co_await sim::delay(*s, 1 << 20);
    }(&sim);
    [](sim::Simulator* s) -> sim::Coro { co_await sim::yield(*s); }(&sim);
    EXPECT_EQ(Counters::now().live - before.live, 3u);
  }
  EXPECT_EQ(Counters::now().live, before.live);
}

TEST(CoroCheck, PoisonPatternFillsFreedFrames) {
  // The pattern itself is a contract (debuggers key off 0xC9).
  unsigned char buf[64];
  std::memset(buf, 0, sizeof buf);
  coro::poison_fill(buf, sizeof buf);
  for (unsigned char b : buf) ASSERT_EQ(b, coro::kPoisonByte);

  // With the race detector armed, completing a frame poisons it before
  // the memory is released (observable via the counter; the bytes are
  // gone by the time we could look).
  TrackingGuard on;
  coro::mirror_check_forced(true);
  const std::uint64_t poisoned_before = coro::poisoned_count();
  int ran = 0;
  finish_immediately(&ran);
  coro::mirror_check_forced(false);
  EXPECT_EQ(coro::poisoned_count() - poisoned_before, 1u);
}

TEST(CoroCheck, DisabledModeRegistersNothing) {
  coro::force_enable(false);
  const Counters before = Counters::now();
  sim::Simulator sim;
  sim::Gate gate(sim);
  int resumed = 0;
  int ran = 0;
  finish_immediately(&ran);
  wait_on_gate(&gate, &resumed);
  const Counters after = Counters::now();
  EXPECT_EQ(after.created, before.created);
  EXPECT_EQ(after.destroyed, before.destroyed);
  EXPECT_EQ(after.live, before.live);
  gate.open();
  sim.run();
}

TEST(CoroCheck, FramesOutlivingDisableStillUnregister) {
  // A frame registered while tracking was on must be erased when it dies,
  // even if tracking was turned off in between — otherwise the registry
  // would report phantom leaks forever.
  coro::force_enable(true);
  const Counters before = Counters::now();
  sim::Simulator sim;
  auto gate = std::make_unique<sim::Gate>(sim);
  int resumed = 0;
  wait_on_gate(gate.get(), &resumed);
  coro::force_enable(false);
  gate.reset();
  EXPECT_EQ(Counters::now().live, before.live);
}

}  // namespace
}  // namespace apn
