#include <gtest/gtest.h>

#include "cluster/cluster.hpp"

namespace apn::core {
namespace {

using cluster::Cluster;
using units::us;

struct RdmaFixture : ::testing::Test {
  sim::Simulator sim;
  std::unique_ptr<Cluster> c;

  void SetUp() override {
    c = Cluster::make_cluster_i(sim, 2, ApenetParams{}, /*with_ib=*/false);
  }
};

TEST_F(RdmaFixture, HostPutDeliversDataEndToEnd) {
  std::vector<std::uint8_t> src(10000), dst(10000, 0);
  for (std::size_t i = 0; i < src.size(); ++i)
    src[i] = static_cast<std::uint8_t>(i * 13);

  [](Cluster* c, std::vector<std::uint8_t>* src,
     std::vector<std::uint8_t>* dst) -> sim::Coro {
    RdmaDevice& r1 = c->rdma(1);
    co_await r1.register_buffer(reinterpret_cast<std::uint64_t>(dst->data()),
                                dst->size(), MemType::kHost);
    RdmaDevice& r0 = c->rdma(0);
    r0.put(c->coord(1), reinterpret_cast<std::uint64_t>(src->data()),
           src->size(), reinterpret_cast<std::uint64_t>(dst->data()),
           MemType::kHost);
    RdmaEvent ev = co_await r1.events().pop();
    EXPECT_EQ(ev.bytes, src->size());
    EXPECT_EQ(ev.peer, c->coord(0));
  }(c.get(), &src, &dst);
  sim.run();
  EXPECT_EQ(dst, src);
}

TEST_F(RdmaFixture, GpuToGpuPutDeliversData) {
  cuda::Runtime& cu0 = c->node(0).cuda();
  cuda::Runtime& cu1 = c->node(1).cuda();
  cuda::DevPtr src = cu0.malloc_device(0, 8192);
  cuda::DevPtr dst = cu1.malloc_device(0, 8192);
  std::vector<std::uint8_t> data(8192);
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = static_cast<std::uint8_t>(i % 251);
  cu0.move_bytes(src, reinterpret_cast<std::uint64_t>(data.data()),
                 data.size());

  [](Cluster* c, cuda::DevPtr src, cuda::DevPtr dst) -> sim::Coro {
    co_await c->rdma(1).register_buffer(dst, 8192, MemType::kGpu);
    c->rdma(0).put(c->coord(1), src, 8192, dst, MemType::kGpu);
    co_await c->rdma(1).events().pop();
  }(c.get(), src, dst);
  sim.run();

  std::vector<std::uint8_t> out(8192);
  cu1.move_bytes(reinterpret_cast<std::uint64_t>(out.data()), dst, 8192);
  EXPECT_EQ(out, data);
}

TEST_F(RdmaFixture, UnregisteredDestinationIsDropped) {
  std::vector<std::uint8_t> src(256, 1), dst(256, 0);
  [](Cluster* c, std::vector<std::uint8_t>* src,
     std::vector<std::uint8_t>* dst) -> sim::Coro {
    auto p = c->rdma(0).put(
        c->coord(1), reinterpret_cast<std::uint64_t>(src->data()), 256,
        reinterpret_cast<std::uint64_t>(dst->data()), MemType::kHost);
    co_await p.tx_done->wait();
  }(c.get(), &src, &dst);
  sim.run();
  EXPECT_EQ(c->node(1).card().rx_drops(), 1u);
  EXPECT_EQ(dst[0], 0);  // nothing written
}

TEST_F(RdmaFixture, RegistrationCacheHitIsFree) {
  cuda::DevPtr buf = c->node(0).cuda().malloc_device(0, 1 << 20);
  Time first = -1, second = -1;
  [](Cluster* c, cuda::DevPtr buf, Time* first, Time* second) -> sim::Coro {
    sim::Simulator& sim = c->simulator();
    RdmaDevice& r = c->rdma(0);
    Time t0 = sim.now();
    co_await r.register_buffer(buf, 1 << 20, MemType::kGpu);
    *first = sim.now() - t0;
    t0 = sim.now();
    co_await r.register_buffer(buf, 1 << 20, MemType::kGpu);
    *second = sim.now() - t0;
  }(c.get(), buf, &first, &second);
  sim.run();
  EXPECT_GT(first, us(40));  // token retrieval + V2P programming
  EXPECT_EQ(second, 0);      // cache hit
  EXPECT_EQ(c->rdma(0).registration_cache_hits(), 1u);
  EXPECT_EQ(c->rdma(0).registration_cache_misses(), 1u);
}

TEST_F(RdmaFixture, GpuSourceMappedOnTheFlyOnFirstPut) {
  cuda::Runtime& cu0 = c->node(0).cuda();
  cuda::DevPtr src = cu0.malloc_device(0, 4096);
  std::vector<std::uint8_t> dst(4096, 0);
  EXPECT_FALSE(c->rdma(0).is_registered(src));

  [](Cluster* c, cuda::DevPtr src, std::vector<std::uint8_t>* dst)
      -> sim::Coro {
    co_await c->rdma(1).register_buffer(
        reinterpret_cast<std::uint64_t>(dst->data()), 4096, MemType::kHost);
    // kAuto: the library discovers this is device memory via UVA and maps
    // it on the fly (paper §IV-A).
    c->rdma(0).put(c->coord(1), src, 4096,
                   reinterpret_cast<std::uint64_t>(dst->data()),
                   MemType::kAuto);
    co_await c->rdma(1).events().pop();
  }(c.get(), src, &dst);
  sim.run();
  EXPECT_TRUE(c->rdma(0).is_registered(src));
}

TEST_F(RdmaFixture, DeregisterRemovesFromBufList) {
  std::vector<std::uint8_t> buf(4096);
  [](Cluster* c, std::vector<std::uint8_t>* buf) -> sim::Coro {
    co_await c->rdma(0).register_buffer(
        reinterpret_cast<std::uint64_t>(buf->data()), 4096, MemType::kHost);
  }(c.get(), &buf);
  sim.run();
  EXPECT_EQ(c->node(0).card().buffer_count(), 1u);
  c->rdma(0).deregister_buffer(reinterpret_cast<std::uint64_t>(buf.data()));
  EXPECT_EQ(c->node(0).card().buffer_count(), 0u);
  EXPECT_FALSE(
      c->rdma(0).is_registered(reinterpret_cast<std::uint64_t>(buf.data())));
}

TEST_F(RdmaFixture, MultiplePutsCompleteInOrder) {
  std::vector<std::uint8_t> dst(64 * 16, 0);
  std::vector<std::vector<std::uint8_t>> srcs;
  for (int i = 0; i < 16; ++i)
    srcs.emplace_back(64, static_cast<std::uint8_t>(i + 1));

  [](Cluster* c, std::vector<std::vector<std::uint8_t>>* srcs,
     std::vector<std::uint8_t>* dst) -> sim::Coro {
    co_await c->rdma(1).register_buffer(
        reinterpret_cast<std::uint64_t>(dst->data()), dst->size(),
        MemType::kHost);
    for (std::size_t i = 0; i < srcs->size(); ++i) {
      c->rdma(0).put(c->coord(1),
                     reinterpret_cast<std::uint64_t>((*srcs)[i].data()), 64,
                     reinterpret_cast<std::uint64_t>(dst->data()) + i * 64,
                     MemType::kHost);
    }
    for (std::size_t i = 0; i < srcs->size(); ++i)
      co_await c->rdma(1).events().pop();
  }(c.get(), &srcs, &dst);
  sim.run();
  for (int i = 0; i < 16; ++i)
    EXPECT_EQ(dst[static_cast<std::size_t>(i) * 64],
              static_cast<std::uint8_t>(i + 1));
}

TEST_F(RdmaFixture, LargeMessageFragmentsAndReassembles) {
  const std::uint64_t n = 1 << 20;  // 256 packets
  std::vector<std::uint8_t> src(n), dst(n, 0);
  for (std::size_t i = 0; i < n; ++i)
    src[i] = static_cast<std::uint8_t>((i * 2654435761u) >> 24);
  [](Cluster* c, std::vector<std::uint8_t>* src,
     std::vector<std::uint8_t>* dst, std::uint64_t n) -> sim::Coro {
    co_await c->rdma(1).register_buffer(
        reinterpret_cast<std::uint64_t>(dst->data()), n, MemType::kHost);
    c->rdma(0).put(c->coord(1), reinterpret_cast<std::uint64_t>(src->data()),
                   n, reinterpret_cast<std::uint64_t>(dst->data()),
                   MemType::kHost);
    RdmaEvent ev = co_await c->rdma(1).events().pop();
    EXPECT_EQ(ev.bytes, n);
  }(c.get(), &src, &dst, n);
  sim.run();
  EXPECT_EQ(dst, src);
  EXPECT_GE(c->node(1).card().packets_received(), 256u);
}

}  // namespace
}  // namespace apn::core
