// Golden-timing determinism regression.
//
// The simulator's contract is bit-exact (time, seq) ordering: for a fixed
// model configuration every run — traced or untraced, before or after any
// scheduler-internal refactor — must produce identical simulated-time
// results. This suite locks the paper-reproduction timings to exact
// picosecond values captured from the reference implementation, so an
// event-engine change that perturbs event order (even while keeping the
// aggregate curves plausible) fails loudly rather than silently bending
// the figures.
//
// Golden values were captured from the pre-EventNode std::function/
// priority_queue engine and must survive any future scheduler swap.
// Re-capture (by updating the constants from the printed "measured"
// values) is only legitimate when the *model* changes, never when only
// the engine does.
#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "cluster/harness.hpp"

namespace apn {
namespace {

using cluster::Cluster;

// Golden picosecond values (and event counts) captured from the reference
// engine. See the re-capture note in the file header before editing.
constexpr Time kFig3Submit = 54600000;
constexpr Time kFig3FirstReq = 56822498;
constexpr Time kFig3FirstResp = 59223820;
constexpr Time kFig3LastData = 823635392;
constexpr std::uint64_t kFig3Events = 23623;
constexpr Time kFig6Hh4k = 121488490;
constexpr Time kFig6Hh1m = 6674969896;
constexpr Time kFig6Gg64k = 934381502;
constexpr Time kFig8Gg1k = 11024418;

// ---- Fig. 3: GPU_P2P_TX v2 phase boundaries -------------------------------
//
// One 1 MB GPU-source PUT on a single Cluster I node with the TX-side
// analyzer setup of bench_fig3_bus_analysis: the three protocol phase
// boundaries (submit -> first read request -> first response -> last data
// chunk) are locked to the picosecond.
struct Fig3Phases {
  Time submit = 0;
  Time first_req = 0;
  Time first_resp = 0;
  Time last_data = 0;
  std::uint64_t events = 0;
};

Fig3Phases run_fig3() {
  sim::Simulator sim;
  core::ApenetParams p;
  p.flush_at_switch = true;
  p.p2p_tx_version = core::P2pTxVersion::kV2;
  p.p2p_prefetch_window = 32 * 1024;
  auto c = Cluster::make_cluster_i(sim, 1, p, false);
  cluster::Node& n = c->node(0);

  pcie::BusAnalyzer on_card, on_gpu;
  n.fabric().attach_analyzer(n.card_pcie_node(), on_card);
  n.fabric().attach_analyzer(n.gpu_pcie_node(0), on_gpu);

  const std::uint64_t kMsg = 1ull << 20;
  auto ph = std::make_shared<Fig3Phases>();
  [](Cluster* c, std::uint64_t msg, std::shared_ptr<Fig3Phases> ph)
      -> sim::Coro {
    core::RdmaDevice& rdma = c->rdma(0);
    cuda::DevPtr src = c->node(0).cuda().malloc_device(0, msg);
    co_await rdma.register_buffer(src, msg, core::MemType::kGpu);
    ph->submit = c->simulator().now();
    auto put = rdma.put(c->coord(0), src, msg, 0x10000, core::MemType::kGpu,
                        false);
    co_await put.tx_done->wait();
  }(c.get(), kMsg, ph);
  sim.run();

  Fig3Phases r = *ph;
  r.first_req = -1;
  r.first_resp = -1;
  r.last_data = -1;
  for (const auto& ev : on_gpu.events()) {
    if (ev.kind != pcie::BusEvent::Kind::kWrite) continue;
    if (ev.downstream) {
      if (r.first_req < 0) r.first_req = ev.time;
    } else if (r.first_resp < 0) {
      r.first_resp = ev.time;
    }
  }
  for (const auto& ev : on_card.events()) {
    if (ev.kind == pcie::BusEvent::Kind::kWrite && ev.downstream)
      r.last_data = ev.time;
  }
  r.events = sim.events_processed();
  return r;
}

TEST(GoldenTiming, Fig3PhaseBoundaries) {
  Fig3Phases r = run_fig3();
  // Print the measured values so a legitimate model change can re-capture.
  ::testing::Test::RecordProperty("submit", static_cast<int64_t>(r.submit));
  std::printf("fig3 golden: submit=%lld first_req=%lld first_resp=%lld "
              "last_data=%lld events=%llu\n",
              static_cast<long long>(r.submit),
              static_cast<long long>(r.first_req),
              static_cast<long long>(r.first_resp),
              static_cast<long long>(r.last_data),
              static_cast<unsigned long long>(r.events));
  EXPECT_EQ(r.submit, kFig3Submit);
  EXPECT_EQ(r.first_req, kFig3FirstReq);
  EXPECT_EQ(r.first_resp, kFig3FirstResp);
  EXPECT_EQ(r.last_data, kFig3LastData);
  EXPECT_EQ(r.events, kFig3Events);
}

// ---- Fig. 6: two-node bandwidth plateau timings ---------------------------
//
// Elapsed simulated time of the twonode_bandwidth measurement for one
// small-message point and one plateau point, H-H and G-G.
Time run_fig6(core::MemType src, core::MemType dst, std::uint64_t size,
              int reps) {
  sim::Simulator sim;
  auto c = Cluster::make_cluster_i(sim, 2, core::ApenetParams{}, false);
  cluster::TwoNodeOptions opt;
  opt.src_type = src;
  opt.dst_type = dst;
  auto r = cluster::twonode_bandwidth(*c, size, reps, opt);
  return r.elapsed;
}

TEST(GoldenTiming, Fig6PlateauTimings) {
  const Time hh_4k = run_fig6(core::MemType::kHost, core::MemType::kHost,
                              4096, 32);
  const Time hh_1m = run_fig6(core::MemType::kHost, core::MemType::kHost,
                              1ull << 20, 8);
  const Time gg_64k = run_fig6(core::MemType::kGpu, core::MemType::kGpu,
                               65536, 16);
  std::printf("fig6 golden: hh_4k=%lld hh_1m=%lld gg_64k=%lld\n",
              static_cast<long long>(hh_4k), static_cast<long long>(hh_1m),
              static_cast<long long>(gg_64k));
  EXPECT_EQ(hh_4k, kFig6Hh4k);
  EXPECT_EQ(hh_1m, kFig6Hh1m);
  EXPECT_EQ(gg_64k, kFig6Gg64k);
}

// ---- Fig. 8: ping-pong latency ------------------------------------------
TEST(GoldenTiming, Fig8PingPongLatency) {
  sim::Simulator sim;
  auto c = Cluster::make_cluster_i(sim, 2, core::ApenetParams{}, false);
  cluster::TwoNodeOptions opt;
  opt.src_type = core::MemType::kGpu;
  opt.dst_type = core::MemType::kGpu;
  const Time half_rtt = cluster::pingpong_latency(*c, 1024, 16, opt);
  std::printf("fig8 golden: gg_1k_half_rtt=%lld\n",
              static_cast<long long>(half_rtt));
  EXPECT_EQ(half_rtt, kFig8Gg1k);
}

}  // namespace
}  // namespace apn
