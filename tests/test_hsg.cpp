#include <gtest/gtest.h>

#include "apps/hsg/runner.hpp"

namespace apn::apps::hsg {
namespace {

using cluster::Cluster;

// ---------------------------------------------------------------------------
// Lattice physics
// ---------------------------------------------------------------------------

TEST(HsgLattice, SpinsAreUnitVectors) {
  for (int i = 0; i < 100; ++i) {
    Spin s = deterministic_spin(42, i, i * 3, i * 7);
    double norm = static_cast<double>(s.x) * s.x +
                  static_cast<double>(s.y) * s.y +
                  static_cast<double>(s.z) * s.z;
    EXPECT_NEAR(norm, 1.0, 1e-5);
  }
}

TEST(HsgLattice, OverRelaxationPreservesEnergyExactly) {
  // Over-relaxation is micro-canonical: E is invariant per sweep.
  ReferenceLattice lat(8);
  lat.randomize(7);
  double e0 = lat.energy();
  for (int i = 0; i < 10; ++i) lat.sweep();
  double e1 = lat.energy();
  EXPECT_NEAR(e1, e0, std::abs(e0) * 1e-4 + 1e-3);
}

TEST(HsgLattice, SweepChangesSpins) {
  ReferenceLattice lat(8);
  lat.randomize(7);
  Spin before = lat.at(3, 4, 5);
  lat.sweep();
  Spin after = lat.at(3, 4, 5);
  EXPECT_TRUE(before.x != after.x || before.y != after.y ||
              before.z != after.z);
}

TEST(HsgLattice, SpinNormPreservedBySweeps) {
  ReferenceLattice lat(6);
  lat.randomize(11);
  for (int i = 0; i < 5; ++i) lat.sweep();
  for (int z = 0; z < 6; ++z)
    for (int y = 0; y < 6; ++y)
      for (int x = 0; x < 6; ++x) {
        const Spin& s = lat.at(z, y, x);
        double n = static_cast<double>(s.x) * s.x +
                   static_cast<double>(s.y) * s.y +
                   static_cast<double>(s.z) * s.z;
        ASSERT_NEAR(n, 1.0, 1e-3);
      }
}

TEST(HsgSlab, PackUnpackRoundTrip) {
  Slab slab(8, 4, 0);
  slab.randomize(3);
  std::vector<std::uint8_t> buf;
  slab.pack_parity_plane(2, 0, buf);
  EXPECT_EQ(buf.size(), slab.parity_plane_bytes());
  Slab other(8, 4, 0);
  other.unpack_parity_plane(2, 0, buf);
  for (int y = 0; y < 8; ++y)
    for (int x = 0; x < 8; ++x) {
      const Spin& a = slab.at(2, y, x);
      const Spin& b = other.at(2, y, x);
      if ((0 + 1 + y + x) % 2 == 0) {  // parity of plane z=2 (global z=1)
        EXPECT_EQ(a.x, b.x);
        EXPECT_EQ(a.y, b.y);
      }
    }
}

TEST(HsgSlab, DecompositionMatchesReferenceAfterWarmup) {
  // Two slabs with functionally exchanged halos must evolve exactly like
  // the single reference lattice.
  const int L = 8;
  ReferenceLattice ref(L);
  ref.randomize(5);

  Slab s0(L, L / 2, 0), s1(L, L / 2, L / 2);
  s0.randomize(5);
  s1.randomize(5);
  std::vector<std::uint8_t> buf;
  auto exchange = [&](int parity) {
    // halo plane 0 of s0 <- plane local_z of s1 (global wrap), etc.
    s1.pack_parity_plane(L / 2, parity, buf);
    s0.unpack_parity_plane(0, parity, buf);
    s1.pack_parity_plane(1, parity, buf);
    s0.unpack_parity_plane(L / 2 + 1, parity, buf);
    s0.pack_parity_plane(L / 2, parity, buf);
    s1.unpack_parity_plane(0, parity, buf);
    s0.pack_parity_plane(1, parity, buf);
    s1.unpack_parity_plane(L / 2 + 1, parity, buf);
  };
  exchange(0);
  exchange(1);

  for (int step = 0; step < 3; ++step) {
    ref.sweep();
    for (int parity = 0; parity < 2; ++parity) {
      s0.update_interior(parity);
      s1.update_interior(parity);
      exchange(parity);
    }
  }
  for (int z = 1; z <= L / 2; ++z)
    for (int y = 0; y < L; ++y)
      for (int x = 0; x < L; ++x) {
        ASSERT_EQ(s0.at(z, y, x).x, ref.at(z - 1, y, x).x)
            << "site " << z << "," << y << "," << x;
        ASSERT_EQ(s1.at(z, y, x).x, ref.at(L / 2 + z - 1, y, x).x);
      }
}

// ---------------------------------------------------------------------------
// Distributed runner (full stack, functional halos)
// ---------------------------------------------------------------------------

TEST(HsgRun, SingleNodeEnergyConserved) {
  sim::Simulator sim;
  auto c = Cluster::make_cluster_i(sim, 1, core::ApenetParams{}, false);
  HsgConfig cfg;
  cfg.L = 8;
  cfg.steps = 3;
  cfg.functional = true;
  HsgRun run(*c, cfg);
  HsgMetrics m = run.run();
  EXPECT_NEAR(m.energy_final, m.energy_initial,
              std::abs(m.energy_initial) * 1e-4 + 1e-3);
  EXPECT_GT(m.wall, 0);
}

class HsgModeTest : public ::testing::TestWithParam<CommMode> {};

TEST_P(HsgModeTest, TwoNodeEnergyConservedThroughFullStack) {
  sim::Simulator sim;
  std::unique_ptr<Cluster> c =
      Cluster::make_cluster_i(sim, 2, core::ApenetParams{},
                              GetParam() == CommMode::kIb);
  HsgConfig cfg;
  cfg.L = 8;
  cfg.steps = 2;
  cfg.mode = GetParam();
  cfg.functional = true;
  HsgRun run(*c, cfg);
  HsgMetrics m = run.run();
  EXPECT_NEAR(m.energy_final, m.energy_initial,
              std::abs(m.energy_initial) * 1e-4 + 1e-3);
}

TEST_P(HsgModeTest, TwoNodeMatchesReferenceSiteExact) {
  sim::Simulator sim;
  std::unique_ptr<Cluster> c =
      Cluster::make_cluster_i(sim, 2, core::ApenetParams{},
                              GetParam() == CommMode::kIb);
  HsgConfig cfg;
  cfg.L = 8;
  cfg.steps = 2;
  cfg.mode = GetParam();
  cfg.functional = true;
  HsgRun run(*c, cfg);
  run.run();

  ReferenceLattice ref(cfg.L);
  ref.randomize(cfg.seed);
  for (int i = 0; i < cfg.steps; ++i) ref.sweep();
  for (int rank = 0; rank < 2; ++rank) {
    const Slab& slab = run.slab(rank);
    for (int z = 1; z <= slab.local_z(); ++z)
      for (int y = 0; y < cfg.L; ++y)
        for (int x = 0; x < cfg.L; ++x) {
          ASSERT_EQ(slab.at(z, y, x).x,
                    ref.at(slab.z_offset() + z - 1, y, x).x)
              << "rank " << rank << " site " << z << "," << y << "," << x;
        }
  }
}

INSTANTIATE_TEST_SUITE_P(AllModes, HsgModeTest,
                         ::testing::Values(CommMode::kP2pOn,
                                           CommMode::kP2pRx,
                                           CommMode::kP2pOff, CommMode::kIb),
                         [](const auto& info) {
                           switch (info.param) {
                             case CommMode::kP2pOn: return "P2pOn";
                             case CommMode::kP2pRx: return "P2pRx";
                             case CommMode::kP2pOff: return "P2pOff";
                             case CommMode::kIb: return "Ib";
                           }
                           return "unknown";
                         });

TEST(HsgRun, FourNodeFunctionalRun) {
  sim::Simulator sim;
  auto c = Cluster::make_cluster_i(sim, 4, core::ApenetParams{}, false);
  HsgConfig cfg;
  cfg.L = 8;
  cfg.steps = 2;
  cfg.mode = CommMode::kP2pOn;
  cfg.functional = true;
  HsgRun run(*c, cfg);
  HsgMetrics m = run.run();
  EXPECT_NEAR(m.energy_final, m.energy_initial,
              std::abs(m.energy_initial) * 1e-4 + 1e-3);
}

TEST(HsgRun, TimingModeP2pBeatsStagingAtL64) {
  auto ttot = [](CommMode mode) {
    sim::Simulator sim;
    auto c = Cluster::make_cluster_i(sim, 2, core::ApenetParams{}, false);
    HsgConfig cfg;
    cfg.L = 64;
    cfg.steps = 2;
    cfg.mode = mode;
    cfg.functional = false;
    HsgRun run(*c, cfg);
    return run.run().tnet_ps;
  };
  double on = ttot(CommMode::kP2pOn);
  double off = ttot(CommMode::kP2pOff);
  // Small halos (24 KB planes): peer-to-peer must beat staging.
  EXPECT_LT(on, off);
}

TEST(HsgRun, RejectsBadGeometry) {
  sim::Simulator sim;
  auto c = Cluster::make_cluster_i(sim, 2, core::ApenetParams{}, false);
  HsgConfig cfg;
  cfg.L = 7;  // odd
  EXPECT_THROW(HsgRun(*c, cfg), std::invalid_argument);
  cfg.L = 10;  // not divisible by np=2... it is; use np mismatch instead
  cfg.L = 6;   // 6 % 2 == 0 fine; use L=4 with np=8 in another cluster
  SUCCEED();
}

}  // namespace
}  // namespace apn::apps::hsg
