// Cross-module integration: full data paths through PCIe + GPU + card +
// torus + RDMA API, exercised in combinations the unit tests don't cover.
#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "cluster/harness.hpp"
#include "common/rng.hpp"

namespace apn {
namespace {

using cluster::Cluster;
using core::ApenetParams;
using core::MemType;
using units::us;

TEST(EndToEnd, GpuToGpuAcrossThreeHopsPreservesData) {
  sim::Simulator sim;
  auto c = Cluster::make_cluster_i(sim, 8, ApenetParams{}, false);
  int far = c->shape().index({2, 1, 0});
  cuda::Runtime& cu0 = c->node(0).cuda();
  cuda::Runtime& cuF = c->node(far).cuda();
  const std::uint64_t n = 256 * 1024;
  cuda::DevPtr src = cu0.malloc_device(0, n);
  cuda::DevPtr dst = cuF.malloc_device(0, n);
  std::vector<std::uint8_t> data(n);
  Rng rng(2026);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_u64());
  cu0.move_bytes(src, reinterpret_cast<std::uint64_t>(data.data()), n);

  [](Cluster* c, int far, cuda::DevPtr src, cuda::DevPtr dst,
     std::uint64_t n) -> sim::Coro {
    co_await c->rdma(far).register_buffer(dst, n, MemType::kGpu);
    c->rdma(0).put(c->coord(far), src, n, dst, MemType::kGpu);
    co_await c->rdma(far).events().pop();
  }(c.get(), far, src, dst, n);
  sim.run();

  std::vector<std::uint8_t> out(n);
  cuF.move_bytes(reinterpret_cast<std::uint64_t>(out.data()), dst, n);
  EXPECT_EQ(out, data);
}

TEST(EndToEnd, BidirectionalTrafficBothDirectionsComplete) {
  sim::Simulator sim;
  auto c = Cluster::make_cluster_i(sim, 2, ApenetParams{}, false);
  std::vector<std::uint8_t> b0(65536, 0), b1(65536, 0);
  auto done = std::make_shared<int>(0);
  for (int me = 0; me < 2; ++me) {
    [](Cluster* c, int me, std::vector<std::uint8_t>* mine,
       std::vector<std::uint8_t>* theirs, std::shared_ptr<int> done)
        -> sim::Coro {
      co_await c->rdma(me).register_buffer(
          reinterpret_cast<std::uint64_t>(mine->data()), mine->size(),
          MemType::kHost);
      std::vector<std::uint8_t> src(65536,
                                    static_cast<std::uint8_t>(me + 10));
      // Give the peer a moment to register.
      co_await sim::delay(c->simulator(), us(100));
      c->rdma(me).put(c->coord(1 - me),
                      reinterpret_cast<std::uint64_t>(src.data()), 65536,
                      reinterpret_cast<std::uint64_t>(theirs->data()),
                      MemType::kHost);
      co_await c->rdma(me).events().pop();
      ++*done;
    }(c.get(), me, me == 0 ? &b0 : &b1, me == 0 ? &b1 : &b0, done);
  }
  sim.run();
  EXPECT_EQ(*done, 2);
  EXPECT_EQ(b0[100], 11);  // written by node 1
  EXPECT_EQ(b1[100], 10);  // written by node 0
}

TEST(EndToEnd, MixedHostAndGpuTrafficInterleaves) {
  sim::Simulator sim;
  auto c = Cluster::make_cluster_i(sim, 2, ApenetParams{}, false);
  const std::uint64_t n = 32768;
  cuda::DevPtr gdst = c->node(1).cuda().malloc_device(0, n);
  std::vector<std::uint8_t> hdst(n, 0);
  cuda::DevPtr gsrc = c->node(0).cuda().malloc_device(0, n);
  std::vector<std::uint8_t> hsrc(n, 0x21), gdata(n, 0x42);
  c->node(0).cuda().move_bytes(
      gsrc, reinterpret_cast<std::uint64_t>(gdata.data()), n);

  [](Cluster* c, cuda::DevPtr gsrc, cuda::DevPtr gdst,
     std::vector<std::uint8_t>* hsrc, std::vector<std::uint8_t>* hdst,
     std::uint64_t n) -> sim::Coro {
    co_await c->rdma(1).register_buffer(gdst, n, MemType::kGpu);
    co_await c->rdma(1).register_buffer(
        reinterpret_cast<std::uint64_t>(hdst->data()), n, MemType::kHost);
    // Interleave 8 GPU-source and 8 host-source puts.
    for (int i = 0; i < 8; ++i) {
      c->rdma(0).put(c->coord(1), gsrc, n / 8, gdst + (n / 8) * i,
                     MemType::kGpu);
      c->rdma(0).put(c->coord(1),
                     reinterpret_cast<std::uint64_t>(hsrc->data()), n / 8,
                     reinterpret_cast<std::uint64_t>(hdst->data()) +
                         (n / 8) * i,
                     MemType::kHost);
    }
    for (int i = 0; i < 16; ++i) co_await c->rdma(1).events().pop();
  }(c.get(), gsrc, gdst, &hsrc, &hdst, n);
  sim.run();

  std::vector<std::uint8_t> gout(n);
  c->node(1).cuda().move_bytes(reinterpret_cast<std::uint64_t>(gout.data()),
                               gdst, n);
  for (std::uint64_t i = 0; i < n; ++i) {
    ASSERT_EQ(gout[i], 0x42);
    ASSERT_EQ(hdst[i], 0x21);
  }
}

TEST(EndToEnd, SimulationIsDeterministic) {
  auto run_once = [] {
    sim::Simulator sim;
    auto c = Cluster::make_cluster_i(sim, 2, ApenetParams{}, false);
    auto bw = cluster::twonode_bandwidth(*c, 65536, 16,
                                         cluster::TwoNodeOptions{});
    return std::make_pair(bw.elapsed, sim.events_processed());
  };
  auto a = run_once();
  auto b = run_once();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

TEST(EndToEnd, BackToBackMessagesKeepFifoOrder) {
  // Messages between the same pair must complete in submission order
  // (APEnet+ static routing is in-order).
  sim::Simulator sim;
  auto c = Cluster::make_cluster_i(sim, 2, ApenetParams{}, false);
  std::vector<std::uint8_t> dst(8, 0);
  std::vector<std::uint64_t> order;
  [](Cluster* c, std::vector<std::uint8_t>* dst,
     std::vector<std::uint64_t>* order) -> sim::Coro {
    co_await c->rdma(1).register_buffer(
        reinterpret_cast<std::uint64_t>(dst->data()), 8, MemType::kHost);
    std::vector<std::vector<std::uint8_t>> srcs;
    for (int i = 0; i < 10; ++i)
      srcs.emplace_back(8, static_cast<std::uint8_t>(i));
    std::vector<std::uint64_t> ids;
    for (int i = 0; i < 10; ++i) {
      auto p = c->rdma(0).put(
          c->coord(1), reinterpret_cast<std::uint64_t>(srcs[i].data()), 8,
          reinterpret_cast<std::uint64_t>(dst->data()), MemType::kHost);
      ids.push_back(p.msg_id);
    }
    for (int i = 0; i < 10; ++i) {
      core::RdmaEvent ev = co_await c->rdma(1).events().pop();
      order->push_back(ev.msg_id);
    }
    EXPECT_EQ(*order, ids);
  }(c.get(), &dst, &order);
  sim.run();
  EXPECT_EQ(dst[0], 9);  // last writer wins
}

}  // namespace
}  // namespace apn
