#include <gtest/gtest.h>

#include "common/table.hpp"

namespace apn {
namespace {

TEST(Strf, FormatsLikePrintf) {
  EXPECT_EQ(strf("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(strf("%.2f", 3.14159), "3.14");
  EXPECT_EQ(strf("empty"), "empty");
}

TEST(SizeLabel, PowersAndOddSizes) {
  EXPECT_EQ(size_label(32), "32");
  EXPECT_EQ(size_label(1024), "1K");
  EXPECT_EQ(size_label(4096), "4K");
  EXPECT_EQ(size_label(128 * 1024), "128K");
  EXPECT_EQ(size_label(1 << 20), "1M");
  EXPECT_EQ(size_label(4ull << 20), "4M");
  EXPECT_EQ(size_label(1000), "1000");
  EXPECT_EQ(size_label(1536), "1536");
}

TEST(TextTable, AlignsAndPrints) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "10000"});
  // Render to a memory stream via tmpfile.
  std::FILE* f = std::tmpfile();
  ASSERT_NE(f, nullptr);
  t.print(f);
  std::rewind(f);
  char buf[512] = {0};
  std::size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  std::string out(buf, n);
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("10000"), std::string::npos);
  EXPECT_NE(out.find("|----"), std::string::npos);
}

TEST(TextTable, ShortRowsPadded) {
  TextTable t({"a", "b", "c"});
  t.add_row({"only"});
  std::FILE* f = std::tmpfile();
  ASSERT_NE(f, nullptr);
  t.print(f);
  std::fclose(f);
  SUCCEED();  // must not crash on missing cells
}

}  // namespace
}  // namespace apn
