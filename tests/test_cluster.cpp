#include <gtest/gtest.h>

#include "cluster/cluster.hpp"

namespace apn::cluster {
namespace {

TEST(ClusterPresets, ClusterIShapes) {
  sim::Simulator sim;
  auto c8 = Cluster::make_cluster_i(sim, 8);
  EXPECT_EQ(c8->size(), 8);
  EXPECT_TRUE(c8->has_apenet());
  EXPECT_TRUE(c8->has_mpi());
  EXPECT_EQ(c8->node(0).gpu_count(), 1);
  EXPECT_EQ(c8->node(0).gpu(0).arch().mem_bytes, 3ull << 30);

  sim::Simulator sim2;
  auto c2 = Cluster::make_cluster_i(sim2, 2);
  EXPECT_EQ(c2->shape().nx, 2);
  EXPECT_EQ(c2->shape().ny, 1);

  sim::Simulator sim3;
  EXPECT_THROW(Cluster::make_cluster_i(sim3, 5), std::invalid_argument);
}

TEST(ClusterPresets, ClusterIIHasTwoGpusNoApenet) {
  sim::Simulator sim;
  auto c = Cluster::make_cluster_ii(sim, 12);
  EXPECT_EQ(c->size(), 12);
  EXPECT_FALSE(c->has_apenet());
  EXPECT_TRUE(c->has_mpi());
  EXPECT_EQ(c->node(0).gpu_count(), 2);
  EXPECT_EQ(c->node(3).gpu(1).arch().name, "Fermi C2075");
}

TEST(ClusterPresets, ClusterIUsesX4IbSlot) {
  // Paper: ConnectX-2 "plugged in a PCIe X4 slot (due to motherboard
  // constraints)" on Cluster I.
  sim::Simulator sim;
  auto c = Cluster::make_cluster_i(sim, 2);
  EXPECT_TRUE(c->node(0).has_ib());
  // Indirect check: the cluster builds and both NICs coexist on the PLX.
  EXPECT_TRUE(c->node(0).has_apenet());
}

TEST(Node, FabricRoutesGpuAndCardMmio) {
  sim::Simulator sim;
  auto c = Cluster::make_cluster_i(sim, 1, core::ApenetParams{}, false);
  Node& n = c->node(0);
  // GPU MMIO routes to the GPU, card MMIO to the card, anything else to
  // host memory.
  EXPECT_EQ(n.fabric().route(n.gpu(0).mailbox_addr()),
            static_cast<pcie::Device*>(&n.gpu(0)));
  EXPECT_EQ(n.fabric().route(n.card().gpu_landing_addr()),
            static_cast<pcie::Device*>(&n.card()));
  EXPECT_EQ(n.fabric().route(0x7000),
            static_cast<pcie::Device*>(&n.hostmem()));
}

TEST(Node, SeparateNodesHaveSeparateFabrics) {
  sim::Simulator sim;
  auto c = Cluster::make_cluster_i(sim, 2, core::ApenetParams{}, false);
  // Same-valued UVA pointers on different nodes are independent.
  cuda::DevPtr a = c->node(0).cuda().malloc_device(0, 4096);
  cuda::DevPtr b = c->node(1).cuda().malloc_device(0, 4096);
  EXPECT_EQ(a, b);  // identical allocation sequence => identical UVA
  std::vector<std::uint8_t> d0(16, 1), d1(16, 2), out(16);
  c->node(0).cuda().move_bytes(a, reinterpret_cast<std::uint64_t>(d0.data()),
                               16);
  c->node(1).cuda().move_bytes(b, reinterpret_cast<std::uint64_t>(d1.data()),
                               16);
  c->node(0).cuda().move_bytes(reinterpret_cast<std::uint64_t>(out.data()),
                               a, 16);
  EXPECT_EQ(out[0], 1);
  c->node(1).cuda().move_bytes(reinterpret_cast<std::uint64_t>(out.data()),
                               b, 16);
  EXPECT_EQ(out[0], 2);
}

TEST(Node, CardCoordinatesMatchTorusPosition) {
  sim::Simulator sim;
  auto c = Cluster::make_cluster_i(sim, 8, core::ApenetParams{}, false);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(c->node(i).card().coord(), c->shape().coord(i));
  }
}

}  // namespace
}  // namespace apn::cluster
