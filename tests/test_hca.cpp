#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "ib/hca.hpp"

namespace apn::ib {
namespace {

using cluster::Cluster;
using units::us;

struct IbFixture : ::testing::Test {
  sim::Simulator sim;
  std::unique_ptr<Cluster> c;

  void SetUp() override { c = Cluster::make_cluster_ii(sim, 2, /*with_mpi=*/false); }
  Hca& hca(int i) { return c->node(i).hca(); }
};

TEST_F(IbFixture, InlineSendDeliversPayload) {
  std::vector<std::uint8_t> payload(500);
  for (std::size_t i = 0; i < payload.size(); ++i)
    payload[i] = static_cast<std::uint8_t>(i);
  hca(0).post_send_inline(1, payload, 77);
  IbRecvEvent got;
  [](Hca& h, IbRecvEvent* out) -> sim::Coro {
    *out = co_await h.recv_events().pop();
  }(hca(1), &got);
  sim.run();
  EXPECT_EQ(got.src_rank, 0);
  EXPECT_EQ(got.wr_id, 77u);
  EXPECT_EQ(got.bytes, 500u);
  EXPECT_EQ(got.inline_data, payload);
}

TEST_F(IbFixture, RdmaWriteLandsInPinnedMemory) {
  std::vector<std::uint8_t> src(8192), dst(8192, 0);
  for (std::size_t i = 0; i < src.size(); ++i)
    src[i] = static_cast<std::uint8_t>(i * 3);
  c->node(0).hostmem().pin(src.data(), src.size());
  c->node(1).hostmem().pin(dst.data(), dst.size());
  bool sent = false;
  hca(0).post_send(1, reinterpret_cast<std::uint64_t>(src.data()), 8192,
                   reinterpret_cast<std::uint64_t>(dst.data()), 42, true,
                   [&] { sent = true; });
  IbRecvEvent got;
  [](Hca& h, IbRecvEvent* out) -> sim::Coro {
    *out = co_await h.recv_events().pop();
  }(hca(1), &got);
  sim.run();
  EXPECT_TRUE(sent);
  EXPECT_EQ(got.wr_id, 42u);
  EXPECT_EQ(dst, src);
}

TEST_F(IbFixture, LargeTransferBandwidthNearLinkRate) {
  // x8 slot: DMA-read window and QDR wire allow ~3 GB/s.
  const std::uint64_t total = 8ull << 20;
  std::vector<std::uint8_t> dst(1 << 20);
  c->node(1).hostmem().pin(dst.data(), dst.size());
  auto t = std::make_shared<std::pair<Time, Time>>(0, 0);
  const int count = 8;
  t->first = sim.now();
  for (int i = 0; i < count; ++i)
    hca(0).post_send(1, 0x4000, 1 << 20,
                     reinterpret_cast<std::uint64_t>(dst.data()),
                     static_cast<std::uint64_t>(i), false);
  [](Hca& h, int count, std::shared_ptr<std::pair<Time, Time>> t,
     sim::Simulator* sim) -> sim::Coro {
    for (int i = 0; i < count; ++i) co_await h.recv_events().pop();
    t->second = sim->now();
  }(hca(1), count, t, &sim);
  sim.run();
  double mbps = units::bandwidth_MBps(Bytes(total), t->second - t->first);
  EXPECT_GT(mbps, 2500.0);
  EXPECT_LT(mbps, 3700.0);
}

TEST_F(IbFixture, SmallMessageLatencyMicroseconds) {
  auto t0 = std::make_shared<Time>(0);
  auto t1 = std::make_shared<Time>(0);
  *t0 = sim.now();
  hca(0).post_send_inline(1, std::vector<std::uint8_t>(32), 1);
  [](Hca& h, std::shared_ptr<Time> t, sim::Simulator* sim) -> sim::Coro {
    co_await h.recv_events().pop();
    *t = sim->now();
  }(hca(1), t1, &sim);
  sim.run();
  Time lat = *t1 - *t0;
  // Verbs-level one-way: a couple of microseconds.
  EXPECT_GT(lat, us(1.0));
  EXPECT_LT(lat, us(4.0));
}

TEST(IbSlotWidth, X4SlotHalvesBandwidth) {
  auto measure = [](pcie::LinkParams slot) {
    sim::Simulator sim;
    cluster::NodeConfig cfg;
    cfg.gpus = {gpu::fermi_c2050()};
    cfg.has_apenet = false;
    cfg.has_ib = true;
    cfg.mpi_ranks = false;
    cfg.ib_slot = slot;
    Cluster c(sim, core::TorusShape{2, 1, 1}, cfg);
    std::vector<std::uint8_t> dst(1 << 20);
    c.node(1).hostmem().pin(dst.data(), dst.size());
    auto t = std::make_shared<Time>(0);
    const int count = 8;
    for (int i = 0; i < count; ++i)
      c.node(0).hca().post_send(1, 0x4000, 1 << 20,
                                reinterpret_cast<std::uint64_t>(dst.data()),
                                static_cast<std::uint64_t>(i), false);
    [](Hca& h, int count, std::shared_ptr<Time> t,
       sim::Simulator* sim) -> sim::Coro {
      for (int i = 0; i < count; ++i) co_await h.recv_events().pop();
      *t = sim->now();
    }(c.node(1).hca(), count, t, &sim);
    sim.run();
    return units::bandwidth_MBps(Bytes(count * (1ull << 20)), *t);
  };
  double x8 = measure(pcie::gen2_x8());
  double x4 = measure(pcie::gen2_x4());
  EXPECT_LT(x4, x8 * 0.7);
  EXPECT_GT(x4, 1200.0);  // paper-era x4 IB ~1.5-1.8 GB/s
}

TEST_F(IbFixture, InterleavedEagerMessagesFromTwoSourcesReassemble) {
  auto c3 = Cluster::make_cluster_ii(sim, 3, /*with_mpi=*/false);
  std::vector<std::uint8_t> a(9000, 0xAA), b(9000, 0xBB);
  c3->node(0).hca().post_send_inline(2, a, 1);
  c3->node(1).hca().post_send_inline(2, b, 2);
  std::vector<IbRecvEvent> got;
  [](Hca& h, std::vector<IbRecvEvent>* got) -> sim::Coro {
    got->push_back(co_await h.recv_events().pop());
    got->push_back(co_await h.recv_events().pop());
  }(c3->node(2).hca(), &got);
  sim.run();
  ASSERT_EQ(got.size(), 2u);
  for (const auto& ev : got) {
    ASSERT_EQ(ev.inline_data.size(), 9000u);
    std::uint8_t expect = ev.src_rank == 0 ? 0xAA : 0xBB;
    for (auto v : ev.inline_data) ASSERT_EQ(v, expect);
  }
}

}  // namespace
}  // namespace apn::ib
