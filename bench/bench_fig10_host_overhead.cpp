// Reproduces Fig. 10: host overhead (the LogP `o` parameter) estimated
// from the sender-side run time per message of a windowed bandwidth test,
// for H-H, G-G P2P=ON, and G-G P2P=OFF. Each cell is an independent
// simulation, declared as a runner point and executed concurrently under
// --jobs.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace apn;
  using core::MemType;
  bench::Runner runner(argc, argv);
  bench::print_header("FIG 10", "Host overhead (LogP o) vs message size");

  struct Combo {
    const char* label;
    bool gpu;
    bool staged;
  };
  const Combo combos[] = {
      {"H-H", false, false},
      {"G-G-p2p-on", true, false},
      {"G-G-p2p-off", true, true},
  };

  const auto sizes = bench::sweep_32B(4096);
  std::vector<std::array<bench::Cell, 3>> results(sizes.size());

  for (std::size_t si = 0; si < sizes.size(); ++si) {
    const std::uint64_t size = sizes[si];
    for (std::size_t ci = 0; ci < 3; ++ci) {
      const Combo combo = combos[ci];
      runner.add("fig10/" + std::string(combo.label) + "/" +
                     size_label(size),
                 [&results, si, ci, combo, size] {
                   sim::Simulator sim;
                   auto c = cluster::Cluster::make_cluster_i(
                       sim, 2, hw::params(), false);
                   cluster::TwoNodeOptions o;
                   if (combo.gpu) {
                     o.src_type = MemType::kGpu;
                     o.dst_type = MemType::kGpu;
                   }
                   o.staged_tx = combo.staged;
                   double us = units::to_us(
                       cluster::host_overhead(*c, size, 64, o));
                   results[si][ci] = us;
                   bench::JsonSink::global().record(
                       "fig10",
                       std::string(combo.label) + "/" + size_label(size), us);
                 });
    }
  }
  runner.run();

  TextTable t({"Msg size", "H-H APEnet+", "G-G P2P=ON", "G-G P2P=OFF"});
  for (std::size_t si = 0; si < sizes.size(); ++si) {
    t.add_row({size_label(sizes[si]), results[si][0].str("%6.2f"),
               results[si][1].str("%6.2f"), results[si][2].str("%6.2f")});
  }
  t.print();
  std::printf(
      "\nus per message. Paper's shape: ~5 us H-H; +3 us for G-G P2P "
      "(GPU_P2P_TX overhead); +12 us for staging, ~10 of which are the "
      "fully synchronous cudaMemcpy D2H that cannot overlap.\n");
  return 0;
}
