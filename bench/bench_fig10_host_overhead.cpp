// Reproduces Fig. 10: host overhead (the LogP `o` parameter) estimated
// from the sender-side run time per message of a windowed bandwidth test,
// for H-H, G-G P2P=ON, and G-G P2P=OFF.
#include "bench_common.hpp"

int main() {
  using namespace apn;
  using core::MemType;
  bench::print_header("FIG 10", "Host overhead (LogP o) vs message size");

  TextTable t({"Msg size", "H-H APEnet+", "G-G P2P=ON", "G-G P2P=OFF"});
  for (std::uint64_t size : bench::sweep_32B(4096)) {
    double hh, gg_on, gg_off;
    {
      sim::Simulator sim;
      auto c = cluster::Cluster::make_cluster_i(sim, 2, core::ApenetParams{},
                                                false);
      hh = units::to_us(
          cluster::host_overhead(*c, size, 64, cluster::TwoNodeOptions{}));
    }
    {
      sim::Simulator sim;
      auto c = cluster::Cluster::make_cluster_i(sim, 2, core::ApenetParams{},
                                                false);
      cluster::TwoNodeOptions o;
      o.src_type = MemType::kGpu;
      o.dst_type = MemType::kGpu;
      gg_on = units::to_us(cluster::host_overhead(*c, size, 64, o));
    }
    {
      sim::Simulator sim;
      auto c = cluster::Cluster::make_cluster_i(sim, 2, core::ApenetParams{},
                                                false);
      cluster::TwoNodeOptions o;
      o.src_type = MemType::kGpu;
      o.dst_type = MemType::kGpu;
      o.staged_tx = true;
      gg_off = units::to_us(cluster::host_overhead(*c, size, 64, o));
    }
    t.add_row({size_label(size), strf("%6.2f", hh), strf("%6.2f", gg_on),
               strf("%6.2f", gg_off)});
  }
  t.print();
  std::printf(
      "\nus per message. Paper's shape: ~5 us H-H; +3 us for G-G P2P "
      "(GPU_P2P_TX overhead); +12 us for staging, ~10 of which are the "
      "fully synchronous cudaMemcpy D2H that cannot overlap.\n");
  return 0;
}
