// Reproduces Fig. 6: two-node uni-directional bandwidth for the four
// combinations of source and destination buffer types (H-H, H-G, G-H, G-G)
// over APEnet+ (PCIe Gen2 x8, 28 Gbps torus link). Each cell is an
// independent simulation, declared as a runner point and executed
// concurrently under --jobs.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace apn;
  using core::MemType;
  bench::Runner runner(argc, argv);
  bench::print_header(
      "FIG 6", "Two-node uni-directional bandwidth, buffer-type combos");

  struct Combo {
    const char* label;
    MemType src, dst;
  };
  const Combo combos[] = {
      {"H-H", MemType::kHost, MemType::kHost},
      {"H-G", MemType::kHost, MemType::kGpu},
      {"G-H", MemType::kGpu, MemType::kHost},
      {"G-G", MemType::kGpu, MemType::kGpu},
  };

  const auto sizes = bench::sweep_32B_4MB();
  std::vector<std::array<bench::Cell, 4>> results(sizes.size());

  for (std::size_t si = 0; si < sizes.size(); ++si) {
    const std::uint64_t size = sizes[si];
    for (std::size_t ci = 0; ci < 4; ++ci) {
      const Combo combo = combos[ci];
      runner.add(
          "fig6/" + std::string(combo.label) + "/" + size_label(size),
          [&results, si, ci, combo, size] {
            sim::Simulator sim;
            auto c = cluster::Cluster::make_cluster_i(
                sim, 2, hw::params(), false);
            cluster::TwoNodeOptions opt;
            opt.src_type = combo.src;
            opt.dst_type = combo.dst;
            int reps = bench::reps_for(size, 12ull << 20);
            auto r = cluster::twonode_bandwidth(*c, size, reps, opt);
            results[si][ci] = r.mbps;
            bench::JsonSink::global().record(
                "fig6", std::string(combo.label) + "/" + size_label(size),
                r.mbps);
          });
    }
  }
  runner.run();

  TextTable t({"Msg size", "H-H", "H-G", "G-H", "G-G"});
  for (std::size_t si = 0; si < sizes.size(); ++si) {
    t.add_row({size_label(sizes[si]), results[si][0].str("%7.1f"),
               results[si][1].str("%7.1f"), results[si][2].str("%7.1f"),
               results[si][3].str("%7.1f")});
  }
  t.print();
  std::printf(
      "\nMB/s. Paper's shape: host-source peaks at 1.2 GB/s (RX-bound) with "
      "~10%% penalty for GPU destinations; GPU-source curves are less steep "
      "(read-bandwidth bound) and G-G at 8 KB is about half of H-H.\n");
  return 0;
}
