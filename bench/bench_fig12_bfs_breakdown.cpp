// Reproduces Fig. 12: break-down of the BFS execution time (compute vs
// communication) on one of four tasks, APEnet+ vs InfiniBand. The paper's
// headline: the communication time is ~50% lower on APEnet+. The two
// network runs are independent simulations, declared as runner points and
// executed concurrently under --jobs.
#include "apps/bfs/bfs.hpp"
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace apn;
  using apps::bfs::BfsNet;
  bench::Runner runner(argc, argv);
  const int scale = bench::bfs_scale();
  bench::print_header(
      "FIG 12",
      strf("BFS execution-time break-down, NP=4, |V| = 2^%d", scale).c_str());

  auto run = [scale](BfsNet net) {
    sim::Simulator sim;
    std::unique_ptr<cluster::Cluster> c =
        net == BfsNet::kIb
            ? cluster::Cluster::make_cluster_ii(sim, 4, true,
                                                mpi::openmpi2012_params())
            : cluster::Cluster::make_cluster_i(sim, 4, hw::params(),
                                               false);
    apps::bfs::BfsConfig cfg;
    cfg.scale = scale;
    cfg.edge_factor = 16;
    cfg.net = net;
    apps::bfs::BfsRun r(*c, cfg);
    return r.run();
  };

  apps::bfs::BfsMetrics metrics[2];
  bool filled[2] = {false, false};
  runner.add("fig12/apenet", [&, run] {
    metrics[0] = run(BfsNet::kApenet);
    filled[0] = true;
    bench::JsonSink::global().record("fig12", "apenet/comm_ms",
                                     units::to_ms(metrics[0].comm_time));
  });
  runner.add("fig12/ib", [&, run] {
    metrics[1] = run(BfsNet::kIb);
    filled[1] = true;
    bench::JsonSink::global().record("fig12", "ib/comm_ms",
                                     units::to_ms(metrics[1].comm_time));
  });
  runner.run();

  TextTable t({"Network", "total (ms)", "compute (ms)", "comm (ms)",
               "comm share"});
  auto add = [&](const char* name, const apps::bfs::BfsMetrics& m) {
    t.add_row({name, strf("%.2f", units::to_ms(m.wall)),
               strf("%.2f", units::to_ms(m.compute_time)),
               strf("%.2f", units::to_ms(m.comm_time)),
               strf("%.0f%%", 100.0 * static_cast<double>(m.comm_time) /
                                  static_cast<double>(m.wall))});
  };
  if (filled[0]) add("APEnet+", metrics[0]);
  if (filled[1]) add("InfiniBand", metrics[1]);
  t.print();
  if (filled[0] && filled[1]) {
    std::printf(
        "\nPaper: identical CUDA kernels on both networks; for this "
        "traversal the communication time is ~50%% lower in the APEnet+ "
        "case (model: %.0f%% lower).\n",
        100.0 * (1.0 - static_cast<double>(metrics[0].comm_time) /
                           static_cast<double>(metrics[1].comm_time)));
  }
  return 0;
}
