// Ablation: the MVAPICH-style GPU pipeline parameters (DESIGN.md §5) —
// chunk size and threshold of the CUDA-aware large-message protocol the
// paper's §II discusses. Shows the trade-off the MPI libraries of the era
// had to make: big chunks amortize copy overheads, small chunks pipeline
// better.
#include "bench_common.hpp"

namespace {

double gg_bw(std::uint32_t chunk, std::uint32_t threshold,
             std::uint64_t size) {
  using namespace apn;
  sim::Simulator sim;
  cluster::NodeConfig cfg;
  cfg.gpus = {gpu::fermi_c2075(), gpu::fermi_c2075()};
  cfg.has_apenet = false;
  cfg.has_ib = true;
  cfg.ib_slot = pcie::gen2_x8();
  mpi::MpiParams mp;
  mp.gpu_pipeline_chunk = chunk;
  mp.gpu_pipeline_threshold = threshold;
  cluster::Cluster c(sim, core::TorusShape{2, 1, 1}, cfg,
                     core::ApenetParams{}, ib::HcaParams{}, mp);
  return cluster::ib_gg_bandwidth(c, size, 6).mbps;
}

}  // namespace

int main() {
  using namespace apn;
  bench::print_header("ABLATION",
                      "MVAPICH-style GPU pipeline chunk size (IB G-G)");

  TextTable t({"Msg size", "chunk 64K", "chunk 256K", "chunk 1M",
               "no pipeline (staged)"});
  for (std::uint64_t size : {256ull << 10, 1ull << 20, 4ull << 20}) {
    t.add_row({size_label(size), strf("%.0f", gg_bw(64 << 10, 32 << 10, size)),
               strf("%.0f", gg_bw(256 << 10, 32 << 10, size)),
               strf("%.0f", gg_bw(1 << 20, 32 << 10, size)),
               strf("%.0f", gg_bw(256 << 10, 64 << 20, size))});
  }
  t.print();
  std::printf(
      "\nMB/s. The 256 KB chunk the real MVAPICH2 used is near-optimal: "
      "smaller chunks pay per-chunk copy setup, bigger chunks delay the "
      "wire; disabling the pipeline falls back to one synchronous staged "
      "copy per message.\n");
  return 0;
}
