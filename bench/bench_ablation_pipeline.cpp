// Ablation: the MVAPICH-style GPU pipeline parameters (DESIGN.md §5) —
// chunk size and threshold of the CUDA-aware large-message protocol the
// paper's §II discusses. Shows the trade-off the MPI libraries of the era
// had to make: big chunks amortize copy overheads, small chunks pipeline
// better. Each (size, config) cell is an independent simulation run as a
// runner point.
#include "bench_common.hpp"

namespace {

double gg_bw(std::uint32_t chunk, std::uint32_t threshold,
             std::uint64_t size) {
  using namespace apn;
  sim::Simulator sim;
  cluster::NodeConfig cfg;
  cfg.gpus = {gpu::fermi_c2075(), gpu::fermi_c2075()};
  cfg.has_apenet = false;
  cfg.has_ib = true;
  cfg.ib_slot = pcie::gen2_x8();
  mpi::MpiParams mp;
  mp.gpu_pipeline_chunk = chunk;
  mp.gpu_pipeline_threshold = threshold;
  cluster::Cluster c(sim, core::TorusShape{2, 1, 1}, cfg,
                     core::ApenetParams{}, ib::HcaParams{}, mp);
  return cluster::ib_gg_bandwidth(c, size, 6).mbps;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace apn;
  bench::Runner runner(argc, argv);
  bench::print_header("ABLATION",
                      "MVAPICH-style GPU pipeline chunk size (IB G-G)");

  struct Config {
    const char* label;
    std::uint32_t chunk;
    std::uint32_t threshold;
  };
  const Config configs[] = {
      {"chunk64K", 64 << 10, 32 << 10},
      {"chunk256K", 256 << 10, 32 << 10},
      {"chunk1M", 1 << 20, 32 << 10},
      {"staged", 256 << 10, 64 << 20},
  };
  const std::uint64_t sizes[] = {256ull << 10, 1ull << 20, 4ull << 20};

  bench::Cell results[3][4];
  for (std::size_t si = 0; si < 3; ++si) {
    for (std::size_t ci = 0; ci < 4; ++ci) {
      const std::uint64_t size = sizes[si];
      const Config cfg = configs[ci];
      runner.add(
          "pipeline/" + std::string(cfg.label) + "/" + size_label(size),
          [&results, si, ci, cfg, size] {
            double v = gg_bw(cfg.chunk, cfg.threshold, size);
            results[si][ci] = v;
            bench::JsonSink::global().record(
                "ablation_pipeline",
                std::string(cfg.label) + "/" + size_label(size), v);
          });
    }
  }
  runner.run();

  TextTable t({"Msg size", "chunk 64K", "chunk 256K", "chunk 1M",
               "no pipeline (staged)"});
  for (std::size_t si = 0; si < 3; ++si) {
    t.add_row({size_label(sizes[si]), results[si][0].str("%.0f"),
               results[si][1].str("%.0f"), results[si][2].str("%.0f"),
               results[si][3].str("%.0f")});
  }
  t.print();
  std::printf(
      "\nMB/s. The 256 KB chunk the real MVAPICH2 used is near-optimal: "
      "smaller chunks pay per-chunk copy setup, bigger chunks delay the "
      "wire; disabling the pipeline falls back to one synchronous staged "
      "copy per message.\n");
  return 0;
}
