// Shared helpers for the paper-reproduction bench binaries.
//
// Every bench prints (a) the paper's expected numbers for the experiment it
// regenerates and (b) the model's measured numbers, in a diff-friendly
// table. Each measurement uses a fresh Simulator+Cluster so runs are
// independent and bit-reproducible.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/harness.hpp"
#include "common/table.hpp"

namespace apn::bench {

/// Message sizes of the paper's bandwidth figures (32 B - 4 MB).
inline std::vector<std::uint64_t> sweep_32B_4MB() {
  std::vector<std::uint64_t> v;
  for (std::uint64_t s = 32; s <= (4ull << 20); s *= 2) v.push_back(s);
  return v;
}

/// Message sizes of Figs. 4-5 (4 KB - 4 MB).
inline std::vector<std::uint64_t> sweep_4K_4MB() {
  std::vector<std::uint64_t> v;
  for (std::uint64_t s = 4096; s <= (4ull << 20); s *= 2) v.push_back(s);
  return v;
}

/// Latency-figure sizes (32 B - 4 KB / 64 KB).
inline std::vector<std::uint64_t> sweep_32B(std::uint64_t max) {
  std::vector<std::uint64_t> v;
  for (std::uint64_t s = 32; s <= max; s *= 2) v.push_back(s);
  return v;
}

/// Repetition count that keeps total traffic meaningful but bounded.
inline int reps_for(std::uint64_t size, std::uint64_t target_bytes) {
  std::uint64_t n = target_bytes / size;
  if (n < 4) return 4;
  if (n > 512) return 512;
  return static_cast<int>(n);
}

inline void print_header(const char* id, const char* what) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", id, what);
  std::printf("================================================================\n");
}

/// Scale knob for the heavyweight app benches (BFS graph scale), settable
/// via APN_BENCH_SCALE to trade fidelity for runtime.
inline int bfs_scale() {
  if (const char* s = std::getenv("APN_BENCH_SCALE")) return std::atoi(s);
  return 20;  // the paper's |V| = 2^20
}

}  // namespace apn::bench
