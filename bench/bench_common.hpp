// Shared helpers for the paper-reproduction bench binaries.
//
// Every bench prints (a) the paper's expected numbers for the experiment it
// regenerates and (b) the model's measured numbers, in a diff-friendly
// table. Each measurement uses a fresh Simulator+Cluster so runs are
// independent and bit-reproducible.
#pragma once

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/harness.hpp"
#include "common/table.hpp"

namespace apn::bench {

/// Machine-readable result sink: one JSON record per measured point, as
/// newline-delimited JSON. Enabled by `--json=<path>` on the bench command
/// line or the APN_BENCH_JSON environment variable (flag wins). Each record
/// is {"bench": ..., "point": ..., "model": ..., "paper": ...} where
/// `paper` is null when the paper gives no quantitative target for the
/// point. Inert (no file, no output) when neither switch is present, so
/// the human-readable tables stay the default interface.
class JsonSink {
 public:
  static JsonSink& global() {
    static JsonSink sink;
    return sink;
  }

  /// Parse --json=<path> / APN_BENCH_JSON; call once at bench startup.
  void init(int argc, char** argv) {
    const char* path = std::getenv("APN_BENCH_JSON");
    for (int i = 1; i < argc; ++i) {
      if (std::strncmp(argv[i], "--json=", 7) == 0) path = argv[i] + 7;
    }
    if (path == nullptr || *path == '\0') return;
    out_ = std::fopen(path, "w");
    if (out_ == nullptr)
      std::fprintf(stderr, "warning: cannot open %s for JSON output\n", path);
  }

  bool enabled() const { return out_ != nullptr; }

  /// Emit one measurement. Pass NAN for `paper` when the paper has no
  /// number for this point (serialized as null).
  void record(const std::string& bench, const std::string& point,
              double model, double paper = NAN) {
    if (out_ == nullptr) return;
    std::fprintf(out_, "{\"bench\": \"%s\", \"point\": \"%s\", ",
                 escaped(bench).c_str(), escaped(point).c_str());
    write_number("model", model);
    std::fputs(", ", out_);
    write_number("paper", paper);
    std::fputs("}\n", out_);
  }

  ~JsonSink() {
    if (out_ != nullptr) std::fclose(out_);
  }

 private:
  JsonSink() = default;
  JsonSink(const JsonSink&) = delete;
  JsonSink& operator=(const JsonSink&) = delete;

  static std::string escaped(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  }

  void write_number(const char* key, double v) {
    if (std::isnan(v))
      std::fprintf(out_, "\"%s\": null", key);
    else
      std::fprintf(out_, "\"%s\": %.17g", key, v);
  }

  std::FILE* out_ = nullptr;
};

/// Message sizes of the paper's bandwidth figures (32 B - 4 MB).
inline std::vector<std::uint64_t> sweep_32B_4MB() {
  std::vector<std::uint64_t> v;
  for (std::uint64_t s = 32; s <= (4ull << 20); s *= 2) v.push_back(s);
  return v;
}

/// Message sizes of Figs. 4-5 (4 KB - 4 MB).
inline std::vector<std::uint64_t> sweep_4K_4MB() {
  std::vector<std::uint64_t> v;
  for (std::uint64_t s = 4096; s <= (4ull << 20); s *= 2) v.push_back(s);
  return v;
}

/// Latency-figure sizes (32 B - 4 KB / 64 KB).
inline std::vector<std::uint64_t> sweep_32B(std::uint64_t max) {
  std::vector<std::uint64_t> v;
  for (std::uint64_t s = 32; s <= max; s *= 2) v.push_back(s);
  return v;
}

/// Repetition count that keeps total traffic meaningful but bounded.
inline int reps_for(std::uint64_t size, std::uint64_t target_bytes) {
  std::uint64_t n = target_bytes / size;
  if (n < 4) return 4;
  if (n > 512) return 512;
  return static_cast<int>(n);
}

inline void print_header(const char* id, const char* what) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", id, what);
  std::printf("================================================================\n");
}

/// Scale knob for the heavyweight app benches (BFS graph scale), settable
/// via APN_BENCH_SCALE to trade fidelity for runtime.
inline int bfs_scale() {
  if (const char* s = std::getenv("APN_BENCH_SCALE")) return std::atoi(s);
  return 20;  // the paper's |V| = 2^20
}

}  // namespace apn::bench
