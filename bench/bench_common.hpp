// Shared helpers for the paper-reproduction bench binaries.
//
// Every bench prints (a) the paper's expected numbers for the experiment it
// regenerates and (b) the model's measured numbers, in a diff-friendly
// table. Each measurement uses a fresh Simulator+Cluster so runs are
// independent and bit-reproducible — which also makes them embarrassingly
// parallel: sweep-heavy benches declare their measurements as points on
// `bench::Runner` (a thin wrapper over `exp::ParallelRunner`) and regain
// the core count in wall-clock while producing byte-identical output at
// any `--jobs` level.
//
// Common bench flags (see also EXPERIMENTS.md):
//   --jobs=N           worker threads (default: APN_JOBS, else all cores)
//   --filter=<substr>  run only points whose name contains the substring
//   --list             print point names (one per line) and exit
//   --hw-profile=<n>   hardware profile (APN_HW_PROFILE; docs/HARDWARE.md)
//   --json=<path>      NDJSON record per measured point (APN_BENCH_JSON)
//   --check            enable the same-tick race detector (like APN_CHECK=1)
//   --coro-check       enable the coroutine frame-lifetime oracle (like
//                      APN_CORO_CHECK=1): report + abort at exit if any
//                      frame is still suspended
//   --state-hash-out=F write per-event rolling state hashes to F; diffing
//                      two runs' files pinpoints the first divergent event
#pragma once

#include <array>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "check/check.hpp"
#include "check/coro_check.hpp"
#include "cluster/cluster.hpp"
#include "cluster/harness.hpp"
#include "common/table.hpp"
#include "exp/runner.hpp"
#include "hw/profile.hpp"

namespace apn::bench {

/// Machine-readable result sink: one JSON record per measured point, as
/// newline-delimited JSON. Enabled by `--json=<path>` on the bench command
/// line or the APN_BENCH_JSON environment variable (flag wins). Each record
/// is {"bench": ..., "point": ..., "hw_profile": ..., "model": ...,
/// "paper": ...} where `hw_profile` names the hardware profile the point
/// ran under (docs/HARDWARE.md) and `paper` is null when the paper gives
/// no quantitative target for the point. Inert (no file, no output) when neither switch is present, so
/// the human-readable tables stay the default interface.
///
/// Concurrency: the sink is internally synchronized, and every record is
/// flushed to the file as soon as it is written, so an aborted run keeps
/// every completed line of NDJSON. Under `bench::Runner` the records a
/// point emits while measuring are captured in a per-point buffer and
/// flushed in declaration order, so the NDJSON stream is byte-identical
/// at any job count.
class JsonSink {
 public:
  static JsonSink& global() {
    static JsonSink sink;
    return sink;
  }

  /// Parse --json=<path> / APN_BENCH_JSON; call once at bench startup.
  /// An explicit empty `--json=` is a usage error (exit 2); an empty
  /// APN_BENCH_JSON is reported and treated as unset.
  void init(int argc, char** argv) {
    const char* flag = nullptr;
    for (int i = 1; i < argc; ++i) {
      if (std::strncmp(argv[i], "--json=", 7) == 0) flag = argv[i] + 7;
    }
    if (flag != nullptr && *flag == '\0') {
      std::fprintf(stderr, "error: --json= requires a non-empty path\n");
      std::exit(2);
    }
    const char* path = flag;
    if (path == nullptr) {
      path = std::getenv("APN_BENCH_JSON");
      if (path != nullptr && *path == '\0') {
        std::fprintf(
            stderr,
            "warning: APN_BENCH_JSON is empty; NDJSON output disabled\n");
        return;
      }
    }
    if (path == nullptr) return;
    open(path);
  }

  /// Open `path` for NDJSON output (closing any previous file). Returns
  /// false (with a warning) when the file cannot be created.
  bool open(const std::string& path) {
    close();
    out_ = std::fopen(path.c_str(), "w");
    if (out_ == nullptr) {
      std::fprintf(stderr, "warning: cannot open %s for JSON output\n",
                   path.c_str());
      return false;
    }
    return true;
  }

  void close() {
    if (out_ != nullptr) std::fclose(out_);
    out_ = nullptr;
  }

  bool enabled() const { return out_ != nullptr; }

  /// Emit one measurement. Pass NAN for `paper` when the paper has no
  /// number for this point (serialized as null). Buffered per-point under
  /// the runner; written and flushed immediately otherwise.
  void record(const std::string& bench, const std::string& point,
              double model, double paper = NAN) {
    if (out_ == nullptr) return;
    // hw::active() honors the calling thread's ScopedProfile, so points
    // that build per-profile clusters tag their rows correctly.
    std::string line = "{\"bench\": \"" + escaped(bench) +
                       "\", \"point\": \"" + escaped(point) +
                       "\", \"hw_profile\": \"" + escaped(hw::active().name) +
                       "\", ";
    append_number(line, "model", model);
    line += ", ";
    append_number(line, "paper", paper);
    line += "}\n";
    if (std::string* buf = tls_buffer()) {
      *buf += line;
      return;
    }
    write_raw(line);
  }

  /// Route this thread's records into `buf` (nullptr restores direct
  /// writes). Used by bench::Runner to commit point records in
  /// declaration order.
  void set_thread_buffer(std::string* buf) { tls_buffer() = buf; }

  /// Write pre-formatted record text (a point's buffered lines) under the
  /// sink lock, flushing so partial output survives aborted runs.
  void write_raw(const std::string& text) {
    if (out_ == nullptr || text.empty()) return;
    std::lock_guard<std::mutex> lk(mu_);
    std::fwrite(text.data(), 1, text.size(), out_);
    std::fflush(out_);
  }

  ~JsonSink() { close(); }

 private:
  JsonSink() = default;
  JsonSink(const JsonSink&) = delete;
  JsonSink& operator=(const JsonSink&) = delete;

  static std::string*& tls_buffer() {
    thread_local std::string* b = nullptr;
    return b;
  }

  static std::string escaped(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  }

  static void append_number(std::string& out, const char* key, double v) {
    char buf[64];
    if (std::isnan(v))
      std::snprintf(buf, sizeof buf, "\"%s\": null", key);
    else
      std::snprintf(buf, sizeof buf, "\"%s\": %.17g", key, v);
    out += buf;
  }

  std::mutex mu_;
  std::FILE* out_ = nullptr;
};

/// Bench-side wrapper over exp::ParallelRunner: parses the shared bench
/// flags (--jobs/--filter/--list via the runner, --json via JsonSink) and
/// wraps every point so JsonSink records emitted during the concurrent
/// work phase are flushed in declaration order.
class Runner {
 public:
  Runner(int argc, char** argv)
      : inner_(exp::RunnerOptions::from_args(argc, argv)) {
    if (!inner_.options().hw_profile.empty()) {
      try {
        hw::select(inner_.options().hw_profile);
      } catch (const std::invalid_argument& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        std::exit(2);
      }
    }
    JsonSink::global().init(argc, argv);
    init_check_flags(argc, argv);
  }

  /// Parse --check / --owner-check / --coro-check / --state-hash-out=<path>
  /// (shared with
  /// bus_analyzer). Any flag arms the race detector for every Simulator
  /// built after this call (cluster::Cluster installs a check::Session
  /// from it); --owner-check additionally arms the partition-ownership
  /// oracle (see docs/CORRECTNESS.md "The ownership model").
  static void init_check_flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--check") == 0) {
        check::Session::force_enable(true);
      } else if (std::strcmp(argv[i], "--owner-check") == 0) {
        check::Session::force_owner_check(true);
      } else if (std::strcmp(argv[i], "--coro-check") == 0) {
        check::coro::force_enable(true);
        check::coro::install_exit_report();
      } else if (std::strncmp(argv[i], "--state-hash-out=", 17) == 0) {
        const char* path = argv[i] + 17;
        if (*path == '\0') {
          std::fprintf(stderr,
                       "error: --state-hash-out= requires a path\n");
          std::exit(2);
        }
        check::Session::force_enable(true);
        check::HashSink::global().open(path);
      }
    }
  }

  /// Declare one measurement point. `work` runs concurrently and must own
  /// everything it touches (fresh Simulator+Cluster, distinct result
  /// slot). It may return a commit closure to run on the main thread in
  /// declaration order, or return void when slot writes are enough.
  template <typename F>
  void add(std::string name, F&& work) {
    if constexpr (std::is_void_v<std::invoke_result_t<F&>>) {
      add_point(std::move(name), [w = std::forward<F>(work)]() mutable {
        w();
        return exp::ParallelRunner::Commit{};
      });
    } else {
      add_point(std::move(name), exp::ParallelRunner::Work(
                                     std::forward<F>(work)));
    }
  }

  /// Execute all points (honoring --filter / --list); commits and NDJSON
  /// flush in declaration order. Returns the number of points executed.
  /// Under --list a `# hw-profile:` header precedes the point names so
  /// listings are self-describing across hardware generations.
  std::size_t run() {
    if (inner_.options().list)
      std::printf("# hw-profile: %s\n", hw::active().name.c_str());
    return inner_.run();
  }

  int jobs() const { return inner_.jobs(); }

 private:
  void add_point(std::string name, exp::ParallelRunner::Work work) {
    std::string point = name;
    inner_.add(std::move(name),
               [work = std::move(work), point = std::move(point)]() {
      JsonSink& js = JsonSink::global();
      check::HashSink& hs = check::HashSink::global();
      std::string buffered;
      std::string hash_buffered;
      js.set_thread_buffer(&buffered);
      if (hs.enabled()) {
        hs.set_thread_buffer(&hash_buffered);
        hs.note("point " + point);
      }
      exp::ParallelRunner::Commit commit;
      try {
        commit = work();
      } catch (...) {
        js.set_thread_buffer(nullptr);
        hs.set_thread_buffer(nullptr);
        throw;
      }
      js.set_thread_buffer(nullptr);
      hs.set_thread_buffer(nullptr);
      return exp::ParallelRunner::Commit(
          [commit = std::move(commit), buffered = std::move(buffered),
           hash_buffered = std::move(hash_buffered)]() {
            JsonSink::global().write_raw(buffered);
            check::HashSink::global().write_raw(hash_buffered);
            if (commit) commit();
          });
    });
  }

  exp::ParallelRunner inner_;
};

/// One cell of a bench result matrix, filled in by a runner point; prints
/// "-" until set so --filter reruns render partial tables gracefully.
struct Cell {
  double v = NAN;
  bool filled = false;
  Cell& operator=(double x) {
    v = x;
    filled = true;
    return *this;
  }
  std::string str(const char* fmt) const {
    return filled ? strf(fmt, v) : "-";
  }
};

/// Message sizes of the paper's bandwidth figures (32 B - 4 MB).
inline std::vector<std::uint64_t> sweep_32B_4MB() {
  std::vector<std::uint64_t> v;
  for (std::uint64_t s = 32; s <= (4ull << 20); s *= 2) v.push_back(s);
  return v;
}

/// Message sizes of Figs. 4-5 (4 KB - 4 MB).
inline std::vector<std::uint64_t> sweep_4K_4MB() {
  std::vector<std::uint64_t> v;
  for (std::uint64_t s = 4096; s <= (4ull << 20); s *= 2) v.push_back(s);
  return v;
}

/// Latency-figure sizes (32 B - 4 KB / 64 KB).
inline std::vector<std::uint64_t> sweep_32B(std::uint64_t max) {
  std::vector<std::uint64_t> v;
  for (std::uint64_t s = 32; s <= max; s *= 2) v.push_back(s);
  return v;
}

/// Repetition count that keeps total traffic meaningful but bounded.
inline int reps_for(std::uint64_t size, std::uint64_t target_bytes) {
  std::uint64_t n = target_bytes / size;
  if (n < 4) return 4;
  if (n > 512) return 512;
  return static_cast<int>(n);
}

inline void print_header(const char* id, const char* what) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", id, what);
  std::printf("================================================================\n");
}

/// Scale knob for the heavyweight app benches (BFS graph scale), settable
/// via APN_BENCH_SCALE to trade fidelity for runtime.
inline int bfs_scale() {
  if (const char* s = std::getenv("APN_BENCH_SCALE")) return std::atoi(s);
  return 20;  // the paper's |V| = 2^20
}

}  // namespace apn::bench
