// google-benchmark micro-benchmarks of the simulation substrate itself:
// event-queue throughput, coroutine scheduling, channel pipelining, and a
// full RDMA PUT round trip. These guard the simulator's real-time cost,
// which bounds how large the paper-scale experiments can be.
#include <benchmark/benchmark.h>

#include "cluster/cluster.hpp"
#include "cluster/harness.hpp"
#include "sim/channel.hpp"
#include "sim/coro.hpp"
#include "sim/resource.hpp"

namespace {

using namespace apn;

void BM_EventQueue(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    const int n = static_cast<int>(state.range(0));
    int fired = 0;
    for (int i = 0; i < n; ++i)
      sim.after((i * 37) % 1000, [&] { ++fired; });
    sim.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventQueue)->Arg(1000)->Arg(100000);

void BM_SameTickChain(benchmark::State& state) {
  // Zero-delay self-rescheduling event: the pure same-tick ready-ring
  // path (no wheel, no heap). This is the fast path every primitive
  // wakeup (Gate/Semaphore/Queue via schedule_resume) rides.
  for (auto _ : state) {
    sim::Simulator sim;
    int left = static_cast<int>(state.range(0));
    struct Chain {
      sim::Simulator& sim;
      int& left;
      void operator()() const {
        if (--left > 0) sim.after(0, *this);
      }
    };
    sim.after(0, Chain{sim, left});
    sim.run();
    benchmark::DoNotOptimize(left);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SameTickChain)->Arg(100000);

void BM_CoroutinePingPong(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    sim::Queue<int> a(sim), b(sim);
    const int rounds = static_cast<int>(state.range(0));
    [](sim::Queue<int>* a, sim::Queue<int>* b, int rounds) -> sim::Coro {
      for (int i = 0; i < rounds; ++i) {
        a->push(i);
        co_await b->pop();
      }
    }(&a, &b, rounds);
    [](sim::Queue<int>* a, sim::Queue<int>* b, int rounds) -> sim::Coro {
      for (int i = 0; i < rounds; ++i) {
        int v = co_await a->pop();
        b->push(v);
      }
    }(&a, &b, rounds);
    sim.run();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CoroutinePingPong)->Arg(10000);

void BM_ChannelStream(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    sim::Channel ch(sim, sim::ChannelParams{Rate(4e9), 0, units::ns(200)});
    int delivered = 0;
    for (int i = 0; i < 10000; ++i) ch.send(Bytes(4096), [&] { ++delivered; });
    sim.run();
    benchmark::DoNotOptimize(delivered);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_ChannelStream);

void BM_RdmaPutRoundTrip(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    auto c =
        cluster::Cluster::make_cluster_i(sim, 2, core::ApenetParams{}, false);
    auto bw = cluster::twonode_bandwidth(
        *c, static_cast<std::uint64_t>(state.range(0)), 8,
        cluster::TwoNodeOptions{});
    benchmark::DoNotOptimize(bw.mbps);
  }
}
BENCHMARK(BM_RdmaPutRoundTrip)->Arg(4096)->Arg(1 << 20);

void BM_GpuP2pReadMessage(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    core::ApenetParams p;
    p.flush_at_switch = true;
    auto c = cluster::Cluster::make_cluster_i(sim, 1, p, false);
    auto bw = cluster::loopback_bandwidth(*c, 0, core::MemType::kGpu,
                                          1 << 20, 4);
    benchmark::DoNotOptimize(bw.mbps);
  }
}
BENCHMARK(BM_GpuP2pReadMessage);

}  // namespace

BENCHMARK_MAIN();
