// Extension: two-node BI-directional bandwidth. The paper measures only
// uni-directional bandwidth and remarks that "the APEnet+ bi-directional
// bandwidth, which is not reported here, will reflect a similar behaviour"
// (because the Nios II serves the RX task for both directions). This bench
// quantifies that claim: each node simultaneously sends and receives. Each
// cell is an independent simulation, declared as a runner point and
// executed concurrently under --jobs.
#include "bench_common.hpp"

namespace {

using namespace apn;

/// Aggregate bidirectional bandwidth between nodes 0 and 1.
double bidir_bw(core::MemType type, std::uint64_t size, int count) {
  sim::Simulator sim;
  auto c = cluster::Cluster::make_cluster_i(sim, 2, hw::params(),
                                            false);
  struct Shared {
    Time t0 = 0, t_end[2] = {0, 0};
    std::shared_ptr<sim::Gate> ready;
    int ready_count = 0;
  };
  auto sh = std::make_shared<Shared>();
  sh->ready = std::make_shared<sim::Gate>(sim);

  struct Buf {
    std::uint64_t addr;
    std::shared_ptr<std::vector<std::uint8_t>> host;
  };
  auto mkbuf = [&](int node) {
    Buf b{};
    if (type == core::MemType::kGpu) {
      b.addr = c->node(node).cuda().malloc_device(0, size);
    } else {
      b.host = std::make_shared<std::vector<std::uint8_t>>(size);
      b.addr = reinterpret_cast<std::uint64_t>(b.host->data());
    }
    return b;
  };
  Buf src[2] = {mkbuf(0), mkbuf(1)};
  Buf dst[2] = {mkbuf(0), mkbuf(1)};

  for (int me = 0; me < 2; ++me) {
    [](cluster::Cluster* c, int me, Buf src, Buf my_dst, Buf remote_dst,
       core::MemType type, std::uint64_t size, int count,
       std::shared_ptr<Shared> sh) -> sim::Coro {
      core::RdmaDevice& rdma = c->rdma(me);
      co_await rdma.register_buffer(my_dst.addr, size, type);
      if (type == core::MemType::kGpu)
        co_await rdma.register_buffer(src.addr, size, type);
      if (++sh->ready_count == 2) sh->ready->open();
      co_await sh->ready->wait();
      if (me == 0) sh->t0 = c->simulator().now();
      for (int i = 0; i < count; ++i)
        rdma.put(c->coord(1 - me), src.addr, size, remote_dst.addr, type,
                 false);
      for (int i = 0; i < count; ++i) co_await rdma.events().pop();
      sh->t_end[me] = c->simulator().now();
    }(c.get(), me, src[me], dst[me], dst[1 - me], type, size, count, sh);
  }
  sim.run();
  Time end = std::max(sh->t_end[0], sh->t_end[1]);
  return units::bandwidth_MBps(Bytes(2 * size * static_cast<std::uint64_t>(count)),
                               end - sh->t0);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace apn;
  bench::Runner runner(argc, argv);
  bench::print_header("EXTENSION",
                      "Two-node bidirectional bandwidth (not in the paper)");

  const std::uint64_t sizes[] = {32768ull, 131072ull, 1ull << 20, 4ull << 20};
  constexpr std::size_t kSizes = sizeof(sizes) / sizeof(sizes[0]);
  std::array<bench::Cell, 3> results[kSizes];

  for (std::size_t si = 0; si < kSizes; ++si) {
    const std::uint64_t size = sizes[si];
    const int reps = bench::reps_for(size, 12ull << 20);
    runner.add("ext_bidir/uni_x2/" + size_label(size), [&results, si, size,
                                                        reps] {
      sim::Simulator s;
      auto c = cluster::Cluster::make_cluster_i(s, 2, hw::params(),
                                                false);
      double uni = cluster::twonode_bandwidth(*c, size, reps,
                                              cluster::TwoNodeOptions{})
                       .mbps;
      results[si][0] = 2 * uni;
      bench::JsonSink::global().record("ext_bidir",
                                       "uni_x2/" + size_label(size), 2 * uni);
    });
    runner.add("ext_bidir/hh/" + size_label(size), [&results, si, size,
                                                    reps] {
      double bw = bidir_bw(core::MemType::kHost, size, reps);
      results[si][1] = bw;
      bench::JsonSink::global().record("ext_bidir", "hh/" + size_label(size),
                                       bw);
    });
    runner.add("ext_bidir/gg/" + size_label(size), [&results, si, size,
                                                    reps] {
      double bw = bidir_bw(core::MemType::kGpu, size, reps);
      results[si][2] = bw;
      bench::JsonSink::global().record("ext_bidir", "gg/" + size_label(size),
                                       bw);
    });
  }
  runner.run();

  TextTable t({"Msg size", "H-H uni x2 (ideal)", "H-H bidir", "G-G bidir"});
  for (std::size_t si = 0; si < kSizes; ++si) {
    t.add_row({size_label(sizes[si]), results[si][0].str("%.0f"),
               results[si][1].str("%.0f"), results[si][2].str("%.0f")});
  }
  t.print();
  std::printf(
      "\nMB/s aggregate. Bidirectional traffic does NOT double the "
      "uni-directional figure: each card's Nios II now runs RX processing "
      "for the inbound stream while its TX engines feed the outbound one — "
      "confirming the paper's remark that the bi-directional bandwidth "
      "reflects the same micro-controller bottleneck.\n");
  return 0;
}
