// Ablation: the Nios II firmware as the bottleneck (DESIGN.md §5.5).
//
// (a) RX cost vs number of registered buffers — the BUF_LIST linear scan
//     the paper calls out ("linearly scales with the number of registered
//     buffers").
// (b) What-if: hardware-accelerated RX (the paper's announced future work,
//     "we are currently working on adding more hardware blocks to
//     accelerate the RX task") — modeled by scaling the Nios RX task costs.
//
// Every cell is an independent simulation run as a runner point.
#include "bench_common.hpp"

namespace {

double loopback_with_extra_buffers(int extra) {
  using namespace apn;
  sim::Simulator sim;
  auto c = cluster::Cluster::make_cluster_i(sim, 1, hw::params(),
                                            false);
  // The registered buffers must outlive the coroutine; keep them in a
  // function-local vector (NOT a static — points run concurrently).
  std::vector<std::unique_ptr<std::vector<std::uint8_t>>> keep;
  [](cluster::Cluster* c, int n,
     std::vector<std::unique_ptr<std::vector<std::uint8_t>>>* keep)
      -> sim::Coro {
    for (int i = 0; i < n; ++i) {
      keep->push_back(std::make_unique<std::vector<std::uint8_t>>(64));
      co_await c->rdma(0).register_buffer(
          reinterpret_cast<std::uint64_t>(keep->back()->data()), 64,
          core::MemType::kHost);
    }
  }(c.get(), extra, &keep);
  sim.run();
  return cluster::loopback_bandwidth(*c, 0, core::MemType::kHost, 1 << 20,
                                     24)
      .mbps;
}

double loopback_with_rx_scale(double scale, bool gpu) {
  using namespace apn;
  sim::Simulator sim;
  core::ApenetParams p = hw::params();
  p.nios.rx_buflist_base = static_cast<Time>(p.nios.rx_buflist_base * scale);
  p.nios.rx_v2p = static_cast<Time>(p.nios.rx_v2p * scale);
  p.nios.rx_dma_kick = static_cast<Time>(p.nios.rx_dma_kick * scale);
  auto c = cluster::Cluster::make_cluster_i(sim, 1, p, false);
  return cluster::loopback_bandwidth(
             *c, 0, gpu ? core::MemType::kGpu : core::MemType::kHost,
             1 << 20, 24)
      .mbps;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace apn;
  bench::Runner runner(argc, argv);
  bench::print_header("ABLATION", "Nios II firmware bottleneck");

  const int buf_counts[] = {0, 32, 128, 512};
  const double rx_scales[] = {1.0, 0.5, 0.25, 0.1};
  bench::Cell buf_bw[4];
  bench::Cell scale_bw[4][2];  // [scale][host/gpu]

  for (std::size_t i = 0; i < 4; ++i) {
    const int n = buf_counts[i];
    runner.add(strf("nios/buffers/%d", n), [&buf_bw, i, n] {
      double v = loopback_with_extra_buffers(n);
      buf_bw[i] = v;
      bench::JsonSink::global().record("ablation_nios",
                                       strf("buffers/%d", n), v);
    });
  }
  for (std::size_t i = 0; i < 4; ++i) {
    const double s = rx_scales[i];
    runner.add(strf("nios/rx_scale/%.2f/H-H", s), [&scale_bw, i, s] {
      double v = loopback_with_rx_scale(s, false);
      scale_bw[i][0] = v;
      bench::JsonSink::global().record("ablation_nios",
                                       strf("rx_scale/%.2f/H-H", s), v);
    });
    runner.add(strf("nios/rx_scale/%.2f/G-G", s), [&scale_bw, i, s] {
      double v = loopback_with_rx_scale(s, true);
      scale_bw[i][1] = v;
      bench::JsonSink::global().record("ablation_nios",
                                       strf("rx_scale/%.2f/G-G", s), v);
    });
  }
  runner.run();

  std::printf("\n(a) H-H loop-back bandwidth vs registered-buffer count\n");
  TextTable a({"registered buffers", "loop-back MB/s"});
  for (std::size_t i = 0; i < 4; ++i) {
    a.add_row({strf("%d", buf_counts[i]), buf_bw[i].str("%.0f")});
  }
  a.print();

  std::printf(
      "\n(b) What-if: RX task hardware acceleration (paper future work)\n");
  TextTable b({"RX firmware cost", "H-H loop-back MB/s", "G-G loop-back MB/s"});
  for (std::size_t i = 0; i < 4; ++i) {
    b.add_row({strf("%.0f%% of Nios II", rx_scales[i] * 100),
               scale_bw[i][0].str("%.0f"), scale_bw[i][1].str("%.0f")});
  }
  b.print();
  std::printf(
      "\nWith a 4x faster RX path the H-H loop-back approaches the host "
      "memory read bandwidth, and G-G becomes GPU-read-bound (~1.5 GB/s) — "
      "quantifying how much the micro-controller costs the current card.\n");
  return 0;
}
