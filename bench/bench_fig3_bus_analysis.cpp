// Reproduces Fig. 3: PCIe bus-analyzer timings of the GPU peer-to-peer
// transactions during transmission of a single GPU buffer (GPU_P2P_TX v2,
// 32 KB prefetch window), as seen by an interposer on the APEnet+ slot.
//
// Paper timeline (transactions 1-4):
//   1 -> 2 : ~3 us   GPU_P2P_TX implementation overhead before the first
//                    read request reaches the GPU
//   2 -> 3 : 1.8 us  GPU head reading latency (request -> first data)
//   3 -> 4 : 663 us  data streaming for 1 MB (1536 MB/s, 53% link util.)
//   protocol traffic: ~96 MB/s of read requests toward the GPU
//
// A single simulation, but still declared on bench::Runner so the shared
// flags (--filter/--list/--json/--check/--state-hash-out=) work uniformly
// across all bench binaries.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace apn;
  bench::Runner runner(argc, argv);
  bench::print_header(
      "FIG 3", "PCIe timings of peer-to-peer transactions (bus analyzer)");

  struct Measured {
    double tx_overhead_us = 0, head_latency_us = 0, stream_us_per_mb = 0;
    double data_rate = 0, proto_rate = 0;
    std::uint64_t req_count = 0;
    bool filled = false;
  };
  Measured m;

  runner.add("fig3/bus_analysis", [&m] {
    sim::Simulator sim;
    core::ApenetParams p = hw::params();
    p.flush_at_switch = true;  // successive transmissions; TX-side analysis
    p.p2p_tx_version = core::P2pTxVersion::kV2;
    p.p2p_prefetch_window = 32 * 1024;
    auto c = cluster::Cluster::make_cluster_i(sim, 1, p, false);
    cluster::Node& n = c->node(0);

    // Interposers on the APEnet+ slot and on the GPU slot.
    pcie::BusAnalyzer on_card, on_gpu;
    n.fabric().attach_analyzer(n.card_pcie_node(), on_card);
    n.fabric().attach_analyzer(n.gpu_pcie_node(0), on_gpu);

    const std::uint64_t kMsg = 4ull << 20;
    auto t_submit = std::make_shared<Time>(0);
    [](cluster::Cluster* c, std::uint64_t msg,
       std::shared_ptr<Time> t_submit) -> sim::Coro {
      core::RdmaDevice& rdma = c->rdma(0);
      cuda::DevPtr src = c->node(0).cuda().malloc_device(0, msg);
      co_await rdma.register_buffer(src, msg, core::MemType::kGpu);
      *t_submit = c->simulator().now();
      auto put = rdma.put(c->coord(0), src, msg, 0x10000,
                          core::MemType::kGpu, false);
      co_await put.tx_done->wait();
    }(c.get(), kMsg, t_submit);
    sim.run();

    // Sift the traces: requests are writes to the GPU mailbox (downstream
    // on the GPU edge), data are writes into the card's landing zone.
    Time first_req = -1, last_req = -1, first_resp = -1;
    std::uint64_t req_count = 0;
    for (const auto& ev : on_gpu.events()) {
      if (ev.kind != pcie::BusEvent::Kind::kWrite) continue;
      if (ev.downstream) {
        if (first_req < 0) first_req = ev.time;
        last_req = ev.time;
        ++req_count;
      } else if (first_resp < 0) {
        first_resp = ev.time;  // first data leaving the GPU
      }
    }
    Time first_data = -1, last_data = -1;
    std::uint64_t data_bytes = 0;
    for (const auto& ev : on_card.events()) {
      if (ev.kind == pcie::BusEvent::Kind::kWrite && ev.downstream) {
        if (first_data < 0) first_data = ev.time;
        last_data = ev.time;
        data_bytes += ev.bytes;
      }
    }

    m.tx_overhead_us = units::to_us(first_req - *t_submit);
    m.head_latency_us = units::to_us(first_resp - first_req);
    m.stream_us_per_mb = units::to_us(last_data - first_data) *
                         (1048576.0 / double(data_bytes));
    m.data_rate = units::bandwidth_MBps(Bytes(data_bytes), last_data - first_data);
    m.proto_rate = units::bandwidth_MBps(
        Bytes(req_count * 32) /* descriptor bytes on the wire */,
        last_req - first_req);
    m.req_count = req_count;
    m.filled = true;

    auto& json = bench::JsonSink::global();
    json.record("fig3", "tx_overhead_us", m.tx_overhead_us, 3.0);
    json.record("fig3", "gpu_head_latency_us", m.head_latency_us, 1.8);
    json.record("fig3", "stream_us_per_mb", m.stream_us_per_mb, 663.0);
    json.record("fig3", "data_throughput_mbps", m.data_rate, 1536.0);
    json.record("fig3", "protocol_traffic_mbps", m.proto_rate, 96.0);
  });
  runner.run();
  if (!m.filled) return 0;  // filtered out

  TextTable t({"Transaction", "Paper", "Model"});
  t.add_row({"1->2 TX overhead (submit -> first read request)", "~3 us",
             strf("%.2f us", m.tx_overhead_us)});
  t.add_row({"2->3 GPU head reading latency", "1.8 us",
             strf("%.2f us", m.head_latency_us)});
  t.add_row({"3->4 stream time per 1 MB", "663 us",
             strf("%.0f us", m.stream_us_per_mb)});
  t.add_row({"data throughput", "1536 MB/s", strf("%.0f MB/s", m.data_rate)});
  t.add_row({"read-request protocol traffic", "96 MB/s",
             strf("%.0f MB/s", m.proto_rate)});
  t.add_row({"read requests emitted", "-",
             strf("%llu x %u B granules", (unsigned long long)m.req_count,
                  32u)});
  t.print();
  std::printf(
      "\nData stream occupies %.0f%% of the 2.9 GB/s effective x8 Gen2 link "
      "(paper: 53%% of the raw link).\n",
      m.data_rate / 2900.0 * 100.0);
  return 0;
}
