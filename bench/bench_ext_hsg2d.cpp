// Extension: testing the paper's multi-dimensional-decomposition
// conjecture — "This advantage [of GPU peer-to-peer over staging] could
// increase for a multi-dimensional domain-decomposition, where the size of
// the exchanged messages shrinks in the strong scaling, thanks to more
// regularly shaped 3D sub-domains."
//
// We run the same L=256 lattice on 8 nodes decomposed 1-D (8x1 slabs) and
// 2-D (4x2 bricks), with P2P=ON and staging, and compare the communication
// advantage. Each (L, decomposition, mode) run is an independent
// simulation declared as a runner point.
#include "apps/hsg/runner.hpp"
#include "apps/hsg/runner2d.hpp"
#include "bench_common.hpp"

namespace {

using namespace apn;
using apps::hsg::CommMode;

apps::hsg::HsgMetrics run_1d(int L, int np, CommMode mode) {
  sim::Simulator sim;
  core::ApenetParams p = hw::params();
  p.p2p_tx_version = core::P2pTxVersion::kV2;
  p.p2p_prefetch_window = 32 * 1024;
  auto c = cluster::Cluster::make_cluster_i(sim, np, p, false);
  apps::hsg::HsgConfig cfg;
  cfg.L = L;
  cfg.steps = 2;
  cfg.mode = mode;
  cfg.functional = false;
  apps::hsg::HsgRun run(*c, cfg);
  return run.run();
}

apps::hsg::HsgMetrics run_2d(int L, int np, int pz, int py, CommMode mode,
                             std::uint64_t* halo_bytes) {
  sim::Simulator sim;
  core::ApenetParams p = hw::params();
  p.p2p_tx_version = core::P2pTxVersion::kV2;
  p.p2p_prefetch_window = 32 * 1024;
  auto c = cluster::Cluster::make_cluster_i(sim, np, p, false);
  apps::hsg::Hsg2dConfig cfg;
  cfg.L = L;
  cfg.steps = 2;
  cfg.pz = pz;
  cfg.py = py;
  cfg.mode = mode;
  cfg.functional = false;
  apps::hsg::Hsg2dRun run(*c, cfg);
  if (halo_bytes != nullptr) *halo_bytes = run.halo_bytes_per_phase();
  return run.run();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace apn;
  bench::Runner runner(argc, argv);
  bench::print_header(
      "EXTENSION", "1-D vs 2-D decomposition (the paper's conjecture)");

  const int np = 8;
  const int sides[] = {64, 128, 256};
  // tnet[L][0..3] = 1-D ON, 1-D OFF, 2-D ON, 2-D OFF.
  bench::Cell tnet[3][4];
  std::uint64_t halo2d[3] = {0, 0, 0};

  for (std::size_t li = 0; li < 3; ++li) {
    const int L = sides[li];
    runner.add(strf("hsg2d/L%d/1d/P2P=ON", L), [&tnet, li, L] {
      tnet[li][0] = run_1d(L, np, CommMode::kP2pOn).tnet_ps;
      bench::JsonSink::global().record("ext_hsg2d",
                                       strf("1d_on/L%d", L), tnet[li][0].v);
    });
    runner.add(strf("hsg2d/L%d/1d/P2P=OFF", L), [&tnet, li, L] {
      tnet[li][1] = run_1d(L, np, CommMode::kP2pOff).tnet_ps;
      bench::JsonSink::global().record("ext_hsg2d",
                                       strf("1d_off/L%d", L), tnet[li][1].v);
    });
    runner.add(strf("hsg2d/L%d/2d/P2P=ON", L), [&tnet, &halo2d, li, L] {
      tnet[li][2] = run_2d(L, np, 4, 2, CommMode::kP2pOn, &halo2d[li]).tnet_ps;
      bench::JsonSink::global().record("ext_hsg2d",
                                       strf("2d_on/L%d", L), tnet[li][2].v);
    });
    runner.add(strf("hsg2d/L%d/2d/P2P=OFF", L), [&tnet, li, L] {
      tnet[li][3] = run_2d(L, np, 4, 2, CommMode::kP2pOff, nullptr).tnet_ps;
      bench::JsonSink::global().record("ext_hsg2d",
                                       strf("2d_off/L%d", L), tnet[li][3].v);
    });
  }
  runner.run();

  TextTable t({"L", "Decomposition", "halo/rank/phase", "Tnet P2P=ON",
               "Tnet P2P=OFF", "P2P advantage"});
  auto adv = [](const bench::Cell& on, const bench::Cell& off) {
    return on.filled && off.filled
               ? strf("%.0f%%", 100.0 * (off.v - on.v) / off.v)
               : std::string("-");
  };
  auto ps = [](const bench::Cell& c) {
    return c.filled ? strf("%.0f ps/spin", c.v) : std::string("-");
  };
  for (std::size_t li = 0; li < 3; ++li) {
    const int L = sides[li];
    std::uint64_t halo1d = 2ull * L * L / 2 * sizeof(apps::hsg::Spin);
    t.add_row({strf("%d", L), "1-D (8 slabs)", size_label(halo1d),
               ps(tnet[li][0]), ps(tnet[li][1]),
               adv(tnet[li][0], tnet[li][1])});
    t.add_row({"", "2-D (4x2 bricks)",
               halo2d[li] != 0 ? size_label(halo2d[li]) : "-",
               ps(tnet[li][2]), ps(tnet[li][3]),
               adv(tnet[li][2], tnet[li][3])});
  }
  t.print();

  std::printf(
      "\nFinding: the 2-D decomposition exchanges ~25%% less halo and cuts\n"
      "Tnet for BOTH methods — but, against the paper's conjecture, the\n"
      "model shows the *relative* P2P advantage narrowing, not widening:\n"
      "four small concurrent face messages amortize through the staged\n"
      "path (async D2H) just as well, while each still pays the GPU_P2P_TX\n"
      "per-message setup and head latency. The conjecture would need the\n"
      "per-face messages to fall into the sub-8 KB latency regime of\n"
      "Fig. 9 before P2P pulls ahead again.\n");
  return 0;
}
