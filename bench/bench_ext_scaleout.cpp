// Extension (the paper's announced future work): scaling the applications
// to the 16- and 24-node torus configurations ("Unfortunately, we are
// currently limited to an 8-nodes test environment; this is going to
// change in the next few months, when we will be able to scale up to
// 16/24 nodes"). Set APN_BENCH_SCALE to shrink the BFS graph.
#include "apps/bfs/bfs.hpp"
#include "apps/hsg/runner.hpp"
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace apn;
  bench::JsonSink::global().init(argc, argv);
  bench::print_header("EXTENSION",
                      "Projected 16/24-node scaling (paper future work)");

  // --- HSG strong scaling beyond 8 nodes ------------------------------------
  std::printf("\nHSG L=384, P2P=ON, ps per spin update:\n");
  TextTable hsg({"NP", "Ttot", "Tnet", "speedup"});
  double base = 0;
  for (int np : {1, 2, 4, 8, 16, 24}) {
    if (384 % np != 0) continue;
    sim::Simulator sim;
    core::ApenetParams p;
    p.p2p_tx_version = core::P2pTxVersion::kV2;
    p.p2p_prefetch_window = 32 * 1024;
    auto c = cluster::Cluster::make_cluster_i(sim, np, p, false);
    apps::hsg::HsgConfig cfg;
    cfg.L = 384;
    cfg.steps = 2;
    cfg.mode = apps::hsg::CommMode::kP2pOn;
    cfg.functional = false;
    apps::hsg::HsgRun run(*c, cfg);
    auto m = run.run();
    if (np == 1) base = m.ttot_ps;
    hsg.add_row({strf("%d", np), strf("%.0f", m.ttot_ps),
                 strf("%.0f", np == 1 ? 0.0 : m.tnet_ps),
                 strf("%.2fx", base / m.ttot_ps)});
    bench::JsonSink::global().record("ext_scaleout",
                                     strf("hsg_speedup/np%d", np),
                                     base / m.ttot_ps);
  }
  hsg.print();

  // --- BFS strong scaling beyond 8 nodes ----------------------------------
  const int scale = std::min(bench::bfs_scale(), 18);  // keep 24 ranks fast
  std::printf("\nBFS |V| = 2^%d, TEPS:\n", scale);
  TextTable bfs({"NP", "TEPS", "comm share"});
  for (int np : {8, 16, 24}) {
    sim::Simulator sim;
    auto c = cluster::Cluster::make_cluster_i(sim, np, core::ApenetParams{},
                                              false);
    apps::bfs::BfsConfig cfg;
    cfg.scale = scale;
    cfg.edge_factor = 16;
    apps::bfs::BfsRun run(*c, cfg);
    auto m = run.run();
    bfs.add_row({strf("%d", np), strf("%.2g", m.teps),
                 strf("%.0f%%", 100.0 * static_cast<double>(m.comm_time) /
                                    static_cast<double>(m.wall))});
    bench::JsonSink::global().record("ext_scaleout",
                                     strf("bfs_teps/np%d", np), m.teps);
  }
  bfs.print();
  std::printf(
      "\nProjection from the validated 8-node model: the 1-D HSG halo "
      "pattern keeps scaling while the bulk hides the constant exchange; "
      "BFS all-to-all traffic grows with NP^2 flows over the fixed torus "
      "bisection, so its communication share keeps climbing.\n");
  return 0;
}
