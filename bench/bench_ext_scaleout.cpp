// Extension (the paper's announced future work): scaling the applications
// to the 16- and 24-node torus configurations ("Unfortunately, we are
// currently limited to an 8-nodes test environment; this is going to
// change in the next few months, when we will be able to scale up to
// 16/24 nodes"). Set APN_BENCH_SCALE to shrink the BFS graph. Each (app,
// NP) configuration is an independent simulation run as a runner point.
#include <optional>

#include "apps/bfs/bfs.hpp"
#include "apps/hsg/runner.hpp"
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace apn;
  bench::Runner runner(argc, argv);
  bench::print_header("EXTENSION",
                      "Projected 16/24-node scaling (paper future work)");

  // --- HSG strong scaling beyond 8 nodes ------------------------------------
  const int hsg_nps[] = {1, 2, 4, 8, 16, 24};
  std::array<std::optional<apps::hsg::HsgMetrics>, 6> hsg_m;
  for (std::size_t ni = 0; ni < 6; ++ni) {
    const int np = hsg_nps[ni];
    if (384 % np != 0) continue;
    runner.add(strf("ext/hsg/np%d", np), [&hsg_m, ni, np]()
                   -> exp::ParallelRunner::Commit {
      sim::Simulator sim;
      core::ApenetParams p = hw::params();
      p.p2p_tx_version = core::P2pTxVersion::kV2;
      p.p2p_prefetch_window = 32 * 1024;
      auto c = cluster::Cluster::make_cluster_i(sim, np, p, false);
      apps::hsg::HsgConfig cfg;
      cfg.L = 384;
      cfg.steps = 2;
      cfg.mode = apps::hsg::CommMode::kP2pOn;
      cfg.functional = false;
      apps::hsg::HsgRun run(*c, cfg);
      hsg_m[ni] = run.run();
      // The speedup record needs the np=1 baseline; defer it to the
      // ordered commit phase, by which point the baseline's work (declared
      // first) is guaranteed complete.
      return [&hsg_m, ni, np] {
        if (hsg_m[0] && hsg_m[ni]) {
          bench::JsonSink::global().record(
              "ext_scaleout", strf("hsg_speedup/np%d", np),
              hsg_m[0]->ttot_ps / hsg_m[ni]->ttot_ps);
        }
      };
    });
  }

  // --- BFS strong scaling beyond 8 nodes ----------------------------------
  const int scale = std::min(bench::bfs_scale(), 18);  // keep 24 ranks fast
  const int bfs_nps[] = {8, 16, 24};
  std::array<std::optional<apps::bfs::BfsMetrics>, 3> bfs_m;
  for (std::size_t ni = 0; ni < 3; ++ni) {
    const int np = bfs_nps[ni];
    runner.add(strf("ext/bfs/np%d", np), [&bfs_m, ni, np, scale] {
      sim::Simulator sim;
      auto c = cluster::Cluster::make_cluster_i(sim, np, hw::params(),
                                                false);
      apps::bfs::BfsConfig cfg;
      cfg.scale = scale;
      cfg.edge_factor = 16;
      apps::bfs::BfsRun run(*c, cfg);
      auto m = run.run();
      bfs_m[ni] = m;
      bench::JsonSink::global().record("ext_scaleout",
                                       strf("bfs_teps/np%d", np), m.teps);
    });
  }
  runner.run();

  std::printf("\nHSG L=384, P2P=ON, ps per spin update:\n");
  TextTable hsg({"NP", "Ttot", "Tnet", "speedup"});
  for (std::size_t ni = 0; ni < 6; ++ni) {
    const int np = hsg_nps[ni];
    const auto& m = hsg_m[ni];
    if (!m) continue;
    hsg.add_row({strf("%d", np), strf("%.0f", m->ttot_ps),
                 strf("%.0f", np == 1 ? 0.0 : m->tnet_ps),
                 hsg_m[0] ? strf("%.2fx", hsg_m[0]->ttot_ps / m->ttot_ps)
                          : "-"});
  }
  hsg.print();

  std::printf("\nBFS |V| = 2^%d, TEPS:\n", scale);
  TextTable bfs({"NP", "TEPS", "comm share"});
  for (std::size_t ni = 0; ni < 3; ++ni) {
    const auto& m = bfs_m[ni];
    if (!m) continue;
    bfs.add_row({strf("%d", bfs_nps[ni]), strf("%.2g", m->teps),
                 strf("%.0f%%", 100.0 * static_cast<double>(m->comm_time) /
                                    static_cast<double>(m->wall))});
  }
  bfs.print();
  std::printf(
      "\nProjection from the validated 8-node model: the 1-D HSG halo "
      "pattern keeps scaling while the bulk hides the constant exchange; "
      "BFS all-to-all traffic grows with NP^2 flows over the fixed torus "
      "bisection, so its communication share keeps climbing.\n");
  return 0;
}
