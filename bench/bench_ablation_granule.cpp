// Ablation: GPU_P2P_TX read-request granularity. The paper's card issues
// ~512 B read requests (inferred from its "96 MB/s of protocol traffic" at
// 1536 MB/s data rate with 32 B descriptors). Smaller granules waste
// mailbox bandwidth and descriptor processing; larger granules lengthen
// the response pipeline and hurt small messages. This sweep quantifies
// that design point. Each (granule, msg size) cell is an independent
// simulation run as a runner point.
#include <optional>

#include "bench_common.hpp"
#include "core/gpu_p2p_tx.hpp"

namespace {

using namespace apn;

struct Result {
  double mbps;
  double protocol_mbps;
};

Result read_bw(std::uint32_t granule, std::uint64_t msg) {
  sim::Simulator sim;
  core::ApenetParams p = hw::params();
  p.flush_at_switch = true;
  p.p2p_request_bytes = granule;
  auto c = cluster::Cluster::make_cluster_i(sim, 1, p, false);
  int reps = bench::reps_for(msg, 16ull << 20);
  auto r = cluster::loopback_bandwidth(*c, 0, core::MemType::kGpu, msg, reps);
  Result out;
  out.mbps = r.mbps;
  const auto& tx = c->node(0).card().gpu_tx();
  out.protocol_mbps =
      r.mbps * 32.0 * static_cast<double>(tx.requests_issued()) /
      static_cast<double>(tx.bytes_read());
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace apn;
  bench::Runner runner(argc, argv);
  bench::print_header("ABLATION",
                      "GPU_P2P_TX read-request granularity (v3, flushed)");

  const std::uint32_t granules[] = {128u, 256u, 512u, 1024u, 2048u, 4096u};
  // results[gi][0] = 64K msg, results[gi][1] = 1M msg.
  std::array<std::array<std::optional<Result>, 2>, 6> results;

  for (std::size_t gi = 0; gi < 6; ++gi) {
    const std::uint32_t g = granules[gi];
    runner.add(strf("granule/%uB/64K", g), [&results, gi, g] {
      Result r = read_bw(g, 64 * 1024);
      results[gi][0] = r;
      bench::JsonSink::global().record("ablation_granule",
                                       strf("%uB/64K", g), r.mbps);
    });
    runner.add(strf("granule/%uB/1M", g), [&results, gi, g] {
      Result r = read_bw(g, 1 << 20);
      results[gi][1] = r;
      bench::JsonSink::global().record("ablation_granule", strf("%uB/1M", g),
                                       r.mbps);
      bench::JsonSink::global().record("ablation_granule",
                                       strf("%uB/protocol", g),
                                       r.protocol_mbps);
    });
  }
  runner.run();

  TextTable t({"Granule", "64K msg MB/s", "1M msg MB/s",
               "protocol traffic", "descriptors per MB"});
  for (std::size_t gi = 0; gi < 6; ++gi) {
    const std::uint32_t g = granules[gi];
    const auto& small = results[gi][0];
    const auto& large = results[gi][1];
    t.add_row({strf("%u B", g), small ? strf("%.0f", small->mbps) : "-",
               large ? strf("%.0f", large->mbps) : "-",
               large ? strf("%.0f MB/s", large->protocol_mbps) : "-",
               strf("%u", (1u << 20) / g)});
  }
  t.print();
  std::printf(
      "\nData rate is set by the prefetch window, not the granule, so it is "
      "flat across this sweep — the granule's real cost is protocol "
      "traffic: 128 B quadruples the mailbox-descriptor bandwidth for no "
      "gain. At the card's actual 512 B granule the model reproduces the "
      "paper's ~96 MB/s protocol-traffic observation exactly.\n");
  return 0;
}
