// Reproduces Fig. 8: APEnet+ latency (half round-trip of a ping-pong) for
// the four buffer-type combinations, 32 B - 4 KB. Each cell is an
// independent simulation run as a runner point.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace apn;
  using core::MemType;
  bench::Runner runner(argc, argv);
  bench::print_header("FIG 8", "APEnet+ half-round-trip latency, combos");

  struct Combo {
    const char* label;
    MemType src, dst;
  };
  const Combo combos[] = {
      {"H-H", MemType::kHost, MemType::kHost},
      {"H-G", MemType::kHost, MemType::kGpu},
      {"G-H", MemType::kGpu, MemType::kHost},
      {"G-G", MemType::kGpu, MemType::kGpu},
  };

  const auto sizes = bench::sweep_32B(4096);
  std::vector<std::array<bench::Cell, 4>> results(sizes.size());

  for (std::size_t si = 0; si < sizes.size(); ++si) {
    const std::uint64_t size = sizes[si];
    for (std::size_t ci = 0; ci < 4; ++ci) {
      const Combo combo = combos[ci];
      runner.add(
          "fig8/" + std::string(combo.label) + "/" + size_label(size),
          [&results, si, ci, combo, size] {
            sim::Simulator sim;
            auto c = cluster::Cluster::make_cluster_i(
                sim, 2, hw::params(), false);
            cluster::TwoNodeOptions opt;
            opt.src_type = combo.src;
            opt.dst_type = combo.dst;
            Time lat = cluster::pingpong_latency(*c, size, 100, opt);
            results[si][ci] = units::to_us(lat);
            // Paper anchors (Fig. 8): 32 B latency, 6.3 us H-H, 8.2 us G-G.
            double paper = NAN;
            if (size == 32 && std::string(combo.label) == "H-H") paper = 6.3;
            if (size == 32 && std::string(combo.label) == "G-G") paper = 8.2;
            bench::JsonSink::global().record(
                "fig8", std::string(combo.label) + "/" + size_label(size),
                units::to_us(lat), paper);
          });
    }
  }
  runner.run();

  TextTable t({"Msg size", "H-H", "H-G", "G-H", "G-G"});
  for (std::size_t si = 0; si < sizes.size(); ++si) {
    t.add_row({size_label(sizes[si]), results[si][0].str("%6.2f"),
               results[si][1].str("%6.2f"), results[si][2].str("%6.2f"),
               results[si][3].str("%6.2f")});
  }
  t.print();
  std::printf(
      "\nus. Paper: H-H = 6.3 us, G-G = 8.2 us at 32 B; GPU source adds the "
      "GPU_P2P_TX + head-latency overhead, GPU destination the write-window "
      "management.\n");
  return 0;
}
