// Extension: cross-generation sweep over the registered hardware profiles
// (docs/HARDWARE.md). Re-runs the paper's three headline reproductions —
// Table I memory-read bandwidth, Fig. 6 two-node bandwidth and the
// Fig. 8/9 small-message latency — once per profile, so the effect of each
// hardware generation (apenet_2013 -> apenet_28nm -> gen3) shows up as a
// column delta instead of a code change.
//
// Every point installs a hw::ScopedProfile before building its cluster, so
// one process measures all generations concurrently and each NDJSON row is
// tagged with the profile it ran under. A global --hw-profile selection
// still applies to any *other* bench; here the profile axis is explicit.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace apn;
  using core::MemType;
  bench::Runner runner(argc, argv);
  bench::print_header(
      "EXT GENERATIONS",
      "Table I / Fig. 6 / Fig. 8-9 reproductions across hardware profiles");

  const std::vector<std::string> profiles = hw::names();
  const std::uint64_t bw_sizes[] = {4096, 64 * 1024, 1ull << 20, 4ull << 20};
  enum Row {
    kLoopH, kLoopG,            // Table I-style memory-read bandwidth
    kBwHhBase, kBwGgBase = kBwHhBase + 4,  // Fig. 6 H-H / G-G per size
    kLatHh = kBwGgBase + 4, kLatGg,        // Fig. 8/9 32 B latency
    kRows
  };
  std::vector<std::array<bench::Cell, kRows>> results(profiles.size());

  for (std::size_t pi = 0; pi < profiles.size(); ++pi) {
    const std::string prof = profiles[pi];
    const std::string base = "gen/" + prof + "/";

    // Table I: pure memory-read bandwidth (packets flushed at the internal
    // switch), host and GPU source.
    for (int gpu_src = 0; gpu_src < 2; ++gpu_src) {
      runner.add(base + "read/" + (gpu_src ? "G" : "H"),
                 [&results, pi, prof, gpu_src] {
                   hw::ScopedProfile sp(prof);
                   sim::Simulator sim;
                   core::ApenetParams p = hw::params();
                   p.flush_at_switch = true;
                   auto c = cluster::Cluster::make_cluster_i(sim, 1, p, false);
                   auto r = cluster::loopback_bandwidth(
                       *c, 0, gpu_src ? MemType::kGpu : MemType::kHost,
                       1ull << 20, 8);
                   results[pi][gpu_src ? kLoopG : kLoopH] = r.mbps;
                   bench::JsonSink::global().record(
                       "ext_generations",
                       prof + "/read/" + (gpu_src ? "G" : "H"), r.mbps);
                 });
    }

    // Fig. 6: two-node uni-directional bandwidth, H-H and G-G.
    for (std::size_t si = 0; si < 4; ++si) {
      const std::uint64_t size = bw_sizes[si];
      for (int gg = 0; gg < 2; ++gg) {
        runner.add(base + "bw/" + (gg ? "G-G" : "H-H") + "/" +
                       size_label(size),
                   [&results, pi, prof, si, size, gg] {
                     hw::ScopedProfile sp(prof);
                     sim::Simulator sim;
                     auto c = cluster::Cluster::make_cluster_i(
                         sim, 2, hw::params(), false);
                     cluster::TwoNodeOptions opt;
                     opt.src_type = gg ? MemType::kGpu : MemType::kHost;
                     opt.dst_type = opt.src_type;
                     int reps = bench::reps_for(size, 12ull << 20);
                     auto r = cluster::twonode_bandwidth(*c, size, reps, opt);
                     results[pi][(gg ? kBwGgBase : kBwHhBase) +
                                 static_cast<int>(si)] = r.mbps;
                     bench::JsonSink::global().record(
                         "ext_generations",
                         prof + "/bw/" + (gg ? "G-G" : "H-H") + "/" +
                             size_label(size),
                         r.mbps);
                   });
      }
    }

    // Fig. 8/9: 32 B half round-trip latency, H-H and G-G.
    for (int gg = 0; gg < 2; ++gg) {
      runner.add(base + "lat/" + (gg ? "G-G" : "H-H"),
                 [&results, pi, prof, gg] {
                   hw::ScopedProfile sp(prof);
                   sim::Simulator sim;
                   auto c = cluster::Cluster::make_cluster_i(
                       sim, 2, hw::params(), false);
                   cluster::TwoNodeOptions opt;
                   opt.src_type = gg ? MemType::kGpu : MemType::kHost;
                   opt.dst_type = opt.src_type;
                   Time lat = cluster::pingpong_latency(*c, 32, 50, opt);
                   double us = units::to_us(lat);
                   results[pi][gg ? kLatGg : kLatHh] = us;
                   bench::JsonSink::global().record(
                       "ext_generations",
                       prof + "/lat/" + (gg ? "G-G" : "H-H"), us);
                 });
    }
  }
  runner.run();

  std::vector<std::string> headers{"Measurement"};
  headers.insert(headers.end(), profiles.begin(), profiles.end());
  TextTable t(headers);
  auto row = [&](const std::string& label, Row r, const char* fmt) {
    std::vector<std::string> cells{label};
    for (std::size_t pi = 0; pi < profiles.size(); ++pi)
      cells.push_back(results[pi][r].str(fmt));
    t.add_row(cells);
  };
  row("read H (MB/s)", kLoopH, "%8.1f");
  row("read G (MB/s)", kLoopG, "%8.1f");
  for (std::size_t si = 0; si < 4; ++si)
    row("bw H-H " + size_label(bw_sizes[si]) + " (MB/s)",
        static_cast<Row>(kBwHhBase + static_cast<int>(si)), "%8.1f");
  for (std::size_t si = 0; si < 4; ++si)
    row("bw G-G " + size_label(bw_sizes[si]) + " (MB/s)",
        static_cast<Row>(kBwGgBase + static_cast<int>(si)), "%8.1f");
  row("lat H-H 32B (us)", kLatHh, "%8.2f");
  row("lat G-G 32B (us)", kLatGg, "%8.2f");
  t.print();
  std::printf(
      "\nColumns are hardware profiles (docs/HARDWARE.md). apenet_2013 is "
      "the paper's Cluster I; apenet_28nm adds hardware V2P + faster torus "
      "links (arXiv:1311.1741); gen3 is a projected PCIe Gen3 host "
      "(arXiv:2201.01088).\n");
  return 0;
}
