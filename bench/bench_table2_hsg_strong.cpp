// Reproduces Table II: Heisenberg spin glass strong scaling on Cluster I,
// L = 256, GPU peer-to-peer enabled for both RX and TX. Times are
// picoseconds per single-spin update (lower is better).
#include "apps/hsg/runner.hpp"
#include "bench_common.hpp"

int main() {
  using namespace apn;
  using apps::hsg::CommMode;
  using apps::hsg::HsgConfig;
  using apps::hsg::HsgMetrics;
  using apps::hsg::HsgRun;
  bench::print_header("TABLE II",
                      "HSG strong scaling, L=256, P2P=ON (ps per spin)");

  struct PaperRow {
    int np;
    const char* ttot;
    const char* tbnd_net;
    const char* tnet;
  };
  const PaperRow paper[] = {{1, "921", "11", "n.a."},
                            {2, "416", "108", "97"},
                            {4, "202", "119", "113"},
                            {8, "148", "148", "141"}};

  TextTable t({"NP", "Ttot (paper)", "Ttot", "Tbnd+Tnet (paper)",
               "Tbnd+Tnet", "Tnet (paper)", "Tnet"});
  for (const PaperRow& row : paper) {
    sim::Simulator sim;
    core::ApenetParams p;
    p.torus_link_gbps = 28.0;
    // The application results predate GPU_P2P_TX v3: use v2 with the
    // 32 KB prefetch window the card shipped with.
    p.p2p_tx_version = core::P2pTxVersion::kV2;
    p.p2p_prefetch_window = 32 * 1024;
    auto c = cluster::Cluster::make_cluster_i(sim, row.np, p, false);
    HsgConfig cfg;
    cfg.L = 256;
    cfg.steps = 2;
    cfg.mode = CommMode::kP2pOn;
    cfg.functional = false;
    HsgRun run(*c, cfg);
    HsgMetrics m = run.run();
    t.add_row({strf("%d", row.np), row.ttot, strf("%.0f", m.ttot_ps),
               row.tbnd_net, strf("%.0f", m.tbnd_net_ps), row.tnet,
               strf("%.0f", row.np == 1 ? 0.0 : m.tnet_ps)});
  }
  t.print();
  std::printf(
      "\nPaper's shape: boundary+network stays roughly constant under the "
      "1-D decomposition while the bulk shrinks with NP; scaling is good "
      "until the two contributions meet (~8 nodes).\n");
  return 0;
}
