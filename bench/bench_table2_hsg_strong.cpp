// Reproduces Table II: Heisenberg spin glass strong scaling on Cluster I,
// L = 256, GPU peer-to-peer enabled for both RX and TX. Times are
// picoseconds per single-spin update (lower is better). Each NP row is an
// independent simulation run as a runner point.
#include <optional>

#include "apps/hsg/runner.hpp"
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace apn;
  using apps::hsg::CommMode;
  using apps::hsg::HsgConfig;
  using apps::hsg::HsgMetrics;
  using apps::hsg::HsgRun;
  bench::Runner runner(argc, argv);
  bench::print_header("TABLE II",
                      "HSG strong scaling, L=256, P2P=ON (ps per spin)");

  struct PaperRow {
    int np;
    const char* ttot;
    const char* tbnd_net;
    const char* tnet;
  };
  const PaperRow paper[] = {{1, "921", "11", "n.a."},
                            {2, "416", "108", "97"},
                            {4, "202", "119", "113"},
                            {8, "148", "148", "141"}};

  std::array<std::optional<HsgMetrics>, 4> results;

  for (std::size_t ri = 0; ri < 4; ++ri) {
    const int np = paper[ri].np;
    runner.add(strf("table2/np%d", np), [&results, ri, np] {
      sim::Simulator sim;
      core::ApenetParams p = hw::params();
      p.torus_link_gbps = 28.0;
      // The application results predate GPU_P2P_TX v3: use v2 with the
      // 32 KB prefetch window the card shipped with.
      p.p2p_tx_version = core::P2pTxVersion::kV2;
      p.p2p_prefetch_window = 32 * 1024;
      auto c = cluster::Cluster::make_cluster_i(sim, np, p, false);
      HsgConfig cfg;
      cfg.L = 256;
      cfg.steps = 2;
      cfg.mode = CommMode::kP2pOn;
      cfg.functional = false;
      HsgRun run(*c, cfg);
      HsgMetrics m = run.run();
      results[ri] = m;
      bench::JsonSink::global().record("table2", strf("ttot/np%d", np),
                                       m.ttot_ps);
      bench::JsonSink::global().record("table2", strf("tnet/np%d", np),
                                       np == 1 ? 0.0 : m.tnet_ps);
    });
  }
  runner.run();

  TextTable t({"NP", "Ttot (paper)", "Ttot", "Tbnd+Tnet (paper)",
               "Tbnd+Tnet", "Tnet (paper)", "Tnet"});
  for (std::size_t ri = 0; ri < 4; ++ri) {
    const PaperRow& row = paper[ri];
    const auto& m = results[ri];
    t.add_row({strf("%d", row.np), row.ttot,
               m ? strf("%.0f", m->ttot_ps) : "-", row.tbnd_net,
               m ? strf("%.0f", m->tbnd_net_ps) : "-", row.tnet,
               m ? strf("%.0f", row.np == 1 ? 0.0 : m->tnet_ps) : "-"});
  }
  t.print();
  std::printf(
      "\nPaper's shape: boundary+network stays roughly constant under the "
      "1-D decomposition while the bulk shrinks with NP; scaling is good "
      "until the two contributions meet (~8 nodes).\n");
  return 0;
}
