// Reproduces Table III: HSG two-node break-down, L = 256, for the three
// P2P usage combinations on APEnet+ plus OpenMPI-over-IB references
// (Cluster II x8 slot and Cluster I x4 slot). Picoseconds per spin update.
// Each column is an independent simulation run as a runner point.
#include <optional>

#include "apps/hsg/runner.hpp"
#include "bench_common.hpp"

namespace {

apn::apps::hsg::HsgMetrics run_mode(apn::apps::hsg::CommMode mode,
                                    bool ib_x4_slot) {
  using namespace apn;
  using apps::hsg::CommMode;
  sim::Simulator sim;
  std::unique_ptr<cluster::Cluster> c;
  if (mode == CommMode::kIb) {
    // OpenMPI-era CUDA support staged through host memory with synchronous
    // copies; disable the MVAPICH-style pipeline for this baseline.
    mpi::MpiParams mp = mpi::openmpi2012_params();
    cluster::NodeConfig cfg;
    cfg.has_apenet = false;
    cfg.has_ib = true;
    if (ib_x4_slot) {
      // Cluster I: ConnectX-2 in the constrained x4 slot.
      cfg.gpus = {gpu::fermi_c2050()};
      cfg.ib_slot = pcie::gen2_x4();
    } else {
      cfg.gpus = {gpu::fermi_c2075(), gpu::fermi_c2075()};
      cfg.ib_slot = pcie::gen2_x8();
    }
    c = std::make_unique<cluster::Cluster>(sim, core::TorusShape{2, 1, 1},
                                           cfg, core::ApenetParams{},
                                           ib::HcaParams{}, mp);
  } else {
    core::ApenetParams p = hw::params();
    p.p2p_tx_version = core::P2pTxVersion::kV2;
    p.p2p_prefetch_window = 32 * 1024;
    c = cluster::Cluster::make_cluster_i(sim, 2, p, false);
  }
  apps::hsg::HsgConfig cfg;
  cfg.L = 256;
  cfg.steps = 2;
  cfg.mode = mode;
  cfg.functional = false;
  apps::hsg::HsgRun run(*c, cfg);
  return run.run();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace apn;
  using apps::hsg::CommMode;
  bench::Runner runner(argc, argv);
  bench::print_header(
      "TABLE III", "HSG two-node break-down, L=256 (ps per spin update)");

  struct Col {
    const char* label;
    CommMode mode;
    bool x4;
    const char* paper_ttot;
    const char* paper_tbnd_net;
    const char* paper_tnet;
  };
  const Col cols[] = {
      {"P2P=ON", CommMode::kP2pOn, false, "416", "108", "97"},
      {"P2P=RX", CommMode::kP2pRx, false, "416", "97", "91"},
      {"P2P=OFF", CommMode::kP2pOff, false, "416", "122", "114"},
      {"OMPI/IB x8 (Cl.II)", CommMode::kIb, false, "416", "108", "101"},
      {"OMPI/IB x4 (Cl.I)", CommMode::kIb, true, "416", "108", "101"},
  };
  constexpr std::size_t kCols = std::size(cols);

  std::array<std::optional<apps::hsg::HsgMetrics>, kCols> results;
  for (std::size_t ci = 0; ci < kCols; ++ci) {
    const Col col = cols[ci];
    runner.add(std::string("table3/") + col.label, [&results, ci, col] {
      apps::hsg::HsgMetrics m = run_mode(col.mode, col.x4);
      results[ci] = m;
      bench::JsonSink::global().record(
          "table3", std::string("tnet/") + col.label, m.tnet_ps);
    });
  }
  runner.run();

  TextTable t({"Variant", "Ttot (paper)", "Ttot", "Tbnd+Tnet (paper)",
               "Tbnd+Tnet", "Tnet (paper)", "Tnet"});
  for (std::size_t ci = 0; ci < kCols; ++ci) {
    const Col& col = cols[ci];
    const auto& m = results[ci];
    t.add_row({col.label, col.paper_ttot,
               m ? strf("%.0f", m->ttot_ps) : "-", col.paper_tbnd_net,
               m ? strf("%.0f", m->tbnd_net_ps) : "-", col.paper_tnet,
               m ? strf("%.0f", m->tnet_ps) : "-"});
  }
  t.print();
  std::printf(
      "\nPaper: the bulk fully hides boundary+communication at L=256/NP=2 "
      "(Ttot unchanged across variants); P2P=RX and P2P=ON give ~20%% and "
      "~14%% lower Tnet than staging.\n");
  return 0;
}
