// Reproduces Table IV: distributed BFS strong scaling — traversed edges
// per second (TEPS) for |V| = 2^20, APEnet+ (P2P=ON) vs InfiniBand/MPI.
// Set APN_BENCH_SCALE to shrink the graph for quick runs.
#include "apps/bfs/bfs.hpp"
#include "bench_common.hpp"

namespace {

apn::apps::bfs::BfsMetrics run_bfs(int np, apn::apps::bfs::BfsNet net,
                                   int scale) {
  using namespace apn;
  sim::Simulator sim;
  // The paper's IB reference for the applications is OpenMPI-era staging.
  std::unique_ptr<cluster::Cluster> c =
      net == apps::bfs::BfsNet::kIb
          ? cluster::Cluster::make_cluster_ii(sim, np, true,
                                              mpi::openmpi2012_params())
          : cluster::Cluster::make_cluster_i(sim, np, core::ApenetParams{},
                                             false);
  apps::bfs::BfsConfig cfg;
  cfg.scale = scale;
  cfg.edge_factor = 16;
  cfg.net = net;
  apps::bfs::BfsRun run(*c, cfg);
  return run.run();
}

}  // namespace

int main() {
  using namespace apn;
  using apps::bfs::BfsNet;
  const int scale = bench::bfs_scale();
  bench::print_header(
      "TABLE IV",
      strf("BFS strong scaling, TEPS, |V| = 2^%d, edgefactor 16", scale)
          .c_str());

  struct PaperRow {
    int np;
    const char* apenet;
    const char* ib;
  };
  const PaperRow paper[] = {{1, "6.7e7", "6.2e7"},
                            {2, "9.8e7", "7.8e7"},
                            {4, "1.3e8", "8.2e7"},
                            {8, "1.7e8", "2.0e8"}};

  TextTable t({"NP", "APEnet+ (paper)", "APEnet+ (model)", "OMPI/IB (paper)",
               "OMPI/IB (model)", "validated"});
  for (const PaperRow& row : paper) {
    auto apn_m = run_bfs(row.np, BfsNet::kApenet, scale);
    auto ib_m = run_bfs(row.np, BfsNet::kIb, scale);
    t.add_row({strf("%d", row.np), row.apenet, strf("%.2g", apn_m.teps),
               row.ib, strf("%.2g", ib_m.teps),
               apn_m.validated && ib_m.validated ? "yes" : "NO"});
  }
  t.print();
  std::printf(
      "\nPaper's shape: APEnet+ leads up to 4 nodes thanks to lower "
      "small-message latency; at 8 nodes the torus suffers on the all-to-all "
      "pattern and IB overtakes.\n");
  return 0;
}
