// Reproduces Table IV: distributed BFS strong scaling — traversed edges
// per second (TEPS) for |V| = 2^20, APEnet+ (P2P=ON) vs InfiniBand/MPI.
// Set APN_BENCH_SCALE to shrink the graph for quick runs. Each (NP, net)
// cell is an independent simulation run as a runner point.
#include <optional>

#include "apps/bfs/bfs.hpp"
#include "bench_common.hpp"

namespace {

apn::apps::bfs::BfsMetrics run_bfs(int np, apn::apps::bfs::BfsNet net,
                                   int scale) {
  using namespace apn;
  sim::Simulator sim;
  // The paper's IB reference for the applications is OpenMPI-era staging.
  std::unique_ptr<cluster::Cluster> c =
      net == apps::bfs::BfsNet::kIb
          ? cluster::Cluster::make_cluster_ii(sim, np, true,
                                              mpi::openmpi2012_params())
          : cluster::Cluster::make_cluster_i(sim, np, hw::params(),
                                             false);
  apps::bfs::BfsConfig cfg;
  cfg.scale = scale;
  cfg.edge_factor = 16;
  cfg.net = net;
  apps::bfs::BfsRun run(*c, cfg);
  return run.run();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace apn;
  using apps::bfs::BfsMetrics;
  using apps::bfs::BfsNet;
  bench::Runner runner(argc, argv);
  const int scale = bench::bfs_scale();
  bench::print_header(
      "TABLE IV",
      strf("BFS strong scaling, TEPS, |V| = 2^%d, edgefactor 16", scale)
          .c_str());

  struct PaperRow {
    int np;
    const char* apenet;
    const char* ib;
  };
  const PaperRow paper[] = {{1, "6.7e7", "6.2e7"},
                            {2, "9.8e7", "7.8e7"},
                            {4, "1.3e8", "8.2e7"},
                            {8, "1.7e8", "2.0e8"}};

  // results[row][0] = APEnet+, results[row][1] = OMPI/IB.
  std::array<std::array<std::optional<BfsMetrics>, 2>, 4> results;
  for (std::size_t ri = 0; ri < 4; ++ri) {
    const int np = paper[ri].np;
    runner.add(strf("table4/apenet/np%d", np), [&results, ri, np, scale] {
      BfsMetrics m = run_bfs(np, BfsNet::kApenet, scale);
      results[ri][0] = m;
      bench::JsonSink::global().record("table4", strf("apenet_teps/np%d", np),
                                       m.teps);
    });
    runner.add(strf("table4/ib/np%d", np), [&results, ri, np, scale] {
      BfsMetrics m = run_bfs(np, BfsNet::kIb, scale);
      results[ri][1] = m;
      bench::JsonSink::global().record("table4", strf("ib_teps/np%d", np),
                                       m.teps);
    });
  }
  runner.run();

  TextTable t({"NP", "APEnet+ (paper)", "APEnet+ (model)", "OMPI/IB (paper)",
               "OMPI/IB (model)", "validated"});
  for (std::size_t ri = 0; ri < 4; ++ri) {
    const PaperRow& row = paper[ri];
    const auto& apn_m = results[ri][0];
    const auto& ib_m = results[ri][1];
    std::string validated = "-";
    if (apn_m && ib_m)
      validated = apn_m->validated && ib_m->validated ? "yes" : "NO";
    t.add_row({strf("%d", row.np), row.apenet,
               apn_m ? strf("%.2g", apn_m->teps) : "-", row.ib,
               ib_m ? strf("%.2g", ib_m->teps) : "-", validated});
  }
  t.print();
  std::printf(
      "\nPaper's shape: APEnet+ leads up to 4 nodes thanks to lower "
      "small-message latency; at 8 nodes the torus suffers on the all-to-all "
      "pattern and IB overtakes.\n");
  return 0;
}
