// Reproduces Table I: APEnet+ low-level bandwidths from single-board
// loop-back tests. Memory-read rows flush packets at the internal switch;
// loop-back rows include the full RX processing on the Nios II. Each row
// is an independent simulation, declared as a runner point and executed
// concurrently under --jobs.
#include "bench_common.hpp"

namespace apn {
namespace {

using cluster::Cluster;
using core::ApenetParams;
using core::MemType;

double read_bw(const gpu::GpuArch* arch, MemType type, bool flush) {
  sim::Simulator sim;
  ApenetParams p = hw::params();
  p.flush_at_switch = flush;
  std::unique_ptr<Cluster> c;
  if (arch != nullptr) {
    cluster::NodeConfig cfg;
    cfg.gpus = {*arch};
    cfg.has_apenet = true;
    cfg.has_ib = false;
    c = std::make_unique<Cluster>(sim, core::TorusShape{1, 1, 1}, cfg, p);
  } else {
    c = Cluster::make_cluster_i(sim, 1, p, false);
  }
  return cluster::loopback_bandwidth(*c, 0, type, 1 << 20, 32).mbps;
}

/// BAR1 read bandwidth: GPU-source PUTs with the MemType::kGpuBar1 flag —
/// the card's DMA-read engine fetches the buffer through the BAR1 aperture
/// with plain PCIe memory reads (no P2P protocol).
double bar1_read_bw(const gpu::GpuArch& arch) {
  sim::Simulator sim;
  cluster::NodeConfig cfg;
  cfg.gpus = {arch};
  cfg.has_apenet = true;
  cfg.has_ib = false;
  ApenetParams p = hw::params();
  p.flush_at_switch = true;
  Cluster c(sim, core::TorusShape{1, 1, 1}, cfg, p);
  int count = arch.bar1_read_rate < Rate(1e9) ? 4 : 16;  // Fermi BAR1 is slow
  return cluster::loopback_bandwidth(c, 0, MemType::kGpuBar1, 1 << 20,
                                     count)
      .mbps;
}

}  // namespace
}  // namespace apn

int main(int argc, char** argv) {
  using namespace apn;
  bench::Runner runner(argc, argv);
  bench::print_header("TABLE I", "APEnet+ low-level loop-back bandwidths");

  struct Row {
    const char* point;       // runner point name
    const char* test;        // table columns
    const char* method;
    const char* paper;
    const char* nios;
    bool gbps;               // print as GB/s (vs MB/s)
    double (*measure)();
  };
  static const Row rows[] = {
      {"host_read", "Host mem read", "-", "2.4 GB/s", "none", true,
       [] { return read_bw(nullptr, MemType::kHost, true); }},
      {"fermi_p2p_read", "GPU mem read", "Fermi/P2P", "1.5 GB/s",
       "GPU_P2P_TX", true,
       [] {
         gpu::GpuArch fermi = gpu::fermi_c2050();
         return read_bw(&fermi, MemType::kGpu, true);
       }},
      {"fermi_bar1_read", "GPU mem read", "Fermi/BAR1", "150 MB/s",
       "TX DMA (BAR1)", false,
       [] { return bar1_read_bw(gpu::fermi_c2050()); }},
      {"kepler_p2p_read", "GPU mem read", "Kepler/P2P", "1.6 GB/s",
       "GPU_P2P_TX", true,
       [] {
         gpu::GpuArch kepler = gpu::kepler_k20();
         return read_bw(&kepler, MemType::kGpu, true);
       }},
      {"kepler_bar1_read", "GPU mem read", "Kepler/BAR1", "1.6 GB/s",
       "TX DMA (BAR1)", true,
       [] { return bar1_read_bw(gpu::kepler_k20()); }},
      {"fermi_gg_loopback", "GPU-to-GPU loop-back", "Fermi/P2P", "1.1 GB/s",
       "GPU_P2P_TX + RX", true,
       [] {
         gpu::GpuArch fermi = gpu::fermi_c2050();
         return read_bw(&fermi, MemType::kGpu, false);
       }},
      {"hh_loopback", "Host-to-Host loop-back", "-", "1.2 GB/s", "RX", true,
       [] { return read_bw(nullptr, MemType::kHost, false); }},
  };
  constexpr std::size_t kRows = sizeof(rows) / sizeof(rows[0]);

  bench::Cell results[kRows];
  for (std::size_t i = 0; i < kRows; ++i) {
    runner.add(std::string("table1/") + rows[i].point, [&results, i] {
      double mbps = rows[i].measure();
      results[i] = mbps;
      bench::JsonSink::global().record("table1", rows[i].point, mbps);
    });
  }
  runner.run();

  TextTable t({"Test", "GPU/method", "Paper", "Model", "Nios II tasks"});
  for (std::size_t i = 0; i < kRows; ++i) {
    std::string model =
        !results[i].filled ? std::string("-")
        : rows[i].gbps     ? strf("%.2f GB/s", results[i].v / 1000)
                           : strf("%.0f MB/s", results[i].v);
    t.add_row({rows[i].test, rows[i].method, rows[i].paper, model,
               rows[i].nios});
  }
  t.print();
  return 0;
}
