// Reproduces Table I: APEnet+ low-level bandwidths from single-board
// loop-back tests. Memory-read rows flush packets at the internal switch;
// loop-back rows include the full RX processing on the Nios II.
#include "bench_common.hpp"

namespace apn {
namespace {

using bench::print_header;
using cluster::Cluster;
using core::ApenetParams;
using core::MemType;

double read_bw(const gpu::GpuArch* arch, MemType type, bool flush) {
  sim::Simulator sim;
  ApenetParams p;
  p.flush_at_switch = flush;
  std::unique_ptr<Cluster> c;
  if (arch != nullptr) {
    cluster::NodeConfig cfg;
    cfg.gpus = {*arch};
    cfg.has_apenet = true;
    cfg.has_ib = false;
    c = std::make_unique<Cluster>(sim, core::TorusShape{1, 1, 1}, cfg, p);
  } else {
    c = Cluster::make_cluster_i(sim, 1, p, false);
  }
  return cluster::loopback_bandwidth(*c, 0, type, 1 << 20, 32).mbps;
}

/// BAR1 read bandwidth: GPU-source PUTs with the MemType::kGpuBar1 flag —
/// the card's DMA-read engine fetches the buffer through the BAR1 aperture
/// with plain PCIe memory reads (no P2P protocol).
double bar1_read_bw(const gpu::GpuArch& arch) {
  sim::Simulator sim;
  cluster::NodeConfig cfg;
  cfg.gpus = {arch};
  cfg.has_apenet = true;
  cfg.has_ib = false;
  ApenetParams p;
  p.flush_at_switch = true;
  Cluster c(sim, core::TorusShape{1, 1, 1}, cfg, p);
  int count = arch.bar1_read_rate < 1e9 ? 4 : 16;  // Fermi BAR1 is slow
  return cluster::loopback_bandwidth(c, 0, MemType::kGpuBar1, 1 << 20,
                                     count)
      .mbps;
}

}  // namespace
}  // namespace apn

int main() {
  using namespace apn;
  bench::print_header("TABLE I", "APEnet+ low-level loop-back bandwidths");

  gpu::GpuArch fermi = gpu::fermi_c2050();
  gpu::GpuArch kepler = gpu::kepler_k20();

  TextTable t({"Test", "GPU/method", "Paper", "Model", "Nios II tasks"});
  t.add_row({"Host mem read", "-", "2.4 GB/s",
             strf("%.2f GB/s", read_bw(nullptr, core::MemType::kHost, true) / 1000),
             "none"});
  t.add_row({"GPU mem read", "Fermi/P2P", "1.5 GB/s",
             strf("%.2f GB/s", read_bw(&fermi, core::MemType::kGpu, true) / 1000),
             "GPU_P2P_TX"});
  t.add_row({"GPU mem read", "Fermi/BAR1", "150 MB/s",
             strf("%.0f MB/s", bar1_read_bw(fermi)), "TX DMA (BAR1)"});
  t.add_row({"GPU mem read", "Kepler/P2P", "1.6 GB/s",
             strf("%.2f GB/s", read_bw(&kepler, core::MemType::kGpu, true) / 1000),
             "GPU_P2P_TX"});
  t.add_row({"GPU mem read", "Kepler/BAR1", "1.6 GB/s",
             strf("%.2f GB/s", bar1_read_bw(kepler) / 1000), "TX DMA (BAR1)"});
  t.add_row({"GPU-to-GPU loop-back", "Fermi/P2P", "1.1 GB/s",
             strf("%.2f GB/s", read_bw(&fermi, core::MemType::kGpu, false) / 1000),
             "GPU_P2P_TX + RX"});
  t.add_row({"Host-to-Host loop-back", "-", "1.2 GB/s",
             strf("%.2f GB/s", read_bw(nullptr, core::MemType::kHost, false) / 1000),
             "RX"});
  t.print();
  return 0;
}
