// Reproduces Fig. 9: GPU-to-GPU latency — APEnet+ with P2P, APEnet+ with
// staging (P2P=OFF), and MVAPICH2/IB (OSU GPU latency test) for reference.
// Peer-to-peer halves the latency relative to staging because it removes
// the two synchronous cudaMemcpy calls from the critical path.
#include "bench_common.hpp"

int main() {
  using namespace apn;
  using core::MemType;
  bench::print_header("FIG 9", "G-G latency: P2P vs staging vs IB/MVAPICH2");

  TextTable t({"Msg size", "APEnet+ P2P=ON", "APEnet+ P2P=OFF",
               "IB MVAPICH2"});
  for (std::uint64_t size : bench::sweep_32B(64 * 1024)) {
    double on, off, ib;
    {
      sim::Simulator sim;
      auto c = cluster::Cluster::make_cluster_i(sim, 2, core::ApenetParams{},
                                                false);
      cluster::TwoNodeOptions o;
      o.src_type = MemType::kGpu;
      o.dst_type = MemType::kGpu;
      on = units::to_us(cluster::pingpong_latency(*c, size, 60, o));
    }
    {
      sim::Simulator sim;
      auto c = cluster::Cluster::make_cluster_i(sim, 2, core::ApenetParams{},
                                                false);
      cluster::TwoNodeOptions o;
      o.src_type = MemType::kGpu;
      o.dst_type = MemType::kGpu;
      o.staged_tx = o.staged_rx = true;
      off = units::to_us(cluster::pingpong_latency(*c, size, 60, o));
    }
    {
      sim::Simulator sim;
      auto c = cluster::Cluster::make_cluster_ii(sim, 2);
      ib = units::to_us(cluster::ib_gg_latency(*c, size, 60));
    }
    t.add_row({size_label(size), strf("%6.2f", on), strf("%6.2f", off),
               strf("%6.2f", ib)});
  }
  t.print();
  std::printf(
      "\nus. Paper at 32 B: P2P 8.2 us, staging 16.8 us, MVAPICH2/IB "
      "17.4 us (\"peer-to-peer has 50%% less latency than staging\").\n");
  return 0;
}
