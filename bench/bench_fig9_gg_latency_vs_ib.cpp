// Reproduces Fig. 9: GPU-to-GPU latency — APEnet+ with P2P, APEnet+ with
// staging (P2P=OFF), and MVAPICH2/IB (OSU GPU latency test) for reference.
// Peer-to-peer halves the latency relative to staging because it removes
// the two synchronous cudaMemcpy calls from the critical path. Each
// (method, size) cell is an independent simulation run as a runner point.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace apn;
  using core::MemType;
  bench::Runner runner(argc, argv);
  bench::print_header("FIG 9", "G-G latency: P2P vs staging vs IB/MVAPICH2");

  const auto sizes = bench::sweep_32B(64 * 1024);
  std::vector<std::array<bench::Cell, 3>> results(sizes.size());

  auto apenet_lat = [](std::uint64_t size, bool staged) {
    sim::Simulator sim;
    auto c =
        cluster::Cluster::make_cluster_i(sim, 2, hw::params(), false);
    cluster::TwoNodeOptions o;
    o.src_type = MemType::kGpu;
    o.dst_type = MemType::kGpu;
    o.staged_tx = o.staged_rx = staged;
    return units::to_us(cluster::pingpong_latency(*c, size, 60, o));
  };

  for (std::size_t si = 0; si < sizes.size(); ++si) {
    const std::uint64_t size = sizes[si];
    runner.add("fig9/P2P=ON/" + size_label(size),
               [&results, si, size, apenet_lat] {
                 double v = apenet_lat(size, false);
                 results[si][0] = v;
                 bench::JsonSink::global().record(
                     "fig9", "P2P=ON/" + size_label(size), v,
                     size == 32 ? 8.2 : NAN);
               });
    runner.add("fig9/P2P=OFF/" + size_label(size),
               [&results, si, size, apenet_lat] {
                 double v = apenet_lat(size, true);
                 results[si][1] = v;
                 bench::JsonSink::global().record(
                     "fig9", "P2P=OFF/" + size_label(size), v,
                     size == 32 ? 16.8 : NAN);
               });
    runner.add("fig9/IB/" + size_label(size), [&results, si, size] {
      sim::Simulator sim;
      auto c = cluster::Cluster::make_cluster_ii(sim, 2);
      double v = units::to_us(cluster::ib_gg_latency(*c, size, 60));
      results[si][2] = v;
      bench::JsonSink::global().record("fig9", "IB/" + size_label(size), v,
                                       size == 32 ? 17.4 : NAN);
    });
  }
  runner.run();

  TextTable t({"Msg size", "APEnet+ P2P=ON", "APEnet+ P2P=OFF",
               "IB MVAPICH2"});
  for (std::size_t si = 0; si < sizes.size(); ++si) {
    t.add_row({size_label(sizes[si]), results[si][0].str("%6.2f"),
               results[si][1].str("%6.2f"), results[si][2].str("%6.2f")});
  }
  t.print();
  std::printf(
      "\nus. Paper at 32 B: P2P 8.2 us, staging 16.8 us, MVAPICH2/IB "
      "17.4 us (\"peer-to-peer has 50%% less latency than staging\").\n");
  return 0;
}
