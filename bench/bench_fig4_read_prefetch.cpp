// Reproduces Fig. 4: single-node GPU memory reading bandwidth vs message
// size, obtained by flushing the TX injection FIFOs (zero-latency switch),
// for the three GPU_P2P_TX generations and their prefetch windows. Each
// (config, size) cell is an independent simulation run as a runner point.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace apn;
  bench::Runner runner(argc, argv);
  bench::print_header("FIG 4",
                      "GPU read bandwidth vs message size (TX FIFOs flushed)");

  struct Config {
    const char* label;
    core::P2pTxVersion ver;
    std::uint32_t window;
  };
  const Config configs[] = {
      {"v1", core::P2pTxVersion::kV1, 4096},
      {"v2 window=4KB", core::P2pTxVersion::kV2, 4 * 1024},
      {"v2 window=8KB", core::P2pTxVersion::kV2, 8 * 1024},
      {"v2 window=16KB", core::P2pTxVersion::kV2, 16 * 1024},
      {"v2 window=32KB", core::P2pTxVersion::kV2, 32 * 1024},
      {"v3 window=64KB", core::P2pTxVersion::kV3, 64 * 1024},
      {"v3 window=128KB", core::P2pTxVersion::kV3, 128 * 1024},
  };
  constexpr std::size_t kConfigs = std::size(configs);

  const auto sizes = bench::sweep_4K_4MB();
  std::vector<std::array<bench::Cell, kConfigs>> results(sizes.size());

  for (std::size_t si = 0; si < sizes.size(); ++si) {
    const std::uint64_t size = sizes[si];
    for (std::size_t ci = 0; ci < kConfigs; ++ci) {
      const Config cfg = configs[ci];
      runner.add(
          "fig4/" + std::string(cfg.label) + "/" + size_label(size),
          [&results, si, ci, cfg, size] {
            sim::Simulator sim;
            core::ApenetParams p = hw::params();
            p.flush_at_switch = true;
            p.p2p_tx_version = cfg.ver;
            p.p2p_prefetch_window = cfg.window;
            auto c = cluster::Cluster::make_cluster_i(sim, 1, p, false);
            int reps = bench::reps_for(size, 16ull << 20);
            auto r = cluster::loopback_bandwidth(*c, 0, core::MemType::kGpu,
                                                 size, reps);
            results[si][ci] = r.mbps;
            bench::JsonSink::global().record(
                "fig4", std::string(cfg.label) + "/" + size_label(size),
                r.mbps);
          });
    }
  }
  runner.run();

  std::vector<std::string> headers = {"Msg size"};
  for (const auto& cfg : configs) headers.emplace_back(cfg.label);
  TextTable t(headers);
  for (std::size_t si = 0; si < sizes.size(); ++si) {
    std::vector<std::string> row = {size_label(sizes[si])};
    for (std::size_t ci = 0; ci < kConfigs; ++ci)
      row.push_back(results[si][ci].str("%7.0f"));
    t.add_row(std::move(row));
  }
  t.print();
  std::printf(
      "\nMB/s. Paper's shape: v1 caps ~600 MB/s; each v2 window doubling "
      "gains ~20%%; v2@32K and v3 reach the ~1.5 GB/s Fermi ceiling.\n");
  return 0;
}
