// Reproduces Fig. 4: single-node GPU memory reading bandwidth vs message
// size, obtained by flushing the TX injection FIFOs (zero-latency switch),
// for the three GPU_P2P_TX generations and their prefetch windows.
#include "bench_common.hpp"

int main() {
  using namespace apn;
  bench::print_header("FIG 4",
                      "GPU read bandwidth vs message size (TX FIFOs flushed)");

  struct Config {
    const char* label;
    core::P2pTxVersion ver;
    std::uint32_t window;
  };
  const Config configs[] = {
      {"v1", core::P2pTxVersion::kV1, 4096},
      {"v2 window=4KB", core::P2pTxVersion::kV2, 4 * 1024},
      {"v2 window=8KB", core::P2pTxVersion::kV2, 8 * 1024},
      {"v2 window=16KB", core::P2pTxVersion::kV2, 16 * 1024},
      {"v2 window=32KB", core::P2pTxVersion::kV2, 32 * 1024},
      {"v3 window=64KB", core::P2pTxVersion::kV3, 64 * 1024},
      {"v3 window=128KB", core::P2pTxVersion::kV3, 128 * 1024},
  };

  std::vector<std::string> headers = {"Msg size"};
  for (const auto& cfg : configs) headers.emplace_back(cfg.label);
  TextTable t(headers);

  for (std::uint64_t size : bench::sweep_4K_4MB()) {
    std::vector<std::string> row = {size_label(size)};
    for (const auto& cfg : configs) {
      sim::Simulator sim;
      core::ApenetParams p;
      p.flush_at_switch = true;
      p.p2p_tx_version = cfg.ver;
      p.p2p_prefetch_window = cfg.window;
      auto c = cluster::Cluster::make_cluster_i(sim, 1, p, false);
      int reps = bench::reps_for(size, 16ull << 20);
      auto r = cluster::loopback_bandwidth(*c, 0, core::MemType::kGpu, size,
                                           reps);
      row.push_back(strf("%7.0f", r.mbps));
    }
    t.add_row(std::move(row));
  }
  t.print();
  std::printf(
      "\nMB/s. Paper's shape: v1 caps ~600 MB/s; each v2 window doubling "
      "gains ~20%%; v2@32K and v3 reach the ~1.5 GB/s Fermi ceiling.\n");
  return 0;
}
