// Reproduces Fig. 7: two-node GPU-to-GPU bandwidth with three methods —
// APEnet+ with peer-to-peer (P2P=ON), APEnet+ with staging through host
// memory (P2P=OFF), and MVAPICH2 over InfiniBand (OSU bandwidth test) as
// the reference.
#include "bench_common.hpp"

int main() {
  using namespace apn;
  using core::MemType;
  bench::print_header("FIG 7",
                      "G-G bandwidth: APEnet+ P2P vs staging vs IB/MVAPICH2");

  TextTable t({"Msg size", "APEnet+ P2P=ON", "APEnet+ P2P=OFF",
               "IB MVAPICH2"});
  for (std::uint64_t size : bench::sweep_32B_4MB()) {
    int reps = bench::reps_for(size, 12ull << 20);

    double on, off, ib;
    {
      sim::Simulator sim;
      auto c = cluster::Cluster::make_cluster_i(sim, 2, core::ApenetParams{},
                                                false);
      cluster::TwoNodeOptions o;
      o.src_type = MemType::kGpu;
      o.dst_type = MemType::kGpu;
      on = cluster::twonode_bandwidth(*c, size, reps, o).mbps;
    }
    {
      sim::Simulator sim;
      auto c = cluster::Cluster::make_cluster_i(sim, 2, core::ApenetParams{},
                                                false);
      cluster::TwoNodeOptions o;
      o.src_type = MemType::kGpu;
      o.dst_type = MemType::kGpu;
      o.staged_tx = o.staged_rx = true;
      off = cluster::twonode_bandwidth(*c, size, reps, o).mbps;
    }
    {
      sim::Simulator sim;
      auto c = cluster::Cluster::make_cluster_ii(sim, 2);
      int ib_reps = bench::reps_for(size, 6ull << 20);
      ib = cluster::ib_gg_bandwidth(*c, size, ib_reps).mbps;
    }
    t.add_row({size_label(size), strf("%7.1f", on), strf("%7.1f", off),
               strf("%7.1f", ib)});
  }
  t.print();
  std::printf(
      "\nMB/s. Paper's shape: P2P wins up to ~32 KB; beyond that staging is "
      "the better approach; the pipelined MVAPICH2/IB curve passes both at "
      "multi-MB sizes (x8 slot, Cluster II).\n");
  return 0;
}
