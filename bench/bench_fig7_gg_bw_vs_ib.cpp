// Reproduces Fig. 7: two-node GPU-to-GPU bandwidth with three methods —
// APEnet+ with peer-to-peer (P2P=ON), APEnet+ with staging through host
// memory (P2P=OFF), and MVAPICH2 over InfiniBand (OSU bandwidth test) as
// the reference. Each (method, size) cell is an independent simulation
// run as a runner point.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace apn;
  using core::MemType;
  bench::Runner runner(argc, argv);
  bench::print_header("FIG 7",
                      "G-G bandwidth: APEnet+ P2P vs staging vs IB/MVAPICH2");

  const auto sizes = bench::sweep_32B_4MB();
  std::vector<std::array<bench::Cell, 3>> results(sizes.size());

  auto apenet_bw = [](std::uint64_t size, int reps, bool staged) {
    sim::Simulator sim;
    auto c =
        cluster::Cluster::make_cluster_i(sim, 2, hw::params(), false);
    cluster::TwoNodeOptions o;
    o.src_type = MemType::kGpu;
    o.dst_type = MemType::kGpu;
    o.staged_tx = o.staged_rx = staged;
    return cluster::twonode_bandwidth(*c, size, reps, o).mbps;
  };

  for (std::size_t si = 0; si < sizes.size(); ++si) {
    const std::uint64_t size = sizes[si];
    const int reps = bench::reps_for(size, 12ull << 20);
    runner.add("fig7/P2P=ON/" + size_label(size),
               [&results, si, size, reps, apenet_bw] {
                 double v = apenet_bw(size, reps, false);
                 results[si][0] = v;
                 bench::JsonSink::global().record(
                     "fig7", "P2P=ON/" + size_label(size), v);
               });
    runner.add("fig7/P2P=OFF/" + size_label(size),
               [&results, si, size, reps, apenet_bw] {
                 double v = apenet_bw(size, reps, true);
                 results[si][1] = v;
                 bench::JsonSink::global().record(
                     "fig7", "P2P=OFF/" + size_label(size), v);
               });
    runner.add("fig7/IB/" + size_label(size), [&results, si, size] {
      sim::Simulator sim;
      auto c = cluster::Cluster::make_cluster_ii(sim, 2);
      int ib_reps = bench::reps_for(size, 6ull << 20);
      double v = cluster::ib_gg_bandwidth(*c, size, ib_reps).mbps;
      results[si][2] = v;
      bench::JsonSink::global().record("fig7", "IB/" + size_label(size), v);
    });
  }
  runner.run();

  TextTable t({"Msg size", "APEnet+ P2P=ON", "APEnet+ P2P=OFF",
               "IB MVAPICH2"});
  for (std::size_t si = 0; si < sizes.size(); ++si) {
    t.add_row({size_label(sizes[si]), results[si][0].str("%7.1f"),
               results[si][1].str("%7.1f"), results[si][2].str("%7.1f")});
  }
  t.print();
  std::printf(
      "\nMB/s. Paper's shape: P2P wins up to ~32 KB; beyond that staging is "
      "the better approach; the pipelined MVAPICH2/IB curve passes both at "
      "multi-MB sizes (x8 slot, Cluster II).\n");
  return 0;
}
