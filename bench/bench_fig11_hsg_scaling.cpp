// Reproduces Fig. 11: HSG strong-scaling speedup on Cluster I (20 Gbps
// torus links) for lattice sizes L in {128, 256, 512} and the three P2P
// variants (OFF / RX-only / ON). Speedup is relative to the single-GPU run
// of the same L; the L=512 single-GPU baseline suffers GPU cache pressure
// (paper: 1471 vs 921 ps/spin), which produces the super-linear speedup.
// Every (L, NP, mode) total time is an independent simulation, declared as
// a runner point; speedups are derived after the sweep completes.
#include "apps/hsg/runner.hpp"
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace apn;
  using apps::hsg::CommMode;
  bench::Runner runner(argc, argv);
  bench::print_header("FIG 11",
                      "HSG strong-scaling speedup (20 Gbps links)");

  const int sides[] = {128, 256, 512};
  const int nps[] = {1, 2, 4, 8};
  const CommMode modes[] = {CommMode::kP2pOff, CommMode::kP2pRx,
                            CommMode::kP2pOn};
  const char* mode_names[] = {"P2P=OFF", "P2P=RX", "P2P=ON"};

  // ttot[L][np][mode], filled concurrently (one distinct slot per point).
  bench::Cell ttot[3][4][3];

  for (std::size_t li = 0; li < 3; ++li) {
    for (std::size_t ni = 0; ni < 4; ++ni) {
      for (std::size_t mi = 0; mi < 3; ++mi) {
        const int L = sides[li];
        const int np = nps[ni];
        const CommMode mode = modes[mi];
        runner.add(strf("fig11/L%d/np%d/%s", L, np, mode_names[mi]),
                   [&ttot, li, ni, mi, L, np, mode, mode_names] {
                     sim::Simulator sim;
                     core::ApenetParams p = hw::params();
                     p.torus_link_gbps = 20.0;  // Fig. 11 used 20 Gbps links
                     p.p2p_tx_version = core::P2pTxVersion::kV2;
                     p.p2p_prefetch_window = 32 * 1024;
                     auto c =
                         cluster::Cluster::make_cluster_i(sim, np, p, false);
                     apps::hsg::HsgConfig cfg;
                     cfg.L = L;
                     cfg.steps = 2;
                     cfg.mode = mode;
                     cfg.functional = false;
                     apps::hsg::HsgRun run(*c, cfg);
                     double v = run.run().ttot_ps;
                     ttot[li][ni][mi] = v;
                     bench::JsonSink::global().record(
                         "fig11",
                         strf("ttot/L%d/np%d/%s", L, np, mode_names[mi]), v);
                   });
      }
    }
  }
  runner.run();

  for (std::size_t li = 0; li < 3; ++li) {
    std::printf("\nSIDE=%d\n", sides[li]);
    TextTable t({"NP", "P2P=OFF", "P2P=RX", "P2P=ON"});
    for (std::size_t ni = 0; ni < 4; ++ni) {
      std::vector<std::string> row = {strf("%d", nps[ni])};
      for (std::size_t mi = 0; mi < 3; ++mi) {
        const bench::Cell& base = ttot[li][0][mi];
        const bench::Cell& v = ttot[li][ni][mi];
        row.push_back(base.filled && v.filled
                          ? strf("%5.2fx", base.v / v.v)
                          : "-");
      }
      t.add_row(std::move(row));
    }
    t.print();
  }
  std::printf(
      "\nPaper's shape: L=128 only scales to ~2 nodes; L=256 to 4; L=512 "
      "scales to 8 with super-linear speedup (single-GPU cache pressure at "
      "512^3); P2P variants beat staging by 10-20%%.\n");
  return 0;
}
