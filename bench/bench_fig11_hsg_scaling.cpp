// Reproduces Fig. 11: HSG strong-scaling speedup on Cluster I (20 Gbps
// torus links) for lattice sizes L in {128, 256, 512} and the three P2P
// variants (OFF / RX-only / ON). Speedup is relative to the single-GPU run
// of the same L; the L=512 single-GPU baseline suffers GPU cache pressure
// (paper: 1471 vs 921 ps/spin), which produces the super-linear speedup.
#include "apps/hsg/runner.hpp"
#include "bench_common.hpp"

namespace {

double ttot(int L, int np, apn::apps::hsg::CommMode mode) {
  using namespace apn;
  // L=128 only fits meaningful slabs up to NP=2 per the paper; we still
  // run all NP that divide L with local_z >= 2.
  sim::Simulator sim;
  core::ApenetParams p;
  p.torus_link_gbps = 20.0;  // Fig. 11 ran with 20 Gbps links
  p.p2p_tx_version = core::P2pTxVersion::kV2;
  p.p2p_prefetch_window = 32 * 1024;
  auto c = cluster::Cluster::make_cluster_i(sim, np, p, false);
  apps::hsg::HsgConfig cfg;
  cfg.L = L;
  cfg.steps = 2;
  cfg.mode = mode;
  cfg.functional = false;
  apps::hsg::HsgRun run(*c, cfg);
  return run.run().ttot_ps;
}

}  // namespace

int main() {
  using namespace apn;
  using apps::hsg::CommMode;
  bench::print_header("FIG 11",
                      "HSG strong-scaling speedup (20 Gbps links)");

  const int sides[] = {128, 256, 512};
  const CommMode modes[] = {CommMode::kP2pOff, CommMode::kP2pRx,
                            CommMode::kP2pOn};
  const char* mode_names[] = {"P2P=OFF", "P2P=RX", "P2P=ON"};

  for (int L : sides) {
    std::printf("\nSIDE=%d\n", L);
    TextTable t({"NP", "P2P=OFF", "P2P=RX", "P2P=ON"});
    double base[3] = {0, 0, 0};
    for (int np : {1, 2, 4, 8}) {
      std::vector<std::string> row = {strf("%d", np)};
      for (int m = 0; m < 3; ++m) {
        double v = ttot(L, np, modes[m]);
        if (np == 1) base[m] = v;
        row.push_back(strf("%5.2fx", base[m] / v));
      }
      t.add_row(std::move(row));
    }
    t.print();
    (void)mode_names;
  }
  std::printf(
      "\nPaper's shape: L=128 only scales to ~2 nodes; L=256 to 4; L=512 "
      "scales to 8 with super-linear speedup (single-GPU cache pressure at "
      "512^3); P2P variants beat staging by 10-20%%.\n");
  return 0;
}
