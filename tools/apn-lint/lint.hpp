// apn-lint: the repo's custom static-analysis pass.
//
// The simulator's determinism contract cannot be expressed in the type
// system: nothing stops a model file from reading the wall clock, pulling
// entropy from the platform PRNG, iterating a pointer-keyed map into a
// timing decision, or detaching a capturing coroutine lambda whose frame
// outlives its captures. Each of those compiles, works on one machine, and
// breaks bit-exact reproduction (or worse, memory) somewhere else. This
// tool scans the token stream — no LLVM / libclang dependency, so it runs
// in every CI container — and enforces the rules the simulator relies on:
//
//  * wall-clock   — std::chrono::{system,steady,high_resolution}_clock,
//                   time()/clock()/gettimeofday()/clock_gettime() and
//                   friends. Simulation time must come from sim::Simulator;
//                   host timing belongs only in src/common/rng-exempt
//                   measurement code.
//  * raw-rand     — rand()/srand()/random()/drand48()/std::random_device/
//                   std::mt19937 etc. All randomness must flow through the
//                   seedable, bit-stable apn::Rng (src/common/rng.hpp).
//  * std-function — std::function in the hot paths (src/sim, src/core,
//                   src/pcie). Use apn::UniqueFn: no copyable-callable
//                   boxing, fits the event engine's inline storage.
//  * ptr-key-iter — iterating a pointer-keyed map/set. Pointer order is
//                   ASLR-dependent; iteration feeding any model decision
//                   makes runs irreproducible. Pointer-keyed lookup is fine.
//  * detached-coro— a *capturing* lambda returning a coroutine type. The
//                   lambda temporary dies at the call, the coroutine frame
//                   keeps running: captures dangle. The repo idiom is an
//                   empty capture list with everything passed as parameters
//                   (parameters are copied into the frame).
//
// Suppression: a comment `// apn-lint: allow(<rule>[, <rule>...])` on the
// offending line or the line directly above it. The baseline file
// (tools/apn-lint/baseline.txt, `path|rule|count` lines) grandfathers
// pre-existing findings and ratchets: counts may only decrease.
#pragma once

#include <map>
#include <string>
#include <utility>
#include <vector>

namespace apn::lint {

struct Finding {
  std::string path;
  int line = 0;        ///< 1-based
  std::string rule;    ///< rule slug, e.g. "wall-clock"
  std::string detail;  ///< human-oriented description of the hit
};

/// Lint one translation unit given as a string. `path` scopes the
/// directory-sensitive rules (std-function hot paths, rng exemption) and
/// is echoed into the findings; it does not need to exist on disk.
std::vector<Finding> lint_source(const std::string& path,
                                 const std::string& source);

/// Lint a file on disk. Returns false (and leaves `out` untouched) if the
/// file cannot be read.
bool lint_file(const std::string& path, std::vector<Finding>& out);

/// Baseline: (path, rule) -> grandfathered finding count.
using Baseline = std::map<std::pair<std::string, std::string>, int>;

/// Parse `path|rule|count` lines; '#' starts a comment, blanks ignored.
Baseline parse_baseline(const std::string& text);

/// Serialize findings as a baseline file body (sorted, deduped, counted).
std::string format_baseline(const std::vector<Finding>& findings);

/// Split findings against a baseline. Returns the findings NOT covered
/// (new findings, or hits beyond a grandfathered count). `stale` receives
/// baseline entries whose count exceeds what the scan found — the ratchet
/// asks for those to be lowered via --update-baseline.
std::vector<Finding> apply_baseline(const std::vector<Finding>& findings,
                                    const Baseline& baseline,
                                    std::vector<std::string>* stale);

}  // namespace apn::lint
