// apn-lint: the repo's custom static-analysis pass.
//
// The simulator's determinism contract cannot be expressed in the type
// system: nothing stops a model file from reading the wall clock, pulling
// entropy from the platform PRNG, iterating a pointer-keyed map into a
// timing decision, or detaching a capturing coroutine lambda whose frame
// outlives its captures. Each of those compiles, works on one machine, and
// breaks bit-exact reproduction (or worse, memory) somewhere else.
//
// v2 architecture: instead of scanning a flat token stream, the linter
// micro-parses each file into a lightweight IR — comment/string-stripped
// text, a statement index, and a scope tree of namespaces, classes (with
// member declarations) and function bodies (with local declarations, call
// expressions and co_await sites). No LLVM / libclang dependency, so it
// runs in every CI container. Rules see the IR, which lets them reason
// about flow ("is this awaitable call consumed by anything?") instead of
// just tokens.
//
// Rule catalogue:
//  * wall-clock       — std::chrono::{system,steady,high_resolution}_clock,
//                       time()/clock()/gettimeofday()/clock_gettime() and
//                       friends. Simulation time must come from
//                       sim::Simulator; host timing belongs only in
//                       src/common/rng-exempt measurement code.
//  * raw-rand         — rand()/srand()/random()/drand48()/std::random_device/
//                       std::mt19937 etc. All randomness must flow through
//                       the seedable, bit-stable apn::Rng (common/rng.hpp).
//  * std-function     — std::function in the hot paths (src/sim, src/core,
//                       src/pcie). Use apn::UniqueFn: no copyable-callable
//                       boxing, fits the event engine's inline storage.
//  * ptr-key-iter     — iterating a pointer-keyed map/set. Pointer order is
//                       ASLR-dependent; iteration feeding any model decision
//                       makes runs irreproducible. Pointer-keyed lookup is
//                       fine.
//  * detached-coro    — a *capturing* lambda returning a coroutine type.
//                       The lambda temporary dies at the call, the coroutine
//                       frame keeps running: captures dangle. The repo idiom
//                       is an empty capture list with everything passed as
//                       parameters (parameters are copied into the frame).
//                       v4: detected from the IR (lambda scope + declared or
//                       trailing return type), so template lambdas and
//                       multi-line signatures are covered too.
//  * coro-ref-param   — a coroutine takes a parameter by reference and reads
//                       it after a suspension point. Between the first
//                       co_await and resume the caller's frame may be gone;
//                       only the coroutine's own frame (value parameters) is
//                       guaranteed alive. Pointer parameters are the repo's
//                       sanctioned spelling for caller-managed lifetime and
//                       are not flagged. Uses inside the suspension's own
//                       statement are fine (the caller is still live at the
//                       moment of the first suspend).
//  * coro-local-escape— inside a coroutine body, the address of a frame
//                       local escapes into a scheduling/messaging sink
//                       (Simulator::at/after, Channel::send, Resource::post,
//                       schedule_resume/resume_at/resume_after), into a
//                       by-reference lambda capture passed to such a sink,
//                       or into another spawned coroutine. The stored
//                       callable or spawned frame can run after this frame
//                       advanced past the local's scope or died.
//  * coro-stale-time  — a value cached from Simulator::now() or a StateCell
//                       read (get/sample/peek) before a co_await is reused
//                       after the resume. Simulated time and cell state
//                       advance across suspensions; the cached copy is
//                       stale. Statements that re-read the clock (elapsed-
//                       time math `sim.now() - start`) or re-touch the same
//                       cell are exempt.
//  * dropped-awaitable— calling an awaiter factory (sim::delay, Gate::wait,
//                       Semaphore/CreditPool::acquire, Resource::use,
//                       Channel::transfer, Queue::pop, or any function whose
//                       return type is a *Awaiter/*Awaitable) as a bare
//                       statement without co_await-ing or binding the
//                       result. The awaiter is destroyed unsuspended and the
//                       wait silently never happens. (Bare calls of
//                       Coro-returning functions are NOT flagged: sim::Coro
//                       is fire-and-forget by design.)
//  * unit-mix         — additive arithmetic mixing an apn::Time variable
//                       with a byte-count variable (apn::Bytes or a
//                       *_bytes/bytes_* local) or with a bare unscaled
//                       integer literal. Time is picoseconds; mixing it
//                       with byte counts or raw literals is always a unit
//                       bug. Exempt in src/common/units.hpp, which defines
//                       the conversions.
//  * check-coverage   — a class that participates in race detection (has at
//                       least one StateCell member or APN_CHECK_ACCESS-
//                       instrumented member) declares a mutable state-like
//                       member (integral/container) that is never
//                       instrumented anywhere in the project. Coverage is
//                       ratcheted via a separate coverage baseline file.
//  * hot-path-alloc   — heap allocation (non-placement new, malloc family,
//                       make_unique/make_shared) inside a function marked
//                       APN_HOT (common/hot.hpp). The event engine's hot
//                       path is allocation-free by contract; cold fallbacks
//                       carry an explicit allow comment.
//  * calibration-literal — a units helper (units::ns(400), units::us(1.5),
//                       Gbps, MBps, ...) or Rate constructor called with a
//                       raw numeric literal inside a function body in model
//                       code (src/core, src/pcie, src/gpu). Calibration
//                       constants must be named fields of the hardware-
//                       profile structs (core/params.hpp, gpu/arch.hpp,
//                       pcie/link.hpp) so src/hw/profile.cpp can version
//                       them per hardware generation and docs/HARDWARE.md
//                       can document them. Those three headers are exempt —
//                       they are where the named defaults live.
//  * partition-ownership — the sharding-readiness analysis backing ROADMAP
//                       item 1 (see common/owner.hpp and
//                       docs/CORRECTNESS.md "The ownership model"). Phase 1
//                       builds a cross-file ownership graph from the
//                       APN_OWNER(domain) class annotations; phase 2 flags
//                       (a) state-like members of race-checked classes in
//                       src/ headers whose class carries no APN_OWNER
//                       (ratcheted via the ownership baseline file, like
//                       check-coverage), (b) a method of an APN_OWNER class
//                       directly reaching a data member of a class owned by
//                       a *different* domain — cross-partition interactions
//                       must go through a sim::Channel (a send/recv/transfer
//                       in the same statement is the sanctioned escape) or
//                       the member must be APN_SHARED, and (c) an
//                       APN_SHARED whose justification string is empty.
//
// Suppression: a comment `// apn-lint: allow(<rule>[, <rule>...])` (rules
// separated by commas and/or spaces) on the offending line, the line
// directly above it, or — for findings inside a multi-line statement — the
// first line of that statement or the line above it. The baseline file
// (tools/apn-lint/baseline.txt, `path|rule|count` lines) grandfathers
// pre-existing findings and ratchets: counts may only decrease.
// check-coverage findings ratchet through their own baseline file so the
// instrumentation coverage of the model classes can only grow;
// partition-ownership findings likewise ratchet through
// tools/apn-lint/ownership-baseline.txt so annotation coverage only grows.
// The three coroutine suspension-safety rules (coro-ref-param,
// coro-local-escape, coro-stale-time) ratchet through
// tools/apn-lint/suspension-baseline.txt and skip tests/ paths — test code
// parks frames and threads pointers on purpose, and the runtime frame
// oracle (src/check/coro_check.hpp, --coro-check) covers it dynamically.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace apn::lint {

struct Finding {
  std::string path;
  int line = 0;        ///< 1-based
  int col = 0;         ///< 1-based UTF-16 column (SARIF); 0 = unknown
  int end_col = 0;     ///< one past the flagged token; 0 = unknown
  std::string rule;    ///< rule slug, e.g. "wall-clock"
  std::string detail;  ///< human-oriented description of the hit
};

// ---------------------------------------------------------------------------
// Flow-aware IR (micro-parse; see lint.cpp for the grammar subset)
// ---------------------------------------------------------------------------

/// A declaration site: `Type name ...` (class member or function local).
struct Decl {
  std::string type_text;  ///< declaration text left of the name, normalized
  std::string name;
  int line = 0;
};

/// A call expression `callee(...)` inside a function body.
struct Call {
  std::string callee;        ///< unqualified callee identifier
  std::size_t off = 0;       ///< offset of the callee in the stripped text
  std::size_t close = 0;     ///< offset of the matching ')'
  bool member_access = false;  ///< preceded by '.' or '->'
  int line = 0;
};

/// One parsed function body.
struct FunctionIR {
  std::string name;       ///< unqualified function name ("" for lambdas)
  std::string decl_text;  ///< declaration text before the name (return type,
                          ///< specifiers; where APN_HOT lives)
  bool hot = false;       ///< APN_HOT marker present in decl_text
  bool is_lambda = false;      ///< body belongs to a lambda expression
  bool returns_coro = false;   ///< declared/trailing return type names Coro
  int line = 0;
  std::size_t body_begin = 0;  ///< offset of '{'
  std::size_t body_end = 0;    ///< offset of matching '}'
  /// Lambda capture-list brackets ('[' and ']' offsets); npos when not a
  /// lambda or the capture list could not be located.
  std::size_t cap_open = static_cast<std::size_t>(-1);
  std::size_t cap_close = static_cast<std::size_t>(-1);
  std::vector<Decl> params;    ///< parameter declarations only
  std::vector<Decl> locals;    ///< parameter + local variable declarations
  std::vector<Call> calls;
  std::vector<std::size_t> co_awaits;  ///< offsets of co_await tokens
};

/// One parsed class/struct body.
struct ClassIR {
  std::string name;
  int line = 0;
  std::size_t body_begin = 0;  ///< offset of '{'
  std::size_t body_end = 0;    ///< offset of matching '}'
  std::vector<Decl> members;   ///< data members (functions excluded)
};

/// An APN_OWNER(domain) annotation site. The macro text is blanked out of
/// `FileIR::text` before scope analysis (so the member extractor never sees
/// it); the harvested facts live here instead.
struct OwnerDecl {
  std::size_t off = 0;  ///< offset of the APN_OWNER token
  std::string domain;   ///< "torus_node" / "pcie_island" / "global_readonly"
  int line = 0;
};

/// An APN_SHARED(reason) escape-hatch site (prefixes a member declaration).
struct SharedDecl {
  std::size_t off = 0;      ///< offset of the APN_SHARED token
  std::string member;       ///< name of the member it exempts ("" if unclear)
  bool empty_reason = false;  ///< justification string is empty/whitespace
  int line = 0;
};

/// Per-file parse result. `text` is the comment/string-stripped source
/// (stripped bytes become spaces, so offsets and lines match the original);
/// `raw` is the untouched original (string contents, multibyte characters)
/// for the few places that need it: SARIF UTF-16 columns and APN_SHARED
/// reason strings.
struct FileIR {
  std::string path;
  std::string text;
  std::string raw;
  std::vector<FunctionIR> functions;
  std::vector<ClassIR> classes;
  std::vector<OwnerDecl> owner_decls;
  std::vector<SharedDecl> shared_decls;

  int line_of(std::size_t off) const;
  /// First line of the statement containing `off` (for suppressions that
  /// sit above a statement spanning multiple lines).
  int stmt_line_of(std::size_t off) const;
  bool allowed(int line, int stmt_line, const std::string& rule) const;

  // Internal indexes (populated by parse()).
  std::vector<std::size_t> line_starts;
  std::vector<std::size_t> stmt_starts;
  std::set<std::pair<int, std::string>> allows;
};

/// Micro-parse one translation unit into the IR.
FileIR parse(const std::string& path, const std::string& source);

// ---------------------------------------------------------------------------
// Two-phase project analysis
// ---------------------------------------------------------------------------

/// Cross-file facts collected in phase 1 and consulted by the flow rules in
/// phase 2. Single-file linting with a default-constructed context is
/// supported: the seeded awaitable set still applies, and check-coverage
/// falls back to facts visible in the one file.
struct ProjectContext {
  /// Functions returning an awaiter/awaitable (seeded names plus any
  /// function whose declared return type mentions Awaiter/Awaitable).
  std::set<std::string> awaitable_fns;
  /// Member names instrumented with no derivable owner (APN_CHECK_ACCESS on
  /// a foreign struct's field like `a.arrived`, or calls in free functions):
  /// these match a member of *any* class.
  std::set<std::string> instrumented;
  /// "Class::member" entries where the owning class is known — a bare-name
  /// APN_CHECK_ACCESS inside a `Class::method` definition or an inline
  /// method body, or a StateCell<...> member declaration. Scoping keeps one
  /// class's instrumented `next_seq_` from whitelisting (or race-qualifying)
  /// every other class with a member of the same name.
  std::set<std::string> instrumented_scoped;
  /// Classes (by name) known to participate in race detection.
  std::set<std::string> instrumented_classes;
  /// Ownership graph: class name -> declared APN_OWNER domain.
  std::map<std::string, std::string> owner_domains;
  /// "Class::member" entries exempted from the single-owner rule via
  /// APN_SHARED.
  std::set<std::string> shared_members;
  /// Data members of every named class: class -> member name -> declared
  /// type text. Lets the ownership rule resolve `obj->field` accesses and
  /// member-variable types across translation units.
  std::map<std::string, std::map<std::string, std::string>> class_fields;
  /// Named functions whose return type is a coroutine (sim::Coro). Their
  /// call sites spawn detached frames, so coro-local-escape treats an
  /// address-of-local argument as an escape.
  std::set<std::string> coro_fns;
  /// Member names declared with a StateCell type anywhere in the project.
  /// coro-stale-time treats get()/sample()/peek() on these as time-like
  /// reads that go stale across a suspension.
  std::set<std::string> statecell_members;
};

/// Phase 1: harvest declarations from one file into `ctx`.
void scan_declarations(const FileIR& ir, ProjectContext& ctx);

/// Phase 2: run all rules over one parsed file.
std::vector<Finding> lint_ir(const FileIR& ir, const ProjectContext& ctx);

/// Convenience: parse + lint one source buffer with a local context (single
/// file scanned in both phases). `path` scopes the directory-sensitive
/// rules and is echoed into findings; it does not need to exist on disk.
std::vector<Finding> lint_source(const std::string& path,
                                 const std::string& source);

/// Lint a file on disk (single-file context). Returns false (and leaves
/// `out` untouched) if the file cannot be read.
bool lint_file(const std::string& path, std::vector<Finding>& out);

/// Full two-phase project run over `files` (already expanded and sorted by
/// the caller) with `jobs` worker threads (<= 0 picks the hardware
/// concurrency). Parsing and rule execution parallelize per file; the
/// declaration harvest runs serially in file order and findings are
/// concatenated in file order, so the output is byte-identical for every
/// job count. Returns false (with the offending path in `bad_path`) when a
/// file cannot be read.
bool run_project(const std::vector<std::string>& files, int jobs,
                 std::vector<Finding>& out, std::string* bad_path);

/// Read a file into `out`; false on I/O error.
bool read_file(const std::string& path, std::string& out);

// ---------------------------------------------------------------------------
// Baseline ratchet
// ---------------------------------------------------------------------------

/// Baseline: (path, rule) -> grandfathered finding count.
using Baseline = std::map<std::pair<std::string, std::string>, int>;

/// Parse `path|rule|count` lines; '#' starts a comment, blanks ignored.
Baseline parse_baseline(const std::string& text);

/// Serialize findings as a baseline file body (sorted, deduped, counted).
std::string format_baseline(const std::vector<Finding>& findings);

/// Split findings against a baseline. Returns the findings NOT covered
/// (new findings, or hits beyond a grandfathered count). `stale` receives
/// baseline entries whose count exceeds what the scan found — the ratchet
/// asks for those to be lowered via --update-baseline.
std::vector<Finding> apply_baseline(const std::vector<Finding>& findings,
                                    const Baseline& baseline,
                                    std::vector<std::string>* stale);

// ---------------------------------------------------------------------------
// Rule registry
// ---------------------------------------------------------------------------

/// One registered rule: identity, the one-liner used in SARIF metadata, the
/// paragraph shown by `apn-lint --explain=<rule>`, and a minimal source
/// example (linted under `example_path` for the directory-scoped rules)
/// that demonstrably fires the rule — test_lint.cpp asserts this for every
/// entry, so the docs cannot rot.
struct RuleInfo {
  const char* id;
  const char* summary;       ///< one line (SARIF shortDescription)
  const char* doc;           ///< one paragraph (--explain)
  const char* example_path;  ///< synthetic path the example is linted under
  const char* example;       ///< source that fires exactly this rule
};

/// Every registered rule, in catalogue order.
const std::vector<RuleInfo>& rules();

// ---------------------------------------------------------------------------
// SARIF 2.1.0 output (for GitHub code scanning upload)
// ---------------------------------------------------------------------------

/// Serialize findings as a minimal SARIF 2.1.0 log (one run, one result per
/// finding, rule metadata included).
std::string format_sarif(const std::vector<Finding>& findings);

}  // namespace apn::lint
