#include "lint.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <sstream>
#include <tuple>

namespace apn::lint {

namespace {

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Comment/string-stripped view of a source buffer: stripped characters
/// become spaces (newlines survive), so offsets and line numbers match the
/// original text. Suppressions are collected from comment text before it
/// is blanked.
struct Stripped {
  std::string text;
  std::vector<std::size_t> line_starts;          // offset of each line, 0-based
  std::set<std::pair<int, std::string>> allows;  // (line, rule) suppressions

  int line_of(std::size_t off) const {
    auto it = std::upper_bound(line_starts.begin(), line_starts.end(), off);
    return static_cast<int>(it - line_starts.begin());
  }
  bool allowed(int line, const std::string& rule) const {
    // A suppression covers its own line and the line below it (the common
    // "comment above the statement" placement).
    return allows.count({line, rule}) != 0 ||
           (line > 1 && allows.count({line - 1, rule}) != 0);
  }
};

/// Parse `apn-lint: allow(a, b)` occurrences inside one comment.
void collect_allows(const std::string& comment, int line, Stripped& out) {
  const std::string kMarker = "apn-lint: allow(";
  std::size_t pos = 0;
  while ((pos = comment.find(kMarker, pos)) != std::string::npos) {
    std::size_t start = pos + kMarker.size();
    std::size_t end = comment.find(')', start);
    if (end == std::string::npos) break;
    std::string rules = comment.substr(start, end - start);
    std::stringstream ss(rules);
    std::string rule;
    while (std::getline(ss, rule, ',')) {
      rule.erase(0, rule.find_first_not_of(" \t"));
      rule.erase(rule.find_last_not_of(" \t") + 1);
      if (!rule.empty()) out.allows.insert({line, rule});
    }
    pos = end;
  }
}

Stripped strip(const std::string& src) {
  Stripped out;
  out.text.assign(src.size(), ' ');
  out.line_starts.push_back(0);
  enum class St { kCode, kLineComment, kBlockComment, kString, kChar };
  St st = St::kCode;
  std::string comment;        // text of the comment being scanned
  int comment_line = 0;       // line the current comment started on
  int line = 1;
  for (std::size_t i = 0; i < src.size(); ++i) {
    const char c = src[i];
    const char n = i + 1 < src.size() ? src[i + 1] : '\0';
    if (c == '\n') {
      out.text[i] = '\n';
      out.line_starts.push_back(i + 1);
      ++line;
    }
    switch (st) {
      case St::kCode:
        if (c == '/' && n == '/') {
          st = St::kLineComment;
          comment.clear();
          comment_line = line;
          ++i;
        } else if (c == '/' && n == '*') {
          st = St::kBlockComment;
          comment.clear();
          comment_line = line;
          ++i;
        } else if (c == '"') {
          st = St::kString;
        } else if (c == '\'') {
          st = St::kChar;
        } else if (c != '\n') {
          out.text[i] = c;
        }
        break;
      case St::kLineComment:
        if (c == '\n') {
          collect_allows(comment, comment_line, out);
          st = St::kCode;
        } else {
          comment.push_back(c);
        }
        break;
      case St::kBlockComment:
        if (c == '*' && n == '/') {
          collect_allows(comment, comment_line, out);
          st = St::kCode;
          ++i;
        } else {
          comment.push_back(c);
        }
        break;
      case St::kString:
        if (c == '\\') {
          ++i;
        } else if (c == '"') {
          st = St::kCode;
        }
        break;
      case St::kChar:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          st = St::kCode;
        }
        break;
    }
  }
  if (st == St::kLineComment || st == St::kBlockComment)
    collect_allows(comment, comment_line, out);
  return out;
}

struct Ident {
  std::size_t off;
  std::string text;
};

std::vector<Ident> identifiers(const std::string& text) {
  std::vector<Ident> out;
  std::size_t i = 0;
  while (i < text.size()) {
    if (ident_char(text[i]) &&
        std::isdigit(static_cast<unsigned char>(text[i])) == 0) {
      std::size_t start = i;
      while (i < text.size() && ident_char(text[i])) ++i;
      out.push_back({start, text.substr(start, i - start)});
    } else {
      ++i;
    }
  }
  return out;
}

/// First non-space character offset before `off`, or npos.
std::size_t prev_nonspace(const std::string& t, std::size_t off) {
  while (off > 0) {
    --off;
    if (t[off] != ' ' && t[off] != '\n' && t[off] != '\t') return off;
  }
  return std::string::npos;
}

std::size_t next_nonspace(const std::string& t, std::size_t off) {
  while (off < t.size()) {
    if (t[off] != ' ' && t[off] != '\n' && t[off] != '\t') return off;
    ++off;
  }
  return std::string::npos;
}

/// True when the identifier ending right before `off` (skipping one "::")
/// is `std` or the scope operator is global ("::time(...)").
bool std_or_global_qualified(const std::string& t, std::size_t ident_off) {
  std::size_t p = prev_nonspace(t, ident_off);
  if (p == std::string::npos || t[p] != ':' || p == 0 || t[p - 1] != ':')
    return true;  // unqualified call
  std::size_t q = prev_nonspace(t, p - 1);
  if (q == std::string::npos || !ident_char(t[q])) return true;  // "::time("
  std::size_t qe = q + 1;
  while (q > 0 && ident_char(t[q - 1])) --q;
  return t.substr(q, qe - q) == "std";
}

bool member_access_before(const std::string& t, std::size_t ident_off) {
  std::size_t p = prev_nonspace(t, ident_off);
  if (p == std::string::npos) return false;
  if (t[p] == '.') return true;
  if (t[p] == '>' && p > 0 && t[p - 1] == '-') return true;
  return false;
}

void add(std::vector<Finding>& out, const Stripped& s,
         const std::string& path, std::size_t off, const char* rule,
         std::string detail) {
  int line = s.line_of(off);
  if (s.allowed(line, rule)) return;
  out.push_back(Finding{path, line, rule, std::move(detail)});
}

bool path_contains(const std::string& path, const char* needle) {
  return path.find(needle) != std::string::npos;
}

// ---- rule: wall-clock ------------------------------------------------------

void rule_wall_clock(const std::string& path, const Stripped& s,
                     const std::vector<Ident>& ids,
                     std::vector<Finding>& out) {
  static const std::set<std::string> kBanned = {
      "system_clock",     "steady_clock", "high_resolution_clock",
      "gettimeofday",     "clock_gettime", "timespec_get",
      "localtime",        "gmtime",        "mktime",
      "asctime",          "strftime",      "ftime",
  };
  static const std::set<std::string> kCallForm = {"time", "clock"};
  for (const Ident& id : ids) {
    if (kBanned.count(id.text) != 0) {
      add(out, s, path, id.off, "wall-clock",
          "'" + id.text + "' reads host time; use sim::Simulator::now()");
      continue;
    }
    if (kCallForm.count(id.text) != 0) {
      std::size_t after = next_nonspace(s.text, id.off + id.text.size());
      if (after == std::string::npos || s.text[after] != '(') continue;
      if (member_access_before(s.text, id.off)) continue;
      if (!std_or_global_qualified(s.text, id.off)) continue;
      add(out, s, path, id.off, "wall-clock",
          "'" + id.text + "()' reads host time; use sim::Simulator::now()");
    }
  }
}

// ---- rule: raw-rand --------------------------------------------------------

void rule_raw_rand(const std::string& path, const Stripped& s,
                   const std::vector<Ident>& ids, std::vector<Finding>& out) {
  static const std::set<std::string> kBanned = {
      "rand",       "srand",      "rand_r",     "random",
      "srandom",    "drand48",    "lrand48",    "mrand48",
      "srand48",    "random_device", "mt19937", "mt19937_64",
      "minstd_rand", "minstd_rand0", "default_random_engine",
      "ranlux24",   "ranlux48",
  };
  for (const Ident& id : ids) {
    if (kBanned.count(id.text) == 0) continue;
    if (member_access_before(s.text, id.off)) continue;  // x.random(...) etc.
    add(out, s, path, id.off, "raw-rand",
        "'" + id.text + "' is platform entropy; use apn::Rng (common/rng.hpp)");
  }
}

// ---- rule: std-function ----------------------------------------------------

void rule_std_function(const std::string& path, const Stripped& s,
                       const std::vector<Ident>& ids,
                       std::vector<Finding>& out) {
  for (std::size_t i = 0; i + 1 < ids.size(); ++i) {
    if (ids[i].text != "std" || ids[i + 1].text != "function") continue;
    std::size_t between = prev_nonspace(s.text, ids[i + 1].off);
    if (between == std::string::npos || s.text[between] != ':') continue;
    add(out, s, path, ids[i].off, "std-function",
        "std::function in a hot path; use apn::UniqueFn (common/fn.hpp)");
  }
}

// ---- rule: ptr-key-iter ----------------------------------------------------

/// Matching close of the template argument list opened at `open` ('<').
std::size_t match_template(const std::string& t, std::size_t open) {
  int depth = 0;
  std::size_t paren = 0;
  for (std::size_t i = open; i < t.size(); ++i) {
    const char c = t[i];
    if (c == '(') ++paren;
    else if (c == ')' && paren > 0) --paren;
    if (paren > 0) continue;
    if (c == '<') ++depth;
    else if (c == '>') {
      --depth;
      if (depth == 0) return i;
    } else if (c == ';' || c == '{')
      return std::string::npos;  // comparison operator, not a template
  }
  return std::string::npos;
}

void rule_ptr_key_iter(const std::string& path, const Stripped& s,
                       const std::vector<Ident>& ids,
                       std::vector<Finding>& out) {
  static const std::set<std::string> kAssoc = {"map", "unordered_map", "set",
                                               "unordered_set"};
  // Pass 1: pointer-keyed associative container variable names.
  std::set<std::string> suspects;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (kAssoc.count(ids[i].text) == 0) continue;
    std::size_t lt = next_nonspace(s.text, ids[i].off + ids[i].text.size());
    if (lt == std::string::npos || s.text[lt] != '<') continue;
    std::size_t gt = match_template(s.text, lt);
    if (gt == std::string::npos) continue;
    // Key type: first depth-0 comma (maps) or the whole list (sets).
    std::size_t key_end = gt;
    int depth = 0;
    for (std::size_t j = lt + 1; j < gt; ++j) {
      if (s.text[j] == '<') ++depth;
      else if (s.text[j] == '>') --depth;
      else if (s.text[j] == ',' && depth == 0) {
        key_end = j;
        break;
      }
    }
    std::string key = s.text.substr(lt + 1, key_end - lt - 1);
    if (key.find('*') == std::string::npos) continue;
    // Declared variable name: the identifier right after the '>'.
    std::size_t name_off = next_nonspace(s.text, gt + 1);
    if (name_off == std::string::npos || !ident_char(s.text[name_off]))
      continue;
    std::size_t e = name_off;
    while (e < s.text.size() && ident_char(s.text[e])) ++e;
    suspects.insert(s.text.substr(name_off, e - name_off));
  }
  if (suspects.empty()) return;
  // Pass 2: iteration over a suspect — range-for (`: name)`) or
  // `name.begin(` / `name.cbegin(`.
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const Ident& id = ids[i];
    if (suspects.count(id.text) == 0) continue;
    std::size_t before = prev_nonspace(s.text, id.off);
    if (before != std::string::npos && s.text[before] == ':' &&
        (before == 0 || s.text[before - 1] != ':')) {
      add(out, s, path, id.off, "ptr-key-iter",
          "range-for over pointer-keyed container '" + id.text +
              "': iteration order is ASLR-dependent");
      continue;
    }
    std::size_t dot = next_nonspace(s.text, id.off + id.text.size());
    if (dot == std::string::npos || s.text[dot] != '.') continue;
    std::size_t m = next_nonspace(s.text, dot + 1);
    if (m == std::string::npos) continue;
    std::size_t me = m;
    while (me < s.text.size() && ident_char(s.text[me])) ++me;
    std::string method = s.text.substr(m, me - m);
    if (method == "begin" || method == "cbegin" || method == "rbegin") {
      add(out, s, path, id.off, "ptr-key-iter",
          "iteration over pointer-keyed container '" + id.text +
              "': iteration order is ASLR-dependent");
    }
  }
}

// ---- rule: detached-coro ---------------------------------------------------

/// Walk backwards from `off` to the matching `open` for `close` brackets.
std::size_t match_back(const std::string& t, std::size_t off, char open,
                       char close) {
  int depth = 0;
  for (std::size_t i = off + 1; i-- > 0;) {
    if (t[i] == close) ++depth;
    else if (t[i] == open) {
      --depth;
      if (depth == 0) return i;
    }
  }
  return std::string::npos;
}

void rule_detached_coro(const std::string& path, const Stripped& s,
                        const std::vector<Ident>& ids,
                        std::vector<Finding>& out) {
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (ids[i].text != "Coro") continue;
    // Must be a trailing return type: "-> Coro" or "-> ns::Coro".
    std::size_t p = prev_nonspace(s.text, ids[i].off);
    // Skip "ns::" qualifier(s) leftward: ':'':' then the namespace ident.
    while (p != std::string::npos && s.text[p] == ':' && p > 0 &&
           s.text[p - 1] == ':') {
      std::size_t q = prev_nonspace(s.text, p - 1);
      if (q == std::string::npos || !ident_char(s.text[q])) {
        p = std::string::npos;
        break;
      }
      while (q > 0 && ident_char(s.text[q - 1])) --q;
      p = prev_nonspace(s.text, q);
    }
    if (p == std::string::npos || s.text[p] != '>' || p == 0 ||
        s.text[p - 1] != '-')
      continue;
    // Before the arrow: the ')' closing the lambda parameter list.
    std::size_t rp = prev_nonspace(s.text, p - 1);
    if (rp == std::string::npos || s.text[rp] != ')') continue;
    std::size_t lp = match_back(s.text, rp, '(', ')');
    if (lp == std::string::npos) continue;
    // Before the parameter list: the ']' closing a capture list (if this
    // is not a lambda, there is none and the finding does not apply).
    std::size_t rb = prev_nonspace(s.text, lp);
    if (rb == std::string::npos || s.text[rb] != ']') continue;
    std::size_t lb = match_back(s.text, rb, '[', ']');
    if (lb == std::string::npos) continue;
    std::string captures = s.text.substr(lb + 1, rb - lb - 1);
    captures.erase(std::remove_if(captures.begin(), captures.end(),
                                  [](char c) {
                                    return c == ' ' || c == '\n' || c == '\t';
                                  }),
                   captures.end());
    if (captures.empty()) continue;  // repo idiom: params own the state
    add(out, s, path, lb, "detached-coro",
        "capturing lambda returning a coroutine: captures die with the "
        "lambda temporary while the frame lives on; pass state as "
        "parameters instead");
  }
}

}  // namespace

std::vector<Finding> lint_source(const std::string& path,
                                 const std::string& source) {
  std::vector<Finding> out;
  Stripped s = strip(source);
  std::vector<Ident> ids = identifiers(s.text);

  const bool rng_exempt = path_contains(path, "common/rng");
  if (!rng_exempt) {
    rule_wall_clock(path, s, ids, out);
    rule_raw_rand(path, s, ids, out);
  }
  if (path_contains(path, "src/sim") || path_contains(path, "src/core") ||
      path_contains(path, "src/pcie")) {
    rule_std_function(path, s, ids, out);
  }
  rule_ptr_key_iter(path, s, ids, out);
  rule_detached_coro(path, s, ids, out);

  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    return std::tie(a.line, a.rule) < std::tie(b.line, b.rule);
  });
  return out;
}

bool lint_file(const std::string& path, std::vector<Finding>& out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::string src;
  char buf[65536];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) src.append(buf, n);
  std::fclose(f);
  std::vector<Finding> found = lint_source(path, src);
  out.insert(out.end(), found.begin(), found.end());
  return true;
}

Baseline parse_baseline(const std::string& text) {
  Baseline out;
  std::stringstream ss(text);
  std::string line;
  while (std::getline(ss, line)) {
    std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::size_t a = line.find('|');
    if (a == std::string::npos) continue;
    std::size_t b = line.find('|', a + 1);
    if (b == std::string::npos) continue;
    std::string path = line.substr(0, a);
    std::string rule = line.substr(a + 1, b - a - 1);
    int count = std::atoi(line.c_str() + b + 1);
    if (!path.empty() && !rule.empty() && count > 0)
      out[{path, rule}] += count;
  }
  return out;
}

std::string format_baseline(const std::vector<Finding>& findings) {
  Baseline counts;
  for (const Finding& f : findings) counts[{f.path, f.rule}] += 1;
  std::string out =
      "# apn-lint baseline: grandfathered findings (path|rule|count).\n"
      "# Counts may only decrease; regenerate with --update-baseline.\n";
  for (const auto& [key, count] : counts) {
    out += key.first + "|" + key.second + "|" + std::to_string(count) + "\n";
  }
  return out;
}

std::vector<Finding> apply_baseline(const std::vector<Finding>& findings,
                                    const Baseline& baseline,
                                    std::vector<std::string>* stale) {
  Baseline budget = baseline;
  std::vector<Finding> fresh;
  for (const Finding& f : findings) {
    auto it = budget.find({f.path, f.rule});
    if (it != budget.end() && it->second > 0) {
      --it->second;
    } else {
      fresh.push_back(f);
    }
  }
  if (stale != nullptr) {
    for (const auto& [key, left] : budget) {
      if (left > 0)
        stale->push_back(key.first + "|" + key.second + " (" +
                         std::to_string(left) + " stale)");
    }
  }
  return fresh;
}

}  // namespace apn::lint
