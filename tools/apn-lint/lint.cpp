#include "lint.hpp"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <thread>
#include <tuple>

namespace apn::lint {

namespace {

constexpr std::size_t npos = std::string::npos;

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool path_contains(const std::string& path, const char* needle) {
  return path.find(needle) != npos;
}

bool ends_with(const std::string& s, const char* suffix) {
  const std::size_t n = std::string(suffix).size();
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

/// Parse `apn-lint: allow(a, b c)` occurrences inside one comment. Rule
/// names may be separated by commas and/or whitespace.
void collect_allows(const std::string& comment, int line, FileIR& out) {
  const std::string kMarker = "apn-lint: allow(";
  std::size_t pos = 0;
  while ((pos = comment.find(kMarker, pos)) != npos) {
    std::size_t start = pos + kMarker.size();
    std::size_t end = comment.find(')', start);
    if (end == npos) break;
    std::string cur;
    for (std::size_t i = start; i <= end; ++i) {
      const char c = i < end ? comment[i] : ' ';
      if (c == ',' || c == ' ' || c == '\t') {
        if (!cur.empty()) out.allows.insert({line, cur});
        cur.clear();
      } else {
        cur.push_back(c);
      }
    }
    pos = end;
  }
}

/// Blank comments/strings into spaces (newlines survive) so offsets and line
/// numbers in `ir.text` match the original buffer; collect suppressions from
/// comment text before it is blanked.
void strip_into(const std::string& src, FileIR& ir) {
  ir.text.assign(src.size(), ' ');
  ir.line_starts.push_back(0);
  enum class St { kCode, kLineComment, kBlockComment, kString, kChar };
  St st = St::kCode;
  std::string comment;
  int comment_line = 0;
  int line = 1;
  for (std::size_t i = 0; i < src.size(); ++i) {
    const char c = src[i];
    const char n = i + 1 < src.size() ? src[i + 1] : '\0';
    if (c == '\n') {
      ir.text[i] = '\n';
      ir.line_starts.push_back(i + 1);
      ++line;
    }
    switch (st) {
      case St::kCode:
        if (c == '/' && n == '/') {
          st = St::kLineComment;
          comment.clear();
          comment_line = line;
          ++i;
        } else if (c == '/' && n == '*') {
          st = St::kBlockComment;
          comment.clear();
          comment_line = line;
          ++i;
        } else if (c == '"') {
          st = St::kString;
        } else if (c == '\'') {
          st = St::kChar;
        } else if (c != '\n') {
          ir.text[i] = c;
        }
        break;
      case St::kLineComment:
        if (c == '\n') {
          collect_allows(comment, comment_line, ir);
          st = St::kCode;
        } else {
          comment.push_back(c);
        }
        break;
      case St::kBlockComment:
        if (c == '*' && n == '/') {
          collect_allows(comment, comment_line, ir);
          st = St::kCode;
          ++i;
        } else {
          comment.push_back(c);
        }
        break;
      case St::kString:
        if (c == '\\') {
          ++i;
        } else if (c == '"') {
          st = St::kCode;
        }
        break;
      case St::kChar:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          st = St::kCode;
        }
        break;
    }
  }
  if (st == St::kLineComment || st == St::kBlockComment)
    collect_allows(comment, comment_line, ir);
}

struct Ident {
  std::size_t off;
  std::string text;
};

std::vector<Ident> identifiers(const std::string& text) {
  std::vector<Ident> out;
  std::size_t i = 0;
  while (i < text.size()) {
    if (ident_char(text[i]) &&
        std::isdigit(static_cast<unsigned char>(text[i])) == 0) {
      std::size_t start = i;
      while (i < text.size() && ident_char(text[i])) ++i;
      out.push_back({start, text.substr(start, i - start)});
    } else {
      ++i;
    }
  }
  return out;
}

std::size_t prev_nonspace(const std::string& t, std::size_t off) {
  while (off > 0) {
    --off;
    if (t[off] != ' ' && t[off] != '\n' && t[off] != '\t') return off;
  }
  return npos;
}

std::size_t next_nonspace(const std::string& t, std::size_t off) {
  while (off < t.size()) {
    if (t[off] != ' ' && t[off] != '\n' && t[off] != '\t') return off;
    ++off;
  }
  return npos;
}

/// Identifier token whose last character sits at `end` (inclusive).
std::string token_ending_at(const std::string& t, std::size_t end,
                            std::size_t* begin_out = nullptr) {
  std::size_t b = end;
  while (b > 0 && ident_char(t[b - 1])) --b;
  if (begin_out != nullptr) *begin_out = b;
  return t.substr(b, end - b + 1);
}

bool contains_token(const std::string& haystack, const std::string& tok) {
  std::size_t pos = 0;
  while ((pos = haystack.find(tok, pos)) != npos) {
    const bool l = pos == 0 || !ident_char(haystack[pos - 1]);
    const std::size_t after = pos + tok.size();
    const bool r = after >= haystack.size() || !ident_char(haystack[after]);
    if (l && r) return true;
    pos = after;
  }
  return false;
}

/// True when the identifier ending right before `off` (skipping one "::")
/// is `std` or the scope operator is global ("::time(...)").
bool std_or_global_qualified(const std::string& t, std::size_t ident_off) {
  std::size_t p = prev_nonspace(t, ident_off);
  if (p == npos || t[p] != ':' || p == 0 || t[p - 1] != ':')
    return true;  // unqualified
  std::size_t q = prev_nonspace(t, p - 1);
  if (q == npos || !ident_char(t[q])) return true;  // "::time("
  return token_ending_at(t, q) == "std";
}

bool member_access_before(const std::string& t, std::size_t ident_off) {
  std::size_t p = prev_nonspace(t, ident_off);
  if (p == npos) return false;
  if (t[p] == '.') return true;
  if (t[p] == '>' && p > 0 && t[p - 1] == '-') return true;
  return false;
}

/// Matching close of the template argument list opened at `open` ('<').
std::size_t match_template(const std::string& t, std::size_t open) {
  int depth = 0;
  std::size_t paren = 0;
  for (std::size_t i = open; i < t.size(); ++i) {
    const char c = t[i];
    if (c == '(') ++paren;
    else if (c == ')' && paren > 0) --paren;
    if (paren > 0) continue;
    if (c == '<') ++depth;
    else if (c == '>') {
      --depth;
      if (depth == 0) return i;
    } else if (c == ';' || c == '{')
      return npos;  // comparison operator, not a template
  }
  return npos;
}

/// Walk backwards from `off` (a `close` character) to its matching `open`.
std::size_t match_back(const std::string& t, std::size_t off, char open,
                       char close) {
  int depth = 0;
  for (std::size_t i = off + 1; i-- > 0;) {
    if (t[i] == close) ++depth;
    else if (t[i] == open) {
      --depth;
      if (depth == 0) return i;
    }
  }
  return npos;
}

/// Walk forward from `off` (an `open` character) to its matching `close`.
std::size_t match_fwd(const std::string& t, std::size_t off, char open,
                      char close) {
  int depth = 0;
  for (std::size_t i = off; i < t.size(); ++i) {
    if (t[i] == open) ++depth;
    else if (t[i] == close) {
      --depth;
      if (depth == 0) return i;
    }
  }
  return npos;
}

/// Greatest statement-start offset <= off (0 when none).
std::size_t stmt_start_of(const FileIR& ir, std::size_t off) {
  auto it = std::upper_bound(ir.stmt_starts.begin(), ir.stmt_starts.end(), off);
  if (it == ir.stmt_starts.begin()) return 0;
  return *(--it);
}

/// UTF-16 code-unit width of the UTF-8 sequence starting with byte `b`
/// (0 for continuation bytes, 2 for astral-plane four-byte sequences).
int utf16_units(unsigned char b) {
  if ((b & 0xC0) == 0x80) return 0;  // continuation byte
  if (b >= 0xF0) return 2;           // 4-byte UTF-8 -> surrogate pair
  return 1;                          // ASCII and 2/3-byte sequences
}

/// 1-based SARIF column (UTF-16 code units, per SARIF 2.1.0 §3.10.5) of
/// byte offset `off` in the *raw* source, plus the end column one past the
/// flagged token. The raw buffer is scanned because stripping replaces
/// multibyte comment/string bytes with single spaces' worth of bytes —
/// byte counts survive, but the UTF-16 width only exists in the original.
void utf16_cols(const FileIR& ir, std::size_t off, int* col, int* end_col) {
  *col = 0;
  *end_col = 0;
  if (ir.raw.size() != ir.text.size() || off >= ir.raw.size()) return;
  const int line = ir.line_of(off);
  const std::size_t ls = ir.line_starts[static_cast<std::size_t>(line - 1)];
  int c = 1;
  for (std::size_t i = ls; i < off; ++i)
    c += utf16_units(static_cast<unsigned char>(ir.raw[i]));
  *col = c;
  // Token width: flagged tokens are identifiers/operators in the stripped
  // text, which is pure ASCII there (1 byte == 1 UTF-16 unit).
  std::size_t e = off;
  while (e < ir.text.size() && ident_char(ir.text[e])) ++e;
  *end_col = c + static_cast<int>(e > off ? e - off : 1);
}

void add(std::vector<Finding>& out, const FileIR& ir, std::size_t off,
         const char* rule, std::string detail) {
  const int line = ir.line_of(off);
  const int stmt_line = ir.stmt_line_of(off);
  if (ir.allowed(line, stmt_line, rule)) return;
  int col = 0, end_col = 0;
  utf16_cols(ir, off, &col, &end_col);
  out.push_back(Finding{ir.path, line, col, end_col, rule, std::move(detail)});
}

void add_at_line(std::vector<Finding>& out, const FileIR& ir, int line,
                 const char* rule, std::string detail) {
  if (ir.allowed(line, line, rule)) return;
  out.push_back(Finding{ir.path, line, 0, 0, rule, std::move(detail)});
}

// ---------------------------------------------------------------------------
// Statement index
// ---------------------------------------------------------------------------

/// Statement boundaries are ';', '{', '}' at paren depth 0, so `for (;;)`
/// headers and brace-inits inside argument lists do not split statements.
void build_stmt_index(FileIR& ir) {
  const std::string& t = ir.text;
  int paren = 0;
  std::size_t first = next_nonspace(t, 0);
  if (first != npos) ir.stmt_starts.push_back(first);
  for (std::size_t i = 0; i < t.size(); ++i) {
    const char c = t[i];
    if (c == '(') {
      ++paren;
    } else if (c == ')') {
      if (paren > 0) --paren;
    } else if ((c == ';' || c == '{' || c == '}') && paren == 0) {
      std::size_t s = next_nonspace(t, i + 1);
      if (s != npos &&
          (ir.stmt_starts.empty() || ir.stmt_starts.back() != s))
        ir.stmt_starts.push_back(s);
    }
  }
}

// ---------------------------------------------------------------------------
// Declaration splitting (used for parameters, locals and class members)
// ---------------------------------------------------------------------------

std::string trim(std::string s) {
  std::size_t b = s.find_first_not_of(" \t\n");
  if (b == npos) return "";
  std::size_t e = s.find_last_not_of(" \t\n");
  return s.substr(b, e - b + 1);
}

/// Best-effort `Type name` split of one declaration chunk (text cut at any
/// initializer). Returns false when the chunk does not look like a decl.
bool parse_decl_chunk(const std::string& chunk, int line, Decl& out) {
  std::string text = chunk;
  for (const char cut : {'=', '[', '{'}) {
    std::size_t p = text.find(cut);
    if (p != npos) text.erase(p);
  }
  std::vector<Ident> ids = identifiers(text);
  if (ids.size() < 2) return false;
  const Ident& name = ids.back();
  // Bitfield `int x : 3` — digits are skipped by identifiers(), so the name
  // is already the last *identifier*; nothing extra to do.
  out.name = name.text;
  out.type_text = trim(text.substr(0, name.off));
  out.line = line;
  return !out.type_text.empty();
}

// ---------------------------------------------------------------------------
// Scope walker: classify every '{' into namespace / class / function / other
// ---------------------------------------------------------------------------

struct Scope {
  char kind;  // 'n' namespace, 'c' class, 'f' function, 'b' block, 'o' other
  std::size_t open = 0;
  int index = -1;  // into ir.functions / ir.classes
};

std::string first_token(const std::string& s) {
  std::size_t i = 0;
  while (i < s.size() && !ident_char(s[i])) ++i;
  if (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i])) != 0)
    return "";
  std::size_t b = i;
  while (i < s.size() && ident_char(s[i])) ++i;
  return s.substr(b, i - b);
}

/// Skip `Ns::` qualifier chains leftwards from the begin of an identifier.
/// Returns the offset of the first non-space character before the fully
/// qualified name, or npos.
std::size_t skip_qualifiers_back(const std::string& t, std::size_t name_begin) {
  std::size_t q = prev_nonspace(t, name_begin);
  while (q != npos && t[q] == ':' && q > 0 && t[q - 1] == ':') {
    std::size_t qq = prev_nonspace(t, q - 1);
    if (qq == npos || !ident_char(t[qq])) return npos;
    std::size_t qb;
    token_ending_at(t, qq, &qb);
    q = prev_nonspace(t, qb);
  }
  return q;
}

/// Split a parameter list body on top-level commas into Decl entries.
void parse_params(const FileIR& ir, std::size_t lp, std::size_t rp,
                  std::vector<Decl>& out) {
  const std::string& t = ir.text;
  int angle = 0, paren = 0, brace = 0;
  std::size_t begin = lp + 1;
  auto flush = [&](std::size_t end) {
    if (end <= begin) return;
    Decl d;
    if (parse_decl_chunk(t.substr(begin, end - begin),
                         ir.line_of(begin), d))
      out.push_back(std::move(d));
  };
  for (std::size_t i = lp + 1; i < rp; ++i) {
    const char c = t[i];
    if (c == '<') ++angle;
    else if (c == '>') { if (angle > 0) --angle; }
    else if (c == '(') ++paren;
    else if (c == ')') { if (paren > 0) --paren; }
    else if (c == '{') ++brace;
    else if (c == '}') { if (brace > 0) --brace; }
    else if (c == ',' && angle == 0 && paren == 0 && brace == 0) {
      flush(i);
      begin = i + 1;
    }
  }
  flush(rp);
}

struct BraceInfo {
  char kind = 'o';
  std::string name;        // function or class name
  std::size_t name_off = 0;
  std::size_t lp = npos, rp = npos;  // parameter list (functions)
  bool is_lambda = false;
  std::size_t cap_open = npos, cap_close = npos;  // '[' / ']' of the capture
};

/// Given a ')' at `rp0` directly before a '{' (after qualifiers), decide
/// whether this is a control statement, a lambda, or a function definition —
/// walking backwards through constructor initializer lists when needed.
BraceInfo analyze_paren_group(const std::string& t, std::size_t rp0) {
  static const std::set<std::string> kControl = {
      "if", "for", "while", "switch", "catch", "constexpr", "requires",
      "decltype", "sizeof", "alignof", "return", "assert"};
  BraceInfo out;
  std::size_t rp = rp0;
  for (int guard = 0; guard < 256; ++guard) {
    std::size_t lp = match_back(t, rp, '(', ')');
    if (lp == npos) return out;
    std::size_t ne = prev_nonspace(t, lp);
    if (ne == npos) return out;
    if (t[ne] == ']') {
      std::size_t lb = match_back(t, ne, '[', ']');
      out.kind = 'f';
      out.is_lambda = true;
      out.cap_open = lb;
      out.cap_close = ne;
      out.name_off = lb == npos ? lp : lb;
      out.lp = lp;
      out.rp = rp;
      return out;
    }
    if (t[ne] == '>') {  // templated name `foo<T>(...)`
      std::size_t lt = match_back(t, ne, '<', '>');
      if (lt == npos) return out;
      ne = prev_nonspace(t, lt);
      if (ne != npos && t[ne] == ']') {
        // C++20 template lambda `[...]<typename T>(T x) { ... }`.
        std::size_t lb = match_back(t, ne, '[', ']');
        out.kind = 'f';
        out.is_lambda = true;
        out.cap_open = lb;
        out.cap_close = ne;
        out.name_off = lb == npos ? lp : lb;
        out.lp = lp;
        out.rp = rp;
        return out;
      }
      if (ne == npos || !ident_char(t[ne])) return out;
    }
    if (!ident_char(t[ne])) return out;
    std::size_t nb;
    std::string name = token_ending_at(t, ne, &nb);
    if (kControl.count(name) != 0) {
      out.kind = 'b';
      return out;
    }
    if (name == "noexcept" || name == "alignas") {
      // `void f() noexcept(true)` — qualifier with arguments: the real
      // parameter list is the ')' before the qualifier keyword.
      std::size_t before = prev_nonspace(t, nb);
      if (before == npos || t[before] != ')') return out;
      rp = before;
      continue;
    }
    std::size_t q = skip_qualifiers_back(t, nb);
    if (q != npos &&
        (t[q] == ',' || (t[q] == ':' && (q == 0 || t[q - 1] != ':')))) {
      // Constructor initializer-list entry: hop to the previous group.
      std::size_t prev = prev_nonspace(t, q);
      if (prev == npos) return out;
      if (t[prev] == ')' || t[prev] == '}') {
        rp = prev;
        if (t[prev] == '}') {
          // `a_{x},` entry: skip the braces, then its name, then loop on
          // whatever precedes that name (',' / ':' / the param-list ')').
          std::size_t ob = match_back(t, prev, '{', '}');
          if (ob == npos) return out;
          std::size_t en = prev_nonspace(t, ob);
          if (en == npos || !ident_char(t[en])) return out;
          std::size_t eb;
          token_ending_at(t, en, &eb);
          std::size_t q2 = skip_qualifiers_back(t, eb);
          if (q2 == npos) return out;
          if (t[q2] == ')') {
            rp = q2;
          } else if (t[q2] == ',' ||
                     (t[q2] == ':' && (q2 == 0 || t[q2 - 1] != ':'))) {
            std::size_t p2 = prev_nonspace(t, q2);
            if (p2 == npos || (t[p2] != ')' && t[p2] != '}')) return out;
            rp = p2;
            if (t[p2] == '}') continue;  // re-handled next iteration
          } else {
            return out;
          }
        }
        continue;
      }
      return out;
    }
    out.kind = 'f';
    out.name = name;
    out.name_off = nb;
    out.lp = lp;
    out.rp = rp;
    return out;
  }
  return out;
}

/// Classify the '{' at offset `b`.
BraceInfo classify_brace(const FileIR& ir, std::size_t b) {
  const std::string& t = ir.text;
  BraceInfo out;
  const std::size_t ss = stmt_start_of(ir, b);
  const std::string stmt = ss < b ? t.substr(ss, b - ss) : "";
  const std::string first = first_token(stmt);
  if (first == "namespace" || first == "extern") {
    out.kind = 'n';
    return out;
  }
  if (first == "else" || first == "do" || first == "try") {
    out.kind = 'b';
    return out;
  }
  if (first == "enum" || first == "union") {
    out.kind = 'o';
    return out;
  }
  const bool has_paren = stmt.find('(') != npos;
  const bool has_eq = stmt.find('=') != npos;
  if (!has_paren && !has_eq &&
      (first == "class" || first == "struct" ||
       (first == "template" && (contains_token(stmt, "class") ||
                                contains_token(stmt, "struct"))))) {
    out.kind = 'c';
    // Name: the identifier after the last class/struct keyword.
    std::vector<Ident> ids = identifiers(stmt);
    for (std::size_t i = 0; i < ids.size(); ++i) {
      if ((ids[i].text == "class" || ids[i].text == "struct") &&
          i + 1 < ids.size())
        out.name = ids[i + 1].text;
    }
    out.name_off = ss;
    return out;
  }
  std::size_t p = prev_nonspace(t, b);
  for (int guard = 0; guard < 64; ++guard) {
    if (p == npos) {
      out.kind = 'b';
      return out;
    }
    const char pc = t[p];
    if (pc == ';' || pc == '{') {
      out.kind = 'b';
      return out;
    }
    if (pc == ']') {  // `[&] {` — capture list with no parameter list
      out.kind = 'f';
      out.is_lambda = true;
      std::size_t lb = match_back(t, p, '[', ']');
      out.cap_open = lb;
      out.cap_close = p;
      out.name_off = lb == npos ? p : lb;
      return out;
    }
    if (pc == ')') return analyze_paren_group(t, p);
    if (pc == '}') {
      // Possibly the last ctor-init entry is a brace-init: `: a_{1} {`.
      std::size_t ob = match_back(t, p, '{', '}');
      if (ob != npos) {
        std::size_t en = prev_nonspace(t, ob);
        if (en != npos && ident_char(t[en])) {
          std::size_t eb;
          token_ending_at(t, en, &eb);
          std::size_t q = skip_qualifiers_back(t, eb);
          if (q != npos &&
              (t[q] == ',' || (t[q] == ':' && (q == 0 || t[q - 1] != ':')))) {
            std::size_t prev = prev_nonspace(t, q);
            if (prev != npos && t[prev] == ')')
              return analyze_paren_group(t, prev);
          }
        }
      }
      out.kind = 'b';
      return out;
    }
    if (ident_char(pc)) {
      static const std::set<std::string> kQual = {
          "const", "noexcept", "override", "final", "mutable", "try"};
      std::size_t tb;
      const std::string tok = token_ending_at(t, p, &tb);
      if (kQual.count(tok) != 0) {
        p = prev_nonspace(t, tb);
        continue;
      }
      // Trailing return type `-> Ns::Type<...>`? Scan back through the type
      // to an arrow; if found, resume the qualifier walk before it.
      std::size_t q = tb;
      bool arrow = false;
      for (int g2 = 0; g2 < 32; ++g2) {
        std::size_t pp = prev_nonspace(t, q);
        if (pp == npos) break;
        if (t[pp] == '>' && pp > 0 && t[pp - 1] == '-') {
          arrow = true;
          q = pp - 1;
          break;
        }
        if (t[pp] == ':' && pp > 0 && t[pp - 1] == ':') {
          std::size_t qq = prev_nonspace(t, pp - 1);
          if (qq == npos || !ident_char(t[qq])) break;
          token_ending_at(t, qq, &q);
          continue;
        }
        if (t[pp] == '>') {
          std::size_t lt = match_back(t, pp, '<', '>');
          if (lt == npos) break;
          std::size_t qq = prev_nonspace(t, lt);
          if (qq == npos || !ident_char(t[qq])) break;
          token_ending_at(t, qq, &q);
          continue;
        }
        break;
      }
      if (arrow) {
        p = prev_nonspace(t, q);
        continue;
      }
      out.kind = 'o';  // brace-init / `return Foo{...}`
      return out;
    }
    out.kind = 'o';
    return out;
  }
  return out;
}

/// Extract data-member declarations from a class body [open, close].
void extract_members(const FileIR& ir, ClassIR& cls, std::size_t open,
                     std::size_t close) {
  static const std::set<std::string> kSkipFirst = {
      "public", "private", "protected", "using", "friend",   "typedef",
      "static", "template", "enum",     "class", "struct",   "namespace",
      "operator", "virtual", "explicit", "constexpr", "APN_CHECK_ACCESS"};
  const std::string& t = ir.text;
  std::string acc;
  std::size_t acc_off = npos;
  for (std::size_t i = open + 1; i < close; ++i) {
    const char c = t[i];
    if (c == '{') {
      std::size_t j = match_fwd(t, i, '{', '}');
      if (j == npos || j > close) return;
      if (acc.find('(') != npos) acc.clear(), acc_off = npos;  // member fn body
      i = j;  // nested class bodies are handled by their own scope
      continue;
    }
    if (c == ';') {
      if (acc.find('(') == npos && acc_off != npos) {
        std::string a = acc;
        // Drop access-specifier labels glued to the front ("public: int x").
        for (;;) {
          std::string f = first_token(a);
          std::size_t colon = a.find(':');
          if ((f == "public" || f == "private" || f == "protected") &&
              colon != npos) {
            a = a.substr(colon + 1);
          } else {
            break;
          }
        }
        const std::string f = first_token(a);
        if (!f.empty() && kSkipFirst.count(f) == 0) {
          Decl d;
          if (parse_decl_chunk(a, 0, d)) {
            // Line of the *name*, so suppressions sit next to the member.
            std::size_t name_pos = t.rfind(d.name, i);
            d.line = ir.line_of(name_pos == npos ? acc_off : name_pos);
            cls.members.push_back(std::move(d));
          }
        }
      }
      acc.clear();
      acc_off = npos;
      continue;
    }
    if (acc_off == npos && c != ' ' && c != '\n' && c != '\t') acc_off = i;
    acc.push_back(c);
  }
}

void build_scopes(FileIR& ir) {
  const std::string& t = ir.text;
  std::vector<Scope> stack;
  std::vector<std::pair<std::size_t, std::size_t>> fn_params;  // per function
  for (std::size_t i = 0; i < t.size(); ++i) {
    const char c = t[i];
    if (c == '{') {
      BraceInfo info = classify_brace(ir, i);
      Scope s{info.kind, i, -1};
      if (info.kind == 'f') {
        FunctionIR fn;
        fn.name = info.name;
        fn.is_lambda = info.is_lambda;
        fn.cap_open = info.cap_open;
        fn.cap_close = info.cap_close;
        fn.line = ir.line_of(info.name_off);
        fn.body_begin = i;
        fn.body_end = t.size() > 0 ? t.size() - 1 : 0;
        if (!info.name.empty()) {
          std::size_t ss = stmt_start_of(ir, info.name_off);
          if (ss < info.name_off)
            fn.decl_text = t.substr(ss, info.name_off - ss);
          fn.hot = contains_token(fn.decl_text, "APN_HOT");
        }
        if (info.lp != npos && info.rp != npos) {
          parse_params(ir, info.lp, info.rp, fn.params);
          fn.locals = fn.params;
        }
        // Return type naming Coro: either in the declaration text before
        // the name (`sim::Coro run(...)`) or in the tail between the
        // parameter list / capture list and the body ('{') — the trailing
        // return home of lambdas (`[](...) -> sim::Coro {`).
        std::size_t tail_b = info.rp != npos          ? info.rp + 1
                             : info.cap_close != npos ? info.cap_close + 1
                                                      : npos;
        const bool tail_coro =
            tail_b != npos && tail_b < i &&
            contains_token(t.substr(tail_b, i - tail_b), "Coro");
        fn.returns_coro = tail_coro || contains_token(fn.decl_text, "Coro");
        s.index = static_cast<int>(ir.functions.size());
        ir.functions.push_back(std::move(fn));
      } else if (info.kind == 'c') {
        ClassIR cls;
        cls.name = info.name;
        cls.line = ir.line_of(info.name_off);
        cls.body_begin = i;
        cls.body_end = t.size() > 0 ? t.size() - 1 : 0;
        s.index = static_cast<int>(ir.classes.size());
        ir.classes.push_back(std::move(cls));
      }
      stack.push_back(s);
    } else if (c == '}') {
      if (stack.empty()) continue;
      Scope s = stack.back();
      stack.pop_back();
      if (s.kind == 'f') {
        ir.functions[static_cast<std::size_t>(s.index)].body_end = i;
      } else if (s.kind == 'c') {
        ir.classes[static_cast<std::size_t>(s.index)].body_end = i;
        extract_members(ir, ir.classes[static_cast<std::size_t>(s.index)],
                        s.open, i);
      }
    }
  }
}

/// Index of the innermost function whose body contains `off`, or -1.
int innermost_function(const FileIR& ir, std::size_t off) {
  // Functions are recorded in body_begin order; walk back from the last
  // candidate until one actually encloses the offset.
  int best = -1;
  for (std::size_t i = ir.functions.size(); i-- > 0;) {
    const FunctionIR& f = ir.functions[i];
    if (f.body_begin < off && off < f.body_end) {
      best = static_cast<int>(i);
      break;
    }
  }
  return best;
}

void build_calls(FileIR& ir) {
  static const std::set<std::string> kNotCall = {
      "if",        "for",       "while",     "switch",      "return",
      "co_return", "co_yield",  "co_await",  "sizeof",      "alignof",
      "new",       "delete",    "catch",     "throw",       "noexcept",
      "decltype",  "alignas",   "requires",  "template",    "operator",
      "assert",    "defined",   "static_assert"};
  const std::string& t = ir.text;
  for (const Ident& id : identifiers(t)) {
    if (id.text == "co_await") {
      int fi = innermost_function(ir, id.off);
      if (fi >= 0)
        ir.functions[static_cast<std::size_t>(fi)].co_awaits.push_back(id.off);
      continue;
    }
    if (kNotCall.count(id.text) != 0) continue;
    std::size_t after = next_nonspace(t, id.off + id.text.size());
    if (after == npos || t[after] != '(') continue;
    std::size_t close = match_fwd(t, after, '(', ')');
    if (close == npos) continue;
    int fi = innermost_function(ir, id.off);
    if (fi < 0) continue;
    Call call;
    call.callee = id.text;
    call.off = id.off;
    call.close = close;
    call.member_access = member_access_before(t, id.off);
    call.line = ir.line_of(id.off);
    ir.functions[static_cast<std::size_t>(fi)].calls.push_back(std::move(call));
  }
}

/// Best-effort single-token-type local declarations (`Time t = ...`).
void build_locals(FileIR& ir) {
  const std::string& t = ir.text;
  for (std::size_t s : ir.stmt_starts) {
    int fi = innermost_function(ir, s);
    if (fi < 0) continue;
    std::size_t p = s;
    std::string tok1;
    for (int g = 0; g < 4; ++g) {  // skip cv/storage tokens
      if (p >= t.size() || !ident_char(t[p]) ||
          std::isdigit(static_cast<unsigned char>(t[p])) != 0)
        break;
      std::size_t e = p;
      while (e < t.size() && ident_char(t[e])) ++e;
      std::string tok = t.substr(p, e - p);
      if (tok == "const" || tok == "constexpr" || tok == "static" ||
          tok == "auto") {
        std::size_t nx = next_nonspace(t, e);
        if (nx == npos) break;
        p = nx;
        continue;
      }
      tok1 = tok;
      p = e;
      break;
    }
    if (tok1.empty()) continue;
    std::size_t n1 = next_nonspace(t, p);
    if (n1 == npos || !ident_char(t[n1]) ||
        std::isdigit(static_cast<unsigned char>(t[n1])) != 0)
      continue;
    std::size_t e1 = n1;
    while (e1 < t.size() && ident_char(t[e1])) ++e1;
    std::size_t n2 = next_nonspace(t, e1);
    if (n2 == npos) continue;
    const char c2 = t[n2];
    if (c2 != '=' && c2 != ';' && c2 != '(' && c2 != '{') continue;
    Decl d;
    d.type_text = tok1;
    d.name = t.substr(n1, e1 - n1);
    d.line = ir.line_of(n1);
    ir.functions[static_cast<std::size_t>(fi)].locals.push_back(std::move(d));
  }
}

/// Harvest APN_OWNER/APN_SHARED annotation macros into the IR and blank
/// their spans out of the stripped text, so the scope walker and member
/// extractor see plain declarations (the member extractor treats any
/// paren-containing chunk as a member function and would otherwise swallow
/// the declaration following a no-semicolon macro line). Runs after
/// strip_into (comments are already gone, so only real macro uses remain)
/// and before build_stmt_index/build_scopes.
void harvest_annotations(FileIR& ir) {
  std::string& t = ir.text;
  auto each = [&](const char* macro, auto&& handle) {
    const std::size_t mlen = std::string(macro).size();
    std::size_t pos = 0;
    while ((pos = t.find(macro, pos)) != npos) {
      const std::size_t at = pos;
      pos += mlen;
      // Token boundaries (APN_OWNER must not match APN_OWNER_CHECK).
      if (at > 0 && ident_char(t[at - 1])) continue;
      if (at + mlen < t.size() && ident_char(t[at + mlen])) continue;
      // Skip the macro's own #define (common/owner.hpp).
      std::size_t ls = at;
      while (ls > 0 && t[ls - 1] != '\n') --ls;
      if (t.substr(ls, at - ls).find("#define") != npos) continue;
      std::size_t open = next_nonspace(t, at + mlen);
      if (open == npos || t[open] != '(') continue;
      std::size_t close = match_fwd(t, open, '(', ')');
      if (close == npos) continue;
      handle(at, open, close);
      for (std::size_t i = at; i <= close; ++i)
        if (t[i] != '\n') t[i] = ' ';
    }
  };
  each("APN_OWNER", [&](std::size_t at, std::size_t open, std::size_t close) {
    OwnerDecl d;
    d.off = at;
    d.domain = trim(t.substr(open + 1, close - open - 1));
    d.line = ir.line_of(at);
    ir.owner_decls.push_back(std::move(d));
  });
  each("APN_SHARED", [&](std::size_t at, std::size_t open, std::size_t close) {
    SharedDecl d;
    d.off = at;
    d.line = ir.line_of(at);
    // The justification is a string literal: blanked from the stripped
    // text, so read it from the raw bytes (same offsets by construction).
    std::string reason = ir.raw.size() == t.size()
                             ? ir.raw.substr(open + 1, close - open - 1)
                             : std::string();
    const std::size_t q1 = reason.find('"');
    const std::size_t q2 = reason.rfind('"');
    if (q1 != npos && q2 != npos && q2 > q1)
      reason = reason.substr(q1 + 1, q2 - q1 - 1);
    d.empty_reason = trim(reason).empty();
    // The member it exempts: the declaration the macro prefixes.
    std::size_t semi = t.find(';', close + 1);
    if (semi != npos) {
      Decl m;
      if (parse_decl_chunk(t.substr(close + 1, semi - close - 1), 0, m))
        d.member = m.name;
    }
    ir.shared_decls.push_back(std::move(d));
  });
}

}  // namespace

// ---------------------------------------------------------------------------
// FileIR methods + parse()
// ---------------------------------------------------------------------------

int FileIR::line_of(std::size_t off) const {
  auto it = std::upper_bound(line_starts.begin(), line_starts.end(), off);
  return static_cast<int>(it - line_starts.begin());
}

int FileIR::stmt_line_of(std::size_t off) const {
  return line_of(stmt_start_of(*this, off));
}

bool FileIR::allowed(int line, int stmt_line, const std::string& rule) const {
  for (int l : {line, line - 1, stmt_line, stmt_line - 1}) {
    if (l >= 1 && allows.count({l, rule}) != 0) return true;
  }
  return false;
}

FileIR parse(const std::string& path, const std::string& source) {
  FileIR ir;
  ir.path = path;
  ir.raw = source;
  strip_into(source, ir);
  harvest_annotations(ir);
  build_stmt_index(ir);
  build_scopes(ir);
  build_calls(ir);
  build_locals(ir);
  return ir;
}

// ---------------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------------

namespace {

// ---- rule: wall-clock ------------------------------------------------------

void rule_wall_clock(const FileIR& ir, const std::vector<Ident>& ids,
                     std::vector<Finding>& out) {
  static const std::set<std::string> kBanned = {
      "system_clock",     "steady_clock", "high_resolution_clock",
      "gettimeofday",     "clock_gettime", "timespec_get",
      "localtime",        "gmtime",        "mktime",
      "asctime",          "strftime",      "ftime",
  };
  static const std::set<std::string> kCallForm = {"time", "clock"};
  for (const Ident& id : ids) {
    if (kBanned.count(id.text) != 0) {
      add(out, ir, id.off, "wall-clock",
          "'" + id.text + "' reads host time; use sim::Simulator::now()");
      continue;
    }
    if (kCallForm.count(id.text) != 0) {
      std::size_t after = next_nonspace(ir.text, id.off + id.text.size());
      if (after == npos || ir.text[after] != '(') continue;
      if (member_access_before(ir.text, id.off)) continue;
      if (!std_or_global_qualified(ir.text, id.off)) continue;
      // `long long time() const` *declares* a function named time(); a
      // call expression is never directly preceded by a bare identifier
      // (call-introducing keywords aside).
      std::size_t pb = prev_nonspace(ir.text, id.off);
      if (pb != npos && ident_char(ir.text[pb])) {
        static const std::set<std::string> kPreCall = {
            "return", "co_return", "co_await", "co_yield", "throw", "case"};
        std::size_t b;
        if (kPreCall.count(token_ending_at(ir.text, pb, &b)) == 0) continue;
      }
      add(out, ir, id.off, "wall-clock",
          "'" + id.text + "()' reads host time; use sim::Simulator::now()");
    }
  }
}

// ---- rule: raw-rand --------------------------------------------------------

void rule_raw_rand(const FileIR& ir, const std::vector<Ident>& ids,
                   std::vector<Finding>& out) {
  static const std::set<std::string> kBanned = {
      "rand",       "srand",      "rand_r",     "random",
      "srandom",    "drand48",    "lrand48",    "mrand48",
      "srand48",    "random_device", "mt19937", "mt19937_64",
      "minstd_rand", "minstd_rand0", "default_random_engine",
      "ranlux24",   "ranlux48",
  };
  for (const Ident& id : ids) {
    if (kBanned.count(id.text) == 0) continue;
    if (member_access_before(ir.text, id.off)) continue;  // x.random(...)
    add(out, ir, id.off, "raw-rand",
        "'" + id.text + "' is platform entropy; use apn::Rng (common/rng.hpp)");
  }
}

// ---- rule: std-function ----------------------------------------------------

void rule_std_function(const FileIR& ir, const std::vector<Ident>& ids,
                       std::vector<Finding>& out) {
  for (std::size_t i = 0; i + 1 < ids.size(); ++i) {
    if (ids[i].text != "std" || ids[i + 1].text != "function") continue;
    std::size_t between = prev_nonspace(ir.text, ids[i + 1].off);
    if (between == npos || ir.text[between] != ':') continue;
    add(out, ir, ids[i].off, "std-function",
        "std::function in a hot path; use apn::UniqueFn (common/fn.hpp)");
  }
}

// ---- rule: ptr-key-iter ----------------------------------------------------

void rule_ptr_key_iter(const FileIR& ir, const std::vector<Ident>& ids,
                       std::vector<Finding>& out) {
  static const std::set<std::string> kAssoc = {"map", "unordered_map", "set",
                                               "unordered_set"};
  const std::string& t = ir.text;
  std::set<std::string> suspects;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (kAssoc.count(ids[i].text) == 0) continue;
    std::size_t lt = next_nonspace(t, ids[i].off + ids[i].text.size());
    if (lt == npos || t[lt] != '<') continue;
    std::size_t gt = match_template(t, lt);
    if (gt == npos) continue;
    std::size_t key_end = gt;
    int depth = 0;
    for (std::size_t j = lt + 1; j < gt; ++j) {
      if (t[j] == '<') ++depth;
      else if (t[j] == '>') --depth;
      else if (t[j] == ',' && depth == 0) {
        key_end = j;
        break;
      }
    }
    std::string key = t.substr(lt + 1, key_end - lt - 1);
    if (key.find('*') == npos) continue;
    std::size_t name_off = next_nonspace(t, gt + 1);
    // Reference/pointer declarators sit between the template and the
    // variable name (`const std::map<Node*, int>& weights`).
    while (name_off != npos &&
           (t[name_off] == '&' || t[name_off] == '*'))
      name_off = next_nonspace(t, name_off + 1);
    if (name_off == npos || !ident_char(t[name_off])) continue;
    std::size_t e = name_off;
    while (e < t.size() && ident_char(t[e])) ++e;
    suspects.insert(t.substr(name_off, e - name_off));
  }
  if (suspects.empty()) return;
  for (const Ident& id : ids) {
    if (suspects.count(id.text) == 0) continue;
    std::size_t before = prev_nonspace(t, id.off);
    if (before != npos && t[before] == ':' &&
        (before == 0 || t[before - 1] != ':')) {
      add(out, ir, id.off, "ptr-key-iter",
          "range-for over pointer-keyed container '" + id.text +
              "': iteration order is ASLR-dependent");
      continue;
    }
    std::size_t dot = next_nonspace(t, id.off + id.text.size());
    if (dot == npos || t[dot] != '.') continue;
    std::size_t m = next_nonspace(t, dot + 1);
    if (m == npos) continue;
    std::size_t me = m;
    while (me < t.size() && ident_char(t[me])) ++me;
    std::string method = t.substr(m, me - m);
    if (method == "begin" || method == "cbegin" || method == "rbegin") {
      add(out, ir, id.off, "ptr-key-iter",
          "iteration over pointer-keyed container '" + id.text +
              "': iteration order is ASLR-dependent");
    }
  }
}

// ---- rule: detached-coro ---------------------------------------------------

/// Capture-list text of a lambda FunctionIR, whitespace-stripped ("" when
/// the capture brackets are unknown or empty).
std::string capture_text(const FileIR& ir, const FunctionIR& f) {
  if (!f.is_lambda || f.cap_open == npos || f.cap_close == npos ||
      f.cap_close <= f.cap_open + 1)
    return "";
  std::string cap =
      ir.text.substr(f.cap_open + 1, f.cap_close - f.cap_open - 1);
  cap.erase(std::remove_if(cap.begin(), cap.end(),
                           [](char c) {
                             return c == ' ' || c == '\n' || c == '\t';
                           }),
            cap.end());
  return cap;
}

void rule_detached_coro(const FileIR& ir, std::vector<Finding>& out) {
  // v4: works off the scope tree (is_lambda + returns_coro) instead of
  // token-walking back from a `-> Coro` arrow, so template lambdas and
  // multi-line signatures are covered and strings/comments can't confuse
  // the match.
  for (const FunctionIR& f : ir.functions) {
    if (!f.is_lambda || !f.returns_coro) continue;
    if (capture_text(ir, f).empty()) continue;  // repo idiom: params own it
    add(out, ir, f.cap_open, "detached-coro",
        "capturing lambda returning a coroutine: captures die with the "
        "lambda temporary while the frame lives on; pass state as "
        "parameters instead");
  }
}

// ---- rules: coroutine suspension safety ------------------------------------
//
// Shared helpers for coro-ref-param / coro-local-escape / coro-stale-time.
// All three reason about what may legally cross a co_await: only state owned
// by the coroutine frame itself (value parameters, locals read before the
// suspension or refreshed after it). See docs/CORRECTNESS.md, "Coroutine
// lifetime discipline".

/// End of the statement containing the co_await at `aw`: the first ';' or
/// '{' after it. Uses *within* the suspension's own statement are safe —
/// the caller/arguments are still alive at the moment of first suspend.
std::size_t suspension_boundary(const FileIR& ir, std::size_t aw) {
  const std::string& t = ir.text;
  std::size_t b = aw;
  while (b < t.size() && t[b] != ';' && t[b] != '{') ++b;
  return b;
}

/// First co_await of `f` strictly after `off`, or npos. co_awaits are
/// collected in text order, so a forward scan finds the earliest.
std::size_t first_await_after(const FunctionIR& f, std::size_t off) {
  for (std::size_t aw : f.co_awaits)
    if (aw > off) return aw;
  return npos;
}

/// True when the identifier at `id` is a member access (`obj.id` / `o->id`).
bool is_member_use(const std::string& t, const Ident& id) {
  std::size_t p = prev_nonspace(t, id.off);
  if (p == npos) return false;
  if (t[p] == '.') return true;
  return t[p] == '>' && p > 0 && t[p - 1] == '-';
}

void rule_coro_ref_param(const FileIR& ir, const std::vector<Ident>& ids,
                         std::vector<Finding>& out) {
  const std::string& t = ir.text;
  for (const FunctionIR& f : ir.functions) {
    if (!f.returns_coro || f.co_awaits.empty()) continue;
    const std::size_t bnd = suspension_boundary(ir, f.co_awaits.front());
    for (const Decl& p : f.params) {
      // References only: pointer parameters are the sanctioned spelling for
      // caller-managed lifetime (mirrored by the runtime oracle's tests).
      if (p.type_text.find('&') == npos) continue;
      for (const Ident& id : ids) {
        if (id.off <= bnd) continue;
        if (id.off >= f.body_end) break;
        if (id.text != p.name || is_member_use(t, id)) continue;
        add(out, ir, id.off, "coro-ref-param",
            "reference parameter '" + p.name +
                "' of a coroutine read after a suspension point: the "
                "caller's argument may be gone by resume; take it by value "
                "(copied into the frame) or as a pointer whose lifetime the "
                "caller guarantees");
        break;  // one finding per parameter
      }
    }
  }
}

void rule_coro_local_escape(const FileIR& ir, const std::vector<Ident>& ids,
                            const ProjectContext& ctx,
                            std::vector<Finding>& out) {
  // Sinks that store a callable, message or handle beyond the current
  // statement: the event queue (at/after/schedule_resume/resume_*), links
  // and channels (send/post).
  static const std::set<std::string> kSinks = {
      "at",   "after", "schedule_resume", "resume_at",
      "resume_after", "send", "post"};
  const std::string& t = ir.text;

  // `&ident` in address-of position (after '(', ',', '?', ':', '=' — not a
  // binary AND) inside [begin, end) where ident names a frame local of `f`.
  auto scan_addr_of = [&](const FunctionIR& f, std::size_t begin,
                          std::size_t end, const std::string& what) {
    std::set<std::string> local_names;
    for (const Decl& d : f.locals) local_names.insert(d.name);
    for (const Ident& id : ids) {
      if (id.off < begin) continue;
      if (id.off >= end) break;
      if (local_names.count(id.text) == 0) continue;
      std::size_t amp = prev_nonspace(t, id.off);
      if (amp == npos || t[amp] != '&') continue;
      if (amp > 0 && t[amp - 1] == '&') continue;  // '&&' is not address-of
      std::size_t before = prev_nonspace(t, amp);
      if (before == npos) continue;
      const char b = t[before];
      if (b != '(' && b != ',' && b != '?' && b != ':' && b != '=') continue;
      add(out, ir, amp, "coro-local-escape",
          "address of coroutine frame local '" + id.text + "' escapes into " +
              what +
              ": it can be dereferenced after this frame advanced past the "
              "local's scope or died; pass a copy or owner-managed storage");
    }
  };

  for (const FunctionIR& f : ir.functions) {
    if (!f.returns_coro) continue;
    for (const Call& c : f.calls) {
      const bool sink = kSinks.count(c.callee) != 0;
      const bool spawn = ctx.coro_fns.count(c.callee) != 0 && !c.member_access;
      if (!sink && !spawn) continue;
      scan_addr_of(f, c.off, c.close,
                   sink ? "'" + c.callee + "(...)'"
                        : "spawned coroutine '" + c.callee + "'");
      if (!sink) continue;
      // By-reference lambda captures handed to a sink: the callback can run
      // after this frame has moved on. Value captures ([=], [x]) and
      // [this] (the owning object outlives its own event) are fine.
      for (const FunctionIR& g : ir.functions) {
        if (!g.is_lambda || g.cap_open == npos) continue;
        if (g.cap_open <= c.off || g.cap_open >= c.close) continue;
        const std::string cap = capture_text(ir, g);
        if (cap.find('&') == npos) continue;
        add(out, ir, g.cap_open, "coro-local-escape",
            "by-reference lambda capture scheduled via '" + c.callee +
                "(...)' from a coroutine: the callback can run after this "
                "frame has suspended or died; capture by value");
      }
    }
    // Immediately-invoked coroutine lambdas spawned from inside this
    // coroutine: `[](T* p) -> sim::Coro {...}(&local)`.
    for (const FunctionIR& g : ir.functions) {
      if (!g.is_lambda || !g.returns_coro) continue;
      if (g.body_begin <= f.body_begin || g.body_end >= f.body_end) continue;
      std::size_t open = next_nonspace(t, g.body_end + 1);
      if (open == npos || t[open] != '(') continue;
      std::size_t close = match_fwd(t, open, '(', ')');
      if (close == npos) continue;
      scan_addr_of(f, open, close, "a spawned coroutine lambda");
    }
  }
}

void rule_coro_stale_time(const FileIR& ir, const std::vector<Ident>& ids,
                          const ProjectContext& ctx,
                          std::vector<Finding>& out) {
  static const std::set<std::string> kCellReads = {"get", "sample", "peek"};
  const std::string& t = ir.text;
  for (const FunctionIR& f : ir.functions) {
    if (!f.returns_coro || f.co_awaits.empty()) continue;
    for (const Call& c : f.calls) {
      bool time_read = false;
      std::string source;
      if (c.callee == "now") {
        time_read = true;
        source = "now()";
      } else if (c.member_access && kCellReads.count(c.callee) != 0) {
        // Resolve the object: `cell.get()` / `cell->get()` where `cell` is
        // a known StateCell member.
        std::size_t dot = prev_nonspace(t, c.off);
        if (dot == npos) continue;
        std::size_t ob = dot;
        if (t[dot] == '.') ob = prev_nonspace(t, dot);
        else if (t[dot] == '>' && dot > 0 && t[dot - 1] == '-')
          ob = prev_nonspace(t, dot - 1);
        else
          continue;
        if (ob == npos || !ident_char(t[ob])) continue;
        std::size_t obb;
        const std::string obj = token_ending_at(t, ob, &obb);
        if (ctx.statecell_members.count(obj) == 0) continue;
        time_read = true;
        source = "StateCell '" + obj + "'";
      }
      if (!time_read) continue;
      // Cached into a variable? `Time t0 = sim.now();` / `t0 = cell.get();`
      // — the assigned name is the last identifier before the '='.
      const std::size_t ss = stmt_start_of(ir, c.off);
      if (ss >= c.off) continue;
      const std::string prefix = t.substr(ss, c.off - ss);
      const std::size_t eq = prefix.find('=');
      if (eq == npos || (eq + 1 < prefix.size() && prefix[eq + 1] == '='))
        continue;
      std::string name;
      for (const Ident& pid : identifiers(prefix.substr(0, eq)))
        name = pid.text;
      if (name.empty()) continue;
      const std::size_t aw = first_await_after(f, c.off);
      if (aw == npos) continue;
      const std::size_t bnd = suspension_boundary(ir, aw);
      for (const Ident& id : ids) {
        if (id.off <= bnd) continue;
        if (id.off >= f.body_end) break;
        if (id.text != name || is_member_use(t, id)) continue;
        // Exempt statements that re-read the clock / re-touch the cell:
        // `Time dt = sim.now() - start;` is elapsed-time math, not a stale
        // read.
        const std::size_t uss = stmt_start_of(ir, id.off);
        std::size_t usend = id.off;
        while (usend < t.size() && t[usend] != ';' && t[usend] != '{')
          ++usend;
        const std::string stmt = t.substr(uss, usend - uss);
        if (c.callee == "now") {
          if (contains_token(stmt, "now")) continue;
        } else {
          std::size_t dot2 = prev_nonspace(t, c.off);
          std::size_t ob2 = t[dot2] == '.' ? prev_nonspace(t, dot2)
                                           : prev_nonspace(t, dot2 - 1);
          std::size_t obb2;
          const std::string obj2 = token_ending_at(t, ob2, &obb2);
          if (contains_token(stmt, obj2)) continue;
        }
        add(out, ir, id.off, "coro-stale-time",
            "'" + name + "' caches " + source +
                " from before a co_await and is reused after resume: "
                "simulated time has advanced across the suspension; re-read "
                "after resuming");
        break;  // one finding per cached read
      }
    }
  }
}

// ---- rule: dropped-awaitable -----------------------------------------------

void rule_dropped_awaitable(const FileIR& ir, const ProjectContext& ctx,
                            std::vector<Finding>& out) {
  static const std::set<std::string> kFree = {"delay", "yield"};
  static const std::set<std::string> kMethod = {"wait", "acquire", "use",
                                                "transfer", "pop"};
  const std::string& t = ir.text;
  for (const FunctionIR& f : ir.functions) {
    for (const Call& c : f.calls) {
      bool target = false;
      if (!c.member_access && kFree.count(c.callee) != 0) target = true;
      else if (c.member_access && kMethod.count(c.callee) != 0) target = true;
      else if (ctx.awaitable_fns.count(c.callee) != 0) target = true;
      if (!target) continue;
      // ss == c.off is the bare-call-at-statement-start case (empty
      // prefix); only a call *before* its own statement start is bogus.
      std::size_t ss = stmt_start_of(ir, c.off);
      if (ss > c.off) continue;
      std::string prefix = t.substr(ss, c.off - ss);
      if (prefix.find('=') != npos || prefix.find('(') != npos) continue;
      if (contains_token(prefix, "co_await") ||
          contains_token(prefix, "co_return") ||
          contains_token(prefix, "co_yield") ||
          contains_token(prefix, "return"))
        continue;
      std::size_t after = next_nonspace(t, c.close + 1);
      if (after == npos || t[after] != ';') continue;
      add(out, ir, c.off, "dropped-awaitable",
          "'" + c.callee +
              "(...)' returns an awaitable that is discarded without "
              "co_await: the wait silently never happens");
    }
  }
}

// ---- rule: unit-mix --------------------------------------------------------

void rule_unit_mix(const FileIR& ir, const std::vector<Ident>& ids,
                   std::vector<Finding>& out) {
  const std::string& t = ir.text;
  std::set<std::string> time_vars, byte_vars;
  for (std::size_t i = 0; i + 1 < ids.size(); ++i) {
    const bool is_time = ids[i].text == "Time";
    const bool is_bytes = ids[i].text == "Bytes";
    if (!is_time && !is_bytes) continue;
    // Require the next identifier to follow directly (only space/&/* between)
    // so `Time` in template args or comments does not pollute the sets.
    std::size_t gap_b = ids[i].off + ids[i].text.size();
    bool direct = true;
    for (std::size_t j = gap_b; j < ids[i + 1].off; ++j) {
      const char c = t[j];
      if (c != ' ' && c != '\n' && c != '\t' && c != '&' && c != '*') {
        direct = false;
        break;
      }
    }
    if (!direct) continue;
    const std::string& name = ids[i + 1].text;
    static const std::set<std::string> kNotVar = {"const", "operator"};
    if (kNotVar.count(name) != 0) continue;
    (is_time ? time_vars : byte_vars).insert(name);
  }
  auto is_byte_name = [&](const std::string& tok) {
    return byte_vars.count(tok) != 0 || tok == "bytes" ||
           ends_with(tok, "_bytes") || tok.rfind("bytes_", 0) == 0;
  };
  // Drop ambiguous names (declared as both).
  for (const std::string& n : byte_vars)
    if (time_vars.count(n) != 0) time_vars.erase(n);
  if (time_vars.empty()) return;

  enum class Cat { kNone, kTime, kByte, kLit };
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    const char c = t[i];
    if (c != '+' && c != '-') continue;
    if (t[i + 1] == c || (i > 0 && t[i - 1] == c)) continue;  // ++ / --
    if (c == '-' && t[i + 1] == '>') continue;                // ->
    const bool compound = t[i + 1] == '=';
    // Left operand.
    std::size_t lp = prev_nonspace(t, i);
    if (lp == npos || !ident_char(t[lp])) continue;
    std::size_t lb;
    const std::string tokL = token_ending_at(t, lp, &lb);
    Cat catL = Cat::kNone;
    if (std::isdigit(static_cast<unsigned char>(tokL[0])) != 0) {
      const char last = tokL.back();
      if (last == 'e' || last == 'E') continue;  // float exponent `1e-9`
      if (tokL == "0" || tokL == "1") continue;
      std::size_t before = prev_nonspace(t, lb);
      if (before != npos && (t[before] == '*' || t[before] == '/' ||
                             t[before] == '.'))
        continue;  // scaled literal (`n * t`) or float fraction
      catL = Cat::kLit;
    } else if (time_vars.count(tokL) != 0) {
      catL = Cat::kTime;
    } else if (is_byte_name(tokL)) {
      catL = Cat::kByte;
    }
    if (catL == Cat::kNone) continue;
    // Right operand.
    std::size_t rp = next_nonspace(t, i + (compound ? 2 : 1));
    if (rp == npos || !ident_char(t[rp])) continue;
    std::size_t re = rp;
    while (re < t.size() && ident_char(t[re])) ++re;
    const std::string tokR = t.substr(rp, re - rp);
    Cat catR = Cat::kNone;
    if (std::isdigit(static_cast<unsigned char>(tokR[0])) != 0) {
      if (tokR == "0" || tokR == "1") continue;
      std::size_t after = next_nonspace(t, re);
      if (after != npos && (t[after] == '*' || t[after] == '/' ||
                            t[after] == '.' || t[after] == 'e'))
        continue;  // scaled literal (`6 * units::us(8)`) or float
      catR = Cat::kLit;
    } else {
      std::size_t after = next_nonspace(t, re);
      if (after != npos && (t[after] == '(' || t[after] == ':')) continue;
      if (time_vars.count(tokR) != 0) catR = Cat::kTime;
      else if (is_byte_name(tokR)) catR = Cat::kByte;
    }
    if (catR == Cat::kNone) continue;
    const bool bad =
        (catL == Cat::kTime && (catR == Cat::kByte || catR == Cat::kLit)) ||
        (catR == Cat::kTime && (catL == Cat::kByte || catL == Cat::kLit));
    if (!bad) continue;
    const char* what =
        (catL == Cat::kByte || catR == Cat::kByte)
            ? "mixes a Time variable with a byte count"
            : "mixes a Time variable with a bare integer literal";
    add(out, ir, i, "unit-mix",
        std::string("'") + tokL + " " + (compound ? std::string(1, c) + "=" :
        std::string(1, c)) + " " + tokR + "' " + what +
            "; Time is picoseconds — convert via units:: helpers");
  }
}

// ---- rule: check-coverage --------------------------------------------------

bool state_like_member(const Decl& m) {
  static const std::set<std::string> kDisqualify = {
      "const",    "static",    "constexpr", "StateCell", "Track",
      "Counter",  "Resource",  "Simulator", "UniqueFn",  "Fn",
      "function", "Coro",      "Future",    "Signal",    "Gate",
      "Semaphore", "CreditPool", "Channel", "Queue",     "Stream",
      "string",   "string_view", "mutable"};
  static const std::set<std::string> kState = {
      "int",      "unsigned", "long",     "short",    "bool",
      "size_t",   "int8_t",   "int16_t",  "int32_t",  "int64_t",
      "uint8_t",  "uint16_t", "uint32_t", "uint64_t", "Time",
      "Bytes",    "Rate",     "double",   "float",    "vector",
      "deque",    "map",      "unordered_map", "set", "unordered_set",
      "list",     "array",    "optional"};
  if (m.type_text.find('*') != npos || m.type_text.find('&') != npos)
    return false;
  bool stateish = false;
  for (const Ident& id : identifiers(m.type_text)) {
    if (kDisqualify.count(id.text) != 0) return false;
    if (kState.count(id.text) != 0) stateish = true;
  }
  return stateish;
}

void rule_check_coverage(const FileIR& ir, const ProjectContext& ctx,
                         std::vector<Finding>& out) {
  if (!(ends_with(ir.path, ".hpp") || ends_with(ir.path, ".h") ||
        ends_with(ir.path, ".hh")))
    return;
  if (!path_contains(ir.path, "src/")) return;
  for (const ClassIR& cls : ir.classes) {
    auto instrumented = [&](const Decl& m) {
      return m.type_text.find("StateCell") != npos ||
             ctx.instrumented.count(m.name) != 0 ||
             ctx.instrumented_scoped.count(cls.name + "::" + m.name) != 0;
    };
    bool participates = ctx.instrumented_classes.count(cls.name) != 0;
    for (const Decl& m : cls.members) {
      if (instrumented(m)) {
        participates = true;
        break;
      }
    }
    if (!participates) continue;
    for (const Decl& m : cls.members) {
      if (instrumented(m)) continue;
      if (!state_like_member(m)) continue;
      add_at_line(out, ir, m.line, "check-coverage",
                  "member '" + cls.name + "::" + m.name + "' (" + m.type_text +
                      ") is mutable sim state in a race-checked class but is "
                      "never instrumented (StateCell / APN_CHECK_ACCESS)");
    }
  }
}

// ---- rule: partition-ownership ---------------------------------------------

/// Owned class named in a declaration's type text, or "" when none.
std::string owned_type_of(const std::string& type_text,
                          const ProjectContext& ctx) {
  for (const Ident& id : identifiers(type_text))
    if (ctx.owner_domains.count(id.text) != 0) return id.text;
  return "";
}

/// Enclosing class of a function: the `Class::` qualifier on an
/// out-of-line definition, else the innermost class body containing it.
std::string enclosing_class(const FileIR& ir, const FunctionIR& f) {
  std::string dt = trim(f.decl_text);
  if (ends_with(dt, "::")) {
    dt.erase(dt.size() - 2);
    std::vector<Ident> dq = identifiers(dt);
    if (!dq.empty()) return dq.back().text;
  }
  std::string owner;
  for (const ClassIR& cls : ir.classes)
    if (cls.body_begin < f.body_begin && f.body_end <= cls.body_end &&
        !cls.name.empty())
      owner = cls.name;  // innermost wins: classes appear in open order
  return owner;
}

void rule_partition_ownership(const FileIR& ir, const std::vector<Ident>& ids,
                              const ProjectContext& ctx,
                              std::vector<Finding>& out) {
  const std::string& t = ir.text;

  // (c) APN_SHARED demands a written justification.
  for (const SharedDecl& sd : ir.shared_decls) {
    if (!sd.empty_reason) continue;
    const std::string who =
        sd.member.empty() ? std::string("a member") : "'" + sd.member + "'";
    add(out, ir, sd.off, "partition-ownership",
        "APN_SHARED on " + who +
            " has an empty reason string; the escape hatch requires a "
            "written justification");
  }

  // (a) race-checked classes in src/ headers must declare an owner: every
  // state-like or instrumented member of an un-annotated participating
  // class is one finding (ratcheted via the ownership baseline).
  const bool header = (ends_with(ir.path, ".hpp") || ends_with(ir.path, ".h") ||
                       ends_with(ir.path, ".hh")) &&
                      path_contains(ir.path, "src/");
  if (header) {
    for (const ClassIR& cls : ir.classes) {
      if (cls.name.empty()) continue;
      if (ctx.owner_domains.count(cls.name) != 0) continue;
      auto instrumented = [&](const Decl& m) {
        return m.type_text.find("StateCell") != npos ||
               ctx.instrumented.count(m.name) != 0 ||
               ctx.instrumented_scoped.count(cls.name + "::" + m.name) != 0;
      };
      bool participates = ctx.instrumented_classes.count(cls.name) != 0;
      for (const Decl& m : cls.members) {
        if (instrumented(m)) {
          participates = true;
          break;
        }
      }
      if (!participates) continue;
      for (const Decl& m : cls.members) {
        if (!instrumented(m) && !state_like_member(m)) continue;
        if (ctx.shared_members.count(cls.name + "::" + m.name) != 0) continue;
        add_at_line(out, ir, m.line, "partition-ownership",
                    "member '" + cls.name + "::" + m.name +
                        "' is mutable sim state but class '" + cls.name +
                        "' declares no owner partition; add "
                        "APN_OWNER(torus_node|pcie_island|global_readonly) "
                        "to the class body (common/owner.hpp)");
      }
    }
  }

  // (b) cross-domain reach: a method of an owned class touching a data
  // member of a class owned by a *different* partition domain, without the
  // sanctioned sim::Channel crossing in the same statement.
  for (const FunctionIR& f : ir.functions) {
    const std::string enc = enclosing_class(ir, f);
    if (enc.empty()) continue;
    auto de = ctx.owner_domains.find(enc);
    if (de == ctx.owner_domains.end()) continue;
    const std::string& dom_enc = de->second;
    if (dom_enc == "global_readonly") continue;  // assembly wires everything
    // Variables naming an owned class: parameters/locals plus the enclosing
    // class's own data members (resolved cross-file via class_fields).
    std::map<std::string, std::string> var_type;
    for (const Decl& d : f.locals) {
      std::string ty = owned_type_of(d.type_text, ctx);
      if (!ty.empty()) var_type[d.name] = ty;
    }
    auto fe = ctx.class_fields.find(enc);
    if (fe != ctx.class_fields.end()) {
      for (const auto& [mname, mtype] : fe->second) {
        std::string ty = owned_type_of(mtype, ctx);
        if (!ty.empty()) var_type[mname] = ty;
      }
    }
    if (var_type.empty()) continue;
    for (const Ident& id : ids) {
      if (id.off <= f.body_begin) continue;
      if (id.off >= f.body_end) break;
      auto vt = var_type.find(id.text);
      if (vt == var_type.end()) continue;
      if (member_access_before(t, id.off)) continue;  // other.var.field
      std::size_t after = next_nonspace(t, id.off + id.text.size());
      if (after == npos) continue;
      std::size_t m0;
      if (t[after] == '.') {
        m0 = next_nonspace(t, after + 1);
      } else if (t[after] == '-' && after + 1 < t.size() &&
                 t[after + 1] == '>') {
        m0 = next_nonspace(t, after + 2);
      } else {
        continue;
      }
      if (m0 == npos || !ident_char(t[m0])) continue;
      std::size_t m1 = m0;
      while (m1 < t.size() && ident_char(t[m1])) ++m1;
      const std::string member = t.substr(m0, m1 - m0);
      const std::string& target = vt->second;
      const std::string& dom_target = ctx.owner_domains.at(target);
      if (dom_target == dom_enc || dom_target == "global_readonly") continue;
      // Only *data member* reach counts; a method call is the target
      // class's own API mediating the access.
      std::size_t nx = next_nonspace(t, m1);
      if (nx != npos && t[nx] == '(') continue;
      auto ft = ctx.class_fields.find(target);
      if (ft == ctx.class_fields.end() || ft->second.count(member) == 0)
        continue;
      if (ctx.shared_members.count(target + "::" + member) != 0) continue;
      // A send/recv/transfer in the statement is the sanctioned crossing.
      std::size_t ss = stmt_start_of(ir, id.off);
      std::size_t se = t.find(';', id.off);
      const std::string stmt = t.substr(ss, (se == npos ? t.size() : se) - ss);
      if (contains_token(stmt, "send") || contains_token(stmt, "recv") ||
          contains_token(stmt, "transfer"))
        continue;
      add(out, ir, id.off, "partition-ownership",
          "'" + enc + "::" +
              (f.name.empty() ? std::string("<lambda>") : f.name) + "' (" +
              dom_enc + ") reaches '" + target + "::" + member + "' (" +
              dom_target +
              ") directly; cross-partition state must move through a "
              "sim::Channel or the member must be APN_SHARED");
    }
  }
}

// ---- rule: hot-path-alloc --------------------------------------------------

void rule_hot_path_alloc(const FileIR& ir, const std::vector<Ident>& ids,
                         std::vector<Finding>& out) {
  static const std::set<std::string> kMallocFamily = {
      "malloc", "calloc", "realloc", "strdup", "aligned_alloc"};
  const std::string& t = ir.text;
  for (const FunctionIR& f : ir.functions) {
    if (!f.hot) continue;
    for (const Ident& id : ids) {
      if (id.off <= f.body_begin) continue;
      if (id.off >= f.body_end) break;
      std::string why;
      if (id.text == "new") {
        std::size_t after = next_nonspace(t, id.off + 3);
        if (after != npos && t[after] == '(') continue;  // placement new
        std::size_t before = prev_nonspace(t, id.off);
        if (before != npos && ident_char(t[before]) &&
            token_ending_at(t, before) == "operator")
          continue;
        why = "'new'";
      } else if (kMallocFamily.count(id.text) != 0) {
        std::size_t after = next_nonspace(t, id.off + id.text.size());
        if (after == npos || t[after] != '(') continue;
        if (member_access_before(t, id.off)) continue;
        why = "'" + id.text + "()'";
      } else if (id.text == "make_unique" || id.text == "make_shared") {
        std::size_t after = next_nonspace(t, id.off + id.text.size());
        if (after == npos || (t[after] != '<' && t[after] != '(')) continue;
        why = "'" + id.text + "'";
      } else {
        continue;
      }
      add(out, ir, id.off, "hot-path-alloc",
          why + " allocates inside APN_HOT function '" +
              (f.name.empty() ? std::string("<lambda>") : f.name) +
              "'; the hot path is allocation-free by contract");
    }
  }
}

// True when [b, e) of `t`, ignoring whitespace, is a single numeric literal:
// digits plus the usual '.'/'e'/'x'/'p' spellings, digit separators, a sign
// inside an exponent and integer/float suffixes. Identifiers never qualify
// (they cannot start with a digit), so `units::ns(cfg.delay)` passes while
// `units::ns(400)` does not.
bool pure_numeric_literal(const std::string& t, std::size_t b, std::size_t e) {
  while (b < e && std::isspace(static_cast<unsigned char>(t[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(t[e - 1]))) --e;
  if (b >= e) return false;
  if (!std::isdigit(static_cast<unsigned char>(t[b]))) return false;
  for (std::size_t i = b; i < e; ++i) {
    const char c = t[i];
    if (std::isalnum(static_cast<unsigned char>(c))) continue;
    if (c == '.' || c == '\'') continue;
    if ((c == '+' || c == '-') && i > b &&
        (t[i - 1] == 'e' || t[i - 1] == 'E' || t[i - 1] == 'p' ||
         t[i - 1] == 'P'))
      continue;
    return false;
  }
  return true;
}

// Calibration constants belong in the hardware-profile structs
// (core/params.hpp, gpu/arch.hpp, pcie/link.hpp) where src/hw/profile.cpp
// versions them per generation. A bare `units::ns(400)` or `Rate(1.5e9)`
// inside model code is an unnamed calibration literal: invisible to
// --hw-profile, untracked by docs/HARDWARE.md, and silently shared by every
// profile. Flags unit-helper and Rate constructor calls whose argument is a
// raw numeric literal, inside function bodies only — namespace-scope named
// constants and the profile-definition headers stay legal.
void rule_calibration_literal(const FileIR& ir, const std::vector<Ident>& ids,
                              std::vector<Finding>& out) {
  static const std::set<std::string> kUnitHelpers = {
      "ps", "ns", "us", "ms", "sec", "KBps", "MBps", "GBps", "Gbps"};
  const std::string& t = ir.text;
  for (const FunctionIR& f : ir.functions) {
    for (const Ident& id : ids) {
      if (id.off <= f.body_begin) continue;
      if (id.off >= f.body_end) break;
      std::string what;
      if (id.text == "Rate") {
        what = "Rate";
      } else if (kUnitHelpers.count(id.text) != 0) {
        // Only the units:: helpers — a bare `ns(...)` is some other function.
        std::size_t p = prev_nonspace(t, id.off);
        if (p == npos || p == 0 || t[p] != ':' || t[p - 1] != ':') continue;
        std::size_t q = prev_nonspace(t, p - 1);
        if (q == npos || token_ending_at(t, q) != "units") continue;
        what = "units::" + id.text;
      } else {
        continue;
      }
      std::size_t open = next_nonspace(t, id.off + id.text.size());
      if (open == npos || t[open] != '(') continue;
      std::size_t close = open + 1;
      int depth = 1;
      while (close < t.size() && depth > 0) {
        if (t[close] == '(') ++depth;
        else if (t[close] == ')') --depth;
        ++close;
      }
      if (depth != 0) continue;
      if (!pure_numeric_literal(t, open + 1, close - 1)) continue;
      add(out, ir, id.off, "calibration-literal",
          "'" + what + "(" + trim(t.substr(open + 1, close - 1 - open - 1)) +
              ")' is an unnamed calibration constant in model code; name it "
              "in the hardware-profile structs (core/params.hpp, "
              "gpu/arch.hpp, pcie/link.hpp) so profiles can version it");
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Two-phase analysis entry points
// ---------------------------------------------------------------------------

void scan_declarations(const FileIR& ir, ProjectContext& ctx) {
  const std::string& t = ir.text;
  // Awaiter-returning functions.
  for (const FunctionIR& f : ir.functions) {
    if (f.name.empty()) continue;
    if (f.decl_text.find("Awaiter") != npos ||
        f.decl_text.find("Awaitable") != npos) {
      ctx.awaitable_fns.insert(f.name);
      continue;
    }
    // `auto wait() { return WaitAwaiter{...}; }`
    for (const Ident& id : identifiers(
             t.substr(f.body_begin, f.body_end - f.body_begin))) {
      if (id.text != "return") continue;
      std::size_t abs = f.body_begin + id.off + id.text.size();
      std::size_t nx = next_nonspace(t, abs);
      if (nx == npos || !ident_char(t[nx])) continue;
      std::size_t e = nx;
      while (e < t.size() && ident_char(t[e])) ++e;
      const std::string ret = t.substr(nx, e - nx);
      if (ends_with(ret, "Awaiter") || ends_with(ret, "Awaitable")) {
        ctx.awaitable_fns.insert(f.name);
        break;
      }
    }
  }
  // APN_CHECK_ACCESS(first_arg, ...) — the last identifier of the first
  // argument is the member name (handles `a.arrived`, `xfer->bytes`). When
  // the owning class is derivable (bare name inside a `Class::method`
  // definition or an inline method within a class body) the entry is scoped
  // to that class so same-named members elsewhere stay independent.
  std::size_t pos = 0;
  while ((pos = t.find("APN_CHECK_ACCESS", pos)) != npos) {
    const std::size_t at = pos;
    std::size_t open = next_nonspace(t, pos + 16);
    pos += 16;
    if (open == npos || t[open] != '(') continue;
    // Skip the macro's own #define.
    std::size_t ls = at;
    while (ls > 0 && t[ls - 1] != '\n') --ls;
    if (t.substr(ls, at - ls).find("#define") != npos) continue;
    std::size_t comma = t.find(',', open);
    std::size_t close = t.find(')', open);
    std::size_t end = std::min(comma, close);
    if (end == npos) continue;
    const std::string arg_text = t.substr(open + 1, end - open - 1);
    std::vector<Ident> arg = identifiers(arg_text);
    if (arg.empty()) continue;
    const std::string name = arg.back().text;
    const bool foreign =
        arg_text.find('.') != npos || arg_text.find("->") != npos;
    std::string owner;
    if (!foreign) {
      // Owner from the enclosing method's `Class::` qualifier...
      int fi = innermost_function(ir, at);
      if (fi >= 0) {
        const std::string& d =
            ir.functions[static_cast<std::size_t>(fi)].decl_text;
        std::string dt = trim(d);
        if (ends_with(dt, "::")) {
          std::vector<Ident> dq = identifiers(dt);
          if (!dq.empty()) owner = dq.back().text;
        }
      }
      // ...or from the enclosing class body (inline method).
      if (owner.empty()) {
        for (const ClassIR& cls : ir.classes) {
          if (cls.body_begin < at && at < cls.body_end && !cls.name.empty())
            owner = cls.name;  // innermost wins: classes nest in open order
        }
      }
    }
    if (foreign || owner.empty()) {
      ctx.instrumented.insert(name);
    } else {
      ctx.instrumented_scoped.insert(owner + "::" + name);
      ctx.instrumented_classes.insert(owner);
    }
  }
  // Coroutine-returning functions: their call sites spawn detached frames
  // (consulted by coro-local-escape).
  for (const FunctionIR& f : ir.functions) {
    if (!f.name.empty() && f.returns_coro) ctx.coro_fns.insert(f.name);
  }
  // StateCell members.
  for (const ClassIR& cls : ir.classes) {
    bool any = false;
    for (const Decl& m : cls.members) {
      if (m.type_text.find("StateCell") != npos) {
        if (cls.name.empty()) ctx.instrumented.insert(m.name);
        else ctx.instrumented_scoped.insert(cls.name + "::" + m.name);
        ctx.statecell_members.insert(m.name);
        any = true;
      }
    }
    if (any && !cls.name.empty()) ctx.instrumented_classes.insert(cls.name);
  }
  // Ownership graph: APN_OWNER/APN_SHARED annotations attributed to the
  // innermost enclosing class, plus the per-class member catalogue the
  // ownership rule uses to resolve `obj->field` across translation units.
  for (const OwnerDecl& od : ir.owner_decls) {
    std::string owner;
    for (const ClassIR& cls : ir.classes)
      if (cls.body_begin < od.off && od.off < cls.body_end && !cls.name.empty())
        owner = cls.name;  // innermost wins: classes appear in open order
    if (!owner.empty()) ctx.owner_domains[owner] = od.domain;
  }
  for (const SharedDecl& sd : ir.shared_decls) {
    if (sd.member.empty()) continue;
    std::string owner;
    for (const ClassIR& cls : ir.classes)
      if (cls.body_begin < sd.off && sd.off < cls.body_end && !cls.name.empty())
        owner = cls.name;
    if (!owner.empty()) ctx.shared_members.insert(owner + "::" + sd.member);
  }
  for (const ClassIR& cls : ir.classes) {
    if (cls.name.empty()) continue;
    auto& fields = ctx.class_fields[cls.name];
    for (const Decl& m : cls.members) fields[m.name] = m.type_text;
  }
}

std::vector<Finding> lint_ir(const FileIR& ir, const ProjectContext& ctx) {
  std::vector<Finding> out;
  std::vector<Ident> ids = identifiers(ir.text);

  const bool rng_exempt = path_contains(ir.path, "common/rng");
  if (!rng_exempt) {
    rule_wall_clock(ir, ids, out);
    rule_raw_rand(ir, ids, out);
  }
  if (path_contains(ir.path, "src/sim") || path_contains(ir.path, "src/core") ||
      path_contains(ir.path, "src/pcie")) {
    rule_std_function(ir, ids, out);
  }
  rule_ptr_key_iter(ir, ids, out);
  rule_detached_coro(ir, out);
  rule_dropped_awaitable(ir, ctx, out);
  // Suspension-safety rules skip tests/: test code parks frames and threads
  // pointers on purpose, and the runtime frame oracle (--coro-check) covers
  // it dynamically.
  if (!path_contains(ir.path, "tests/")) {
    rule_coro_ref_param(ir, ids, out);
    rule_coro_local_escape(ir, ids, ctx, out);
    rule_coro_stale_time(ir, ids, ctx, out);
  }
  if (!path_contains(ir.path, "common/units")) rule_unit_mix(ir, ids, out);
  rule_check_coverage(ir, ctx, out);
  if (path_contains(ir.path, "src/")) {
    rule_partition_ownership(ir, ids, ctx, out);
  }
  rule_hot_path_alloc(ir, ids, out);
  // Model code only; the profile-definition headers (where the named
  // parameter structs and their presets live) are the one legal home for
  // these literals.
  if ((path_contains(ir.path, "src/core") ||
       path_contains(ir.path, "src/pcie") ||
       path_contains(ir.path, "src/gpu")) &&
      !ends_with(ir.path, "core/params.hpp") &&
      !ends_with(ir.path, "gpu/arch.hpp") &&
      !ends_with(ir.path, "pcie/link.hpp")) {
    rule_calibration_literal(ir, ids, out);
  }

  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    return std::tie(a.line, a.rule, a.col) < std::tie(b.line, b.rule, b.col);
  });
  return out;
}

std::vector<Finding> lint_source(const std::string& path,
                                 const std::string& source) {
  FileIR ir = parse(path, source);
  ProjectContext ctx;
  scan_declarations(ir, ctx);
  return lint_ir(ir, ctx);
}

bool read_file(const std::string& path, std::string& out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  char buf[65536];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  std::fclose(f);
  return true;
}

bool lint_file(const std::string& path, std::vector<Finding>& out) {
  std::string src;
  if (!read_file(path, src)) return false;
  std::vector<Finding> found = lint_source(path, src);
  out.insert(out.end(), found.begin(), found.end());
  return true;
}

// ---------------------------------------------------------------------------
// Baseline ratchet
// ---------------------------------------------------------------------------

Baseline parse_baseline(const std::string& text) {
  Baseline out;
  std::stringstream ss(text);
  std::string line;
  while (std::getline(ss, line)) {
    std::size_t hash = line.find('#');
    if (hash != npos) line.erase(hash);
    std::size_t a = line.find('|');
    if (a == npos) continue;
    std::size_t b = line.find('|', a + 1);
    if (b == npos) continue;
    std::string path = line.substr(0, a);
    std::string rule = line.substr(a + 1, b - a - 1);
    int count = std::atoi(line.c_str() + b + 1);
    if (!path.empty() && !rule.empty() && count > 0)
      out[{path, rule}] += count;
  }
  return out;
}

std::string format_baseline(const std::vector<Finding>& findings) {
  Baseline counts;
  for (const Finding& f : findings) counts[{f.path, f.rule}] += 1;
  std::string out =
      "# apn-lint baseline: grandfathered findings (path|rule|count).\n"
      "# Counts may only decrease; regenerate with --update-baseline.\n";
  for (const auto& [key, count] : counts) {
    out += key.first + "|" + key.second + "|" + std::to_string(count) + "\n";
  }
  return out;
}

std::vector<Finding> apply_baseline(const std::vector<Finding>& findings,
                                    const Baseline& baseline,
                                    std::vector<std::string>* stale) {
  Baseline budget = baseline;
  std::vector<Finding> fresh;
  for (const Finding& f : findings) {
    auto it = budget.find({f.path, f.rule});
    if (it != budget.end() && it->second > 0) {
      --it->second;
    } else {
      fresh.push_back(f);
    }
  }
  if (stale != nullptr) {
    for (const auto& [key, left] : budget) {
      if (left > 0)
        stale->push_back(key.first + "|" + key.second + " (" +
                         std::to_string(left) + " stale)");
    }
  }
  return fresh;
}

// ---------------------------------------------------------------------------
// SARIF output
// ---------------------------------------------------------------------------

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// Rule registry
// ---------------------------------------------------------------------------

const std::vector<RuleInfo>& rules() {
  static const std::vector<RuleInfo> kRules = {
      {"wall-clock",
       "Host wall-clock read; simulation time must come from sim::Simulator",
       "The simulator is a discrete-event machine: every timestamp must come "
       "from sim::Simulator's virtual clock so runs are bit-identical across "
       "hosts and reruns. Reading std::chrono system/steady/high_resolution "
       "clocks or the C time APIs (time, clock, gettimeofday, clock_gettime) "
       "injects host time into the model, which breaks reproduction and "
       "poisons golden comparisons. Host timing is legal only in the "
       "rng-exempt measurement code under src/common.",
       "src/core/example.cpp",
       "Time stamp() { return std::chrono::steady_clock::now(); }\n"},
      {"raw-rand",
       "Platform entropy; all randomness must flow through apn::Rng",
       "All randomness must flow through apn::Rng (common/rng.hpp), which is "
       "seedable and bit-stable across platforms. rand()/srand()/random(), "
       "drand48, std::random_device and the std engines (mt19937, ...) pull "
       "platform entropy or platform-dependent sequences, so two runs with "
       "the same seed diverge. The rng module itself is exempt — it is where "
       "the one sanctioned implementation lives.",
       "src/core/example.cpp", "int pick() { return rand() % 8; }\n"},
      {"std-function",
       "std::function in a hot path; use apn::UniqueFn",
       "std::function boxes copyable callables behind a potential heap "
       "allocation and an indirect call; in the event engine's hot layers "
       "(src/sim, src/core, src/pcie) that cost lands on every event. "
       "apn::UniqueFn is the repo's move-only callable with inline storage "
       "sized for the engine's continuations — same expressiveness where it "
       "matters, no boxing. Cold layers (apps, ib, tools) may still use "
       "std::function.",
       "src/sim/example.hpp", "std::function<void()> cb;\n"},
      {"ptr-key-iter",
       "Iteration over a pointer-keyed container is ASLR-dependent",
       "Iterating a map or set keyed by pointers visits elements in address "
       "order, and addresses change run to run under ASLR. If the iteration "
       "feeds any model decision (scheduling order, tie-breaks, stats "
       "layout), the simulation stops being reproducible. Keyed *lookup* is "
       "fine — only iteration (range-for, begin()) is flagged. Iterate a "
       "stable index (ordinals, insertion order) instead.",
       "src/core/example.cpp",
       "std::map<Node*, int> weights;\n"
       "int sum() { int s = 0; for (auto& [n, w] : weights) s += w; "
       "return s; }\n"},
      {"detached-coro",
       "Capturing lambda returning a coroutine: captures dangle after the "
       "call",
       "A lambda that returns sim::Coro starts a coroutine whose frame "
       "outlives the lambda object: the temporary closure dies at the end of "
       "the spawning statement, while the frame keeps resuming. Every "
       "capture lives in the dead closure, so the first use after a "
       "suspension is a use-after-free. The repo idiom is an empty capture "
       "list with all state passed as parameters — parameters are copied "
       "into the coroutine frame and live exactly as long as it does.",
       "src/core/example.cpp",
       "void kick() { [this]() -> sim::Coro { co_return; }(); }\n"},
      {"dropped-awaitable",
       "Awaitable discarded without co_await; the wait never happens",
       "Calling an awaiter factory (sim::delay, Gate::wait, "
       "Semaphore/CreditPool::acquire, Resource::use, Channel::transfer, "
       "Queue::pop, or any function returning a *Awaiter/*Awaitable) as a "
       "bare statement destroys the awaiter before it ever suspends: the "
       "wait silently never happens and the coroutine runs ahead of the "
       "model. Either co_await the call or bind the awaiter and co_await it "
       "later. Bare calls of Coro-returning functions are not flagged — "
       "sim::Coro is fire-and-forget by design.",
       "src/sim/example.cpp",
       "sim::Coro run(Gate* g) {\n  g->wait();\n  co_return;\n}\n"},
      {"unit-mix",
       "Additive arithmetic mixing Time with byte counts or bare literals",
       "apn::Time is picoseconds. Adding or subtracting a byte count "
       "(apn::Bytes, *_bytes locals) or a bare unscaled integer literal "
       "produces a number that type-checks but is dimensionally wrong — the "
       "classic source of on-by-one-unit calibration bugs. All constants "
       "must enter time arithmetic through the units:: helpers "
       "(units::ns(250), units::us(8)) so the scale is visible at the use "
       "site. src/common/units.hpp, which defines the conversions, is "
       "exempt.",
       "src/sim/example.cpp",
       "Time deadline(Time start) { return start + 512; }\n"},
      {"check-coverage",
       "Mutable state member of a race-checked class is not instrumented",
       "A class that participates in same-tick race detection (it has a "
       "StateCell member or an APN_CHECK_ACCESS-instrumented member) is "
       "expected to instrument *all* of its mutable simulation state: an "
       "uninstrumented integral or container member is a blind spot where a "
       "real race would go unreported, making the detector's clean bill of "
       "health misleading. Instrument the member, or carry an allow comment "
       "explaining why it cannot race. Findings ratchet through the "
       "coverage baseline so instrumentation only grows.",
       "src/core/example.hpp",
       "class Dev {\n"
       "  APN_OWNER(torus_node)\n"
       "  check::StateCell<int> credits_;\n"
       "  std::uint64_t tail_ = 0;\n"
       "};\n"},
      {"hot-path-alloc",
       "Heap allocation inside an APN_HOT function",
       "Functions marked APN_HOT (common/hot.hpp) are on the event engine's "
       "per-event path, which is allocation-free by contract: event nodes "
       "come from pools, continuations use inline storage. A non-placement "
       "new, malloc-family call or make_unique/make_shared inside one "
       "introduces rate-dependent jitter and allocator-dependent layout. "
       "Move the allocation to setup/cold code, or carry an explicit allow "
       "comment for a genuinely cold fallback branch.",
       "src/sim/example.hpp",
       "APN_HOT void push() { int* p = new int(0); use(p); }\n"},
      {"calibration-literal",
       "Unnamed numeric calibration literal in model code; hoist it into "
       "the hardware-profile parameter structs",
       "Model code (src/core, src/pcie, src/gpu) may not bury raw numbers "
       "in units helpers or Rate constructors — units::ns(400) inside a "
       "function body is a calibration constant with no name, no "
       "per-generation versioning and no documentation. Such constants "
       "belong in the hardware-profile parameter structs (core/params.hpp, "
       "gpu/arch.hpp, pcie/link.hpp), where src/hw/profile.cpp versions "
       "them per hardware generation and docs/HARDWARE.md documents them. "
       "Those three headers are exempt: they are where the named defaults "
       "live.",
       "src/core/example.cpp",
       "Time guard() { return units::ns(400); }\n"},
      {"partition-ownership",
       "Partition-ownership violation: un-annotated sim state, a direct "
       "cross-domain member reach without a Channel handoff, or an "
       "APN_SHARED with no justification",
       "The sharding-readiness analysis (ROADMAP item 1). Every class "
       "holding race-checked simulation state must declare its partition "
       "with APN_OWNER(domain); a method of one domain's class may not "
       "directly touch a data member of a class owned by a different "
       "domain — cross-partition interaction must go through a "
       "sim::Channel (a send/recv/transfer in the same statement is the "
       "sanctioned escape) or the member must be APN_SHARED with a "
       "non-empty justification. Un-annotated classes ratchet through the "
       "ownership baseline so coverage only grows.",
       "src/core/example.hpp",
       "class Dev {\n"
       "  void bump() { APN_CHECK_ACCESS(tail_, w); }\n"
       "  std::uint64_t tail_ = 0;\n"
       "};\n"},
      {"coro-ref-param",
       "Reference parameter of a coroutine read after a suspension point",
       "Between a co_await and its resume, the coroutine's caller has "
       "returned: a parameter taken by reference points into a frame that "
       "may no longer exist, so any read after the first suspension point "
       "is a potential use-after-free. Only state owned by the coroutine "
       "frame itself survives a suspension — take the parameter by value "
       "(it is copied into the frame), or as a pointer, the repo's "
       "sanctioned spelling for 'the caller guarantees this outlives the "
       "frame'. Uses within the first suspension's own statement are not "
       "flagged (the caller is still alive at the moment of suspend), and "
       "tests/ are exempt — the runtime frame oracle (--coro-check) covers "
       "them dynamically.",
       "src/cluster/example.cpp",
       "sim::Coro pump(sim::Gate& gate, sim::Queue<int>& out) {\n"
       "  co_await gate.wait();\n"
       "  out.push(1);\n"
       "  co_return;\n"
       "}\n"},
      {"coro-local-escape",
       "Address of a coroutine frame local escapes into a stored callable, "
       "message, or spawned coroutine",
       "A coroutine frame dies the moment its body completes or its owner "
       "reclaims it, and between suspensions it can advance past a local's "
       "scope. Passing &local to a scheduling or messaging sink "
       "(Simulator::at/after, Channel::send, Resource::post, "
       "schedule_resume/resume_*), capturing locals by reference in a "
       "lambda handed to such a sink, or passing &local to another spawned "
       "coroutine stores a pointer that outlives what it points at. Copy "
       "the value into the callback/message, or hand over owner-managed "
       "storage (shared_ptr, a member of a live object). Non-coroutine "
       "functions are not flagged: an ordinary stack frame outlives the "
       "statements it schedules from, because it only returns after "
       "sim.run() style loops complete or the scheduled work is fetched.",
       "src/cluster/example.cpp",
       "sim::Coro sender(sim::Simulator* sim) {\n"
       "  int pending = 0;\n"
       "  sim->after(10, [&] { pending += 1; });\n"
       "  co_await sim::delay(*sim, 100);\n"
       "}\n"},
      {"coro-stale-time",
       "Cached now()/StateCell read from before a co_await reused after "
       "resume",
       "co_await means simulated time passes: any value cached from "
       "Simulator::now() or from a StateCell read (get/sample/peek) before "
       "the suspension describes a world that no longer exists after the "
       "resume. Reusing the cached copy as 'the current time' or 'the "
       "current cell state' silently computes with stale data. Re-read "
       "after resuming. Statements that visibly re-read the source are "
       "exempt — `Time dt = sim.now() - start;` is elapsed-time math over "
       "an intentionally old timestamp, and a statement that re-touches "
       "the same cell is treated as aware of the refresh.",
       "src/cluster/example.cpp",
       "sim::Coro worker(sim::Simulator* sim, sim::Gate* gate) {\n"
       "  Time start = sim->now();\n"
       "  co_await gate->wait();\n"
       "  record(start);\n"
       "  co_return;\n"
       "}\n"},
  };
  return kRules;
}

std::string format_sarif(const std::vector<Finding>& findings) {
  std::string out;
  out +=
      "{\n"
      "  \"version\": \"2.1.0\",\n"
      "  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/"
      "sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\n"
      "  \"runs\": [\n"
      "    {\n"
      "      \"tool\": {\n"
      "        \"driver\": {\n"
      "          \"name\": \"apn-lint\",\n"
      "          \"informationUri\": \"tools/apn-lint/lint.hpp\",\n"
      "          \"rules\": [\n";
  bool first = true;
  for (const RuleInfo& r : rules()) {
    if (!first) out += ",\n";
    first = false;
    out += std::string("            {\"id\": \"") + r.id +
           "\", \"shortDescription\": {\"text\": \"" +
           json_escape(r.summary) + "\"}}";
  }
  out +=
      "\n          ]\n"
      "        }\n"
      "      },\n"
      "      \"results\": [\n";
  first = true;
  for (const Finding& f : findings) {
    if (!first) out += ",\n";
    first = false;
    std::string region = "{\"startLine\": " + std::to_string(f.line);
    if (f.col > 0) {
      region += ", \"startColumn\": " + std::to_string(f.col);
      if (f.end_col > f.col)
        region += ", \"endColumn\": " + std::to_string(f.end_col);
    }
    region += "}";
    out += "        {\"ruleId\": \"" + json_escape(f.rule) +
           "\", \"level\": \"error\", \"message\": {\"text\": \"" +
           json_escape(f.detail) +
           "\"}, \"locations\": [{\"physicalLocation\": "
           "{\"artifactLocation\": {\"uri\": \"" +
           json_escape(f.path) + "\"}, \"region\": " + region + "}}]}";
  }
  out +=
      "\n      ]\n"
      "    }\n"
      "  ]\n"
      "}\n";
  return out;
}

// ---------------------------------------------------------------------------
// Parallel project driver
// ---------------------------------------------------------------------------

bool run_project(const std::vector<std::string>& files, int jobs,
                 std::vector<Finding>& out, std::string* bad_path) {
  const std::size_t n = files.size();
  std::vector<std::string> sources(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (!read_file(files[i], sources[i])) {
      if (bad_path != nullptr) *bad_path = files[i];
      return false;
    }
  }
  unsigned want = jobs > 0 ? static_cast<unsigned>(jobs)
                           : std::thread::hardware_concurrency();
  if (want == 0) want = 1;
  const unsigned workers =
      static_cast<unsigned>(std::min<std::size_t>(want, n == 0 ? 1 : n));

  auto for_each_file = [&](auto&& body) {
    if (workers <= 1) {
      for (std::size_t i = 0; i < n; ++i) body(i);
      return;
    }
    std::atomic<std::size_t> cursor{0};
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) {
      pool.emplace_back([&] {
        for (std::size_t i; (i = cursor.fetch_add(1)) < n;) body(i);
      });
    }
    for (std::thread& th : pool) th.join();
  };

  // Phase 1: parse in parallel; harvest declarations serially in file order
  // so the ProjectContext fill is trivially reproducible.
  std::vector<FileIR> irs(n);
  for_each_file([&](std::size_t i) { irs[i] = parse(files[i], sources[i]); });
  ProjectContext ctx;
  for (const FileIR& ir : irs) scan_declarations(ir, ctx);

  // Phase 2: rules in parallel into per-file slots, committed in file
  // order — the output is byte-identical for every --jobs value.
  std::vector<std::vector<Finding>> per(n);
  for_each_file([&](std::size_t i) { per[i] = lint_ir(irs[i], ctx); });
  for (std::size_t i = 0; i < n; ++i)
    out.insert(out.end(), per[i].begin(), per[i].end());
  return true;
}

}  // namespace apn::lint
