// apn-lint CLI. See lint.hpp for the rule catalogue.
//
// Usage:
//   apn-lint [--baseline=FILE] [--coverage-baseline=FILE]
//            [--ownership-baseline=FILE] [--suspension-baseline=FILE]
//            [--update-baseline] [--sarif=FILE] [--jobs=N]
//            [--explain=RULE] <path>...
//
// Paths may be files or directories (directories are walked recursively for
// C/C++ sources). The whole tree is parsed first (phase 1: declaration
// harvest) so the flow rules see cross-file facts, then linted (phase 2).
// Both phases parallelize per file across --jobs worker threads (default:
// hardware concurrency); findings are committed in path order, so the
// output is byte-identical for every job count.
//
// check-coverage findings ratchet through --coverage-baseline,
// partition-ownership findings through --ownership-baseline and the
// coroutine suspension-safety rules (coro-ref-param, coro-local-escape,
// coro-stale-time) through --suspension-baseline; every other rule
// ratchets through --baseline. --update-baseline rewrites whichever of the
// named files from the current findings. --sarif writes a SARIF 2.1.0 log
// of the post-baseline findings (written even when clean, so CI can upload
// unconditionally). --explain=RULE prints the rule's documentation
// paragraph plus a minimal firing example and its diagnostic, then exits.
//
// Exit codes: 0 clean (stale baseline entries only warn), 1 findings not
// covered by a baseline, 2 usage or I/O error.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint.hpp"

namespace fs = std::filesystem;
using apn::lint::Finding;

namespace {

bool is_source(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".cc" || ext == ".cxx" || ext == ".hpp" ||
         ext == ".h" || ext == ".hh";
}

void collect(const fs::path& root, std::vector<std::string>& files) {
  if (fs::is_directory(root)) {
    for (const auto& e : fs::recursive_directory_iterator(root)) {
      if (e.is_regular_file() && is_source(e.path()))
        files.push_back(e.path().generic_string());
    }
  } else {
    files.push_back(root.generic_string());
  }
}

bool load_baseline(const std::string& path, apn::lint::Baseline& out) {
  std::ifstream in(path);
  if (!in) return false;
  std::stringstream ss;
  ss << in.rdbuf();
  out = apn::lint::parse_baseline(ss.str());
  return true;
}

bool write_text(const std::string& path, const std::string& body) {
  std::ofstream out(path);
  if (!out) return false;
  out << body;
  return true;
}

bool is_coverage(const Finding& f) { return f.rule == "check-coverage"; }
bool is_ownership(const Finding& f) { return f.rule == "partition-ownership"; }
bool is_suspension(const Finding& f) {
  return f.rule == "coro-ref-param" || f.rule == "coro-local-escape" ||
         f.rule == "coro-stale-time";
}

/// --explain=RULE: print the registered doc paragraph, the firing example
/// and the diagnostic it produces. Returns the process exit code.
int explain_rule(const std::string& id) {
  for (const apn::lint::RuleInfo& r : apn::lint::rules()) {
    if (id != r.id) continue;
    std::printf("%s — %s\n\n%s\n\nExample (%s):\n", r.id, r.summary, r.doc,
                r.example_path);
    for (const char* p = r.example; *p != '\0';) {
      const char* nl = std::strchr(p, '\n');
      const std::size_t len = nl != nullptr ? static_cast<std::size_t>(nl - p)
                                            : std::strlen(p);
      std::printf("    %.*s\n", static_cast<int>(len), p);
      p += len + (nl != nullptr ? 1 : 0);
    }
    std::printf("\nDiagnostic:\n");
    for (const Finding& f : apn::lint::lint_source(r.example_path, r.example))
      if (f.rule == id)
        std::printf("    %s:%d: [%s] %s\n", f.path.c_str(), f.line,
                    f.rule.c_str(), f.detail.c_str());
    return 0;
  }
  std::fprintf(stderr, "apn-lint: unknown rule '%s'; registered rules:\n",
               id.c_str());
  for (const apn::lint::RuleInfo& r : apn::lint::rules())
    std::fprintf(stderr, "  %s\n", r.id);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path;
  std::string coverage_path;
  std::string ownership_path;
  std::string suspension_path;
  std::string sarif_path;
  bool update_baseline = false;
  int jobs = 0;  // 0 = hardware concurrency
  std::vector<std::string> roots;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--baseline=", 0) == 0) {
      baseline_path = arg.substr(std::string("--baseline=").size());
    } else if (arg.rfind("--coverage-baseline=", 0) == 0) {
      coverage_path = arg.substr(std::string("--coverage-baseline=").size());
    } else if (arg.rfind("--ownership-baseline=", 0) == 0) {
      ownership_path = arg.substr(std::string("--ownership-baseline=").size());
    } else if (arg.rfind("--suspension-baseline=", 0) == 0) {
      suspension_path =
          arg.substr(std::string("--suspension-baseline=").size());
    } else if (arg.rfind("--explain=", 0) == 0) {
      return explain_rule(arg.substr(std::string("--explain=").size()));
    } else if (arg.rfind("--sarif=", 0) == 0) {
      sarif_path = arg.substr(std::string("--sarif=").size());
    } else if (arg.rfind("--jobs=", 0) == 0) {
      jobs = std::atoi(arg.c_str() + std::string("--jobs=").size());
      if (jobs < 0) {
        std::fprintf(stderr, "apn-lint: bad --jobs value '%s'\n", arg.c_str());
        return 2;
      }
    } else if (arg == "--update-baseline") {
      update_baseline = true;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "apn-lint: unknown option '%s'\n", arg.c_str());
      return 2;
    } else {
      roots.push_back(arg);
    }
  }
  if (roots.empty()) {
    std::fprintf(stderr,
                 "usage: apn-lint [--baseline=FILE] [--coverage-baseline=FILE] "
                 "[--ownership-baseline=FILE] [--suspension-baseline=FILE] "
                 "[--update-baseline] [--sarif=FILE] [--jobs=N] "
                 "[--explain=RULE] <path>...\n");
    return 2;
  }
  if (update_baseline && baseline_path.empty() && coverage_path.empty() &&
      ownership_path.empty() && suspension_path.empty()) {
    std::fprintf(stderr,
                 "apn-lint: --update-baseline needs --baseline= and/or "
                 "--coverage-baseline= and/or --ownership-baseline= and/or "
                 "--suspension-baseline=\n");
    return 2;
  }

  std::vector<std::string> files;
  for (const std::string& r : roots) {
    if (!fs::exists(r)) {
      std::fprintf(stderr, "apn-lint: no such path: %s\n", r.c_str());
      return 2;
    }
    collect(r, files);
  }
  std::sort(files.begin(), files.end());

  // Two-phase project analysis (parse + harvest + rules), parallel per file.
  std::vector<Finding> findings;
  std::string bad_path;
  if (!apn::lint::run_project(files, jobs, findings, &bad_path)) {
    std::fprintf(stderr, "apn-lint: cannot read %s\n", bad_path.c_str());
    return 2;
  }

  std::vector<Finding> general, coverage, ownership, suspension;
  for (const Finding& f : findings) {
    if (is_coverage(f)) coverage.push_back(f);
    else if (is_ownership(f)) ownership.push_back(f);
    else if (is_suspension(f)) suspension.push_back(f);
    else general.push_back(f);
  }

  if (update_baseline) {
    struct Target {
      const char* what;
      const std::string* path;
      const std::vector<Finding>* set;
    };
    const Target targets[] = {
        {"baseline", &baseline_path, &general},
        {"coverage baseline", &coverage_path, &coverage},
        {"ownership baseline", &ownership_path, &ownership},
        {"suspension baseline", &suspension_path, &suspension},
    };
    for (const Target& tgt : targets) {
      if (tgt.path->empty()) continue;
      if (!write_text(*tgt.path, apn::lint::format_baseline(*tgt.set))) {
        std::fprintf(stderr, "apn-lint: cannot write %s\n", tgt.path->c_str());
        return 2;
      }
      std::fprintf(stderr, "apn-lint: %s updated (%zu findings) -> %s\n",
                   tgt.what, tgt.set->size(), tgt.path->c_str());
    }
    return 0;
  }

  apn::lint::Baseline baseline, cov_baseline, own_baseline, susp_baseline;
  if (!baseline_path.empty() && !load_baseline(baseline_path, baseline)) {
    std::fprintf(stderr, "apn-lint: cannot read baseline %s\n",
                 baseline_path.c_str());
    return 2;
  }
  if (!coverage_path.empty() && !load_baseline(coverage_path, cov_baseline)) {
    std::fprintf(stderr, "apn-lint: cannot read coverage baseline %s\n",
                 coverage_path.c_str());
    return 2;
  }
  if (!ownership_path.empty() && !load_baseline(ownership_path, own_baseline)) {
    std::fprintf(stderr, "apn-lint: cannot read ownership baseline %s\n",
                 ownership_path.c_str());
    return 2;
  }
  if (!suspension_path.empty() &&
      !load_baseline(suspension_path, susp_baseline)) {
    std::fprintf(stderr, "apn-lint: cannot read suspension baseline %s\n",
                 suspension_path.c_str());
    return 2;
  }

  std::vector<std::string> stale;
  std::vector<Finding> fresh =
      apn::lint::apply_baseline(general, baseline, &stale);
  std::vector<Finding> fresh_cov =
      apn::lint::apply_baseline(coverage, cov_baseline, &stale);
  std::vector<Finding> fresh_own =
      apn::lint::apply_baseline(ownership, own_baseline, &stale);
  std::vector<Finding> fresh_susp =
      apn::lint::apply_baseline(suspension, susp_baseline, &stale);
  fresh.insert(fresh.end(), fresh_cov.begin(), fresh_cov.end());
  fresh.insert(fresh.end(), fresh_own.begin(), fresh_own.end());
  fresh.insert(fresh.end(), fresh_susp.begin(), fresh_susp.end());
  std::sort(fresh.begin(), fresh.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.path, a.line, a.rule, a.col) <
                     std::tie(b.path, b.line, b.rule, b.col);
            });

  if (!sarif_path.empty() &&
      !write_text(sarif_path, apn::lint::format_sarif(fresh))) {
    std::fprintf(stderr, "apn-lint: cannot write %s\n", sarif_path.c_str());
    return 2;
  }

  for (const Finding& f : fresh) {
    std::fprintf(stderr, "%s:%d: [%s] %s\n", f.path.c_str(), f.line,
                 f.rule.c_str(), f.detail.c_str());
  }
  for (const std::string& s : stale) {
    std::fprintf(stderr,
                 "apn-lint: warning: baseline entry exceeds current findings "
                 "(ratchet down): %s\n",
                 s.c_str());
  }
  if (!fresh.empty()) {
    std::fprintf(stderr, "apn-lint: %zu finding(s) in %zu file(s)\n",
                 fresh.size(), files.size());
    return 1;
  }
  std::fprintf(stderr, "apn-lint: OK (%zu files)\n", files.size());
  return 0;
}
