// apn-lint CLI. See lint.hpp for the rule catalogue.
//
// Usage:
//   apn-lint [--baseline=FILE] [--update-baseline] <path>...
//
// Paths may be files or directories (directories are walked recursively for
// C/C++ sources). Exit codes: 0 clean (stale baseline entries only warn),
// 1 findings not covered by the baseline, 2 usage or I/O error.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint.hpp"

namespace fs = std::filesystem;
using apn::lint::Finding;

namespace {

bool is_source(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".cc" || ext == ".cxx" || ext == ".hpp" ||
         ext == ".h" || ext == ".hh";
}

void collect(const fs::path& root, std::vector<std::string>& files) {
  if (fs::is_directory(root)) {
    for (const auto& e : fs::recursive_directory_iterator(root)) {
      if (e.is_regular_file() && is_source(e.path()))
        files.push_back(e.path().generic_string());
    }
  } else {
    files.push_back(root.generic_string());
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path;
  bool update_baseline = false;
  std::vector<std::string> roots;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--baseline=", 0) == 0) {
      baseline_path = arg.substr(std::string("--baseline=").size());
    } else if (arg == "--update-baseline") {
      update_baseline = true;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "apn-lint: unknown option '%s'\n", arg.c_str());
      return 2;
    } else {
      roots.push_back(arg);
    }
  }
  if (roots.empty()) {
    std::fprintf(stderr,
                 "usage: apn-lint [--baseline=FILE] [--update-baseline] "
                 "<path>...\n");
    return 2;
  }
  if (update_baseline && baseline_path.empty()) {
    std::fprintf(stderr, "apn-lint: --update-baseline needs --baseline=\n");
    return 2;
  }

  std::vector<std::string> files;
  for (const std::string& r : roots) {
    if (!fs::exists(r)) {
      std::fprintf(stderr, "apn-lint: no such path: %s\n", r.c_str());
      return 2;
    }
    collect(r, files);
  }
  std::sort(files.begin(), files.end());

  std::vector<Finding> findings;
  for (const std::string& f : files) {
    if (!apn::lint::lint_file(f, findings)) {
      std::fprintf(stderr, "apn-lint: cannot read %s\n", f.c_str());
      return 2;
    }
  }

  if (update_baseline) {
    std::ofstream out(baseline_path);
    if (!out) {
      std::fprintf(stderr, "apn-lint: cannot write %s\n",
                   baseline_path.c_str());
      return 2;
    }
    out << apn::lint::format_baseline(findings);
    std::fprintf(stderr, "apn-lint: baseline updated (%zu findings) -> %s\n",
                 findings.size(), baseline_path.c_str());
    return 0;
  }

  apn::lint::Baseline baseline;
  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path);
    if (!in) {
      std::fprintf(stderr, "apn-lint: cannot read baseline %s\n",
                   baseline_path.c_str());
      return 2;
    }
    std::stringstream ss;
    ss << in.rdbuf();
    baseline = apn::lint::parse_baseline(ss.str());
  }

  std::vector<std::string> stale;
  std::vector<Finding> fresh =
      apn::lint::apply_baseline(findings, baseline, &stale);

  for (const Finding& f : fresh) {
    std::fprintf(stderr, "%s:%d: [%s] %s\n", f.path.c_str(), f.line,
                 f.rule.c_str(), f.detail.c_str());
  }
  for (const std::string& s : stale) {
    std::fprintf(stderr,
                 "apn-lint: warning: baseline entry exceeds current findings "
                 "(ratchet down): %s\n",
                 s.c_str());
  }
  if (!fresh.empty()) {
    std::fprintf(stderr, "apn-lint: %zu finding(s) in %zu file(s)\n",
                 fresh.size(), files.size());
    return 1;
  }
  std::fprintf(stderr, "apn-lint: OK (%zu files)\n", files.size());
  return 0;
}
