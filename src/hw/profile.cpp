#include "hw/profile.hpp"

#include <map>
#include <stdexcept>
#include <utility>

namespace apn::hw {

namespace {

/// The paper's Cluster I: defaults of every parameter struct, verbatim.
/// tests/test_hw_profile.cpp pins this equivalence field by field, and
/// tests/test_determinism.cpp pins the timing goldens it produces.
HwProfile make_apenet_2013() {
  HwProfile p;
  p.name = "apenet_2013";
  p.display_name = "APEnet+ 2013 (Cluster I: Fermi, PCIe Gen2, 45 nm card)";
  p.provenance = "IPPS 2013 paper (arXiv:1307.8276) Table I / Figs. 3-10";
  p.apenet = core::ApenetParams{};
  p.gpu = gpu::fermi_c2050();
  p.apenet_slot = pcie::gen2_x8();
  p.ib_slot = pcie::gen2_x4();  // motherboard constraint (paper §V)
  p.gpu_slot = pcie::gen2_x16();
  return p;
}

/// The 28 nm APEnet+ re-implementation (arXiv:1311.1741): the RX
/// bottleneck moves out of firmware — V2P translation becomes a hardware
/// pipeline stage and BUF_LIST lookup is CAM-assisted — and the torus
/// transceivers run faster. Host interface stays PCIe Gen2 x8; GPUs move
/// to Kepler K20 (paper Table I already measured K20 at 1.6 GB/s P2P).
HwProfile make_apenet_28nm() {
  HwProfile p = make_apenet_2013();
  p.name = "apenet_28nm";
  p.display_name = "APEnet+ 28 nm (hardware V2P, Kepler K20, PCIe Gen2)";
  p.provenance = "28 nm APEnet+ paper (arXiv:1311.1741); K20 from Table I";
  p.apenet.rx_hw_v2p = true;
  p.apenet.nios.rx_hw_v2p_lookup = units::ns(120);
  p.apenet.nios.rx_buflist_base = units::us(0.35);
  p.apenet.nios.rx_buflist_per_entry = units::ns(10);
  p.apenet.torus_link_gbps = 34.0;
  p.gpu = gpu::kepler_k20();
  return p;
}

/// Projected PCIe Gen3-class host (arXiv:2201.01088): Gen3 x8 card slot,
/// Gen3 x16 GPU slot, 56 Gbps torus links, K40-class GPU, and a host-read
/// window widened to keep the faster link full. Every number here is a
/// projection, not a measurement — see docs/HARDWARE.md.
HwProfile make_gen3() {
  HwProfile p = make_apenet_28nm();
  p.name = "gen3";
  p.display_name = "Projected Gen3 host (PCIe Gen3, 56 Gbps torus, K40)";
  p.provenance = "projection per arXiv:2201.01088 (no measured testbed)";
  p.apenet.pcie = pcie::gen3_x8();
  p.apenet.torus_link_gbps = 56.0;
  p.apenet.host_read_window = 7680;
  p.gpu = gpu::kepler_k40();
  p.apenet_slot = pcie::gen3_x8();
  p.ib_slot = pcie::gen3_x8();
  p.gpu_slot = pcie::gen3_x16();
  return p;
}

/// Registry keyed by profile name. A function-local static keeps
/// initialization thread-safe and the HwProfile addresses stable for the
/// lifetime of the process (active() hands out pointers into it).
const std::map<std::string, HwProfile>& registry() {
  static const std::map<std::string, HwProfile> r = [] {
    std::map<std::string, HwProfile> m;
    for (HwProfile p : {make_apenet_2013(), make_apenet_28nm(), make_gen3()})
      m.emplace(p.name, std::move(p));
    return m;
  }();
  return r;
}

/// Process-wide selection (select()); defaults to apenet_2013.
const HwProfile*& global_selection() {
  static const HwProfile* p = &registry().at("apenet_2013");
  return p;
}

/// Thread-local override stack top (ScopedProfile).
const HwProfile*& tls_override() {
  thread_local const HwProfile* p = nullptr;
  return p;
}

}  // namespace

std::vector<std::string> names() {
  std::vector<std::string> out;
  out.reserve(registry().size());
  for (const auto& [name, _] : registry()) out.push_back(name);
  return out;
}

const HwProfile& profile(const std::string& name) {
  const auto& r = registry();
  auto it = r.find(name);
  if (it == r.end()) {
    std::string msg = "unknown hardware profile '" + name +
                      "'; registered profiles:";
    for (const auto& [n, _] : r) msg += " " + n;
    throw std::invalid_argument(msg);
  }
  return it->second;
}

void select(const std::string& name) { global_selection() = &profile(name); }

const HwProfile& active() {
  if (const HwProfile* p = tls_override()) return *p;
  return *global_selection();
}

ScopedProfile::ScopedProfile(const HwProfile& p) : prev_(tls_override()) {
  tls_override() = &p;
}

ScopedProfile::ScopedProfile(const std::string& name)
    : ScopedProfile(profile(name)) {}

ScopedProfile::~ScopedProfile() { tls_override() = prev_; }

}  // namespace apn::hw
