// Versioned hardware profiles: "what machine are we simulating" as a
// first-class, named axis.
//
// A HwProfile bundles every calibration constant of the model — the
// APEnet+ card parameters (core::ApenetParams), the GPU architecture
// (gpu::GpuArch) and the PCIe slot wiring (pcie::LinkParams) — under a
// registry key, so a bench or test selects a complete, internally
// consistent machine with one name instead of mutating scattered structs.
//
// Three profiles ship (see docs/HARDWARE.md for the full parameter tables
// and the provenance of every number):
//
//  * apenet_2013  — the paper's Cluster I (Fermi C2050, PCIe Gen2, 45 nm
//    APEnet+ card, Nios II firmware RX path). Field-for-field identical to
//    the default-constructed parameter structs, so the Fig. 3/6/8 goldens
//    and state hashes pinned by tests/test_determinism.cpp are
//    byte-identical under this profile. This is the default.
//  * apenet_28nm  — the 28 nm APEnet+ follow-up (arXiv:1311.1741):
//    hardware V2P replaces the Nios rx_v2p table walk, BUF_LIST lookup is
//    CAM-assisted, torus links run faster, Kepler K20 GPUs.
//  * gen3         — a *projected* PCIe Gen3-class host (arXiv:2201.01088):
//    Gen3 x8 card slot, Gen3 x16 GPU slot, faster torus links, a K40-class
//    GPU. Projection, not measurement — see the provenance column in
//    docs/HARDWARE.md.
//
// Selection: benches pass `--hw-profile=<name>` (or APN_HW_PROFILE); the
// bench::Runner calls select(), and model construction reads active().
// ScopedProfile installs a thread-local override so one process can build
// clusters from several profiles concurrently (bench_ext_generations runs
// one profile per runner point).
#pragma once

#include <string>
#include <vector>

#include "core/params.hpp"
#include "gpu/arch.hpp"
#include "pcie/link.hpp"

namespace apn::hw {

struct HwProfile {
  std::string name;          ///< registry key, e.g. "apenet_2013"
  std::string display_name;  ///< human-oriented title for tables/headers
  std::string provenance;    ///< one-line source note (paper / projection)

  core::ApenetParams apenet;
  gpu::GpuArch gpu;

  // PCIe slot wiring of a Cluster I-style node (see cluster::NodeConfig).
  pcie::LinkParams apenet_slot;
  pcie::LinkParams ib_slot;  ///< the HCA slot (x4 on Cluster I motherboards)
  pcie::LinkParams gpu_slot;
};

/// Registered profile names, sorted.
std::vector<std::string> names();

/// Look up a profile; throws std::invalid_argument naming the unknown
/// profile and listing every registered name.
const HwProfile& profile(const std::string& name);

/// Set the process-wide active profile (throws like profile()).
void select(const std::string& name);

/// The active profile: the thread-local override installed by a live
/// ScopedProfile if any, else the process-wide selection (default
/// "apenet_2013").
const HwProfile& active();

/// Convenience: the active profile's card parameters (the common seed for
/// a bench's ApenetParams mutations).
inline core::ApenetParams params() { return active().apenet; }

/// RAII thread-local profile override. Points running on exp::ParallelRunner
/// pool threads use this to build per-profile clusters without touching the
/// process-wide selection.
class ScopedProfile {
 public:
  explicit ScopedProfile(const HwProfile& p);
  explicit ScopedProfile(const std::string& name);
  ~ScopedProfile();

  ScopedProfile(const ScopedProfile&) = delete;
  ScopedProfile& operator=(const ScopedProfile&) = delete;

 private:
  const HwProfile* prev_;
};

}  // namespace apn::hw
