// minimpi: a small MPI-like message-passing layer over the InfiniBand model,
// with MVAPICH2-style CUDA-awareness (§II of the paper).
//
// Point-to-point semantics:
//  * eager (<= eager_threshold): payload travels inline with a header and
//    is copied into the matched user buffer at the receiver;
//  * rendezvous: RTS -> (receiver matches) CTS carrying a target address ->
//    sender RDMA-writes the data (zero-copy into host user buffers, or into
//    a library bounce buffer when the user buffer is GPU memory).
//
// CUDA-aware paths, mirroring what the paper describes for MVAPICH2:
//  * staged (small/medium messages): a synchronous cudaMemcpy to/from a
//    host vbuf brackets the host transfer — the ~2x 5-10 us penalty that
//    makes IB G-G latency ~17 us;
//  * pipelined (>= gpu_pipeline_threshold): the message moves in chunks,
//    cudaMemcpyAsync and wire transfers overlapping, recovering most of
//    the bandwidth for large messages (Fig. 7's IB curve) — at the price
//    of internal stream synchronizations that can break application-level
//    overlap (the paper's §II criticism).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "ib/hca.hpp"
#include "sim/coro.hpp"
#include "sim/sync.hpp"
#include "simcuda/runtime.hpp"

namespace apn::mpi {

struct MpiParams {
  std::uint32_t eager_threshold = 8 * 1024;
  std::uint32_t gpu_pipeline_threshold = 32 * 1024;
  std::uint32_t gpu_pipeline_chunk = 256 * 1024;
  Time call_overhead = units::us(0.5);   ///< per-MPI-call software cost
  Time gpu_copy_extra = units::us(1.8);  ///< MVAPICH-internal sync per copy
  Rate eager_copy_rate = units::GBps(6);  ///< vbuf <-> user host buffer
  /// Staged copies are performed in blocking fragments of this size
  /// (0 = one copy for the whole message). 2012-era OpenMPI moved device
  /// buffers through small blocking fragments, capping its effective
  /// GPU-to-GPU bandwidth around 1 GB/s.
  std::uint32_t staged_fragment_bytes = 0;
};

/// The MVAPICH2-1.9-style defaults (eager + staged + pipelined large).
inline MpiParams mvapich2_params() { return MpiParams{}; }

/// 2012-era OpenMPI CUDA support: no large-message pipeline, small
/// blocking staging fragments (the paper's "OMPI" reference columns).
inline MpiParams openmpi2012_params() {
  MpiParams p;
  p.gpu_pipeline_threshold = 0xFFFFFFFFu;
  p.staged_fragment_bytes = 12 * 1024;
  return p;
}

using Signal = sim::Future<bool>;

class Rank;

/// One MPI job: the switch plus all rank endpoints.
class World {
 public:
  World(sim::Simulator& sim, MpiParams params = {})
      : sim_(&sim), params_(params), switch_(sim) {}

  sim::Simulator& simulator() { return *sim_; }
  const MpiParams& params() const { return params_; }
  ib::IbSwitch& fabric_switch() { return switch_; }

  void add_rank(Rank& r);
  Rank& rank(int i) { return *ranks_.at(static_cast<std::size_t>(i)); }
  int size() const { return static_cast<int>(ranks_.size()); }

 private:
  sim::Simulator* sim_;
  MpiParams params_;
  ib::IbSwitch switch_;
  std::vector<Rank*> ranks_;
};

class Rank {
 public:
  Rank(World& world, ib::Hca& hca, pcie::HostMemory& hostmem,
       cuda::Runtime* cuda_runtime);

  int rank() const { return hca_->rank(); }
  World& world() { return *world_; }

  /// Send [addr, +n): host pointer or CUDA UVA device pointer.
  /// The returned Signal completes when the send buffer is reusable.
  Signal send(int dst, std::uint64_t addr, std::uint64_t n, int tag);

  /// Receive n bytes into [addr, +n) from (src, tag). Completes when the
  /// data is fully in the user buffer (including the GPU copy for device
  /// destinations).
  Signal recv(int src, std::uint64_t addr, std::uint64_t n, int tag);

  /// Convenience collectives (linear algorithms, rank 0 as root).
  Signal barrier();
  Signal allreduce_sum(std::uint64_t* value);

 private:
  friend class World;
  enum class CtrlKind : std::uint32_t {
    kEager = 1,
    kRts = 2,
    kCts = 3,
    kBarrier = 4,
    kReduce = 5,
  };
  struct CtrlHeader {
    CtrlKind kind;
    std::uint32_t tag;
    std::uint32_t bytes;
    std::uint32_t chunks;   ///< rendezvous: number of RDMA chunks
    std::uint64_t rndv_id;
    std::uint64_t aux;      ///< CTS: target address; reduce: value
    std::int32_t src_rank;
    std::int32_t pad;
  };

  struct PendingRecv {
    int src;
    int tag;
    std::uint64_t addr;
    std::uint64_t n;
    Signal done;
  };
  struct UnexpectedMsg {
    CtrlHeader hdr;
    std::vector<std::uint8_t> data;  ///< eager payload
  };
  struct RndvRecv {
    std::uint64_t user_addr = 0;
    bool user_is_gpu = false;
    std::uint64_t n = 0;
    std::uint32_t chunks = 0;
    std::uint32_t chunks_arrived = 0;
    std::vector<std::uint8_t> bounce;  ///< GPU destination bounce buffer
    std::uint32_t h2d_inflight = 0;
    bool all_arrived = false;
    Signal done;
    RndvRecv(sim::Simulator& s) : done(s) {}
  };
  struct RndvSend {
    int dst = 0;
    std::uint64_t addr = 0;
    std::uint64_t n = 0;
    bool is_gpu = false;
    Signal done;
    RndvSend(sim::Simulator& s) : done(s) {}
  };

  sim::Coro progress_loop();
  /// Serialized cost of one staged (synchronous) GPU<->vbuf copy. All
  /// staged copies of a rank queue on copy_serializer_: the MPI library's
  /// host thread performs cudaMemcpy calls one at a time, which is why
  /// many concurrent small device-buffer messages pay the full per-copy
  /// latency back to back.
  Time staged_copy_cost(std::uint64_t dst, std::uint64_t src,
                        std::uint64_t n) const;
  /// Perform a staged copy in blocking fragments; opens `done` at the end.
  sim::Coro staged_copy(std::uint64_t dst, std::uint64_t src,
                        std::uint64_t n, std::shared_ptr<sim::Gate> done);
  sim::Coro do_send(int dst, std::uint64_t addr, std::uint64_t n, int tag,
                    Signal done);
  sim::Coro run_rndv_send(CtrlHeader cts);
  sim::Coro finish_eager_recv(PendingRecv pr, std::vector<std::uint8_t> data);
  void match_or_store(CtrlHeader hdr, std::vector<std::uint8_t> data);
  void start_rndv_recv(const CtrlHeader& rts, const PendingRecv& pr);
  void send_ctrl(int dst, const CtrlHeader& hdr,
                 const std::vector<std::uint8_t>& payload = {});
  bool is_gpu_ptr(std::uint64_t addr) const;

  World* world_;
  ib::Hca* hca_;
  pcie::HostMemory* hostmem_;
  cuda::Runtime* cuda_;
  std::unique_ptr<cuda::Stream> stream_;  ///< pipeline copies
  sim::Simulator* sim_;
  std::unique_ptr<sim::Resource> copy_serializer_;  ///< staged-copy host thread

  std::deque<PendingRecv> posted_;
  std::deque<UnexpectedMsg> unexpected_;
  std::map<std::uint64_t, std::unique_ptr<RndvRecv>> rndv_recv_;
  std::map<std::uint64_t, std::unique_ptr<RndvSend>> rndv_send_;
  std::uint64_t next_rndv_ = 1;

  // Collective helper state.
  int barrier_hits_ = 0;
  std::vector<Signal> barrier_waiters_;
  std::uint64_t reduce_accum_ = 0;
  int reduce_hits_ = 0;
  std::vector<std::pair<std::uint64_t*, Signal>> reduce_waiters_;
};

}  // namespace apn::mpi
