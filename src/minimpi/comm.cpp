#include "minimpi/comm.hpp"

#include <algorithm>
#include <cstring>

#include "sim/resource.hpp"

namespace apn::mpi {

void World::add_rank(Rank& r) {
  ranks_.push_back(&r);
  switch_.connect(*r.hca_);
}

Rank::Rank(World& world, ib::Hca& hca, pcie::HostMemory& hostmem,
           cuda::Runtime* cuda_runtime)
    : world_(&world),
      hca_(&hca),
      hostmem_(&hostmem),
      cuda_(cuda_runtime),
      sim_(&world.simulator()) {
  copy_serializer_ = std::make_unique<sim::Resource>(*sim_);
  if (cuda_ != nullptr && cuda_->device_count() > 0)
    stream_ = std::make_unique<cuda::Stream>(*cuda_, 0);
  world.add_rank(*this);
  progress_loop();
}

bool Rank::is_gpu_ptr(std::uint64_t addr) const {
  return cuda_ != nullptr && cuda_->pointer_info(addr).is_device;
}

Time Rank::staged_copy_cost(std::uint64_t dst, std::uint64_t src,
                            std::uint64_t n) const {
  cuda::MemcpyKind kind = cuda_->classify(dst, src);
  cuda::PointerInfo di = cuda_->pointer_info(dst);
  cuda::PointerInfo si = cuda_->pointer_info(src);
  int dev = di.is_device ? di.device : si.device;
  Time overhead = kind == cuda::MemcpyKind::kDeviceToHost
                      ? cuda_->params().d2h_sync_overhead
                      : cuda_->params().h2d_sync_overhead;
  return world_->params().gpu_copy_extra + overhead +
         cuda_->transfer_time(kind, dev, Bytes(n));
}

sim::Coro Rank::staged_copy(std::uint64_t dst, std::uint64_t src,
                            std::uint64_t n,
                            std::shared_ptr<sim::Gate> done) {
  std::uint64_t frag = world_->params().staged_fragment_bytes;
  if (frag == 0) frag = n;
  for (std::uint64_t off = 0; off < n; off += frag) {
    const std::uint64_t len = std::min(frag, n - off);
    co_await copy_serializer_->use(staged_copy_cost(dst + off, src + off, len));
    cuda_->move_bytes(dst + off, src + off, len);
  }
  done->open();
}

void Rank::send_ctrl(int dst, const CtrlHeader& hdr,
                     const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> buf(sizeof(CtrlHeader) + payload.size());
  std::memcpy(buf.data(), &hdr, sizeof(CtrlHeader));
  if (!payload.empty())
    std::memcpy(buf.data() + sizeof(CtrlHeader), payload.data(),
                payload.size());
  hca_->post_send_inline(dst, std::move(buf), 0);
}

Signal Rank::send(int dst, std::uint64_t addr, std::uint64_t n, int tag) {
  Signal done(*sim_);
  do_send(dst, addr, n, tag, done);
  return done;
}

sim::Coro Rank::do_send(int dst, std::uint64_t addr, std::uint64_t n,
                        int tag, Signal done) {
  const MpiParams& p = world_->params();
  co_await sim::delay(*sim_, p.call_overhead);
  const bool gpu_src = is_gpu_ptr(addr);

  if (n <= p.eager_threshold) {
    // ---- eager path -----------------------------------------------------
    std::vector<std::uint8_t> payload(n);
    if (gpu_src) {
      // Staged: synchronous cudaMemcpy D2H into the vbuf, serialized with
      // every other staged copy this rank performs.
      std::uint64_t vbuf = reinterpret_cast<std::uint64_t>(payload.data());
      auto g = std::make_shared<sim::Gate>(*sim_);
      staged_copy(vbuf, addr, n, g);
      co_await g->wait();
    } else {
      // Host copy into the vbuf.
      co_await sim::delay(*sim_,
                          units::transfer_time(Bytes(n), p.eager_copy_rate));
      std::memcpy(payload.data(), reinterpret_cast<const void*>(addr), n);
    }
    CtrlHeader hdr{};
    hdr.kind = CtrlKind::kEager;
    hdr.tag = static_cast<std::uint32_t>(tag);
    hdr.bytes = static_cast<std::uint32_t>(n);
    hdr.src_rank = rank();
    send_ctrl(dst, hdr, payload);
    done.set(true);  // eager: buffer reusable immediately after the copy
    co_return;
  }

  // ---- rendezvous -----------------------------------------------------------
  const bool pipelined = gpu_src && n >= p.gpu_pipeline_threshold;
  const std::uint32_t chunks =
      pipelined ? static_cast<std::uint32_t>(
                      (n + p.gpu_pipeline_chunk - 1) / p.gpu_pipeline_chunk)
                : 1;
  std::uint64_t rndv_id =
      (static_cast<std::uint64_t>(rank()) << 40) | next_rndv_++;
  auto st = std::make_unique<RndvSend>(*sim_);
  st->dst = dst;
  st->addr = addr;
  st->n = n;
  st->is_gpu = gpu_src;
  Signal send_done = st->done;
  rndv_send_[rndv_id] = std::move(st);

  CtrlHeader rts{};
  rts.kind = CtrlKind::kRts;
  rts.tag = static_cast<std::uint32_t>(tag);
  rts.bytes = static_cast<std::uint32_t>(n);
  rts.chunks = chunks;
  rts.rndv_id = rndv_id;
  rts.src_rank = rank();
  send_ctrl(dst, rts);

  bool ok = co_await send_done;
  done.set(ok);
}

sim::Coro Rank::run_rndv_send(CtrlHeader cts) {
  auto it = rndv_send_.find(cts.rndv_id);
  if (it == rndv_send_.end()) co_return;
  RndvSend& st = *it->second;
  const MpiParams& p = world_->params();
  const std::uint64_t target = cts.aux;

  if (!st.is_gpu) {
    // Zero-copy RDMA write from the (pinned) host user buffer.
    if (!hostmem_->is_pinned(st.addr, st.n))
      hostmem_->pin(reinterpret_cast<void*>(st.addr), st.n);
    Signal done = st.done;
    hca_->post_send(st.dst, st.addr, static_cast<std::uint32_t>(st.n),
                    target, cts.rndv_id, true,
                    [done]() mutable { done.set(true); });
    rndv_send_.erase(it);
    co_return;
  }

  if (st.n < p.gpu_pipeline_threshold) {
    // Staged: one synchronous D2H copy, then one RDMA write.
    auto bounce = std::make_shared<std::vector<std::uint8_t>>(st.n);
    hostmem_->pin(bounce->data(), bounce->size());
    std::uint64_t vbuf = reinterpret_cast<std::uint64_t>(bounce->data());
    auto g = std::make_shared<sim::Gate>(*sim_);
    staged_copy(vbuf, st.addr, st.n, g);
    co_await g->wait();
    Signal done = st.done;
    pcie::HostMemory* hm = hostmem_;
    hca_->post_send(st.dst, reinterpret_cast<std::uint64_t>(bounce->data()),
                    static_cast<std::uint32_t>(st.n), target, cts.rndv_id,
                    true, [done, bounce, hm]() mutable {
                      hm->unpin(bounce->data());
                      done.set(true);
                    });
    rndv_send_.erase(it);
    co_return;
  }

  // Pipelined: async D2H chunk copies overlapping the RDMA writes
  // (the MVAPICH2 large-message protocol referenced by the paper).
  auto bounce = std::make_shared<std::vector<std::uint8_t>>(st.n);
  hostmem_->pin(bounce->data(), bounce->size());
  const std::uint64_t chunk_size = p.gpu_pipeline_chunk;
  const std::uint32_t chunks = static_cast<std::uint32_t>(
      (st.n + chunk_size - 1) / chunk_size);
  auto sent = std::make_shared<std::uint32_t>(0);
  Signal done = st.done;
  const int dst = st.dst;
  const std::uint64_t src_addr = st.addr;
  const std::uint64_t total = st.n;
  const std::uint64_t rid = cts.rndv_id;
  pcie::HostMemory* hm = hostmem_;

  for (std::uint32_t c = 0; c < chunks; ++c) {
    const std::uint64_t off = static_cast<std::uint64_t>(c) * chunk_size;
    const std::uint64_t len = std::min(chunk_size, total - off);
    // Async D2H of this chunk; the stream serializes the copies while the
    // wire ships previously-copied chunks.
    co_await stream_->memcpy_async(
        reinterpret_cast<std::uint64_t>(bounce->data() + off),
        src_addr + off, len);
    hca_->post_send(dst,
                    reinterpret_cast<std::uint64_t>(bounce->data() + off),
                    static_cast<std::uint32_t>(len), target + off, rid, true,
                    [sent, chunks, done, bounce, hm]() mutable {
                      if (++*sent == chunks) {
                        hm->unpin(bounce->data());
                        done.set(true);
                      }
                    });
  }
  rndv_send_.erase(it);
}

Signal Rank::recv(int src, std::uint64_t addr, std::uint64_t n, int tag) {
  Signal done(*sim_);
  PendingRecv pr{src, tag, addr, n, done};
  // Check the unexpected queue first.
  for (auto it = unexpected_.begin(); it != unexpected_.end(); ++it) {
    if (it->hdr.src_rank == src &&
        it->hdr.tag == static_cast<std::uint32_t>(tag)) {
      UnexpectedMsg msg = std::move(*it);
      unexpected_.erase(it);
      if (msg.hdr.kind == CtrlKind::kEager) {
        finish_eager_recv(std::move(pr), std::move(msg.data));
      } else {
        start_rndv_recv(msg.hdr, pr);
      }
      return done;
    }
  }
  posted_.push_back(std::move(pr));
  return done;
}

sim::Coro Rank::finish_eager_recv(PendingRecv pr,
                                  std::vector<std::uint8_t> data) {
  const MpiParams& p = world_->params();
  const std::uint64_t n = std::min<std::uint64_t>(pr.n, data.size());
  if (is_gpu_ptr(pr.addr)) {
    std::uint64_t vbuf = reinterpret_cast<std::uint64_t>(data.data());
    auto g = std::make_shared<sim::Gate>(*sim_);
    staged_copy(pr.addr, vbuf, n, g);
    co_await g->wait();
  } else {
    co_await sim::delay(*sim_,
                        units::transfer_time(Bytes(n), p.eager_copy_rate));
    if (n > 0)
      std::memcpy(reinterpret_cast<void*>(pr.addr), data.data(), n);
  }
  pr.done.set(true);
}

void Rank::start_rndv_recv(const CtrlHeader& rts, const PendingRecv& pr) {
  auto st = std::make_unique<RndvRecv>(*sim_);
  st->user_addr = pr.addr;
  st->user_is_gpu = is_gpu_ptr(pr.addr);
  st->n = rts.bytes;
  st->chunks = std::max<std::uint32_t>(rts.chunks, 1);
  st->done = pr.done;

  std::uint64_t target;
  if (st->user_is_gpu) {
    st->bounce.resize(st->n);
    hostmem_->pin(st->bounce.data(), st->bounce.size());
    target = reinterpret_cast<std::uint64_t>(st->bounce.data());
  } else {
    if (!hostmem_->is_pinned(pr.addr, st->n))
      hostmem_->pin(reinterpret_cast<void*>(pr.addr), st->n);
    target = pr.addr;
  }

  CtrlHeader cts{};
  cts.kind = CtrlKind::kCts;
  cts.tag = rts.tag;
  cts.bytes = rts.bytes;
  cts.chunks = st->chunks;
  cts.rndv_id = rts.rndv_id;
  cts.aux = target;
  cts.src_rank = rank();
  rndv_recv_[rts.rndv_id] = std::move(st);
  send_ctrl(rts.src_rank, cts);
}

void Rank::match_or_store(CtrlHeader hdr, std::vector<std::uint8_t> data) {
  for (auto it = posted_.begin(); it != posted_.end(); ++it) {
    if (it->src == hdr.src_rank &&
        static_cast<std::uint32_t>(it->tag) == hdr.tag) {
      PendingRecv pr = std::move(*it);
      posted_.erase(it);
      if (hdr.kind == CtrlKind::kEager) {
        finish_eager_recv(std::move(pr), std::move(data));
      } else {
        start_rndv_recv(hdr, pr);
      }
      return;
    }
  }
  unexpected_.push_back(UnexpectedMsg{hdr, std::move(data)});
}

sim::Coro Rank::progress_loop() {
  const MpiParams& p = world_->params();
  for (;;) {
    ib::IbRecvEvent ev = co_await hca_->recv_events().pop();

    if (ev.remote_addr != 0) {
      // Rendezvous chunk landed.
      auto it = rndv_recv_.find(ev.wr_id);
      if (it == rndv_recv_.end()) continue;
      RndvRecv& st = *it->second;
      const std::uint32_t idx = st.chunks_arrived++;
      if (st.user_is_gpu) {
        const std::uint64_t chunk_size =
            st.chunks > 1 ? p.gpu_pipeline_chunk : st.n;
        const std::uint64_t off =
            static_cast<std::uint64_t>(idx) * chunk_size;
        const std::uint64_t len = std::min(chunk_size, st.n - off);
        ++st.h2d_inflight;
        cuda::Done d = stream_->memcpy_async(
            st.user_addr + off,
            reinterpret_cast<std::uint64_t>(st.bounce.data() + off), len);
        std::uint64_t id = ev.wr_id;
        [](Rank* self, cuda::Done d, std::uint64_t id) -> sim::Coro {
          co_await d;
          auto it2 = self->rndv_recv_.find(id);
          if (it2 == self->rndv_recv_.end()) co_return;
          RndvRecv& s = *it2->second;
          --s.h2d_inflight;
          if (s.all_arrived && s.h2d_inflight == 0) {
            self->hostmem_->unpin(s.bounce.data());
            s.done.set(true);
            self->rndv_recv_.erase(it2);
          }
        }(this, d, id);
      }
      if (st.chunks_arrived >= st.chunks) {
        st.all_arrived = true;
        if (!st.user_is_gpu) {
          st.done.set(true);
          rndv_recv_.erase(it);
        } else if (st.h2d_inflight == 0) {
          hostmem_->unpin(st.bounce.data());
          st.done.set(true);
          rndv_recv_.erase(it);
        }
      }
      continue;
    }

    // Control / eager message.
    if (ev.inline_data.size() < sizeof(CtrlHeader)) continue;
    CtrlHeader hdr;
    std::memcpy(&hdr, ev.inline_data.data(), sizeof(CtrlHeader));
    std::vector<std::uint8_t> data(ev.inline_data.begin() +
                                       sizeof(CtrlHeader),
                                   ev.inline_data.end());
    switch (hdr.kind) {
      case CtrlKind::kEager:
      case CtrlKind::kRts:
        match_or_store(hdr, std::move(data));
        break;
      case CtrlKind::kCts:
        run_rndv_send(hdr);
        break;
      case CtrlKind::kBarrier: {
        if (rank() == 0) {
          if (++barrier_hits_ == world_->size()) {
            barrier_hits_ = 0;
            CtrlHeader rel{};
            rel.kind = CtrlKind::kBarrier;
            rel.src_rank = 0;
            for (int r = 1; r < world_->size(); ++r) send_ctrl(r, rel);
            for (auto& w : barrier_waiters_) w.set(true);
            barrier_waiters_.clear();
          }
        } else {
          for (auto& w : barrier_waiters_) w.set(true);
          barrier_waiters_.clear();
        }
        break;
      }
      case CtrlKind::kReduce: {
        if (rank() == 0) {
          reduce_accum_ += hdr.aux;
          if (++reduce_hits_ == world_->size()) {
            reduce_hits_ = 0;
            CtrlHeader res{};
            res.kind = CtrlKind::kReduce;
            res.aux = reduce_accum_;
            res.src_rank = 0;
            for (int r = 1; r < world_->size(); ++r) send_ctrl(r, res);
            for (auto& [ptr, sig] : reduce_waiters_) {
              *ptr = reduce_accum_;
              sig.set(true);
            }
            reduce_waiters_.clear();
            reduce_accum_ = 0;
          }
        } else {
          for (auto& [ptr, sig] : reduce_waiters_) {
            *ptr = hdr.aux;
            sig.set(true);
          }
          reduce_waiters_.clear();
        }
        break;
      }
    }
  }
}

Signal Rank::barrier() {
  Signal done(*sim_);
  barrier_waiters_.push_back(done);
  CtrlHeader hdr{};
  hdr.kind = CtrlKind::kBarrier;
  hdr.src_rank = rank();
  if (rank() == 0) {
    // Root's own contribution is counted locally.
    if (++barrier_hits_ == world_->size()) {
      barrier_hits_ = 0;
      CtrlHeader rel{};
      rel.kind = CtrlKind::kBarrier;
      rel.src_rank = 0;
      for (int r = 1; r < world_->size(); ++r) send_ctrl(r, rel);
      for (auto& w : barrier_waiters_) w.set(true);
      barrier_waiters_.clear();
    }
  } else {
    send_ctrl(0, hdr);
  }
  return done;
}

Signal Rank::allreduce_sum(std::uint64_t* value) {
  Signal done(*sim_);
  reduce_waiters_.emplace_back(value, done);
  if (rank() == 0) {
    reduce_accum_ += *value;
    if (++reduce_hits_ == world_->size()) {
      reduce_hits_ = 0;
      CtrlHeader res{};
      res.kind = CtrlKind::kReduce;
      res.aux = reduce_accum_;
      res.src_rank = 0;
      for (int r = 1; r < world_->size(); ++r) send_ctrl(r, res);
      for (auto& [ptr, sig] : reduce_waiters_) {
        *ptr = reduce_accum_;
        sig.set(true);
      }
      reduce_waiters_.clear();
      reduce_accum_ = 0;
    }
  } else {
    CtrlHeader hdr{};
    hdr.kind = CtrlKind::kReduce;
    hdr.aux = *value;
    hdr.src_rank = rank();
    send_ctrl(0, hdr);
  }
  return done;
}

}  // namespace apn::mpi
