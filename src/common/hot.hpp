// APN_HOT: marks a function as being on the per-event hot path.
//
// Two consumers: the compiler (branch/layout hints via the `hot`
// attribute) and tools/apn-lint, whose `hot-path-alloc` rule rejects heap
// allocation (`new`, malloc-family, make_unique/make_shared) inside any
// function carrying the marker. The event engine's zero-allocation
// guarantee (docs/ARCHITECTURE.md) is therefore machine-checked: adding
// an allocation to a marked function fails the lint job, and deliberate
// cold fallbacks carry an explicit `// apn-lint: allow(hot-path-alloc)`.
#pragma once

#if defined(__GNUC__) || defined(__clang__)
#define APN_HOT __attribute__((hot))
#else
#define APN_HOT
#endif
