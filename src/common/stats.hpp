// Small statistics helpers used by benchmark harnesses and model validation:
// streaming mean/variance (Welford), min/max, and percentile extraction.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

namespace apn {

/// Streaming mean / variance / extrema accumulator (Welford's algorithm).
class OnlineStats {
 public:
  void add(double x) {
    ++n_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double sum() const { return sum_; }
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }
  double min() const {
    return n_ ? min_ : std::numeric_limits<double>::quiet_NaN();
  }
  double max() const {
    return n_ ? max_ : std::numeric_limits<double>::quiet_NaN();
  }

  void reset() { *this = OnlineStats{}; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Sample container with percentile queries (copies + sorts on demand).
class Samples {
 public:
  void add(double x) { values_.push_back(x); }
  std::size_t count() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  double mean() const {
    if (values_.empty()) return 0.0;
    double s = 0.0;
    for (double v : values_) s += v;
    return s / static_cast<double>(values_.size());
  }

  double min() const {
    return values_.empty() ? 0.0
                           : *std::min_element(values_.begin(), values_.end());
  }
  double max() const {
    return values_.empty() ? 0.0
                           : *std::max_element(values_.begin(), values_.end());
  }

  /// Percentile in [0,100], nearest-rank with linear interpolation.
  double percentile(double p) const {
    if (values_.empty()) return 0.0;
    std::vector<double> sorted = values_;
    std::sort(sorted.begin(), sorted.end());
    if (sorted.size() == 1) return sorted.front();
    double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
    std::size_t lo = static_cast<std::size_t>(rank);
    std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    double frac = rank - static_cast<double>(lo);
    return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
  }

  double median() const { return percentile(50.0); }
  const std::vector<double>& values() const { return values_; }
  void reset() { values_.clear(); }

 private:
  std::vector<double> values_;
};

}  // namespace apn
