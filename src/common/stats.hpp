// Small statistics helpers used by benchmark harnesses and model validation:
// streaming mean/variance (Welford), min/max, and percentile extraction.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

namespace apn {

/// Streaming mean / variance / extrema accumulator (Welford's algorithm).
class OnlineStats {
 public:
  void add(double x) {
    ++n_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double sum() const { return sum_; }
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }
  double min() const {
    return n_ ? min_ : std::numeric_limits<double>::quiet_NaN();
  }
  double max() const {
    return n_ ? max_ : std::numeric_limits<double>::quiet_NaN();
  }

  void reset() { *this = OnlineStats{}; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Sample container with percentile queries. The sorted view is cached and
/// only rebuilt after new samples arrive, so repeated percentile() calls
/// (e.g. a p50/p95/p99 report line) sort once.
class Samples {
 public:
  void add(double x) {
    values_.push_back(x);
    sorted_dirty_ = true;
  }
  std::size_t count() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  double mean() const {
    if (values_.empty()) return 0.0;
    double s = 0.0;
    for (double v : values_) s += v;
    return s / static_cast<double>(values_.size());
  }

  // Extrema are NaN on an empty set (same contract as OnlineStats) —
  // 0.0 would be indistinguishable from a real measurement.
  double min() const {
    return values_.empty() ? std::numeric_limits<double>::quiet_NaN()
                           : sorted().front();
  }
  double max() const {
    return values_.empty() ? std::numeric_limits<double>::quiet_NaN()
                           : sorted().back();
  }

  /// Percentile in [0,100], nearest-rank with linear interpolation.
  double percentile(double p) const {
    if (values_.empty()) return 0.0;
    const std::vector<double>& s = sorted();
    if (s.size() == 1) return s.front();
    double rank = p / 100.0 * static_cast<double>(s.size() - 1);
    std::size_t lo = static_cast<std::size_t>(rank);
    std::size_t hi = std::min(lo + 1, s.size() - 1);
    double frac = rank - static_cast<double>(lo);
    return s[lo] + frac * (s[hi] - s[lo]);
  }

  double median() const { return percentile(50.0); }
  const std::vector<double>& values() const { return values_; }
  void reset() {
    values_.clear();
    sorted_.clear();
    sorted_dirty_ = false;
  }

 private:
  const std::vector<double>& sorted() const {
    if (sorted_dirty_) {
      sorted_ = values_;
      std::sort(sorted_.begin(), sorted_.end());
      sorted_dirty_ = false;
    }
    return sorted_;
  }

  std::vector<double> values_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_dirty_ = false;
};

}  // namespace apn
