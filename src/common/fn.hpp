// UniqueFn: a move-only callable wrapper for simulation hot paths.
//
// The event engine stores small callables inline (simulator.hpp,
// kInlineBytes); std::function defeats that by boxing captures behind its
// own type-erased allocation and by requiring copyability, which forces
// shared_ptr captures where unique ownership would do. UniqueFn is the
// replacement used across sim/core/pcie:
//
//  * move-only — closures may own buffers, gates, or other UniqueFns;
//  * 48-byte small-buffer storage, heap fallback above that. The whole
//    object is 64 bytes, chosen so the common completion pattern
//    `[this, done = std::move(done)]` (8 + 64 = 72 bytes) still fits the
//    event node's 80-byte inline payload;
//  * contextually convertible to bool, like std::function, so optional
//    completion hooks keep their `if (done) done();` call sites.
//
// Invoking an empty UniqueFn is undefined (guarded by assert), matching
// the engine's "never schedule an empty event" rule rather than
// std::function's bad_function_call.
#pragma once

#include <cassert>
#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace apn {

template <typename Sig>
class UniqueFn;

template <typename R, typename... Args>
class UniqueFn<R(Args...)> {
 public:
  UniqueFn() = default;

  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, UniqueFn> &&
             std::is_invocable_r_v<R, std::decay_t<F>&, Args...>)
  UniqueFn(F&& f) {  // NOLINT(google-explicit-constructor): callable wrapper
    using D = std::decay_t<F>;
    if constexpr (fits_inline<D>()) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      invoke_ = &inline_invoke<D>;
      manage_ = &inline_manage<D>;
    } else {
      ::new (static_cast<void*>(storage_)) (D*)(new D(std::forward<F>(f)));
      invoke_ = &boxed_invoke<D>;
      manage_ = &boxed_manage<D>;
    }
  }

  UniqueFn(UniqueFn&& other) noexcept
      : invoke_(other.invoke_), manage_(other.manage_) {
    if (manage_ != nullptr) manage_(Op::kMove, &other, this);
    other.invoke_ = nullptr;
    other.manage_ = nullptr;
  }

  UniqueFn& operator=(UniqueFn&& other) noexcept {
    if (this != &other) {
      reset();
      invoke_ = other.invoke_;
      manage_ = other.manage_;
      if (manage_ != nullptr) manage_(Op::kMove, &other, this);
      other.invoke_ = nullptr;
      other.manage_ = nullptr;
    }
    return *this;
  }

  UniqueFn(const UniqueFn&) = delete;
  UniqueFn& operator=(const UniqueFn&) = delete;

  ~UniqueFn() { reset(); }

  void reset() {
    if (manage_ != nullptr) manage_(Op::kDestroy, this, nullptr);
    invoke_ = nullptr;
    manage_ = nullptr;
  }

  explicit operator bool() const { return invoke_ != nullptr; }

  R operator()(Args... args) {
    assert(invoke_ != nullptr && "invoking empty UniqueFn");
    return invoke_(storage_, std::forward<Args>(args)...);
  }

 private:
  static constexpr std::size_t kSboBytes = 48;

  enum class Op { kDestroy, kMove };

  template <typename D>
  static constexpr bool fits_inline() {
    return sizeof(D) <= kSboBytes &&
           alignof(D) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<D>;
  }

  template <typename D>
  static R inline_invoke(unsigned char* s, Args&&... args) {
    return (*std::launder(reinterpret_cast<D*>(s)))(
        std::forward<Args>(args)...);
  }

  template <typename D>
  static void inline_manage(Op op, UniqueFn* from, UniqueFn* to) {
    D* f = std::launder(reinterpret_cast<D*>(from->storage_));
    if (op == Op::kMove)
      ::new (static_cast<void*>(to->storage_)) D(std::move(*f));
    f->~D();
  }

  template <typename D>
  static R boxed_invoke(unsigned char* s, Args&&... args) {
    return (**std::launder(reinterpret_cast<D**>(s)))(
        std::forward<Args>(args)...);
  }

  template <typename D>
  static void boxed_manage(Op op, UniqueFn* from, UniqueFn* to) {
    D** slot = std::launder(reinterpret_cast<D**>(from->storage_));
    if (op == Op::kMove)
      ::new (static_cast<void*>(to->storage_)) (D*)(*slot);
    else
      delete *slot;
  }

  alignas(std::max_align_t) unsigned char storage_[kSboBytes];
  R (*invoke_)(unsigned char*, Args&&...) = nullptr;
  void (*manage_)(Op, UniqueFn*, UniqueFn*) = nullptr;
};

}  // namespace apn
