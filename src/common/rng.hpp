// Deterministic, seedable PRNG (xoshiro256**) plus SplitMix64 seeding.
// std::mt19937 distributions are not bit-stable across standard libraries;
// we implement our own uniform/normal draws so every experiment is exactly
// reproducible on any platform.
#pragma once

#include <cmath>
#include <cstdint>

namespace apn {

/// SplitMix64: used to expand a single 64-bit seed into xoshiro state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** by Blackman & Vigna (public domain reference algorithm).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5DEECE66Dull) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
    has_gauss_ = false;
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). Unbiased via rejection.
  std::uint64_t next_below(std::uint64_t bound) {
    if (bound == 0) return 0;
    std::uint64_t threshold = (-bound) % bound;
    for (;;) {
      std::uint64_t r = next_u64();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

  bool bernoulli(double p) { return next_double() < p; }

  /// Standard normal via Box-Muller (cached second value).
  double gaussian() {
    if (has_gauss_) {
      has_gauss_ = false;
      return gauss_;
    }
    double u1 = 0.0;
    while (u1 <= 1e-300) u1 = next_double();
    double u2 = next_double();
    double r = std::sqrt(-2.0 * std::log(u1));
    double theta = 2.0 * 3.14159265358979323846 * u2;
    gauss_ = r * std::sin(theta);
    has_gauss_ = true;
    return r * std::cos(theta);
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
  bool has_gauss_ = false;
  double gauss_ = 0.0;
};

}  // namespace apn
