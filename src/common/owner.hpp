// Partition-ownership annotations for the model layers.
//
// ROADMAP item 1 (sharded parallel DES over the torus) is only safe when
// every piece of mutable model state has exactly one owning partition and
// every cross-partition interaction goes through a sim::Channel at the
// lookahead horizon. This header *declares* that ownership in the model
// source; apn-lint's `partition-ownership` rule proves it statically and
// `check::Context --owner-check` cross-validates it at runtime (see
// docs/CORRECTNESS.md "The ownership model").
//
// Domain catalogue:
//  * torus_node     — state private to one cluster node's card-side model
//                     (ApenetCard, GpuP2pTx, RdmaDevice, V2P tables). One
//                     shard per torus node in the sharding plan.
//  * pcie_island    — state private to one node's PCIe tree (Fabric,
//                     HostMemory, Gpu). Same shard as the node's
//                     torus_node state (instances coincide), kept as a
//                     separate domain so intra-node layering violations
//                     stay visible.
//  * global_readonly — wired once during cluster assembly, frozen before
//                     the simulation runs (topology containers). Readable
//                     from any partition; never written at sim time.
//
// Usage: `APN_OWNER(domain)` as the first line of a class body claims the
// whole class for `domain`; `APN_SHARED("reason")` prefixes an individual
// member declaration to exempt it from the single-owner rule (the reason
// string is mandatory — apn-lint flags empty ones).
//
// Instances: owner tags carry an instance id (the cluster-node index) so
// the runtime oracle can tell node 0's card state from node 1's.
// `ScopedOwner` installs a thread-local construction scope; `StateCell`
// and `APN_OWNER`'s tag member capture it, so cells built while
// cluster::Node `i` assembles itself are stamped with instance `i`.
#pragma once

#include <cstdint>

namespace apn::owner {

enum class Domain : std::uint8_t {
  unowned = 0,      ///< no declared owner (tests, free-standing state)
  torus_node,       ///< one cluster node's card-side model state
  pcie_island,      ///< one cluster node's PCIe-tree state
  global_readonly,  ///< frozen-after-assembly topology state
};

inline const char* domain_name(Domain d) {
  switch (d) {
    case Domain::unowned: return "unowned";
    case Domain::torus_node: return "torus_node";
    case Domain::pcie_island: return "pcie_island";
    case Domain::global_readonly: return "global_readonly";
  }
  return "?";
}

/// An owner stamp: which domain, and which partition instance (the cluster
/// node index; -1 for non-partitioned domains).
struct Tag {
  Domain domain = Domain::unowned;
  std::int32_t instance = -1;

  /// True when this tag names one concrete partition (the only tags the
  /// runtime oracle compares).
  bool partitioned() const {
    return (domain == Domain::torus_node || domain == Domain::pcie_island) &&
           instance >= 0;
  }
};

namespace detail {
inline Tag& current_ref() {
  thread_local Tag t{};
  return t;
}
}  // namespace detail

/// The thread's active construction-scope owner (unowned by default).
inline const Tag& current() { return detail::current_ref(); }

/// Tag for a class-level APN_OWNER(domain) member: the declared domain,
/// with the instance inherited from the enclosing construction scope.
inline Tag bind(Domain d) {
  Tag t{d, -1};
  if (d == Domain::torus_node || d == Domain::pcie_island)
    t.instance = current().instance;
  return t;
}

/// RAII construction scope: state cells built inside it capture its tag.
/// cluster::Node installs one per node while assembling the node's model.
class ScopedOwner {
 public:
  ScopedOwner(Domain d, std::int32_t instance = -1)
      : prev_(detail::current_ref()) {
    detail::current_ref() = Tag{d, instance};
  }
  explicit ScopedOwner(Tag t) : prev_(detail::current_ref()) {
    detail::current_ref() = t;
  }
  ~ScopedOwner() { detail::current_ref() = prev_; }
  ScopedOwner(const ScopedOwner&) = delete;
  ScopedOwner& operator=(const ScopedOwner&) = delete;

 private:
  Tag prev_;
};

}  // namespace apn::owner

/// Fallback for APN_CHECK_ACCESS sites outside an APN_OWNER class: the
/// macro calls `apn_owner_tag()` unqualified, so inside an annotated class
/// the member version (injected by APN_OWNER) wins and stamps the access
/// with the class's tag; everywhere else this global no-op tag applies.
inline ::apn::owner::Tag apn_owner_tag() { return {}; }

/// Claim every member of the enclosing class for `domain`. Put it on the
/// first line of the class body. Injects the declared domain (for the
/// static rule), a tag member capturing the construction-scope instance,
/// and the `apn_owner_tag()` hook the access macro resolves to.
#define APN_OWNER(domain)                                                    \
  static constexpr ::apn::owner::Domain apn_owner_domain =                   \
      ::apn::owner::Domain::domain;                                          \
  ::apn::owner::Tag apn_owner_tag_v_ =                                       \
      ::apn::owner::bind(::apn::owner::Domain::domain);                      \
  ::apn::owner::Tag apn_owner_tag() const { return apn_owner_tag_v_; }

/// Exempt one member from the single-owner rule. The reason string is
/// mandatory and must be non-empty (apn-lint enforces it); the macro
/// itself compiles away.
#define APN_SHARED(reason)
