// Plain-text table/series printer used by the benchmark harnesses to emit
// the paper's tables and figure data series in a uniform, diff-friendly form.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace apn {

/// Column-aligned text table. Rows are strings; numeric formatting is done
/// by the caller so each bench controls precision per the paper's tables.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void print(std::FILE* out = stdout) const {
    std::vector<std::size_t> widths(headers_.size(), 0);
    for (std::size_t c = 0; c < headers_.size(); ++c)
      widths[c] = headers_[c].size();
    for (const auto& row : rows_)
      for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c)
        widths[c] = std::max(widths[c], row[c].size());

    auto print_row = [&](const std::vector<std::string>& row) {
      std::fputs("| ", out);
      for (std::size_t c = 0; c < widths.size(); ++c) {
        const std::string& cell = c < row.size() ? row[c] : std::string{};
        std::fprintf(out, "%-*s | ", static_cast<int>(widths[c]),
                     cell.c_str());
      }
      std::fputc('\n', out);
    };

    print_row(headers_);
    std::fputs("|", out);
    for (std::size_t c = 0; c < widths.size(); ++c) {
      for (std::size_t i = 0; i < widths[c] + 2; ++i) std::fputc('-', out);
      std::fputc('|', out);
    }
    std::fputc('\n', out);
    for (const auto& row : rows_) print_row(row);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style string formatting into std::string.
template <typename... Args>
std::string strf(const char* fmt, Args... args) {
  int n = std::snprintf(nullptr, 0, fmt, args...);
  if (n <= 0) return {};
  std::string s(static_cast<std::size_t>(n), '\0');
  std::snprintf(s.data(), s.size() + 1, fmt, args...);
  return s;
}

/// Human-readable message size label ("32", "4K", "2M") as used in the
/// paper's figure axes.
inline std::string size_label(std::uint64_t bytes) {
  if (bytes >= 1024ull * 1024ull && bytes % (1024ull * 1024ull) == 0)
    return strf("%lluM",
                static_cast<unsigned long long>(bytes / (1024ull * 1024ull)));
  if (bytes >= 1024ull && bytes % 1024ull == 0)
    return strf("%lluK", static_cast<unsigned long long>(bytes / 1024ull));
  return strf("%llu", static_cast<unsigned long long>(bytes));
}

}  // namespace apn
