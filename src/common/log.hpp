// Minimal leveled logger. Logging is off by default so benchmark inner loops
// stay clean; tests and examples can raise the level per-component.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>

#include "common/units.hpp"

namespace apn {

enum class LogLevel : int { kOff = 0, kError, kWarn, kInfo, kDebug, kTrace };

class Logger {
 public:
  explicit Logger(std::string component, LogLevel level = global_level())
      : component_(std::move(component)), level_(level) {}

  LogLevel level() const { return level_; }
  void set_level(LogLevel l) { level_ = l; }

  /// Process-wide default level, applied to loggers constructed afterwards.
  static LogLevel& global_level() {
    static LogLevel level = LogLevel::kWarn;
    return level;
  }

  template <typename... Args>
  void log(LogLevel l, Time now, const char* fmt, Args&&... args) const {
    if (l > level_) return;
    std::fprintf(stderr, "[%10.3f us] %-12s %s: ", units::to_us(now),
                 component_.c_str(), name(l));
    std::fprintf(stderr, fmt, std::forward<Args>(args)...);
    std::fputc('\n', stderr);
  }

  template <typename... Args>
  void error(Time now, const char* fmt, Args&&... args) const {
    log(LogLevel::kError, now, fmt, std::forward<Args>(args)...);
  }
  template <typename... Args>
  void warn(Time now, const char* fmt, Args&&... args) const {
    log(LogLevel::kWarn, now, fmt, std::forward<Args>(args)...);
  }
  template <typename... Args>
  void info(Time now, const char* fmt, Args&&... args) const {
    log(LogLevel::kInfo, now, fmt, std::forward<Args>(args)...);
  }
  template <typename... Args>
  void debug(Time now, const char* fmt, Args&&... args) const {
    log(LogLevel::kDebug, now, fmt, std::forward<Args>(args)...);
  }
  template <typename... Args>
  void trace(Time now, const char* fmt, Args&&... args) const {
    log(LogLevel::kTrace, now, fmt, std::forward<Args>(args)...);
  }

 private:
  static const char* name(LogLevel l) {
    switch (l) {
      case LogLevel::kOff: return "OFF";
      case LogLevel::kError: return "ERROR";
      case LogLevel::kWarn: return "WARN";
      case LogLevel::kInfo: return "INFO";
      case LogLevel::kDebug: return "DEBUG";
      case LogLevel::kTrace: return "TRACE";
    }
    std::abort();  // unreachable: no default, so -Wswitch guards enum growth
  }

  std::string component_;
  LogLevel level_;
};

}  // namespace apn
