// Unit helpers for the apenetpp simulation: time in integer picoseconds,
// sizes in bytes, rates in bytes/second.
//
// All simulated time is kept as int64_t picoseconds (`apn::Time`) so that
// event ordering is exact and runs are bit-reproducible. 2^63 ps ~ 106 days
// of simulated time, far beyond any experiment here.
#pragma once

#include <cstdint>

namespace apn {

/// Simulated time in picoseconds.
using Time = std::int64_t;

namespace units {

// --- time ---------------------------------------------------------------
constexpr Time ps(double v) { return static_cast<Time>(v); }
constexpr Time ns(double v) { return static_cast<Time>(v * 1e3); }
constexpr Time us(double v) { return static_cast<Time>(v * 1e6); }
constexpr Time ms(double v) { return static_cast<Time>(v * 1e9); }
constexpr Time sec(double v) { return static_cast<Time>(v * 1e12); }

constexpr double to_ns(Time t) { return static_cast<double>(t) / 1e3; }
constexpr double to_us(Time t) { return static_cast<double>(t) / 1e6; }
constexpr double to_ms(Time t) { return static_cast<double>(t) / 1e9; }
constexpr double to_sec(Time t) { return static_cast<double>(t) / 1e12; }

// --- sizes ---------------------------------------------------------------
constexpr std::uint64_t KiB(std::uint64_t v) { return v * 1024ull; }
constexpr std::uint64_t MiB(std::uint64_t v) { return v * 1024ull * 1024ull; }
constexpr std::uint64_t GiB(std::uint64_t v) {
  return v * 1024ull * 1024ull * 1024ull;
}

// --- rates ---------------------------------------------------------------
// Rates are double bytes/second; conversion to per-byte serialization time
// happens once at model construction, not in inner loops.
constexpr double MBps(double v) { return v * 1e6; }
constexpr double GBps(double v) { return v * 1e9; }
/// Link signalling rate quoted in Gbit/s (e.g. "28 Gbps" torus links).
constexpr double Gbps(double v) { return v * 1e9 / 8.0; }

/// Serialization time for `bytes` at `bytes_per_sec`, rounded up to 1 ps.
constexpr Time transfer_time(std::uint64_t bytes, double bytes_per_sec) {
  if (bytes == 0) return 0;
  double t = static_cast<double>(bytes) / bytes_per_sec * 1e12;
  Time r = static_cast<Time>(t);
  return r > 0 ? r : 1;
}

/// Achieved bandwidth in MB/s for `bytes` moved in `elapsed` picoseconds.
constexpr double bandwidth_MBps(std::uint64_t bytes, Time elapsed) {
  if (elapsed <= 0) return 0.0;
  return static_cast<double>(bytes) / (static_cast<double>(elapsed) * 1e-12) /
         1e6;
}

}  // namespace units
}  // namespace apn
