// Unit types for the apenetpp simulation: time in integer picoseconds,
// sizes in bytes, rates in bytes/second.
//
// All simulated time is kept as int64_t picoseconds (`apn::Time`) so that
// event ordering is exact and runs are bit-reproducible. 2^63 ps ~ 106 days
// of simulated time, far beyond any experiment here.
//
// Byte counts and rates are *strong types* (`apn::Bytes`, `apn::Rate`):
// construction and extraction are explicit, and only dimensionally valid
// arithmetic compiles (Bytes +- Bytes, Bytes * scalar, Rate * scalar,
// Bytes / Rate -> Time via units::transfer_time). The quantities the
// paper's results hinge on — TLP byte counts, link rates, bandwidth
// curves — therefore cannot be silently mixed with picosecond values or
// unscaled literals; the residual patterns the type system cannot reach
// (e.g. raw integers flowing into Time arithmetic) are enforced by the
// `unit-mix` rule of tools/apn-lint, from which this file is exempt.
#pragma once

#include <cstdint>

namespace apn {

/// Simulated time in picoseconds.
using Time = std::int64_t;

/// A byte count. Explicit construction from / extraction to a raw
/// integer; arithmetic only where dimensionally meaningful. The unscaled
/// value is the count itself (no SI prefix), so `Bytes(4096)` is 4 KiB.
class Bytes {
 public:
  constexpr Bytes() = default;
  constexpr explicit Bytes(std::uint64_t n) : n_(n) {}

  constexpr std::uint64_t count() const { return n_; }

  constexpr Bytes& operator+=(Bytes o) {
    n_ += o.n_;
    return *this;
  }
  constexpr Bytes& operator-=(Bytes o) {
    n_ -= o.n_;
    return *this;
  }

  friend constexpr Bytes operator+(Bytes a, Bytes b) {
    return Bytes(a.n_ + b.n_);
  }
  friend constexpr Bytes operator-(Bytes a, Bytes b) {
    return Bytes(a.n_ - b.n_);
  }
  friend constexpr Bytes operator*(Bytes a, std::uint64_t k) {
    return Bytes(a.n_ * k);
  }
  friend constexpr Bytes operator*(std::uint64_t k, Bytes a) {
    return Bytes(k * a.n_);
  }
  friend constexpr Bytes operator/(Bytes a, std::uint64_t k) {
    return Bytes(a.n_ / k);
  }
  /// Ratio of two byte counts is a dimensionless integer (TLP counts,
  /// chunk counts).
  friend constexpr std::uint64_t operator/(Bytes a, Bytes b) {
    return a.n_ / b.n_;
  }
  friend constexpr Bytes operator%(Bytes a, Bytes b) {
    return Bytes(a.n_ % b.n_);
  }

  constexpr auto operator<=>(const Bytes&) const = default;

 private:
  std::uint64_t n_ = 0;
};

/// A data rate in bytes per second. Stored as double (rates are model
/// parameters, never accumulated in inner loops); conversion to per-byte
/// serialization time happens once per transfer via units::transfer_time.
class Rate {
 public:
  constexpr Rate() = default;
  constexpr explicit Rate(double bytes_per_sec) : v_(bytes_per_sec) {}

  constexpr double bytes_per_sec() const { return v_; }

  /// Derating / scaling (ECC factors, lane counts) keeps the dimension.
  friend constexpr Rate operator*(Rate r, double k) { return Rate(r.v_ * k); }
  friend constexpr Rate operator*(double k, Rate r) { return Rate(k * r.v_); }
  friend constexpr Rate operator/(Rate r, double k) { return Rate(r.v_ / k); }
  /// Ratio of two rates is a dimensionless factor (speedups, utilization).
  friend constexpr double operator/(Rate a, Rate b) { return a.v_ / b.v_; }
  friend constexpr Rate operator+(Rate a, Rate b) { return Rate(a.v_ + b.v_); }

  constexpr auto operator<=>(const Rate&) const = default;

 private:
  double v_ = 0.0;
};

namespace units {

// --- time ---------------------------------------------------------------
constexpr Time ps(double v) { return static_cast<Time>(v); }
constexpr Time ns(double v) { return static_cast<Time>(v * 1e3); }
constexpr Time us(double v) { return static_cast<Time>(v * 1e6); }
constexpr Time ms(double v) { return static_cast<Time>(v * 1e9); }
constexpr Time sec(double v) { return static_cast<Time>(v * 1e12); }

constexpr double to_ns(Time t) { return static_cast<double>(t) / 1e3; }
constexpr double to_us(Time t) { return static_cast<double>(t) / 1e6; }
constexpr double to_ms(Time t) { return static_cast<double>(t) / 1e9; }
constexpr double to_sec(Time t) { return static_cast<double>(t) / 1e12; }

// --- sizes ---------------------------------------------------------------
constexpr Bytes KiB(std::uint64_t v) { return Bytes(v * 1024ull); }
constexpr Bytes MiB(std::uint64_t v) { return Bytes(v * 1024ull * 1024ull); }
constexpr Bytes GiB(std::uint64_t v) {
  return Bytes(v * 1024ull * 1024ull * 1024ull);
}

// --- rates ---------------------------------------------------------------
constexpr Rate MBps(double v) { return Rate(v * 1e6); }
constexpr Rate GBps(double v) { return Rate(v * 1e9); }
/// Link signalling rate quoted in Gbit/s (e.g. "28 Gbps" torus links).
constexpr Rate Gbps(double v) { return Rate(v * 1e9 / 8.0); }

/// Serialization time for `bytes` at `rate`, rounded up to 1 ps.
constexpr Time transfer_time(Bytes bytes, Rate rate) {
  if (bytes.count() == 0) return 0;
  double t =
      static_cast<double>(bytes.count()) / rate.bytes_per_sec() * 1e12;
  Time r = static_cast<Time>(t);
  return r > 0 ? r : 1;
}

/// Achieved bandwidth in MB/s for `bytes` moved in `elapsed` picoseconds.
constexpr double bandwidth_MBps(Bytes bytes, Time elapsed) {
  if (elapsed <= 0) return 0.0;
  return static_cast<double>(bytes.count()) /
         (static_cast<double>(elapsed) * 1e-12) / 1e6;
}

}  // namespace units
}  // namespace apn
