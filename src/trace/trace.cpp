#include "trace/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>

namespace apn::trace {

TraceSink::TraceSink(std::size_t capacity)
    : capacity_(capacity > 0 ? capacity : 1) {
  ring_.reserve(std::min<std::size_t>(capacity_, 4096));
}

std::uint32_t TraceSink::track(const std::string& process,
                               const std::string& name) {
  auto key = std::make_pair(process, name);
  auto it = track_ids_.find(key);
  if (it != track_ids_.end()) return it->second;
  auto pid_it = pids_.find(process);
  if (pid_it == pids_.end())
    pid_it = pids_.emplace(process, static_cast<int>(pids_.size())).first;
  // tid 0 is reserved so a track never collides with Chrome's implicit
  // "main thread" row of its process.
  TrackInfo info{process, name, pid_it->second,
                 static_cast<int>(tracks_.size()) + 1};
  tracks_.push_back(info);
  std::uint32_t id = static_cast<std::uint32_t>(tracks_.size()) - 1;
  track_ids_.emplace(std::move(key), id);
  return id;
}

void TraceSink::push(TraceEvent ev) {
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(ev));
    return;
  }
  ring_[head_] = std::move(ev);
  head_ = (head_ + 1) % capacity_;
  ++dropped_;
}

void TraceSink::span(std::uint32_t track, const char* category,
                     const char* name, Time start, Time end,
                     std::initializer_list<Arg> args) {
  TraceEvent ev;
  ev.ts = start;
  ev.dur = end > start ? end - start : 0;
  ev.phase = TraceEvent::Phase::kSpan;
  ev.track = track;
  ev.category = category;
  ev.name = name;
  ev.args.assign(args.begin(), args.end());
  push(std::move(ev));
}

void TraceSink::instant(std::uint32_t track, const char* category,
                        const char* name, Time t,
                        std::initializer_list<Arg> args) {
  TraceEvent ev;
  ev.ts = t;
  ev.phase = TraceEvent::Phase::kInstant;
  ev.track = track;
  ev.category = category;
  ev.name = name;
  ev.args.assign(args.begin(), args.end());
  push(std::move(ev));
}

void TraceSink::counter(std::uint32_t track, const char* category,
                        const char* name, Time t, double value) {
  TraceEvent ev;
  ev.ts = t;
  ev.phase = TraceEvent::Phase::kCounter;
  ev.track = track;
  ev.category = category;
  ev.name = name;
  ev.args.assign({Arg{"value", value}});
  push(std::move(ev));
}

std::vector<TraceEvent> TraceSink::events() const {
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;
  } else {
    out.insert(out.end(), ring_.begin() + static_cast<std::ptrdiff_t>(head_),
               ring_.end());
    out.insert(out.end(), ring_.begin(),
               ring_.begin() + static_cast<std::ptrdiff_t>(head_));
  }
  return out;
}

void TraceSink::clear() {
  ring_.clear();
  head_ = 0;
  dropped_ = 0;
}

namespace {

void append_escaped(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void append_args(std::string& out, const std::vector<Arg>& args) {
  out += "{";
  bool first = true;
  for (const Arg& a : args) {
    if (!first) out += ",";
    first = false;
    out += "\"";
    append_escaped(out, a.key);
    out += "\":";
    char buf[40];
    if (a.integral)
      std::snprintf(buf, sizeof buf, "%lld",
                    static_cast<long long>(a.value));
    else
      std::snprintf(buf, sizeof buf, "%.9g", a.value);
    out += buf;
  }
  out += "}";
}

/// Picoseconds -> the format's microsecond unit, with sub-ps kept exact
/// enough for display (%.6f keeps full ps resolution).
void append_us(std::string& out, Time ps) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.6f", static_cast<double>(ps) / 1e6);
  out += buf;
}

}  // namespace

std::string TraceSink::chrome_json() const {
  std::string out;
  out += "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n";

  bool first = true;
  auto sep = [&] {
    if (!first) out += ",\n";
    first = false;
  };

  // Metadata: name every process and track lane.
  std::map<int, std::string> process_names;
  for (const TrackInfo& t : tracks_) process_names[t.pid] = t.process;
  for (const auto& [pid, name] : process_names) {
    sep();
    out += "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" +
           std::to_string(pid) + ",\"tid\":0,\"args\":{\"name\":\"";
    append_escaped(out, name);
    out += "\"}}";
  }
  for (const TrackInfo& t : tracks_) {
    sep();
    out += "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":" +
           std::to_string(t.pid) + ",\"tid\":" + std::to_string(t.tid) +
           ",\"args\":{\"name\":\"";
    append_escaped(out, t.name);
    out += "\"}}";
  }

  // Events, sorted by sim time (stable: ties keep recording order).
  std::vector<TraceEvent> evs = events();
  std::stable_sort(evs.begin(), evs.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts < b.ts;
                   });
  for (const TraceEvent& ev : evs) {
    const TrackInfo& t = tracks_[ev.track];
    sep();
    out += "{\"name\":\"";
    append_escaped(out, ev.name);
    out += "\",\"cat\":\"";
    append_escaped(out, ev.category);
    out += "\",\"pid\":" + std::to_string(t.pid) +
           ",\"tid\":" + std::to_string(t.tid) + ",\"ts\":";
    append_us(out, ev.ts);
    switch (ev.phase) {
      case TraceEvent::Phase::kSpan:
        out += ",\"ph\":\"X\",\"dur\":";
        append_us(out, ev.dur);
        break;
      case TraceEvent::Phase::kInstant:
        out += ",\"ph\":\"i\",\"s\":\"t\"";
        break;
      case TraceEvent::Phase::kCounter:
        out += ",\"ph\":\"C\"";
        break;
    }
    if (!ev.args.empty() || ev.phase == TraceEvent::Phase::kCounter) {
      out += ",\"args\":";
      append_args(out, ev.args);
    }
    out += "}";
  }
  out += "\n]}\n";
  return out;
}

bool TraceSink::write_chrome_json(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::string json = chrome_json();
  std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  int rc = std::fclose(f);
  return written == json.size() && rc == 0;
}

bool env_enabled() {
  const char* v = std::getenv("APN_TRACE");
  return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
}

namespace {

std::unique_ptr<TraceSink>& env_sink() {
  static std::unique_ptr<TraceSink> s;
  return s;
}

void dump_env_sink() {
  TraceSink* s = env_sink().get();
  if (s == nullptr || s->size() == 0) return;
  const char* path = std::getenv("APN_TRACE_OUT");
  if (path == nullptr || path[0] == '\0') path = "apn_trace.json";
  if (s->write_chrome_json(path))
    std::fprintf(stderr, "[apn::trace] wrote %zu events to %s\n", s->size(),
                 path);
  else
    std::fprintf(stderr, "[apn::trace] failed to write %s\n", path);
}

}  // namespace

TraceSink* init_from_env() {
  if (sink() != nullptr) return sink();
  if (!env_enabled()) return nullptr;
  // Creation is once-guarded so concurrent cluster construction (threads
  // running outside the runner's per-point SinkScope) cannot double-create
  // the env sink; installation stays per-thread.
  static std::once_flag once;
  std::call_once(once, [] {
    env_sink() = std::make_unique<TraceSink>();
    std::atexit(dump_env_sink);
  });
  set_sink(env_sink().get());
  return sink();
}

}  // namespace apn::trace
