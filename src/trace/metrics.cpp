#include "trace/metrics.hpp"

#include <cstdio>

namespace apn::trace {

void MetricsRegistry::clear() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

namespace {

std::string fmt(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

std::string hist_fields(const Histogram& h, const char* eq,
                        const char* sep, const char* quote) {
  const OnlineStats& s = h.stats();
  auto field = [&](const char* k, double v) {
    return std::string(quote) + k + quote + eq + fmt(v);
  };
  std::string out = std::string(quote) + "count" + quote + eq +
                    std::to_string(s.count());
  if (s.count() > 0) {
    out += sep + field("mean", s.mean());
    out += sep + field("min", s.min());
    out += sep + field("p50", h.samples().percentile(50));
    out += sep + field("p95", h.samples().percentile(95));
    out += sep + field("max", s.max());
  }
  return out;
}

}  // namespace

std::string MetricsRegistry::text() const {
  std::string out;
  for (const auto& [name, c] : counters_)
    out += "counter   " + name + " = " + std::to_string(c.value()) + "\n";
  for (const auto& [name, g] : gauges_)
    out += "gauge     " + name + " = " + fmt(g.value()) + "\n";
  for (const auto& [name, h] : histograms_)
    out += "histogram " + name + " " + hist_fields(h, "=", " ", "") + "\n";
  return out;
}

std::string MetricsRegistry::json() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + name + "\":" + std::to_string(c.value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + name + "\":" + fmt(g.value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + name + "\":{" + hist_fields(h, ":", ",", "\"") + "}";
  }
  out += "}}";
  return out;
}

namespace {

MetricsRegistry*& current_ptr() {
  thread_local MetricsRegistry* p = nullptr;
  return p;
}

}  // namespace

MetricsRegistry& MetricsRegistry::current() {
  if (current_ptr() == nullptr) {
    thread_local MetricsRegistry thread_default;
    current_ptr() = &thread_default;
  }
  return *current_ptr();
}

MetricsScope::MetricsScope() : prev_(current_ptr()) {
  current_ptr() = &mine_;
}

MetricsScope::~MetricsScope() { current_ptr() = prev_; }

}  // namespace apn::trace
