// Simulation-wide tracing: typed, sim-time-stamped events from every layer
// of the model, collected into a ring buffer and exportable as Chrome
// trace-event JSON (loadable in chrome://tracing or https://ui.perfetto.dev).
//
// Design rules:
//  * Zero overhead when disabled. Components hold a `Track` handle; with no
//    sink installed the handle is inert and every call is a single
//    predictable null-check. Instrumentation never schedules simulator
//    events, so enabling tracing cannot change simulated timing — traced
//    and untraced runs are bit-identical in sim time.
//  * Virtual threads. Each hardware stage that can be busy independently
//    (a PCIe link direction, a GPU engine, the card's Nios II, a torus
//    channel) is its own track; Perfetto renders one lane per track.
//  * Explicit timestamps. The simulation is single-threaded but benches
//    create many simulators; callers stamp events with their own
//    simulator's clock instead of the sink guessing.
//
// Enabling: either install a sink programmatically (`trace::set_sink`)
// before building the cluster, or set APN_TRACE=1 in the environment —
// `cluster::Cluster`'s constructor then installs a process-wide sink that
// dumps to $APN_TRACE_OUT (default "apn_trace.json") at exit. See
// docs/OBSERVABILITY.md.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/units.hpp"

namespace apn::trace {

/// One typed event argument; keys must be static strings (they are stored
/// by pointer). Integral values are exported without a decimal point so
/// addresses and byte counts stay readable in the trace viewer.
struct Arg {
  const char* key;
  double value;
  bool integral;

  constexpr Arg(const char* k, double v) : key(k), value(v), integral(false) {}
  constexpr Arg(const char* k, std::uint64_t v)
      : key(k), value(static_cast<double>(v)), integral(true) {}
  constexpr Arg(const char* k, std::int64_t v)
      : key(k), value(static_cast<double>(v)), integral(true) {}
  constexpr Arg(const char* k, std::uint32_t v)
      : key(k), value(static_cast<double>(v)), integral(true) {}
  constexpr Arg(const char* k, int v)
      : key(k), value(static_cast<double>(v)), integral(true) {}
  constexpr Arg(const char* k, bool v)
      : key(k), value(v ? 1.0 : 0.0), integral(true) {}
};

/// A recorded event. `category` and `name` must be static strings; the
/// sink stores them by pointer (the hot path never allocates for them).
struct TraceEvent {
  enum class Phase : std::uint8_t { kSpan, kInstant, kCounter };

  Time ts = 0;        ///< start time (spans) or event time
  Time dur = 0;       ///< span duration; 0 for instants/counters
  Phase phase = Phase::kInstant;
  std::uint32_t track = 0;
  const char* category = "";
  const char* name = "";
  std::vector<Arg> args;
};

/// Collects events into a bounded ring buffer (oldest events are dropped
/// once `capacity` is reached; `dropped()` reports how many).
class TraceSink {
 public:
  explicit TraceSink(std::size_t capacity = 1 << 18);

  // ---- tracks -------------------------------------------------------------
  /// Register (or look up) the track `name` under the process-level group
  /// `process`; returns its id. Chrome maps `process` to a pid and `name`
  /// to a named thread lane within it.
  std::uint32_t track(const std::string& process, const std::string& name);
  std::size_t track_count() const { return tracks_.size(); }
  const std::string& track_name(std::uint32_t id) const {
    return tracks_[id].name;
  }

  // ---- recording ----------------------------------------------------------
  void span(std::uint32_t track, const char* category, const char* name,
            Time start, Time end, std::initializer_list<Arg> args = {});
  void instant(std::uint32_t track, const char* category, const char* name,
               Time t, std::initializer_list<Arg> args = {});
  void counter(std::uint32_t track, const char* category, const char* name,
               Time t, double value);

  // ---- inspection / export ------------------------------------------------
  /// Events in recording order (spans are recorded at their *end* time).
  std::vector<TraceEvent> events() const;
  std::size_t size() const { return ring_.size(); }
  std::uint64_t dropped() const { return dropped_; }
  void clear();

  /// Chrome trace-event JSON ("JSON object format"): metadata names every
  /// process/track, events are sorted by timestamp, `ts`/`dur` are in
  /// microseconds as the format requires. Returns the JSON text.
  std::string chrome_json() const;
  /// Write `chrome_json()` to `path`; returns false on I/O failure.
  bool write_chrome_json(const std::string& path) const;

 private:
  struct TrackInfo {
    std::string process;
    std::string name;
    int pid;
    int tid;
  };

  void push(TraceEvent ev);

  std::size_t capacity_;
  std::vector<TraceEvent> ring_;
  std::size_t head_ = 0;  ///< next overwrite slot once the ring is full
  std::uint64_t dropped_ = 0;
  std::vector<TrackInfo> tracks_;
  std::map<std::pair<std::string, std::string>, std::uint32_t> track_ids_;
  std::map<std::string, int> pids_;
};

// ---- thread-scoped sink -----------------------------------------------------
// Each simulation is single-threaded, but the parallel experiment runner
// (src/exp) drives many simulations on concurrent worker threads. The
// installed sink is therefore thread-local: one simulation's events can
// never land in another's sink, and the disabled fast path stays one
// load+branch. Sequential binaries see the old process-global behavior
// (everything happens on the main thread).

namespace detail {
inline TraceSink*& sink_ref() {
  thread_local TraceSink* s = nullptr;
  return s;
}
}  // namespace detail

/// Sink installed on this thread, or nullptr when tracing is disabled.
inline TraceSink* sink() { return detail::sink_ref(); }
inline void set_sink(TraceSink* s) { detail::sink_ref() = s; }
/// True when a sink is installed on this thread (tracing enabled).
inline bool on() { return sink() != nullptr; }

/// RAII: install `s` as this thread's sink for one scope (one simulation,
/// in the parallel runner's case), restoring the previous sink on exit.
class SinkScope {
 public:
  explicit SinkScope(TraceSink* s) : prev_(sink()) { set_sink(s); }
  ~SinkScope() { set_sink(prev_); }
  SinkScope(const SinkScope&) = delete;
  SinkScope& operator=(const SinkScope&) = delete;

 private:
  TraceSink* prev_;
};

/// True when the APN_TRACE environment variable is set to anything but "0".
bool env_enabled();

/// If APN_TRACE is set and no sink is installed on this thread yet,
/// install a process-lifetime sink that writes $APN_TRACE_OUT (default
/// "apn_trace.json") at process exit. Returns the active sink (or nullptr
/// when tracing stays disabled). Called by cluster::Cluster's constructor
/// so every bench/test/example honors APN_TRACE with no code changes.
/// Under the parallel runner each point already has a per-point sink in
/// scope, so this is a no-op there; the shared env sink is only ever fed
/// by one thread at a time (see docs/OBSERVABILITY.md).
TraceSink* init_from_env();

/// Lightweight per-component handle: a (sink, track id) pair that is inert
/// when tracing was disabled at open() time. Copyable and cheap.
class Track {
 public:
  Track() = default;
  Track(TraceSink* s, std::uint32_t id) : sink_(s), id_(id) {}

  /// Open a track on the global sink; inert handle if tracing is off.
  static Track open(const std::string& process, const std::string& name) {
    TraceSink* s = sink();
    if (s == nullptr) return Track{};
    return Track{s, s->track(process, name)};
  }

  explicit operator bool() const { return sink_ != nullptr; }

  void span(const char* category, const char* name, Time start, Time end,
            std::initializer_list<Arg> args = {}) const {
    if (sink_) sink_->span(id_, category, name, start, end, args);
  }
  void instant(const char* category, const char* name, Time t,
               std::initializer_list<Arg> args = {}) const {
    if (sink_) sink_->instant(id_, category, name, t, args);
  }
  void counter(const char* category, const char* name, Time t,
               double value) const {
    if (sink_) sink_->counter(id_, category, name, t, value);
  }

 private:
  TraceSink* sink_ = nullptr;
  std::uint32_t id_ = 0;
};

}  // namespace apn::trace
