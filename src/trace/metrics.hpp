// MetricsRegistry: named counters, gauges, and histograms for aggregate
// observability (the companion to the event-level TraceSink).
//
// Histograms reuse the `common/stats.hpp` accumulators: OnlineStats for
// streaming mean/stddev plus a Samples store for percentiles. Components
// cache a pointer to their metric once (`MetricsRegistry::global()` lookup
// at construction) so the per-event cost is one increment — cheap enough
// to stay on unconditionally. The registry aggregates across every
// simulator built in the process; call `clear()` between runs for
// per-run numbers.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "common/stats.hpp"

namespace apn::trace {

class Counter {
 public:
  void add(std::uint64_t n = 1) { v_ += n; }
  void inc() { add(1); }
  std::uint64_t value() const { return v_; }
  void reset() { v_ = 0; }

 private:
  std::uint64_t v_ = 0;
};

class Gauge {
 public:
  void set(double v) { v_ = v; }
  double value() const { return v_; }
  void reset() { v_ = 0.0; }

 private:
  double v_ = 0.0;
};

class Histogram {
 public:
  void observe(double x) {
    online_.add(x);
    samples_.add(x);
  }
  const OnlineStats& stats() const { return online_; }
  const Samples& samples() const { return samples_; }
  std::size_t count() const { return online_.count(); }
  void reset() {
    online_.reset();
    samples_.reset();
  }

 private:
  OnlineStats online_;
  Samples samples_;
};

class MetricsRegistry {
 public:
  /// Look up or create; references stay valid for the registry's lifetime.
  Counter& counter(const std::string& name) { return counters_[name]; }
  Gauge& gauge(const std::string& name) { return gauges_[name]; }
  Histogram& histogram(const std::string& name) { return histograms_[name]; }

  bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }
  void clear();

  /// Human-readable dump, one metric per line, sorted by name.
  std::string text() const;
  /// JSON dump: {"counters":{...},"gauges":{...},"histograms":{...}}.
  std::string json() const;

  /// Process-wide registry used by the built-in instrumentation.
  static MetricsRegistry& global();

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace apn::trace
