// MetricsRegistry: named counters, gauges, and histograms for aggregate
// observability (the companion to the event-level TraceSink).
//
// Histograms reuse the `common/stats.hpp` accumulators: OnlineStats for
// streaming mean/stddev plus a Samples store for percentiles. Components
// cache a pointer to their metric once (`MetricsRegistry::current()`
// lookup at construction) so the per-event cost is one increment — cheap
// enough to stay on unconditionally.
//
// Scoping: the "current" registry is thread-local, so the parallel
// experiment runner (src/exp) can give every concurrently-executing
// simulation its own registry via `MetricsScope` without the component
// instrumentation changing. On a thread with no scope installed (every
// sequential binary), the current registry is a thread-lifetime default
// that aggregates across every simulator built on that thread — the old
// process-global behavior; call `clear()` between runs for per-run
// numbers.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "common/stats.hpp"

namespace apn::trace {

class Counter {
 public:
  void add(std::uint64_t n = 1) { v_ += n; }
  void inc() { add(1); }
  std::uint64_t value() const { return v_; }
  void reset() { v_ = 0; }

 private:
  std::uint64_t v_ = 0;
};

class Gauge {
 public:
  void set(double v) { v_ = v; }
  double value() const { return v_; }
  void reset() { v_ = 0.0; }

 private:
  double v_ = 0.0;
};

class Histogram {
 public:
  void observe(double x) {
    online_.add(x);
    samples_.add(x);
  }
  const OnlineStats& stats() const { return online_; }
  const Samples& samples() const { return samples_; }
  std::size_t count() const { return online_.count(); }
  void reset() {
    online_.reset();
    samples_.reset();
  }

 private:
  OnlineStats online_;
  Samples samples_;
};

class MetricsRegistry {
 public:
  /// Look up or create; references stay valid for the registry's lifetime.
  Counter& counter(const std::string& name) { return counters_[name]; }
  Gauge& gauge(const std::string& name) { return gauges_[name]; }
  Histogram& histogram(const std::string& name) { return histograms_[name]; }

  bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }
  void clear();

  /// Human-readable dump, one metric per line, sorted by name.
  std::string text() const;
  /// JSON dump: {"counters":{...},"gauges":{...},"histograms":{...}}.
  std::string json() const;

  /// Registry the built-in instrumentation records into on this thread:
  /// the innermost MetricsScope, or a thread-lifetime default.
  static MetricsRegistry& current();
  /// Historical name for current(), kept for callers that predate the
  /// parallel runner.
  static MetricsRegistry& global() { return current(); }

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

/// RAII: make a fresh registry this thread's `current()` for one scope —
/// one simulation, in the parallel runner's case. Component-cached metric
/// pointers stay valid for the scope's lifetime (components are
/// constructed and used inside it). Restores the previous registry on
/// exit; read per-simulation results through `registry()` before then.
class MetricsScope {
 public:
  MetricsScope();
  ~MetricsScope();
  MetricsScope(const MetricsScope&) = delete;
  MetricsScope& operator=(const MetricsScope&) = delete;

  MetricsRegistry& registry() { return mine_; }

 private:
  MetricsRegistry mine_;
  MetricsRegistry* prev_;
};

}  // namespace apn::trace
