#include "apps/bfs/bfs.hpp"

#include <algorithm>
#include <cstring>
#include <limits>

namespace apn::apps::bfs {

namespace {
/// Per-peer count slot written at the end of each level's data burst.
struct CountSlot {
  std::uint64_t level_plus_one;
  std::uint64_t pairs;
};
}  // namespace

struct BfsRun::RankState {
  // Algorithm state (own vertex range).
  std::vector<std::int64_t> parents;
  std::vector<Vertex> frontier;
  std::vector<Vertex> next_frontier;
  std::vector<std::uint32_t> dedup;  ///< per-destination-vertex level stamp
  std::vector<std::vector<std::pair<Vertex, Vertex>>> outbox;  // per peer

  // APEnet transport resources.
  std::vector<cuda::DevPtr> out_dev;  // per peer
  std::vector<cuda::DevPtr> in_dev;   // per src peer
  cuda::DevPtr count_out_dev = 0;  ///< np slots, indexed by destination
  cuda::DevPtr count_in_dev = 0;   ///< np slots, indexed by source
  std::vector<std::uint64_t> reduce_slots;  // np host slots

  // Event pump state.
  std::uint64_t count_events = 0;
  std::uint64_t reduce_events = 0;
  std::function<void()> event_check;

  // minimpi per-peer count staging.
  std::vector<std::uint64_t> counts_out;
  std::vector<std::uint64_t> counts_in;

  Time t_start = 0, t_end = 0;
  Time compute_time = 0, comm_time = 0;
  std::shared_ptr<sim::Gate> ready;
  bool transport_ready = false;  ///< buffers registered + event pump live
};

BfsRun::BfsRun(cluster::Cluster& cluster, BfsConfig config)
    : cluster_(cluster), cfg_(config), np_(cluster.size()) {
  EdgeList el = rmat(cfg_.scale, cfg_.edge_factor, cfg_.seed);
  graph_ = std::make_unique<Csr>(el);
  root_ = pick_root(*graph_, cfg_.root_seed);
  per_rank_ = static_cast<Vertex>(
      (graph_->num_vertices() + static_cast<std::uint64_t>(np_) - 1) /
      static_cast<std::uint64_t>(np_));
  if (cfg_.net == BfsNet::kIb && !cluster_.has_mpi())
    throw std::invalid_argument("BFS: IB net requires an IB cluster");
  if (cfg_.net == BfsNet::kApenet && !cluster_.has_apenet())
    throw std::invalid_argument("BFS: APEnet net requires APEnet+");
}

BfsRun::~BfsRun() = default;

sim::Coro BfsRun::apenet_exchange(int rank, int level,
                                  std::shared_ptr<sim::Gate> done) {
  RankState& st = *ranks_[static_cast<std::size_t>(rank)];
  core::RdmaDevice& rdma = cluster_.rdma(rank);
  cuda::Runtime& cuda = cluster_.node(rank).cuda();
  std::vector<std::shared_ptr<sim::Gate>> tx;

  for (int p = 0; p < np_; ++p) {
    if (p == rank) continue;
    RankState& peer = *ranks_[static_cast<std::size_t>(p)];
    auto& box = st.outbox[static_cast<std::size_t>(p)];
    const std::uint64_t bytes = box.size() * sizeof(std::pair<Vertex, Vertex>);
    if (bytes > 0) {
      // Stage the pair list into the per-peer device buffer (the frontier
      // kernel produced it on the GPU; functional copy is free).
      cuda.move_bytes(st.out_dev[static_cast<std::size_t>(p)],
                      reinterpret_cast<std::uint64_t>(box.data()), bytes);
      core::RdmaDevice::Put d =
          rdma.put(cluster_.coord(p), st.out_dev[static_cast<std::size_t>(p)],
                   bytes, peer.in_dev[static_cast<std::size_t>(rank)],
                   core::MemType::kGpu, true);
      tx.push_back(d.tx_done);
    }
    // Count slot (always sent; carries the level for sanity). Each
    // destination gets its own staging slot: the TX engine reads GPU
    // memory asynchronously, so a shared slot would be overwritten by the
    // next peer's count before the first PUT is served.
    CountSlot slot{static_cast<std::uint64_t>(level) + 1, box.size()};
    std::vector<std::uint8_t> raw(sizeof(CountSlot));
    std::memcpy(raw.data(), &slot, sizeof(slot));
    const std::uint64_t out_slot =
        st.count_out_dev + sizeof(CountSlot) * static_cast<std::uint64_t>(p);
    cuda.move_bytes(out_slot, reinterpret_cast<std::uint64_t>(raw.data()),
                    sizeof(CountSlot));
    core::RdmaDevice::Put c = rdma.put(
        cluster_.coord(p), out_slot, sizeof(CountSlot),
        peer.count_in_dev + sizeof(CountSlot) * static_cast<std::uint64_t>(rank),
        core::MemType::kGpu, true);
    tx.push_back(c.tx_done);
  }

  // Wait for a count slot from every peer (data precedes its count on the
  // FIFO receive path, so all pair lists have landed by then). The target
  // is the absolute cumulative count for this level: fast peers may have
  // delivered their slots before we even got here.
  const std::uint64_t target =
      static_cast<std::uint64_t>(level + 1) *
      static_cast<std::uint64_t>(np_ - 1);
  auto gate = std::make_shared<sim::Gate>(cluster_.simulator());
  st.event_check = [&st, target, gate] {
    if (st.count_events >= target) gate->open();
  };
  st.event_check();
  co_await gate->wait();
  st.event_check = nullptr;

  for (auto& g : tx) co_await g->wait();
  done->open();
}

sim::Coro BfsRun::ib_exchange(int rank, int level,
                              std::shared_ptr<sim::Gate> done) {
  RankState& st = *ranks_[static_cast<std::size_t>(rank)];
  mpi::Rank& mr = cluster_.mpi_rank(rank);
  cuda::Runtime& cuda = cluster_.node(rank).cuda();
  const int tag_count = level * 2;
  const int tag_data = level * 2 + 1;

  std::vector<mpi::Signal> pending;
  for (int p = 0; p < np_; ++p) {
    if (p == rank) continue;
    auto& box = st.outbox[static_cast<std::size_t>(p)];
    st.counts_out[static_cast<std::size_t>(p)] = box.size();
    pending.push_back(mr.send(
        p,
        reinterpret_cast<std::uint64_t>(
            &st.counts_out[static_cast<std::size_t>(p)]),
        sizeof(std::uint64_t), tag_count));
    const std::uint64_t bytes = box.size() * sizeof(std::pair<Vertex, Vertex>);
    if (bytes > 0) {
      cuda.move_bytes(st.out_dev[static_cast<std::size_t>(p)],
                      reinterpret_cast<std::uint64_t>(box.data()), bytes);
      pending.push_back(mr.send(p, st.out_dev[static_cast<std::size_t>(p)],
                                bytes, tag_data));
    }
  }
  // Counts first, then the data recvs we now know exist.
  std::vector<mpi::Signal> count_recvs;
  for (int p = 0; p < np_; ++p) {
    if (p == rank) continue;
    count_recvs.push_back(mr.recv(
        p,
        reinterpret_cast<std::uint64_t>(
            &st.counts_in[static_cast<std::size_t>(p)]),
        sizeof(std::uint64_t), tag_count));
  }
  for (auto& s : count_recvs) co_await s;
  for (int p = 0; p < np_; ++p) {
    if (p == rank) continue;
    const std::uint64_t n = st.counts_in[static_cast<std::size_t>(p)];
    if (n > 0) {
      pending.push_back(mr.recv(p, st.in_dev[static_cast<std::size_t>(p)],
                                n * sizeof(std::pair<Vertex, Vertex>),
                                tag_data));
    }
  }
  for (auto& s : pending) co_await s;
  done->open();
}

sim::Coro BfsRun::rank_main(int rank) {
  RankState& st = *ranks_[static_cast<std::size_t>(rank)];
  sim::Simulator& sim = cluster_.simulator();
  const Vertex vlo = lo(rank), vhi = hi(rank);
  const gpu::GpuArch& arch = cluster_.node(rank).gpu(0).arch();

  // ---- setup: register transport buffers (first traversal only) --------
  if (cfg_.net == BfsNet::kApenet && !st.transport_ready) {
    core::RdmaDevice& rdma = cluster_.rdma(rank);
    for (int p = 0; p < np_; ++p) {
      if (p == rank) continue;
      const std::uint64_t cap =
          static_cast<std::uint64_t>(hi(rank) - lo(rank)) *
          sizeof(std::pair<Vertex, Vertex>);
      co_await rdma.register_buffer(st.in_dev[static_cast<std::size_t>(p)],
                                    std::max<std::uint64_t>(cap, 64),
                                    core::MemType::kGpu);
      const std::uint64_t out_cap =
          static_cast<std::uint64_t>(hi(p) - lo(p)) *
          sizeof(std::pair<Vertex, Vertex>);
      co_await rdma.register_buffer(st.out_dev[static_cast<std::size_t>(p)],
                                    std::max<std::uint64_t>(out_cap, 64),
                                    core::MemType::kGpu);
    }
    co_await rdma.register_buffer(
        st.count_in_dev, sizeof(CountSlot) * static_cast<std::uint64_t>(np_),
        core::MemType::kGpu);
    co_await rdma.register_buffer(
        st.count_out_dev, sizeof(CountSlot) * static_cast<std::uint64_t>(np_),
        core::MemType::kGpu);
    co_await rdma.register_buffer(
        reinterpret_cast<std::uint64_t>(st.reduce_slots.data()),
        st.reduce_slots.size() * sizeof(std::uint64_t), core::MemType::kHost);

    // Event pump: classifies every inbound completion.
    [](BfsRun* self, int rank) -> sim::Coro {
      RankState& st = *self->ranks_[static_cast<std::size_t>(rank)];
      core::RdmaDevice& rdma = self->cluster_.rdma(rank);
      for (;;) {
        core::RdmaEvent ev = co_await rdma.events().pop();
        const std::uint64_t reduce_base =
            reinterpret_cast<std::uint64_t>(st.reduce_slots.data());
        if (ev.vaddr >= st.count_in_dev &&
            ev.vaddr < st.count_in_dev + sizeof(CountSlot) *
                                             static_cast<std::uint64_t>(
                                                 self->np_)) {
          ++st.count_events;
        } else if (ev.vaddr >= reduce_base &&
                   ev.vaddr < reduce_base + st.reduce_slots.size() *
                                                sizeof(std::uint64_t)) {
          ++st.reduce_events;
        }
        if (st.event_check) st.event_check();
      }
    }(this, rank);
    st.transport_ready = true;
  }

  if (++ready_count_ == np_)
    for (auto& r : ranks_) r->ready->open();
  co_await st.ready->wait();
  st.t_start = sim.now();

  // ---- BFS --------------------------------------------------------------
  st.parents.assign(vhi - vlo, kUnreached);
  st.dedup.assign(graph_->num_vertices(), 0);
  if (owner(root_) == static_cast<Vertex>(rank)) {
    st.parents[root_ - vlo] = root_;
    st.frontier.push_back(root_);
  }

  cuda::Stream stream(cluster_.node(rank).cuda(), 0);
  int level = 0;
  for (;; ++level) {
    // -- frontier expansion kernel ------------------------------------
    Time tk0 = sim.now();
    std::uint64_t edges_scanned = 0;
    for (int p = 0; p < np_; ++p)
      st.outbox[static_cast<std::size_t>(p)].clear();
    st.next_frontier.clear();
    const std::uint32_t stamp = static_cast<std::uint32_t>(level) + 1;
    for (Vertex v : st.frontier) {
      edges_scanned += graph_->degree(v);
      for (Vertex w : graph_->neighbors(v)) {
        if (st.dedup[w] == stamp) continue;
        st.dedup[w] = stamp;
        Vertex o = owner(w);
        if (o == static_cast<Vertex>(rank)) {
          if (st.parents[w - vlo] == kUnreached) {
            st.parents[w - vlo] = v;
            st.next_frontier.push_back(w);
          }
        } else {
          st.outbox[o].emplace_back(w, v);
        }
      }
    }
    co_await stream.launch_kernel(
        arch.kernel_launch_overhead +
        units::transfer_time(Bytes(edges_scanned),
                             arch.edge_scan_rate));
    st.compute_time += sim.now() - tk0;

    // -- all-to-all pair exchange ----------------------------------------
    if (np_ > 1) {
      Time tc0 = sim.now();
      auto done = std::make_shared<sim::Gate>(sim);
      if (cfg_.net == BfsNet::kApenet) {
        apenet_exchange(rank, level, done);
      } else {
        ib_exchange(rank, level, done);
      }
      co_await done->wait();

      // -- integrate inbound pairs (second kernel) ---------------------
      std::uint64_t inbound = 0;
      cuda::Runtime& cuda = cluster_.node(rank).cuda();
      for (int p = 0; p < np_; ++p) {
        if (p == rank) continue;
        std::uint64_t pairs = 0;
        if (cfg_.net == BfsNet::kApenet) {
          CountSlot slot{};
          std::vector<std::uint8_t> raw(sizeof(CountSlot));
          cuda.move_bytes(reinterpret_cast<std::uint64_t>(raw.data()),
                          st.count_in_dev + sizeof(CountSlot) *
                                                static_cast<std::uint64_t>(p),
                          sizeof(CountSlot));
          std::memcpy(&slot, raw.data(), sizeof(slot));
          pairs = slot.pairs;
        } else {
          pairs = st.counts_in[static_cast<std::size_t>(p)];
        }
        if (pairs == 0) continue;
        inbound += pairs;
        std::vector<std::pair<Vertex, Vertex>> buf(pairs);
        cuda.move_bytes(reinterpret_cast<std::uint64_t>(buf.data()),
                        st.in_dev[static_cast<std::size_t>(p)],
                        pairs * sizeof(std::pair<Vertex, Vertex>));
        for (auto [w, parent] : buf) {
          if (st.parents[w - vlo] == kUnreached) {
            st.parents[w - vlo] = parent;
            st.next_frontier.push_back(w);
          }
        }
      }
      st.comm_time += sim.now() - tc0;
      if (inbound > 0) {
        Time ti0 = sim.now();
        co_await stream.launch_kernel(
            arch.kernel_launch_overhead +
            units::transfer_time(Bytes(inbound), arch.edge_scan_rate));
        st.compute_time += sim.now() - ti0;
      }
    }

    // -- global termination test ------------------------------------------
    std::uint64_t global_next = st.next_frontier.size();
    if (np_ > 1) {
      Time tr0 = sim.now();
      if (cfg_.net == BfsNet::kApenet) {
        core::RdmaDevice& rdma = cluster_.rdma(rank);
        st.reduce_slots[static_cast<std::size_t>(rank)] =
            st.next_frontier.size();
        for (int p = 0; p < np_; ++p) {
          if (p == rank) continue;
          RankState& peer = *ranks_[static_cast<std::size_t>(p)];
          rdma.put(cluster_.coord(p),
                   reinterpret_cast<std::uint64_t>(
                       &st.reduce_slots[static_cast<std::size_t>(rank)]),
                   sizeof(std::uint64_t),
                   reinterpret_cast<std::uint64_t>(
                       &peer.reduce_slots[static_cast<std::size_t>(rank)]),
                   core::MemType::kHost, true);
        }
        const std::uint64_t target =
            static_cast<std::uint64_t>(level + 1) *
            static_cast<std::uint64_t>(np_ - 1);
        auto gate = std::make_shared<sim::Gate>(sim);
        st.event_check = [&st, target, gate] {
          if (st.reduce_events >= target) gate->open();
        };
        st.event_check();
        co_await gate->wait();
        st.event_check = nullptr;
        global_next = 0;
        for (int p = 0; p < np_; ++p)
          global_next += st.reduce_slots[static_cast<std::size_t>(p)];
      } else {
        mpi::Rank& mr = cluster_.mpi_rank(rank);
        co_await mr.allreduce_sum(&global_next);
      }
      st.comm_time += sim.now() - tr0;
    }

    st.frontier.swap(st.next_frontier);
    if (global_next == 0) break;
  }

  st.t_end = sim.now();
  if (rank == 0) max_level_ = level;

  // Gather parents for validation (outside the timed region).
  for (Vertex v = vlo; v < vhi; ++v)
    final_parents_[v] = st.parents[v - vlo];
}

BfsMetrics BfsRun::run() {
  sim::Simulator& sim = cluster_.simulator();
  ready_count_ = 0;
  final_parents_.assign(graph_->num_vertices(), kUnreached);

  if (ranks_.empty()) {
    for (int r = 0; r < np_; ++r) {
      auto st = std::make_unique<RankState>();
      st->outbox.resize(static_cast<std::size_t>(np_));
      st->out_dev.resize(static_cast<std::size_t>(np_));
      st->in_dev.resize(static_cast<std::size_t>(np_));
      cuda::Runtime& cuda = cluster_.node(r).cuda();
      for (int p = 0; p < np_; ++p) {
        if (p == r) continue;
        const std::uint64_t out_cap = std::max<std::uint64_t>(
            static_cast<std::uint64_t>(hi(p) - lo(p)) *
                sizeof(std::pair<Vertex, Vertex>),
            64);
        const std::uint64_t in_cap = std::max<std::uint64_t>(
            static_cast<std::uint64_t>(hi(r) - lo(r)) *
                sizeof(std::pair<Vertex, Vertex>),
            64);
        st->out_dev[static_cast<std::size_t>(p)] =
            cuda.malloc_device(0, out_cap);
        st->in_dev[static_cast<std::size_t>(p)] =
            cuda.malloc_device(0, in_cap);
      }
      st->count_out_dev = cuda.malloc_device(
          0, sizeof(CountSlot) * static_cast<std::uint64_t>(np_));
      st->count_in_dev = cuda.malloc_device(
          0, sizeof(CountSlot) * static_cast<std::uint64_t>(np_));
      ranks_.push_back(std::move(st));
    }
  }

  // Per-traversal reset (states persist across run_roots iterations so the
  // registrations and the event pump survive; every event of the previous
  // traversal has been consumed by its completion).
  for (auto& st : ranks_) {
    st->ready = std::make_shared<sim::Gate>(sim);
    st->reduce_slots.assign(static_cast<std::size_t>(np_), 0);
    st->counts_out.assign(static_cast<std::size_t>(np_), 0);
    st->counts_in.assign(static_cast<std::size_t>(np_), 0);
    st->frontier.clear();
    st->next_frontier.clear();
    st->count_events = 0;
    st->reduce_events = 0;
    st->event_check = nullptr;
    st->t_start = st->t_end = 0;
    st->compute_time = st->comm_time = 0;
  }

  for (int r = 0; r < np_; ++r) rank_main(r);
  sim.run();

  BfsMetrics m;
  Time wall = 0;
  for (auto& st : ranks_) wall = std::max(wall, st->t_end - st->t_start);
  m.wall = wall;
  m.levels = max_level_ + 1;
  std::vector<std::int64_t> levels = bfs_levels(*graph_, root_);
  m.edges_traversed = traversed_edges(*graph_, levels);
  m.teps = wall > 0 ? static_cast<double>(m.edges_traversed) /
                          units::to_sec(wall)
                    : 0.0;
  m.compute_time = ranks_[0]->compute_time;
  m.comm_time = ranks_[0]->comm_time;
  m.validated = validate_parents(*graph_, root_, final_parents_);
  return m;
}

BfsSummary BfsRun::run_roots(int n) {
  BfsSummary s;
  s.roots = n;
  s.all_validated = true;
  double inv_sum = 0;
  s.min_teps = std::numeric_limits<double>::infinity();
  for (int i = 0; i < n; ++i) {
    root_ =
        pick_root(*graph_, cfg_.root_seed + static_cast<std::uint64_t>(i));
    BfsMetrics m = run();
    s.all_validated = s.all_validated && m.validated;
    inv_sum += 1.0 / m.teps;
    s.min_teps = std::min(s.min_teps, m.teps);
    s.max_teps = std::max(s.max_teps, m.teps);
  }
  s.harmonic_mean_teps = static_cast<double>(n) / inv_sum;
  return s;
}

}  // namespace apn::apps::bfs
