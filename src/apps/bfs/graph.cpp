#include "apps/bfs/graph.hpp"

#include <algorithm>
#include <deque>
#include <numeric>
#include <string>

namespace apn::apps::bfs {

EdgeList rmat(int scale, int edge_factor, std::uint64_t seed) {
  const std::uint64_t n = 1ull << scale;
  const std::uint64_t m = n * static_cast<std::uint64_t>(edge_factor);
  Rng rng(seed);

  // Vertex permutation to de-correlate degree and label.
  std::vector<Vertex> perm(n);
  std::iota(perm.begin(), perm.end(), 0u);
  for (std::uint64_t i = n - 1; i > 0; --i) {
    std::uint64_t j = rng.next_below(i + 1);
    std::swap(perm[i], perm[j]);
  }

  constexpr double kA = 0.57, kB = 0.19, kC = 0.19;
  EdgeList el;
  el.n_vertices = n;
  el.edges.reserve(m);
  for (std::uint64_t e = 0; e < m; ++e) {
    std::uint64_t u = 0, v = 0;
    for (int bit = 0; bit < scale; ++bit) {
      double r = rng.next_double();
      u <<= 1;
      v <<= 1;
      if (r < kA) {
        // top-left: nothing set
      } else if (r < kA + kB) {
        v |= 1;
      } else if (r < kA + kB + kC) {
        u |= 1;
      } else {
        u |= 1;
        v |= 1;
      }
    }
    el.edges.emplace_back(perm[u], perm[v]);
  }
  return el;
}

Csr::Csr(const EdgeList& el) : n_(el.n_vertices) {
  row_.assign(n_ + 1, 0);
  for (auto [u, v] : el.edges) {
    if (u == v) continue;
    ++row_[u + 1];
    ++row_[v + 1];
    ++input_edges_;
  }
  for (std::uint64_t i = 0; i < n_; ++i) row_[i + 1] += row_[i];
  cols_.resize(row_[n_]);
  std::vector<std::uint64_t> fill(row_.begin(), row_.end() - 1);
  for (auto [u, v] : el.edges) {
    if (u == v) continue;
    cols_[fill[u]++] = v;
    cols_[fill[v]++] = u;
  }
}

std::vector<std::int64_t> bfs_levels(const Csr& g, Vertex root) {
  std::vector<std::int64_t> level(g.num_vertices(), kUnreached);
  std::deque<Vertex> q;
  level[root] = 0;
  q.push_back(root);
  while (!q.empty()) {
    Vertex v = q.front();
    q.pop_front();
    for (Vertex w : g.neighbors(v)) {
      if (level[w] == kUnreached) {
        level[w] = level[v] + 1;
        q.push_back(w);
      }
    }
  }
  return level;
}

bool validate_parents(const Csr& g, Vertex root,
                      std::span<const std::int64_t> parents,
                      std::string* error) {
  auto fail = [&](const std::string& msg) {
    if (error != nullptr) *error = msg;
    return false;
  };
  const std::uint64_t n = g.num_vertices();
  if (parents.size() != n) return fail("parent array size mismatch");
  if (parents[root] != static_cast<std::int64_t>(root))
    return fail("root is not its own parent");

  // Derive levels by chasing parents with a path-length bound.
  std::vector<std::int64_t> level(n, kUnreached);
  level[root] = 0;
  for (std::uint64_t v = 0; v < n; ++v) {
    if (parents[v] == kUnreached || level[v] != kUnreached) continue;
    // Walk up to the root or a vertex with a known level.
    std::vector<Vertex> chain;
    Vertex cur = static_cast<Vertex>(v);
    while (level[cur] == kUnreached) {
      chain.push_back(cur);
      std::int64_t p = parents[cur];
      if (p == kUnreached) return fail("reached vertex with unreached parent");
      if (chain.size() > n) return fail("parent cycle detected");
      cur = static_cast<Vertex>(p);
    }
    std::int64_t base = level[cur];
    for (auto it = chain.rbegin(); it != chain.rend(); ++it)
      level[*it] = ++base;
  }

  // Every tree edge must exist, and BFS levels differ by exactly 1.
  for (std::uint64_t v = 0; v < n; ++v) {
    if (parents[v] == kUnreached || v == root) continue;
    Vertex p = static_cast<Vertex>(parents[v]);
    bool found = false;
    for (Vertex w : g.neighbors(p)) {
      if (w == v) {
        found = true;
        break;
      }
    }
    if (!found) return fail("parent edge not present in graph");
    if (level[v] != level[p] + 1) return fail("level inconsistency");
  }

  // Reachability must match the reference BFS exactly.
  std::vector<std::int64_t> ref = bfs_levels(g, root);
  for (std::uint64_t v = 0; v < n; ++v) {
    if ((ref[v] == kUnreached) != (parents[v] == kUnreached))
      return fail("reachability mismatch");
    if (ref[v] != kUnreached && level[v] != ref[v])
      return fail("level differs from reference BFS");
  }
  return true;
}

std::uint64_t traversed_edges(const Csr& g,
                              std::span<const std::int64_t> levels) {
  std::uint64_t e2 = 0;  // directed count within the component
  for (std::uint64_t v = 0; v < g.num_vertices(); ++v) {
    if (levels[v] == kUnreached) continue;
    e2 += g.degree(static_cast<Vertex>(v));
  }
  return e2 / 2;
}

Vertex pick_root(const Csr& g, std::uint64_t seed) {
  Rng rng(seed);
  for (;;) {
    Vertex v = static_cast<Vertex>(rng.next_below(g.num_vertices()));
    if (g.degree(v) > 0) return v;
  }
}

}  // namespace apn::apps::bfs
