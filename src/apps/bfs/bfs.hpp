// Distributed level-synchronous BFS over a cluster of (simulated) GPUs —
// the paper's §V-E application (Table IV, Fig. 12).
//
// 1-D block partition of the vertices across ranks. Per level, each rank:
//   * scans the adjacency of its local frontier (GPU kernel, timed via the
//     edge-scan rate of the GPU model),
//   * deduplicates destinations per remote owner and exchanges (child,
//     parent) pairs with every other rank — the all-to-all pattern the
//     paper calls out as stressing the interconnect,
//   * integrates inbound pairs into its local parent array and next
//     frontier (second GPU kernel),
//   * joins a global sum of next-frontier sizes to detect termination.
//
// Transports: APEnet+ RDMA PUTs between pre-registered per-peer GPU
// buffers (P2P=ON — how the paper's APEnet+ BFS [17] works), or minimpi
// over IB (the MPI reference). Payloads are always real bytes: the
// resulting parent tree is validated against a sequential reference.
#pragma once

#include <memory>

#include "apps/bfs/graph.hpp"
#include "cluster/cluster.hpp"

namespace apn::apps::bfs {

enum class BfsNet { kApenet, kIb };

struct BfsConfig {
  int scale = 12;
  int edge_factor = 16;
  std::uint64_t seed = 1;
  BfsNet net = BfsNet::kApenet;
  std::uint64_t root_seed = 7;
};

struct BfsMetrics {
  Time wall = 0;
  double teps = 0;
  std::uint64_t edges_traversed = 0;
  int levels = 0;
  Time compute_time = 0;  ///< rank 0: kernel time
  Time comm_time = 0;     ///< rank 0: exchange + reduction wait
  bool validated = false;
};

/// Aggregate over several search keys, as graph500 reports them.
struct BfsSummary {
  int roots = 0;
  double harmonic_mean_teps = 0;  ///< the official graph500 statistic
  double min_teps = 0;
  double max_teps = 0;
  bool all_validated = false;
};

class BfsRun {
 public:
  /// The graph is built once up front (it is the same on every node).
  BfsRun(cluster::Cluster& cluster, BfsConfig config);
  ~BfsRun();

  BfsMetrics run();

  /// graph500-style multi-root evaluation: `n` distinct search keys over
  /// the same graph, each a full timed traversal, harmonic-mean TEPS.
  BfsSummary run_roots(int n);

  const Csr& graph() const { return *graph_; }
  Vertex root() const { return root_; }

 private:
  struct RankState;
  sim::Coro rank_main(int rank);
  sim::Coro apenet_exchange(int rank, int level,
                            std::shared_ptr<sim::Gate> done);
  sim::Coro ib_exchange(int rank, int level,
                        std::shared_ptr<sim::Gate> done);

  Vertex owner(Vertex v) const {
    Vertex o = v / per_rank_;
    return o >= static_cast<Vertex>(np_) ? static_cast<Vertex>(np_ - 1) : o;
  }
  Vertex lo(int rank) const { return static_cast<Vertex>(rank) * per_rank_; }
  Vertex hi(int rank) const {
    return rank + 1 == np_
               ? static_cast<Vertex>(graph_->num_vertices())
               : static_cast<Vertex>(rank + 1) * per_rank_;
  }

  cluster::Cluster& cluster_;
  BfsConfig cfg_;
  int np_;
  Vertex per_rank_ = 0;
  std::unique_ptr<Csr> graph_;
  Vertex root_ = 0;
  std::vector<std::unique_ptr<RankState>> ranks_;
  int ready_count_ = 0;
  std::vector<std::int64_t> final_parents_;
  int max_level_ = 0;
};

}  // namespace apn::apps::bfs
