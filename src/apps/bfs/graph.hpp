// Graph500-style graph machinery for the distributed BFS application
// (paper §V-E): RMAT generator, CSR representation, a sequential reference
// BFS and a graph500-like parent-tree validator.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hpp"

namespace apn::apps::bfs {

using Vertex = std::uint32_t;
constexpr std::int64_t kUnreached = -1;

struct EdgeList {
  std::uint64_t n_vertices = 0;
  std::vector<std::pair<Vertex, Vertex>> edges;
};

/// Kronecker/RMAT generator with the graph500 parameters
/// (A,B,C,D) = (0.57, 0.19, 0.19, 0.05); 2^scale vertices,
/// edge_factor * 2^scale edges, with vertex-label shuffling.
EdgeList rmat(int scale, int edge_factor, std::uint64_t seed);

/// Compressed sparse rows over the *undirected* version of an edge list
/// (each input edge contributes both directions; self-loops dropped,
/// multi-edges kept, as graph500 allows).
class Csr {
 public:
  explicit Csr(const EdgeList& el);

  std::uint64_t num_vertices() const { return n_; }
  std::uint64_t num_directed_edges() const { return cols_.size(); }
  /// Undirected edge count as graph500 counts it for TEPS (input edges
  /// minus self loops).
  std::uint64_t num_input_edges() const { return input_edges_; }

  std::uint32_t degree(Vertex v) const {
    return static_cast<std::uint32_t>(row_[v + 1] - row_[v]);
  }
  std::span<const Vertex> neighbors(Vertex v) const {
    return {cols_.data() + row_[v], cols_.data() + row_[v + 1]};
  }

 private:
  std::uint64_t n_ = 0;
  std::uint64_t input_edges_ = 0;
  std::vector<std::uint64_t> row_;
  std::vector<Vertex> cols_;
};

/// Sequential level-synchronous BFS: levels[v] = depth or kUnreached.
std::vector<std::int64_t> bfs_levels(const Csr& g, Vertex root);

/// graph500-style validation of a parent tree against the graph:
/// root is its own parent; every reached vertex's parent edge exists and
/// levels are consistent (level[v] == level[parent[v]] + 1).
bool validate_parents(const Csr& g, Vertex root,
                      std::span<const std::int64_t> parents,
                      std::string* error = nullptr);

/// Edges within the traversed component (counted once per undirected
/// edge), the TEPS numerator.
std::uint64_t traversed_edges(const Csr& g,
                              std::span<const std::int64_t> levels);

/// A root with nonzero degree (graph500 picks search keys this way).
Vertex pick_root(const Csr& g, std::uint64_t seed);

}  // namespace apn::apps::bfs
