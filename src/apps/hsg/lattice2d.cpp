#include "apps/hsg/lattice2d.hpp"

#include <cstring>
#include <stdexcept>

namespace apn::apps::hsg {

Slab2d::Slab2d(int L, int lz, int ly, int z_offset, int y_offset)
    : L_(L), lz_(lz), ly_(ly), z_offset_(z_offset), y_offset_(y_offset) {
  if (L < 2 || lz < 1 || ly < 1)
    throw std::invalid_argument("bad 2-D slab shape");
  spins_.resize(static_cast<std::size_t>(lz + 2) *
                static_cast<std::size_t>(ly + 2) *
                static_cast<std::size_t>(L));
}

void Slab2d::randomize(std::uint64_t seed) {
  for (int z = 1; z <= lz_; ++z)
    for (int y = 1; y <= ly_; ++y)
      for (int x = 0; x < L_; ++x)
        at(z, y, x) = deterministic_spin(seed, (gz(z) % L_ + L_) % L_,
                                         (gy(y) % L_ + L_) % L_, x);
}

void Slab2d::update_site(int z, int y, int x) {
  int xp = x + 1 == L_ ? 0 : x + 1;
  int xm = x == 0 ? L_ - 1 : x - 1;
  const Spin& a = at(z, y, xp);
  const Spin& b = at(z, y, xm);
  const Spin& c = at(z, y + 1, x);
  const Spin& d = at(z, y - 1, x);
  const Spin& e = at(z + 1, y, x);
  const Spin& f = at(z - 1, y, x);
  double hx = static_cast<double>(a.x) + b.x + c.x + d.x + e.x + f.x;
  double hy = static_cast<double>(a.y) + b.y + c.y + d.y + e.y + f.y;
  double hz = static_cast<double>(a.z) + b.z + c.z + d.z + e.z + f.z;
  Spin& s = at(z, y, x);
  double hh = hx * hx + hy * hy + hz * hz;
  if (hh == 0.0) return;
  double sh = s.x * hx + s.y * hy + s.z * hz;
  double fac = 2.0 * sh / hh;
  s = Spin{static_cast<float>(fac * hx - s.x),
           static_cast<float>(fac * hy - s.y),
           static_cast<float>(fac * hz - s.z)};
}

void Slab2d::update_range(int z0, int z1, int y0, int y1, int parity) {
  for (int z = z0; z <= z1; ++z)
    for (int y = y0; y <= y1; ++y)
      for (int x = 0; x < L_; ++x)
        if (site_parity(z, y, x) == parity) update_site(z, y, x);
}

void Slab2d::update_interior(int parity) {
  update_range(1, lz_, 1, ly_, parity);
}

void Slab2d::update_boundary(int parity) {
  update_range(1, 1, 1, ly_, parity);  // z-low face
  if (lz_ > 1) update_range(lz_, lz_, 1, ly_, parity);
  // y faces, excluding the z rows already done.
  int z0 = std::min(2, lz_ + 1), z1 = lz_ - 1;
  if (z0 <= z1) {
    update_range(z0, z1, 1, 1, parity);
    if (ly_ > 1) update_range(z0, z1, ly_, ly_, parity);
  }
}

void Slab2d::update_bulk(int parity) {
  if (lz_ > 2 && ly_ > 2) update_range(2, lz_ - 1, 2, ly_ - 1, parity);
}

double Slab2d::owned_energy() const {
  double e = 0.0;
  for (int z = 1; z <= lz_; ++z)
    for (int y = 1; y <= ly_; ++y)
      for (int x = 0; x < L_; ++x) {
        int xp = x + 1 == L_ ? 0 : x + 1;
        const Spin& s = at(z, y, x);
        const Spin& sx = at(z, y, xp);
        const Spin& sy = at(z, y + 1, x);  // halo when y == ly
        const Spin& sz = at(z + 1, y, x);  // halo when z == lz
        e -= static_cast<double>(s.x) * sx.x +
             static_cast<double>(s.y) * sx.y +
             static_cast<double>(s.z) * sx.z;
        e -= static_cast<double>(s.x) * sy.x +
             static_cast<double>(s.y) * sy.y +
             static_cast<double>(s.z) * sy.z;
        e -= static_cast<double>(s.x) * sz.x +
             static_cast<double>(s.y) * sz.y +
             static_cast<double>(s.z) * sz.z;
      }
  return e;
}

namespace {
struct FaceIter {
  int z0, z1, y0, y1;
};
}  // namespace

void Slab2d::pack_face(Face face, int parity,
                       std::vector<std::uint8_t>& out) const {
  FaceIter it{};
  switch (face) {
    case Face::kZlow: it = {1, 1, 1, ly_}; break;
    case Face::kZhigh: it = {lz_, lz_, 1, ly_}; break;
    case Face::kYlow: it = {1, lz_, 1, 1}; break;
    case Face::kYhigh: it = {1, lz_, ly_, ly_}; break;
  }
  out.clear();
  out.reserve(face_parity_bytes(face));
  for (int z = it.z0; z <= it.z1; ++z)
    for (int y = it.y0; y <= it.y1; ++y)
      for (int x = 0; x < L_; ++x) {
        if (site_parity(z, y, x) != parity) continue;
        const Spin& s = at(z, y, x);
        const auto* p = reinterpret_cast<const std::uint8_t*>(&s);
        out.insert(out.end(), p, p + sizeof(Spin));
      }
}

void Slab2d::unpack_face(Face face, int parity,
                         std::span<const std::uint8_t> in) {
  FaceIter it{};
  switch (face) {
    case Face::kZlow: it = {0, 0, 1, ly_}; break;
    case Face::kZhigh: it = {lz_ + 1, lz_ + 1, 1, ly_}; break;
    case Face::kYlow: it = {1, lz_, 0, 0}; break;
    case Face::kYhigh: it = {1, lz_, ly_ + 1, ly_ + 1}; break;
  }
  std::size_t pos = 0;
  for (int z = it.z0; z <= it.z1; ++z)
    for (int y = it.y0; y <= it.y1; ++y)
      for (int x = 0; x < L_; ++x) {
        if (site_parity(z, y, x) != parity) continue;
        if (pos + sizeof(Spin) > in.size())
          throw std::runtime_error("face payload too short");
        Spin s;
        std::memcpy(&s, in.data() + pos, sizeof(Spin));
        at(z, y, x) = s;
        pos += sizeof(Spin);
      }
}

}  // namespace apn::apps::hsg
