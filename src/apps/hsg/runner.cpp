#include "apps/hsg/runner.hpp"

#include <algorithm>

#include "apps/hsg/host_buf.hpp"
#include <cstring>
#include <stdexcept>

namespace apn::apps::hsg {

namespace {
constexpr int kDown = 0;  // toward rank-1 (lower z)
constexpr int kUp = 1;    // toward rank+1 (higher z)
}  // namespace

struct HsgRun::RankState {
  std::unique_ptr<Slab> slab;  // functional mode only
  // Device halo buffers (one per direction).
  cuda::DevPtr send_dev[2] = {0, 0};
  cuda::DevPtr recv_dev[2] = {0, 0};
  // Host bounces (staging modes); page-aligned so staged timing is
  // reproducible under ASLR.
  HostBuf send_host[2];
  HostBuf recv_host[2];
  std::vector<std::uint8_t> pack_buf[2];

  Time t_start = 0;
  Time t_end = 0;
  Time boundary_time = 0;
  Time comm_time = 0;
  std::shared_ptr<sim::Gate> ready;
};

HsgRun::HsgRun(cluster::Cluster& cluster, HsgConfig config)
    : cluster_(cluster), cfg_(config), np_(cluster.size()) {
  if (cfg_.L % 2 != 0) throw std::invalid_argument("HSG: L must be even");
  if (cfg_.L % np_ != 0)
    throw std::invalid_argument("HSG: L must be divisible by NP");
  local_z_ = cfg_.L / np_;
  if (cfg_.mode == CommMode::kIb && !cluster_.has_mpi())
    throw std::invalid_argument("HSG: IB mode requires an IB cluster");
  if (cfg_.mode != CommMode::kIb && !cluster_.has_apenet())
    throw std::invalid_argument("HSG: P2P modes require APEnet+");
}

HsgRun::~HsgRun() = default;

const Slab& HsgRun::slab(int rank) const {
  return *ranks_.at(static_cast<std::size_t>(rank))->slab;
}

Time HsgRun::spin_time(int rank) const {
  const gpu::GpuArch& arch = cluster_.node(rank).gpu(0).arch();
  const std::uint64_t local_bytes =
      static_cast<std::uint64_t>(cfg_.L) * cfg_.L * (local_z_ + 2) *
      sizeof(Spin) * 2;  // double-buffered layout
  Time t = arch.spin_update_time;
  if (local_bytes > cfg_.cache_pressure_bytes)
    t = static_cast<Time>(static_cast<double>(t) *
                          cfg_.cache_pressure_factor);
  return t;
}

Time HsgRun::kernel_time(int rank, std::uint64_t sites) const {
  const gpu::GpuArch& arch = cluster_.node(rank).gpu(0).arch();
  double occ = 1.0;
  if (sites > 0 && sites < cfg_.occupancy_knee_sites) {
    occ = std::min(cfg_.occupancy_cap,
                   std::sqrt(static_cast<double>(cfg_.occupancy_knee_sites) /
                             static_cast<double>(sites)));
  }
  return arch.kernel_launch_overhead +
         static_cast<Time>(static_cast<double>(sites) *
                           static_cast<double>(spin_time(rank)) * occ);
}

sim::Coro HsgRun::exchange_phase(int rank, int parity,
                                 std::shared_ptr<sim::Gate> done) {
  RankState& st = *ranks_[static_cast<std::size_t>(rank)];
  const std::uint64_t plane_bytes =
      static_cast<std::uint64_t>(cfg_.L) * cfg_.L / 2 * sizeof(Spin);
  const int down = (rank + np_ - 1) % np_;
  const int up = (rank + 1) % np_;

  if (np_ == 1) {
    // Periodic wrap within the single slab: free on-device copies.
    if (cfg_.functional && st.slab) {
      st.slab->pack_parity_plane(local_z_, parity, st.pack_buf[kDown]);
      st.slab->unpack_parity_plane(0, parity, st.pack_buf[kDown]);
      st.slab->pack_parity_plane(1, parity, st.pack_buf[kUp]);
      st.slab->unpack_parity_plane(local_z_ + 1, parity, st.pack_buf[kUp]);
    }
    done->open();
    co_return;
  }

  // ---- IB / minimpi path ---------------------------------------------------
  if (cfg_.mode == CommMode::kIb) {
    mpi::Rank& mr = cluster_.mpi_rank(rank);
    if (cfg_.functional && st.slab) {
      st.slab->pack_parity_plane(1, parity, st.pack_buf[kDown]);
      cluster_.node(rank).cuda().move_bytes(
          st.send_dev[kDown],
          reinterpret_cast<std::uint64_t>(st.pack_buf[kDown].data()),
          plane_bytes);
      st.slab->pack_parity_plane(local_z_, parity, st.pack_buf[kUp]);
      cluster_.node(rank).cuda().move_bytes(
          st.send_dev[kUp],
          reinterpret_cast<std::uint64_t>(st.pack_buf[kUp].data()),
          plane_bytes);
    }
    const int tag_down = parity * 2 + 0;  // plane heading to lower z
    const int tag_up = parity * 2 + 1;
    mpi::Signal s1 = mr.send(down, st.send_dev[kDown], plane_bytes, tag_down);
    mpi::Signal s2 = mr.send(up, st.send_dev[kUp], plane_bytes, tag_up);
    // Our lower halo (plane 0) arrives from `down`, who sent it "up".
    mpi::Signal r1 = mr.recv(down, st.recv_dev[kDown], plane_bytes, tag_up);
    mpi::Signal r2 = mr.recv(up, st.recv_dev[kUp], plane_bytes, tag_down);
    co_await s1;
    co_await s2;
    co_await r1;
    co_await r2;
    if (cfg_.functional && st.slab) {
      std::vector<std::uint8_t> tmp(plane_bytes);
      cluster_.node(rank).cuda().move_bytes(
          reinterpret_cast<std::uint64_t>(tmp.data()), st.recv_dev[kDown],
          plane_bytes);
      st.slab->unpack_parity_plane(0, parity, tmp);
      cluster_.node(rank).cuda().move_bytes(
          reinterpret_cast<std::uint64_t>(tmp.data()), st.recv_dev[kUp],
          plane_bytes);
      st.slab->unpack_parity_plane(local_z_ + 1, parity, tmp);
    }
    done->open();
    co_return;
  }

  // ---- APEnet+ RDMA paths -----------------------------------------------------
  core::RdmaDevice& rdma = cluster_.rdma(rank);
  cuda::Runtime& cuda = cluster_.node(rank).cuda();
  RankState& dst_down = *ranks_[static_cast<std::size_t>(down)];
  RankState& dst_up = *ranks_[static_cast<std::size_t>(up)];

  // Pack both outgoing parity planes (on-GPU pack, folded into the
  // boundary kernel's cost).
  const int src_plane[2] = {1, local_z_};
  RankState* peers[2] = {&dst_down, &dst_up};
  const int peer_rank[2] = {down, up};
  // Our plane heading down lands in the down-neighbor's *upper* halo slot.
  const int remote_slot[2] = {kUp, kDown};

  std::vector<std::shared_ptr<sim::Gate>> tx_gates;
  const std::uint32_t chunk = cfg_.halo_chunk_bytes;
  const std::uint64_t chunks_per_plane =
      (plane_bytes + chunk - 1) / chunk;
  // Staged TX copies ride an independent stream: the D2H of one plane
  // overlaps the PUTs of the other (the application-level pipelining the
  // paper's code used, which is why P2P=RX slightly beats P2P=ON for
  // these 128 KB-class halos).
  cuda::Stream staging_stream(cuda, 0);

  for (int dir = 0; dir < 2; ++dir) {
    if (cfg_.functional && st.slab)
      st.slab->pack_parity_plane(src_plane[dir], parity, st.pack_buf[dir]);

    std::uint64_t src_addr = 0;
    core::MemType src_type;
    if (cfg_.mode == CommMode::kP2pOn) {
      if (cfg_.functional && st.slab)
        cuda.move_bytes(
            st.send_dev[dir],
            reinterpret_cast<std::uint64_t>(st.pack_buf[dir].data()),
            plane_bytes);
      src_addr = st.send_dev[dir];
      src_type = core::MemType::kGpu;
    } else {
      // Staging for TX: asynchronous cudaMemcpy D2H of the plane.
      if (cfg_.functional && st.slab) {
        cuda.move_bytes(
            st.send_dev[dir],
            reinterpret_cast<std::uint64_t>(st.pack_buf[dir].data()),
            plane_bytes);
      }
      co_await staging_stream.memcpy_async(
          reinterpret_cast<std::uint64_t>(st.send_host[dir].data()),
          st.send_dev[dir], plane_bytes);
      src_addr = reinterpret_cast<std::uint64_t>(st.send_host[dir].data());
      src_type = core::MemType::kHost;
    }

    // Remote target: GPU halo buffer (ON/RX) or host bounce (OFF).
    std::uint64_t remote =
        cfg_.mode == CommMode::kP2pOff
            ? reinterpret_cast<std::uint64_t>(
                  peers[dir]->recv_host[remote_slot[dir]].data())
            : peers[dir]->recv_dev[remote_slot[dir]];

    for (std::uint64_t off = 0; off < plane_bytes; off += chunk) {
      const std::uint64_t n = std::min<std::uint64_t>(chunk, plane_bytes - off);
      core::RdmaDevice::Put p = rdma.put(
          cluster_.coord(peer_rank[dir]), src_addr + off, n, remote + off,
          src_type, cfg_.functional);
      tx_gates.push_back(p.tx_done);
    }
  }

  // Receive: one RX event per inbound chunk (both neighbors).
  const std::uint64_t expected = 2 * chunks_per_plane;
  for (std::uint64_t i = 0; i < expected; ++i) {
    co_await rdma.events().pop();
  }

  // Staged RX: copy the landed halos up to the GPU.
  if (cfg_.mode == CommMode::kP2pOff) {
    for (int dir = 0; dir < 2; ++dir) {
      if (cfg_.functional && st.slab) {
        cuda.move_bytes(
            st.recv_dev[dir],
            reinterpret_cast<std::uint64_t>(st.recv_host[dir].data()),
            plane_bytes);
      }
      co_await cuda.memcpy_sync(
          st.recv_dev[dir],
          reinterpret_cast<std::uint64_t>(st.recv_host[dir].data()),
          plane_bytes);
    }
  }

  if (cfg_.functional && st.slab) {
    std::vector<std::uint8_t> tmp(plane_bytes);
    cuda.move_bytes(reinterpret_cast<std::uint64_t>(tmp.data()),
                    st.recv_dev[kDown], plane_bytes);
    st.slab->unpack_parity_plane(0, parity, tmp);
    cuda.move_bytes(reinterpret_cast<std::uint64_t>(tmp.data()),
                    st.recv_dev[kUp], plane_bytes);
    st.slab->unpack_parity_plane(local_z_ + 1, parity, tmp);
  }

  // Drain local sends before the buffers are reused next phase.
  for (auto& g : tx_gates) co_await g->wait();
  done->open();
}

sim::Coro HsgRun::rank_main(int rank) {
  RankState& st = *ranks_[static_cast<std::size_t>(rank)];
  sim::Simulator& sim = cluster_.simulator();
  const std::uint64_t plane_bytes =
      static_cast<std::uint64_t>(cfg_.L) * cfg_.L / 2 * sizeof(Spin);

  // ---- setup: register halo buffers ------------------------------------
  if (cfg_.mode != CommMode::kIb && np_ > 1) {
    core::RdmaDevice& rdma = cluster_.rdma(rank);
    for (int dir = 0; dir < 2; ++dir) {
      if (cfg_.mode == CommMode::kP2pOff) {
        co_await rdma.register_buffer(
            reinterpret_cast<std::uint64_t>(st.recv_host[dir].data()),
            plane_bytes, core::MemType::kHost);
      } else {
        co_await rdma.register_buffer(st.recv_dev[dir], plane_bytes,
                                      core::MemType::kGpu);
      }
      if (cfg_.mode == CommMode::kP2pOn) {
        co_await rdma.register_buffer(st.send_dev[dir], plane_bytes,
                                      core::MemType::kGpu);
      } else {
        co_await rdma.register_buffer(
            reinterpret_cast<std::uint64_t>(st.send_host[dir].data()),
            plane_bytes, core::MemType::kHost);
      }
    }
  }

  // All ranks ready before timing starts.
  if (++finished_ == np_) {
    for (auto& r : ranks_) r->ready->open();
  }
  co_await st.ready->wait();
  st.t_start = sim.now();

  const std::uint64_t l2 = static_cast<std::uint64_t>(cfg_.L) * cfg_.L;
  const std::uint64_t boundary_sites =
      (local_z_ == 1 ? 1 : 2) * l2 / 2;
  const std::uint64_t bulk_sites =
      local_z_ > 2 ? static_cast<std::uint64_t>(local_z_ - 2) * l2 / 2 : 0;

  cuda::Stream compute(cluster_.node(rank).cuda(), 0);
  cuda::Stream boundary(cluster_.node(rank).cuda(), 0);

  for (int step = 0; step < cfg_.steps; ++step) {
    for (int parity = 0; parity < 2; ++parity) {
      // Boundary kernel first (its results feed the halo exchange).
      Time tb0 = sim.now();
      cuda::Done bnd = boundary.launch_kernel(
          kernel_time(rank, boundary_sites));
      if (cfg_.functional && st.slab) st.slab->update_boundary(parity);
      co_await bnd;
      st.boundary_time += sim.now() - tb0;

      // Bulk kernel overlaps the exchange.
      cuda::Done blk(sim);
      if (bulk_sites > 0) {
        blk = compute.launch_kernel(kernel_time(rank, bulk_sites));
      } else {
        blk.set({});
      }
      if (cfg_.functional && st.slab) st.slab->update_bulk(parity);

      Time tc0 = sim.now();
      auto comm_done = std::make_shared<sim::Gate>(sim);
      exchange_phase(rank, parity, comm_done);
      co_await comm_done->wait();
      st.comm_time += sim.now() - tc0;
      co_await blk;
    }
  }
  st.t_end = sim.now();
}

HsgMetrics HsgRun::run() {
  sim::Simulator& sim = cluster_.simulator();
  const std::uint64_t plane_bytes =
      static_cast<std::uint64_t>(cfg_.L) * cfg_.L / 2 * sizeof(Spin);

  ranks_.clear();
  finished_ = 0;
  for (int r = 0; r < np_; ++r) {
    auto st = std::make_unique<RankState>();
    st->ready = std::make_shared<sim::Gate>(sim);
    if (cfg_.functional) {
      st->slab = std::make_unique<Slab>(cfg_.L, local_z_, r * local_z_);
      st->slab->randomize(cfg_.seed);
    }
    cuda::Runtime& cuda = cluster_.node(r).cuda();
    for (int dir = 0; dir < 2; ++dir) {
      st->send_dev[dir] = cuda.malloc_device(0, plane_bytes);
      st->recv_dev[dir] = cuda.malloc_device(0, plane_bytes);
      st->send_host[dir].resize(plane_bytes);
      st->recv_host[dir].resize(plane_bytes);
    }
    ranks_.push_back(std::move(st));
  }

  // Functional warm-up: fill halos (both parities) from the neighbors.
  if (cfg_.functional) {
    std::vector<std::uint8_t> tmp;
    for (int r = 0; r < np_; ++r) {
      Slab& s = *ranks_[static_cast<std::size_t>(r)]->slab;
      Slab& below = *ranks_[static_cast<std::size_t>((r + np_ - 1) % np_)]->slab;
      Slab& above = *ranks_[static_cast<std::size_t>((r + 1) % np_)]->slab;
      for (int parity = 0; parity < 2; ++parity) {
        below.pack_parity_plane(below.local_z(), parity, tmp);
        s.unpack_parity_plane(0, parity, tmp);
        above.pack_parity_plane(1, parity, tmp);
        s.unpack_parity_plane(s.local_z() + 1, parity, tmp);
      }
    }
  }

  HsgMetrics m;
  m.functional = cfg_.functional;
  if (cfg_.functional) {
    double e = 0;
    for (auto& st : ranks_) e += st->slab->owned_energy();
    m.energy_initial = e;
  }

  for (int r = 0; r < np_; ++r) rank_main(r);
  sim.run();

  Time wall = 0;
  for (auto& st : ranks_) wall = std::max(wall, st->t_end - st->t_start);
  m.wall = wall;
  const double updates = static_cast<double>(cfg_.steps) * cfg_.L * cfg_.L *
                         static_cast<double>(cfg_.L);
  m.ttot_ps = static_cast<double>(wall) / updates;
  m.tnet_ps = static_cast<double>(ranks_[0]->comm_time) / updates;
  m.tbnd_net_ps =
      static_cast<double>(ranks_[0]->comm_time + ranks_[0]->boundary_time) /
      updates;
  if (cfg_.functional) {
    double e = 0;
    for (auto& st : ranks_) e += st->slab->owned_energy();
    m.energy_final = e;
  }
  return m;
}

}  // namespace apn::apps::hsg
