// 2-D (Z x Y) domain decomposition of the Heisenberg lattice — the
// multi-dimensional decomposition the paper's §V-D conjectures about:
// "This advantage could increase for a multi-dimensional domain-
// decomposition, where the size of the exchanged messages shrinks in the
// strong scaling, thanks to more regularly shaped 3D sub-domains."
//
// Each rank owns an (lz x ly x L) brick plus four face-halo shells (low/
// high Z, low/high Y). The 6-point stencil needs faces only — no edge or
// corner halos — so one checkerboard phase exchanges exactly four
// parity-packed faces.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "apps/hsg/lattice.hpp"

namespace apn::apps::hsg {

enum class Face { kZlow = 0, kZhigh = 1, kYlow = 2, kYhigh = 3 };
constexpr int kFaces = 4;

class Slab2d {
 public:
  /// Local brick of `lz` planes and `ly` rows (full X extent `L`),
  /// positioned at global (z_offset, y_offset).
  Slab2d(int L, int lz, int ly, int z_offset, int y_offset);

  int L() const { return L_; }
  int lz() const { return lz_; }
  int ly() const { return ly_; }
  int z_offset() const { return z_offset_; }
  int y_offset() const { return y_offset_; }

  /// z in [0, lz+1], y in [0, ly+1]: 0 and max are halo shells.
  Spin& at(int z, int y, int x) {
    return spins_[idx(z, y, x)];
  }
  const Spin& at(int z, int y, int x) const { return spins_[idx(z, y, x)]; }

  void randomize(std::uint64_t seed);

  /// Over-relax every interior site of the given (global) parity.
  void update_interior(int parity);
  /// Sites on the four faces of the interior (the halo producers).
  void update_boundary(int parity);
  /// Interior minus the boundary faces.
  void update_bulk(int parity);

  /// Bonds owned by this brick: +x, and +y/+z from every interior site
  /// (the high-side neighbor may live in a halo). Summed over a complete
  /// decomposition this is the exact lattice energy.
  double owned_energy() const;

  // ---- halo packing ---------------------------------------------------------
  /// Spins of `parity` on the interior face adjacent to `face`.
  void pack_face(Face face, int parity, std::vector<std::uint8_t>& out) const;
  /// Unpack a neighbor's face payload into the matching halo shell.
  void unpack_face(Face face, int parity, std::span<const std::uint8_t> in);

  std::size_t face_parity_count(Face face) const {
    int cells = (face == Face::kZlow || face == Face::kZhigh) ? ly_ * L_
                                                              : lz_ * L_;
    return static_cast<std::size_t>(cells) / 2;
  }
  std::size_t face_parity_bytes(Face face) const {
    return face_parity_count(face) * sizeof(Spin);
  }

 private:
  std::size_t idx(int z, int y, int x) const {
    return static_cast<std::size_t>((z * (ly_ + 2) + y) * L_ + x);
  }
  int gz(int z) const { return z + z_offset_ - 1; }
  int gy(int y) const { return y + y_offset_ - 1; }
  int site_parity(int z, int y, int x) const {
    return (((gz(z) % 2 + 2) + (gy(y) % 2 + 2) + x) % 2);
  }
  void update_site(int z, int y, int x);
  void update_range(int z0, int z1, int y0, int y1, int parity);

  int L_, lz_, ly_, z_offset_, y_offset_;
  std::vector<Spin> spins_;
};

}  // namespace apn::apps::hsg
