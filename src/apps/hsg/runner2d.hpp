// Distributed runner for the 2-D (Z x Y) decomposed Heisenberg spin glass —
// the paper's multi-dimensional-decomposition conjecture, made testable.
// Per checkerboard phase each rank updates its four boundary faces,
// exchanges four parity-packed face halos with its grid neighbors
// (overlapped with the bulk update), and synchronizes.
#pragma once

#include <memory>
#include <vector>

#include "apps/hsg/lattice2d.hpp"
#include "apps/hsg/runner.hpp"
#include "cluster/cluster.hpp"

namespace apn::apps::hsg {

struct Hsg2dConfig {
  int L = 16;
  int steps = 2;
  /// Process grid: pz * py must equal the cluster size and divide L.
  int pz = 2;
  int py = 2;
  CommMode mode = CommMode::kP2pOn;  ///< kP2pOn or kP2pOff
  bool functional = true;
  std::uint64_t seed = 42;
  std::uint32_t halo_chunk_bytes = 128 * 1024;
  std::uint64_t occupancy_knee_sites = 150000;
  double occupancy_cap = 3.0;
};

class Hsg2dRun {
 public:
  Hsg2dRun(cluster::Cluster& cluster, Hsg2dConfig config);
  ~Hsg2dRun();

  HsgMetrics run();
  const Slab2d& slab(int rank) const;

  /// Total bytes a rank sends per phase (for comparing against the 1-D
  /// decomposition's halo volume).
  std::uint64_t halo_bytes_per_phase() const;

 private:
  struct RankState;
  sim::Coro rank_main(int rank);
  sim::Coro exchange_phase(int rank, int parity,
                           std::shared_ptr<sim::Gate> done);
  Time kernel_time(int rank, std::uint64_t sites) const;
  int neighbor(int rank, Face face) const;
  std::uint64_t face_bytes_estimate(Face face) const;

  cluster::Cluster& cluster_;
  Hsg2dConfig cfg_;
  int np_;
  int lz_, ly_;
  std::vector<std::unique_ptr<RankState>> ranks_;
  int ready_count_ = 0;
};

}  // namespace apn::apps::hsg
