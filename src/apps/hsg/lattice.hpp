// Heisenberg spin glass over-relaxation (the paper's §V-D application).
//
// Spins are classical 3-vectors on an L^3 periodic lattice. One
// over-relaxation step reflects each spin about the local field
// h = sum of its 6 neighbors:  s' = 2 (s.h) h / (h.h) - s.
// The update is applied checkerboard-style (even sites, then odd sites),
// so every site's field is fixed while it updates. Over-relaxation is a
// micro-canonical move: it preserves s.h site-wise and therefore the total
// energy exactly — the key invariant the test suite checks.
//
// Slab decomposition along Z (single-dimension decomposition, as in the
// paper): each rank owns `local_z` interior planes plus two halo planes.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hpp"

namespace apn::apps::hsg {

struct Spin {
  float x = 0, y = 0, z = 1;
};
static_assert(sizeof(Spin) == 12, "paper message sizes assume 12 B spins");

/// One rank's slab: planes are indexed z in [0, local_z+1], where 0 and
/// local_z+1 are halos owned by the neighbor ranks.
class Slab {
 public:
  /// `z_offset`: global z of local plane 1 (for parity and validation).
  Slab(int L, int local_z, int z_offset);

  int L() const { return L_; }
  int local_z() const { return local_z_; }
  int z_offset() const { return z_offset_; }

  /// Deterministic random unit spins for the *global* lattice: the value
  /// of a site depends only on its global coordinates and the seed, so
  /// different decompositions produce identical initial states.
  void randomize(std::uint64_t seed);

  Spin& at(int z, int y, int x) {
    return spins_[static_cast<std::size_t>((z * L_ + y) * L_ + x)];
  }
  const Spin& at(int z, int y, int x) const {
    return spins_[static_cast<std::size_t>((z * L_ + y) * L_ + x)];
  }

  /// Over-relax all sites of the given parity in local plane z (1-based
  /// interior plane). Parity is evaluated on *global* coordinates.
  void update_plane(int z, int parity);

  /// Over-relax every interior site of the given parity.
  void update_interior(int parity);
  /// Boundary planes only (z = 1 and z = local_z).
  void update_boundary(int parity);
  /// Bulk = interior minus boundary planes.
  void update_bulk(int parity);

  /// Energy of all bonds owned by this slab: +x, +y bonds of interior
  /// sites and the z bonds from each interior site to its z+1 neighbor
  /// (halo plane included), plus z bonds from the lower halo into plane 1
  /// are NOT counted (they belong to the neighbor below). Summing over
  /// ranks yields the exact total lattice energy.
  double owned_energy() const;

  /// Pack the spins of one parity of local plane z into `out` (the halo
  /// payload: L*L/2 spins, 12 B each).
  void pack_parity_plane(int z, int parity, std::vector<std::uint8_t>& out) const;
  /// Unpack a parity-plane payload into halo plane z (0 or local_z+1).
  /// `global_z` is the global coordinate of that halo plane.
  void unpack_parity_plane(int z, int parity, std::span<const std::uint8_t> in);

  /// Number of spins of one parity in one plane.
  std::size_t parity_plane_count() const {
    return static_cast<std::size_t>(L_) * static_cast<std::size_t>(L_) / 2;
  }
  std::size_t parity_plane_bytes() const {
    return parity_plane_count() * sizeof(Spin);
  }

  const std::vector<Spin>& raw() const { return spins_; }

 private:
  int global_z(int local_plane) const {
    // Halo planes map to the neighbor's global coordinate (periodic).
    return local_plane + z_offset_ - 1;
  }
  int site_parity(int z, int y, int x) const {
    int gz = global_z(z);
    return ((gz % 2 + 2) + y + x) % 2;
  }

  int L_;
  int local_z_;
  int z_offset_;
  std::vector<Spin> spins_;
};

/// Whole-lattice reference implementation used to validate the
/// decomposed/overlapped version site-by-site.
class ReferenceLattice {
 public:
  explicit ReferenceLattice(int L);
  void randomize(std::uint64_t seed);
  void sweep();  ///< one over-relaxation step: even phase, then odd phase
  double energy() const;
  const Spin& at(int z, int y, int x) const {
    return spins_[static_cast<std::size_t>((z * L_ + y) * L_ + x)];
  }

 private:
  void update_parity(int parity);
  int L_;
  std::vector<Spin> spins_;
};

/// The spin value assigned to global site (z,y,x) by `randomize(seed)`.
Spin deterministic_spin(std::uint64_t seed, int z, int y, int x);

}  // namespace apn::apps::hsg
