#include "apps/hsg/runner2d.hpp"

#include <algorithm>

#include "apps/hsg/host_buf.hpp"
#include <cmath>
#include <stdexcept>

namespace apn::apps::hsg {

namespace {
/// The face of the neighbor that a payload packed from `face` fills.
Face opposite(Face face) {
  switch (face) {
    case Face::kZlow: return Face::kZhigh;
    case Face::kZhigh: return Face::kZlow;
    case Face::kYlow: return Face::kYhigh;
    case Face::kYhigh: return Face::kYlow;
  }
  return Face::kZlow;
}
}  // namespace

struct Hsg2dRun::RankState {
  std::unique_ptr<Slab2d> slab;
  cuda::DevPtr send_dev[kFaces] = {0, 0, 0, 0};
  cuda::DevPtr recv_dev[kFaces] = {0, 0, 0, 0};
  // Page-aligned so staged timing is reproducible under ASLR.
  HostBuf send_host[kFaces];
  HostBuf recv_host[kFaces];
  std::vector<std::uint8_t> pack_buf[kFaces];

  Time t_start = 0, t_end = 0;
  Time boundary_time = 0, comm_time = 0;
  std::shared_ptr<sim::Gate> ready;
};

Hsg2dRun::Hsg2dRun(cluster::Cluster& cluster, Hsg2dConfig config)
    : cluster_(cluster), cfg_(config), np_(cluster.size()) {
  if (cfg_.pz * cfg_.py != np_)
    throw std::invalid_argument("HSG2D: pz*py must equal cluster size");
  if (cfg_.L % 2 != 0 || cfg_.L % cfg_.pz != 0 || cfg_.L % cfg_.py != 0)
    throw std::invalid_argument("HSG2D: L must be even and divisible");
  if (cfg_.mode != CommMode::kP2pOn && cfg_.mode != CommMode::kP2pOff)
    throw std::invalid_argument("HSG2D supports P2P=ON and P2P=OFF");
  lz_ = cfg_.L / cfg_.pz;
  ly_ = cfg_.L / cfg_.py;
}

Hsg2dRun::~Hsg2dRun() = default;

const Slab2d& Hsg2dRun::slab(int rank) const {
  return *ranks_.at(static_cast<std::size_t>(rank))->slab;
}

std::uint64_t Hsg2dRun::halo_bytes_per_phase() const {
  return 2ull * (static_cast<std::uint64_t>(ly_) + lz_) * cfg_.L / 2 *
         sizeof(Spin);
}

int Hsg2dRun::neighbor(int rank, Face face) const {
  int iz = rank / cfg_.py;
  int iy = rank % cfg_.py;
  switch (face) {
    case Face::kZlow: iz = (iz + cfg_.pz - 1) % cfg_.pz; break;
    case Face::kZhigh: iz = (iz + 1) % cfg_.pz; break;
    case Face::kYlow: iy = (iy + cfg_.py - 1) % cfg_.py; break;
    case Face::kYhigh: iy = (iy + 1) % cfg_.py; break;
  }
  return iz * cfg_.py + iy;
}

Time Hsg2dRun::kernel_time(int rank, std::uint64_t sites) const {
  const gpu::GpuArch& arch = cluster_.node(rank).gpu(0).arch();
  double occ = 1.0;
  if (sites > 0 && sites < cfg_.occupancy_knee_sites) {
    occ = std::min(cfg_.occupancy_cap,
                   std::sqrt(static_cast<double>(cfg_.occupancy_knee_sites) /
                             static_cast<double>(sites)));
  }
  return arch.kernel_launch_overhead +
         static_cast<Time>(static_cast<double>(sites) *
                           static_cast<double>(arch.spin_update_time) * occ);
}

sim::Coro Hsg2dRun::exchange_phase(int rank, int parity,
                                   std::shared_ptr<sim::Gate> done) {
  RankState& st = *ranks_[static_cast<std::size_t>(rank)];
  core::RdmaDevice& rdma = cluster_.rdma(rank);
  cuda::Runtime& cuda = cluster_.node(rank).cuda();
  cuda::Stream staging(cuda, 0);

  std::vector<std::shared_ptr<sim::Gate>> tx;
  std::uint64_t expected_events = 0;

  for (int f = 0; f < kFaces; ++f) {
    Face face = static_cast<Face>(f);
    const int peer = neighbor(rank, face);
    RankState& dst = *ranks_[static_cast<std::size_t>(peer)];
    const std::uint64_t bytes = st.slab
                                    ? st.slab->face_parity_bytes(face)
                                    : face_bytes_estimate(face);
    if (cfg_.functional && st.slab)
      st.slab->pack_face(face, parity, st.pack_buf[f]);

    std::uint64_t src_addr;
    core::MemType src_type;
    if (cfg_.mode == CommMode::kP2pOn) {
      if (cfg_.functional && st.slab)
        cuda.move_bytes(st.send_dev[f],
                        reinterpret_cast<std::uint64_t>(st.pack_buf[f].data()),
                        bytes);
      src_addr = st.send_dev[f];
      src_type = core::MemType::kGpu;
    } else {
      if (cfg_.functional && st.slab)
        cuda.move_bytes(st.send_dev[f],
                        reinterpret_cast<std::uint64_t>(st.pack_buf[f].data()),
                        bytes);
      co_await staging.memcpy_async(
          reinterpret_cast<std::uint64_t>(st.send_host[f].data()),
          st.send_dev[f], bytes);
      src_addr = reinterpret_cast<std::uint64_t>(st.send_host[f].data());
      src_type = core::MemType::kHost;
    }

    const int remote_slot = static_cast<int>(opposite(face));
    std::uint64_t remote =
        cfg_.mode == CommMode::kP2pOff
            ? reinterpret_cast<std::uint64_t>(
                  dst.recv_host[remote_slot].data())
            : dst.recv_dev[remote_slot];
    for (std::uint64_t off = 0; off < bytes;
         off += cfg_.halo_chunk_bytes) {
      const std::uint64_t n =
          std::min<std::uint64_t>(cfg_.halo_chunk_bytes, bytes - off);
      auto p = rdma.put(cluster_.coord(peer), src_addr + off, n,
                        remote + off, src_type, cfg_.functional);
      tx.push_back(p.tx_done);
    }
    expected_events += (bytes + cfg_.halo_chunk_bytes - 1) /
                       cfg_.halo_chunk_bytes;
  }

  // Each face arrives from the matching neighbor; chunk counts are
  // symmetric because opposite faces have equal sizes.
  for (std::uint64_t i = 0; i < expected_events; ++i)
    co_await rdma.events().pop();

  if (cfg_.mode == CommMode::kP2pOff) {
    for (int f = 0; f < kFaces; ++f) {
      const std::uint64_t bytes =
          st.slab ? st.slab->face_parity_bytes(static_cast<Face>(f))
                  : face_bytes_estimate(static_cast<Face>(f));
      if (cfg_.functional && st.slab)
        cuda.move_bytes(st.recv_dev[f],
                        reinterpret_cast<std::uint64_t>(st.recv_host[f].data()),
                        bytes);
      co_await cuda.memcpy_sync(
          st.recv_dev[f],
          reinterpret_cast<std::uint64_t>(st.recv_host[f].data()), bytes);
    }
  }

  if (cfg_.functional && st.slab) {
    std::vector<std::uint8_t> tmp;
    for (int f = 0; f < kFaces; ++f) {
      Face face = static_cast<Face>(f);
      tmp.resize(st.slab->face_parity_bytes(face));
      cuda.move_bytes(reinterpret_cast<std::uint64_t>(tmp.data()),
                      st.recv_dev[f], tmp.size());
      st.slab->unpack_face(face, parity, tmp);
    }
  }

  for (auto& g : tx) co_await g->wait();
  done->open();
}

std::uint64_t Hsg2dRun::face_bytes_estimate(Face face) const {
  int cells = (face == Face::kZlow || face == Face::kZhigh) ? ly_ * cfg_.L
                                                            : lz_ * cfg_.L;
  return static_cast<std::uint64_t>(cells) / 2 * sizeof(Spin);
}

sim::Coro Hsg2dRun::rank_main(int rank) {
  RankState& st = *ranks_[static_cast<std::size_t>(rank)];
  sim::Simulator& sim = cluster_.simulator();
  core::RdmaDevice& rdma = cluster_.rdma(rank);

  if (np_ > 1) {
    for (int f = 0; f < kFaces; ++f) {
      const std::uint64_t bytes = face_bytes_estimate(static_cast<Face>(f));
      if (cfg_.mode == CommMode::kP2pOff) {
        co_await rdma.register_buffer(
            reinterpret_cast<std::uint64_t>(st.recv_host[f].data()), bytes,
            core::MemType::kHost);
        co_await rdma.register_buffer(
            reinterpret_cast<std::uint64_t>(st.send_host[f].data()), bytes,
            core::MemType::kHost);
      } else {
        co_await rdma.register_buffer(st.recv_dev[f], bytes,
                                      core::MemType::kGpu);
        co_await rdma.register_buffer(st.send_dev[f], bytes,
                                      core::MemType::kGpu);
      }
    }
  }

  if (++ready_count_ == np_)
    for (auto& r : ranks_) r->ready->open();
  co_await st.ready->wait();
  st.t_start = sim.now();

  // Per-phase site counts for the kernel timing model.
  const std::uint64_t interior =
      static_cast<std::uint64_t>(lz_) * ly_ * cfg_.L / 2;
  std::uint64_t boundary =
      (static_cast<std::uint64_t>(std::min(2, lz_)) * ly_ +
       static_cast<std::uint64_t>(std::max(0, lz_ - 2)) *
           std::min(2, ly_)) *
      cfg_.L / 2;
  boundary = std::min(boundary, interior);
  const std::uint64_t bulk = interior - boundary;

  cuda::Stream compute(cluster_.node(rank).cuda(), 0);
  cuda::Stream bstream(cluster_.node(rank).cuda(), 0);

  for (int step = 0; step < cfg_.steps; ++step) {
    for (int parity = 0; parity < 2; ++parity) {
      Time tb0 = sim.now();
      cuda::Done bnd = bstream.launch_kernel(kernel_time(rank, boundary));
      if (cfg_.functional && st.slab) st.slab->update_boundary(parity);
      co_await bnd;
      st.boundary_time += sim.now() - tb0;

      cuda::Done blk(sim);
      if (bulk > 0) {
        blk = compute.launch_kernel(kernel_time(rank, bulk));
      } else {
        blk.set({});
      }
      if (cfg_.functional && st.slab) st.slab->update_bulk(parity);

      Time tc0 = sim.now();
      if (np_ > 1) {
        auto comm_done = std::make_shared<sim::Gate>(sim);
        exchange_phase(rank, parity, comm_done);
        co_await comm_done->wait();
      } else if (cfg_.functional && st.slab) {
        // Periodic self-wrap.
        std::vector<std::uint8_t> tmp;
        for (int f = 0; f < kFaces; ++f) {
          Face face = static_cast<Face>(f);
          st.slab->pack_face(face, parity, tmp);
          st.slab->unpack_face(opposite(face), parity, tmp);
        }
      }
      st.comm_time += sim.now() - tc0;
      co_await blk;
    }
  }
  st.t_end = sim.now();
}

HsgMetrics Hsg2dRun::run() {
  sim::Simulator& sim = cluster_.simulator();
  ranks_.clear();
  ready_count_ = 0;

  for (int r = 0; r < np_; ++r) {
    auto st = std::make_unique<RankState>();
    st->ready = std::make_shared<sim::Gate>(sim);
    const int iz = r / cfg_.py;
    const int iy = r % cfg_.py;
    if (cfg_.functional) {
      st->slab = std::make_unique<Slab2d>(cfg_.L, lz_, ly_, iz * lz_,
                                          iy * ly_);
      st->slab->randomize(cfg_.seed);
    }
    cuda::Runtime& cuda = cluster_.node(r).cuda();
    for (int f = 0; f < kFaces; ++f) {
      const std::uint64_t bytes = face_bytes_estimate(static_cast<Face>(f));
      st->send_dev[f] = cuda.malloc_device(0, bytes);
      st->recv_dev[f] = cuda.malloc_device(0, bytes);
      st->send_host[f].resize(bytes);
      st->recv_host[f].resize(bytes);
    }
    ranks_.push_back(std::move(st));
  }

  // Functional warm-up: fill all four halo shells from the neighbors.
  if (cfg_.functional) {
    std::vector<std::uint8_t> tmp;
    for (int r = 0; r < np_; ++r) {
      Slab2d& mine = *ranks_[static_cast<std::size_t>(r)]->slab;
      for (int f = 0; f < kFaces; ++f) {
        Face face = static_cast<Face>(f);
        // My `face` halo is produced by that neighbor's opposite face.
        Slab2d& theirs =
            *ranks_[static_cast<std::size_t>(neighbor(r, face))]->slab;
        for (int parity = 0; parity < 2; ++parity) {
          theirs.pack_face(opposite(face), parity, tmp);
          mine.unpack_face(face, parity, tmp);
        }
      }
    }
  }

  HsgMetrics m;
  m.functional = cfg_.functional;
  if (cfg_.functional) {
    double e = 0;
    for (auto& st : ranks_) e += st->slab->owned_energy();
    m.energy_initial = e;
  }

  for (int r = 0; r < np_; ++r) rank_main(r);
  sim.run();

  Time wall = 0;
  for (auto& st : ranks_) wall = std::max(wall, st->t_end - st->t_start);
  m.wall = wall;
  const double updates = static_cast<double>(cfg_.steps) * cfg_.L * cfg_.L *
                         static_cast<double>(cfg_.L);
  m.ttot_ps = static_cast<double>(wall) / updates;
  m.tnet_ps = static_cast<double>(ranks_[0]->comm_time) / updates;
  m.tbnd_net_ps =
      static_cast<double>(ranks_[0]->comm_time + ranks_[0]->boundary_time) /
      updates;
  if (cfg_.functional) {
    double e = 0;
    for (auto& st : ranks_) e += st->slab->owned_energy();
    m.energy_final = e;
  }
  return m;
}

}  // namespace apn::apps::hsg
