// Distributed Heisenberg-spin-glass runner (paper §V-D).
//
// 1-D slab decomposition along Z over the nodes of a Cluster; each
// over-relaxation step runs two checkerboard phases. Per phase:
//   boundary kernel -> (halo exchange || bulk kernel) -> sync.
// The halo of one phase is the updated parity of the boundary planes,
// fragmented into 128 KB PUTs (6 outgoing + 6 incoming messages per phase
// at L=256, matching the paper's description).
//
// Communication modes (Table III / Fig. 11):
//   kP2pOn  — GPU source and GPU destination buffers (P2P both ways)
//   kP2pRx  — staging for TX (cudaMemcpy D2H + host-source PUT), P2P RX
//   kP2pOff — staging both ways (host-to-host PUT + cudaMemcpy H2D)
//   kIb     — minimpi over InfiniBand (OpenMPI-style staged transfers)
//
// In functional mode the real spin math runs and real halo bytes travel
// through the full simulated stack (GPU memory -> card -> torus -> card ->
// GPU memory); tests verify energy conservation and site-exact agreement
// with the single-lattice reference. In timing mode (benches) payloads are
// timing-only and the math is skipped.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <vector>

#include "apps/hsg/lattice.hpp"
#include "cluster/cluster.hpp"

namespace apn::apps::hsg {

enum class CommMode { kP2pOff, kP2pRx, kP2pOn, kIb };

inline const char* comm_mode_name(CommMode m) {
  switch (m) {
    case CommMode::kP2pOff: return "P2P=OFF";
    case CommMode::kP2pRx: return "P2P=RX";
    case CommMode::kP2pOn: return "P2P=ON";
    case CommMode::kIb: return "OMPI/IB";
  }
  std::abort();  // unreachable: no default, so -Wswitch guards enum growth
}

struct HsgConfig {
  int L = 32;
  int steps = 2;
  CommMode mode = CommMode::kP2pOn;
  bool functional = true;  ///< real math + real halo bytes
  std::uint64_t seed = 42;
  std::uint32_t halo_chunk_bytes = 128 * 1024;  ///< PUT fragmentation
  /// GPU-cache efficiency model: local working set above this derates the
  /// per-spin update time (paper: 1471 ps vs 921 ps at L=512 on one GPU,
  /// the source of the observed super-linear speedup).
  std::uint64_t cache_pressure_bytes = 2500ull << 20;
  double cache_pressure_factor = 1.6;
  /// Small-kernel occupancy model: kernels below the knee run at reduced
  /// efficiency (occ = min(cap, sqrt(knee/sites))). Calibrated from the
  /// paper's NP=1 boundary time (11 ps/spin for 2x65K-site planes implies
  /// ~1.5x at 65K sites) — this is what stops L=128 from scaling far.
  std::uint64_t occupancy_knee_sites = 150000;
  double occupancy_cap = 3.0;
};

struct HsgMetrics {
  Time wall = 0;
  double ttot_ps = 0;      ///< wall / (steps * L^3)
  double tnet_ps = 0;      ///< accumulated comm time, same normalization
  double tbnd_net_ps = 0;  ///< boundary kernels + comm
  double energy_initial = 0;
  double energy_final = 0;
  bool functional = false;
};

class HsgRun {
 public:
  HsgRun(cluster::Cluster& cluster, HsgConfig config);
  ~HsgRun();

  /// Execute the full simulation (drives the Simulator until completion).
  HsgMetrics run();

  /// Functional-mode slab access for validation against the reference.
  const Slab& slab(int rank) const;

 private:
  struct RankState;
  sim::Coro rank_main(int rank);
  sim::Coro exchange_phase(int rank, int parity,
                           std::shared_ptr<sim::Gate> done);
  Time kernel_time(int rank, std::uint64_t sites) const;
  Time spin_time(int rank) const;

  cluster::Cluster& cluster_;
  HsgConfig cfg_;
  int np_;
  int local_z_;
  std::vector<std::unique_ptr<RankState>> ranks_;
  int finished_ = 0;
};

}  // namespace apn::apps::hsg
