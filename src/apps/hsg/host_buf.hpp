// Page-aligned host staging buffer for the application runners.
//
// The card's V2P scatter behaviour (and the staged-copy timing derived
// from it) depends on how a host buffer straddles 4 KB pages, so a plain
// std::vector — whose placement varies run to run under ASLR — makes
// staged measurements non-reproducible. Mirrors the page-aligned `Buf`
// the cluster harness uses for the microbenchmarks.
#pragma once

#include <cstdint>
#include <vector>

namespace apn::apps {

class HostBuf {
 public:
  void resize(std::size_t n) {
    raw_.assign(n + 4096, 0);
    auto p = reinterpret_cast<std::uint64_t>(raw_.data());
    data_ = reinterpret_cast<std::uint8_t*>((p + 4095) & ~4095ull);
  }
  std::uint8_t* data() { return data_; }
  const std::uint8_t* data() const { return data_; }

 private:
  std::vector<std::uint8_t> raw_;
  std::uint8_t* data_ = nullptr;
};

}  // namespace apn::apps
