#include "apps/hsg/lattice.hpp"

#include <cmath>
#include <cstring>
#include <stdexcept>

namespace apn::apps::hsg {

namespace {

/// Reflect s about h: s' = 2 (s.h) h / (h.h) - s. h == 0 leaves s fixed.
inline Spin over_relax(const Spin& s, double hx, double hy, double hz) {
  double hh = hx * hx + hy * hy + hz * hz;
  if (hh == 0.0) return s;
  double sh = s.x * hx + s.y * hy + s.z * hz;
  double f = 2.0 * sh / hh;
  return Spin{static_cast<float>(f * hx - s.x),
              static_cast<float>(f * hy - s.y),
              static_cast<float>(f * hz - s.z)};
}

}  // namespace

Spin deterministic_spin(std::uint64_t seed, int z, int y, int x) {
  std::uint64_t key = seed;
  key = key * 0x9E3779B97F4A7C15ull + static_cast<std::uint64_t>(z) + 1;
  key = key * 0x9E3779B97F4A7C15ull + static_cast<std::uint64_t>(y) + 1;
  key = key * 0x9E3779B97F4A7C15ull + static_cast<std::uint64_t>(x) + 1;
  SplitMix64 sm(key);
  // Marsaglia: uniform point on the sphere.
  double u = 2.0 * (static_cast<double>(sm.next() >> 11) * 0x1.0p-53) - 1.0;
  double phi =
      2.0 * 3.14159265358979323846 *
      (static_cast<double>(sm.next() >> 11) * 0x1.0p-53);
  double r = std::sqrt(std::max(0.0, 1.0 - u * u));
  return Spin{static_cast<float>(r * std::cos(phi)),
              static_cast<float>(r * std::sin(phi)), static_cast<float>(u)};
}

// ---------------------------------------------------------------------------
// Slab
// ---------------------------------------------------------------------------

Slab::Slab(int L, int local_z, int z_offset)
    : L_(L), local_z_(local_z), z_offset_(z_offset) {
  if (L < 2 || local_z < 1) throw std::invalid_argument("bad slab shape");
  spins_.resize(static_cast<std::size_t>(local_z + 2) *
                static_cast<std::size_t>(L) * static_cast<std::size_t>(L));
}

void Slab::randomize(std::uint64_t seed) {
  // Interior planes from global coordinates; halos are filled by the first
  // exchange (or locally for single-rank runs).
  for (int z = 1; z <= local_z_; ++z)
    for (int y = 0; y < L_; ++y)
      for (int x = 0; x < L_; ++x)
        at(z, y, x) = deterministic_spin(
            seed, (global_z(z) % L_ + L_) % L_, y, x);
}

void Slab::update_plane(int z, int parity) {
  for (int y = 0; y < L_; ++y) {
    int yp = y + 1 == L_ ? 0 : y + 1;
    int ym = y == 0 ? L_ - 1 : y - 1;
    for (int x = 0; x < L_; ++x) {
      if (site_parity(z, y, x) != parity) continue;
      int xp = x + 1 == L_ ? 0 : x + 1;
      int xm = x == 0 ? L_ - 1 : x - 1;
      const Spin& a = at(z, y, xp);
      const Spin& b = at(z, y, xm);
      const Spin& c = at(z, yp, x);
      const Spin& d = at(z, ym, x);
      const Spin& e = at(z + 1, y, x);
      const Spin& f = at(z - 1, y, x);
      double hx = static_cast<double>(a.x) + b.x + c.x + d.x + e.x + f.x;
      double hy = static_cast<double>(a.y) + b.y + c.y + d.y + e.y + f.y;
      double hz = static_cast<double>(a.z) + b.z + c.z + d.z + e.z + f.z;
      at(z, y, x) = over_relax(at(z, y, x), hx, hy, hz);
    }
  }
}

void Slab::update_interior(int parity) {
  for (int z = 1; z <= local_z_; ++z) update_plane(z, parity);
}

void Slab::update_boundary(int parity) {
  update_plane(1, parity);
  if (local_z_ > 1) update_plane(local_z_, parity);
}

void Slab::update_bulk(int parity) {
  for (int z = 2; z < local_z_; ++z) update_plane(z, parity);
}

double Slab::owned_energy() const {
  double e = 0.0;
  for (int z = 1; z <= local_z_; ++z) {
    for (int y = 0; y < L_; ++y) {
      int yp = y + 1 == L_ ? 0 : y + 1;
      for (int x = 0; x < L_; ++x) {
        int xp = x + 1 == L_ ? 0 : x + 1;
        const Spin& s = at(z, y, x);
        const Spin& sx = at(z, y, xp);
        const Spin& sy = at(z, yp, x);
        const Spin& sz = at(z + 1, y, x);  // halo for z == local_z
        e -= static_cast<double>(s.x) * sx.x + static_cast<double>(s.y) * sx.y +
             static_cast<double>(s.z) * sx.z;
        e -= static_cast<double>(s.x) * sy.x + static_cast<double>(s.y) * sy.y +
             static_cast<double>(s.z) * sy.z;
        e -= static_cast<double>(s.x) * sz.x + static_cast<double>(s.y) * sz.y +
             static_cast<double>(s.z) * sz.z;
      }
    }
  }
  return e;
}

void Slab::pack_parity_plane(int z, int parity,
                             std::vector<std::uint8_t>& out) const {
  out.clear();
  out.reserve(parity_plane_bytes());
  for (int y = 0; y < L_; ++y)
    for (int x = 0; x < L_; ++x) {
      if (site_parity(z, y, x) != parity) continue;
      const Spin& s = at(z, y, x);
      const auto* p = reinterpret_cast<const std::uint8_t*>(&s);
      out.insert(out.end(), p, p + sizeof(Spin));
    }
}

void Slab::unpack_parity_plane(int z, int parity,
                               std::span<const std::uint8_t> in) {
  std::size_t pos = 0;
  for (int y = 0; y < L_; ++y)
    for (int x = 0; x < L_; ++x) {
      if (site_parity(z, y, x) != parity) continue;
      if (pos + sizeof(Spin) > in.size())
        throw std::runtime_error("halo payload too short");
      Spin s;
      std::memcpy(&s, in.data() + pos, sizeof(Spin));
      at(z, y, x) = s;
      pos += sizeof(Spin);
    }
}

// ---------------------------------------------------------------------------
// ReferenceLattice
// ---------------------------------------------------------------------------

ReferenceLattice::ReferenceLattice(int L) : L_(L) {
  spins_.resize(static_cast<std::size_t>(L) * L * L);
}

void ReferenceLattice::randomize(std::uint64_t seed) {
  for (int z = 0; z < L_; ++z)
    for (int y = 0; y < L_; ++y)
      for (int x = 0; x < L_; ++x)
        spins_[static_cast<std::size_t>((z * L_ + y) * L_ + x)] =
            deterministic_spin(seed, z, y, x);
}

void ReferenceLattice::update_parity(int parity) {
  auto idx = [this](int z, int y, int x) {
    return static_cast<std::size_t>((z * L_ + y) * L_ + x);
  };
  for (int z = 0; z < L_; ++z) {
    int zp = z + 1 == L_ ? 0 : z + 1;
    int zm = z == 0 ? L_ - 1 : z - 1;
    for (int y = 0; y < L_; ++y) {
      int yp = y + 1 == L_ ? 0 : y + 1;
      int ym = y == 0 ? L_ - 1 : y - 1;
      for (int x = 0; x < L_; ++x) {
        if ((x + y + z) % 2 != parity) continue;
        int xp = x + 1 == L_ ? 0 : x + 1;
        int xm = x == 0 ? L_ - 1 : x - 1;
        const Spin& a = spins_[idx(z, y, xp)];
        const Spin& b = spins_[idx(z, y, xm)];
        const Spin& c = spins_[idx(z, yp, x)];
        const Spin& d = spins_[idx(z, ym, x)];
        const Spin& e = spins_[idx(zp, y, x)];
        const Spin& f = spins_[idx(zm, y, x)];
        double hx = static_cast<double>(a.x) + b.x + c.x + d.x + e.x + f.x;
        double hy = static_cast<double>(a.y) + b.y + c.y + d.y + e.y + f.y;
        double hz = static_cast<double>(a.z) + b.z + c.z + d.z + e.z + f.z;
        Spin& s = spins_[idx(z, y, x)];
        s = over_relax(s, hx, hy, hz);
      }
    }
  }
}

void ReferenceLattice::sweep() {
  update_parity(0);
  update_parity(1);
}

double ReferenceLattice::energy() const {
  auto idx = [this](int z, int y, int x) {
    return static_cast<std::size_t>((z * L_ + y) * L_ + x);
  };
  double e = 0.0;
  for (int z = 0; z < L_; ++z) {
    int zp = z + 1 == L_ ? 0 : z + 1;
    for (int y = 0; y < L_; ++y) {
      int yp = y + 1 == L_ ? 0 : y + 1;
      for (int x = 0; x < L_; ++x) {
        int xp = x + 1 == L_ ? 0 : x + 1;
        const Spin& s = spins_[idx(z, y, x)];
        const Spin& sx = spins_[idx(z, y, xp)];
        const Spin& sy = spins_[idx(z, yp, x)];
        const Spin& sz = spins_[idx(zp, y, x)];
        e -= static_cast<double>(s.x) * sx.x + static_cast<double>(s.y) * sx.y +
             static_cast<double>(s.z) * sx.z;
        e -= static_cast<double>(s.x) * sy.x + static_cast<double>(s.y) * sy.y +
             static_cast<double>(s.z) * sy.z;
        e -= static_cast<double>(s.x) * sz.x + static_cast<double>(s.y) * sz.y +
             static_cast<double>(s.z) * sz.z;
      }
    }
  }
  return e;
}

}  // namespace apn::apps::hsg
