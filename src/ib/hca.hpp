// InfiniBand baseline: a ConnectX-2-class HCA model plus a crossbar switch.
//
// This provides the reference transport the paper compares against
// (MVAPICH2 / OpenMPI over IB, Figs. 7 and 9, Tables III and IV). The HCA
// is a PCIe endpoint that DMA-reads the source host buffer through a
// bounded read-request window (so the effective bandwidth emerges from the
// slot width: ~3 GB/s in a Gen2 x8 slot, ~1.6 GB/s in the x4 slot of the
// paper's Cluster I), streams it over a QDR link through the switch, and
// DMA-writes it into destination host memory. Messages are delivered to a
// receive-event queue consumed by the minimpi layer, which implements
// matching and the CUDA-aware staging/pipelining protocols.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "common/fn.hpp"
#include "pcie/fabric.hpp"
#include "pcie/memory.hpp"
#include "sim/channel.hpp"
#include "sim/coro.hpp"
#include "sim/sync.hpp"

namespace apn::ib {

struct HcaParams {
  Rate link_rate = units::Gbps(32);  ///< 4X QDR
  Time link_latency = units::ns(120);
  std::uint32_t wire_mtu = 4096;
  std::uint32_t wire_overhead = 30;     ///< LRH/BTH/ICRC per MTU frame
  Time send_overhead = units::us(0.8);  ///< post_send -> first DMA read
  Time recv_overhead = units::us(0.7);  ///< landing -> CQE visible
  std::uint32_t read_request_bytes = 512;
  std::uint32_t read_window = 16 * 1024;  ///< outstanding DMA-read bytes
};

/// Delivered message (CQE + data) as seen by the transport layer above.
struct IbRecvEvent {
  int src_rank = 0;
  std::uint64_t remote_addr = 0;  ///< 0 => eager (payload carried inline)
  std::uint32_t bytes = 0;
  std::uint64_t wr_id = 0;
  std::vector<std::uint8_t> inline_data;  ///< eager payload
};

class IbSwitch;

class Hca : public pcie::Device {
  APN_OWNER(pcie_island)

 public:
  Hca(sim::Simulator& sim, pcie::Fabric& fabric, pcie::HostMemory& hostmem,
      HcaParams params, int rank);

  int rank() const { return rank_; }
  const HcaParams& params() const { return params_; }

  /// RDMA-write-style send. If `remote_addr` is nonzero the payload is
  /// written into the destination node's (pinned) host memory; otherwise
  /// it is delivered inline with the receive event (eager path).
  /// `on_sent` fires when the message fully left this HCA.
  void post_send(int dst_rank, std::uint64_t local_addr, std::uint32_t len,
                 std::uint64_t remote_addr, std::uint64_t wr_id,
                 bool carry_data = true,
                 std::function<void()> on_sent = {});

  /// Send with an explicit payload (eager/control path: the bytes come
  /// from library-owned vbufs rather than a pinned user buffer).
  void post_send_inline(int dst_rank, std::vector<std::uint8_t> payload,
                        std::uint64_t wr_id,
                        std::function<void()> on_sent = {});

  sim::Queue<IbRecvEvent>& recv_events() { return recv_events_; }

  // pcie::Device (the HCA has no interesting MMIO behaviour in this model)
  void handle_write(std::uint64_t, pcie::Payload) override {}
  void handle_read(std::uint64_t, std::uint32_t len,
                   UniqueFn<void(pcie::Payload)> reply) override {
    reply(pcie::Payload::timing(len));
  }

 private:
  friend class IbSwitch;
  struct WireMsg {
    int src_rank, dst_rank;
    std::uint64_t remote_addr;
    std::uint32_t bytes;
    std::uint64_t wr_id;
    bool carry_data;
    std::vector<std::uint8_t> data;
    std::function<void()> on_sent;
  };

  sim::Coro tx_engine();
  /// Called at the destination HCA when one wire frame arrives.
  void deliver_frame(const WireMsg& msg, std::uint32_t offset,
                     std::vector<std::uint8_t> slice, bool last);

  sim::Simulator* sim_;
  pcie::Fabric* fabric_;
  pcie::HostMemory* hostmem_;
  HcaParams params_;
  int rank_;
  IbSwitch* switch_ = nullptr;
  sim::Channel* to_switch_ = nullptr;
  sim::Queue<WireMsg> tx_queue_;
  sim::CreditPool read_window_;
  sim::Queue<IbRecvEvent> recv_events_;
  /// Eager-path reassembly, keyed by (src rank, wr_id): frames of eager
  /// messages from different sources may interleave at the egress port.
  std::map<std::pair<int, std::uint64_t>, std::vector<std::uint8_t>>
      eager_assembly_;
};

/// Full-crossbar switch: one channel per direction per port; forwarding
/// latency folded into the channel latency.
class IbSwitch {
 public:
  IbSwitch(sim::Simulator& sim, Time port_latency = units::ns(140))
      : sim_(&sim), port_latency_(port_latency) {}

  void connect(Hca& hca);
  int ports() const { return static_cast<int>(hcas_.size()); }

 private:
  friend class Hca;
  /// Channel toward the HCA with the given rank.
  sim::Channel& egress(int rank) { return *down_[static_cast<std::size_t>(rank)]; }
  Hca& hca(int rank) { return *hcas_.at(static_cast<std::size_t>(rank)); }

  sim::Simulator* sim_;
  Time port_latency_;
  std::vector<Hca*> hcas_;
  std::vector<std::unique_ptr<sim::Channel>> up_;    // hca -> switch
  std::vector<std::unique_ptr<sim::Channel>> down_;  // switch -> hca
};

}  // namespace apn::ib
