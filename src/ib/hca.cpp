#include "ib/hca.hpp"

#include <algorithm>
#include <cstring>
#include <utility>

namespace apn::ib {

Hca::Hca(sim::Simulator& sim, pcie::Fabric& fabric,
         pcie::HostMemory& hostmem, HcaParams params, int rank)
    : sim_(&sim),
      fabric_(&fabric),
      hostmem_(&hostmem),
      params_(params),
      rank_(rank),
      tx_queue_(sim),
      read_window_(sim, params.read_window),
      recv_events_(sim) {
  set_pcie_name("hca");
  tx_engine();
}

void Hca::post_send(int dst_rank, std::uint64_t local_addr,
                    std::uint32_t len, std::uint64_t remote_addr,
                    std::uint64_t wr_id, bool carry_data,
                    std::function<void()> on_sent) {
  WireMsg m;
  m.src_rank = rank_;
  m.dst_rank = dst_rank;
  m.remote_addr = remote_addr;
  m.bytes = len;
  m.wr_id = wr_id;
  m.carry_data = carry_data;
  m.on_sent = std::move(on_sent);
  if (carry_data && len > 0 && hostmem_->is_pinned(local_addr, len)) {
    // Snapshot the source now (same contract as verbs: the buffer must
    // stay untouched until the send completes anyway).
    m.data.resize(len);
    std::memcpy(m.data.data(), reinterpret_cast<const void*>(local_addr),
                len);
  }
  tx_queue_.push(std::move(m));
}

void Hca::post_send_inline(int dst_rank, std::vector<std::uint8_t> payload,
                           std::uint64_t wr_id,
                           std::function<void()> on_sent) {
  WireMsg m;
  m.src_rank = rank_;
  m.dst_rank = dst_rank;
  m.remote_addr = 0;
  m.bytes = static_cast<std::uint32_t>(payload.size());
  m.wr_id = wr_id;
  m.carry_data = true;
  m.data = std::move(payload);
  m.on_sent = std::move(on_sent);
  tx_queue_.push(std::move(m));
}

sim::Coro Hca::tx_engine() {
  for (;;) {
    WireMsg m = co_await tx_queue_.pop();
    co_await sim::delay(*sim_, params_.send_overhead);
    if (switch_ == nullptr || to_switch_ == nullptr) {
      if (m.on_sent) m.on_sent();
      continue;  // unwired HCA: drop
    }

    const std::uint32_t total = m.bytes;
    auto msg = std::make_shared<WireMsg>(std::move(m));

    if (total == 0) {
      // Zero-length send: a single header-only frame.
      IbSwitch* sw = switch_;
      to_switch_->send(
          Bytes(params_.wire_overhead),
          [sw, msg] {
            sw->egress(msg->dst_rank)
                .send(Bytes(sw->hca(msg->dst_rank).params_.wire_overhead),
                      [sw, msg] {
                        sw->hca(msg->dst_rank)
                            .deliver_frame(*msg, 0, {}, true);
                      });
          },
          [msg] {
            if (msg->on_sent) msg->on_sent();
          });
      continue;
    }

    std::uint32_t offset = 0;
    while (offset < total) {
      const std::uint32_t frame = std::min(params_.wire_mtu, total - offset);
      // DMA-read this frame from host memory through the bounded request
      // window; the window throttles how far the wire can run ahead.
      std::uint32_t got = 0;
      while (got < frame) {
        const std::uint32_t chunk =
            std::min(params_.read_request_bytes, frame - got);
        co_await read_window_.acquire(chunk);
        fabric_->read(*this, /*addr=*/0x1000, chunk,
                      [this, chunk](pcie::Payload) {
                        read_window_.release(chunk);
                      });
        got += chunk;
      }
      const bool last = offset + frame >= total;
      std::vector<std::uint8_t> slice;
      if (!msg->data.empty()) {
        slice.assign(
            msg->data.begin() + static_cast<std::ptrdiff_t>(offset),
            msg->data.begin() + static_cast<std::ptrdiff_t>(offset + frame));
      }
      IbSwitch* sw = switch_;
      const std::uint32_t off = offset;
      auto sl = std::make_shared<std::vector<std::uint8_t>>(std::move(slice));
      auto forward = [sw, msg, sl, frame, off, last] {
        sw->egress(msg->dst_rank)
            .send(Bytes(frame + sw->hca(msg->dst_rank).params_.wire_overhead),
                  [sw, msg, sl, off, last] {
                    sw->hca(msg->dst_rank)
                        .deliver_frame(*msg, off, std::move(*sl), last);
                  });
      };
      // Only the last frame carries a serialized hook; intermediate frames
      // take the hookless path (no std::function boxed per frame).
      if (last) {
        to_switch_->send(Bytes(frame + params_.wire_overhead),
                         std::move(forward),
                         [msg] {
                           if (msg->on_sent) msg->on_sent();
                         });
      } else {
        to_switch_->send(Bytes(frame + params_.wire_overhead),
                         std::move(forward));
      }
      offset += frame;
    }
  }
}

void Hca::deliver_frame(const WireMsg& msg, std::uint32_t offset,
                        std::vector<std::uint8_t> slice, bool last) {
  const std::uint32_t frame =
      slice.empty() ? std::min(params_.wire_mtu, msg.bytes - offset)
                    : static_cast<std::uint32_t>(slice.size());
  // Capture only the message header, NOT the WireMsg (whose data vector
  // would otherwise be copied into every pending frame completion).
  const int src_rank = msg.src_rank;
  const std::uint64_t remote_addr = msg.remote_addr;
  const std::uint32_t bytes = msg.bytes;
  const std::uint64_t wr_id = msg.wr_id;
  auto finish = [this, src_rank, remote_addr, bytes, wr_id] {
    std::vector<std::uint8_t> assembled;
    auto key = std::make_pair(src_rank, wr_id);
    auto it = eager_assembly_.find(key);
    if (it != eager_assembly_.end()) {
      assembled = std::move(it->second);
      eager_assembly_.erase(it);
    }
    sim_->after(params_.recv_overhead,
                [this, src_rank, remote_addr, bytes, wr_id,
                 assembled = std::move(assembled)]() mutable {
                  IbRecvEvent ev;
                  ev.src_rank = src_rank;
                  ev.remote_addr = remote_addr;
                  ev.bytes = bytes;
                  ev.wr_id = wr_id;
                  ev.inline_data = std::move(assembled);
                  recv_events_.push(std::move(ev));
                });
  };

  if (msg.remote_addr != 0) {
    pcie::Payload p;
    p.bytes = msg.bytes == 0 ? 0 : frame;
    p.data = std::move(slice);
    if (msg.bytes == 0) {
      finish();
      return;
    }
    fabric_->post_write(*this, msg.remote_addr + offset, std::move(p),
                        [finish, last] {
                          if (last) finish();
                        });
  } else {
    if (!slice.empty()) {
      auto& buf = eager_assembly_[std::make_pair(msg.src_rank, msg.wr_id)];
      buf.insert(buf.end(), slice.begin(), slice.end());
    }
    if (last) finish();
  }
}

void IbSwitch::connect(Hca& hca) {
  sim::ChannelParams cp;
  cp.rate = hca.params().link_rate;
  cp.per_send_overhead = 0;
  cp.latency = hca.params().link_latency + port_latency_;
  up_.push_back(std::make_unique<sim::Channel>(*sim_, cp));
  cp.latency = hca.params().link_latency;
  down_.push_back(std::make_unique<sim::Channel>(*sim_, cp));
  hca.switch_ = this;
  hca.to_switch_ = up_.back().get();
  hcas_.push_back(&hca);
}

}  // namespace apn::ib
