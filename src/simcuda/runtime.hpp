// simcuda: a miniature CUDA-like runtime over the simulated GPUs of one node.
//
// Mirrors the pieces of CUDA the paper depends on (§III-A):
//  * UVA — device allocations receive unique 64-bit addresses disjoint from
//    host pointers; `pointer_info()` plays the role of
//    cuPointerGetAttribute(), classifying an address as host or device and
//    reporting the owning GPU.
//  * P2P tokens — `get_p2p_tokens()` returns what the kernel driver needs
//    to map a GPU buffer for third-party access (per-64 KB-page
//    descriptors, i.e. device offsets in this model).
//  * memcpy — synchronous copies block the calling host process for a
//    constant driver/synchronization overhead plus the DMA transfer
//    (~5 µs + size/5.5 GB/s for D2H: the cost that makes staging lose to
//    peer-to-peer at small message sizes). Async copies only occupy the
//    copy engine and complete a Future.
//  * Streams — FIFO queues of kernels/copies; independent streams overlap,
//    which the HSG application uses to hide boundary computation.
//
// Host pointers are real process pointers; device addresses live at
// kUvaBase and above, so the two can never collide.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "gpu/gpu.hpp"
#include "sim/coro.hpp"
#include "sim/sync.hpp"

namespace apn::cuda {

using DevPtr = std::uint64_t;

/// Marker for completed stream operations.
struct Unit {};
using Done = sim::Future<Unit>;

enum class MemcpyKind { kHostToDevice, kDeviceToHost, kDeviceToDevice };

struct PointerInfo {
  bool is_device = false;
  int device = -1;             ///< GPU ordinal on this node
  std::uint64_t dev_offset = 0;  ///< offset within that GPU's memory
};

/// P2P handles returned for a GPU buffer (the CU_POINTER_ATTRIBUTE_P2P_TOKENS
/// equivalent): enough for a kernel driver to program a NIC's GPU_V2P table.
struct P2pTokens {
  int device = -1;
  std::uint64_t dev_offset = 0;
  std::uint64_t size = 0;
  static constexpr std::uint64_t kPageBytes = 64 * 1024;
  std::uint64_t page_count() const {
    return (size + kPageBytes - 1) / kPageBytes;
  }
};

struct RuntimeParams {
  /// Host-side driver + synchronization overhead of a *synchronous*
  /// cudaMemcpy. D2H must round-trip to the device and costs ~10 µs (the
  /// paper: "the single cudaMemcpy overhead can be estimated around
  /// 10 µs"); H2D is posted and synchronizes much faster.
  Time d2h_sync_overhead = units::us(7.2);
  Time h2d_sync_overhead = units::us(0.9);
  /// Host-side cost of enqueueing an async op on a stream.
  Time enqueue_overhead = units::ns(300);
  /// cuPointerGetAttribute cost (paper §IV-A: "possibly expensive").
  Time pointer_query_cost = units::ns(400);
};

class Runtime;

/// FIFO stream of device operations. Operations on one stream serialize;
/// operations on different streams overlap (subject to engine contention).
class Stream {
 public:
  Stream(Runtime& rt, int device);

  /// Enqueue a kernel of a precomputed duration; returns its completion.
  Done launch_kernel(Time duration);

  /// Enqueue an async memcpy; returns its completion.
  Done memcpy_async(std::uint64_t dst, std::uint64_t src, std::uint64_t n);

  /// Completion of everything enqueued so far (cudaStreamSynchronize /
  /// cudaEventRecord + query).
  Done record_event() { return tail_; }

  int device() const { return device_; }

 private:
  friend class Runtime;
  Runtime* rt_;
  int device_;
  Done tail_;
};

class Runtime {
 public:
  static constexpr std::uint64_t kUvaBase = 0xC00000000000ull;
  static constexpr std::uint64_t kUvaStride = 1ull << 36;  // 64 GB / device

  Runtime(sim::Simulator& sim, std::vector<gpu::Gpu*> gpus,
          RuntimeParams params = {});

  sim::Simulator& simulator() { return *sim_; }
  const RuntimeParams& params() const { return params_; }
  int device_count() const { return static_cast<int>(gpus_.size()); }
  gpu::Gpu& device(int i) { return *gpus_.at(static_cast<std::size_t>(i)); }

  // ---- memory -------------------------------------------------------------
  DevPtr malloc_device(int device, std::uint64_t size);
  void free_device(DevPtr ptr);

  /// UVA classification (cuPointerGetAttribute). Host pointers yield
  /// is_device=false. The *time* cost is charged via pointer_query_cost by
  /// callers that model it (the RDMA API does).
  PointerInfo pointer_info(std::uint64_t addr) const;

  /// P2P mapping tokens for [ptr, ptr+size); throws if not device memory.
  P2pTokens get_p2p_tokens(DevPtr ptr, std::uint64_t size) const;

  /// Map a device buffer through BAR1; suspends for the (expensive) GPU
  /// reconfiguration and returns the PCIe address of the mapping.
  struct Bar1MapResult {
    std::uint64_t pcie_addr;
  };
  sim::Future<Bar1MapResult> bar1_map_async(DevPtr ptr, std::uint64_t size);

  // ---- copies ----------------------------------------------------------------
  /// Synchronous memcpy: suspends the calling process for overhead+transfer.
  /// Addresses may be host (real pointers cast to u64) or UVA device.
  [[nodiscard]] Done memcpy_sync(std::uint64_t dst, std::uint64_t src,
                                 std::uint64_t n);

  /// Kind classification for a (dst, src) pair.
  MemcpyKind classify(std::uint64_t dst, std::uint64_t src) const;

  // ---- internal helpers used by Stream ---------------------------------------
  Time transfer_time(MemcpyKind kind, int device, Bytes n) const;
  sim::Resource& engine_for(MemcpyKind kind, int device);
  /// Functionally move the bytes (no timing).
  void move_bytes(std::uint64_t dst, std::uint64_t src, std::uint64_t n);

 private:
  friend class Stream;
  sim::Simulator* sim_;
  std::vector<gpu::Gpu*> gpus_;
  RuntimeParams params_;
};

}  // namespace apn::cuda
