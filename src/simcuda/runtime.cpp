#include "simcuda/runtime.hpp"

#include <cstring>
#include <stdexcept>

namespace apn::cuda {

Runtime::Runtime(sim::Simulator& sim, std::vector<gpu::Gpu*> gpus,
                 RuntimeParams params)
    : sim_(&sim), gpus_(std::move(gpus)), params_(params) {}

DevPtr Runtime::malloc_device(int device, std::uint64_t size) {
  gpu::Gpu& g = this->device(device);
  std::uint64_t off = g.allocator().allocate(size);
  return kUvaBase + static_cast<std::uint64_t>(device) * kUvaStride + off;
}

void Runtime::free_device(DevPtr ptr) {
  PointerInfo info = pointer_info(ptr);
  if (!info.is_device) throw std::invalid_argument("free of non-device ptr");
  device(info.device).allocator().deallocate(info.dev_offset);
}

PointerInfo Runtime::pointer_info(std::uint64_t addr) const {
  if (addr < kUvaBase) return PointerInfo{};
  std::uint64_t rel = addr - kUvaBase;
  int dev = static_cast<int>(rel / kUvaStride);
  if (dev >= static_cast<int>(gpus_.size()))
    return PointerInfo{};  // not ours; treat as host
  return PointerInfo{true, dev, rel % kUvaStride};
}

P2pTokens Runtime::get_p2p_tokens(DevPtr ptr, std::uint64_t size) const {
  PointerInfo info = pointer_info(ptr);
  if (!info.is_device)
    throw std::invalid_argument("P2P tokens requested for host pointer");
  return P2pTokens{info.device, info.dev_offset, size};
}

sim::Future<Runtime::Bar1MapResult> Runtime::bar1_map_async(
    DevPtr ptr, std::uint64_t size) {
  PointerInfo info = pointer_info(ptr);
  if (!info.is_device)
    throw std::invalid_argument("BAR1 map of host pointer");
  sim::Future<Bar1MapResult> result(*sim_);
  gpu::Gpu& g = device(info.device);
  std::uint64_t addr = g.bar1_map(info.dev_offset, size);
  // Mapping requires a full reconfiguration of the GPU (paper §III).
  sim_->after(g.arch().bar1_map_cost,
              [result, addr]() mutable { result.set(Bar1MapResult{addr}); });
  return result;
}

MemcpyKind Runtime::classify(std::uint64_t dst, std::uint64_t src) const {
  bool d_dev = pointer_info(dst).is_device;
  bool s_dev = pointer_info(src).is_device;
  if (d_dev && s_dev) return MemcpyKind::kDeviceToDevice;
  if (d_dev) return MemcpyKind::kHostToDevice;
  if (s_dev) return MemcpyKind::kDeviceToHost;
  throw std::invalid_argument("host-to-host memcpy through CUDA runtime");
}

Time Runtime::transfer_time(MemcpyKind kind, int dev, Bytes n) const {
  const gpu::GpuArch& a = gpus_.at(static_cast<std::size_t>(dev))->arch();
  // On-device copies run at internal memory bandwidth, far above PCIe.
  Rate rate = kind == MemcpyKind::kDeviceToHost   ? a.dma_d2h_rate
              : kind == MemcpyKind::kHostToDevice ? a.dma_h2d_rate
                                                  : Rate(100e9);
  return a.dma_setup + units::transfer_time(n, rate);
}

sim::Resource& Runtime::engine_for(MemcpyKind kind, int dev) {
  gpu::Gpu& g = device(dev);
  return kind == MemcpyKind::kHostToDevice ? g.copy_engine_h2d()
                                           : g.copy_engine_d2h();
}

void Runtime::move_bytes(std::uint64_t dst, std::uint64_t src,
                         std::uint64_t n) {
  PointerInfo di = pointer_info(dst);
  PointerInfo si = pointer_info(src);
  if (di.is_device && si.is_device) {
    std::vector<std::uint8_t> tmp(n);
    device(si.device).memory().read(si.dev_offset,
                                    std::span<std::uint8_t>(tmp));
    device(di.device).memory().write(di.dev_offset,
                                     std::span<const std::uint8_t>(tmp));
  } else if (di.is_device) {
    device(di.device).memory().write(
        di.dev_offset,
        std::span<const std::uint8_t>(
            reinterpret_cast<const std::uint8_t*>(src), n));
  } else if (si.is_device) {
    device(si.device).memory().read(
        si.dev_offset,
        std::span<std::uint8_t>(reinterpret_cast<std::uint8_t*>(dst), n));
  } else {
    std::memcpy(reinterpret_cast<void*>(dst),
                reinterpret_cast<const void*>(src), n);
  }
}

Done Runtime::memcpy_sync(std::uint64_t dst, std::uint64_t src,
                          std::uint64_t n) {
  MemcpyKind kind = classify(dst, src);
  PointerInfo di = pointer_info(dst);
  PointerInfo si = pointer_info(src);
  int dev = di.is_device ? di.device : si.device;

  Done done(*sim_);
  // A synchronous copy pays the driver/sync overhead up front (the host
  // spins in cuMemcpy), then occupies the copy engine for the transfer.
  Time overhead = kind == MemcpyKind::kDeviceToHost
                      ? params_.d2h_sync_overhead
                      : params_.h2d_sync_overhead;
  sim_->after(overhead, [this, kind, dev, dst, src, n, done]() mutable {
    engine_for(kind, dev).post(transfer_time(kind, dev, Bytes(n)),
                               [this, dst, src, n, done]() mutable {
                                 move_bytes(dst, src, n);
                                 done.set(Unit{});
                               });
  });
  return done;
}

Stream::Stream(Runtime& rt, int device)
    : rt_(&rt), device_(device), tail_(rt.simulator()) {
  tail_.set(Unit{});  // empty stream: already complete
}

Done Stream::launch_kernel(Time duration) {
  Done done(rt_->simulator());
  Done prev = tail_;
  tail_ = done;
  Runtime* rt = rt_;
  int dev = device_;
  // Kernel begins once the previous op in this stream completed, then
  // occupies the GPU compute engine for its duration.
  auto start = [rt, dev, duration, done]() mutable {
    rt->device(dev).compute_engine().post(duration,
                                          [done]() mutable { done.set({}); });
  };
  if (prev.ready()) {
    rt->simulator().after(rt->params().enqueue_overhead, start);
  } else {
    [](Done prev, auto start) -> sim::Coro {
      co_await prev;
      start();
    }(prev, std::move(start));
  }
  return done;
}

Done Stream::memcpy_async(std::uint64_t dst, std::uint64_t src,
                          std::uint64_t n) {
  Done done(rt_->simulator());
  Done prev = tail_;
  tail_ = done;
  Runtime* rt = rt_;
  MemcpyKind kind = rt->classify(dst, src);
  cuda::PointerInfo di = rt->pointer_info(dst);
  cuda::PointerInfo si = rt->pointer_info(src);
  int dev = di.is_device ? di.device : si.device;

  auto start = [rt, kind, dev, dst, src, n, done]() mutable {
    rt->engine_for(kind, dev).post(rt->transfer_time(kind, dev, Bytes(n)),
                                   [rt, dst, src, n, done]() mutable {
                                     rt->move_bytes(dst, src, n);
                                     done.set({});
                                   });
  };
  if (prev.ready()) {
    rt->simulator().after(rt->params().enqueue_overhead, start);
  } else {
    [](Done prev, auto start) -> sim::Coro {
      co_await prev;
      start();
    }(prev, std::move(start));
  }
  return done;
}

}  // namespace apn::cuda
