// Intrusive waiter list — the one blocking primitive under every sync
// object (Gate, Future, Semaphore, CreditPool, Queue).
//
// A Waiter node is embedded in the awaiter object, which lives in the
// suspended coroutine's frame — a stable address for exactly as long as the
// coroutine is parked on the list. Linking frames together instead of
// pushing handles into a std::deque makes suspend/wake allocation-free:
// suspend is one pointer append, wake is one pop plus a ready-ring push.
//
// Wakeups MUST go through Simulator::schedule_resume (never h.resume()
// inline): the resumed coroutine may destroy its frame — and with it the
// Waiter node — so the node must be unlinked before the resume runs, and
// inline resumption would also break deterministic FIFO interleaving.
#pragma once

#include <coroutine>
#include <cstddef>

namespace apn::sim {

/// Base waiter node: a parked coroutine. Sync objects needing extra
/// per-waiter state (credit count, delivery slot) derive from it.
struct Waiter {
  std::coroutine_handle<> handle;
  Waiter* next = nullptr;
};

/// Intrusive singly-linked FIFO of suspended coroutines. Does not own its
/// nodes while alive; each node must stay alive (i.e. the owning coroutine
/// must stay suspended) until popped. Destruction is the one exception:
/// a frame still parked here when the primitive dies can never resume, so
/// the destructor reclaims it (see "Coroutine lifetime discipline" in
/// docs/CORRECTNESS.md — this is what lets --coro-check treat any frame
/// alive at exit as a genuine leak).
template <typename Node = Waiter>
class WaiterList {
 public:
  WaiterList() = default;
  WaiterList(const WaiterList&) = delete;
  WaiterList& operator=(const WaiterList&) = delete;

  ~WaiterList() {
    // The node lives inside the frame being destroyed, so read the link
    // before the destroy. Destroys may cascade (a dying frame's locals can
    // drop the last reference to another primitive holding parked frames),
    // but never re-enter this list: a frame parked here cannot also hold
    // the last reference to this list's owner, or the owner would still be
    // alive.
    Node* n = head_;
    head_ = nullptr;
    tail_ = nullptr;
    size_ = 0;
    while (n != nullptr) {
      Node* next = static_cast<Node*>(n->next);
      std::coroutine_handle<> h = n->handle;
      n = next;
      if (h) h.destroy();
    }
  }

  bool empty() const { return head_ == nullptr; }
  std::size_t size() const { return size_; }

  /// Front of the FIFO (oldest waiter); list must be non-empty.
  Node* front() const { return head_; }

  void push(Node* n) {
    n->next = nullptr;
    if (tail_ != nullptr)
      tail_->next = static_cast<Waiter*>(n);
    else
      head_ = n;
    tail_ = n;
    ++size_;
  }

  /// Unlink and return the oldest waiter; list must be non-empty.
  Node* pop() {
    Node* n = head_;
    head_ = static_cast<Node*>(n->next);
    if (head_ == nullptr) tail_ = nullptr;
    --size_;
    return n;
  }

 private:
  Node* head_ = nullptr;
  Node* tail_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace apn::sim
