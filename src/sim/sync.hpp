// Synchronization primitives for simulation processes:
//   Gate       — one-shot broadcast event (open() wakes all waiters)
//   Future<T>  — one-shot event carrying a value (shared handle)
//   Semaphore  — counting semaphore with FIFO wakeup
//   CreditPool — weighted (byte-granularity) semaphore for flow control
//   Queue<T>   — unbounded async message queue
//
// All wakeups are scheduled as simulator events (never resumed inline), so
// process interleaving is deterministic and stack depth stays bounded.
#pragma once

#include <coroutine>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "sim/coro.hpp"
#include "sim/simulator.hpp"

namespace apn::sim {

/// One-shot broadcast event. Waiting on an already-open gate does not
/// suspend. open() is idempotent.
class Gate {
 public:
  explicit Gate(Simulator& sim) : sim_(&sim) {}
  Gate(const Gate&) = delete;
  Gate& operator=(const Gate&) = delete;

  bool is_open() const { return open_; }

  void open() {
    if (open_) return;
    open_ = true;
    for (auto h : waiters_) sim_->after(0, [h] { h.resume(); });
    waiters_.clear();
  }

  auto wait() {
    struct Awaiter {
      Gate& gate;
      bool await_ready() const noexcept { return gate.open_; }
      void await_suspend(std::coroutine_handle<> h) {
        gate.waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

 private:
  Simulator* sim_;
  bool open_ = false;
  std::vector<std::coroutine_handle<>> waiters_;
};

/// One-shot event carrying a value. Copyable shared handle: producer calls
/// set(), any number of consumers co_await it (each receives a copy).
template <typename T>
class Future {
 public:
  explicit Future(Simulator& sim)
      : state_(std::make_shared<State>(State{&sim, {}, {}})) {}

  bool ready() const { return state_->value.has_value(); }

  void set(T value) {
    State& st = *state_;
    if (st.value.has_value()) return;  // one-shot
    st.value = std::move(value);
    for (auto h : st.waiters) st.sim->after(0, [h] { h.resume(); });
    st.waiters.clear();
  }

  /// Value access once ready.
  const T& get() const { return *state_->value; }

  auto operator co_await() {
    struct Awaiter {
      std::shared_ptr<State> st;
      bool await_ready() const noexcept { return st->value.has_value(); }
      void await_suspend(std::coroutine_handle<> h) {
        st->waiters.push_back(h);
      }
      T await_resume() const { return *st->value; }
    };
    return Awaiter{state_};
  }

 private:
  struct State {
    Simulator* sim;
    std::optional<T> value;
    std::vector<std::coroutine_handle<>> waiters;
  };
  std::shared_ptr<State> state_;
};

/// Counting semaphore; acquire() suspends while the count is zero.
/// Waiters are woken strictly FIFO.
class Semaphore {
 public:
  Semaphore(Simulator& sim, std::int64_t initial)
      : sim_(&sim), count_(initial) {}
  Semaphore(const Semaphore&) = delete;
  Semaphore& operator=(const Semaphore&) = delete;

  std::int64_t available() const { return count_; }
  std::size_t waiting() const { return waiters_.size(); }

  auto acquire() {
    struct Awaiter {
      Semaphore& sem;
      bool await_ready() const noexcept { return false; }
      bool await_suspend(std::coroutine_handle<> h) {
        if (sem.count_ > 0 && sem.waiters_.empty()) {
          --sem.count_;
          return false;  // resume immediately
        }
        sem.waiters_.push_back(h);
        return true;
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

  /// Non-suspending acquire; returns false if no permit is available now.
  bool try_acquire() {
    if (count_ > 0 && waiters_.empty()) {
      --count_;
      return true;
    }
    return false;
  }

  void release() {
    if (!waiters_.empty()) {
      auto h = waiters_.front();
      waiters_.pop_front();
      sim_->after(0, [h] { h.resume(); });
    } else {
      ++count_;
    }
  }

 private:
  Simulator* sim_;
  std::int64_t count_;
  std::deque<std::coroutine_handle<>> waiters_;
};

/// Weighted semaphore with FIFO ordering — models byte-granularity buffer
/// space (e.g. the APEnet+ 32 KB TX FIFO). acquire(n) suspends until n units
/// are free; head-of-line blocking is intentional (a FIFO cannot be
/// overtaken by smaller packets).
class CreditPool {
 public:
  CreditPool(Simulator& sim, std::int64_t capacity)
      : sim_(&sim), capacity_(capacity), available_(capacity) {}
  CreditPool(const CreditPool&) = delete;
  CreditPool& operator=(const CreditPool&) = delete;

  std::int64_t capacity() const { return capacity_; }
  std::int64_t available() const { return available_; }
  std::int64_t in_use() const { return capacity_ - available_; }

  auto acquire(std::int64_t n) {
    struct Awaiter {
      CreditPool& pool;
      std::int64_t need;
      bool await_ready() const noexcept { return false; }
      bool await_suspend(std::coroutine_handle<> h) {
        if (pool.waiters_.empty() && pool.available_ >= need) {
          pool.available_ -= need;
          return false;
        }
        pool.waiters_.push_back(Waiter{need, h});
        return true;
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, n};
  }

  void release(std::int64_t n) {
    available_ += n;
    while (!waiters_.empty() && waiters_.front().need <= available_) {
      Waiter w = waiters_.front();
      waiters_.pop_front();
      available_ -= w.need;
      sim_->after(0, [h = w.handle] { h.resume(); });
    }
  }

 private:
  struct Waiter {
    std::int64_t need;
    std::coroutine_handle<> handle;
  };
  Simulator* sim_;
  std::int64_t capacity_;
  std::int64_t available_;
  std::deque<Waiter> waiters_;
};

/// Unbounded async FIFO queue. pop() suspends while empty; push() never
/// suspends. Items pushed while waiters are suspended are delivered
/// directly into the waiter's frame (never re-enqueued), so a concurrent
/// pop() at the same tick cannot steal a woken waiter's item.
///
/// Invariant: waiters_ non-empty implies items_ empty.
template <typename T>
class Queue {
 public:
  explicit Queue(Simulator& sim) : sim_(&sim) {}
  Queue(const Queue&) = delete;
  Queue& operator=(const Queue&) = delete;

  std::size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }

  void push(T item) {
    if (!waiters_.empty()) {
      Waiter w = waiters_.front();
      waiters_.pop_front();
      *w.slot = std::move(item);
      sim_->after(0, [h = w.handle] { h.resume(); });
      return;
    }
    items_.push_back(std::move(item));
  }

  auto pop() {
    struct Awaiter {
      Queue& q;
      std::optional<T> item;
      bool await_ready() {
        if (!q.items_.empty()) {
          item = std::move(q.items_.front());
          q.items_.pop_front();
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) {
        q.waiters_.push_back(Waiter{h, &item});
      }
      T await_resume() { return std::move(*item); }
    };
    return Awaiter{*this, std::nullopt};
  }

 private:
  struct Waiter {
    std::coroutine_handle<> handle;
    std::optional<T>* slot;
  };
  Simulator* sim_;
  std::deque<T> items_;
  std::deque<Waiter> waiters_;
};

}  // namespace apn::sim
