// Synchronization primitives for simulation processes:
//   Gate       — one-shot broadcast event (open() wakes all waiters)
//   Future<T>  — one-shot event carrying a value (shared handle)
//   Semaphore  — counting semaphore with FIFO wakeup
//   CreditPool — weighted (byte-granularity) semaphore for flow control
//   Queue<T>   — unbounded async message queue
//
// All five park coroutines on the shared intrusive WaiterList (waiter.hpp):
// the waiter node is embedded in the awaiter inside the coroutine frame, so
// suspending costs no allocation, and every wakeup goes through
// Simulator::schedule_resume — the same-tick ready ring — never the heap.
// Wakeups are always scheduled, never resumed inline, so process
// interleaving is deterministic and stack depth stays bounded.
#pragma once

#include <cassert>
#include <coroutine>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

#include "sim/coro.hpp"
#include "sim/simulator.hpp"
#include "sim/waiter.hpp"

namespace apn::sim {

/// One-shot broadcast event. Waiting on an already-open gate does not
/// suspend. open() is idempotent.
class Gate {
 public:
  explicit Gate(Simulator& sim) : sim_(&sim) {}
  Gate(const Gate&) = delete;
  Gate& operator=(const Gate&) = delete;

  bool is_open() const { return open_; }

  void open() {
    if (open_) return;
    open_ = true;
    while (!waiters_.empty()) sim_->schedule_resume(waiters_.pop()->handle);
  }

  auto wait() {
    struct Awaiter : Waiter {
      Gate& gate;
      explicit Awaiter(Gate& g) : gate(g) {}
      bool await_ready() const noexcept { return gate.open_; }
      void await_suspend(std::coroutine_handle<> h) {
        handle = h;
        gate.waiters_.push(this);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

 private:
  Simulator* sim_;
  bool open_ = false;
  WaiterList<> waiters_;
};

/// One-shot event carrying a value. Copyable shared handle: producer calls
/// set(), any number of consumers co_await it (each receives a copy).
template <typename T>
class Future {
 public:
  explicit Future(Simulator& sim) : state_(std::make_shared<State>(sim)) {}

  bool ready() const { return state_->value.has_value(); }

  void set(T value) {
    State& st = *state_;
    if (st.value.has_value()) return;  // one-shot
    st.value = std::move(value);
    while (!st.waiters.empty()) st.sim->schedule_resume(st.waiters.pop()->handle);
  }

  /// Value access once ready.
  const T& get() const { return *state_->value; }

  auto operator co_await() {
    struct Awaiter : Waiter {
      std::shared_ptr<State> st;
      explicit Awaiter(std::shared_ptr<State> s) : st(std::move(s)) {}
      bool await_ready() const noexcept { return st->value.has_value(); }
      void await_suspend(std::coroutine_handle<> h) {
        handle = h;
        st->waiters.push(this);
      }
      T await_resume() const { return *st->value; }
    };
    return Awaiter{state_};
  }

 private:
  struct State {
    explicit State(Simulator& s) : sim(&s) {}
    Simulator* sim;
    std::optional<T> value;
    WaiterList<> waiters;
  };
  std::shared_ptr<State> state_;
};

/// Counting semaphore; acquire() suspends while the count is zero.
/// Waiters are woken strictly FIFO.
///
/// No-spurious-wake invariant: a non-empty waiter list implies count_ == 0.
/// acquire() only decrements when no one is queued ahead, and release()
/// hands the permit directly to the oldest waiter instead of incrementing —
/// so a woken waiter never has to re-check and re-queue, and a release can
/// never be stolen by a later try_acquire().
class Semaphore {
 public:
  Semaphore(Simulator& sim, std::int64_t initial)
      : sim_(&sim), count_(initial) {}
  Semaphore(const Semaphore&) = delete;
  Semaphore& operator=(const Semaphore&) = delete;

  std::int64_t available() const { return count_; }
  std::size_t waiting() const { return waiters_.size(); }

  auto acquire() {
    struct Awaiter : Waiter {
      Semaphore& sem;
      explicit Awaiter(Semaphore& s) : sem(s) {}
      bool await_ready() const noexcept { return false; }
      bool await_suspend(std::coroutine_handle<> h) {
        if (sem.count_ > 0 && sem.waiters_.empty()) {
          --sem.count_;
          return false;  // resume immediately
        }
        handle = h;
        sem.waiters_.push(this);
        return true;
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

  /// Non-suspending acquire; returns false if no permit is available now.
  bool try_acquire() {
    if (count_ > 0 && waiters_.empty()) {
      --count_;
      return true;
    }
    return false;
  }

  void release() {
    if (!waiters_.empty()) {
      // Direct handoff: the invariant guarantees no permits are banked
      // while anyone waits, so the released permit belongs to the head
      // waiter — waking it is never spurious.
      assert(count_ == 0 && "semaphore invariant: waiters imply count==0");
      sim_->schedule_resume(waiters_.pop()->handle);
    } else {
      ++count_;
    }
  }

 private:
  Simulator* sim_;
  std::int64_t count_;
  WaiterList<> waiters_;
};

/// Weighted semaphore with FIFO ordering — models byte-granularity buffer
/// space (e.g. the APEnet+ 32 KB TX FIFO). acquire(n) suspends until n units
/// are free; head-of-line blocking is intentional (a FIFO cannot be
/// overtaken by smaller packets).
class CreditPool {
 public:
  CreditPool(Simulator& sim, std::int64_t capacity)
      : sim_(&sim), capacity_(capacity), available_(capacity) {}
  CreditPool(const CreditPool&) = delete;
  CreditPool& operator=(const CreditPool&) = delete;

  std::int64_t capacity() const { return capacity_; }
  std::int64_t available() const { return available_; }
  std::int64_t in_use() const { return capacity_ - available_; }

  /// Reserve `n` units, suspending until they are free. For a bounded pool
  /// (capacity > 0), throws std::invalid_argument when the request can
  /// never be satisfied (n < 0 or n > capacity()) — previously such a
  /// request parked the caller forever and, being head-of-line, deadlocked
  /// the whole pool. A pool built with capacity 0 is a pure counting
  /// pool (e.g. an arrived-bytes counter fed by release()); any
  /// non-negative request is legal there.
  auto acquire(std::int64_t n) {
    if (n < 0 || (capacity_ > 0 && n > capacity_))
      throw std::invalid_argument(
          "CreditPool::acquire: request of " + std::to_string(n) +
          " units can never be satisfied (capacity " +
          std::to_string(capacity_) + ")");
    struct Awaiter : CreditWaiter {
      CreditPool& pool;
      Awaiter(CreditPool& p, std::int64_t n) : pool(p) { need = n; }
      bool await_ready() const noexcept { return false; }
      bool await_suspend(std::coroutine_handle<> h) {
        if (pool.waiters_.empty() && pool.available_ >= need) {
          pool.available_ -= need;
          return false;
        }
        handle = h;
        pool.waiters_.push(this);
        return true;
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, n};
  }

  void release(std::int64_t n) {
    available_ += n;
    while (!waiters_.empty() && waiters_.front()->need <= available_) {
      CreditWaiter* w = waiters_.pop();
      available_ -= w->need;
      sim_->schedule_resume(w->handle);
    }
  }

 private:
  struct CreditWaiter : Waiter {
    std::int64_t need = 0;
  };
  Simulator* sim_;
  std::int64_t capacity_;
  std::int64_t available_;
  WaiterList<CreditWaiter> waiters_;
};

/// Unbounded async FIFO queue. pop() suspends while empty; push() never
/// suspends. Items pushed while waiters are suspended are delivered
/// directly into the waiter's frame (never re-enqueued), so a concurrent
/// pop() at the same tick cannot steal a woken waiter's item.
///
/// Invariant: waiters_ non-empty implies items_ empty.
template <typename T>
class Queue {
 public:
  explicit Queue(Simulator& sim) : sim_(&sim) {}
  Queue(const Queue&) = delete;
  Queue& operator=(const Queue&) = delete;

  std::size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }

  void push(T item) {
    if (!waiters_.empty()) {
      QueueWaiter* w = waiters_.pop();
      *w->slot = std::move(item);
      sim_->schedule_resume(w->handle);
      return;
    }
    items_.push_back(std::move(item));
  }

  auto pop() {
    struct Awaiter : QueueWaiter {
      Queue& q;
      std::optional<T> item;
      explicit Awaiter(Queue& queue) : q(queue) {}
      bool await_ready() {
        if (!q.items_.empty()) {
          item = std::move(q.items_.front());
          q.items_.pop_front();
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) {
        this->handle = h;
        this->slot = &item;
        q.waiters_.push(this);
      }
      T await_resume() { return std::move(*item); }
    };
    return Awaiter{*this};
  }

 private:
  struct QueueWaiter : Waiter {
    std::optional<T>* slot = nullptr;
  };
  Simulator* sim_;
  std::deque<T> items_;
  WaiterList<QueueWaiter> waiters_;
};

}  // namespace apn::sim
