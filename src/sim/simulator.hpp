// Deterministic single-threaded discrete-event simulator.
//
// Events are (time, sequence) ordered: two events scheduled for the same
// picosecond fire in scheduling order, which makes every run bit-exact.
// All higher-level primitives (coroutine delays, resources, channels) are
// built on Simulator::at/after and the coroutine fast paths
// (schedule_resume / resume_after).
//
// Engine layout — the hot path allocates nothing per event:
//
//  * EventNode: an intrusive, fixed-size node carved from simulator-owned
//    slabs and recycled through a freelist. The payload lives in an inline
//    buffer (coroutine handle or small callable); only callables larger
//    than the inline budget fall back to one boxed allocation.
//  * ready ring: a FIFO of nodes scheduled for the *current* picosecond
//    (schedule_resume, after(0, ...)). Same-tick wakeups — the dominant
//    event class, every Gate/Semaphore/Queue wakeup is one — bypass every
//    ordered structure: O(1) push, O(1) pop.
//  * timing wheel: 1024 one-picosecond FIFO slots covering the window
//    [base, base + 1024). Near-future events — chunked DMA trains, bus
//    beats — are O(1) push/pop; an occupancy bitmap finds the next
//    non-empty slot with a couple of count-trailing-zero steps.
//  * heap_: a 4-ary heap of slim (time, seq, node*) entries for events
//    beyond the wheel window. Sifting compares and moves 24-byte
//    trivially-copyable entries, never the payloads. When ring and wheel
//    drain, the window advances to the heap top and near events migrate
//    into the wheel.
//
// Determinism contract: every event receives a global sequence number, and
// the dispatcher always fires the (time, seq)-minimum event. Each slot
// FIFO and the ring are seq-ordered by construction (appends happen in
// allocation order), heap pops for equal times come out in seq order, and
// migration appends into empty slots only — so the merged order is the
// exact total order a single (time, seq) priority queue would produce:
// bit-identical simulated time, regardless of the internal structure.
#pragma once

#include <algorithm>
#include <bit>
#include <coroutine>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "check/coro_check.hpp"
#include "common/hot.hpp"
#include "common/units.hpp"

namespace apn::sim {

/// Observer of event dispatch, installed with Simulator::set_event_hook.
/// The simulation race detector (src/check) implements this to learn, for
/// every fired event, its (time, seq) and the seq of the event that
/// scheduled it (its causal parent) — sim itself depends on nothing above
/// it. `parent` is kNoParent for events scheduled outside any event
/// (setup code, coroutine bodies started before run()).
class EventHook {
 public:
  static constexpr std::uint64_t kNoParent = ~std::uint64_t{0};

  virtual ~EventHook() = default;
  /// Called before the event's payload runs.
  virtual void on_event_begin(Time now, std::uint64_t seq,
                              std::uint64_t parent) = 0;
  /// Called after the payload returned (including via exception unwinding
  /// being absent: payloads that throw terminate the run).
  virtual void on_event_end() = 0;
  /// Called by sim::Channel at the start of a delivery: the sanctioned
  /// point where model state crosses a partition boundary (the ownership
  /// oracle in src/check resets its per-event owner set here).
  virtual void on_channel_delivery() {}
};

class Simulator {
 public:
  // The coro-check tick mirror (a thread-local, stored at tick advances,
  // never on the per-event path) lets frame registration stamp a simulated
  // birth time without the sim layer depending on the check layer.
  Simulator() { check::coro::note_tick(0); }
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  ~Simulator() {
    for (HeapEntry& e : heap_) e.node->drop(e.node);
    for (EventNode* n = ring_head_; n != nullptr; n = n->next) n->drop(n);
    if (wheel_size_ > 0) {
      for (Slot& s : slots_)
        for (EventNode* n = s.head; n != nullptr; n = n->next) n->drop(n);
    }
  }

  /// Current simulated time (picoseconds).
  Time now() const { return now_; }

  /// Schedule `fn` at absolute time `t` (must be >= now(); clamped if not).
  /// Any callable is accepted; small ones are stored inline in the event
  /// node, large ones cost one boxed allocation.
  template <typename F>
  void at(Time t, F&& fn) {
    schedule_node(make_node<std::decay_t<F>>(std::forward<F>(fn)), t);
  }

  /// Schedule `fn` after `delay` picoseconds.
  template <typename F>
  void after(Time delay, F&& fn) {
    EventNode* n = make_node<std::decay_t<F>>(std::forward<F>(fn));
    if (delay <= 0)
      ring_push(n);
    else
      schedule_future(n, now_ + delay);
  }

  /// Fast path: resume `h` at the current tick, FIFO with every other
  /// same-tick event. Equivalent to after(0, [h]{ h.resume(); }) but
  /// allocation-free and heap-free.
  APN_HOT void schedule_resume(std::coroutine_handle<> h) {
    ring_push(make_resume_node(h));
  }

  /// Fast path: resume `h` at absolute time `t` (clamped to now()).
  APN_HOT void resume_at(Time t, std::coroutine_handle<> h) {
    schedule_node(make_resume_node(h), t);
  }

  /// Fast path: resume `h` after `delay` picoseconds.
  APN_HOT void resume_after(Time delay, std::coroutine_handle<> h) {
    EventNode* n = make_resume_node(h);
    if (delay <= 0)
      ring_push(n);
    else
      schedule_future(n, now_ + delay);
  }

  /// Process a single event. Returns false if no event is pending.
  APN_HOT bool step() {
    EventNode* n = pop_next();
    if (n == nullptr) return false;
    ++processed_;
    // The invoke trampoline moves the payload out, releases the node back
    // to the freelist, then runs the payload — so events scheduled by the
    // payload reuse the hot node immediately. running_seq_ stays set for
    // the payload's whole execution: nodes it schedules record it as their
    // causal parent.
    running_seq_ = n->seq;
    if (hook_ != nullptr) {
      hook_->on_event_begin(now_, n->seq, n->parent);
      n->invoke(*this, n);
      hook_->on_event_end();
    } else {
      n->invoke(*this, n);
    }
    running_seq_ = EventHook::kNoParent;
    return true;
  }

  /// Run until the event queue drains.
  void run() {
    while (step()) {
    }
  }

  /// Run all events with time <= `t`, then advance the clock to `t`.
  void run_until(Time t) {
    while (peek_time(t)) step();
    if (now_ < t) {
      now_ = t;
      check::coro::note_tick(now_);
    }
  }

  /// Install (or clear, with nullptr) the event-dispatch observer. Debug
  /// tooling only: with no hook the dispatch loop takes the unhooked path.
  void set_event_hook(EventHook* hook) { hook_ = hook; }
  EventHook* event_hook() const { return hook_; }

  /// Sequence number of the event currently being dispatched, or
  /// EventHook::kNoParent outside dispatch.
  std::uint64_t running_seq() const { return running_seq_; }

  std::uint64_t events_processed() const { return processed_; }
  bool empty() const {
    return ring_head_ == nullptr && wheel_size_ == 0 && heap_.empty();
  }
  std::size_t pending() const {
    return ring_size_ + wheel_size_ + heap_.size();
  }

 private:
  /// Inline payload budget. Sized so the capturing lambdas on the model's
  /// hot paths (this + a UniqueFn completion + a few scalars) stay inline;
  /// with the 40-byte header the node stays within two cache lines.
  static constexpr std::size_t kInlineBytes = 80;
  /// Wheel window span in slots (1 slot = 1 ps). Power of two.
  static constexpr Time kWheelSlots = 1024;

  struct EventNode {
    std::uint64_t seq;
    std::uint64_t parent;  // seq of the scheduling event (causal parent)
    EventNode* next;  // freelist / ring / wheel-slot link
    void (*invoke)(Simulator&, EventNode*);  // fire payload, release node
    void (*drop)(EventNode*);                // destroy payload, no fire
    alignas(std::max_align_t) unsigned char storage[kInlineBytes];
  };

  /// One wheel slot: FIFO of nodes firing at time base_ + slot index.
  struct Slot {
    EventNode* head = nullptr;
    EventNode* tail = nullptr;
  };

  /// Slim heap entry: sifting compares and moves these, not the nodes.
  /// Fire time lives here and in the wheel geometry — never in the node.
  struct HeapEntry {
    Time time;
    std::uint64_t seq;
    EventNode* node;
  };
  static bool entry_less(const HeapEntry& a, const HeapEntry& b) {
    return a.time < b.time || (a.time == b.time && a.seq < b.seq);
  }

  // ---- payload trampolines ----------------------------------------------

  static void coro_invoke(Simulator& sim, EventNode* n) {
    auto h = *std::launder(
        reinterpret_cast<std::coroutine_handle<>*>(n->storage));
    sim.release_node(n);
    h.resume();
  }

  /// Dropping a pending resume reclaims the suspended frame: it can never
  /// be resumed once its node is discarded, and the node is the only thing
  /// holding it (a frame is parked XOR scheduled). Cascaded destroys (frame
  /// locals releasing sync primitives with their own parked frames) never
  /// touch this simulator's queues, so the destructor's drop loops stay
  /// valid while frames die under them.
  static void coro_drop(EventNode* n) {
    auto h = *std::launder(
        reinterpret_cast<std::coroutine_handle<>*>(n->storage));
    if (h) h.destroy();
  }

  template <typename F>
  static void inline_invoke(Simulator& sim, EventNode* n) {
    F* slot = std::launder(reinterpret_cast<F*>(n->storage));
    F fn = std::move(*slot);
    slot->~F();
    sim.release_node(n);
    fn();
  }

  template <typename F>
  static void inline_drop(EventNode* n) {
    std::launder(reinterpret_cast<F*>(n->storage))->~F();
  }

  template <typename F>
  static void boxed_invoke(Simulator& sim, EventNode* n) {
    F* boxed = *std::launder(reinterpret_cast<F**>(n->storage));
    sim.release_node(n);
    F fn = std::move(*boxed);
    delete boxed;
    fn();
  }

  template <typename F>
  static void boxed_drop(EventNode* n) {
    delete *std::launder(reinterpret_cast<F**>(n->storage));
  }

  template <typename F>
  static constexpr bool fits_inline() {
    return sizeof(F) <= kInlineBytes &&
           alignof(F) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<F>;
  }

  template <typename F, typename Arg>
  APN_HOT EventNode* make_node(Arg&& fn) {
    EventNode* n = alloc_node();
    n->seq = next_seq_++;
    n->parent = running_seq_;
    if constexpr (fits_inline<F>()) {
      ::new (static_cast<void*>(n->storage)) F(std::forward<Arg>(fn));
      n->invoke = &inline_invoke<F>;
      n->drop = &inline_drop<F>;
    } else {
      // Deliberate cold fallback for oversized callables; the common case
      // is the placement-new above.  apn-lint: allow(hot-path-alloc)
      F* boxed = new F(std::forward<Arg>(fn));
      ::new (static_cast<void*>(n->storage)) (F*)(boxed);
      n->invoke = &boxed_invoke<F>;
      n->drop = &boxed_drop<F>;
    }
    return n;
  }

  APN_HOT EventNode* make_resume_node(std::coroutine_handle<> h) {
    EventNode* n = alloc_node();
    n->seq = next_seq_++;
    n->parent = running_seq_;
    n->invoke = &coro_invoke;
    n->drop = &coro_drop;
    ::new (static_cast<void*>(n->storage)) std::coroutine_handle<>(h);
    return n;
  }

  // ---- slab / freelist ---------------------------------------------------

  APN_HOT EventNode* alloc_node() {
    if (free_ == nullptr) grow_slab();
    EventNode* n = free_;
    free_ = n->next;
    return n;
  }

  void release_node(EventNode* n) {
    n->next = free_;
    free_ = n;
  }

  void grow_slab() {
    // Fixed 64 KB slabs, two properties on purpose: default-init (not
    // make_unique's value-init — nodes are fully written on allocation, so
    // zeroing slabs would be pure memset overhead), and a size below the
    // glibc mmap threshold so short-lived Simulators recycle arena memory
    // instead of paying mmap/munmap plus kernel page-zeroing per instance.
    constexpr std::size_t count = (64 * 1024) / sizeof(EventNode);
    slabs_.emplace_back(new EventNode[count]);
    EventNode* nodes = slabs_.back().get();
    // Chain in reverse so allocation walks the slab in address order.
    for (std::size_t i = count; i-- > 0;) {
      nodes[i].next = free_;
      free_ = &nodes[i];
    }
  }

  // ---- scheduling --------------------------------------------------------

  void schedule_node(EventNode* n, Time t) {
    if (t <= now_)
      ring_push(n);
    else
      schedule_future(n, t);
  }

  /// Route a strictly-future event to the wheel or the overflow heap.
  /// Invariants: base_ <= now_ < t, so t - base_ > 0; the heap only ever
  /// holds times >= base_ + kWheelSlots.
  void schedule_future(EventNode* n, Time t) {
    const Time rel = t - base_;
    if (rel < kWheelSlots)
      wheel_push(n, static_cast<std::size_t>(rel));
    else
      heap_push(n, t);
  }

  // ---- ready ring (same-tick FIFO) --------------------------------------

  void ring_push(EventNode* n) {
    n->next = nullptr;
    if (ring_tail_ != nullptr)
      ring_tail_->next = n;
    else
      ring_head_ = n;
    ring_tail_ = n;
    ++ring_size_;
  }

  EventNode* ring_pop() {
    EventNode* n = ring_head_;
    ring_head_ = n->next;
    if (ring_head_ == nullptr) ring_tail_ = nullptr;
    --ring_size_;
    return n;
  }

  // ---- timing wheel ------------------------------------------------------

  void wheel_push(EventNode* n, std::size_t rel) {
    Slot& s = slots_[rel];
    n->next = nullptr;
    if (s.tail != nullptr)
      s.tail->next = n;
    else {
      s.head = n;
      bitmap_[rel >> 6] |= std::uint64_t{1} << (rel & 63);
    }
    s.tail = n;
    ++wheel_size_;
  }

  EventNode* wheel_pop(std::size_t rel) {
    Slot& s = slots_[rel];
    EventNode* n = s.head;
    s.head = n->next;
    if (s.head == nullptr) {
      s.tail = nullptr;
      bitmap_[rel >> 6] &= ~(std::uint64_t{1} << (rel & 63));
    }
    --wheel_size_;
    return n;
  }

  /// Index of the first occupied slot >= `from`; wheel must be non-empty
  /// and hold no slot below `from`.
  std::size_t next_occupied_slot(std::size_t from) const {
    std::size_t w = from >> 6;
    std::uint64_t word = bitmap_[w] & (~std::uint64_t{0} << (from & 63));
    while (word == 0) word = bitmap_[++w];
    return (w << 6) + static_cast<std::size_t>(std::countr_zero(word));
  }

  // ---- future-event heap -------------------------------------------------
  //
  // 4-ary min-heap on (time, seq): half the levels of a binary heap, and
  // each level's four children share one or two cache lines. (time, seq)
  // keys are unique, so the pop order — the only thing determinism sees —
  // is the same for any correct priority structure.

  void heap_push(EventNode* n, Time t) {
    heap_.push_back(HeapEntry{t, n->seq, n});
    std::size_t i = heap_.size() - 1;
    const HeapEntry e = heap_[i];
    while (i > 0) {
      const std::size_t parent = (i - 1) >> 2;
      if (!entry_less(e, heap_[parent])) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = e;
  }

  HeapEntry heap_pop() {
    const HeapEntry result = heap_[0];
    const HeapEntry e = heap_.back();
    heap_.pop_back();
    const std::size_t size = heap_.size();
    if (size > 0) {
      std::size_t i = 0;
      for (;;) {
        const std::size_t first = (i << 2) + 1;
        if (first >= size) break;
        const std::size_t last = std::min(first + 4, size);
        std::size_t best = first;
        for (std::size_t c = first + 1; c < last; ++c)
          if (entry_less(heap_[c], heap_[best])) best = c;
        if (!entry_less(heap_[best], e)) break;
        heap_[i] = heap_[best];
        i = best;
      }
      heap_[i] = e;
    }
    return result;
  }

  // ---- dispatch ----------------------------------------------------------

  /// Pop the (time, seq)-minimum event and advance now_ to its fire time.
  ///
  /// Order argument: the slot at now_ holds only events scheduled before
  /// this tick began (later same-tick schedules go to the ring), so its
  /// seqs all precede the ring's; the ring precedes any strictly-later
  /// slot; and every wheel time precedes every heap time.
  APN_HOT EventNode* pop_next() {
    if (wheel_size_ > 0) {
      const Time rel = now_ - base_;
      if (rel < kWheelSlots) {
        Slot& s = slots_[rel];
        if (s.head != nullptr)
          return wheel_pop(static_cast<std::size_t>(rel));
      }
    }
    if (ring_head_ != nullptr) return ring_pop();
    if (wheel_size_ > 0) {
      const std::size_t rel =
          next_occupied_slot(static_cast<std::size_t>(now_ - base_));
      now_ = base_ + static_cast<Time>(rel);
      check::coro::note_tick(now_);
      return wheel_pop(rel);
    }
    if (heap_.empty()) return nullptr;
    // Advance the wheel window to the heap top; the top itself pops
    // directly (the common sparse case costs no wheel round-trip), and any
    // further entries that now fit migrate into the wheel. Equal-time
    // entries pop in seq order and land in empty slots, so each slot FIFO
    // stays seq-sorted.
    base_ = heap_[0].time;
    now_ = base_;
    check::coro::note_tick(now_);
    const HeapEntry top = heap_pop();
    while (!heap_.empty() && heap_[0].time - base_ < kWheelSlots) {
      const HeapEntry e = heap_pop();
      wheel_push(e.node, static_cast<std::size_t>(e.time - base_));
    }
    return top.node;
  }

  /// True if an event with fire time <= `t` is pending.
  bool peek_time(Time t) const {
    if (ring_head_ != nullptr) return now_ <= t;
    if (wheel_size_ > 0) {
      const std::size_t rel =
          next_occupied_slot(static_cast<std::size_t>(now_ - base_));
      return base_ + static_cast<Time>(rel) <= t;
    }
    return !heap_.empty() && heap_[0].time <= t;
  }

  Time now_ = 0;
  Time base_ = 0;  ///< wheel window start; base_ <= now_ always
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  std::uint64_t running_seq_ = EventHook::kNoParent;
  EventHook* hook_ = nullptr;
  EventNode* ring_head_ = nullptr;
  EventNode* ring_tail_ = nullptr;
  std::size_t ring_size_ = 0;
  std::size_t wheel_size_ = 0;
  Slot slots_[kWheelSlots] = {};
  std::uint64_t bitmap_[kWheelSlots / 64] = {};
  std::vector<HeapEntry> heap_;
  EventNode* free_ = nullptr;
  std::vector<std::unique_ptr<EventNode[]>> slabs_;
};

}  // namespace apn::sim
