// Deterministic single-threaded discrete-event simulator.
//
// Events are (time, sequence) ordered: two events scheduled for the same
// picosecond fire in scheduling order, which makes every run bit-exact.
// All higher-level primitives (coroutine delays, resources, channels) are
// built on Simulator::at/after.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/units.hpp"

namespace apn::sim {

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time (picoseconds).
  Time now() const { return now_; }

  /// Schedule `fn` at absolute time `t` (must be >= now()).
  void at(Time t, std::function<void()> fn) {
    if (t < now_) t = now_;
    queue_.push(Event{t, next_seq_++, std::move(fn)});
  }

  /// Schedule `fn` after `delay` picoseconds.
  void after(Time delay, std::function<void()> fn) {
    at(now_ + (delay > 0 ? delay : 0), std::move(fn));
  }

  /// Process a single event. Returns false if the queue is empty.
  bool step() {
    if (queue_.empty()) return false;
    // priority_queue::top is const; the handler is moved out via const_cast,
    // which is safe because the element is popped before the handler runs.
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.time;
    ++processed_;
    ev.fn();
    return true;
  }

  /// Run until the event queue drains.
  void run() {
    while (step()) {
    }
  }

  /// Run all events with time <= `t`, then advance the clock to `t`.
  void run_until(Time t) {
    while (!queue_.empty() && queue_.top().time <= t) step();
    if (now_ < t) now_ = t;
  }

  std::uint64_t events_processed() const { return processed_; }
  bool empty() const { return queue_.empty(); }
  std::size_t pending() const { return queue_.size(); }

 private:
  struct Event {
    Time time;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace apn::sim
