// Coroutine simulation processes.
//
// A `Coro` is a detached, eagerly-started coroutine: calling a function that
// returns Coro runs it to its first suspension point; the frame destroys
// itself when the coroutine finishes. Processes interact with the simulator
// only through awaitables (delay, Gate, Semaphore, ...), each of which
// schedules the resume as a simulator event — so a resume never nests inside
// another coroutine's stack frame and execution order is deterministic.
#pragma once

#include <coroutine>
#include <exception>
#include <source_location>

#include "check/coro_check.hpp"
#include "sim/simulator.hpp"

namespace apn::sim {

/// Detached simulation process handle. Fire-and-forget.
///
/// The promise owns the frame-lifetime oracle hooks (src/check/
/// coro_check.hpp): frame allocation registers the frame, and the
/// promise constructor's defaulted source_location argument is evaluated
/// inside the coroutine itself, so the registry records the coroutine
/// function's own file:line and name — lambdas included. When the oracle
/// is disabled (the default) each hook is one relaxed bool load.
struct Coro {
  struct promise_type {
    promise_type(
        std::source_location loc = std::source_location::current()) noexcept {
      check::coro::note_promise(loc);
    }
    Coro get_return_object() noexcept { return {}; }
    std::suspend_never initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    [[noreturn]] void unhandled_exception() { std::terminate(); }
    static void* operator new(std::size_t bytes) {
      return check::coro::frame_allocated(bytes);
    }
    static void operator delete(void* p, std::size_t bytes) noexcept {
      check::coro::frame_destroyed(p, bytes);
    }
  };
};

/// Awaitable that suspends the current process for `delay` picoseconds.
class DelayAwaiter {
 public:
  DelayAwaiter(Simulator& sim, Time delay) : sim_(sim), delay_(delay) {}

  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) {
    sim_.resume_after(delay_, h);
  }
  void await_resume() const noexcept {}

 private:
  Simulator& sim_;
  Time delay_;
};

/// `co_await delay(sim, us(1))` — suspend for a fixed simulated duration.
inline DelayAwaiter delay(Simulator& sim, Time d) { return {sim, d}; }

/// Yield to the event loop: equivalent to a zero-length delay, giving other
/// same-time events a chance to run first.
inline DelayAwaiter yield(Simulator& sim) { return {sim, 0}; }

}  // namespace apn::sim
