// Resource: an exclusive serialized server with a FIFO queue.
//
// Models anything that processes one job at a time for a known duration:
// the APEnet+ Nios II micro-controller, GPU DMA copy engines, the kernel
// driver's descriptor push path. Jobs can be posted with a completion
// callback or awaited from a coroutine. Utilization accounting is built in
// so benches can report how busy a bottleneck device was.
#pragma once

#include <coroutine>
#include <cstdint>
#include <deque>
#include <functional>
#include <utility>

#include "sim/simulator.hpp"

namespace apn::sim {

class Resource {
 public:
  explicit Resource(Simulator& sim) : sim_(&sim) {}
  Resource(const Resource&) = delete;
  Resource& operator=(const Resource&) = delete;

  /// Enqueue a job taking `duration`; `done` fires when the job completes.
  void post(Time duration, std::function<void()> done = {}) {
    queue_.push_back(Job{duration, std::move(done)});
    if (!busy_) start_next();
  }

  /// Awaitable form: suspends until the job has been serviced.
  auto use(Time duration) {
    struct Awaiter {
      Resource& res;
      Time dur;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        res.post(dur, [h] { h.resume(); });
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, duration};
  }

  bool busy() const { return busy_; }
  std::size_t queue_length() const { return queue_.size(); }
  Time busy_time() const { return busy_time_; }
  std::uint64_t jobs_completed() const { return jobs_completed_; }

  /// Fraction of [0, now] the server was busy.
  double utilization() const {
    Time now = sim_->now();
    return now > 0 ? static_cast<double>(busy_time_) /
                         static_cast<double>(now)
                   : 0.0;
  }

  void reset_stats() {
    busy_time_ = 0;
    jobs_completed_ = 0;
  }

 private:
  struct Job {
    Time duration;
    std::function<void()> done;
  };

  void start_next() {
    if (queue_.empty()) return;
    busy_ = true;
    Job job = std::move(queue_.front());
    queue_.pop_front();
    busy_time_ += job.duration;
    sim_->after(job.duration, [this, done = std::move(job.done)]() mutable {
      ++jobs_completed_;
      if (done) done();
      if (!queue_.empty()) {
        start_next();
      } else {
        busy_ = false;
      }
    });
  }

  Simulator* sim_;
  bool busy_ = false;
  Time busy_time_ = 0;
  std::uint64_t jobs_completed_ = 0;
  std::deque<Job> queue_;
};

}  // namespace apn::sim
