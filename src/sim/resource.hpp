// Resource: an exclusive serialized server with a FIFO queue.
//
// Models anything that processes one job at a time for a known duration:
// the APEnet+ Nios II micro-controller, GPU DMA copy engines, the kernel
// driver's descriptor push path. Jobs can be posted with a completion
// callback or awaited from a coroutine. Utilization accounting is built in
// so benches can report how busy a bottleneck device was.
//
// Coroutine clients take typed paths that construct no callable wrapper:
//  * post(duration, h) / use(duration): resume `h` inside the completion
//    event — the typed equivalent of post(duration, [h]{ h.resume(); }).
//  * post_resume(duration, h, extra): *schedule* the resume `extra` after
//    completion (a fresh event even when extra == 0) — the typed
//    equivalent of posting a callback that calls after(extra, resume).
// The distinction matters for determinism: an inline resume runs before
// the server starts its next job; a scheduled one runs as its own event.
#pragma once

#include <coroutine>
#include <cstdint>
#include <deque>
#include <utility>

#include "common/fn.hpp"
#include "sim/simulator.hpp"

namespace apn::sim {

class Resource {
 public:
  explicit Resource(Simulator& sim) : sim_(&sim) {}
  Resource(const Resource&) = delete;
  Resource& operator=(const Resource&) = delete;

  ~Resource() {
    // Reclaim coroutine frames still waiting on (or being served by) this
    // resource: they can never resume once the server is gone, and each
    // suspended frame is reachable from exactly one wait structure, so
    // destroying them here cannot double-free (see docs/CORRECTNESS.md,
    // "Coroutine lifetime discipline").
    if (inflight_h_) inflight_h_.destroy();
    for (Job& job : queue_)
      if (job.h) job.h.destroy();
  }

  /// Enqueue a job taking `duration`; `done` fires when the job completes.
  void post(Time duration, UniqueFn<void()> done = {}) {
    queue_.push_back(Job{duration, std::move(done), {}, kInlineResume});
    if (!busy_) start_next();
  }

  /// Typed fast path: resume `h` inside the job's completion event.
  void post(Time duration, std::coroutine_handle<> h) {
    queue_.push_back(Job{duration, {}, h, kInlineResume});
    if (!busy_) start_next();
  }

  /// Typed fast path: when the job completes, schedule `h` to resume
  /// `extra_delay` later (e.g. wire latency pipelined behind the
  /// serialization stage). The resume is always a separate event, even
  /// when extra_delay is zero.
  void post_resume(Time duration, std::coroutine_handle<> h,
                   Time extra_delay) {
    queue_.push_back(Job{duration, {}, h, extra_delay});
    if (!busy_) start_next();
  }

  /// Awaitable form: suspends until the job has been serviced.
  auto use(Time duration) {
    struct Awaiter {
      Resource& res;
      Time dur;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) { res.post(dur, h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, duration};
  }

  bool busy() const { return busy_; }
  std::size_t queue_length() const { return queue_.size(); }
  Time busy_time() const { return busy_time_; }
  std::uint64_t jobs_completed() const { return jobs_completed_; }

  /// Fraction of [0, now] the server was busy.
  double utilization() const {
    Time now = sim_->now();
    return now > 0 ? static_cast<double>(busy_time_) /
                         static_cast<double>(now)
                   : 0.0;
  }

  void reset_stats() {
    busy_time_ = 0;
    jobs_completed_ = 0;
  }

 private:
  static constexpr Time kInlineResume = -1;

  struct Job {
    Time duration;
    UniqueFn<void()> done;       // callback completion (may be empty)
    std::coroutine_handle<> h;   // typed completion (may be null)
    Time resume_extra_delay;     // kInlineResume = resume inside completion
  };

  void start_next() {
    if (queue_.empty()) return;
    busy_ = true;
    Job job = std::move(queue_.front());
    queue_.pop_front();
    busy_time_ += job.duration;
    if (job.h) {
      const auto h = job.h;
      const Time extra = job.resume_extra_delay;
      inflight_h_ = h;
      sim_->after(job.duration, [this, h, extra] {
        ++jobs_completed_;
        inflight_h_ = {};
        if (extra == kInlineResume)
          h.resume();
        else
          sim_->resume_after(extra, h);
        if (!queue_.empty()) {
          start_next();
        } else {
          busy_ = false;
        }
      });
      return;
    }
    sim_->after(job.duration, [this, done = std::move(job.done)]() mutable {
      ++jobs_completed_;
      if (done) done();
      if (!queue_.empty()) {
        start_next();
      } else {
        busy_ = false;
      }
    });
  }

  Simulator* sim_;
  /// Frame of the typed job currently being served; its resume handle is
  /// captured in a pending completion event whose drop path cannot reach
  /// it, so the destructor reclaims it from here if the completion never
  /// fires (teardown before drain).
  std::coroutine_handle<> inflight_h_{};
  bool busy_ = false;
  Time busy_time_ = 0;
  std::uint64_t jobs_completed_ = 0;
  std::deque<Job> queue_;
};

}  // namespace apn::sim
