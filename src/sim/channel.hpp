// Channel: a unidirectional, rate-limited pipe with per-chunk overhead and
// propagation latency. One Channel models one direction of a physical link
// (PCIe lane bundle, torus cable, IB port).
//
// Timing model per send of N bytes:
//   serialization = per_send_overhead + N / bytes_per_sec   (FIFO, exclusive)
//   delivery      = serialization completion + latency      (pipelined)
// Multiple in-flight sends pipeline: the wire serializes them back-to-back
// while earlier ones are still propagating.
//
// send() is templated over the callback types so lambdas flow into the
// event engine's inline storage without being boxed behind a type-erased
// wrapper; transfer() takes the fully typed path (Resource::post_resume)
// and constructs no callable at all.
#pragma once

#include <cstdint>
#include <type_traits>
#include <utility>

#include "common/fn.hpp"
#include "common/units.hpp"
#include "sim/resource.hpp"
#include "sim/simulator.hpp"

namespace apn::sim {

struct ChannelParams {
  Rate rate = units::GBps(1);  ///< payload serialization rate
  Time per_send_overhead = 0;  ///< framing/TLP/DLLP overhead per send
  Time latency = 0;            ///< propagation + pipeline latency
};

class Channel {
 public:
  Channel(Simulator& sim, ChannelParams params)
      : sim_(&sim), params_(params), line_(sim) {}

  const ChannelParams& params() const { return params_; }

  /// Serialization time for a send of `bytes` (excludes latency/queueing).
  Time serialization_time(Bytes bytes) const {
    return params_.per_send_overhead +
           units::transfer_time(bytes, params_.rate);
  }

  /// Queue `bytes` for transmission; `delivered` fires at arrival time.
  /// `serialized` (optional) fires when the payload has fully left the
  /// sender — the point at which sender-side buffer space is reclaimable.
  template <typename D, typename S = UniqueFn<void()>>
  void send(Bytes bytes, D delivered, S serialized = {}) {
    bytes_sent_ += bytes;
    // S may be a UniqueFn-like type passed empty when the caller has no
    // serialized hook; plain lambdas are always truthy-equivalent and
    // called unconditionally. The no-hook wrapper captures only
    // {this, delivered} so a small `delivered` stays within the event
    // node's inline payload on the Resource job.
    const bool has_serialized = [&] {
      if constexpr (requires { static_cast<bool>(serialized); })
        return static_cast<bool>(serialized);
      else
        return true;
    }();
    if (!has_serialized) {
      line_.post(serialization_time(bytes),
                 [this, delivered = std::move(delivered)]() mutable {
                   sim_->after(params_.latency, deliver(std::move(delivered)));
                 });
      return;
    }
    line_.post(serialization_time(bytes),
               [this, delivered = std::move(delivered),
                serialized = std::move(serialized)]() mutable {
                 if constexpr (requires { static_cast<bool>(serialized); }) {
                   if (serialized) serialized();
                 } else {
                   serialized();
                 }
                 sim_->after(params_.latency, deliver(std::move(delivered)));
               });
  }

  /// Awaitable form: resumes when the payload has been *delivered*.
  auto transfer(Bytes bytes) {
    struct Awaiter {
      Channel& ch;
      Bytes n;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        ch.bytes_sent_ += n;
        ch.line_.post_resume(ch.serialization_time(n), h,
                             ch.params_.latency);
      }
      void await_resume() const noexcept {
        if (EventHook* h = ch.sim_->event_hook()) h->on_channel_delivery();
      }
    };
    return Awaiter{*this, bytes};
  }

  Bytes bytes_sent() const { return bytes_sent_; }
  double utilization() const { return line_.utilization(); }
  bool busy() const { return line_.busy(); }
  std::size_t queue_length() const { return line_.queue_length(); }

 private:
  /// Wrap a delivery callback so the event-hook's channel-delivery
  /// notification (the ownership handoff point) precedes the payload.
  template <typename D>
  auto deliver(D delivered) {
    return [this, delivered = std::move(delivered)]() mutable {
      if (EventHook* h = sim_->event_hook()) h->on_channel_delivery();
      delivered();
    };
  }

  Simulator* sim_;
  ChannelParams params_;
  Resource line_;
  Bytes bytes_sent_;
};

}  // namespace apn::sim
