#include "pcie/fabric.hpp"

#include <cassert>
#include <memory>
#include <stdexcept>
#include <utility>

#include "check/check.hpp"

namespace apn::pcie {

int Fabric::add_root(const std::string& name) {
  if (root_ >= 0) throw std::logic_error("fabric already has a root");
  nodes_.push_back(Node{name, -1, -1, 0, nullptr});
  root_ = static_cast<int>(nodes_.size()) - 1;
  return root_;
}

int Fabric::new_node(const std::string& name, int parent, LinkParams link) {
  if (parent < 0 || parent >= static_cast<int>(nodes_.size()))
    throw std::out_of_range("invalid parent node");
  Node node;
  node.name = name;
  node.parent = parent;
  node.depth = nodes_[parent].depth + 1;

  Edge edge;
  edge.up_node = parent;
  edge.down_node = static_cast<int>(nodes_.size());
  edge.link = link;
  sim::ChannelParams cp;
  cp.rate = link.raw_rate();
  cp.per_send_overhead = 0;  // TLP overhead charged via wire_bytes()
  cp.latency = link.hop_latency;
  edge.up = std::make_unique<sim::Channel>(*sim_, cp);
  edge.down = std::make_unique<sim::Channel>(*sim_, cp);

  edge.trace =
      trace::Track::open(name_, nodes_[parent].name + "<->" + node.name);

  edges_.push_back(std::move(edge));
  node.parent_edge = static_cast<int>(edges_.size()) - 1;
  nodes_.push_back(std::move(node));
  return static_cast<int>(nodes_.size()) - 1;
}

int Fabric::add_switch(int parent, LinkParams link, const std::string& name) {
  return new_node(name, parent, link);
}

int Fabric::attach(Device& dev, int parent, LinkParams link) {
  int id = new_node(dev.pcie_name_.empty() ? "dev" : dev.pcie_name_, parent,
                    link);
  nodes_[id].dev = &dev;
  dev.pcie_node_ = id;
  if (dev.pcie_name_.empty()) dev.pcie_name_ = nodes_[id].name;
  return id;
}

void Fabric::claim_range(Device& dev, std::uint64_t base, std::uint64_t size) {
  APN_CHECK_ACCESS(ranges_, kWrite);
  ranges_.push_back(Range{base, size, &dev});
}

void Fabric::set_default_target(Device& dev) { default_target_ = &dev; }

void Fabric::attach_analyzer(int node, BusAnalyzer& analyzer) {
  if (node < 0 || node >= static_cast<int>(nodes_.size()) ||
      nodes_[node].parent_edge < 0)
    throw std::out_of_range("cannot attach analyzer: node has no uplink");
  edges_[nodes_[node].parent_edge].analyzer = &analyzer;
}

Device* Fabric::route(std::uint64_t addr) const {
  APN_CHECK_ACCESS(ranges_, kRead);
  for (const Range& r : ranges_)
    if (addr >= r.base && addr - r.base < r.size) return r.dev;
  return default_target_;
}

std::vector<Fabric::Hop> Fabric::path(int from, int to) const {
  std::vector<Hop> up_part;    // edges climbed from `from`
  std::vector<Hop> down_part;  // edges descended to `to` (collected reversed)
  int a = from, b = to;
  while (a != b) {
    if (nodes_[a].depth >= nodes_[b].depth) {
      up_part.push_back(Hop{nodes_[a].parent_edge, false});
      a = nodes_[a].parent;
    } else {
      down_part.push_back(Hop{nodes_[b].parent_edge, true});
      b = nodes_[b].parent;
    }
  }
  for (auto it = down_part.rbegin(); it != down_part.rend(); ++it)
    up_part.push_back(*it);
  return up_part;
}

Time Fabric::path_latency(const Device& a, const Device& b) const {
  Time total = 0;
  for (const Hop& h : path(a.pcie_node(), b.pcie_node()))
    total += edges_[h.edge].link.hop_latency;
  return total;
}

/// Shared state of one chunked transfer. One allocation per *transfer*
/// (not per chunk): the path, kind, and completion all live here, so the
/// per-hop forwarding callback only captures {this, xfer, offset, chunk,
/// hop_idx, t_send} — small enough for the event engine's inline storage.
struct Fabric::Xfer {
  std::vector<Hop> hops;
  BusEvent::Kind kind;
  std::uint64_t addr;
  std::uint64_t total;
  Payload payload;
  std::uint64_t delivered_bytes = 0;
  UniqueFn<void(Payload)> done;
};

namespace {
Payload slice(const Payload& p, std::uint64_t offset, std::uint32_t len) {
  Payload out;
  out.bytes = len;
  if (!p.data.empty()) {
    out.data.assign(p.data.begin() + static_cast<std::ptrdiff_t>(offset),
                    p.data.begin() + static_cast<std::ptrdiff_t>(offset + len));
  }
  return out;
}
}  // namespace

void Fabric::send_chunks(std::vector<Hop> hops, BusEvent::Kind kind,
                         std::uint64_t addr, Payload payload,
                         UniqueFn<void(Payload)> on_delivered) {
  auto xfer = std::make_shared<Xfer>();
  xfer->hops = std::move(hops);
  xfer->kind = kind;
  xfer->addr = addr;
  xfer->total = payload.bytes;
  xfer->payload = std::move(payload);
  xfer->done = std::move(on_delivered);

  const std::uint64_t total = xfer->total;
  std::uint64_t offset = 0;
  // Zero-length transactions (read requests) still send one header chunk.
  do {
    const std::uint32_t chunk = static_cast<std::uint32_t>(
        total - offset < chunk_bytes_ ? total - offset : chunk_bytes_);
    forward_chunk(xfer, offset, chunk, 0);
    offset += chunk;
  } while (offset < total);
}

void Fabric::forward_chunk(const std::shared_ptr<Xfer>& xfer,
                           std::uint64_t offset, std::uint32_t chunk,
                           std::size_t hop_idx) {
  if (hop_idx == xfer->hops.size()) {
    // Chunk fully arrived at the target end. Chunks of one transfer are
    // serialized by the hop channels, but the accumulate-and-test below is
    // the canonical shape the race detector watches: flag it if two chunk
    // deliveries ever land in the same tick without ordering.
    xfer->delivered_bytes += chunk;
    APN_CHECK_ACCESS(xfer->delivered_bytes, kWrite);
    const bool last =
        (xfer->total == 0) || (xfer->delivered_bytes >= xfer->total);
    if (xfer->kind == BusEvent::Kind::kWrite) {
      Device* target = route(xfer->addr + offset);
      if (target != nullptr)
        target->handle_write(xfer->addr + offset,
                             slice(xfer->payload, offset, chunk));
    }
    if (last && xfer->done) xfer->done(std::move(xfer->payload));
    return;
  }
  const Hop& h = xfer->hops[hop_idx];
  Edge& e = edges_[static_cast<std::size_t>(h.edge)];
  sim::Channel& ch = h.downstream ? *e.down : *e.up;
  const Time t_send = sim_->now();
  ch.send(e.link.wire_bytes(Bytes(chunk)),
          [this, xfer, offset, chunk, hop_idx, t_send] {
            const Hop& h = xfer->hops[hop_idx];
            Edge& e = edges_[static_cast<std::size_t>(h.edge)];
            if (e.analyzer != nullptr)
              e.analyzer->record(BusEvent{sim_->now(), xfer->kind,
                                          xfer->addr + offset, chunk,
                                          h.downstream});
            if (e.trace)
              e.trace.span("pcie", bus_kind_name(xfer->kind), t_send,
                           sim_->now(),
                           {{"addr", xfer->addr + offset},
                            {"bytes", chunk},
                            {"down", h.downstream}});
            forward_chunk(xfer, offset, chunk, hop_idx + 1);
          });
}

void Fabric::post_write(const Device& src, std::uint64_t addr, Payload payload,
                        UniqueFn<void()> on_delivered) {
  Device* target = route(addr);
  if (target == nullptr) throw std::runtime_error("unroutable write address");
  auto hops = path(src.pcie_node(), target->pcie_node());
  send_chunks(std::move(hops), BusEvent::Kind::kWrite, addr,
              std::move(payload),
              [cb = std::move(on_delivered)](Payload) mutable {
                if (cb) cb();
              });
}

void Fabric::read(const Device& src, std::uint64_t addr, std::uint32_t len,
                  UniqueFn<void(Payload)> on_complete) {
  Device* target = route(addr);
  if (target == nullptr) throw std::runtime_error("unroutable read address");
  auto req_hops = path(src.pcie_node(), target->pcie_node());
  auto rsp_hops = path(target->pcie_node(), src.pcie_node());

  // Read request: a header-only TLP travelling to the target.
  send_chunks(
      std::move(req_hops), BusEvent::Kind::kReadReq, addr, Payload::timing(0),
      [this, target, addr, len, rsp_hops = std::move(rsp_hops),
       on_complete = std::move(on_complete)](Payload) mutable {
        target->handle_read(
            addr, len,
            [this, addr, rsp_hops = std::move(rsp_hops),
             on_complete = std::move(on_complete)](Payload data) mutable {
              send_chunks(std::move(rsp_hops), BusEvent::Kind::kCompletion,
                          addr, std::move(data), std::move(on_complete));
            });
      });
}

}  // namespace apn::pcie
