// Host DRAM behind the root complex / integrated memory controller.
//
// Host buffers in the simulation are *real process memory*: registered
// (pinned) regions are addressed by their actual pointer value, so a remote
// RDMA PUT ends with bytes landing in the destination test buffer and
// results can be validated end-to-end. Reads/writes outside any pinned
// region are timing-only (they advance the clock but touch no data), which
// keeps pure-bandwidth benches safe and cheap.
#pragma once

#include <cstdint>
#include <cstring>
#include <map>

#include "check/check.hpp"
#include "common/fn.hpp"
#include "pcie/fabric.hpp"
#include "sim/resource.hpp"

namespace apn::pcie {

struct HostMemoryParams {
  Rate read_rate{8e9};  ///< memory-controller completion rate
  Time read_latency = units::ns(300);
};

class HostMemory : public Device {
  APN_OWNER(pcie_island)

 public:
  HostMemory(sim::Simulator& sim, HostMemoryParams params = {})
      : sim_(&sim), params_(params), read_port_(sim) {
    set_pcie_name("dram");
  }

  /// Pin a region of process memory for device access (DMA-ability).
  /// kAccum: same-tick registrations insert disjoint keys and commute.
  void pin(void* ptr, std::size_t len) {
    pinned_[reinterpret_cast<std::uint64_t>(ptr)] = len;
    APN_CHECK_ACCESS(pinned_, kAccum);
  }
  void unpin(void* ptr) {
    pinned_.erase(reinterpret_cast<std::uint64_t>(ptr));
    APN_CHECK_ACCESS(pinned_, kAccum);
  }
  bool is_pinned(std::uint64_t addr, std::uint64_t len) const {
    return find_pinned(addr, len) != nullptr;
  }

  void handle_write(std::uint64_t addr, Payload payload) override {
    if (!payload.data.empty()) {
      if (find_pinned(addr, payload.bytes) != nullptr) {
        std::memcpy(reinterpret_cast<void*>(addr), payload.data.data(),
                    payload.data.size());
      }
    }
  }

  void handle_read(std::uint64_t addr, std::uint32_t len,
                   UniqueFn<void(Payload)> reply) override {
    // Access latency pipelines across outstanding reads (DRAM banks);
    // completion generation serializes at the memory-port rate.
    Time stream = units::transfer_time(Bytes(len), params_.read_rate);
    sim_->after(params_.read_latency, [this, addr, len, stream,
                                       reply = std::move(reply)]() mutable {
      read_port_.post(stream, [this, addr, len,
                               reply = std::move(reply)]() mutable {
        Payload p;
        p.bytes = len;
        if (find_pinned(addr, len) != nullptr) {
          p.data.resize(len);
          std::memcpy(p.data.data(), reinterpret_cast<const void*>(addr),
                      len);
        }
        reply(std::move(p));
      });
    });
  }

 private:
  /// Returns the pinned region containing [addr, addr+len), or nullptr.
  const std::size_t* find_pinned(std::uint64_t addr,
                                 std::uint64_t len) const {
    // kSample: a same-tick pin() always concerns a *different* region —
    // buffers are registered strictly before any transfer touches them
    // (driver contract), so the lookup result is order-independent.
    APN_CHECK_ACCESS(pinned_, kSample);
    auto it = pinned_.upper_bound(addr);
    if (it == pinned_.begin()) return nullptr;
    --it;
    if (addr >= it->first && addr + len <= it->first + it->second)
      return &it->second;
    return nullptr;
  }

  sim::Simulator* sim_;
  HostMemoryParams params_;
  sim::Resource read_port_;
  std::map<std::uint64_t, std::size_t> pinned_;
};

}  // namespace apn::pcie
