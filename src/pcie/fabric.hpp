// PCIe fabric: a tree of root complex / switches / endpoint devices with
// address-routed memory writes and reads.
//
// Topology is a tree (as on real machines): the root complex at the top,
// switches below it, devices at the leaves. Each edge carries two
// `sim::Channel`s (upstream/downstream). Transfers are chunked (default
// 4 KB); a chunk is forwarded hop-by-hop with chained callbacks, so chunks
// of one transfer pipeline across hops and independent transfers contend
// for shared links naturally.
//
// Functional semantics: MemWr carries payload bytes that are handed to the
// target device's handle_write(); MemRd invokes handle_read() on the target,
// which replies with data that streams back to the requester. Timing-only
// payloads (no data) are supported for pure-bandwidth benches.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/fn.hpp"
#include "common/owner.hpp"
#include "common/units.hpp"
#include "pcie/link.hpp"
#include "sim/channel.hpp"
#include "sim/simulator.hpp"
#include "trace/trace.hpp"

namespace apn::pcie {

class Fabric;

/// Payload of a memory transaction. `data` may be empty for timing-only
/// transfers; `bytes` is always the authoritative size.
struct Payload {
  std::uint64_t bytes = 0;
  std::vector<std::uint8_t> data;  // empty => timing-only

  static Payload timing(std::uint64_t n) { return Payload{n, {}}; }
  static Payload of(std::vector<std::uint8_t> d) {
    Payload p;
    p.bytes = d.size();
    p.data = std::move(d);
    return p;
  }
};

/// A PCIe function that can be the *target* of memory transactions.
/// Devices initiate transactions through the Fabric using their node id.
class Device {
 public:
  virtual ~Device() = default;

  /// A posted write has fully arrived at this device.
  virtual void handle_write(std::uint64_t addr, Payload payload) = 0;

  /// A read request arrived; the device must eventually call `reply` with
  /// the data (the fabric streams the completion back to the requester).
  /// The delay before calling reply models the device's internal latency.
  virtual void handle_read(std::uint64_t addr, std::uint32_t len,
                           UniqueFn<void(Payload)> reply) = 0;

  const std::string& pcie_name() const { return pcie_name_; }
  int pcie_node() const { return pcie_node_; }

 protected:
  /// Name used for topology nodes and trace tracks; effective only when
  /// called before Fabric::attach (attach falls back to "dev" otherwise).
  void set_pcie_name(std::string name) { pcie_name_ = std::move(name); }

 private:
  friend class Fabric;
  std::string pcie_name_;
  int pcie_node_ = -1;
};

/// Transaction record captured by a BusAnalyzer interposer.
struct BusEvent {
  Time time;              ///< delivery time of the chunk at the far edge end
  enum class Kind { kWrite, kReadReq, kCompletion } kind;
  std::uint64_t addr;
  std::uint32_t bytes;
  bool downstream;        ///< true if moving away from the root
};

/// PCIe mnemonic for a transaction kind (MWr / MRd / CplD).
inline const char* bus_kind_name(BusEvent::Kind k) {
  switch (k) {
    case BusEvent::Kind::kWrite: return "MWr";
    case BusEvent::Kind::kReadReq: return "MRd";
    case BusEvent::Kind::kCompletion: return "CplD";
  }
  std::abort();  // unreachable: no default, so -Wswitch guards enum growth
}

/// Passive interposer attached to one edge; records every chunk crossing it.
/// Mirrors the PCIe active interposer used for the paper's Fig. 3. When
/// bound to a trace track it doubles as a producer into the trace sink, so
/// the analyzer's view and the trace timeline stay byte-for-byte consistent.
class BusAnalyzer {
  APN_OWNER(pcie_island)

 public:
  void record(BusEvent ev) {
    events_.push_back(ev);
    if (trace_)
      trace_.instant("pcie", bus_kind_name(ev.kind), ev.time,
                     {{"addr", ev.addr},
                      {"bytes", ev.bytes},
                      {"down", ev.downstream}});
  }
  const std::vector<BusEvent>& events() const { return events_; }
  void clear() { events_.clear(); }

  /// Mirror every recorded transaction onto `t` as trace instants.
  void bind_trace(trace::Track t) { trace_ = t; }

 private:
  std::vector<BusEvent> events_;
  trace::Track trace_;
};

class Fabric {
  APN_OWNER(pcie_island)

 public:
  /// `name` labels this fabric's trace tracks (one PCIe tree per cluster
  /// node, so cluster assembly passes "node<i>.pcie").
  explicit Fabric(sim::Simulator& sim, std::uint32_t chunk_bytes = 4096,
                  std::string name = "pcie")
      : sim_(&sim), chunk_bytes_(chunk_bytes), name_(std::move(name)) {}
  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  sim::Simulator& simulator() { return *sim_; }
  /// Trace-track group label of this fabric (e.g. "node0.pcie").
  const std::string& name() const { return name_; }

  // ---- topology construction -------------------------------------------
  /// Create the root complex; returns its node id. Must be called first.
  int add_root(const std::string& name = "root");

  /// Add a switch below `parent`, connected with `link`.
  int add_switch(int parent, LinkParams link,
                 const std::string& name = "switch");

  /// Attach an endpoint device below `parent`, connected with `link`.
  int attach(Device& dev, int parent, LinkParams link);

  /// Register an MMIO/memory address range owned by `dev`.
  void claim_range(Device& dev, std::uint64_t base, std::uint64_t size);

  /// Device receiving all writes/reads not claimed by any range
  /// (i.e. host DRAM behind the root complex). Must itself be attached
  /// or be the root-resident memory controller (node id of root).
  void set_default_target(Device& dev);

  /// Attach a bus analyzer to the edge directly above `node`.
  void attach_analyzer(int node, BusAnalyzer& analyzer);

  // ---- transactions ------------------------------------------------------
  /// Posted memory write from `src` device to `addr`. `on_delivered` fires
  /// when the last chunk reaches the target (after handle_write ran).
  void post_write(const Device& src, std::uint64_t addr, Payload payload,
                  UniqueFn<void()> on_delivered = {});

  /// Memory read: request travels to the target; target replies via
  /// handle_read; completion data streams back. `on_complete` receives the
  /// full data once the last completion chunk arrives at `src`.
  void read(const Device& src, std::uint64_t addr, std::uint32_t len,
            UniqueFn<void(Payload)> on_complete);

  /// Route lookup (target device for an address); nullptr if unroutable.
  Device* route(std::uint64_t addr) const;

  /// One-way fabric latency between two attached devices (sum of hop
  /// latencies), useful for model sanity checks.
  Time path_latency(const Device& a, const Device& b) const;

  std::uint32_t chunk_bytes() const { return chunk_bytes_; }

 private:
  struct Node {
    std::string name;
    int parent = -1;       // node id
    int parent_edge = -1;  // edge id
    int depth = 0;
    Device* dev = nullptr;  // endpoints only
  };
  struct Edge {
    int up_node;    // closer to root
    int down_node;  // further from root
    LinkParams link;
    std::unique_ptr<sim::Channel> up;    // down_node -> up_node
    std::unique_ptr<sim::Channel> down;  // up_node -> down_node
    BusAnalyzer* analyzer = nullptr;
    trace::Track trace;  ///< per-edge lane; inert when tracing is off
  };
  struct Range {
    std::uint64_t base, size;
    Device* dev;
  };
  /// One hop of a precomputed path.
  struct Hop {
    int edge;
    bool downstream;  // direction of travel on this edge
  };

  /// Shared state of one chunked transfer (defined in fabric.cpp).
  struct Xfer;

  int new_node(const std::string& name, int parent, LinkParams link);
  std::vector<Hop> path(int from_node, int to_node) const;
  void send_chunks(std::vector<Hop> hops, BusEvent::Kind kind,
                   std::uint64_t addr, Payload payload,
                   UniqueFn<void(Payload)> on_delivered);
  /// Forward one chunk across hop `hop_idx` of its transfer's path; on the
  /// final hop, deliver to the target device and finish the transfer.
  void forward_chunk(const std::shared_ptr<Xfer>& xfer, std::uint64_t offset,
                     std::uint32_t chunk, std::size_t hop_idx);

  sim::Simulator* sim_;
  // apn-lint: allow(check-coverage) — set at construction, never mutated
  std::uint32_t chunk_bytes_;
  std::string name_;
  // apn-lint: allow(check-coverage) — topology is frozen before the sim runs
  std::vector<Node> nodes_;
  // apn-lint: allow(check-coverage) — topology is frozen before the sim runs
  std::vector<Edge> edges_;
  std::vector<Range> ranges_;
  Device* default_target_ = nullptr;
  // apn-lint: allow(check-coverage) — topology is frozen before the sim runs
  int root_ = -1;
};

}  // namespace apn::pcie
