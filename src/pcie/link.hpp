// PCI Express link cost model.
//
// A link is characterized by generation and lane count. We charge, per TLP,
// the real protocol overhead (header + sequence + LCRC + framing, plus an
// amortized share of DLLP flow-control/ack traffic) on top of the payload,
// at the post-encoding raw rate. Effective throughput therefore *emerges*
// from max-payload-size and overhead, as it does on real hardware:
//   Gen2 x8, MPS 256, 28 B overhead -> ~3.6 GB/s effective (4.0 GB/s raw).
#pragma once

#include <cstdint>

#include "common/units.hpp"

namespace apn::pcie {

struct LinkParams {
  int gen = 2;        ///< PCIe generation (1, 2, 3)
  int lanes = 8;      ///< x1/x4/x8/x16
  std::uint32_t max_payload = 256;    ///< TLP max payload size (bytes)
  std::uint32_t tlp_overhead = 28;    ///< per-TLP wire overhead (bytes)
  Time hop_latency = units::ns(200);  ///< switch/RC forwarding latency

  /// Post-8b/10b (Gen1/2) or post-128b/130b (Gen3) raw rate per direction.
  Rate raw_rate() const {
    double per_lane;
    switch (gen) {
      case 1: per_lane = 250e6; break;   // 2.5 GT/s, 8b/10b
      case 2: per_lane = 500e6; break;   // 5.0 GT/s, 8b/10b
      default: per_lane = 985e6; break;  // 8.0 GT/s, 128b/130b
    }
    return Rate(per_lane * lanes);
  }

  /// Wire bytes for a data transfer of `bytes` split into MPS-sized TLPs.
  Bytes wire_bytes(Bytes bytes) const {
    if (bytes.count() == 0) return Bytes(tlp_overhead);  // header-only TLP
    std::uint64_t tlps = (bytes.count() + max_payload - 1) / max_payload;
    return bytes + Bytes(tlps * tlp_overhead);
  }

  /// Serialization time of a `bytes`-sized transfer on this link.
  Time serialize_time(Bytes bytes) const {
    return units::transfer_time(wire_bytes(bytes), raw_rate());
  }

  /// Effective data rate once TLP overhead is accounted for.
  Rate effective_rate() const {
    double frac = static_cast<double>(max_payload) /
                  static_cast<double>(max_payload + tlp_overhead);
    return raw_rate() * frac;
  }
};

/// Convenience presets.
inline LinkParams gen2_x8() { return LinkParams{2, 8, 256, 28, units::ns(200)}; }
inline LinkParams gen2_x4() { return LinkParams{2, 4, 256, 28, units::ns(200)}; }
inline LinkParams gen2_x16() {
  return LinkParams{2, 16, 256, 28, units::ns(200)};
}
inline LinkParams gen3_x8() { return LinkParams{3, 8, 256, 26, units::ns(150)}; }
inline LinkParams gen3_x16() {
  return LinkParams{3, 16, 256, 26, units::ns(150)};
}

}  // namespace apn::pcie
