// APEnet+ network packet. Packets carry up to 4 KB of payload plus a header
// holding the 64-bit destination *virtual* address (the defining trait of
// the APEnet+ RDMA model: the receiving card resolves it through BUF_LIST
// and its V2P tables, §IV of the paper).
#pragma once

#include <cstdint>

#include "common/units.hpp"
#include "core/torus.hpp"
#include "pcie/fabric.hpp"

namespace apn::core {

constexpr std::uint32_t kMaxPacketPayload = 4096;
/// Header + footer/CRC bytes occupied on the torus wire per packet.
constexpr std::uint32_t kPacketWireOverhead = 32;

struct PacketHeader {
  TorusCoord src;
  TorusCoord dst;
  std::uint64_t dst_vaddr = 0;  ///< target address of THIS packet's payload
  std::uint32_t dst_pid = 0;    ///< owning process on the destination node
  std::uint64_t msg_id = 0;     ///< globally unique PUT id
  std::uint64_t msg_vaddr = 0;  ///< target address of the whole message
  std::uint32_t msg_bytes = 0;  ///< total message size
};

struct ApPacket {
  PacketHeader hdr;
  pcie::Payload payload;

  Bytes wire_bytes() const {
    return Bytes(payload.bytes + kPacketWireOverhead);
  }
};

}  // namespace apn::core
