#include "core/network.hpp"

#include <stdexcept>

namespace apn::core {

void ApenetNetwork::wire() {
  if (static_cast<int>(cards_.size()) != shape_.size())
    throw std::logic_error("ApenetNetwork: card count != torus size");

  const TorusPort all_ports[kTorusPorts] = {
      TorusPort::kXplus,  TorusPort::kXminus, TorusPort::kYplus,
      TorusPort::kYminus, TorusPort::kZplus,  TorusPort::kZminus};

  for (int i = 0; i < shape_.size(); ++i) {
    ApenetCard& c = *cards_[static_cast<std::size_t>(i)];
    c.set_shape(shape_);
    TorusCoord me = shape_.coord(i);
    for (TorusPort port : all_ports) {
      TorusCoord nb = shape_.neighbor(me, port);
      if (nb == me) continue;  // dimension of size 1: port unused
      ApenetCard& peer = *cards_[static_cast<std::size_t>(shape_.index(nb))];
      sim::ChannelParams cp;
      cp.rate = c.params().torus_rate();
      cp.per_send_overhead = 0;  // header charged via packet wire_bytes
      cp.latency = c.params().torus_link_latency;
      channels_.push_back(std::make_unique<sim::Channel>(*sim_, cp));
      c.set_link(port, channels_.back().get(), &peer);
    }
  }
}

}  // namespace apn::core
