#include "core/rdma.hpp"

#include <stdexcept>

namespace apn::core {

RdmaDevice::RdmaDevice(ApenetCard& card, pcie::HostMemory& hostmem,
                       cuda::Runtime* cuda_runtime, std::uint32_t pid,
                       RdmaParams params)
    : sim_(&card.simulator()),
      card_(&card),
      hostmem_(&hostmem),
      cuda_(cuda_runtime),
      pid_(pid),
      params_(params) {}

const RdmaDevice::Registration* RdmaDevice::find_registration(
    std::uint64_t addr, std::uint64_t len) const {
  // kSample: a same-tick registration always concerns a different buffer
  // (callers await register_buffer before operating on one), so the
  // lookup result is order-independent.
  APN_CHECK_ACCESS(cache_, kSample);
  auto it = cache_.upper_bound(addr);
  if (it == cache_.begin()) return nullptr;
  --it;
  if (addr >= it->first && addr + len <= it->first + it->second.len)
    return &it->second;
  return nullptr;
}

RdmaDevice::Registration* RdmaDevice::find_registration_mut(
    std::uint64_t addr, std::uint64_t len, std::uint64_t* base) {
  // kSample: see find_registration.
  APN_CHECK_ACCESS(cache_, kSample);
  auto it = cache_.upper_bound(addr);
  if (it == cache_.begin()) return nullptr;
  --it;
  if (addr >= it->first && addr + len <= it->first + it->second.len) {
    if (base != nullptr) *base = it->first;
    return &it->second;
  }
  return nullptr;
}

sim::Future<RdmaEvent> RdmaDevice::wait_event() {
  sim::Future<RdmaEvent> f(*sim_);
  [](RdmaDevice* self, sim::Future<RdmaEvent> f) -> sim::Coro {
    co_await sim::delay(*self->sim_, self->params_.event_poll_cost);
    RdmaEvent ev = co_await self->card_->rx_events().pop();
    f.set(ev);
  }(this, f);
  return f;
}

bool RdmaDevice::is_registered(std::uint64_t addr, std::uint64_t len) const {
  return find_registration(addr, len) != nullptr;
}

sim::Future<bool> RdmaDevice::register_buffer(std::uint64_t addr,
                                              std::uint64_t len,
                                              MemType type) {
  sim::Future<bool> done(*sim_);
  if (find_registration(addr, len) != nullptr) {
    ++cache_hits_;
    APN_CHECK_ACCESS(cache_hits_, kAccum);
    done.set(true);
    return done;
  }
  ++cache_misses_;
  APN_CHECK_ACCESS(cache_misses_, kAccum);

  bool is_gpu;
  cuda::PointerInfo pinfo;
  if (type == MemType::kAuto) {
    if (cuda_ != nullptr) pinfo = cuda_->pointer_info(addr);
    is_gpu = pinfo.is_device;
  } else {
    is_gpu = type == MemType::kGpu || type == MemType::kGpuBar1;
    if (is_gpu) {
      if (cuda_ == nullptr)
        throw std::logic_error("GPU registration without CUDA runtime");
      pinfo = cuda_->pointer_info(addr);
      if (!pinfo.is_device)
        throw std::invalid_argument("kGpu flag on a host pointer");
    }
  }

  Time cost;
  BufListEntry entry;
  entry.vaddr = addr;
  entry.len = len;
  entry.pid = pid_;
  if (is_gpu) {
    // Retrieve P2P tokens and program the card's GPU_V2P table.
    cuda::P2pTokens tokens = cuda_->get_p2p_tokens(addr, len);
    entry.is_gpu = true;
    entry.gpu = &cuda_->device(tokens.device);
    entry.dev_offset = tokens.dev_offset;
    cost = params_.register_gpu_cost +
           static_cast<Time>(tokens.page_count()) *
               params_.register_gpu_per_page;
  } else {
    hostmem_->pin(reinterpret_cast<void*>(addr), len);
    std::uint64_t pages = (len + 4095) / 4096;
    cost = params_.register_host_cost +
           static_cast<Time>(pages) * params_.register_host_per_page;
  }
  if (type == MemType::kAuto) cost += params_.pointer_query_cost;

  cache_[addr] = Registration{len, is_gpu};
  // kAccum: same-tick registrations insert disjoint keys and commute.
  APN_CHECK_ACCESS(cache_, kAccum);
  sim_->after(cost, [this, entry, done]() mutable {
    card_->add_buffer(entry);
    done.set(true);
  });
  return done;
}

void RdmaDevice::deregister_buffer(std::uint64_t addr) {
  auto it = cache_.find(addr);
  if (it == cache_.end()) return;
  if (!it->second.is_gpu) hostmem_->unpin(reinterpret_cast<void*>(addr));
  cache_.erase(it);
  APN_CHECK_ACCESS(cache_, kWrite);
  card_->remove_buffer(addr, pid_);
}

RdmaDevice::Put RdmaDevice::put(TorusCoord dst, std::uint64_t local_addr,
                                std::uint64_t len,
                                std::uint64_t remote_vaddr, MemType type,
                                bool carry_data) {
  Put result;
  TorusCoord me = card_->coord();
  std::uint64_t node_key =
      (static_cast<std::uint64_t>(me.x) << 16) |
      (static_cast<std::uint64_t>(me.y) << 8) |
      static_cast<std::uint64_t>(me.z);
  result.msg_id = (node_key << 40) | next_seq_++;
  APN_CHECK_ACCESS(next_seq_, kWrite);
  result.tx_done = std::make_shared<sim::Gate>(*sim_);
  do_put(dst, local_addr, len, remote_vaddr, type, carry_data,
         result.tx_done, result.msg_id);
  return result;
}

sim::Coro RdmaDevice::do_put(TorusCoord dst, std::uint64_t local_addr,
                             std::uint64_t len, std::uint64_t remote_vaddr,
                             MemType type, bool carry_data,
                             std::shared_ptr<sim::Gate> tx_done,
                             std::uint64_t msg_id) {
  // Host driver work: descriptor construction, fragmentation, doorbell.
  co_await sim::delay(*sim_, params_.put_overhead);

  bool is_gpu;
  if (type == MemType::kAuto) {
    // UVA query on the source pointer (the cost the explicit flag avoids).
    co_await sim::delay(*sim_, params_.pointer_query_cost);
    is_gpu = cuda_ != nullptr && cuda_->pointer_info(local_addr).is_device;
  } else {
    is_gpu = type == MemType::kGpu || type == MemType::kGpuBar1;
  }

  TxDescriptor d;
  d.proto.src = card_->coord();
  d.proto.dst = dst;
  d.proto.dst_pid = pid_;
  d.proto.msg_id = msg_id;
  d.proto.msg_vaddr = remote_vaddr;
  d.proto.dst_vaddr = remote_vaddr;
  d.proto.msg_bytes = static_cast<std::uint32_t>(len);
  d.carry_data = carry_data;
  d.tx_done = std::move(tx_done);

  if (is_gpu) {
    // Map the GPU buffer on the fly if it is not in the cache (§IV-A).
    if (find_registration(local_addr, len) == nullptr) {
      co_await register_buffer(local_addr, len, MemType::kGpu);
    }
    if (type == MemType::kGpuBar1) {
      // BAR1 transmission: expose the buffer through the BAR1 aperture
      // (expensive GPU reconfiguration, cached per registration) and let
      // the card's ordinary DMA-read engine fetch it with plain PCIe
      // memory reads — no P2P protocol involved.
      std::uint64_t base = 0;
      Registration* reg = find_registration_mut(local_addr, len, &base);
      if (reg->bar1_addr == 0) {
        auto mapped = cuda_->bar1_map_async(base, reg->len);
        auto r = co_await mapped;
        reg->bar1_addr = r.pcie_addr;
      }
      d.src_is_gpu = false;  // rides the host-style TX DMA path
      d.src_addr = reg->bar1_addr + (local_addr - base);
      card_->submit_tx(std::move(d));
      co_return;
    }
    cuda::P2pTokens tokens = cuda_->get_p2p_tokens(local_addr, len);
    d.src_is_gpu = true;
    d.src_gpu = &cuda_->device(tokens.device);
    d.src_dev_offset = tokens.dev_offset;
  } else {
    // The kernel driver pins source pages on the fly during fragmentation.
    if (carry_data && !hostmem_->is_pinned(local_addr, len))
      hostmem_->pin(reinterpret_cast<void*>(local_addr), len);
    d.src_addr = local_addr;
  }
  card_->submit_tx(std::move(d));
}

}  // namespace apn::core
