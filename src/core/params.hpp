// Calibration parameters of the APEnet+ card model.
//
// Defaults reproduce the paper's Cluster I measurements (see DESIGN.md §3):
// every knob that a paper experiment sweeps (GPU_P2P_TX version, prefetch
// window, torus link speed, number of registered buffers) is exposed here.
#pragma once

#include <cstdint>
#include <cstdlib>

#include "common/units.hpp"
#include "pcie/link.hpp"

namespace apn::core {

/// The three generations of the GPU memory-read engine (§IV).
enum class P2pTxVersion {
  kV1,  ///< software-only on Nios II; single outstanding <=4 KB request
  kV2,  ///< HW request generation + bounded prefetch window (4-32 KB)
  kV3,  ///< unbounded prefetch, back-pressured by TX FIFO occupancy
};

inline const char* version_name(P2pTxVersion v) {
  // No default: -Wswitch flags any future enumerator missing a case.
  switch (v) {
    case P2pTxVersion::kV1: return "v1";
    case P2pTxVersion::kV2: return "v2";
    case P2pTxVersion::kV3: return "v3";
  }
  std::abort();
}

/// Firmware task costs on the Nios II micro-controller. RX processing of a
/// 4 KB packet sums to ~3.3 us (the paper's "order of 3 us", split roughly
/// evenly between BUF_LIST traversal and V2P translation), which caps the
/// receive path at ~1.2 GB/s — the paper's central bottleneck.
struct NiosCosts {
  Time rx_buflist_base = units::us(1.05);
  Time rx_buflist_per_entry = units::ns(55);  ///< linear scan per buffer
  Time rx_v2p = units::us(1.45);              ///< 4-level table walk (const)
  /// Hardware V2P pipeline lookup, charged *instead of* rx_v2p when
  /// ApenetParams::rx_hw_v2p is set (the 28 nm card's TLB-like stage).
  Time rx_hw_v2p_lookup = units::ns(120);
  Time rx_dma_kick = units::us(0.70);         ///< program the RX DMA write
  Time rx_gpu_window_extra = units::ns(350);  ///< P2P window management
  Time tx_gpu_setup = units::us(1.1);   ///< per-message V2P + protocol setup
  Time tx_gpu_v1_per_request = units::us(1.9);  ///< V1 software request path
  Time tx_gpu_v2_per_packet = units::ns(350);   ///< V2 per-4KB supervision
  Time tx_gpu_v3_per_refill = units::ns(300);   ///< V3 per window refill
};

struct ApenetParams {
  pcie::LinkParams pcie = pcie::gen2_x8();

  // --- torus links -----------------------------------------------------------
  double torus_link_gbps = 28.0;        ///< paper: "Link 28Gbps"
  Time torus_link_latency = units::ns(150);
  Time router_latency = units::ns(120);

  // --- host-buffer transmission (kernel-driver + TX DMA read) -----------
  Time descriptor_fetch = units::us(0.35);  ///< card descriptor processing
  std::uint32_t host_read_request_bytes = 512;
  /// Outstanding host-DMA read bytes; 3840 B reproduces the 2.4 GB/s host
  /// memory read of Table I on the Gen2 x8 slot.
  std::uint32_t host_read_window = 3840;
  Time tx_packet_overhead = units::ns(300);   ///< per-packet injection logic

  // --- GPU-buffer transmission (GPU_P2P_TX) ---------------------------------
  P2pTxVersion p2p_tx_version = P2pTxVersion::kV3;
  std::uint32_t p2p_request_bytes = 512;  ///< read granule (32 B descriptor)
  Time p2p_request_interval = units::ns(80);  ///< HW issue pace (V2/V3)
  std::uint32_t p2p_prefetch_window = 128 * 1024;
  std::uint32_t p2p_descriptor_bytes = 32;
  /// V3 window-refill supervision granule: every this-many issued bytes
  /// cost the Nios one tx_gpu_v3_per_refill.
  std::uint32_t p2p_refill_interval_bytes = 64 * 1024;

  // --- FIFOs ---------------------------------------------------------------
  std::uint32_t tx_fifo_bytes = 32 * 1024;      ///< host TX data FIFO
  std::uint32_t gpu_tx_fifo_bytes = 32 * 1024;  ///< GPU TX data FIFO

  // --- receive path -----------------------------------------------------------
  Time rx_event_delivery = units::us(0.25);  ///< completion -> host library
  /// 28 nm card: V2P translation is a hardware pipeline stage (charged as
  /// nios.rx_hw_v2p_lookup) instead of the Nios firmware walk (nios.rx_v2p).
  bool rx_hw_v2p = false;
  NiosCosts nios;

  /// Latency of a register (MMIO) read completion from the card.
  Time mmio_read_latency = units::ns(400);

  /// Test hook: drop packets at the internal switch ("flushing TX
  /// injection FIFOs", used by the paper for pure memory-read bandwidth).
  bool flush_at_switch = false;

  Rate torus_rate() const { return units::Gbps(torus_link_gbps); }
};

}  // namespace apn::core
