// ApenetCard: the APEnet+ network adapter model (paper §III-B / §IV).
//
// One card per cluster node, attached to that node's PCIe fabric. The card
// contains:
//  * the Network Interface: a host-buffer TX engine (kernel-driver
//    descriptors + DMA reads of host memory through a bounded read window
//    into a 32 KB TX FIFO) and the GPU_P2P_TX engine (see gpu_p2p_tx.hpp);
//  * the Router: 8-port switch, dimension-ordered 3D-torus routing, six
//    external link ports wired by ApenetNetwork;
//  * the RX RDMA engine: per-packet firmware processing on the Nios II
//    (BUF_LIST validation + V2P translation), then DMA writes into host
//    memory or into GPU memory through the P2P write window;
//  * the Nios II micro-controller, modeled as a serialized sim::Resource
//    shared by RX processing and GPU-TX supervision — the contention the
//    paper identifies as its main bottleneck.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "check/check.hpp"
#include "common/fn.hpp"
#include "common/log.hpp"
#include "core/packet.hpp"
#include "core/v2p.hpp"
#include "core/params.hpp"
#include "core/torus.hpp"
#include "gpu/gpu.hpp"
#include "pcie/fabric.hpp"
#include "sim/coro.hpp"
#include "sim/resource.hpp"
#include "sim/sync.hpp"
#include "trace/metrics.hpp"
#include "trace/trace.hpp"

namespace apn::core {

class GpuP2pTx;

/// One registered buffer as seen by the card firmware (BUF_LIST entry).
struct BufListEntry {
  std::uint64_t vaddr = 0;  ///< 64-bit UVA / host virtual address
  std::uint64_t len = 0;
  std::uint32_t pid = 0;
  bool is_gpu = false;
  gpu::Gpu* gpu = nullptr;        ///< target GPU (GPU buffers only)
  std::uint64_t dev_offset = 0;   ///< device offset of vaddr (GPU buffers)
};

/// Completion event pushed to the host RDMA library.
struct RdmaEvent {
  enum class Kind { kRxDone } kind = Kind::kRxDone;
  std::uint64_t msg_id = 0;
  std::uint64_t vaddr = 0;   ///< message target virtual address
  std::uint32_t bytes = 0;
  TorusCoord peer;           ///< source node
};

/// A transmit request handed to the card by the kernel driver.
struct TxDescriptor {
  PacketHeader proto;        ///< dst coords / vaddr / pid / msg id / size
  bool src_is_gpu = false;
  std::uint64_t src_addr = 0;      ///< host pointer value (host source)
  gpu::Gpu* src_gpu = nullptr;     ///< source GPU (GPU source)
  std::uint64_t src_dev_offset = 0;
  bool carry_data = true;    ///< false => timing-only payloads
  /// Completes when the last packet of the message left the card.
  std::shared_ptr<sim::Gate> tx_done;
};

class ApenetCard : public pcie::Device {
  APN_OWNER(torus_node)

 public:
  /// MMIO region size claimed on the fabric.
  static constexpr std::uint64_t kMmioSize = 2ull << 20;
  static constexpr std::uint64_t kLandingZoneOff = 1ull << 20;

  ApenetCard(sim::Simulator& sim, pcie::Fabric& fabric, ApenetParams params,
             TorusCoord me, std::uint64_t mmio_base);
  ~ApenetCard() override;

  sim::Simulator& simulator() { return *sim_; }
  pcie::Fabric& fabric() { return *fabric_; }
  const TorusCoord& coord() const { return me_; }
  const ApenetParams& params() const { return params_; }
  /// Mutable access for test sweeps; only touch while the card is idle.
  ApenetParams& mutable_params() { return params_; }

  // ---- wiring (ApenetNetwork) ---------------------------------------------
  void set_shape(TorusShape shape) { shape_ = shape; }
  void set_link(TorusPort port, sim::Channel* out, ApenetCard* neighbor);
  /// A packet fully arrived over an external link.
  void receive_from_link(ApPacket pkt);

  // ---- driver-facing interface (costs charged by the RDMA library) -----
  void add_buffer(BufListEntry entry);
  void remove_buffer(std::uint64_t vaddr, std::uint32_t pid);
  std::size_t buffer_count() const { return buf_list_.size(); }
  const PageTable& host_v2p() const { return host_v2p_; }
  /// GPU_V2P table for `g`; nullptr if no buffer of that GPU is mapped.
  const PageTable* gpu_v2p(gpu::Gpu* g) const {
    auto it = gpu_v2p_.find(g);
    return it == gpu_v2p_.end() ? nullptr : it->second.get();
  }
  const BufListEntry* find_buffer(std::uint64_t addr,
                                  std::uint32_t pid) const;
  void submit_tx(TxDescriptor d);
  sim::Queue<RdmaEvent>& rx_events() { return rx_events_; }

  std::uint64_t gpu_landing_addr() const {
    return mmio_base_ + kLandingZoneOff;
  }

  // ---- statistics -------------------------------------------------------------
  sim::Resource& nios() { return nios_; }
  GpuP2pTx& gpu_tx() { return *gpu_tx_; }
  std::uint64_t packets_injected() const { return packets_injected_.peek(); }
  std::uint64_t packets_received() const { return packets_received_.peek(); }
  std::uint64_t rx_drops() const { return rx_drops_.peek(); }
  std::uint64_t rx_bytes() const { return rx_bytes_.peek(); }

  // ---- pcie::Device -----------------------------------------------------------
  void handle_write(std::uint64_t addr, pcie::Payload payload) override;
  void handle_read(std::uint64_t addr, std::uint32_t len,
                   UniqueFn<void(pcie::Payload)> reply) override;

  // ---- used by GpuP2pTx ---------------------------------------------------
  /// Inject a packet into the router; `on_sent` fires when the packet has
  /// left the card (link serialization done, or local/flushed delivery).
  void inject(ApPacket pkt, UniqueFn<void()> on_sent);
  sim::Resource& nios_resource() { return nios_; }

 private:
  sim::Coro host_tx_engine();
  sim::Coro rx_processor();
  void route_or_forward(ApPacket pkt);
  void deliver_rx_write(const ApPacket& pkt, const BufListEntry& entry);
  void account_rx_delivery(const PacketHeader& hdr);
  Time rx_task_time(bool gpu_dest) const;

  sim::Simulator* sim_;
  pcie::Fabric* fabric_;
  ApenetParams params_;
  Logger log_;
  TorusCoord me_;
  TorusShape shape_;
  // apn-lint: allow(check-coverage) — fixed at construction, never mutated
  std::uint64_t mmio_base_;

  // Router / links.
  struct LinkOut {
    sim::Channel* channel = nullptr;
    ApenetCard* neighbor = nullptr;
  };
  // apn-lint: allow(check-coverage) — wired once at topology setup
  std::array<LinkOut, kTorusPorts> links_{};

  // Engines and firmware.
  sim::Resource nios_;
  sim::Resource injection_;  ///< per-packet injection logic (HW)
  sim::Queue<TxDescriptor> host_tx_queue_;
  sim::CreditPool host_tx_fifo_;
  sim::CreditPool host_read_window_;
  sim::Queue<ApPacket> rx_queue_;
  std::unique_ptr<GpuP2pTx> gpu_tx_;

  // RX message reassembly and completion.
  struct RxMsgState {
    std::uint64_t received = 0;
    std::uint64_t written = 0;
  };
  std::unordered_map<std::uint64_t, RxMsgState> rx_msgs_;
  sim::Queue<RdmaEvent> rx_events_;

  // GPU P2P write-window state (per target GPU).
  std::unordered_map<gpu::Gpu*, std::uint64_t> gpu_window_;

  // Firmware address-translation tables (paper §IV): 4 KB-paged HOST_V2P
  // and one 64 KB-paged GPU_V2P per GPU on the bus.
  PageTable host_v2p_{12};
  std::unordered_map<gpu::Gpu*, std::unique_ptr<PageTable>> gpu_v2p_;

  std::vector<BufListEntry> buf_list_;
  check::StateCell<std::uint64_t> packets_injected_{"card.packets_injected"};
  check::StateCell<std::uint64_t> packets_received_{"card.packets_received"};
  check::StateCell<std::uint64_t> rx_drops_{"card.rx_drops"};
  check::StateCell<std::uint64_t> rx_bytes_{"card.rx_bytes"};

  // Observability (inert unless a trace sink is installed; see src/trace).
  trace::Track trace_rx_;       ///< RX RDMA engine lane (Nios + delivery)
  trace::Track trace_host_tx_;  ///< host-buffer TX engine lane
  std::array<trace::Track, kTorusPorts> trace_links_{};  ///< torus channels
  trace::Counter* m_rx_packets_;
  trace::Counter* m_rx_drops_;
  trace::Counter* m_rx_bytes_;
  trace::Counter* m_tx_packets_;
};

}  // namespace apn::core
