// 4-level virtual-to-physical page table — the HOST_V2P / GPU_V2P
// structures the APEnet+ firmware maintains (paper §III-B/§IV: "a 4-level
// GPU V2P page table is maintained, which resolves virtual addresses to
// GPU page descriptors", with "constant traversal time thanks to the
// 4-level page table").
//
// A radix tree with 9 translation bits per level covers page_shift+36 bits
// of virtual address space (48 bits for 4 KB host pages, 52 for 64 KB GPU
// pages). Lookup walks exactly four nodes, which is why the firmware's
// translation cost is constant regardless of how much memory is mapped.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>

#include "common/owner.hpp"

namespace apn::core {

class PageTable {
  // The firmware's translation tables live on one card (HOST_V2P and the
  // per-GPU GPU_V2P instances are ApenetCard members).
  APN_OWNER(torus_node)

 public:
  static constexpr int kLevels = 4;
  static constexpr int kBitsPerLevel = 9;
  static constexpr std::size_t kFanout = 1u << kBitsPerLevel;

  /// `page_shift`: 12 for 4 KB host pages, 16 for 64 KB GPU pages.
  explicit PageTable(int page_shift) : page_shift_(page_shift) {}

  std::uint64_t page_bytes() const { return 1ull << page_shift_; }

  /// Map [vaddr, vaddr+len) to physical addresses starting at `phys`.
  /// Both addresses are truncated to page alignment; every covered page
  /// gets one descriptor. Remapping an existing page overwrites it.
  void map(std::uint64_t vaddr, std::uint64_t phys, std::uint64_t len) {
    if (len == 0) return;
    std::uint64_t first = vaddr >> page_shift_;
    std::uint64_t last = (vaddr + len - 1) >> page_shift_;
    std::uint64_t phys_page = phys >> page_shift_;
    for (std::uint64_t p = first; p <= last; ++p, ++phys_page)
      insert(p, phys_page << page_shift_);
  }

  /// Remove the descriptors covering [vaddr, vaddr+len).
  void unmap(std::uint64_t vaddr, std::uint64_t len) {
    if (len == 0) return;
    std::uint64_t first = vaddr >> page_shift_;
    std::uint64_t last = (vaddr + len - 1) >> page_shift_;
    for (std::uint64_t p = first; p <= last; ++p) erase(p);
  }

  /// Translate a virtual address; nullopt if the page is not mapped.
  std::optional<std::uint64_t> lookup(std::uint64_t vaddr) const {
    std::uint64_t page = vaddr >> page_shift_;
    const Node* node = &root_;
    for (int level = kLevels - 1; level > 0; --level) {
      const auto& slot = node->children[index(page, level)];
      if (!slot) return std::nullopt;
      node = slot.get();
    }
    const Leaf& leaf = node->leaves[index(page, 0)];
    if (!leaf.valid) return std::nullopt;
    return leaf.phys | (vaddr & (page_bytes() - 1));
  }

  bool is_mapped(std::uint64_t vaddr) const {
    return lookup(vaddr).has_value();
  }

  std::size_t mapped_pages() const { return mapped_; }
  /// Interior nodes allocated — the firmware-memory footprint proxy.
  std::size_t resident_nodes() const { return nodes_; }

 private:
  struct Leaf {
    std::uint64_t phys = 0;
    bool valid = false;
  };
  struct Node {
    // Level >0 nodes use children; level-0 nodes use leaves. Allocating
    // both arrays per node would be wasteful; a union of vectors keeps it
    // simple and safe.
    std::array<std::unique_ptr<Node>, kFanout> children{};
    std::array<Leaf, kFanout> leaves{};
  };

  static std::size_t index(std::uint64_t page, int level) {
    return static_cast<std::size_t>((page >> (kBitsPerLevel * level)) &
                                    (kFanout - 1));
  }

  void insert(std::uint64_t page, std::uint64_t phys) {
    Node* node = &root_;
    for (int level = kLevels - 1; level > 0; --level) {
      auto& slot = node->children[index(page, level)];
      if (!slot) {
        slot = std::make_unique<Node>();
        ++nodes_;
      }
      node = slot.get();
    }
    Leaf& leaf = node->leaves[index(page, 0)];
    if (!leaf.valid) ++mapped_;
    leaf = Leaf{phys, true};
  }

  void erase(std::uint64_t page) {
    Node* node = &root_;
    for (int level = kLevels - 1; level > 0; --level) {
      auto& slot = node->children[index(page, level)];
      if (!slot) return;
      node = slot.get();
    }
    Leaf& leaf = node->leaves[index(page, 0)];
    if (leaf.valid) {
      leaf.valid = false;
      --mapped_;
    }
  }

  int page_shift_;
  Node root_;
  std::size_t mapped_ = 0;
  std::size_t nodes_ = 0;
};

}  // namespace apn::core
