#include "core/card.hpp"

#include <algorithm>
#include <cstring>
#include <utility>

#include "core/gpu_p2p_tx.hpp"

namespace apn::core {

ApenetCard::ApenetCard(sim::Simulator& sim, pcie::Fabric& fabric,
                       ApenetParams params, TorusCoord me,
                       std::uint64_t mmio_base)
    : sim_(&sim),
      fabric_(&fabric),
      params_(params),
      log_("apenet" + coord_str(me)),
      me_(me),
      mmio_base_(mmio_base),
      nios_(sim),
      injection_(sim),
      host_tx_queue_(sim),
      host_tx_fifo_(sim, params_.tx_fifo_bytes),
      host_read_window_(sim, params_.host_read_window),
      rx_queue_(sim),
      rx_events_(sim) {
  set_pcie_name("apenet");
  trace_rx_ = trace::Track::open(fabric.name(), "apenet.rx");
  trace_host_tx_ = trace::Track::open(fabric.name(), "apenet.host_tx");
  auto& m = trace::MetricsRegistry::global();
  m_rx_packets_ = &m.counter("card.rx.packets");
  m_rx_drops_ = &m.counter("card.rx.drops");
  m_rx_bytes_ = &m.counter("card.rx.bytes");
  m_tx_packets_ = &m.counter("card.tx.packets");
  gpu_tx_ = std::make_unique<GpuP2pTx>(*this, params_);
  host_tx_engine();
  rx_processor();
}

ApenetCard::~ApenetCard() = default;

void ApenetCard::set_link(TorusPort port, sim::Channel* out,
                          ApenetCard* neighbor) {
  links_[static_cast<std::size_t>(port)] = LinkOut{out, neighbor};
  trace_links_[static_cast<std::size_t>(port)] = trace::Track::open(
      fabric_->name(), std::string("apenet.link.") + port_name(port));
}

void ApenetCard::add_buffer(BufListEntry entry) {
  if (entry.is_gpu) {
    auto& table = gpu_v2p_[entry.gpu];
    if (!table) table = std::make_unique<PageTable>(16);  // 64 KB GPU pages
    table->map(entry.vaddr, entry.dev_offset, entry.len);
  } else {
    // Host pages: the physical address of pinned memory is its (identity)
    // address in this model, but the table and the per-page scatter are
    // exercised exactly as on the real card.
    host_v2p_.map(entry.vaddr, entry.vaddr, entry.len);
    APN_CHECK_ACCESS(host_v2p_, kWrite);
  }
  buf_list_.push_back(entry);
  APN_CHECK_ACCESS(buf_list_, kWrite);
}

void ApenetCard::remove_buffer(std::uint64_t vaddr, std::uint32_t pid) {
  std::erase_if(buf_list_, [&](const BufListEntry& e) {
    if (e.vaddr != vaddr || e.pid != pid) return false;
    if (e.is_gpu) {
      auto it = gpu_v2p_.find(e.gpu);
      if (it != gpu_v2p_.end()) it->second->unmap(e.vaddr, e.len);
    } else {
      host_v2p_.unmap(e.vaddr, e.len);
      APN_CHECK_ACCESS(host_v2p_, kWrite);
    }
    return true;
  });
  APN_CHECK_ACCESS(buf_list_, kWrite);
}

const BufListEntry* ApenetCard::find_buffer(std::uint64_t addr,
                                            std::uint32_t pid) const {
  APN_CHECK_ACCESS(buf_list_, kRead);
  for (const BufListEntry& e : buf_list_) {
    if (pid == e.pid && addr >= e.vaddr && addr - e.vaddr < e.len) return &e;
  }
  return nullptr;
}

void ApenetCard::submit_tx(TxDescriptor d) {
  if (d.src_is_gpu) {
    GpuTxJob job;
    job.proto = d.proto;
    job.gpu = d.src_gpu;
    job.dev_offset = d.src_dev_offset;
    job.carry_data = d.carry_data;
    job.tx_done = d.tx_done;
    gpu_tx_->submit(std::move(job));
  } else {
    host_tx_queue_.push(std::move(d));
  }
}

void ApenetCard::handle_write(std::uint64_t addr, pcie::Payload payload) {
  std::uint64_t off = addr - mmio_base_;
  if (off >= kLandingZoneOff && off < kMmioSize) {
    gpu_tx_->on_data_arrival(std::move(payload));
  }
  // Other register writes carry no model behaviour.
}

void ApenetCard::handle_read(std::uint64_t /*addr*/, std::uint32_t len,
                             UniqueFn<void(pcie::Payload)> reply) {
  sim_->after(params_.mmio_read_latency,
              [len, reply = std::move(reply)]() mutable {
                reply(pcie::Payload::timing(len));
              });
}

// ---------------------------------------------------------------------------
// Transmit path — host buffers
// ---------------------------------------------------------------------------

namespace {
/// Assembly state of one host-source message being read from host memory.
struct HostAsm {
  HostAsm(sim::Simulator& sim) : arrived_pool(sim, 0), all_arrived(sim) {}
  std::uint64_t arrived = 0;
  std::vector<std::uint8_t> buffer;
  sim::CreditPool arrived_pool;
  sim::Gate all_arrived;
};
}  // namespace

sim::Coro ApenetCard::host_tx_engine() {
  for (;;) {
    TxDescriptor d = co_await host_tx_queue_.pop();
    const Time t_job = sim_->now();
    co_await sim::delay(*sim_, params_.descriptor_fetch);
    const std::uint32_t total = d.proto.msg_bytes;
    auto as = std::make_shared<HostAsm>(*sim_);

    // Packetizer for this message (runs concurrently with the reads).
    [](ApenetCard* card, std::shared_ptr<HostAsm> as,
       TxDescriptor d) -> sim::Coro {
      const std::uint32_t total = d.proto.msg_bytes;
      const std::uint64_t total_packets =
          (total + kMaxPacketPayload - 1) / kMaxPacketPayload;
      auto sent = std::make_shared<std::uint64_t>(0);
      auto tx_done = d.tx_done;
      std::uint64_t off = 0;
      while (off < total) {
        const std::uint32_t size = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(kMaxPacketPayload, total - off));
        co_await as->arrived_pool.acquire(size);
        ApPacket pkt;
        pkt.hdr = d.proto;
        pkt.hdr.dst_vaddr = d.proto.msg_vaddr + off;
        if (d.carry_data &&
            as->buffer.size() >= off + size) {
          pkt.payload = pcie::Payload::of(std::vector<std::uint8_t>(
              as->buffer.begin() + static_cast<std::ptrdiff_t>(off),
              as->buffer.begin() + static_cast<std::ptrdiff_t>(off + size)));
        } else {
          pkt.payload = pcie::Payload::timing(size);
        }
        card->inject(std::move(pkt),
                     [card, size, sent, total_packets, tx_done] {
                       card->host_tx_fifo_.release(size);
                       if (++*sent == total_packets && tx_done)
                         tx_done->open();
                     });
        off += size;
      }
      if (total == 0 && tx_done) tx_done->open();
    }(this, as, d);

    // DMA-read the source buffer through the bounded read window.
    std::uint64_t issued = 0;
    while (issued < total) {
      const std::uint32_t chunk = static_cast<std::uint32_t>(
          std::min<std::uint64_t>(params_.host_read_request_bytes,
                                  total - issued));
      co_await host_read_window_.acquire(chunk);
      co_await host_tx_fifo_.acquire(chunk);
      fabric_->read(*this, d.src_addr + issued, chunk,
                    [this, as, chunk, total](pcie::Payload p) {
                      host_read_window_.release(chunk);
                      as->arrived += p.bytes;
                      if (!p.data.empty())
                        as->buffer.insert(as->buffer.end(), p.data.begin(),
                                          p.data.end());
                      as->arrived_pool.release(
                          static_cast<std::int64_t>(p.bytes));
                      if (as->arrived >= total) as->all_arrived.open();
                    });
      issued += chunk;
    }
    if (total > 0) {
      co_await as->all_arrived.wait();
    }
    // Descriptor fetch + DMA reads of the full message from host memory.
    trace_host_tx_.span("card", "host_tx_job", t_job, sim_->now(),
                        {{"bytes", total}});
  }
}

// ---------------------------------------------------------------------------
// Router
// ---------------------------------------------------------------------------

void ApenetCard::inject(ApPacket pkt, UniqueFn<void()> on_sent) {
  auto sp = std::make_shared<ApPacket>(std::move(pkt));
  injection_.post(params_.tx_packet_overhead, [this, sp,
                                               on_sent = std::move(
                                                   on_sent)]() mutable {
    ++packets_injected_;
    m_tx_packets_->inc();
    if (params_.flush_at_switch) {
      // Test hook: the packet evaporates inside the switch.
      sim_->after(params_.router_latency, std::move(on_sent));
      return;
    }
    if (sp->hdr.dst == me_) {
      sim_->after(params_.router_latency,
                  [this, sp, on_sent = std::move(on_sent)]() mutable {
                    rx_queue_.push(std::move(*sp));
                    on_sent();
                  });
      return;
    }
    TorusPort port = shape_.route_next(me_, sp->hdr.dst);
    LinkOut& l = links_[static_cast<std::size_t>(port)];
    if (l.channel == nullptr || l.neighbor == nullptr) {
      // Unwired port (single-card tests): drop but complete the send.
      sim_->after(params_.router_latency, std::move(on_sent));
      return;
    }
    sim_->after(params_.router_latency, [this, sp, &l, port,
                                         on_sent =
                                             std::move(on_sent)]() mutable {
      const trace::Track& lt = trace_links_[static_cast<std::size_t>(port)];
      auto deliver = [nb = l.neighbor, sp] {
        nb->receive_from_link(std::move(*sp));
      };
      if (!lt) {
        l.channel->send(sp->wire_bytes(), std::move(deliver),
                        std::move(on_sent));
        return;
      }
      const Time t0 = sim_->now();
      const Bytes wire = sp->wire_bytes();
      l.channel->send(wire, std::move(deliver),
                      [this, &lt, t0, wire,
                       on_sent = std::move(on_sent)]() mutable {
                        lt.span("torus", "pkt", t0, sim_->now(),
                                {{"wire_bytes", wire.count()}});
                        if (on_sent) on_sent();
                      });
    });
  });
}

void ApenetCard::receive_from_link(ApPacket pkt) {
  if (pkt.hdr.dst == me_) {
    sim_->after(params_.router_latency, [this, p = std::move(pkt)]() mutable {
      rx_queue_.push(std::move(p));
    });
    return;
  }
  // Transit traffic: forward out of the next dimension-ordered port.
  TorusPort port = shape_.route_next(me_, pkt.hdr.dst);
  LinkOut& l = links_[static_cast<std::size_t>(port)];
  if (l.channel == nullptr || l.neighbor == nullptr) return;  // drop
  auto sp = std::make_shared<ApPacket>(std::move(pkt));
  sim_->after(params_.router_latency, [sp, &l] {
    l.channel->send(sp->wire_bytes(), [nb = l.neighbor, sp] {
      nb->receive_from_link(std::move(*sp));
    });
  });
}

// ---------------------------------------------------------------------------
// Receive path
// ---------------------------------------------------------------------------

Time ApenetCard::rx_task_time(bool gpu_dest) const {
  const NiosCosts& c = params_.nios;
  APN_CHECK_ACCESS(buf_list_, kRead);
  Time t = c.rx_buflist_base +
           static_cast<Time>(buf_list_.size()) * c.rx_buflist_per_entry +
           (params_.rx_hw_v2p ? c.rx_hw_v2p_lookup : c.rx_v2p) +
           c.rx_dma_kick;
  if (gpu_dest) t += c.rx_gpu_window_extra;
  return t;
}

sim::Coro ApenetCard::rx_processor() {
  for (;;) {
    ApPacket pkt = co_await rx_queue_.pop();
    ++packets_received_;
    m_rx_packets_->inc();
    const Time t_pkt = sim_->now();
    const BufListEntry* entry =
        find_buffer(pkt.hdr.dst_vaddr, pkt.hdr.dst_pid);
    // Firmware: BUF_LIST traversal + V2P translation + RX DMA programming.
    co_await nios_.use(rx_task_time(entry != nullptr && entry->is_gpu));
    // The span covers Nios queue wait + processing — the queueing is the
    // contention the paper identifies, so it belongs in the picture.
    trace_rx_.span("card", "rx_nios", t_pkt, sim_->now(),
                   {{"vaddr", pkt.hdr.dst_vaddr},
                    {"bytes", pkt.payload.bytes},
                    {"gpu_dest", entry != nullptr && entry->is_gpu}});
    if (entry == nullptr) {
      ++rx_drops_;
      m_rx_drops_->inc();
      trace_rx_.instant("card", "rx_drop", sim_->now(),
                        {{"vaddr", pkt.hdr.dst_vaddr}});
      log_.warn(sim_->now(),
                "RX drop: no BUF_LIST entry for vaddr 0x%llx (pid %u)",
                static_cast<unsigned long long>(pkt.hdr.dst_vaddr),
                pkt.hdr.dst_pid);
      continue;
    }
    deliver_rx_write(pkt, *entry);
  }
}

void ApenetCard::deliver_rx_write(const ApPacket& pkt,
                                  const BufListEntry& entry) {
  rx_bytes_ += pkt.payload.bytes;
  m_rx_bytes_->add(pkt.payload.bytes);
  if (!entry.is_gpu) {
    // Host destination: the RX RDMA logic converts the virtual address
    // into a scatter list of 4 KB physical pages (paper §III-B) and emits
    // one DMA write per contiguous page run.
    PacketHeader hdr = pkt.hdr;
    APN_CHECK_ACCESS(host_v2p_, kRead);
    const std::uint64_t page = host_v2p_.page_bytes();
    std::uint64_t pos = 0;
    const std::uint64_t total = pkt.payload.bytes;
    while (pos < total) {
      const std::uint64_t vaddr = pkt.hdr.dst_vaddr + pos;
      const std::uint64_t in_page = vaddr & (page - 1);
      const std::uint64_t n = std::min(page - in_page, total - pos);
      std::optional<std::uint64_t> phys = host_v2p_.lookup(vaddr);
      if (!phys) {  // page vanished (deregistered mid-flight): drop rest
        ++rx_drops_;
        log_.warn(sim_->now(), "RX drop: HOST_V2P miss at 0x%llx",
                  static_cast<unsigned long long>(vaddr));
        return;
      }
      pcie::Payload slice;
      slice.bytes = n;
      if (!pkt.payload.data.empty()) {
        slice.data.assign(
            pkt.payload.data.begin() + static_cast<std::ptrdiff_t>(pos),
            pkt.payload.data.begin() + static_cast<std::ptrdiff_t>(pos + n));
      }
      const bool last = pos + n >= total;
      fabric_->post_write(*this, *phys, std::move(slice),
                          [this, hdr, last] {
                            if (last) account_rx_delivery(hdr);
                          });
      pos += n;
    }
    return;
  }

  // GPU destination: write through the P2P sliding window, switching the
  // window register whenever the 64 KB target page changes. The GPU_V2P
  // table resolves the UVA to the device page descriptor.
  gpu::Gpu* g = entry.gpu;
  const PageTable* v2p = gpu_v2p(g);
  const std::uint64_t dev_off =
      v2p != nullptr && v2p->is_mapped(pkt.hdr.dst_vaddr)
          ? *v2p->lookup(pkt.hdr.dst_vaddr)
          : entry.dev_offset + (pkt.hdr.dst_vaddr - entry.vaddr);
  constexpr std::uint64_t kWin = gpu::GpuMmio::kWindowBytes;
  std::uint64_t pos = 0;
  const std::uint64_t total = pkt.payload.bytes;
  PacketHeader hdr = pkt.hdr;
  while (pos < total) {
    const std::uint64_t addr = dev_off + pos;
    const std::uint64_t page = addr / kWin * kWin;
    const std::uint64_t in_page = addr - page;
    const std::uint64_t n = std::min(kWin - in_page, total - pos);
    auto it = gpu_window_.find(g);
    APN_CHECK_ACCESS(gpu_window_, kRead);
    if (it == gpu_window_.end() || it->second != page) {
      gpu_window_[g] = page;
      APN_CHECK_ACCESS(gpu_window_, kWrite);
      pcie::Payload ctl;
      ctl.bytes = 8;
      ctl.data.resize(8);
      std::memcpy(ctl.data.data(), &page, 8);
      fabric_->post_write(*this, g->window_ctl_addr(), std::move(ctl));
    }
    pcie::Payload slice;
    slice.bytes = n;
    if (!pkt.payload.data.empty()) {
      slice.data.assign(
          pkt.payload.data.begin() + static_cast<std::ptrdiff_t>(pos),
          pkt.payload.data.begin() + static_cast<std::ptrdiff_t>(pos + n));
    }
    const bool last = pos + n >= total;
    fabric_->post_write(*this, g->window_aperture_addr() + in_page,
                        std::move(slice), [this, hdr, last] {
                          if (last) account_rx_delivery(hdr);
                        });
    pos += n;
  }
}

void ApenetCard::account_rx_delivery(const PacketHeader& hdr) {
  RxMsgState& st = rx_msgs_[hdr.msg_id];
  // kAccum: per-packet completion counting commutes — the msg completes
  // when the count reaches total_packets regardless of which same-tick
  // delivery got there, and entries of distinct msg_ids are independent.
  APN_CHECK_ACCESS(rx_msgs_, kAccum);
  // dst_vaddr is per-packet; payload length is implicit in accounting:
  // we count the packet as fully written when its last write delivered.
  st.written += 1;
  const std::uint64_t total_packets =
      (hdr.msg_bytes + kMaxPacketPayload - 1) / kMaxPacketPayload;
  if (st.written >= std::max<std::uint64_t>(total_packets, 1)) {
    rx_msgs_.erase(hdr.msg_id);
    RdmaEvent ev;
    ev.kind = RdmaEvent::Kind::kRxDone;
    ev.msg_id = hdr.msg_id;
    ev.vaddr = hdr.msg_vaddr;
    ev.bytes = hdr.msg_bytes;
    ev.peer = hdr.src;
    sim_->after(params_.rx_event_delivery,
                [this, ev] { rx_events_.push(ev); });
  }
}

}  // namespace apn::core
