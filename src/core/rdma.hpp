// RdmaDevice: the APEnet+ host-side RDMA library (§IV-A of the paper).
//
// The programming model is RDMA PUT against 64-bit virtual addresses:
// buffers — host or GPU, discriminated through the CUDA UVA — are
// registered (pinned + programmed into the card's BUF_LIST and V2P
// tables) and can then be the target of PUTs from any node. On the
// transmit side, the source memory type can be given explicitly via a
// flag (avoiding the cuPointerGetAttribute call) or auto-detected; GPU
// source buffers are mapped on the fly on first use and kept in an
// internal registration cache, exactly as the paper describes.
#pragma once

#include <cstdint>
#include <map>
#include <memory>

#include "core/card.hpp"
#include "pcie/memory.hpp"
#include "simcuda/runtime.hpp"

namespace apn::core {

struct RdmaParams {
  Time put_overhead = units::us(0.7);  ///< per-PUT driver work (host CPU)
  Time pointer_query_cost = units::ns(400);  ///< cuPointerGetAttribute
  Time register_host_cost = units::us(18);
  Time register_host_per_page = units::ns(250);  ///< 4 KB pages
  Time register_gpu_cost = units::us(45);  ///< token retrieval + ioctl
  Time register_gpu_per_page = units::ns(600);  ///< 64 KB pages
  Time event_poll_cost = units::ns(150);
};

/// Source memory type flag of the PUT API ("chosen at compilation time by
/// passing a flag", §IV-A). kAuto pays the pointer-attribute query.
/// kGpuBar1 transmits a GPU buffer through a BAR1 mapping with plain PCIe
/// memory reads instead of the peer-to-peer protocol — slow on Fermi
/// (~150 MB/s) but competitive on Kepler (paper §III/Table I).
enum class MemType { kAuto, kHost, kGpu, kGpuBar1 };

class RdmaDevice {
  APN_OWNER(torus_node)

 public:
  RdmaDevice(ApenetCard& card, pcie::HostMemory& hostmem,
             cuda::Runtime* cuda_runtime, std::uint32_t pid = 0,
             RdmaParams params = {});

  ApenetCard& card() { return *card_; }
  const RdmaParams& params() const { return params_; }
  TorusCoord coord() const { return card_->coord(); }

  // ---- registration ----------------------------------------------------------
  /// Pin + register a buffer for RDMA (BUF_LIST + V2P programming).
  /// Returns a future completing when the mapping is live; idempotent for
  /// cached buffers (completes immediately at zero cost).
  sim::Future<bool> register_buffer(std::uint64_t addr, std::uint64_t len,
                                    MemType type = MemType::kAuto);
  void deregister_buffer(std::uint64_t addr);
  bool is_registered(std::uint64_t addr, std::uint64_t len = 1) const;
  std::size_t registration_cache_size() const { return cache_.size(); }
  std::uint64_t registration_cache_hits() const { return cache_hits_; }
  std::uint64_t registration_cache_misses() const { return cache_misses_; }

  // ---- data movement --------------------------------------------------------
  struct Put {
    std::uint64_t msg_id = 0;
    /// Opens when the message has fully left the local card.
    std::shared_ptr<sim::Gate> tx_done;
  };

  /// RDMA PUT of [local_addr, +len) to `remote_vaddr` on node `dst`.
  /// GPU source buffers not yet registered are mapped on the fly (cache
  /// miss cost). `carry_data=false` sends timing-only payloads.
  Put put(TorusCoord dst, std::uint64_t local_addr, std::uint64_t len,
          std::uint64_t remote_vaddr, MemType type = MemType::kAuto,
          bool carry_data = true);

  /// Receive-completion event stream (one event per inbound PUT).
  sim::Queue<RdmaEvent>& events() { return card_->rx_events(); }

  /// Polling receive (the API style the paper's tests use): charges the
  /// event-poll cost, then suspends until an event is available.
  sim::Future<RdmaEvent> wait_event();

 private:
  struct Registration {
    std::uint64_t len = 0;
    bool is_gpu = false;
    std::uint64_t bar1_addr = 0;  ///< nonzero once BAR1-mapped
  };
  const Registration* find_registration(std::uint64_t addr,
                                        std::uint64_t len) const;
  Registration* find_registration_mut(std::uint64_t addr, std::uint64_t len,
                                      std::uint64_t* base);
  sim::Coro do_put(TorusCoord dst, std::uint64_t local_addr,
                   std::uint64_t len, std::uint64_t remote_vaddr,
                   MemType type, bool carry_data,
                   std::shared_ptr<sim::Gate> tx_done, std::uint64_t msg_id);

  sim::Simulator* sim_;
  ApenetCard* card_;
  pcie::HostMemory* hostmem_;
  cuda::Runtime* cuda_;
  // apn-lint: allow(check-coverage) — fixed at construction, never mutated
  std::uint32_t pid_;
  RdmaParams params_;
  std::map<std::uint64_t, Registration> cache_;  // base -> registration
  std::uint64_t next_seq_ = 1;
  std::uint64_t cache_hits_ = 0;
  std::uint64_t cache_misses_ = 0;
};

}  // namespace apn::core
