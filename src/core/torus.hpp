// 3D torus topology and APEnet+'s dimension-ordered static routing.
//
// The router resolves the X displacement first, then Y, then Z, always
// taking the minimal wrap-around direction (ties broken toward the
// positive port). This is the classic deadlock-free e-cube scheme the
// APEnet+ Router block implements.
#pragma once

#include <array>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "common/table.hpp"

namespace apn::core {

struct TorusCoord {
  int x = 0, y = 0, z = 0;
  bool operator==(const TorusCoord&) const = default;
};

enum class TorusPort : int {
  kXplus = 0,
  kXminus = 1,
  kYplus = 2,
  kYminus = 3,
  kZplus = 4,
  kZminus = 5,
  kLocal = 6,
};
constexpr int kTorusPorts = 6;

inline const char* port_name(TorusPort p) {
  switch (p) {
    case TorusPort::kXplus: return "X+";
    case TorusPort::kXminus: return "X-";
    case TorusPort::kYplus: return "Y+";
    case TorusPort::kYminus: return "Y-";
    case TorusPort::kZplus: return "Z+";
    case TorusPort::kZminus: return "Z-";
    case TorusPort::kLocal: return "local";
  }
  std::abort();  // unreachable: no default, so -Wswitch guards enum growth
}

struct TorusShape {
  int nx = 1, ny = 1, nz = 1;

  int size() const { return nx * ny * nz; }

  int index(TorusCoord c) const { return (c.z * ny + c.y) * nx + c.x; }

  TorusCoord coord(int idx) const {
    if (idx < 0 || idx >= size()) throw std::out_of_range("torus index");
    return TorusCoord{idx % nx, (idx / nx) % ny, idx / (nx * ny)};
  }

  bool contains(TorusCoord c) const {
    return c.x >= 0 && c.x < nx && c.y >= 0 && c.y < ny && c.z >= 0 &&
           c.z < nz;
  }

  /// Signed minimal displacement along one ring of length n (ties -> +).
  static int ring_delta(int from, int to, int n) {
    int d = (to - from) % n;
    if (d < 0) d += n;          // d in [0, n)
    if (2 * d > n) d -= n;      // minimal direction; tie (2d == n) stays +
    return d;
  }

  /// Next output port under dimension-ordered routing, or kLocal.
  TorusPort route_next(TorusCoord here, TorusCoord dst) const {
    int dx = ring_delta(here.x, dst.x, nx);
    if (dx != 0) return dx > 0 ? TorusPort::kXplus : TorusPort::kXminus;
    int dy = ring_delta(here.y, dst.y, ny);
    if (dy != 0) return dy > 0 ? TorusPort::kYplus : TorusPort::kYminus;
    int dz = ring_delta(here.z, dst.z, nz);
    if (dz != 0) return dz > 0 ? TorusPort::kZplus : TorusPort::kZminus;
    return TorusPort::kLocal;
  }

  /// Neighbor coordinate through a port (with wrap-around).
  TorusCoord neighbor(TorusCoord c, TorusPort p) const {
    auto wrap = [](int v, int n) { return ((v % n) + n) % n; };
    switch (p) {
      case TorusPort::kXplus: c.x = wrap(c.x + 1, nx); break;
      case TorusPort::kXminus: c.x = wrap(c.x - 1, nx); break;
      case TorusPort::kYplus: c.y = wrap(c.y + 1, ny); break;
      case TorusPort::kYminus: c.y = wrap(c.y - 1, ny); break;
      case TorusPort::kZplus: c.z = wrap(c.z + 1, nz); break;
      case TorusPort::kZminus: c.z = wrap(c.z - 1, nz); break;
      case TorusPort::kLocal: break;
    }
    return c;
  }

  /// Number of link hops between two nodes under minimal routing.
  int hop_count(TorusCoord a, TorusCoord b) const {
    return std::abs(ring_delta(a.x, b.x, nx)) +
           std::abs(ring_delta(a.y, b.y, ny)) +
           std::abs(ring_delta(a.z, b.z, nz));
  }
};

inline std::string coord_str(TorusCoord c) {
  return strf("(%d,%d,%d)", c.x, c.y, c.z);
}

}  // namespace apn::core
