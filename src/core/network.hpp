// ApenetNetwork: wires a set of ApenetCards into a 3D torus, creating the
// directed link channels between neighbor ports (X+, X-, Y+, Y-, Z+, Z-).
#pragma once

#include <memory>
#include <vector>

#include "common/owner.hpp"
#include "core/card.hpp"
#include "core/torus.hpp"
#include "sim/channel.hpp"

namespace apn::core {

class ApenetNetwork {
  // Topology container: cards registered and channels created during
  // assembly, frozen once wire() returns — readable from any partition.
  APN_OWNER(global_readonly)

 public:
  ApenetNetwork(sim::Simulator& sim, TorusShape shape)
      : sim_(&sim), shape_(shape) {}

  const TorusShape& shape() const { return shape_; }

  /// Register card for the node at `shape.coord(index)`; cards must be
  /// added for all indices in order before wire() is called.
  void add_card(ApenetCard& card) { cards_.push_back(&card); }

  /// Create all torus link channels and hand them to the cards.
  void wire();

  ApenetCard& card(int index) { return *cards_.at(static_cast<std::size_t>(index)); }
  ApenetCard& card(TorusCoord c) { return card(shape_.index(c)); }
  int size() const { return static_cast<int>(cards_.size()); }

 private:
  sim::Simulator* sim_;
  TorusShape shape_;
  std::vector<ApenetCard*> cards_;
  std::vector<std::unique_ptr<sim::Channel>> channels_;
};

}  // namespace apn::core
