// GPU_P2P_TX: the GPU memory-read engine of the APEnet+ card — the hardest
// part of the paper's contribution (§IV) and the subject of Figs. 4 and 5.
//
// Transmission of a GPU buffer is delegated to the card: the engine issues
// read-request descriptors to the GPU's P2P mailbox; the GPU answers with
// posted writes of the data into the card's landing zone; arrived data is
// packetized and injected into the torus.
//
// Three generations are modeled:
//  * V1 — software-only: the Nios II builds and issues each (<=4 KB)
//    request and waits for its data before issuing the next. No
//    pipelining, heavy Nios load => ~600 MB/s ceiling.
//  * V2 — a hardware block issues one read request every
//    `p2p_request_interval` (80 ns), with at most `p2p_prefetch_window`
//    bytes outstanding (4-32 KB); FIFO space is reserved at request time.
//    The Nios II still supervises each outgoing packet.
//  * V3 — prefetching is bounded only by the (configurable) window and
//    back-pressure from TX FIFO occupancy; Nios involvement drops to one
//    task per 64 KB refill, freeing firmware cycles for the RX path (the
//    effect visible in the paper's loop-back plot, Fig. 5).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "common/owner.hpp"
#include "core/packet.hpp"
#include "core/params.hpp"
#include "gpu/gpu.hpp"
#include "sim/coro.hpp"
#include "sim/sync.hpp"
#include "trace/metrics.hpp"
#include "trace/trace.hpp"

namespace apn::core {

class ApenetCard;

/// One GPU-source transmit job (a PUT of a GPU buffer).
struct GpuTxJob {
  PacketHeader proto;
  gpu::Gpu* gpu = nullptr;
  std::uint64_t dev_offset = 0;
  bool carry_data = true;
  std::shared_ptr<sim::Gate> tx_done;
};

class GpuP2pTx {
  APN_OWNER(torus_node)

 public:
  GpuP2pTx(ApenetCard& card, const ApenetParams& params);

  void submit(GpuTxJob job);

  /// Called by the card when GPU response data lands in the landing zone.
  void on_data_arrival(pcie::Payload payload);

  std::uint64_t requests_issued() const { return requests_issued_; }
  std::uint64_t bytes_read() const { return bytes_read_; }

 private:
  sim::Coro engine();
  void issue_request(gpu::Gpu& gpu, std::uint64_t dev_offset,
                     std::uint32_t len);
  /// Consumes arrived bytes of the active job: forms packets, injects them.
  sim::Coro packetize();

  ApenetCard& card_;
  const ApenetParams& params_;
  sim::Simulator& sim_;

  sim::Queue<GpuTxJob> jobs_;
  sim::CreditPool window_;   ///< outstanding (issued, not landed) bytes
  sim::CreditPool fifo_;     ///< TX data FIFO space (released at injection)

  // Current job state (engine processes one job at a time).
  struct Active {
    APN_OWNER(torus_node)

    explicit Active(sim::Simulator& sim, GpuTxJob j)
        : job(std::move(j)),
          arrived_pool(sim, 0),
          all_arrived(std::make_shared<sim::Gate>(sim)),
          packetize_done(std::make_shared<sim::Gate>(sim)) {}
    GpuTxJob job;
    std::uint64_t issued = 0;      ///< bytes requested from the GPU
    std::uint64_t arrived = 0;     ///< bytes landed
    // apn-lint: allow(check-coverage) — owned solely by the packetizer coro
    std::uint64_t sent_packets = 0;
    // apn-lint: allow(check-coverage) — computed once when the job is issued
    std::uint64_t total_packets = 0;
    // apn-lint: allow(check-coverage) — set once at issue, read-only after
    bool uses_window = false;      ///< v2/v3: window credits held per byte
    std::vector<std::uint8_t> buffer;  ///< landed data (carry_data only)
    sim::CreditPool arrived_pool;  ///< arrived-byte counter for packetizer
    std::uint64_t v1_wait_target = 0;
    std::shared_ptr<sim::Gate> v1_wait;  ///< v1: arrival of current request
    std::shared_ptr<sim::Gate> all_arrived;
    /// Opens when the packetizer consumed the whole message; the engine
    /// must not recycle Active before this (the packetizer references it).
    std::shared_ptr<sim::Gate> packetize_done;
  };
  std::unique_ptr<Active> active_;

  std::uint64_t requests_issued_ = 0;
  std::uint64_t bytes_read_ = 0;

  // Observability (inert unless a trace sink is installed; see src/trace).
  trace::Track trace_;  ///< engine lane: setup / per-job spans, req issues
  trace::Counter* m_requests_;
  trace::Counter* m_bytes_;
};

}  // namespace apn::core
