#include "core/gpu_p2p_tx.hpp"

#include <algorithm>
#include <cstring>
#include <utility>

#include "core/card.hpp"

namespace apn::core {

GpuP2pTx::GpuP2pTx(ApenetCard& card, const ApenetParams& params)
    : card_(card),
      params_(params),
      sim_(card.simulator()),
      jobs_(sim_),
      window_(sim_, params.p2p_prefetch_window),
      fifo_(sim_, params.gpu_tx_fifo_bytes) {
  trace_ = trace::Track::open(card.fabric().name(), "apenet.gpu_tx");
  auto& m = trace::MetricsRegistry::global();
  m_requests_ = &m.counter("card.gpu_tx.requests");
  m_bytes_ = &m.counter("card.gpu_tx.bytes");
  engine();
}

void GpuP2pTx::submit(GpuTxJob job) { jobs_.push(std::move(job)); }

void GpuP2pTx::issue_request(gpu::Gpu& gpu, std::uint64_t dev_offset,
                             std::uint32_t len) {
  ++requests_issued_;
  APN_CHECK_ACCESS(requests_issued_, kAccum);
  m_requests_->inc();
  trace_.instant("card", "p2p_req", sim_.now(),
                 {{"dev_offset", dev_offset}, {"bytes", len}});
  gpu::P2pReadDescriptor desc{};
  desc.dev_offset = dev_offset;
  desc.len = len;
  desc.reply_addr = card_.gpu_landing_addr();
  desc.tag = requests_issued_;
  pcie::Payload p;
  p.bytes = params_.p2p_descriptor_bytes;
  p.data.resize(sizeof(desc));
  std::memcpy(p.data.data(), &desc, sizeof(desc));
  card_.fabric().post_write(card_, gpu.mailbox_addr(), std::move(p));
}

void GpuP2pTx::on_data_arrival(pcie::Payload payload) {
  if (!active_) return;  // stale arrival after an aborted job: drop
  Active& a = *active_;
  std::uint64_t n = payload.bytes;
  bytes_read_ += n;
  APN_CHECK_ACCESS(bytes_read_, kAccum);
  a.arrived += n;
  APN_CHECK_ACCESS(a.arrived, kAccum);
  m_bytes_->add(n);
  if (a.job.carry_data && !payload.data.empty()) {
    a.buffer.insert(a.buffer.end(), payload.data.begin(), payload.data.end());
    APN_CHECK_ACCESS(a.buffer, kWrite);
  }
  if (a.uses_window) window_.release(static_cast<std::int64_t>(n));
  a.arrived_pool.release(static_cast<std::int64_t>(n));
  // kSample: the engine may rewrite v1_wait_target in the same tick an
  // arrival lands. Both orders are correct by the re-check protocol — the
  // engine tests `arrived < target` before waiting, and this arrival opens
  // the gate when the target was already in place.
  APN_CHECK_ACCESS(a.v1_wait_target, kSample);
  if (a.v1_wait && a.arrived >= a.v1_wait_target) a.v1_wait->open();
  if (a.arrived >= a.job.proto.msg_bytes) a.all_arrived->open();
}

sim::Coro GpuP2pTx::packetize() {
  Active& a = *active_;
  const std::uint32_t total = a.job.proto.msg_bytes;
  a.total_packets = (total + kMaxPacketPayload - 1) / kMaxPacketPayload;
  auto tx_done = a.job.tx_done;
  auto sent = std::make_shared<std::uint64_t>(0);
  const std::uint64_t total_packets = a.total_packets;

  std::uint64_t off = 0;
  while (off < total) {
    const std::uint32_t size = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(kMaxPacketPayload, total - off));
    co_await a.arrived_pool.acquire(size);
    if (params_.p2p_tx_version == P2pTxVersion::kV2) {
      // V2: the Nios II supervises every outgoing GPU packet.
      co_await card_.nios_resource().use(params_.nios.tx_gpu_v2_per_packet);
    }
    ApPacket pkt;
    pkt.hdr = a.job.proto;
    pkt.hdr.dst_vaddr = a.job.proto.msg_vaddr + off;
    if (a.job.carry_data) {
      pkt.payload = pcie::Payload::of(std::vector<std::uint8_t>(
          a.buffer.begin() + static_cast<std::ptrdiff_t>(off),
          a.buffer.begin() + static_cast<std::ptrdiff_t>(off + size)));
    } else {
      pkt.payload = pcie::Payload::timing(size);
    }
    card_.inject(std::move(pkt), [this, size, sent, total_packets, tx_done] {
      fifo_.release(size);
      if (++*sent == total_packets && tx_done) tx_done->open();
    });
    off += size;
  }
  if (total == 0 && tx_done) tx_done->open();
  a.packetize_done->open();
}

sim::Coro GpuP2pTx::engine() {
  for (;;) {
    GpuTxJob job = co_await jobs_.pop();
    const Time t_job = sim_.now();
    const std::uint32_t total = job.proto.msg_bytes;
    gpu::Gpu* gpu = job.gpu;
    active_ = std::make_unique<Active>(sim_, std::move(job));
    Active& a = *active_;

    const P2pTxVersion ver = params_.p2p_tx_version;
    if (ver == P2pTxVersion::kV1) {
      // Software path: one <=4 KB request at a time, each built by the
      // Nios II, each waiting for its data before the next is issued.
      packetize();
      while (a.issued < total) {
        const std::uint32_t chunk = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(kMaxPacketPayload, total - a.issued));
        co_await card_.nios_resource().use(
            params_.nios.tx_gpu_v1_per_request);
        co_await fifo_.acquire(chunk);
        a.v1_wait_target = a.issued + chunk;
        APN_CHECK_ACCESS(a.v1_wait_target, kWrite);
        a.v1_wait = std::make_shared<sim::Gate>(sim_);
        issue_request(*gpu, a.job.dev_offset + a.issued, chunk);
        a.issued += chunk;
        APN_CHECK_ACCESS(a.issued, kWrite);
        co_await a.v1_wait->wait();
        a.v1_wait.reset();
      }
    } else if (ver == P2pTxVersion::kV2) {
      // V2: *batched* prefetch. The engine reserves a window's worth of
      // TX FIFO space, issues hardware-paced read requests for it, and
      // waits for the whole batch to land before prefetching the next one
      // ("limited pre-fetching" in the paper) — which is why the read
      // bandwidth keeps scaling with the window size up to 32 KB (Fig. 4).
      co_await card_.nios_resource().use(params_.nios.tx_gpu_setup);
      trace_.span("card", "tx_setup", t_job, sim_.now(), {{"bytes", total}});
      packetize();
      while (a.issued < total) {
        const std::uint64_t batch = std::min<std::uint64_t>(
            params_.p2p_prefetch_window, total - a.issued);
        std::uint64_t batched = 0;
        while (batched < batch) {
          const std::uint32_t chunk = static_cast<std::uint32_t>(
              std::min<std::uint64_t>(params_.p2p_request_bytes,
                                      batch - batched));
          co_await fifo_.acquire(chunk);
          issue_request(*gpu, a.job.dev_offset + a.issued, chunk);
          a.issued += chunk;
          APN_CHECK_ACCESS(a.issued, kWrite);
          batched += chunk;
          co_await sim::delay(sim_, params_.p2p_request_interval);
        }
        // The Nios II supervises the refill while the batch streams back.
        card_.nios_resource().post(params_.nios.tx_gpu_v3_per_refill);
        a.v1_wait_target = a.issued;
        APN_CHECK_ACCESS(a.v1_wait_target, kWrite);
        a.v1_wait = std::make_shared<sim::Gate>(sim_);
        // kSample: an arrival in this same tick may still be raising
        // `arrived`; if it beats us the test skips the wait, if not the
        // arrival opens the gate. Both orders converge (see on_data_arrival).
        APN_CHECK_ACCESS(a.arrived, kSample);
        if (a.arrived < a.v1_wait_target) co_await a.v1_wait->wait();
        a.v1_wait.reset();
      }
    } else {
      // V3: unbounded sliding-window prefetch — requests are issued as
      // fast as window credits and TX FIFO space allow, keeping the GPU
      // read-request queue full, back-reacting only to almost-full FIFOs.
      co_await card_.nios_resource().use(params_.nios.tx_gpu_setup);
      trace_.span("card", "tx_setup", t_job, sim_.now(), {{"bytes", total}});
      a.uses_window = true;
      packetize();
      std::uint64_t since_refill = 0;
      while (a.issued < total) {
        const std::uint32_t chunk = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(params_.p2p_request_bytes,
                                    total - a.issued));
        co_await window_.acquire(chunk);
        co_await fifo_.acquire(chunk);
        issue_request(*gpu, a.job.dev_offset + a.issued, chunk);
        a.issued += chunk;
        APN_CHECK_ACCESS(a.issued, kWrite);
        since_refill += chunk;
        if (since_refill >= params_.p2p_refill_interval_bytes) {
          since_refill = 0;
          // V3 refill supervision loads the Nios II but does not gate the
          // hardware data path.
          card_.nios_resource().post(params_.nios.tx_gpu_v3_per_refill);
        }
        co_await sim::delay(sim_, params_.p2p_request_interval);
      }
    }
    co_await a.packetize_done->wait();
    // Whole-job span: TX overhead + GPU read streaming + packet injection.
    trace_.span("card", "gpu_tx_job", t_job, sim_.now(),
                {{"bytes", total},
                 {"version", static_cast<int>(ver) + 1}});
    active_.reset();
  }
}

}  // namespace apn::core
