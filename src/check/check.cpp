#include "check/check.hpp"

#include "check/coro_check.hpp"

#include <cinttypes>
#include <cstdlib>
#include <cstring>

namespace apn::check {

namespace {

/// splitmix64 finalizer: cheap, well-mixed, stable across platforms.
std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  h += v + 0x9e3779b97f4a7c15ull;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
  return h ^ (h >> 31);
}

std::uint64_t fnv1a(const char* s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (; *s != '\0'; ++s) h = (h ^ static_cast<unsigned char>(*s)) *
                              0x100000001b3ull;
  return h;
}

bool g_forced = false;
bool g_owner_forced = false;

}  // namespace

const char* access_name(Access a) {
  switch (a) {
    case Access::kRead: return "read";
    case Access::kWrite: return "write";
    case Access::kAccum: return "accum";
    case Access::kSample: return "sample";
  }
  std::abort();  // unreachable: no default, so -Wswitch guards enum growth
}

std::string Finding::message() const {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "same-tick race on cell '%s' at t=%" PRId64
                ": event #%" PRIu64 " (%s) and event #%" PRIu64
                " (%s) are causally unordered",
                cell.c_str(), static_cast<std::int64_t>(time), seq_first,
                access_name(kind_first), seq_second,
                access_name(kind_second));
  return buf;
}

std::string OwnerFinding::message() const {
  char buf[320];
  std::snprintf(buf, sizeof buf,
                "cross-owner event #%" PRIu64 " at t=%" PRId64
                ": touched '%s' (%s#%d) and '%s' (%s#%d) without a channel "
                "handoff in between",
                seq, static_cast<std::int64_t>(time), cell_first.c_str(),
                owner::domain_name(owner_first.domain), owner_first.instance,
                cell_second.c_str(),
                owner::domain_name(owner_second.domain),
                owner_second.instance);
  return buf;
}

namespace detail {
Context*& current_ref() {
  thread_local Context* ctx = nullptr;
  return ctx;
}
}  // namespace detail

// ---- Context --------------------------------------------------------------

void Context::on_event_begin(Time now, std::uint64_t seq,
                             std::uint64_t parent) {
  if (now != cur_tick_) {
    cur_tick_ = now;
    tick_parents_.clear();
  }
  tick_parents_.emplace(seq, parent);
  cur_seq_ = seq;
  in_event_ = true;
  event_wrote_ = false;
  ev_has_owner_ = false;
}

void Context::on_event_end() {
  if (event_wrote_ && hash_fn_ != nullptr)
    hash_fn_(hash_user_, cur_seq_, cur_tick_, hash_);
  in_event_ = false;
}

Context::CellState& Context::cell_state(const void* cell, const char* name) {
  auto [it, inserted] = cells_.try_emplace(cell);
  CellState& cs = it->second;
  if (inserted) {
    cs.ordinal = next_ordinal_++;
    cs.name = name;
    cs.name_hash = fnv1a(name);
  }
  return cs;
}

bool Context::ancestor_of_current(std::uint64_t a) const {
  auto it = tick_parents_.find(cur_seq_);
  while (it != tick_parents_.end()) {
    const std::uint64_t p = it->second;
    if (p == a) return true;
    if (p == sim::EventHook::kNoParent) return false;
    // A parent absent from the tick map fired at an earlier tick; the
    // chain cannot re-enter this tick (parents fire no later than their
    // children), so `a` is unreachable from here.
    it = tick_parents_.find(p);
  }
  return false;
}

void Context::conflict(const CellState& cs, std::uint64_t other_seq,
                       Access other_kind, Access my_kind) {
  Finding f;
  f.cell = cs.name != nullptr ? cs.name : "?";
  f.time = cur_tick_;
  f.seq_first = other_seq;
  f.seq_second = cur_seq_;
  f.kind_first = other_kind;
  f.kind_second = my_kind;
  if (mode_ == Mode::kAbort) {
    std::fprintf(stderr, "[apn::check] %s\n", f.message().c_str());
    std::fprintf(stderr,
                 "[apn::check] the outcome depends on event scheduling "
                 "order; fix the model or mark the access kAccum/kSample "
                 "with a justification\n");
    std::abort();
  }
  findings_.push_back(std::move(f));
}

void Context::owner_conflict(const char* name, owner::Tag tag) {
  OwnerFinding f;
  f.time = cur_tick_;
  f.seq = cur_seq_;
  f.cell_first = ev_owner_cell_;
  f.cell_second = name != nullptr ? name : "?";
  f.owner_first = ev_owner_;
  f.owner_second = tag;
  if (mode_ == Mode::kAbort) {
    std::fprintf(stderr, "[apn::check] %s\n", f.message().c_str());
    std::fprintf(stderr,
                 "[apn::check] one event may only touch one partition's "
                 "state; route the interaction through a sim::Channel or "
                 "mark the member APN_SHARED with a justification\n");
    std::abort();
  }
  owner_findings_.push_back(std::move(f));
}

void Context::mix_write(const CellState& cs, Access kind,
                        std::uint64_t vhash) {
  hash_ = mix(hash_, cs.name_hash ^ cs.ordinal);
  hash_ = mix(hash_, vhash ^ (static_cast<std::uint64_t>(kind) << 56));
  event_wrote_ = true;
}

void Context::record(const void* cell, const char* name, Access kind,
                     std::uint64_t vhash, owner::Tag tag) {
  // Accesses outside event dispatch (setup/teardown, post-run statistics
  // reads) have no same-tick peers to race with.
  if (!in_event_) return;
  ++accesses_;
  if (owner_check_ && tag.partitioned()) {
    if (!ev_has_owner_) {
      ev_has_owner_ = true;
      ev_owner_ = tag;
      ev_owner_cell_ = name;
    } else if (tag.instance != ev_owner_.instance) {
      owner_conflict(name, tag);
    }
  }
  CellState& cs = cell_state(cell, name);
  if (cs.tick != cur_tick_) {
    cs.tick = cur_tick_;
    cs.has_write = false;
    cs.has_accum = false;
    cs.reader_seqs.clear();
  }

  const auto unordered_with = [&](std::uint64_t other) {
    return other != cur_seq_ && !ancestor_of_current(other);
  };

  switch (kind) {
    case Access::kSample:
      return;  // order-tolerant by contract: participates in nothing
    case Access::kRead:
      if (cs.has_write && unordered_with(cs.write_seq))
        conflict(cs, cs.write_seq, cs.write_kind, kind);
      if (cs.has_accum && unordered_with(cs.accum_seq))
        conflict(cs, cs.accum_seq, Access::kAccum, kind);
      for (std::uint64_t r : cs.reader_seqs)
        if (r == cur_seq_) return;  // already noted for this event
      cs.reader_seqs.push_back(cur_seq_);
      return;
    case Access::kWrite:
      if (cs.has_write && unordered_with(cs.write_seq))
        conflict(cs, cs.write_seq, cs.write_kind, kind);
      if (cs.has_accum && unordered_with(cs.accum_seq))
        conflict(cs, cs.accum_seq, Access::kAccum, kind);
      for (std::uint64_t r : cs.reader_seqs)
        if (unordered_with(r)) {
          conflict(cs, r, Access::kRead, kind);
          break;  // one read-write finding per cell per write is enough
        }
      cs.has_write = true;
      cs.write_seq = cur_seq_;
      cs.write_kind = kind;
      mix_write(cs, kind, vhash);
      return;
    case Access::kAccum:
      if (cs.has_write && unordered_with(cs.write_seq))
        conflict(cs, cs.write_seq, cs.write_kind, kind);
      // accum-accum commutes: no check against cs.accum_seq.
      for (std::uint64_t r : cs.reader_seqs)
        if (unordered_with(r)) {
          conflict(cs, r, Access::kRead, kind);
          break;
        }
      cs.has_accum = true;
      cs.accum_seq = cur_seq_;
      mix_write(cs, kind, vhash);
      return;
  }
}

// ---- HashSink -------------------------------------------------------------

HashSink& HashSink::global() {
  static HashSink sink;
  return sink;
}

std::string*& HashSink::tls_buffer() {
  thread_local std::string* b = nullptr;
  return b;
}

bool HashSink::open(const std::string& path) {
  close();
  out_ = std::fopen(path.c_str(), "w");
  if (out_ == nullptr) {
    std::fprintf(stderr, "warning: cannot open %s for state-hash output\n",
                 path.c_str());
    return false;
  }
  return true;
}

void HashSink::close() {
  if (out_ != nullptr) std::fclose(out_);
  out_ = nullptr;
}

void HashSink::line(std::uint64_t seq, Time time, std::uint64_t hash) {
  if (out_ == nullptr) return;
  char buf[96];
  std::snprintf(buf, sizeof buf, "e %" PRIu64 " t=%" PRId64 " h=%016" PRIx64
                "\n",
                seq, static_cast<std::int64_t>(time), hash);
  if (std::string* b = tls_buffer()) {
    *b += buf;
    return;
  }
  write_raw(buf);
}

void HashSink::note(const std::string& text) {
  if (out_ == nullptr) return;
  std::string line = "# " + text + "\n";
  if (std::string* b = tls_buffer()) {
    *b += line;
    return;
  }
  write_raw(line);
}

void HashSink::set_thread_buffer(std::string* buf) { tls_buffer() = buf; }

void HashSink::write_raw(const std::string& text) {
  if (out_ == nullptr || text.empty()) return;
  std::lock_guard<std::mutex> lk(mu_);
  std::fwrite(text.data(), 1, text.size(), out_);
  std::fflush(out_);
}

// ---- Session --------------------------------------------------------------

namespace {
void hash_to_global_sink(void*, std::uint64_t seq, Time time,
                         std::uint64_t hash) {
  HashSink::global().line(seq, time, hash);
}
}  // namespace

Session::Session(sim::Simulator& sim, Context::Mode mode)
    : sim_(&sim), ctx_(mode) {
  prev_hook_ = sim.event_hook();
  prev_ctx_ = detail::current_ref();
  sim.set_event_hook(&ctx_);
  detail::current_ref() = &ctx_;
  if (HashSink::global().enabled())
    ctx_.set_hash_line_fn(&hash_to_global_sink, nullptr);
  if (owner_check_enabled()) ctx_.set_owner_check(true);
}

Session::~Session() {
  sim_->set_event_hook(prev_hook_);
  detail::current_ref() = prev_ctx_;
}

bool Session::env_enabled() {
  if (g_forced) return true;
  const char* e = std::getenv("APN_CHECK");
  return e != nullptr && e[0] != '\0' && std::strcmp(e, "0") != 0;
}

void Session::force_enable(bool on) {
  g_forced = on;
  // Arm frame poisoning too: --check / APN_CHECK covers the coroutine
  // frame-lifetime oracle's use-after-free half (coro_check.hpp).
  coro::mirror_check_forced(on);
}

bool Session::owner_check_enabled() {
  if (g_owner_forced) return true;
  const char* e = std::getenv("APN_OWNER_CHECK");
  return e != nullptr && e[0] != '\0' && std::strcmp(e, "0") != 0;
}

void Session::force_owner_check(bool on) { g_owner_forced = on; }

std::unique_ptr<Session> Session::from_env(sim::Simulator& sim) {
  if (!env_enabled() && !owner_check_enabled()) return nullptr;
  return std::make_unique<Session>(sim, Context::Mode::kAbort);
}

}  // namespace apn::check
