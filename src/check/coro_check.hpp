// Coroutine frame-lifetime oracle — the runtime half of the suspension-
// safety work (the static half is apn-lint's coro-* rules).
//
// `sim::Coro`'s promise routes frame allocation through this registry.
// When enabled (--coro-check on a bench / bus_analyzer, APN_CORO_CHECK=1,
// or force_enable() from tests), every live frame is recorded with full
// provenance: the creation site (via the promise-constructor
// std::source_location trick — the default argument is evaluated inside
// the coroutine itself, so it names the coroutine function, lambdas
// included), the spawner's owner::Tag, and the simulated birth tick.
// The end-of-run report then names every still-suspended frame, so a
// leaked or stuck process — the failure mode conservative-synchronization
// shards hit first — surfaces with file:line provenance instead of as a
// hang or a silent use-after-free.
//
// Under APN_CHECK=1 (or --check) freed frames are additionally poisoned
// with kPoisonByte before the memory is released, so a resumed-after-free
// or read-through-dangling-frame bug trips on a recognizable pattern
// instead of happening to read stale-but-plausible bytes.
//
// "Zero leaked frames" is a meaningful end state because teardown
// *reclaims* parked frames: WaiterList, Resource, and Simulator destroy
// the frames still suspended on them (each suspended frame is reachable
// from exactly one wait structure). Anything still registered when the
// atexit report runs is therefore a genuine leak — e.g. a Future whose
// waiter holds the only reference to the shared state it is parked on.
//
// Header-only on purpose: sim/coro.hpp must be able to call these hooks,
// and sim is an INTERFACE library below apn_check in the link order.
// Everything lives in inline variables / function-local statics.
//
// Disabled mode (the default) costs one relaxed bool load per frame
// allocation and deallocation; nothing is locked or recorded.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <new>
#include <source_location>
#include <unordered_map>
#include <vector>

#include "common/owner.hpp"

namespace apn::check::coro {

/// Fill pattern written over freed frames under APN_CHECK=1. 0xC9 reads
/// as "C9 C9 C9 ..." in a debugger hexdump and, reinterpreted as a
/// pointer, lands in non-canonical space — dereferencing it faults.
constexpr unsigned char kPoisonByte = 0xC9;

/// One live coroutine frame, as recorded at allocation.
struct FrameInfo {
  const void* frame = nullptr;
  std::size_t bytes = 0;
  std::uint64_t seq = 0;           ///< registration order, stable for reports
  const char* file = nullptr;      ///< creation site (static storage)
  const char* function = nullptr;  ///< coroutine function name
  unsigned line = 0;
  owner::Tag owner{};              ///< owner::current() at spawn
  long long birth_tick = -1;       ///< simulated time at spawn; -1 = pre-sim
};

namespace detail {

struct Registry {
  std::mutex mu;
  std::unordered_map<const void*, FrameInfo> live;
  // Checker-internal bookkeeping, not simulated state: the oracle observes
  // frame allocation from outside the event loop and must not recurse into
  // the race/ownership instrumentation it backs.
  // apn-lint: allow(partition-ownership)
  std::uint64_t next_seq = 0;
  // apn-lint: allow(check-coverage, partition-ownership)
  std::atomic<std::uint64_t> created{0};
  // apn-lint: allow(check-coverage, partition-ownership)
  std::atomic<std::uint64_t> destroyed{0};
  // apn-lint: allow(check-coverage, partition-ownership)
  std::atomic<std::uint64_t> poisoned{0};
};

inline Registry& reg() {
  static Registry r;
  return r;
}

inline std::atomic<bool> g_forced{false};
inline std::atomic<bool> g_check_forced{false};
/// Once any frame has been registered, the deallocation path must consult
/// the registry forever (frames may outlive a force_enable(false)).
inline std::atomic<bool> g_ever{false};
/// Handoff from operator new to the promise constructor (same thread, no
/// suspension in between): the frame whose source_location is pending.
inline thread_local void* g_pending = nullptr;
/// Simulated clock mirror, maintained by Simulator at tick advances.
inline thread_local long long g_tick = -1;

inline bool env_flag(const char* name) {
  const char* e = std::getenv(name);
  return e != nullptr && e[0] != '\0' && std::strcmp(e, "0") != 0;
}

inline bool check_env_on() {
  static const bool on = env_flag("APN_CHECK");
  return on;
}

}  // namespace detail

/// Expose the poison pattern writer for tests: the pattern itself is part
/// of the contract (debuggers and crash dumps key off it).
inline void poison_fill(void* p, std::size_t bytes) {
  std::memset(p, kPoisonByte, bytes);
}

inline void force_enable(bool on) {
  detail::g_forced.store(on, std::memory_order_relaxed);
}

/// Mirror of check::Session::force_enable — set by check.cpp so --check
/// arms frame poisoning without this header depending on check.hpp.
inline void mirror_check_forced(bool on) {
  detail::g_check_forced.store(on, std::memory_order_relaxed);
}

inline bool poison_enabled() {
  return detail::g_check_forced.load(std::memory_order_relaxed) ||
         detail::check_env_on();
}

/// Called by Simulator wherever the simulated clock advances, so frame
/// registration can stamp a birth tick without a sim dependency.
inline void note_tick(long long t) { detail::g_tick = t; }

inline std::size_t live_count() {
  detail::Registry& r = detail::reg();
  std::lock_guard<std::mutex> lk(r.mu);
  return r.live.size();
}

inline std::uint64_t created_count() {
  return detail::reg().created.load(std::memory_order_relaxed);
}
inline std::uint64_t destroyed_count() {
  return detail::reg().destroyed.load(std::memory_order_relaxed);
}
inline std::uint64_t poisoned_count() {
  return detail::reg().poisoned.load(std::memory_order_relaxed);
}

/// All live frames in registration order.
inline std::vector<FrameInfo> snapshot() {
  detail::Registry& r = detail::reg();
  std::vector<FrameInfo> out;
  {
    std::lock_guard<std::mutex> lk(r.mu);
    out.reserve(r.live.size());
    for (const auto& [ptr, fi] : r.live) out.push_back(fi);
  }
  std::sort(out.begin(), out.end(),
            [](const FrameInfo& a, const FrameInfo& b) {
              return a.seq < b.seq;
            });
  return out;
}

/// Print every live frame with provenance. One line per frame.
inline void report(std::FILE* out) {
  const std::vector<FrameInfo> frames = snapshot();
  std::fprintf(out, "[apn::coro-check] %zu live coroutine frame(s):\n",
               frames.size());
  for (const FrameInfo& f : frames) {
    char owner_buf[64];
    if (f.owner.partitioned())
      std::snprintf(owner_buf, sizeof owner_buf, "%s#%d",
                    owner::domain_name(f.owner.domain), f.owner.instance);
    else
      std::snprintf(owner_buf, sizeof owner_buf, "%s",
                    owner::domain_name(f.owner.domain));
    char tick_buf[32];
    if (f.birth_tick < 0)
      std::snprintf(tick_buf, sizeof tick_buf, "pre-sim");
    else
      std::snprintf(tick_buf, sizeof tick_buf, "t=%lld", f.birth_tick);
    std::fprintf(out, "  frame #%llu: %s:%u '%s' (%zu bytes, owner %s, born %s)\n",
                 static_cast<unsigned long long>(f.seq),
                 f.file != nullptr ? f.file : "?", f.line,
                 f.function != nullptr ? f.function : "?", f.bytes,
                 owner_buf, tick_buf);
  }
}

namespace detail {

inline void exit_report() {
  Registry& r = reg();
  std::size_t n;
  {
    std::lock_guard<std::mutex> lk(r.mu);
    n = r.live.size();
  }
  if (n == 0) {
    std::fprintf(stderr,
                 "[apn::coro-check] leaked coroutine frames at exit: 0 "
                 "(%llu created)\n",
                 static_cast<unsigned long long>(
                     r.created.load(std::memory_order_relaxed)));
    return;
  }
  report(stderr);
  std::fprintf(stderr,
               "[apn::coro-check] leaked coroutine frames at exit: %zu\n", n);
  // Same contract as the race detector's abort mode: a diagnostic run
  // with findings fails loudly.
  std::abort();
}

}  // namespace detail

/// Arrange for the leak report to run at process exit (aborting if any
/// frame is still live). Idempotent. Used by --coro-check; tests use
/// force_enable + snapshot()/report() instead so they control teardown.
inline void install_exit_report() {
  static const bool installed = [] {
    (void)detail::reg();  // constructed first => destructed after the hook
    std::atexit(&detail::exit_report);
    return true;
  }();
  (void)installed;
}

namespace detail {

inline bool env_on() {
  static const bool on = [] {
    const bool v = env_flag("APN_CORO_CHECK");
    if (v) install_exit_report();
    return v;
  }();
  return on;
}

}  // namespace detail

inline bool enabled() {
  return detail::g_forced.load(std::memory_order_relaxed) ||
         detail::env_on();
}

/// Frame allocation hook (sim::Coro promise operator new).
inline void* frame_allocated(std::size_t bytes) {
  void* p = ::operator new(bytes);
  if (!enabled()) return p;
  detail::Registry& r = detail::reg();
  detail::g_ever.store(true, std::memory_order_relaxed);
  FrameInfo fi;
  fi.frame = p;
  fi.bytes = bytes;
  fi.owner = owner::current();
  fi.birth_tick = detail::g_tick;
  {
    std::lock_guard<std::mutex> lk(r.mu);
    fi.seq = r.next_seq++;
    r.live.emplace(p, fi);
  }
  r.created.fetch_add(1, std::memory_order_relaxed);
  detail::g_pending = p;
  return p;
}

/// Promise-constructor hook: attaches the creation site to the frame just
/// allocated on this thread (no-op when the allocation was not tracked).
inline void note_promise(std::source_location loc) {
  void* p = detail::g_pending;
  if (p == nullptr) return;
  detail::g_pending = nullptr;
  detail::Registry& r = detail::reg();
  std::lock_guard<std::mutex> lk(r.mu);
  auto it = r.live.find(p);
  if (it == r.live.end()) return;
  it->second.file = loc.file_name();
  it->second.function = loc.function_name();
  it->second.line = loc.line();
}

/// Frame deallocation hook (sim::Coro promise operator delete): unregister,
/// poison under APN_CHECK, release.
inline void frame_destroyed(void* p, std::size_t bytes) {
  if (detail::g_ever.load(std::memory_order_relaxed)) {
    detail::Registry& r = detail::reg();
    bool tracked;
    {
      std::lock_guard<std::mutex> lk(r.mu);
      tracked = r.live.erase(p) != 0;
    }
    if (tracked) r.destroyed.fetch_add(1, std::memory_order_relaxed);
  }
  if (poison_enabled()) {
    poison_fill(p, bytes);
    detail::reg().poisoned.fetch_add(1, std::memory_order_relaxed);
  }
  ::operator delete(p, bytes);
}

}  // namespace apn::check::coro
