// Simulation race detector: checked determinism for the model layers.
//
// The simulator's (time, seq) total order makes every run bit-exact — but
// it also *hides* fragility: two events firing at the same picosecond run
// in scheduling order, so model state touched by both is correct only by
// accident of that order. PR 3 found two such latent bugs by luck; this
// layer finds them by construction.
//
// Model: every piece of mutable model state is a *cell* (either a
// `StateCell<T>` wrapper or an `APN_CHECK_ACCESS(member, kind)` call at
// the access site). When checking is enabled, the Context — installed as
// the Simulator's EventHook — sees every event dispatch with its causal
// parent (the event that scheduled it) and flags any two same-timestamp
// events that touch the same cell with at least one write and no causal
// ancestry between them within the tick. Causally ordered accesses (A
// scheduled B, transitively) are fine: their order is fixed by the
// scheduling structure, not by seq-assignment accidents.
//
// Access kinds:
//  * kRead / kWrite — ordinary order-sensitive accesses.
//  * kAccum — commutative update (`counter += n`). Two accums commute, so
//    they never conflict with each other; they still conflict with reads
//    and plain writes in sibling events.
//  * kSample — deliberately order-tolerant read (e.g. an engine polling
//    "have enough bytes arrived yet?" where both orders are handled
//    correctly by a re-check protocol). Participates in nothing; each use
//    carries a comment justifying why.
//
// Rolling state hash: every write/accum folds (cell, value) into a
// per-run hash; events that wrote emit one `e <seq> t=<time> h=<hash>`
// line to the hash sink (`--state-hash-out=<path>` on benches and
// bus_analyzer). Diffing the files of two runs pinpoints the *first
// divergent event*, turning "the bandwidth differs in the 4th digit" into
// "event 1234 at t=56789 wrote something different".
//
// Owner check: every access additionally carries an `owner::Tag` (the
// partition-ownership stamp from src/common/owner.hpp). In `--owner-check`
// mode (APN_OWNER_CHECK=1) the Context reports any event whose access set
// spans two partition instances — i.e. two different torus nodes' state
// touched in one event without a Channel delivery in between. This is the
// runtime oracle that the static `partition-ownership` classification in
// apn-lint is complete; see docs/CORRECTNESS.md "The ownership model".
//
// Enablement: APN_CHECK=1 in the environment (or `--check` on a bench)
// makes cluster::Cluster install a Session; a detected race prints full
// provenance and aborts. Tests use Mode::kRecord and inspect findings().
// When no session is installed the access hooks cost one thread-local
// load and a branch.
#pragma once

#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "common/owner.hpp"
#include "sim/simulator.hpp"

namespace apn::check {

enum class Access : std::uint8_t { kRead, kWrite, kAccum, kSample };

const char* access_name(Access a);

/// One detected same-tick ordering hazard.
struct Finding {
  std::string cell;     ///< cell name (APN_CHECK_ACCESS spelling)
  Time time = 0;   ///< the shared timestamp
  std::uint64_t seq_first = 0;   ///< earlier event (fired first)
  std::uint64_t seq_second = 0;  ///< later event (no ancestry to first)
  Access kind_first = Access::kRead;
  Access kind_second = Access::kRead;

  std::string message() const;
};

/// One detected cross-partition event: two accesses in the same event whose
/// owner tags name different partition instances, with no Channel delivery
/// between them.
struct OwnerFinding {
  Time time = 0;
  std::uint64_t seq = 0;            ///< the offending event
  std::string cell_first;           ///< first partition-owned cell touched
  std::string cell_second;          ///< the cell that crossed partitions
  owner::Tag owner_first;
  owner::Tag owner_second;

  std::string message() const;
};

/// Deterministic 64-bit value digest for the rolling state hash: integral
/// values hash as themselves, containers as their size (contents may hold
/// pointers, which vary across runs), anything else as a constant. The
/// hash only needs to *diverge when the runs diverge*, not to be precise.
template <typename T>
std::uint64_t value_hash(const T& v) {
  if constexpr (std::is_integral_v<T>)
    return static_cast<std::uint64_t>(v);
  else if constexpr (std::is_enum_v<T>)
    return static_cast<std::uint64_t>(
        static_cast<std::underlying_type_t<T>>(v));
  else if constexpr (requires { v.size(); })
    return static_cast<std::uint64_t>(v.size());
  else
    return 0x5eed;
}

/// The recording/checking engine. Installed as the simulator's EventHook
/// and (via Session) as the thread-current context the access macros hit.
class Context final : public sim::EventHook {
 public:
  enum class Mode {
    kAbort,   ///< print provenance to stderr and abort on first finding
    kRecord,  ///< collect findings() for inspection (tests)
  };

  /// Receives one line per writing event for the state-hash stream.
  using HashLineFn = void (*)(void* user, std::uint64_t seq, Time time,
                              std::uint64_t hash);

  explicit Context(Mode mode = Mode::kAbort) : mode_(mode) {}

  /// Record one access to `cell` (identity pointer, stable within a run)
  /// named `name`. Called via APN_CHECK_ACCESS / StateCell, only when this
  /// context is current. `tag` is the access's partition-ownership stamp
  /// (unowned when the site has no APN_OWNER class / construction scope).
  void record(const void* cell, const char* name, Access kind,
              std::uint64_t vhash, owner::Tag tag = {});

  // ---- sim::EventHook ----------------------------------------------------
  void on_event_begin(Time now, std::uint64_t seq,
                      std::uint64_t parent) override;
  void on_event_end() override;
  void on_channel_delivery() override { owner_handoff(); }

  /// Enable the --owner-check oracle: flag any event whose access set
  /// spans two partition instances (see OwnerFinding).
  void set_owner_check(bool on) { owner_check_ = on; }
  bool owner_check() const { return owner_check_; }

  /// A sanctioned partition crossing (a Channel delivered): forget the
  /// owners seen so far in the current event.
  void owner_handoff() { ev_has_owner_ = false; }

  const std::vector<Finding>& findings() const { return findings_; }
  const std::vector<OwnerFinding>& owner_findings() const {
    return owner_findings_;
  }
  std::uint64_t rolling_hash() const { return hash_; }
  std::uint64_t cells_seen() const { return next_ordinal_; }
  std::uint64_t accesses_recorded() const { return accesses_; }

  void set_hash_line_fn(HashLineFn fn, void* user) {
    hash_fn_ = fn;
    hash_user_ = user;
  }

 private:
  struct CellState {
    std::uint32_t ordinal = 0;
    std::uint64_t name_hash = 0;
    const char* name = nullptr;
    Time tick = -1;  ///< tick the per-tick fields below belong to
    bool has_write = false;
    bool has_accum = false;
    std::uint64_t write_seq = 0;
    std::uint64_t accum_seq = 0;
    Access write_kind = Access::kWrite;
    std::vector<std::uint64_t> reader_seqs;  ///< distinct readers this tick
  };

  CellState& cell_state(const void* cell, const char* name);
  /// True when `a` is a causal ancestor of the current event within the
  /// current tick (every intermediate event also fired this tick).
  bool ancestor_of_current(std::uint64_t a) const;
  void conflict(const CellState& cs, std::uint64_t other_seq,
                Access other_kind, Access my_kind);
  void owner_conflict(const char* name, owner::Tag tag);
  void mix_write(const CellState& cs, Access kind, std::uint64_t vhash);

  Mode mode_;
  // Cell identity: pointer-keyed for lookup only (never iterated — order
  // would be ASLR-dependent). Ordinals are assigned in first-touch order,
  // which is deterministic while the runs agree — exactly what the
  // cross-run hash needs to pinpoint the first divergence.
  std::unordered_map<const void*, CellState> cells_;
  std::uint32_t next_ordinal_ = 0;

  // Current-tick dispatch state.
  Time cur_tick_ = -1;
  std::uint64_t cur_seq_ = 0;
  bool in_event_ = false;
  bool event_wrote_ = false;
  std::unordered_map<std::uint64_t, std::uint64_t> tick_parents_;

  // Current-event owner-check state: the first partition-owned cell the
  // event touched, reset at event begin and at owner_handoff().
  bool owner_check_ = false;
  bool ev_has_owner_ = false;
  owner::Tag ev_owner_{};
  const char* ev_owner_cell_ = "";
  std::vector<OwnerFinding> owner_findings_;

  std::uint64_t hash_ = 0x9e3779b97f4a7c15ull;
  std::uint64_t accesses_ = 0;
  HashLineFn hash_fn_ = nullptr;
  void* hash_user_ = nullptr;
  std::vector<Finding> findings_;
};

namespace detail {
Context*& current_ref();
}  // namespace detail

/// The thread's active checking context; nullptr when checking is off.
inline Context* current() { return detail::current_ref(); }

/// Ordered file sink for state-hash lines, shared process-wide like the
/// bench JsonSink: bench::Runner redirects each point's lines into a
/// per-point buffer and flushes them in declaration order, so the file is
/// byte-identical at any --jobs level and diffable across runs.
class HashSink {
 public:
  static HashSink& global();

  bool open(const std::string& path);
  void close();
  bool enabled() const { return out_ != nullptr; }

  /// Emit one state-hash line (routed via the thread buffer if set).
  void line(std::uint64_t seq, Time time, std::uint64_t hash);
  /// Emit a comment line (point headers: "# point <name>").
  void note(const std::string& text);

  void set_thread_buffer(std::string* buf);
  void write_raw(const std::string& text);

  ~HashSink() { close(); }

 private:
  HashSink() = default;
  HashSink(const HashSink&) = delete;
  HashSink& operator=(const HashSink&) = delete;

  static std::string*& tls_buffer();

  std::mutex mu_;
  std::FILE* out_ = nullptr;
};

/// RAII enablement: installs a Context as the simulator's event hook and
/// as the thread-current context; restores both on destruction. One per
/// simulation (cluster::Cluster owns one when checking is enabled).
class Session {
 public:
  Session(sim::Simulator& sim, Context::Mode mode);
  ~Session();
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  Context& context() { return ctx_; }

  /// True when APN_CHECK is set (nonempty, not "0") or force_enable(true)
  /// was called (the bench `--check` flag).
  static bool env_enabled();
  static void force_enable(bool on);

  /// True when APN_OWNER_CHECK is set (nonempty, not "0") or
  /// force_owner_check(true) was called (the bench `--owner-check` flag).
  /// Implies a Session is installed; the Session arms the owner oracle.
  static bool owner_check_enabled();
  static void force_owner_check(bool on);

  /// Installed session in abort mode when enabled, nullptr otherwise.
  static std::unique_ptr<Session> from_env(sim::Simulator& sim);

 private:
  sim::Simulator* sim_;
  Context ctx_;
  sim::EventHook* prev_hook_;
  Context* prev_ctx_;
};

/// A named piece of mutable model state with access recording built in.
/// Reads/writes go through explicit methods so the access kind is visible
/// at the call site; `peek()` is the un-recorded escape hatch for
/// post-run statistics getters.
template <typename T>
class StateCell {
 public:
  /// Captures the construction-scope owner tag (owner::ScopedOwner), so a
  /// cell built while cluster::Node `i` assembles itself is stamped with
  /// that node's partition instance.
  explicit StateCell(const char* name, T v = T{}) : name_(name), v_(v) {}

  const owner::Tag& owner_tag() const { return tag_; }

  const T& get() const {
    touch(Access::kRead);
    return v_;
  }
  /// Order-tolerant read; see Access::kSample. Every call site carries a
  /// justification comment.
  const T& sample() const {
    touch(Access::kSample);
    return v_;
  }
  /// Un-recorded read for post-run statistics accessors.
  const T& peek() const { return v_; }

  void set(const T& v) {
    v_ = v;
    touch(Access::kWrite);
  }
  StateCell& operator=(const T& v) {
    set(v);
    return *this;
  }
  StateCell& operator+=(const T& d) {
    v_ += d;
    touch(Access::kAccum);
    return *this;
  }
  StateCell& operator++() {
    ++v_;
    touch(Access::kAccum);
    return *this;
  }

 private:
  void touch(Access a) const {
    if (Context* c = current())
      c->record(this, name_, a, value_hash(v_), tag_);
  }

  const char* name_;
  owner::Tag tag_ = owner::current();
  T v_;
};

}  // namespace apn::check

/// Record an access to a member that is not a StateCell (containers,
/// structs, in-place state): `APN_CHECK_ACCESS(rx_msgs_, kAccum)`. The
/// member's spelling becomes the cell name; its address its identity. The
/// unqualified `apn_owner_tag()` call resolves to the enclosing APN_OWNER
/// class's tag (or the global unowned fallback in src/common/owner.hpp),
/// stamping the access for the --owner-check oracle.
#define APN_CHECK_ACCESS(obj, rw)                                           \
  do {                                                                      \
    if (::apn::check::Context* apn_chk_c = ::apn::check::current())         \
      apn_chk_c->record(static_cast<const void*>(&(obj)), #obj,             \
                        ::apn::check::Access::rw,                           \
                        ::apn::check::value_hash(obj), apn_owner_tag());    \
  } while (0)
