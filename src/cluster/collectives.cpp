#include "cluster/collectives.hpp"

#include <functional>

namespace apn::cluster {

namespace {
int rounds_for(int np) {
  int r = 0;
  for (int span = 1; span < np; span *= 2) ++r;
  return r;
}
}  // namespace

struct Collectives::NodeState {
  explicit NodeState(sim::Simulator& sim, int np, int rounds)
      : barrier_slots(static_cast<std::size_t>(rounds), 0),
        stage_barrier(static_cast<std::size_t>(rounds), 0),
        reduce_values(static_cast<std::size_t>(np), 0),
        reduce_epochs(static_cast<std::size_t>(np), 0),
        app_events(sim) {}

  // Remote-writable slot arrays (registered host memory).
  std::vector<std::uint64_t> barrier_slots;  ///< [round] <- partner epoch
  std::vector<std::uint64_t> stage_barrier;  ///< staged outgoing epochs
  std::vector<std::uint64_t> reduce_values;  ///< [src] gathered at rank 0
  std::vector<std::uint64_t> reduce_epochs;  ///< [src] arrival flags
  std::uint64_t bcast_slot[2] = {0, 0};      ///< {epoch, value}
  std::uint64_t stage_value = 0;             ///< staged outgoing value
  std::uint64_t stage_epoch = 0;
  std::uint64_t stage_bcast[2] = {0, 0};

  std::uint64_t barrier_epoch = 0;
  std::uint64_t reduce_epoch = 0;
  sim::Queue<core::RdmaEvent> app_events;
  /// Conditions re-evaluated on every collective-slot completion; an entry
  /// returning true is done and removed.
  std::vector<std::function<bool()>> waiters;

  void poll() {
    std::erase_if(waiters, [](auto& w) { return w(); });
  }
};

Collectives::Collectives(Cluster& cluster)
    : cluster_(cluster), np_(cluster.size()) {
  const int rounds = rounds_for(np_);
  for (int r = 0; r < np_; ++r) {
    nodes_.push_back(std::make_unique<NodeState>(cluster.simulator(), np_,
                                                 rounds));
    pump(r);
  }
}

Collectives::~Collectives() = default;

sim::Queue<core::RdmaEvent>& Collectives::events(int rank) {
  return nodes_.at(static_cast<std::size_t>(rank))->app_events;
}

bool Collectives::is_collective_addr(int rank, std::uint64_t vaddr) const {
  const NodeState& st = *nodes_[static_cast<std::size_t>(rank)];
  auto within = [vaddr](const void* base, std::size_t bytes) {
    auto b = reinterpret_cast<std::uint64_t>(base);
    return vaddr >= b && vaddr < b + bytes;
  };
  return within(st.barrier_slots.data(),
                st.barrier_slots.size() * sizeof(std::uint64_t)) ||
         within(st.reduce_values.data(),
                st.reduce_values.size() * sizeof(std::uint64_t)) ||
         within(st.reduce_epochs.data(),
                st.reduce_epochs.size() * sizeof(std::uint64_t)) ||
         within(st.bcast_slot, sizeof(st.bcast_slot));
}

sim::Future<bool> Collectives::setup() {
  sim::Future<bool> done(cluster_.simulator());
  auto remaining = std::make_shared<int>(np_);
  for (int r = 0; r < np_; ++r) {
    [](Collectives* self, int rank, std::shared_ptr<int> remaining,
       sim::Future<bool> done) -> sim::Coro {
      NodeState& st = *self->nodes_[static_cast<std::size_t>(rank)];
      core::RdmaDevice& rdma = self->cluster_.rdma(rank);
      auto reg = [&](const void* base, std::size_t bytes) {
        return rdma.register_buffer(reinterpret_cast<std::uint64_t>(base),
                                    bytes, core::MemType::kHost);
      };
      co_await reg(st.barrier_slots.data(),
                   st.barrier_slots.size() * sizeof(std::uint64_t));
      co_await reg(st.reduce_values.data(),
                   st.reduce_values.size() * sizeof(std::uint64_t));
      co_await reg(st.reduce_epochs.data(),
                   st.reduce_epochs.size() * sizeof(std::uint64_t));
      co_await reg(st.bcast_slot, sizeof(st.bcast_slot));
      if (--*remaining == 0) done.set(true);
    }(this, r, remaining, done);
  }
  return done;
}

sim::Coro Collectives::pump(int rank) {
  NodeState& st = *nodes_[static_cast<std::size_t>(rank)];
  core::RdmaDevice& rdma = cluster_.rdma(rank);
  for (;;) {
    core::RdmaEvent ev = co_await rdma.events().pop();
    if (is_collective_addr(rank, ev.vaddr)) {
      st.poll();
    } else {
      st.app_events.push(ev);
    }
  }
}

sim::Future<bool> Collectives::barrier(int rank) {
  sim::Future<bool> done(cluster_.simulator());
  run_barrier(rank, done);
  return done;
}

sim::Coro Collectives::run_barrier(int rank, sim::Future<bool> done) {
  NodeState& st = *nodes_[static_cast<std::size_t>(rank)];
  core::RdmaDevice& rdma = cluster_.rdma(rank);
  const std::uint64_t epoch = ++st.barrier_epoch;
  int round = 0;
  for (int span = 1; span < np_; span *= 2, ++round) {
    const int partner = (rank + span) % np_;
    NodeState& pst = *nodes_[static_cast<std::size_t>(partner)];
    st.stage_barrier[static_cast<std::size_t>(round)] = epoch;
    rdma.put(cluster_.coord(partner),
             reinterpret_cast<std::uint64_t>(
                 &st.stage_barrier[static_cast<std::size_t>(round)]),
             sizeof(std::uint64_t),
             reinterpret_cast<std::uint64_t>(
                 &pst.barrier_slots[static_cast<std::size_t>(round)]),
             core::MemType::kHost, true);
    // Wait for the partner on the other side of this round.
    auto gate = std::make_shared<sim::Gate>(cluster_.simulator());
    const int r = round;
    st.waiters.push_back([&st, r, epoch, gate] {
      if (st.barrier_slots[static_cast<std::size_t>(r)] >= epoch) {
        gate->open();
        return true;
      }
      return false;
    });
    st.poll();
    co_await gate->wait();
  }
  done.set(true);
}

sim::Future<std::uint64_t> Collectives::allreduce_sum(int rank,
                                                      std::uint64_t value) {
  sim::Future<std::uint64_t> done(cluster_.simulator());
  run_allreduce(rank, value, done);
  return done;
}

sim::Coro Collectives::run_allreduce(int rank, std::uint64_t value,
                                     sim::Future<std::uint64_t> done) {
  NodeState& st = *nodes_[static_cast<std::size_t>(rank)];
  core::RdmaDevice& rdma = cluster_.rdma(rank);
  const std::uint64_t epoch = ++st.reduce_epoch;
  NodeState& root = *nodes_[0];

  if (rank != 0) {
    // Value first, then the epoch flag: APEnet+ delivery is FIFO per pair.
    st.stage_value = value;
    st.stage_epoch = epoch;
    rdma.put(cluster_.coord(0),
             reinterpret_cast<std::uint64_t>(&st.stage_value),
             sizeof(std::uint64_t),
             reinterpret_cast<std::uint64_t>(
                 &root.reduce_values[static_cast<std::size_t>(rank)]),
             core::MemType::kHost, true);
    rdma.put(cluster_.coord(0),
             reinterpret_cast<std::uint64_t>(&st.stage_epoch),
             sizeof(std::uint64_t),
             reinterpret_cast<std::uint64_t>(
                 &root.reduce_epochs[static_cast<std::size_t>(rank)]),
             core::MemType::kHost, true);
    // Wait for the broadcast of this epoch's result.
    auto gate = std::make_shared<sim::Gate>(cluster_.simulator());
    st.waiters.push_back([&st, epoch, gate] {
      if (st.bcast_slot[0] >= epoch) {
        gate->open();
        return true;
      }
      return false;
    });
    st.poll();
    co_await gate->wait();
    done.set(st.bcast_slot[1]);
    co_return;
  }

  // Rank 0: gather, sum, broadcast.
  root.reduce_values[0] = value;
  auto gate = std::make_shared<sim::Gate>(cluster_.simulator());
  const int np = np_;
  root.waiters.push_back([&root, epoch, np, gate] {
    for (int i = 1; i < np; ++i) {
      if (root.reduce_epochs[static_cast<std::size_t>(i)] < epoch)
        return false;
    }
    gate->open();
    return true;
  });
  root.poll();
  co_await gate->wait();
  std::uint64_t sum = 0;
  for (int i = 0; i < np_; ++i)
    sum += root.reduce_values[static_cast<std::size_t>(i)];
  root.stage_bcast[0] = epoch;
  root.stage_bcast[1] = sum;
  for (int i = 1; i < np_; ++i) {
    NodeState& pst = *nodes_[static_cast<std::size_t>(i)];
    rdma.put(cluster_.coord(i),
             reinterpret_cast<std::uint64_t>(&root.stage_bcast[1]),
             sizeof(std::uint64_t),
             reinterpret_cast<std::uint64_t>(&pst.bcast_slot[1]),
             core::MemType::kHost, true);
    rdma.put(cluster_.coord(i),
             reinterpret_cast<std::uint64_t>(&root.stage_bcast[0]),
             sizeof(std::uint64_t),
             reinterpret_cast<std::uint64_t>(&pst.bcast_slot[0]),
             core::MemType::kHost, true);
  }
  done.set(sum);
}

}  // namespace apn::cluster
