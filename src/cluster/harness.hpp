// Measurement harness shared by the test suite and the bench binaries:
// the paper's synthetic benchmarks (§V-B/C) coded against the RDMA API,
// plus the MVAPICH-style OSU bandwidth/latency equivalents over minimpi.
#pragma once

#include "cluster/cluster.hpp"

namespace apn::cluster {

struct BwResult {
  double mbps = 0;
  Time elapsed = 0;
  std::uint64_t bytes = 0;
};

/// Memory-read / loop-back bandwidth on a single node (paper Table I,
/// Figs. 4-5). The node enqueues `count` PUTs of `size` to itself.
/// With `flush_at_switch` set in the card params, packets evaporate at the
/// internal switch and the result is the pure memory-read bandwidth;
/// otherwise the full loop-back (TX + RX processing) is measured.
BwResult loopback_bandwidth(Cluster& c, int node, core::MemType src_type,
                            std::uint64_t size, int count);

/// Two-node unidirectional bandwidth (paper Figs. 6-7), APEnet+ RDMA PUTs,
/// measured at the receiver like the OSU uni-bandwidth test.
/// `staged_tx`: source GPU data staged through host memory (P2P=OFF TX).
/// `staged_rx`: destination staged through host memory + cudaMemcpy H2D.
struct TwoNodeOptions {
  core::MemType src_type = core::MemType::kHost;
  core::MemType dst_type = core::MemType::kHost;
  bool staged_tx = false;  ///< cudaMemcpy D2H before each PUT
  bool staged_rx = false;  ///< cudaMemcpy H2D after each RX completion
};
BwResult twonode_bandwidth(Cluster& c, std::uint64_t size, int count,
                           TwoNodeOptions opt = {});

/// Half round-trip latency between nodes 0 and 1 (paper Figs. 8-9).
Time pingpong_latency(Cluster& c, std::uint64_t size, int reps,
                      TwoNodeOptions opt = {});

/// Sender-side occupancy per message during a windowed bandwidth test —
/// the LogP host overhead `o` of Fig. 10.
Time host_overhead(Cluster& c, std::uint64_t size, int count,
                   TwoNodeOptions opt = {}, int window = 8);

/// OSU-style G-G bandwidth/latency over minimpi/IB (MVAPICH reference
/// curves of Figs. 7 and 9). Buffers are GPU memory on both ends.
BwResult ib_gg_bandwidth(Cluster& c, std::uint64_t size, int count);
Time ib_gg_latency(Cluster& c, std::uint64_t size, int reps);
BwResult ib_hh_bandwidth(Cluster& c, std::uint64_t size, int count);
Time ib_hh_latency(Cluster& c, std::uint64_t size, int reps);

}  // namespace apn::cluster
