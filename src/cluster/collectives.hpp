// RDMA-native collectives over APEnet+ — barrier and allreduce built from
// plain PUTs into pre-registered host slots, the style the paper's
// application codes use (there is no MPI on APEnet+; §V-D/E synchronize
// through the RDMA API).
//
// Each node contributes a slot array; a dissemination barrier runs
// ceil(log2(N)) rounds of peer PUTs, and allreduce gathers to rank 0 and
// broadcasts. The Collectives object owns each device's receive-event
// stream: it consumes collective completions internally and forwards every
// other event to `events(rank)`, which the application consumes *instead
// of* RdmaDevice::events().
#pragma once

#include <memory>
#include <vector>

#include "cluster/cluster.hpp"

namespace apn::cluster {

class Collectives {
 public:
  explicit Collectives(Cluster& cluster);
  ~Collectives();

  /// Register the slot arrays on every node; must complete (run the
  /// simulator or co_await) before the first collective.
  sim::Future<bool> setup();

  /// Application-visible event stream for `rank` (non-collective PUTs).
  sim::Queue<core::RdmaEvent>& events(int rank);

  /// Dissemination barrier: completes when every rank has entered.
  sim::Future<bool> barrier(int rank);

  /// Global sum; every rank receives the total. Ranks must call
  /// collectives in the same order (standard MPI-like contract).
  sim::Future<std::uint64_t> allreduce_sum(int rank, std::uint64_t value);

 private:
  struct NodeState;
  sim::Coro pump(int rank);
  sim::Coro run_barrier(int rank, sim::Future<bool> done);
  sim::Coro run_allreduce(int rank, std::uint64_t value,
                          sim::Future<std::uint64_t> done);
  bool is_collective_addr(int rank, std::uint64_t vaddr) const;

  Cluster& cluster_;
  int np_;
  std::vector<std::unique_ptr<NodeState>> nodes_;
};

}  // namespace apn::cluster
